// Ablation A5 — NVM channel count: the transaction cache turns every
// committed transaction into NVM writes, so its headroom over Optimal is
// coupled to NVM write bandwidth. This sweep shows where one channel
// suffices (the paper's configuration) and how SP's latency-bound penalty
// barely moves with bandwidth.
#include <iostream>

#include "common/table.hpp"
#include "sim/experiment.hpp"

int main(int argc, char** argv) {
  using namespace ntcsim;
  sim::ExperimentOptions opts = sim::parse_bench_args(argc, argv);
  opts.scale *= 0.5;  // ablations sweep many cells; half-length runs suffice

  std::cout << "Ablation: NVM channel count (line-interleaved)\n\n";
  for (WorkloadKind wl : {WorkloadKind::kSps, WorkloadKind::kRbtree}) {
    Table t({"channels", "Optimal tx/kc", "TC", "TC/Opt", "SP", "SP/Opt"});
    for (unsigned ch : {1u, 2u, 4u}) {
      SystemConfig cfg = SystemConfig::experiment();
      cfg.nvm.channels = ch;
      const double opt =
          sim::run_cell(Mechanism::kOptimal, wl, cfg, opts).tx_per_kilocycle;
      const double tc =
          sim::run_cell(Mechanism::kTc, wl, cfg, opts).tx_per_kilocycle;
      const double sp =
          sim::run_cell(Mechanism::kSp, wl, cfg, opts).tx_per_kilocycle;
      t.add_row(std::to_string(ch),
                {opt, tc, opt > 0 ? tc / opt : 0, sp, opt > 0 ? sp / opt : 0});
    }
    std::cout << to_string(wl) << ":\n";
    t.print(std::cout);
    std::cout << '\n';
  }
  return 0;
}
