// Ablation A5 — NVM channel count: the transaction cache turns every
// committed transaction into NVM writes, so its headroom over Optimal is
// coupled to NVM write bandwidth. This sweep shows where one channel
// suffices (the paper's configuration) and how SP's latency-bound penalty
// barely moves with bandwidth.
//
// Usage: bench_ablation_channels [scale] [--jobs=N]
#include <iostream>
#include <vector>

#include "common/table.hpp"
#include "sim/experiment.hpp"
#include "sim/sweep.hpp"

int main(int argc, char** argv) {
  using namespace ntcsim;
  sim::ExperimentOptions opts = sim::parse_bench_args(argc, argv);
  opts.scale *= 0.5;  // ablations sweep many cells; half-length runs suffice

  const WorkloadKind kWls[] = {WorkloadKind::kSps, WorkloadKind::kRbtree};
  const unsigned kChannels[] = {1u, 2u, 4u};
  const Mechanism kMechs[] = {Mechanism::kOptimal, Mechanism::kTc,
                              Mechanism::kSp};

  std::vector<sim::JobSpec> specs;
  for (WorkloadKind wl : kWls) {
    for (unsigned ch : kChannels) {
      SystemConfig cfg = SystemConfig::experiment();
      cfg.nvm.channels = ch;
      for (Mechanism mech : kMechs) {
        specs.push_back({mech, wl, cfg, opts});
      }
    }
  }
  const std::vector<sim::Metrics> cells = sim::run_sweep(specs, opts.jobs);

  std::cout << "Ablation: NVM channel count (line-interleaved)\n\n";
  std::size_t i = 0;
  for (WorkloadKind wl : kWls) {
    Table t({"channels", "Optimal tx/kc", "TC", "TC/Opt", "SP", "SP/Opt"});
    for (unsigned ch : kChannels) {
      const double opt = cells[i++].tx_per_kilocycle;
      const double tc = cells[i++].tx_per_kilocycle;
      const double sp = cells[i++].tx_per_kilocycle;
      t.add_row(std::to_string(ch),
                {opt, tc, opt > 0 ? tc / opt : 0, sp, opt > 0 ? sp / opt : 0});
    }
    std::cout << to_string(wl) << ":\n";
    t.print(std::cout);
    std::cout << '\n';
  }
  return 0;
}
