// Ablation A4 — Kiln commit-engine sensitivity: how the flush cost per
// line moves Kiln between "almost TC" and "almost SP" (contextualizes the
// baseline's Fig. 6/7 position).
//
// Usage: bench_ablation_kiln [scale] [--jobs=N]
#include <iostream>
#include <utility>
#include <vector>

#include "common/table.hpp"
#include "persist/kiln_unit.hpp"
#include "sim/experiment.hpp"
#include "sim/sweep.hpp"
#include "sim/system.hpp"
#include "workload/workloads.hpp"

namespace {

using namespace ntcsim;

sim::Metrics run_kiln(WorkloadKind wl, const persist::KilnConfig& kc,
                      double scale) {
  // The KilnUnit currently takes its config at System construction from
  // KilnConfig{} defaults, so this ablation builds the system by hand.
  SystemConfig cfg = SystemConfig::experiment();
  cfg.mechanism = Mechanism::kKiln;
  workload::WorkloadParams p = workload::default_params(wl);
  p.ops = static_cast<std::size_t>(static_cast<double>(p.ops) * scale);
  if (p.ops == 0) p.ops = 1;

  workload::SimHeap heap(cfg.address_space, cfg.cores);
  std::vector<workload::TraceBundle> b;
  for (CoreId c = 0; c < cfg.cores; ++c) {
    b.push_back(workload::generate_phased(p, c, heap, nullptr));
  }
  sim::System sys(cfg, sim::SystemOptions{}, kc);
  for (CoreId c = 0; c < cfg.cores; ++c) {
    sys.load_trace(c, std::move(b[c].setup));
  }
  sys.run();
  sys.reset_stats();
  for (CoreId c = 0; c < cfg.cores; ++c) {
    sys.load_trace(c, std::move(b[c].measured));
  }
  sys.run();
  return sys.metrics();
}

}  // namespace

int main(int argc, char** argv) {
  sim::ExperimentOptions opts = sim::parse_bench_args(argc, argv);
  opts.scale *= 0.5;  // ablations sweep many cells; half-length runs suffice
  const WorkloadKind wl = WorkloadKind::kRbtree;

  const std::vector<std::pair<unsigned, unsigned>> kPoints = {
      {10, 2}, {25, 5}, {40, 10}, {80, 20}, {160, 40}};

  // Each sweep point builds its own System, so the whole table — baseline
  // included — parallelizes with run_jobs (index 0 is the Optimal cell).
  const auto cells =
      sim::run_jobs(kPoints.size() + 1, opts.jobs, [&](std::size_t i) {
        if (i == 0) {
          SystemConfig base = SystemConfig::experiment();
          return sim::run_cell(Mechanism::kOptimal, wl, base, opts);
        }
        persist::KilnConfig kc;
        kc.commit_fixed_cycles = kPoints[i - 1].first;
        kc.cycles_per_line = kPoints[i - 1].second;
        return run_kiln(wl, kc, opts.scale);
      });
  const sim::Metrics& opt = cells[0];

  std::cout << "Ablation: Kiln commit cost (rbtree; Optimal = "
            << Table::fmt(opt.tx_per_kilocycle, 3) << " tx/kcycle)\n\n";
  Table t({"fixed cy", "cy/line", "tx/kcycle", "vs Optimal", "pload lat"});
  for (std::size_t i = 0; i < kPoints.size(); ++i) {
    const sim::Metrics& m = cells[i + 1];
    t.add_row(std::to_string(kPoints[i].first),
              {static_cast<double>(kPoints[i].second), m.tx_per_kilocycle,
               m.tx_per_kilocycle / opt.tx_per_kilocycle, m.pload_latency});
  }
  t.print(std::cout);
  return 0;
}
