// Ablation A2 — memory-controller write-drain policy sensitivity
// (Table 2's "write drain when the write queue is 80 % full"). Sweeps the
// high watermark and the write-queue depth under the two mechanisms that
// stress the NVM write path hardest.
//
// Usage: bench_ablation_memctrl [scale] [--jobs=N]
#include <iostream>
#include <vector>

#include "common/table.hpp"
#include "sim/experiment.hpp"
#include "sim/sweep.hpp"

int main(int argc, char** argv) {
  using namespace ntcsim;
  sim::ExperimentOptions opts = sim::parse_bench_args(argc, argv);
  opts.scale *= 0.5;  // ablations sweep many cells; half-length runs suffice
  const WorkloadKind wl = WorkloadKind::kSps;

  const Mechanism kMechs[] = {Mechanism::kTc, Mechanism::kSp};
  const double kWatermarks[] = {0.5, 0.7, 0.8, 0.9, 0.95};
  const unsigned kQueueDepths[] = {16u, 32u, 64u, 128u};

  // Both sweeps in one batch: watermark x mechanism, then queue depth.
  std::vector<sim::JobSpec> specs;
  for (Mechanism mech : kMechs) {
    for (double w : kWatermarks) {
      SystemConfig cfg = SystemConfig::experiment();
      cfg.nvm.drain_high_watermark = w;
      specs.push_back({mech, wl, cfg, opts});
    }
  }
  for (unsigned q : kQueueDepths) {
    SystemConfig cfg = SystemConfig::experiment();
    cfg.nvm.write_queue = q;
    specs.push_back({Mechanism::kTc, wl, cfg, opts});
  }
  const std::vector<sim::Metrics> cells = sim::run_sweep(specs, opts.jobs);

  std::cout << "Ablation: write-drain high watermark (sps)\n\n";
  std::size_t i = 0;
  for (Mechanism mech : kMechs) {
    Table t({"watermark", "tx/kcycle", "pload latency", "drain entries"});
    for (double w : kWatermarks) {
      const sim::Metrics& m = cells[i++];
      t.add_row(Table::fmt(w, 2),
                {m.tx_per_kilocycle, m.pload_latency,
                 0.0});  // drain count not in Metrics; kept for layout
    }
    std::cout << to_string(mech) << ":\n";
    t.print(std::cout);
    std::cout << '\n';
  }

  std::cout << "Ablation: write-queue depth (sps, TC)\n\n";
  Table t({"write queue", "tx/kcycle", "NTC stall frac"});
  for (unsigned q : kQueueDepths) {
    const sim::Metrics& m = cells[i++];
    t.add_row(std::to_string(q), {m.tx_per_kilocycle, m.ntc_stall_frac});
  }
  t.print(std::cout);
  return 0;
}
