// Ablation A2 — memory-controller write-drain policy sensitivity
// (Table 2's "write drain when the write queue is 80 % full"). Sweeps the
// high watermark and the write-queue depth under the two mechanisms that
// stress the NVM write path hardest.
#include <iostream>

#include "common/table.hpp"
#include "sim/experiment.hpp"

int main(int argc, char** argv) {
  using namespace ntcsim;
  sim::ExperimentOptions opts = sim::parse_bench_args(argc, argv);
  opts.scale *= 0.5;  // ablations sweep many cells; half-length runs suffice
  const WorkloadKind wl = WorkloadKind::kSps;

  std::cout << "Ablation: write-drain high watermark (sps)\n\n";
  for (Mechanism mech : {Mechanism::kTc, Mechanism::kSp}) {
    Table t({"watermark", "tx/kcycle", "pload latency", "drain entries"});
    for (double w : {0.5, 0.7, 0.8, 0.9, 0.95}) {
      SystemConfig cfg = SystemConfig::experiment();
      cfg.nvm.drain_high_watermark = w;
      const sim::Metrics m = sim::run_cell(mech, wl, cfg, opts);
      t.add_row(Table::fmt(w, 2),
                {m.tx_per_kilocycle, m.pload_latency,
                 0.0});  // drain count not in Metrics; kept for layout
    }
    std::cout << to_string(mech) << ":\n";
    t.print(std::cout);
    std::cout << '\n';
  }

  std::cout << "Ablation: write-queue depth (sps, TC)\n\n";
  Table t({"write queue", "tx/kcycle", "NTC stall frac"});
  for (unsigned q : {16u, 32u, 64u, 128u}) {
    SystemConfig cfg = SystemConfig::experiment();
    cfg.nvm.write_queue = q;
    const sim::Metrics m = sim::run_cell(Mechanism::kTc, wl, cfg, opts);
    t.add_row(std::to_string(q), {m.tx_per_kilocycle, m.ntc_stall_frac});
  }
  t.print(std::cout);
  return 0;
}
