// Ablation A3 — NTC access-latency sensitivity (DESIGN.md §5). The NTC
// sits off the execution path: its latency gates only the CPU-side CAM
// port rate (one insert per access), so the paper's 0.5 ns STT-RAM point
// has slack — performance degrades only once the port rate approaches the
// store rate.
//
// Usage: bench_ablation_ntc_latency [scale] [--jobs=N]
#include <iostream>
#include <vector>

#include "common/table.hpp"
#include "sim/experiment.hpp"
#include "sim/sweep.hpp"

int main(int argc, char** argv) {
  using namespace ntcsim;
  sim::ExperimentOptions opts = sim::parse_bench_args(argc, argv);
  opts.scale *= 0.5;  // ablations sweep many cells; half-length runs suffice

  const WorkloadKind kWls[] = {WorkloadKind::kHashtable, WorkloadKind::kSps};
  const unsigned kLatencies[] = {1u, 2u, 4u, 10u, 20u, 40u};

  std::vector<sim::JobSpec> specs;
  for (WorkloadKind wl : kWls) {
    for (unsigned cycles : kLatencies) {
      SystemConfig cfg = SystemConfig::experiment();
      cfg.ntc.latency_cycles = cycles;
      specs.push_back({Mechanism::kTc, wl, cfg, opts});
    }
  }
  const std::vector<sim::Metrics> cells = sim::run_sweep(specs, opts.jobs);

  std::cout << "Ablation: TC performance vs transaction-cache latency\n\n";
  std::size_t i = 0;
  for (WorkloadKind wl : kWls) {
    Table t({"NTC latency", "tx/kcycle", "NTC stall frac"});
    for (unsigned cycles : kLatencies) {
      const sim::Metrics& m = cells[i++];
      t.add_row(std::to_string(cycles * 0.5).substr(0, 4) + " ns",
                {m.tx_per_kilocycle, m.ntc_stall_frac});
    }
    std::cout << to_string(wl) << ":\n";
    t.print(std::cout);
    std::cout << '\n';
  }
  return 0;
}
