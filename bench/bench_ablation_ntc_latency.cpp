// Ablation A3 — NTC access-latency sensitivity (DESIGN.md §5). The NTC
// sits off the execution path: its latency gates only the CPU-side CAM
// port rate (one insert per access), so the paper's 0.5 ns STT-RAM point
// has slack — performance degrades only once the port rate approaches the
// store rate.
#include <iostream>

#include "common/table.hpp"
#include "sim/experiment.hpp"

int main(int argc, char** argv) {
  using namespace ntcsim;
  sim::ExperimentOptions opts = sim::parse_bench_args(argc, argv);
  opts.scale *= 0.5;  // ablations sweep many cells; half-length runs suffice

  std::cout << "Ablation: TC performance vs transaction-cache latency\n\n";
  for (WorkloadKind wl : {WorkloadKind::kHashtable, WorkloadKind::kSps}) {
    Table t({"NTC latency", "tx/kcycle", "NTC stall frac"});
    for (unsigned cycles : {1u, 2u, 4u, 10u, 20u, 40u}) {
      SystemConfig cfg = SystemConfig::experiment();
      cfg.ntc.latency_cycles = cycles;
      const sim::Metrics m = sim::run_cell(Mechanism::kTc, wl, cfg, opts);
      t.add_row(std::to_string(cycles * 0.5).substr(0, 4) + " ns",
                {m.tx_per_kilocycle, m.ntc_stall_frac});
    }
    std::cout << to_string(wl) << ":\n";
    t.print(std::cout);
    std::cout << '\n';
  }
  return 0;
}
