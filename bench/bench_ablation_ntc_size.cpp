// Ablation A1 — transaction-cache capacity sweep (DESIGN.md §5.1).
// The paper argues a 4 KB/core NTC is enough: "the CPU hardly stalls...
// only sps, the benchmark with the highest write intensity, stalls for
// 0.67 % of execution time." This sweep shows where that breaks.
//
// Usage: bench_ablation_ntc_size [scale] [--jobs=N]
#include <iostream>
#include <vector>

#include "common/table.hpp"
#include "sim/experiment.hpp"
#include "sim/sweep.hpp"

int main(int argc, char** argv) {
  using namespace ntcsim;
  sim::ExperimentOptions opts = sim::parse_bench_args(argc, argv);
  opts.scale *= 0.5;  // ablations sweep many cells; half-length runs suffice

  const WorkloadKind kWls[] = {WorkloadKind::kSps, WorkloadKind::kRbtree};
  const std::uint64_t kSizesKb[] = {1, 2, 4, 8, 16};

  // All cells — the per-workload Optimal baseline plus the five TC
  // capacity points — are independent; sweep them in one batch.
  std::vector<sim::JobSpec> specs;
  for (WorkloadKind wl : kWls) {
    SystemConfig base = SystemConfig::experiment();
    base.mechanism = Mechanism::kOptimal;
    specs.push_back({Mechanism::kOptimal, wl, base, opts});
    for (std::uint64_t kb : kSizesKb) {
      SystemConfig cfg = SystemConfig::experiment();
      cfg.ntc.size_bytes = (kb << 10) / 2;  // sweep 0.5K..8K
      specs.push_back({Mechanism::kTc, wl, cfg, opts});
    }
  }
  const std::vector<sim::Metrics> cells = sim::run_sweep(specs, opts.jobs);

  std::cout << "Ablation: TC throughput and stall fraction vs NTC capacity\n"
               "(4 KB/core is the paper's default)\n\n";
  std::size_t i = 0;
  for (WorkloadKind wl : kWls) {
    const sim::Metrics& opt = cells[i++];
    Table t({"NTC size", "tx/kcycle", "vs Optimal", "NTC stall frac",
             "overflow spills"});
    for (std::uint64_t kb : kSizesKb) {
      (void)kb;
      const SystemConfig& cfg = specs[i].cfg;
      const sim::Metrics& m = cells[i++];
      t.add_row(std::to_string(cfg.ntc.size_bytes) + " B (" +
                    std::to_string(cfg.ntc.entries()) + " entries)",
                {m.tx_per_kilocycle, m.tx_per_kilocycle / opt.tx_per_kilocycle,
                 m.ntc_stall_frac, static_cast<double>(m.ntc_spills)});
    }
    std::cout << to_string(wl) << " (Optimal: "
              << Table::fmt(opt.tx_per_kilocycle, 3) << " tx/kcycle)\n";
    t.print(std::cout);
    std::cout << '\n';
  }
  return 0;
}
