// Ablation A1 — transaction-cache capacity sweep (DESIGN.md §5.1).
// The paper argues a 4 KB/core NTC is enough: "the CPU hardly stalls...
// only sps, the benchmark with the highest write intensity, stalls for
// 0.67 % of execution time." This sweep shows where that breaks.
#include <iostream>

#include "common/table.hpp"
#include "sim/experiment.hpp"

int main(int argc, char** argv) {
  using namespace ntcsim;
  sim::ExperimentOptions opts = sim::parse_bench_args(argc, argv);
  opts.scale *= 0.5;  // ablations sweep many cells; half-length runs suffice

  std::cout << "Ablation: TC throughput and stall fraction vs NTC capacity\n"
               "(4 KB/core is the paper's default)\n\n";
  for (WorkloadKind wl : {WorkloadKind::kSps, WorkloadKind::kRbtree}) {
    SystemConfig base = SystemConfig::experiment();
    base.mechanism = Mechanism::kOptimal;
    const sim::Metrics opt = sim::run_cell(Mechanism::kOptimal, wl, base, opts);

    Table t({"NTC size", "tx/kcycle", "vs Optimal", "NTC stall frac",
             "overflow spills"});
    for (std::uint64_t kb : {1ULL, 2ULL, 4ULL, 8ULL, 16ULL}) {
      SystemConfig cfg = SystemConfig::experiment();
      cfg.ntc.size_bytes = (kb << 10) / 2;  // sweep 0.5K..8K
      const sim::Metrics m = sim::run_cell(Mechanism::kTc, wl, cfg, opts);
      t.add_row(std::to_string(cfg.ntc.size_bytes) + " B (" +
                    std::to_string(cfg.ntc.entries()) + " entries)",
                {m.tx_per_kilocycle, m.tx_per_kilocycle / opt.tx_per_kilocycle,
                 m.ntc_stall_frac, static_cast<double>(m.ntc_spills)});
    }
    std::cout << to_string(wl) << " (Optimal: "
              << Table::fmt(opt.tx_per_kilocycle, 3) << " tx/kcycle)\n";
    t.print(std::cout);
    std::cout << '\n';
  }
  return 0;
}
