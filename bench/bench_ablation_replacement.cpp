// Ablation A6 — LLC replacement policy under each mechanism. The paper's
// simulators use LRU; this sweep checks that the TC-vs-Optimal story is not
// an LRU artifact (the hooks never touch victim selection, so it shouldn't
// be) and how Kiln's pinning composes with RRIP-style policies.
#include <iostream>

#include "common/table.hpp"
#include "sim/experiment.hpp"

int main(int argc, char** argv) {
  using namespace ntcsim;
  sim::ExperimentOptions opts = sim::parse_bench_args(argc, argv);
  opts.scale *= 0.5;  // ablations sweep many cells; half-length runs suffice
  const WorkloadKind wl = WorkloadKind::kRbtree;

  std::cout << "Ablation: LLC replacement policy (rbtree)\n\n";
  Table t({"policy", "Optimal tx/kc", "TC/Opt", "Kiln/Opt", "Opt miss rate"});
  for (ReplacementPolicy pol : {ReplacementPolicy::kLru,
                                ReplacementPolicy::kRandom,
                                ReplacementPolicy::kSrrip}) {
    SystemConfig cfg = SystemConfig::experiment();
    cfg.llc.replacement = pol;
    const sim::Metrics opt = sim::run_cell(Mechanism::kOptimal, wl, cfg, opts);
    const sim::Metrics tc = sim::run_cell(Mechanism::kTc, wl, cfg, opts);
    const sim::Metrics kiln = sim::run_cell(Mechanism::kKiln, wl, cfg, opts);
    t.add_row(std::string(to_string(pol)),
              {opt.tx_per_kilocycle,
               tc.tx_per_kilocycle / opt.tx_per_kilocycle,
               kiln.tx_per_kilocycle / opt.tx_per_kilocycle,
               opt.llc_miss_rate});
  }
  t.print(std::cout);
  std::cout << "\nThe TC/Optimal ratio should be policy-insensitive: the\n"
               "accelerator never participates in victim selection.\n";
  return 0;
}
