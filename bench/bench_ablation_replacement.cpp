// Ablation A6 — LLC replacement policy under each mechanism. The paper's
// simulators use LRU; this sweep checks that the TC-vs-Optimal story is not
// an LRU artifact (the hooks never touch victim selection, so it shouldn't
// be) and how Kiln's pinning composes with RRIP-style policies.
//
// Usage: bench_ablation_replacement [scale] [--jobs=N]
#include <iostream>
#include <vector>

#include "common/table.hpp"
#include "sim/experiment.hpp"
#include "sim/sweep.hpp"

int main(int argc, char** argv) {
  using namespace ntcsim;
  sim::ExperimentOptions opts = sim::parse_bench_args(argc, argv);
  opts.scale *= 0.5;  // ablations sweep many cells; half-length runs suffice
  const WorkloadKind wl = WorkloadKind::kRbtree;

  const ReplacementPolicy kPolicies[] = {ReplacementPolicy::kLru,
                                         ReplacementPolicy::kRandom,
                                         ReplacementPolicy::kSrrip};
  const Mechanism kMechs[] = {Mechanism::kOptimal, Mechanism::kTc,
                              Mechanism::kKiln};

  std::vector<sim::JobSpec> specs;
  for (ReplacementPolicy pol : kPolicies) {
    SystemConfig cfg = SystemConfig::experiment();
    cfg.llc.replacement = pol;
    for (Mechanism mech : kMechs) {
      specs.push_back({mech, wl, cfg, opts});
    }
  }
  const std::vector<sim::Metrics> cells = sim::run_sweep(specs, opts.jobs);

  std::cout << "Ablation: LLC replacement policy (rbtree)\n\n";
  Table t({"policy", "Optimal tx/kc", "TC/Opt", "Kiln/Opt", "Opt miss rate"});
  std::size_t i = 0;
  for (ReplacementPolicy pol : kPolicies) {
    const sim::Metrics& opt = cells[i++];
    const sim::Metrics& tc = cells[i++];
    const sim::Metrics& kiln = cells[i++];
    t.add_row(std::string(to_string(pol)),
              {opt.tx_per_kilocycle,
               tc.tx_per_kilocycle / opt.tx_per_kilocycle,
               kiln.tx_per_kilocycle / opt.tx_per_kilocycle,
               opt.llc_miss_rate});
  }
  t.print(std::cout);
  std::cout << "\nThe TC/Optimal ratio should be policy-insensitive: the\n"
               "accelerator never participates in victim selection.\n";
  return 0;
}
