// Throughput scaling across cluster sizes: sweeps nodes x mechanism in
// service mode and reports per-mechanism scaling efficiency
// thr(n) / (n * thr(1)) — how much of the ideal linear speedup each
// persistence mechanism keeps once requests are sharded across nodes and
// cross-shard traffic pays the interconnect round trip. Mechanisms whose
// request latency is dominated by persistence stalls (SP) hide the network
// hop better than ones already near the Optimal floor.
//
//   bench_cluster_scaling [scale] [--scale=X] [--jobs=N] [--profile[=FILE]]
//
// stdout: CSV (mechanism, nodes, throughput, p99, cross-shard stats,
// efficiency). A machine-readable JSON report with the same points is
// written to BENCH_cluster_scaling.json.
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/experiment.hpp"
#include "sim/sweep.hpp"
#include "workload/workloads.hpp"

using namespace ntcsim;

int main(int argc, char** argv) {
  const sim::ExperimentOptions opts = sim::parse_bench_args(argc, argv);

  const unsigned kNodes[] = {1, 2, 4, 8};
  const double kRate = 2.0;  // req/kcycle/core: busy but under saturation
  const WorkloadKind wl = WorkloadKind::kHashtable;
  const std::vector<Mechanism> mechs = sim::matrix_mechanisms();

  const std::size_t base_ops = workload::default_params(wl).ops;
  std::vector<sim::JobSpec> specs;
  for (Mechanism mech : mechs) {
    for (unsigned nodes : kNodes) {
      sim::JobSpec spec;
      spec.mech = mech;
      spec.wl = wl;
      spec.cfg = SystemConfig::experiment();
      spec.cfg.topo.nodes = nodes;
      spec.cfg.service.enabled = true;
      spec.cfg.service.rate = kRate;
      spec.cfg.service.requests = static_cast<std::uint64_t>(
          static_cast<double>(base_ops) * opts.scale);
      if (spec.cfg.service.requests == 0) spec.cfg.service.requests = 1;
      spec.opts = opts;
      specs.push_back(spec);
    }
  }

  std::vector<sim::Metrics> cells;
  try {
    cells = sim::run_sweep(specs, opts.jobs);
  } catch (const std::runtime_error& e) {
    std::fprintf(stderr, "bench_cluster_scaling: aborted: %s\n", e.what());
    return 1;
  }

  std::printf(
      "mechanism,nodes,tx_per_kilocycle,req_latency_p99,requests,"
      "xshard_requests,xshard_fwd_delay,efficiency\n");
  std::ofstream json("BENCH_cluster_scaling.json");
  json << "{\n  \"kind\": \"cluster-scaling\",\n  \"workload\": \""
       << to_string(wl) << "\",\n  \"rate_per_kcycle_per_core\": " << kRate
       << ",\n  \"scale\": " << opts.scale << ",\n  \"mechanisms\": [";
  std::size_t i = 0;
  bool first_mech = true;
  for (Mechanism mech : mechs) {
    const std::string label(sim::mechanism_label(mech));
    json << (first_mech ? "\n" : ",\n") << "    {\"mechanism\": \"" << label
         << "\", \"points\": [";
    first_mech = false;
    double thr1 = 0.0;
    bool first_pt = true;
    for (unsigned nodes : kNodes) {
      const sim::Metrics& m = cells[i++];
      if (nodes == 1) thr1 = m.tx_per_kilocycle;
      // Ideal scaling doubles throughput with the node count; efficiency
      // is the fraction of that ideal this mechanism actually delivers.
      const double efficiency =
          thr1 > 0.0 ? m.tx_per_kilocycle / (nodes * thr1) : 0.0;
      std::printf("%s,%u,%.4f,%llu,%llu,%llu,%.1f,%.4f\n", label.c_str(),
                  nodes, m.tx_per_kilocycle,
                  static_cast<unsigned long long>(m.req_latency_p99),
                  static_cast<unsigned long long>(m.requests),
                  static_cast<unsigned long long>(m.xshard_requests),
                  m.xshard_fwd_delay, efficiency);
      json << (first_pt ? "\n" : ",\n") << "      {\"nodes\": " << nodes
           << ", \"tx_per_kilocycle\": " << m.tx_per_kilocycle
           << ", \"req_latency_p99\": " << m.req_latency_p99
           << ", \"requests\": " << m.requests
           << ", \"xshard_requests\": " << m.xshard_requests
           << ", \"xshard_fwd_delay\": " << m.xshard_fwd_delay
           << ", \"efficiency\": " << efficiency << "}";
      first_pt = false;
    }
    json << "\n    ]}";
  }
  json << "\n  ]\n}\n";
  std::fprintf(stderr,
               "bench_cluster_scaling: JSON written to "
               "BENCH_cluster_scaling.json\n");
  return 0;
}
