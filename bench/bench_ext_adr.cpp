// Extension E2 (beyond the paper) — SP on a modern ADR platform: Intel
// deprecated pcommit in 2016 because the controller's write queue joined
// the persistence domain, turning SP's NVM-array round trips into fence
// waits. How much of the gap to the paper's accelerator does that close?
#include <iostream>

#include "common/table.hpp"
#include "sim/experiment.hpp"

int main(int argc, char** argv) {
  using namespace ntcsim;
  sim::ExperimentOptions opts = sim::parse_bench_args(argc, argv);
  opts.scale *= 0.5;  // ablations sweep many cells; half-length runs suffice
  const SystemConfig cfg = SystemConfig::experiment();

  std::cout
      << "Extension: software persistence on an ADR platform vs the paper's\n"
         "mechanisms (throughput normalized to Optimal)\n\n";
  Table t({"workload", "SP", "SP-ADR", "TC", "Kiln"});
  std::map<Mechanism, std::vector<double>> cols;
  for (WorkloadKind wl :
       {WorkloadKind::kSps, WorkloadKind::kRbtree, WorkloadKind::kHashtable}) {
    const double base =
        sim::run_cell(Mechanism::kOptimal, wl, cfg, opts).tx_per_kilocycle;
    std::vector<double> cells;
    for (Mechanism mech : {Mechanism::kSp, Mechanism::kSpAdr, Mechanism::kTc,
                           Mechanism::kKiln}) {
      const double v =
          sim::run_cell(mech, wl, cfg, opts).tx_per_kilocycle / base;
      cells.push_back(v);
      cols[mech].push_back(v);
    }
    t.add_row(std::string(to_string(wl)), cells);
  }
  std::vector<double> gmeans;
  for (Mechanism mech : {Mechanism::kSp, Mechanism::kSpAdr, Mechanism::kTc,
                         Mechanism::kKiln}) {
    gmeans.push_back(sim::geometric_mean(cols[mech]));
  }
  t.add_row("gmean", gmeans);
  t.print(std::cout);
  std::cout << "\nEven pcommit-free software logging keeps per-transaction\n"
               "fence+flush serialization the accelerator avoids entirely.\n";
  return 0;
}
