// Extension E2 (beyond the paper) — SP on a modern ADR platform: Intel
// deprecated pcommit in 2016 because the controller's write queue joined
// the persistence domain, turning SP's NVM-array round trips into fence
// waits. How much of the gap to the paper's accelerator does that close?
//
// Usage: bench_ext_adr [scale] [--jobs=N]
#include <iostream>
#include <map>
#include <vector>

#include "common/table.hpp"
#include "sim/experiment.hpp"
#include "sim/sweep.hpp"

int main(int argc, char** argv) {
  using namespace ntcsim;
  sim::ExperimentOptions opts = sim::parse_bench_args(argc, argv);
  opts.scale *= 0.5;  // ablations sweep many cells; half-length runs suffice
  const SystemConfig cfg = SystemConfig::experiment();

  const WorkloadKind kWls[] = {WorkloadKind::kSps, WorkloadKind::kRbtree,
                               WorkloadKind::kHashtable};
  const Mechanism kMechs[] = {Mechanism::kSp, Mechanism::kSpAdr,
                              Mechanism::kTc, Mechanism::kKiln};

  std::vector<sim::JobSpec> specs;
  for (WorkloadKind wl : kWls) {
    specs.push_back({Mechanism::kOptimal, wl, cfg, opts});
    for (Mechanism mech : kMechs) {
      specs.push_back({mech, wl, cfg, opts});
    }
  }
  const std::vector<sim::Metrics> cells = sim::run_sweep(specs, opts.jobs);

  std::cout
      << "Extension: software persistence on an ADR platform vs the paper's\n"
         "mechanisms (throughput normalized to Optimal)\n\n";
  Table t({"workload", "SP", "SP-ADR", "TC", "Kiln"});
  std::map<Mechanism, std::vector<double>> cols;
  std::size_t i = 0;
  for (WorkloadKind wl : kWls) {
    const double base = cells[i++].tx_per_kilocycle;
    std::vector<double> row;
    for (Mechanism mech : kMechs) {
      const double v = cells[i++].tx_per_kilocycle / base;
      row.push_back(v);
      cols[mech].push_back(v);
    }
    t.add_row(std::string(to_string(wl)), row);
  }
  std::vector<double> gmeans;
  for (Mechanism mech : kMechs) {
    gmeans.push_back(sim::geometric_mean(cols[mech]));
  }
  t.add_row("gmean", gmeans);
  t.print(std::cout);
  std::cout << "\nEven pcommit-free software logging keeps per-transaction\n"
               "fence+flush serialization the accelerator avoids entirely.\n";
  return 0;
}
