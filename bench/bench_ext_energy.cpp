// Extension E1 (beyond the paper) — memory-system energy per transaction
// for every mechanism: where the joules go when persistence moves from
// software logging (SP) to the side path (TC) to the NV-LLC (Kiln).
//
// Usage: bench_ext_energy [scale] [--jobs=N]
#include <iostream>
#include <vector>

#include "common/table.hpp"
#include "sim/energy.hpp"
#include "sim/experiment.hpp"
#include "sim/sweep.hpp"
#include "sim/system.hpp"
#include "workload/workloads.hpp"

namespace {

using namespace ntcsim;

struct Cell {
  sim::Metrics metrics;
  sim::EnergyBreakdown energy;
};

Cell run(Mechanism mech, WorkloadKind wl, double scale) {
  SystemConfig cfg = SystemConfig::experiment();
  cfg.mechanism = mech;
  workload::WorkloadParams p = workload::default_params(wl);
  p.ops = static_cast<std::size_t>(static_cast<double>(p.ops) * scale);
  if (p.ops == 0) p.ops = 1;

  workload::SimHeap heap(cfg.address_space, cfg.cores);
  std::vector<workload::TraceBundle> b;
  for (CoreId c = 0; c < cfg.cores; ++c) {
    b.push_back(workload::generate_phased(p, c, heap, nullptr));
  }
  sim::System sys(cfg);
  for (CoreId c = 0; c < cfg.cores; ++c) sys.load_trace(c, std::move(b[c].setup));
  sys.run();
  sys.reset_stats();
  for (CoreId c = 0; c < cfg.cores; ++c) {
    sys.load_trace(c, std::move(b[c].measured));
  }
  sys.run();
  Cell cell;
  cell.metrics = sys.metrics();
  cell.energy = sim::estimate_energy(sys.stats(), cfg.cores,
                                     mech == Mechanism::kKiln,
                                     cell.metrics.committed_txs);
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  sim::ExperimentOptions opts = sim::parse_bench_args(argc, argv);
  opts.scale *= 0.5;  // ablations sweep many cells; half-length runs suffice

  const WorkloadKind kWls[] = {WorkloadKind::kSps, WorkloadKind::kRbtree,
                               WorkloadKind::kHashtable};
  const Mechanism kMechs[] = {Mechanism::kOptimal, Mechanism::kTc,
                              Mechanism::kKiln, Mechanism::kSp};

  // Custom per-cell runner (energy accounting needs the live System), so
  // the parallel fan-out goes through run_jobs rather than run_sweep.
  const auto cells = sim::run_jobs(
      std::size(kWls) * std::size(kMechs), opts.jobs, [&](std::size_t i) {
        return run(kMechs[i % std::size(kMechs)], kWls[i / std::size(kMechs)],
                   opts.scale);
      });

  std::cout << "Extension: memory-system energy per transaction (nJ)\n"
               "(not a paper figure — STT-RAM write energy is the lever)\n\n";
  std::size_t i = 0;
  for (WorkloadKind wl : kWls) {
    Table t({"mechanism", "nJ/tx", "vs Optimal", "caches nJ/tx", "NTC nJ/tx",
             "NVM nJ/tx"});
    double base = 0.0;
    for (Mechanism mech : kMechs) {
      const Cell& c = cells[i++];
      if (mech == Mechanism::kOptimal) base = c.energy.per_tx_nj;
      const double txs = static_cast<double>(c.metrics.committed_txs);
      t.add_row(std::string(to_string(mech)),
                {c.energy.per_tx_nj,
                 base > 0 ? c.energy.per_tx_nj / base : 0.0,
                 (c.energy.l1_nj + c.energy.l2_nj + c.energy.llc_nj) / txs,
                 c.energy.ntc_nj / txs, c.energy.nvm_nj / txs},
                1);
    }
    std::cout << to_string(wl) << ":\n";
    t.print(std::cout);
    std::cout << '\n';
  }
  return 0;
}
