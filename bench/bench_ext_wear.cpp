// Extension E3 (beyond the paper) — NVM endurance: per-line write
// concentration by mechanism. SP hammers its log region; TC spreads
// committed lines but writes every transaction; Kiln and Optimal coalesce
// in caches. Max-writes-per-line is the wear-leveling budget driver.
//
// Usage: bench_ext_wear [scale] [--jobs=N]
#include <iostream>
#include <vector>

#include "common/table.hpp"
#include "sim/experiment.hpp"
#include "sim/sweep.hpp"
#include "sim/system.hpp"
#include "workload/workloads.hpp"

namespace {

using namespace ntcsim;

mem::WearStats run_wear(Mechanism mech, WorkloadKind wl, double scale) {
  SystemConfig cfg = SystemConfig::experiment();
  cfg.mechanism = mech;
  workload::WorkloadParams p = workload::default_params(wl);
  p.ops = static_cast<std::size_t>(static_cast<double>(p.ops) * scale);
  if (p.ops == 0) p.ops = 1;
  workload::SimHeap heap(cfg.address_space, cfg.cores);
  sim::System sys(cfg);
  for (CoreId c = 0; c < cfg.cores; ++c) {
    sys.load_trace(c, workload::generate(p, c, heap, nullptr));
  }
  sys.run();
  return sys.memory().nvm_wear();
}

}  // namespace

int main(int argc, char** argv) {
  sim::ExperimentOptions opts = sim::parse_bench_args(argc, argv);
  opts.scale *= 0.5;  // sweeps many cells; half-length runs suffice

  const WorkloadKind kWls[] = {WorkloadKind::kSps, WorkloadKind::kQueue,
                               WorkloadKind::kHashtable};
  const Mechanism kMechs[] = {Mechanism::kOptimal, Mechanism::kTc,
                              Mechanism::kKiln, Mechanism::kSp};

  // Custom per-cell runner (WearStats, not Metrics), so the parallel
  // fan-out goes through run_jobs rather than run_sweep.
  const auto cells = sim::run_jobs(
      std::size(kWls) * std::size(kMechs), opts.jobs, [&](std::size_t i) {
        return run_wear(kMechs[i % std::size(kMechs)],
                        kWls[i / std::size(kMechs)], opts.scale);
      });

  std::cout << "Extension: NVM per-line wear (whole run incl. setup)\n"
               "max = hottest line's array writes; the wear-leveling driver\n\n";
  std::size_t i = 0;
  for (WorkloadKind wl : kWls) {
    Table t({"mechanism", "lines touched", "total writes", "max/line",
             "mean/line"});
    for (Mechanism mech : kMechs) {
      const mem::WearStats& w = cells[i++];
      t.add_row(std::string(to_string(mech)),
                {static_cast<double>(w.lines_touched),
                 static_cast<double>(w.total_writes),
                 static_cast<double>(w.max_writes), w.mean_writes},
                1);
    }
    std::cout << to_string(wl) << ":\n";
    t.print(std::cout);
    std::cout << '\n';
  }
  std::cout << "The `queue` row is the stress case: its head/tail control\n"
               "words absorb a write per transaction under TC and SP.\n";
  return 0;
}
