// Extension E3 (beyond the paper) — NVM endurance: per-line write
// concentration by mechanism. SP hammers its log region; TC spreads
// committed lines but writes every transaction; Kiln and Optimal coalesce
// in caches. Max-writes-per-line is the wear-leveling budget driver.
#include <iostream>

#include "common/table.hpp"
#include "sim/experiment.hpp"
#include "sim/system.hpp"
#include "workload/workloads.hpp"

namespace {

using namespace ntcsim;

mem::WearStats run_wear(Mechanism mech, WorkloadKind wl, double scale) {
  SystemConfig cfg = SystemConfig::experiment();
  cfg.mechanism = mech;
  workload::WorkloadParams p = workload::default_params(wl);
  p.ops = static_cast<std::size_t>(static_cast<double>(p.ops) * scale);
  if (p.ops == 0) p.ops = 1;
  workload::SimHeap heap(cfg.address_space, cfg.cores);
  sim::System sys(cfg);
  for (CoreId c = 0; c < cfg.cores; ++c) {
    sys.load_trace(c, workload::generate(p, c, heap, nullptr));
  }
  sys.run();
  return sys.memory().nvm_wear();
}

}  // namespace

int main(int argc, char** argv) {
  sim::ExperimentOptions opts = sim::parse_bench_args(argc, argv);
  opts.scale *= 0.5;  // sweeps many cells; half-length runs suffice
  std::cout << "Extension: NVM per-line wear (whole run incl. setup)\n"
               "max = hottest line's array writes; the wear-leveling driver\n\n";
  for (WorkloadKind wl : {WorkloadKind::kSps, WorkloadKind::kQueue,
                          WorkloadKind::kHashtable}) {
    Table t({"mechanism", "lines touched", "total writes", "max/line",
             "mean/line"});
    for (Mechanism mech : {Mechanism::kOptimal, Mechanism::kTc,
                           Mechanism::kKiln, Mechanism::kSp}) {
      const mem::WearStats w = run_wear(mech, wl, opts.scale);
      t.add_row(std::string(to_string(mech)),
                {static_cast<double>(w.lines_touched),
                 static_cast<double>(w.total_writes),
                 static_cast<double>(w.max_writes), w.mean_writes},
                1);
    }
    std::cout << to_string(wl) << ":\n";
    t.print(std::cout);
    std::cout << '\n';
  }
  std::cout << "The `queue` row is the stress case: its head/tail control\n"
               "words absorb a write per transaction under TC and SP.\n";
  return 0;
}
