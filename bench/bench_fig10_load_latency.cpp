// Figure 10 — CPU persistent-load latency normalized to Optimal. Paper:
// Kiln is the clear worst (commit flushes block cache and memory requests,
// bursts of traffic); TC tracks Optimal.
//
// Usage: bench_fig10_load_latency [scale] [--jobs=N]
#include <iostream>

#include "sim/experiment.hpp"

int main(int argc, char** argv) {
  using namespace ntcsim;
  const sim::ExperimentOptions opts = sim::parse_bench_args(argc, argv);
  const SystemConfig cfg = SystemConfig::experiment();
  const sim::Matrix matrix = sim::run_matrix(cfg, opts);
  sim::print_figure(
      std::cout, "Figure 10: Persistent load latency", matrix,
      [](const sim::Metrics& m) { return m.pload_latency; },
      "Mean persistent-load latency normalized to Optimal; lower is better.\n"
      "Paper: Kiln worst by a wide margin; TC close to Optimal.");
  return 0;
}
