// Figure 6 — normalized IPC of SP / TC / Kiln / Optimal over the five
// workloads. Paper: SP ~= 0.477, TC ~= 0.985, Kiln ~= 0.878 of Optimal.
//
// Usage: bench_fig6_ipc [scale] [--jobs=N]
//   scale < 1 shrinks the measured phase; --jobs runs the 20 matrix cells
//   on N worker threads (default: all cores), bit-identical to serial.
#include <iostream>

#include "sim/experiment.hpp"

int main(int argc, char** argv) {
  using namespace ntcsim;
  const sim::ExperimentOptions opts = sim::parse_bench_args(argc, argv);
  const SystemConfig cfg = SystemConfig::experiment();
  const sim::Matrix matrix = sim::run_matrix(cfg, opts);
  sim::print_figure(
      std::cout, "Figure 6: Performance improvements (IPC)", matrix,
      [](const sim::Metrics& m) { return m.ipc; },
      "IPC normalized to Optimal (no persistence support); higher is better.\n"
      "Paper gmean targets: SP ~0.48, TC ~0.985, Kiln ~0.88.");
  return 0;
}
