// Figure 7 — normalized transaction throughput (transactions per cycle).
// Paper: SP ~= 0.306, TC ~= 0.985, Kiln ~= 0.878 of Optimal.
//
// Usage: bench_fig7_throughput [scale] [--jobs=N]
#include <iostream>

#include "sim/experiment.hpp"

int main(int argc, char** argv) {
  using namespace ntcsim;
  const sim::ExperimentOptions opts = sim::parse_bench_args(argc, argv);
  const SystemConfig cfg = SystemConfig::experiment();
  const sim::Matrix matrix = sim::run_matrix(cfg, opts);
  sim::print_figure(
      std::cout, "Figure 7: Performance improvements (Throughput)", matrix,
      [](const sim::Metrics& m) { return m.tx_per_kilocycle; },
      "Transactions/cycle normalized to Optimal; higher is better.\n"
      "Paper gmean targets: SP ~0.31, TC ~0.985, Kiln ~0.88.");
  return 0;
}
