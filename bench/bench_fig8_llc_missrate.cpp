// Figure 8 — LLC miss rate normalized to Optimal. Paper: Kiln incurs ~6 %
// higher LLC miss rate (uncommitted blocks held in the LLC shrink its
// usable capacity); TC matches Optimal.
//
// Usage: bench_fig8_llc_missrate [scale] [--jobs=N]
#include <iostream>

#include "sim/experiment.hpp"

int main(int argc, char** argv) {
  using namespace ntcsim;
  const sim::ExperimentOptions opts = sim::parse_bench_args(argc, argv);
  const SystemConfig cfg = SystemConfig::experiment();
  const sim::Matrix matrix = sim::run_matrix(cfg, opts);
  sim::print_figure(
      std::cout, "Figure 8: LLC miss rate", matrix,
      [](const sim::Metrics& m) { return m.llc_miss_rate; },
      "LLC miss rate normalized to Optimal; lower is better.\n"
      "Paper: Kiln above Optimal; TC at or below Optimal.");
  return 0;
}
