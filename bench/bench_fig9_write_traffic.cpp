// Figure 9 — write traffic to the NVM normalized to Optimal. Paper: SP
// close to 2x (logging + cache flushes); TC and Kiln in between, with
// TC > Kiln (TC writes every committed transaction to NVM, Kiln coalesces
// in the nonvolatile LLC).
//
// Usage: bench_fig9_write_traffic [scale] [--jobs=N]
#include <iostream>

#include "common/table.hpp"
#include "sim/experiment.hpp"

int main(int argc, char** argv) {
  using namespace ntcsim;
  const sim::ExperimentOptions opts = sim::parse_bench_args(argc, argv);
  const SystemConfig cfg = SystemConfig::experiment();
  const sim::Matrix matrix = sim::run_matrix(cfg, opts);
  sim::print_figure(
      std::cout, "Figure 9: Write traffic to NVM", matrix,
      [](const sim::Metrics& m) { return static_cast<double>(m.nvm_writes); },
      "NVM line writes normalized to Optimal; lower is better.\n"
      "Paper: SP ~2x Optimal; SP > TC > Kiln >= Optimal.");

  // Supplementary: absolute write counts by source path (TC analysis).
  std::cout << "Absolute NVM writes (lines) per workload:\n";
  Table t({"workload", "SP", "TC", "Kiln", "Optimal"});
  for (const auto& [wl, row] : matrix) {
    t.add_row(std::string(to_string(wl)),
              {static_cast<double>(row.at(Mechanism::kSp).nvm_writes),
               static_cast<double>(row.at(Mechanism::kTc).nvm_writes),
               static_cast<double>(row.at(Mechanism::kKiln).nvm_writes),
               static_cast<double>(row.at(Mechanism::kOptimal).nvm_writes)},
              0);
  }
  t.print(std::cout);
  return 0;
}
