// Microbenchmark M2 — host-side throughput of the substrate models:
// simulation cycles per second for the end-to-end system, workload trace
// generation rates, and the functional-image hot paths.
#include <benchmark/benchmark.h>

#include "recovery/images.hpp"
#include "sim/system.hpp"
#include "workload/workloads.hpp"

namespace {

using namespace ntcsim;

void BM_TraceGeneration(benchmark::State& state) {
  const auto kind = static_cast<WorkloadKind>(state.range(0));
  workload::WorkloadParams p = workload::default_params(kind);
  p.setup_elems = 2000;
  p.ops = 500;
  std::size_t ops = 0;
  for (auto _ : state) {
    workload::SimHeap heap(AddressSpace{}, 1);
    const core::Trace t = workload::generate(p, 0, heap, nullptr);
    ops += t.size();
    benchmark::DoNotOptimize(t.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(ops));
}
BENCHMARK(BM_TraceGeneration)
    ->Arg(static_cast<int>(WorkloadKind::kSps))
    ->Arg(static_cast<int>(WorkloadKind::kRbtree))
    ->Arg(static_cast<int>(WorkloadKind::kBtree))
    ->Arg(static_cast<int>(WorkloadKind::kHashtable))
    ->Arg(static_cast<int>(WorkloadKind::kGraph));

void BM_SimulatedCyclesPerSecond(benchmark::State& state) {
  const auto mech = static_cast<Mechanism>(state.range(0));
  SystemConfig cfg = SystemConfig::experiment();
  cfg.cores = 1;
  cfg.mechanism = mech;
  workload::WorkloadParams p = workload::default_params(WorkloadKind::kSps);
  p.setup_elems = 4000;
  p.ops = 800;
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    workload::SimHeap heap(cfg.address_space, 1);
    sim::System sys(cfg);
    sys.load_trace(0, workload::generate(p, 0, heap, nullptr));
    sys.run();
    cycles += sys.now();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(cycles));
  state.SetLabel("items = simulated cycles");
}
BENCHMARK(BM_SimulatedCyclesPerSecond)
    ->Arg(static_cast<int>(Mechanism::kOptimal))
    ->Arg(static_cast<int>(Mechanism::kTc))
    ->Arg(static_cast<int>(Mechanism::kSp))
    ->Arg(static_cast<int>(Mechanism::kKiln))
    ->Unit(benchmark::kMillisecond);

void BM_WordImageStore(benchmark::State& state) {
  recovery::WordImage img;
  Addr a = 0;
  for (auto _ : state) {
    a += 8;
    img.store(a & 0xFFFFF8, a);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WordImageStore);

void BM_WordImageWordsInLine(benchmark::State& state) {
  recovery::WordImage img;
  for (Addr a = 0; a < 1 << 16; a += 8) img.store(a, a);
  Addr line = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(img.words_in_line((line += 64) & 0xFFC0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WordImageWordsInLine);

}  // namespace
