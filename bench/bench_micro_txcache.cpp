// Microbenchmark M1 — host-side cost of the transaction-cache model's
// structure operations (insert/merge, commit CAM match, probe, full
// write-commit-drain cycle). These bound the simulator's own speed, not
// simulated time.
#include <benchmark/benchmark.h>

#include "common/event_queue.hpp"
#include "common/stats.hpp"
#include "mem/memory_system.hpp"
#include "txcache/tx_cache.hpp"

namespace {

using namespace ntcsim;

struct Fixture {
  SystemConfig cfg = SystemConfig::paper();
  EventQueue events;
  StatSet stats;
  mem::MemorySystem mem{cfg, events, stats};
  txcache::TxCache ntc{"ntc0", 0, cfg.ntc, cfg.address_space, mem, stats};
  Addr base = cfg.address_space.heap_base();
};

void BM_NtcInsertDistinctLines(benchmark::State& state) {
  Fixture f;
  Cycle now = 0;
  TxId tx = 1;
  std::size_t i = 0;
  for (auto _ : state) {
    const Addr addr = f.base + (i % 32) * 64;
    ++i;
    if (!f.ntc.write(now, addr, i, tx)) {
      f.ntc.commit(tx++);
      for (int k = 0; k < 400; ++k) {
        f.events.drain_until(now);
        f.ntc.tick(now);
        f.mem.tick(now);
        ++now;
      }
      ++tx;  // keep core-register-style increasing ids
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NtcInsertDistinctLines);

void BM_NtcCoalescingWrite(benchmark::State& state) {
  Fixture f;
  Cycle now = 0;
  f.ntc.write(now, f.base, 0, 1);
  std::size_t i = 0;
  for (auto _ : state) {
    const Addr addr = f.base + (i % 8) * 8;
    ++i;
    benchmark::DoNotOptimize(f.ntc.write(now, addr, i, 1));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NtcCoalescingWrite);

void BM_NtcProbe(benchmark::State& state) {
  Fixture f;
  for (unsigned i = 0; i < 32; ++i) f.ntc.write(0, f.base + i * 64, i, 1);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.ntc.probe(f.base + (i++ % 64) * 64));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NtcProbe);

void BM_NtcCommitCamMatch(benchmark::State& state) {
  Fixture f;
  for (auto _ : state) {
    state.PauseTiming();
    Fixture fresh;
    for (unsigned i = 0; i < 32; ++i) fresh.ntc.write(0, fresh.base + i * 64, i, 1);
    state.ResumeTiming();
    fresh.ntc.commit(1);
  }
}
BENCHMARK(BM_NtcCommitCamMatch);

void BM_NtcFullDrainCycle(benchmark::State& state) {
  // One complete write -> commit -> NVM drain -> ack round per iteration.
  Fixture f;
  Cycle now = 0;
  TxId tx = 1;
  for (auto _ : state) {
    f.ntc.write(now, f.base, tx, tx);
    f.ntc.commit(tx++);
    while (!f.ntc.drained() || f.ntc.occupancy() > 0) {
      f.events.drain_until(now);
      f.ntc.tick(now);
      f.mem.tick(now);
      ++now;
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NtcFullDrainCycle);

}  // namespace
