// Table 1 — summary of major hardware overhead, computed from the machine
// configuration exactly as §4.4 does: a 4 KB per-core transaction cache
// with one line per transaction bounds TxIDs at 64, so all TxID state is
// 16 bits; P/V and entry-state flags are single bits.
#include <cmath>
#include <iostream>

#include "common/config.hpp"
#include "common/table.hpp"

int main() {
  using namespace ntcsim;
  const SystemConfig cfg = SystemConfig::paper();

  const std::uint64_t ntc_entries = cfg.ntc.entries();
  // §4.4: "4 * 1024 / 64 = 64 executed transactions on a core" -> 16-bit
  // TxID registers and array fields (the paper rounds 6 bits up to a
  // 16-bit architectural register).
  const unsigned txid_bits = 16;

  Table t({"Component", "Type", "Size"});
  t.add_row({"CPU TxID/Mode register", "flip-flops",
             std::to_string(txid_bits) + " bits"});
  t.add_row({"CPU Next TxID register", "flip-flops",
             std::to_string(txid_bits) + " bits"});
  t.add_row({"Cache P/V flag (per line)", "SRAM", "1 bit"});
  t.add_row({"NTC TxID in data array (per entry)", "STTRAM",
             std::to_string(txid_bits) + " bits"});
  t.add_row({"NTC State in data array (per entry)", "STTRAM", "1 bit"});
  t.add_row({"NTC head/tail pointer", "flip-flops",
             "2 x " + std::to_string(static_cast<int>(
                          std::ceil(std::log2(ntc_entries)))) +
                 " bits"});
  t.add_row({"NTC data array (per core)", "STTRAM",
             std::to_string(cfg.ntc.size_bytes >> 10) + " KB (" +
                 std::to_string(ntc_entries) + " x 64 B entries)"});
  std::cout << "Table 1: Summary of major hardware overhead\n";
  t.print(std::cout);

  // Derived totals, mirroring the §4.4 prose.
  const std::uint64_t cache_lines =
      cfg.cores * (cfg.l1.lines() + cfg.l2.lines()) + cfg.llc.lines();
  const std::uint64_t pv_bits = cache_lines;  // 1 bit per line
  const std::uint64_t ntc_meta_bits = cfg.cores * ntc_entries * (txid_bits + 1);
  const std::uint64_t ntc_bytes = cfg.cores * cfg.ntc.size_bytes;
  std::cout << "\nDerived totals for the Table 2 machine (" << cfg.cores
            << " cores):\n"
            << "  P/V flags across the cache hierarchy: " << pv_bits
            << " bits (" << pv_bits / 8 / 1024 << " KB)\n"
            << "  NTC per-entry metadata (TxID+state):  " << ntc_meta_bits
            << " bits (" << ntc_meta_bits / 8 << " B)\n"
            << "  NTC data arrays:                      " << (ntc_bytes >> 10)
            << " KB total vs " << (cfg.llc.size_bytes >> 20)
            << " MB LLC (" << 100.0 * static_cast<double>(ntc_bytes) /
                                 static_cast<double>(cfg.llc.size_bytes)
            << " %)\n";
  return 0;
}
