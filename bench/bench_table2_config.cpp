// Tables 2 and 3 — the simulated machine configuration and the workload
// suite, printed from the same structs the simulator actually runs with
// (so the tables cannot drift from the implementation).
#include <iostream>
#include <string>

#include "common/config.hpp"
#include "common/table.hpp"
#include "workload/workloads.hpp"

int main() {
  using namespace ntcsim;
  const SystemConfig c = SystemConfig::paper();

  auto ns = [&](unsigned cycles) {
    return Table::fmt(static_cast<double>(cycles) / c.ghz, 1) + " ns";
  };

  Table t({"Device", "Description"});
  t.add_row({"CPU", std::to_string(c.cores) + " cores, " +
                        Table::fmt(c.ghz, 1) + " GHz, " +
                        std::to_string(c.core.issue_width) +
                        " issue, out of order (" +
                        std::to_string(c.core.rob_entries) + "-entry window)"});
  t.add_row({"L1 I/D", "Private, " + std::to_string(c.l1.size_bytes >> 10) +
                           " KB/core, " +
                           ns(c.l1.latency_cycles) + ", " +
                           std::to_string(c.l1.ways) + "-way"});
  t.add_row({"L2", "Private, " + std::to_string(c.l2.size_bytes >> 10) +
                       " KB/core, " +
                       ns(c.l2.latency_cycles) + ", " +
                       std::to_string(c.l2.ways) + "-way"});
  t.add_row({"L3 (LLC)", "Shared, " + std::to_string(c.llc.size_bytes >> 20) +
                             " MB, " +
                             ns(c.llc.latency_cycles) + ", " + std::to_string(c.llc.ways) + "-way"});
  t.add_row({"Transaction cache",
             "Private, " + std::to_string(c.ntc.size_bytes >> 10) +
                 " KB/core, fully-associative CAM FIFO (STT-RAM), " +
                 ns(c.ntc.latency_cycles)});
  t.add_row({"Memory controllers",
             std::to_string(c.nvm.read_queue) + "/" +
                 std::to_string(c.nvm.write_queue) +
                 "-entry read/write queue, read-first, write drain at " +
                 std::to_string(static_cast<int>(
                     c.nvm.drain_high_watermark * 100)) +
                 " % full; 2 controllers (DRAM + NVM)"});
  t.add_row({"NVM memory (STT-RAM)",
             std::to_string(c.address_space.nvm_bytes >> 30) + " GB, " +
                 std::to_string(c.nvm.ranks) + " ranks, " +
                 std::to_string(c.nvm.banks_per_rank) + " banks/rank, " +
                 std::to_string(c.nvm.timing.row_miss / 2) + "-ns read, " +
                 std::to_string((c.nvm.timing.row_miss +
                                 c.nvm.timing.write_extra) / 2) +
                 "-ns write"});
  t.add_row({"DRAM memory", std::to_string(c.address_space.dram_bytes >> 30) +
                                " GB, " + std::to_string(c.dram.ranks) +
                                " ranks, " +
                                std::to_string(c.dram.banks_per_rank) +
                                " banks/rank"});
  std::cout << "Table 2: Machine Configuration\n";
  t.print(std::cout);

  std::cout << "\nTable 3: Workloads\n";
  Table w({"Name", "Description", "setup", "measured ops"});
  for (WorkloadKind kind :
       {WorkloadKind::kGraph, WorkloadKind::kRbtree, WorkloadKind::kSps,
        WorkloadKind::kBtree, WorkloadKind::kHashtable}) {
    const auto p = workload::default_params(kind);
    w.add_row({std::string(to_string(kind)), std::string(workload::description(kind)),
               std::to_string(p.setup_elems), std::to_string(p.ops)});
  }
  w.print(std::cout);
  return 0;
}
