// Tail-latency vs offered load: sweeps the open-loop arrival rate across
// every registered mechanism and reports per-request latency percentiles,
// locating each mechanism's saturation knee — the rate where achieved
// throughput falls measurably short of offered load and the latency tail
// departs. The serving-scenario counterpart of the paper's throughput
// figures: mechanisms with identical mean IPC separate here when an NTC
// drain burst or a Kiln commit window stalls a request.
//
//   bench_tail_latency [scale] [--scale=X] [--jobs=N] [--profile[=FILE]]
//
// CSV columns: mechanism, offered req/kcycle/core, requests completed,
// achieved tx/kcycle (all cores), mean and p50/p95/p99/p99.9 request
// latency in cycles. Results are bit-identical for any --jobs value
// (tests/test_sweep.cpp ServiceRateSweepIsBitIdenticalAcrossJobs).
#include <cstdio>
#include <string>
#include <vector>

#include "sim/experiment.hpp"
#include "sim/sweep.hpp"
#include "workload/workloads.hpp"

using namespace ntcsim;

int main(int argc, char** argv) {
  const sim::ExperimentOptions opts = sim::parse_bench_args(argc, argv);

  // Offered load per core, requests per kilocycle. The low rates are
  // comfortably below every mechanism's service rate; the top ones push
  // the slow mechanisms past saturation.
  const double kRates[] = {0.5, 1.0, 2.0, 4.0, 8.0};
  const WorkloadKind wl = WorkloadKind::kHashtable;
  const std::vector<Mechanism> mechs = sim::matrix_mechanisms();

  const std::size_t base_ops = workload::default_params(wl).ops;
  std::vector<sim::JobSpec> specs;
  for (Mechanism mech : mechs) {
    for (double rate : kRates) {
      sim::JobSpec spec;
      spec.mech = mech;
      spec.wl = wl;
      spec.cfg = SystemConfig::experiment();
      spec.cfg.service.enabled = true;
      spec.cfg.service.rate = rate;
      spec.cfg.service.requests = static_cast<std::uint64_t>(
          static_cast<double>(base_ops) * opts.scale);
      if (spec.cfg.service.requests == 0) spec.cfg.service.requests = 1;
      spec.opts = opts;
      specs.push_back(spec);
    }
  }
  const std::vector<sim::Metrics> cells = sim::run_sweep(specs, opts.jobs);

  std::printf(
      "mechanism,rate_per_kcycle,requests,achieved_tx_per_kilocycle,"
      "req_latency,req_latency_p50,req_latency_p95,req_latency_p99,"
      "req_latency_p999\n");
  std::size_t i = 0;
  for (Mechanism mech : mechs) {
    double knee = 0.0;
    double base_ratio = 0.0;
    for (double rate : kRates) {
      const sim::Metrics& m = cells[i++];
      std::printf("%s,%g,%llu,%.4f,%.1f,%llu,%llu,%llu,%llu\n",
                  std::string(sim::mechanism_label(mech)).c_str(), rate,
                  static_cast<unsigned long long>(m.requests),
                  m.tx_per_kilocycle, m.req_latency,
                  static_cast<unsigned long long>(m.req_latency_p50),
                  static_cast<unsigned long long>(m.req_latency_p95),
                  static_cast<unsigned long long>(m.req_latency_p99),
                  static_cast<unsigned long long>(m.req_latency_p999));
      // Offered load is per core; achieved tx/kcycle counts all cores.
      // Startup + final-drain cycles make achieved/offered < 1 even when
      // nothing queues (more so at small --scale), so saturation is a
      // *drop* in that ratio relative to the lowest (unsaturated) rate,
      // not an absolute shortfall.
      const double offered =
          rate * static_cast<double>(specs[i - 1].cfg.cores);
      const double ratio = m.tx_per_kilocycle / offered;
      if (base_ratio == 0.0) base_ratio = ratio;
      if (knee == 0.0 && ratio < 0.9 * base_ratio) knee = rate;
    }
    if (knee > 0.0) {
      std::fprintf(stderr, "%s: saturation knee near %g req/kcycle/core\n",
                   std::string(sim::mechanism_label(mech)).c_str(), knee);
    } else {
      std::fprintf(stderr, "%s: no saturation up to %g req/kcycle/core\n",
                   std::string(sim::mechanism_label(mech)).c_str(),
                   kRates[std::size(kRates) - 1]);
    }
  }
  return 0;
}
