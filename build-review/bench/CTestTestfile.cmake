# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build-review/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(smoke_bench_fig6_ipc "/root/repo/build-review/bench/bench_fig6_ipc" "0.02")
set_tests_properties(smoke_bench_fig6_ipc PROPERTIES  LABELS "smoke" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;30;add_test;/root/repo/bench/CMakeLists.txt;34;ntc_smoke;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_ablation_replacement "/root/repo/build-review/bench/bench_ablation_replacement" "0.05" "--jobs=4")
set_tests_properties(smoke_bench_ablation_replacement PROPERTIES  LABELS "smoke" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;30;add_test;/root/repo/bench/CMakeLists.txt;35;ntc_smoke;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_ext_wear "/root/repo/build-review/bench/bench_ext_wear" "0.02")
set_tests_properties(smoke_bench_ext_wear PROPERTIES  LABELS "smoke" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;30;add_test;/root/repo/bench/CMakeLists.txt;36;ntc_smoke;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_tail_latency "/root/repo/build-review/bench/bench_tail_latency" "0.02" "--jobs=4")
set_tests_properties(smoke_bench_tail_latency PROPERTIES  LABELS "smoke" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;30;add_test;/root/repo/bench/CMakeLists.txt;37;ntc_smoke;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_cluster_scaling "/root/repo/build-review/bench/bench_cluster_scaling" "0.02" "--jobs=4")
set_tests_properties(smoke_bench_cluster_scaling PROPERTIES  LABELS "smoke" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;30;add_test;/root/repo/bench/CMakeLists.txt;38;ntc_smoke;/root/repo/bench/CMakeLists.txt;0;")
