# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build-review/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(smoke_ntcsim_serve "/root/repo/build-review/tools/ntcsim" "--serve" "--rate=2" "--requests=60" "--workload=hashtable" "--preset=tiny" "--setup=128" "--csv")
set_tests_properties(smoke_ntcsim_serve PROPERTIES  LABELS "smoke" PASS_REGULAR_EXPRESSION "req_latency_p999" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
subdirs("ntclint")
