# CMake generated Testfile for 
# Source directory: /root/repo/tools/ntclint
# Build directory: /root/repo/build-review/tools/ntclint
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
