file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_kiln.dir/bench_ablation_kiln.cpp.o"
  "CMakeFiles/bench_ablation_kiln.dir/bench_ablation_kiln.cpp.o.d"
  "bench_ablation_kiln"
  "bench_ablation_kiln.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_kiln.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
