# Empty compiler generated dependencies file for bench_ablation_kiln.
# This may be replaced when dependencies are built.
