file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_memctrl.dir/bench_ablation_memctrl.cpp.o"
  "CMakeFiles/bench_ablation_memctrl.dir/bench_ablation_memctrl.cpp.o.d"
  "bench_ablation_memctrl"
  "bench_ablation_memctrl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_memctrl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
