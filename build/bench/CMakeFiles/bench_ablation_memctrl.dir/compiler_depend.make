# Empty compiler generated dependencies file for bench_ablation_memctrl.
# This may be replaced when dependencies are built.
