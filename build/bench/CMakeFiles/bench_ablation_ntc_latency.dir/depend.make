# Empty dependencies file for bench_ablation_ntc_latency.
# This may be replaced when dependencies are built.
