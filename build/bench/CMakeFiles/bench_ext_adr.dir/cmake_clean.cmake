file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_adr.dir/bench_ext_adr.cpp.o"
  "CMakeFiles/bench_ext_adr.dir/bench_ext_adr.cpp.o.d"
  "bench_ext_adr"
  "bench_ext_adr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_adr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
