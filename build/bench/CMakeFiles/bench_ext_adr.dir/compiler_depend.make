# Empty compiler generated dependencies file for bench_ext_adr.
# This may be replaced when dependencies are built.
