# Empty dependencies file for bench_fig6_ipc.
# This may be replaced when dependencies are built.
