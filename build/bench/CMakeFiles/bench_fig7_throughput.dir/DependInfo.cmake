
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig7_throughput.cpp" "bench/CMakeFiles/bench_fig7_throughput.dir/bench_fig7_throughput.cpp.o" "gcc" "bench/CMakeFiles/bench_fig7_throughput.dir/bench_fig7_throughput.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ntc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/persist/CMakeFiles/ntc_persist.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ntc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ntc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/ntc_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/txcache/CMakeFiles/ntc_txcache.dir/DependInfo.cmake"
  "/root/repo/build/src/recovery/CMakeFiles/ntc_recovery.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ntc_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ntc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
