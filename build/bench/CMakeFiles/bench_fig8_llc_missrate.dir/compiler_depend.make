# Empty compiler generated dependencies file for bench_fig8_llc_missrate.
# This may be replaced when dependencies are built.
