file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_txcache.dir/bench_micro_txcache.cpp.o"
  "CMakeFiles/bench_micro_txcache.dir/bench_micro_txcache.cpp.o.d"
  "bench_micro_txcache"
  "bench_micro_txcache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_txcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
