# Empty dependencies file for bench_micro_txcache.
# This may be replaced when dependencies are built.
