file(REMOVE_RECURSE
  "CMakeFiles/mechanism_tour.dir/mechanism_tour.cpp.o"
  "CMakeFiles/mechanism_tour.dir/mechanism_tour.cpp.o.d"
  "mechanism_tour"
  "mechanism_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mechanism_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
