# Empty dependencies file for mechanism_tour.
# This may be replaced when dependencies are built.
