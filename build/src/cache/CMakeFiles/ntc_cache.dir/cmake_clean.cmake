file(REMOVE_RECURSE
  "CMakeFiles/ntc_cache.dir/array.cpp.o"
  "CMakeFiles/ntc_cache.dir/array.cpp.o.d"
  "CMakeFiles/ntc_cache.dir/hierarchy.cpp.o"
  "CMakeFiles/ntc_cache.dir/hierarchy.cpp.o.d"
  "libntc_cache.a"
  "libntc_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntc_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
