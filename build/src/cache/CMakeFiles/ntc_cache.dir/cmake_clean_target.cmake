file(REMOVE_RECURSE
  "libntc_cache.a"
)
