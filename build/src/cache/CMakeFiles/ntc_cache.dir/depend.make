# Empty dependencies file for ntc_cache.
# This may be replaced when dependencies are built.
