file(REMOVE_RECURSE
  "CMakeFiles/ntc_common.dir/config.cpp.o"
  "CMakeFiles/ntc_common.dir/config.cpp.o.d"
  "CMakeFiles/ntc_common.dir/event_queue.cpp.o"
  "CMakeFiles/ntc_common.dir/event_queue.cpp.o.d"
  "CMakeFiles/ntc_common.dir/stats.cpp.o"
  "CMakeFiles/ntc_common.dir/stats.cpp.o.d"
  "CMakeFiles/ntc_common.dir/table.cpp.o"
  "CMakeFiles/ntc_common.dir/table.cpp.o.d"
  "libntc_common.a"
  "libntc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
