
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/core.cpp" "src/core/CMakeFiles/ntc_core.dir/core.cpp.o" "gcc" "src/core/CMakeFiles/ntc_core.dir/core.cpp.o.d"
  "/root/repo/src/core/trace.cpp" "src/core/CMakeFiles/ntc_core.dir/trace.cpp.o" "gcc" "src/core/CMakeFiles/ntc_core.dir/trace.cpp.o.d"
  "/root/repo/src/core/trace_io.cpp" "src/core/CMakeFiles/ntc_core.dir/trace_io.cpp.o" "gcc" "src/core/CMakeFiles/ntc_core.dir/trace_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ntc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/ntc_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/txcache/CMakeFiles/ntc_txcache.dir/DependInfo.cmake"
  "/root/repo/build/src/recovery/CMakeFiles/ntc_recovery.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ntc_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
