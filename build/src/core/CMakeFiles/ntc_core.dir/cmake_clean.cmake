file(REMOVE_RECURSE
  "CMakeFiles/ntc_core.dir/core.cpp.o"
  "CMakeFiles/ntc_core.dir/core.cpp.o.d"
  "CMakeFiles/ntc_core.dir/trace.cpp.o"
  "CMakeFiles/ntc_core.dir/trace.cpp.o.d"
  "CMakeFiles/ntc_core.dir/trace_io.cpp.o"
  "CMakeFiles/ntc_core.dir/trace_io.cpp.o.d"
  "libntc_core.a"
  "libntc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
