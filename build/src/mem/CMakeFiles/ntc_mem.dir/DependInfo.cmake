
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/address_map.cpp" "src/mem/CMakeFiles/ntc_mem.dir/address_map.cpp.o" "gcc" "src/mem/CMakeFiles/ntc_mem.dir/address_map.cpp.o.d"
  "/root/repo/src/mem/bank.cpp" "src/mem/CMakeFiles/ntc_mem.dir/bank.cpp.o" "gcc" "src/mem/CMakeFiles/ntc_mem.dir/bank.cpp.o.d"
  "/root/repo/src/mem/memory_controller.cpp" "src/mem/CMakeFiles/ntc_mem.dir/memory_controller.cpp.o" "gcc" "src/mem/CMakeFiles/ntc_mem.dir/memory_controller.cpp.o.d"
  "/root/repo/src/mem/memory_system.cpp" "src/mem/CMakeFiles/ntc_mem.dir/memory_system.cpp.o" "gcc" "src/mem/CMakeFiles/ntc_mem.dir/memory_system.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ntc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
