file(REMOVE_RECURSE
  "CMakeFiles/ntc_mem.dir/address_map.cpp.o"
  "CMakeFiles/ntc_mem.dir/address_map.cpp.o.d"
  "CMakeFiles/ntc_mem.dir/bank.cpp.o"
  "CMakeFiles/ntc_mem.dir/bank.cpp.o.d"
  "CMakeFiles/ntc_mem.dir/memory_controller.cpp.o"
  "CMakeFiles/ntc_mem.dir/memory_controller.cpp.o.d"
  "CMakeFiles/ntc_mem.dir/memory_system.cpp.o"
  "CMakeFiles/ntc_mem.dir/memory_system.cpp.o.d"
  "libntc_mem.a"
  "libntc_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntc_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
