file(REMOVE_RECURSE
  "libntc_mem.a"
)
