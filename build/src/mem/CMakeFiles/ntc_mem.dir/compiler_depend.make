# Empty compiler generated dependencies file for ntc_mem.
# This may be replaced when dependencies are built.
