file(REMOVE_RECURSE
  "CMakeFiles/ntc_persist.dir/kiln_unit.cpp.o"
  "CMakeFiles/ntc_persist.dir/kiln_unit.cpp.o.d"
  "CMakeFiles/ntc_persist.dir/policy.cpp.o"
  "CMakeFiles/ntc_persist.dir/policy.cpp.o.d"
  "CMakeFiles/ntc_persist.dir/sp_transform.cpp.o"
  "CMakeFiles/ntc_persist.dir/sp_transform.cpp.o.d"
  "libntc_persist.a"
  "libntc_persist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntc_persist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
