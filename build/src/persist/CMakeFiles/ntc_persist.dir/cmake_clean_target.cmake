file(REMOVE_RECURSE
  "libntc_persist.a"
)
