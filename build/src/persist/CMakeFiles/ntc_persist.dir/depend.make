# Empty dependencies file for ntc_persist.
# This may be replaced when dependencies are built.
