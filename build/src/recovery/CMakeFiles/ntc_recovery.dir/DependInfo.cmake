
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/recovery/images.cpp" "src/recovery/CMakeFiles/ntc_recovery.dir/images.cpp.o" "gcc" "src/recovery/CMakeFiles/ntc_recovery.dir/images.cpp.o.d"
  "/root/repo/src/recovery/journal.cpp" "src/recovery/CMakeFiles/ntc_recovery.dir/journal.cpp.o" "gcc" "src/recovery/CMakeFiles/ntc_recovery.dir/journal.cpp.o.d"
  "/root/repo/src/recovery/log_format.cpp" "src/recovery/CMakeFiles/ntc_recovery.dir/log_format.cpp.o" "gcc" "src/recovery/CMakeFiles/ntc_recovery.dir/log_format.cpp.o.d"
  "/root/repo/src/recovery/recovery.cpp" "src/recovery/CMakeFiles/ntc_recovery.dir/recovery.cpp.o" "gcc" "src/recovery/CMakeFiles/ntc_recovery.dir/recovery.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ntc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ntc_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
