file(REMOVE_RECURSE
  "CMakeFiles/ntc_recovery.dir/images.cpp.o"
  "CMakeFiles/ntc_recovery.dir/images.cpp.o.d"
  "CMakeFiles/ntc_recovery.dir/journal.cpp.o"
  "CMakeFiles/ntc_recovery.dir/journal.cpp.o.d"
  "CMakeFiles/ntc_recovery.dir/log_format.cpp.o"
  "CMakeFiles/ntc_recovery.dir/log_format.cpp.o.d"
  "CMakeFiles/ntc_recovery.dir/recovery.cpp.o"
  "CMakeFiles/ntc_recovery.dir/recovery.cpp.o.d"
  "libntc_recovery.a"
  "libntc_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntc_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
