file(REMOVE_RECURSE
  "libntc_recovery.a"
)
