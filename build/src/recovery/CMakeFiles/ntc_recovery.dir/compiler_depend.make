# Empty compiler generated dependencies file for ntc_recovery.
# This may be replaced when dependencies are built.
