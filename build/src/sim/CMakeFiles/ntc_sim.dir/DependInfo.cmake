
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/config_io.cpp" "src/sim/CMakeFiles/ntc_sim.dir/config_io.cpp.o" "gcc" "src/sim/CMakeFiles/ntc_sim.dir/config_io.cpp.o.d"
  "/root/repo/src/sim/energy.cpp" "src/sim/CMakeFiles/ntc_sim.dir/energy.cpp.o" "gcc" "src/sim/CMakeFiles/ntc_sim.dir/energy.cpp.o.d"
  "/root/repo/src/sim/experiment.cpp" "src/sim/CMakeFiles/ntc_sim.dir/experiment.cpp.o" "gcc" "src/sim/CMakeFiles/ntc_sim.dir/experiment.cpp.o.d"
  "/root/repo/src/sim/report.cpp" "src/sim/CMakeFiles/ntc_sim.dir/report.cpp.o" "gcc" "src/sim/CMakeFiles/ntc_sim.dir/report.cpp.o.d"
  "/root/repo/src/sim/system.cpp" "src/sim/CMakeFiles/ntc_sim.dir/system.cpp.o" "gcc" "src/sim/CMakeFiles/ntc_sim.dir/system.cpp.o.d"
  "/root/repo/src/sim/timeline.cpp" "src/sim/CMakeFiles/ntc_sim.dir/timeline.cpp.o" "gcc" "src/sim/CMakeFiles/ntc_sim.dir/timeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ntc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ntc_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/ntc_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ntc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/txcache/CMakeFiles/ntc_txcache.dir/DependInfo.cmake"
  "/root/repo/build/src/persist/CMakeFiles/ntc_persist.dir/DependInfo.cmake"
  "/root/repo/build/src/recovery/CMakeFiles/ntc_recovery.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ntc_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
