file(REMOVE_RECURSE
  "CMakeFiles/ntc_sim.dir/config_io.cpp.o"
  "CMakeFiles/ntc_sim.dir/config_io.cpp.o.d"
  "CMakeFiles/ntc_sim.dir/energy.cpp.o"
  "CMakeFiles/ntc_sim.dir/energy.cpp.o.d"
  "CMakeFiles/ntc_sim.dir/experiment.cpp.o"
  "CMakeFiles/ntc_sim.dir/experiment.cpp.o.d"
  "CMakeFiles/ntc_sim.dir/report.cpp.o"
  "CMakeFiles/ntc_sim.dir/report.cpp.o.d"
  "CMakeFiles/ntc_sim.dir/system.cpp.o"
  "CMakeFiles/ntc_sim.dir/system.cpp.o.d"
  "CMakeFiles/ntc_sim.dir/timeline.cpp.o"
  "CMakeFiles/ntc_sim.dir/timeline.cpp.o.d"
  "libntc_sim.a"
  "libntc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
