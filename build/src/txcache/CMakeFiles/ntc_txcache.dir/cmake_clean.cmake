file(REMOVE_RECURSE
  "CMakeFiles/ntc_txcache.dir/tx_cache.cpp.o"
  "CMakeFiles/ntc_txcache.dir/tx_cache.cpp.o.d"
  "libntc_txcache.a"
  "libntc_txcache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntc_txcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
