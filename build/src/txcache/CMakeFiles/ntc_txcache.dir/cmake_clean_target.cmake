file(REMOVE_RECURSE
  "libntc_txcache.a"
)
