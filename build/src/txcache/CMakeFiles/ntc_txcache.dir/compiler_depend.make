# Empty compiler generated dependencies file for ntc_txcache.
# This may be replaced when dependencies are built.
