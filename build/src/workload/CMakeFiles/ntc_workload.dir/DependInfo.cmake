
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/btree.cpp" "src/workload/CMakeFiles/ntc_workload.dir/btree.cpp.o" "gcc" "src/workload/CMakeFiles/ntc_workload.dir/btree.cpp.o.d"
  "/root/repo/src/workload/emitter.cpp" "src/workload/CMakeFiles/ntc_workload.dir/emitter.cpp.o" "gcc" "src/workload/CMakeFiles/ntc_workload.dir/emitter.cpp.o.d"
  "/root/repo/src/workload/graph.cpp" "src/workload/CMakeFiles/ntc_workload.dir/graph.cpp.o" "gcc" "src/workload/CMakeFiles/ntc_workload.dir/graph.cpp.o.d"
  "/root/repo/src/workload/hashtable.cpp" "src/workload/CMakeFiles/ntc_workload.dir/hashtable.cpp.o" "gcc" "src/workload/CMakeFiles/ntc_workload.dir/hashtable.cpp.o.d"
  "/root/repo/src/workload/queue.cpp" "src/workload/CMakeFiles/ntc_workload.dir/queue.cpp.o" "gcc" "src/workload/CMakeFiles/ntc_workload.dir/queue.cpp.o.d"
  "/root/repo/src/workload/rbtree.cpp" "src/workload/CMakeFiles/ntc_workload.dir/rbtree.cpp.o" "gcc" "src/workload/CMakeFiles/ntc_workload.dir/rbtree.cpp.o.d"
  "/root/repo/src/workload/sim_heap.cpp" "src/workload/CMakeFiles/ntc_workload.dir/sim_heap.cpp.o" "gcc" "src/workload/CMakeFiles/ntc_workload.dir/sim_heap.cpp.o.d"
  "/root/repo/src/workload/skiplist.cpp" "src/workload/CMakeFiles/ntc_workload.dir/skiplist.cpp.o" "gcc" "src/workload/CMakeFiles/ntc_workload.dir/skiplist.cpp.o.d"
  "/root/repo/src/workload/sps.cpp" "src/workload/CMakeFiles/ntc_workload.dir/sps.cpp.o" "gcc" "src/workload/CMakeFiles/ntc_workload.dir/sps.cpp.o.d"
  "/root/repo/src/workload/workloads.cpp" "src/workload/CMakeFiles/ntc_workload.dir/workloads.cpp.o" "gcc" "src/workload/CMakeFiles/ntc_workload.dir/workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ntc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ntc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/recovery/CMakeFiles/ntc_recovery.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/ntc_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/txcache/CMakeFiles/ntc_txcache.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ntc_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
