file(REMOVE_RECURSE
  "CMakeFiles/ntc_workload.dir/btree.cpp.o"
  "CMakeFiles/ntc_workload.dir/btree.cpp.o.d"
  "CMakeFiles/ntc_workload.dir/emitter.cpp.o"
  "CMakeFiles/ntc_workload.dir/emitter.cpp.o.d"
  "CMakeFiles/ntc_workload.dir/graph.cpp.o"
  "CMakeFiles/ntc_workload.dir/graph.cpp.o.d"
  "CMakeFiles/ntc_workload.dir/hashtable.cpp.o"
  "CMakeFiles/ntc_workload.dir/hashtable.cpp.o.d"
  "CMakeFiles/ntc_workload.dir/queue.cpp.o"
  "CMakeFiles/ntc_workload.dir/queue.cpp.o.d"
  "CMakeFiles/ntc_workload.dir/rbtree.cpp.o"
  "CMakeFiles/ntc_workload.dir/rbtree.cpp.o.d"
  "CMakeFiles/ntc_workload.dir/sim_heap.cpp.o"
  "CMakeFiles/ntc_workload.dir/sim_heap.cpp.o.d"
  "CMakeFiles/ntc_workload.dir/skiplist.cpp.o"
  "CMakeFiles/ntc_workload.dir/skiplist.cpp.o.d"
  "CMakeFiles/ntc_workload.dir/sps.cpp.o"
  "CMakeFiles/ntc_workload.dir/sps.cpp.o.d"
  "CMakeFiles/ntc_workload.dir/workloads.cpp.o"
  "CMakeFiles/ntc_workload.dir/workloads.cpp.o.d"
  "libntc_workload.a"
  "libntc_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntc_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
