file(REMOVE_RECURSE
  "libntc_workload.a"
)
