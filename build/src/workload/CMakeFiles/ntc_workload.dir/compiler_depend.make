# Empty compiler generated dependencies file for ntc_workload.
# This may be replaced when dependencies are built.
