file(REMOVE_RECURSE
  "CMakeFiles/test_emitter.dir/test_emitter.cpp.o"
  "CMakeFiles/test_emitter.dir/test_emitter.cpp.o.d"
  "test_emitter"
  "test_emitter.pdb"
  "test_emitter[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_emitter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
