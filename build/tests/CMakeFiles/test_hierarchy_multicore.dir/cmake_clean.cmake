file(REMOVE_RECURSE
  "CMakeFiles/test_hierarchy_multicore.dir/test_hierarchy_multicore.cpp.o"
  "CMakeFiles/test_hierarchy_multicore.dir/test_hierarchy_multicore.cpp.o.d"
  "test_hierarchy_multicore"
  "test_hierarchy_multicore.pdb"
  "test_hierarchy_multicore[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hierarchy_multicore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
