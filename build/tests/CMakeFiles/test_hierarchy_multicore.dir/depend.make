# Empty dependencies file for test_hierarchy_multicore.
# This may be replaced when dependencies are built.
