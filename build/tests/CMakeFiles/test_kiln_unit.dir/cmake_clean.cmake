file(REMOVE_RECURSE
  "CMakeFiles/test_kiln_unit.dir/test_kiln_unit.cpp.o"
  "CMakeFiles/test_kiln_unit.dir/test_kiln_unit.cpp.o.d"
  "test_kiln_unit"
  "test_kiln_unit.pdb"
  "test_kiln_unit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kiln_unit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
