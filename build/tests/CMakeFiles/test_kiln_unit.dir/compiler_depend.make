# Empty compiler generated dependencies file for test_kiln_unit.
# This may be replaced when dependencies are built.
