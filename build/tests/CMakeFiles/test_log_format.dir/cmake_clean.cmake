file(REMOVE_RECURSE
  "CMakeFiles/test_log_format.dir/test_log_format.cpp.o"
  "CMakeFiles/test_log_format.dir/test_log_format.cpp.o.d"
  "test_log_format"
  "test_log_format.pdb"
  "test_log_format[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_log_format.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
