# Empty dependencies file for test_log_format.
# This may be replaced when dependencies are built.
