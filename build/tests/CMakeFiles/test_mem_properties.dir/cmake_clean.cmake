file(REMOVE_RECURSE
  "CMakeFiles/test_mem_properties.dir/test_mem_properties.cpp.o"
  "CMakeFiles/test_mem_properties.dir/test_mem_properties.cpp.o.d"
  "test_mem_properties"
  "test_mem_properties.pdb"
  "test_mem_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mem_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
