# Empty compiler generated dependencies file for test_mem_properties.
# This may be replaced when dependencies are built.
