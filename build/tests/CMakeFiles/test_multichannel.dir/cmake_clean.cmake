file(REMOVE_RECURSE
  "CMakeFiles/test_multichannel.dir/test_multichannel.cpp.o"
  "CMakeFiles/test_multichannel.dir/test_multichannel.cpp.o.d"
  "test_multichannel"
  "test_multichannel.pdb"
  "test_multichannel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multichannel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
