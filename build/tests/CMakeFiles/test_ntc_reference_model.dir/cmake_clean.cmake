file(REMOVE_RECURSE
  "CMakeFiles/test_ntc_reference_model.dir/test_ntc_reference_model.cpp.o"
  "CMakeFiles/test_ntc_reference_model.dir/test_ntc_reference_model.cpp.o.d"
  "test_ntc_reference_model"
  "test_ntc_reference_model.pdb"
  "test_ntc_reference_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ntc_reference_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
