file(REMOVE_RECURSE
  "CMakeFiles/test_rank_constraints.dir/test_rank_constraints.cpp.o"
  "CMakeFiles/test_rank_constraints.dir/test_rank_constraints.cpp.o.d"
  "test_rank_constraints"
  "test_rank_constraints.pdb"
  "test_rank_constraints[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rank_constraints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
