# Empty dependencies file for test_rank_constraints.
# This may be replaced when dependencies are built.
