file(REMOVE_RECURSE
  "CMakeFiles/test_regression_metrics.dir/test_regression_metrics.cpp.o"
  "CMakeFiles/test_regression_metrics.dir/test_regression_metrics.cpp.o.d"
  "test_regression_metrics"
  "test_regression_metrics.pdb"
  "test_regression_metrics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_regression_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
