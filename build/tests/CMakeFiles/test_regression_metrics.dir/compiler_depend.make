# Empty compiler generated dependencies file for test_regression_metrics.
# This may be replaced when dependencies are built.
