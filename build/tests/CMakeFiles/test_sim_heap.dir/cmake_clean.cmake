file(REMOVE_RECURSE
  "CMakeFiles/test_sim_heap.dir/test_sim_heap.cpp.o"
  "CMakeFiles/test_sim_heap.dir/test_sim_heap.cpp.o.d"
  "test_sim_heap"
  "test_sim_heap.pdb"
  "test_sim_heap[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_heap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
