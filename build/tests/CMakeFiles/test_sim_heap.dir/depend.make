# Empty dependencies file for test_sim_heap.
# This may be replaced when dependencies are built.
