file(REMOVE_RECURSE
  "CMakeFiles/test_sp_transform.dir/test_sp_transform.cpp.o"
  "CMakeFiles/test_sp_transform.dir/test_sp_transform.cpp.o.d"
  "test_sp_transform"
  "test_sp_transform.pdb"
  "test_sp_transform[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sp_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
