# Empty compiler generated dependencies file for test_sp_transform.
# This may be replaced when dependencies are built.
