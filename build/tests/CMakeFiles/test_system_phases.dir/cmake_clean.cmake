file(REMOVE_RECURSE
  "CMakeFiles/test_system_phases.dir/test_system_phases.cpp.o"
  "CMakeFiles/test_system_phases.dir/test_system_phases.cpp.o.d"
  "test_system_phases"
  "test_system_phases.pdb"
  "test_system_phases[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_system_phases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
