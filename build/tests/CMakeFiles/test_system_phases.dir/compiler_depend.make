# Empty compiler generated dependencies file for test_system_phases.
# This may be replaced when dependencies are built.
