file(REMOVE_RECURSE
  "CMakeFiles/test_tx_cache.dir/test_tx_cache.cpp.o"
  "CMakeFiles/test_tx_cache.dir/test_tx_cache.cpp.o.d"
  "test_tx_cache"
  "test_tx_cache.pdb"
  "test_tx_cache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tx_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
