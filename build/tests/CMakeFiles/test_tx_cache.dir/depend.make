# Empty dependencies file for test_tx_cache.
# This may be replaced when dependencies are built.
