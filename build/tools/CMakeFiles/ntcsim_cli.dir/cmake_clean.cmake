file(REMOVE_RECURSE
  "CMakeFiles/ntcsim_cli.dir/ntcsim.cpp.o"
  "CMakeFiles/ntcsim_cli.dir/ntcsim.cpp.o.d"
  "ntcsim"
  "ntcsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntcsim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
