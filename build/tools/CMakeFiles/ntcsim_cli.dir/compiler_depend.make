# Empty compiler generated dependencies file for ntcsim_cli.
# This may be replaced when dependencies are built.
