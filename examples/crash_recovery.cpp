// Crash-consistency demo: run the same hashtable workload under the
// transaction cache and under native execution, pull the plug midway, run
// recovery, and check transaction atomicity against the oracle journal —
// the experiment behind Fig. 2 of the paper.
//
//   $ ./crash_recovery
#include <cstdio>

#include "recovery/recovery.hpp"
#include "sim/system.hpp"
#include "workload/workloads.hpp"

namespace {

using namespace ntcsim;

void crash_demo(Mechanism mech) {
  SystemConfig cfg = SystemConfig::tiny();  // tiny caches: evictions galore
  cfg.mechanism = mech;

  workload::WorkloadParams params =
      workload::default_params(WorkloadKind::kHashtable);
  params.setup_elems = 400;
  params.ops = 300;

  recovery::Journal journal(1);
  workload::SimHeap heap(cfg.address_space, cfg.cores);
  sim::System sys(cfg);
  sys.load_trace(0, workload::generate(params, 0, heap, &journal));

  std::printf("--- %s ---\n", std::string(to_string(mech)).c_str());
  std::size_t checks = 0, violations = 0;
  while (!sys.run_for(5000)) {  // crash every 5000 cycles
    const recovery::WordImage recovered = sys.crash_and_recover();
    const auto report = recovery::check_atomicity(recovered, journal);
    ++checks;
    if (!report.consistent) {
      ++violations;
      if (violations == 1) {
        std::printf("  cycle %9llu: ATOMICITY VIOLATION — %s\n",
                    static_cast<unsigned long long>(sys.now()),
                    report.violation.c_str());
      }
    } else if (checks % 8 == 1) {
      std::printf("  cycle %9llu: consistent, %zu/%zu transactions durable\n",
                  static_cast<unsigned long long>(sys.now()),
                  report.durable_tx_prefix[0], journal.per_core(0).size());
    }
  }
  std::printf("  => %zu crash points checked, %zu violations\n\n", checks,
              violations);
}

}  // namespace

int main() {
  std::printf(
      "Pulling the plug on a transactional hashtable at every 5000th cycle.\n"
      "TC recovers from the nonvolatile transaction cache; Optimal has no\n"
      "persistence support and corrupts in-flight transactions (Fig. 2a).\n\n");
  crash_demo(Mechanism::kTc);
  crash_demo(Mechanism::kOptimal);
  return 0;
}
