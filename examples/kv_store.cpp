// Custom-workload example: a write-ahead-free persistent key-value store
// built directly on the public trace API. Shows how a downstream user
// models their own data structure: execute it on the host, emit the
// simulated accesses through TraceEmitter, wrap operations in
// transactions, and let the mechanism under test provide persistence.
//
//   $ ./kv_store
#include <cstdio>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "recovery/recovery.hpp"
#include "sim/system.hpp"
#include "workload/emitter.hpp"
#include "workload/sim_heap.hpp"

namespace {

using namespace ntcsim;

/// A persistent open-addressing (linear probing) hash table — a different
/// layout than the chained table in the built-in suite.
class OpenAddressingKv {
 public:
  OpenAddressingKv(workload::TraceEmitter& em, workload::SimHeap& heap,
                   std::size_t slots)
      : em_(&em), slots_(slots), host_(slots) {
    table_ = heap.alloc(0, slots_ * 16, kLineBytes);  // {key, value} pairs
  }

  void put(Word key, Word value) {
    em_->begin_tx();
    std::size_t i = slot_of(key);
    for (;;) {
      em_->load(slot_addr(i));  // probe the key word
      em_->compute(1);
      if (host_[i].first == 0 || host_[i].first == key) break;
      i = (i + 1) % slots_;
    }
    em_->store(slot_addr(i), key);
    em_->store(slot_addr(i) + 8, value);
    host_[i] = {key, value};
    em_->end_tx();
  }

  bool get(Word key) {
    em_->begin_tx();
    std::size_t i = slot_of(key);
    bool found = false;
    for (;;) {
      em_->load(slot_addr(i));
      em_->compute(1);
      if (host_[i].first == key) {
        em_->load(slot_addr(i) + 8);
        found = true;
        break;
      }
      if (host_[i].first == 0) break;
      i = (i + 1) % slots_;
    }
    em_->end_tx();
    return found;
  }

 private:
  std::size_t slot_of(Word key) const {
    return (key * 0x9e3779b97f4a7c15ULL >> 32) % slots_;
  }
  Addr slot_addr(std::size_t i) const { return table_ + i * 16; }

  workload::TraceEmitter* em_;
  Addr table_ = 0;
  std::size_t slots_;
  std::vector<std::pair<Word, Word>> host_;
};

}  // namespace

int main() {
  SystemConfig cfg = SystemConfig::experiment();
  cfg.cores = 1;
  cfg.mechanism = Mechanism::kTc;

  recovery::Journal journal(1);
  workload::SimHeap heap(cfg.address_space, cfg.cores);
  workload::TraceEmitter em(0, cfg.address_space, &journal);
  OpenAddressingKv kv(em, heap, 8192);

  Rng rng(42);
  std::vector<Word> keys;
  for (int i = 0; i < 2000; ++i) {
    const Word k = rng.next() | 1;
    kv.put(k, rng.next());
    keys.push_back(k);
  }
  em.mark_measured_phase();
  std::size_t hits = 0;
  for (int i = 0; i < 3000; ++i) {
    if (rng.chance(2, 3)) {
      hits += kv.get(keys[rng.below(keys.size())]) ? 1 : 0;
    } else {
      kv.put(rng.next() | 1, rng.next());
    }
  }

  workload::TraceEmitter em2 = std::move(em);
  sim::System sys(cfg);
  sys.load_trace(0, em2.take_setup());
  sys.run();
  sys.reset_stats();
  sys.load_trace(0, em2.take_measured());
  sys.run();

  const sim::Metrics m = sys.metrics();
  std::printf("open-addressing KV store under TC:\n");
  std::printf("  measured cycles      %llu\n",
              static_cast<unsigned long long>(m.cycles));
  std::printf("  transactions/kcycle  %.3f\n", m.tx_per_kilocycle);
  std::printf("  NVM line writes      %llu\n",
              static_cast<unsigned long long>(m.nvm_writes));
  std::printf("  lookup hits          %zu\n", hits);

  // Everything committed is durable: recovery after a clean run replays to
  // the full journal.
  const auto report =
      recovery::check_atomicity(sys.crash_and_recover(), journal);
  std::printf("  recovery check       %s (%zu/%zu transactions durable)\n",
              report.consistent ? "consistent" : "VIOLATED",
              report.durable_tx_prefix[0], journal.per_core(0).size());
  return 0;
}
