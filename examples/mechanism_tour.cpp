// Mechanism tour: run one workload under all four persistence mechanisms
// and print the paper's §5 comparison in miniature, with the per-path NVM
// write breakdown that explains Fig. 9.
//
//   $ ./mechanism_tour [workload]   (graph|rbtree|sps|btree|hashtable)
#include <cstdio>
#include <iostream>

#include "common/table.hpp"
#include "sim/experiment.hpp"

int main(int argc, char** argv) {
  using namespace ntcsim;

  WorkloadKind wl = WorkloadKind::kBtree;
  if (argc > 1) {
    for (WorkloadKind k : sim::kAllWorkloads) {
      if (to_string(k) == argv[1]) wl = k;
    }
  }

  const SystemConfig base = SystemConfig::experiment();
  sim::ExperimentOptions opts;
  opts.scale = 0.5;

  std::printf("workload: %s — %s\n\n", std::string(to_string(wl)).c_str(),
              std::string(workload::description(wl)).c_str());

  Table t({"mechanism", "tx/kcycle", "IPC", "LLC miss", "NVM writes",
           "pload lat"});
  double opt_tx = 0.0;
  for (Mechanism mech : {Mechanism::kOptimal, Mechanism::kTc, Mechanism::kKiln,
                         Mechanism::kSp}) {
    const sim::Metrics m = sim::run_cell(mech, wl, base, opts);
    if (mech == Mechanism::kOptimal) opt_tx = m.tx_per_kilocycle;
    t.add_row(std::string(to_string(mech)),
              {m.tx_per_kilocycle, m.ipc, m.llc_miss_rate,
               static_cast<double>(m.nvm_writes), m.pload_latency});
    (void)opt_tx;
  }
  t.print(std::cout);
  std::printf(
      "\nReading the table:\n"
      "  * TC tracks Optimal: persistence lives on the side path, the\n"
      "    cache hierarchy and memory controller run unmodified.\n"
      "  * Kiln pays for flush-on-commit into its nonvolatile LLC.\n"
      "  * SP pays for write-ahead logging plus clwb/sfence/pcommit\n"
      "    ordering on every transaction.\n");
  return 0;
}
