// Quickstart: simulate the paper's machine running the rbtree benchmark
// under the transaction-cache (TC) mechanism and print the headline
// metrics.
//
//   $ ./quickstart
#include <cstdio>

#include "sim/system.hpp"
#include "workload/workloads.hpp"

int main() {
  using namespace ntcsim;

  // 1. Pick a machine. SystemConfig::paper() is Table 2 verbatim;
  //    experiment() scales the LLC for short runs.
  SystemConfig cfg = SystemConfig::experiment();
  cfg.mechanism = Mechanism::kTc;  // the paper's accelerator

  // 2. Generate a workload: a red-black tree per core, setup phase plus a
  //    measured phase of one search/insert transaction per operation.
  workload::WorkloadParams params =
      workload::default_params(WorkloadKind::kRbtree);
  params.ops = 1000;

  workload::SimHeap heap(cfg.address_space, cfg.cores);
  std::vector<workload::TraceBundle> traces;
  for (CoreId c = 0; c < cfg.cores; ++c) {
    traces.push_back(workload::generate_phased(params, c, heap, nullptr));
  }

  // 3. Build the system, warm it with the setup phase, then measure.
  sim::System sys(cfg);
  for (CoreId c = 0; c < cfg.cores; ++c) {
    sys.load_trace(c, std::move(traces[c].setup));
  }
  sys.run();
  sys.reset_stats();
  for (CoreId c = 0; c < cfg.cores; ++c) {
    sys.load_trace(c, std::move(traces[c].measured));
  }
  sys.run();

  // 4. Read the results.
  const sim::Metrics m = sys.metrics();
  std::printf("rbtree under TC on the paper machine (scaled LLC):\n");
  std::printf("  cycles                 %llu\n",
              static_cast<unsigned long long>(m.cycles));
  std::printf("  IPC (aggregate)        %.3f\n", m.ipc);
  std::printf("  transactions/kcycle    %.3f\n", m.tx_per_kilocycle);
  std::printf("  LLC miss rate          %.3f\n", m.llc_miss_rate);
  std::printf("  NVM line writes        %llu (all issued by the NTC)\n",
              static_cast<unsigned long long>(m.nvm_writes));
  std::printf("  persistent load lat.   %.1f cycles\n", m.pload_latency);
  std::printf("  NTC full-stall frac.   %.5f\n", m.ntc_stall_frac);
  return 0;
}
