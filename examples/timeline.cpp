// Timeline example: watch the transaction cache breathe. Samples NTC
// occupancy, NVM write-queue depth and windowed throughput every few
// thousand cycles while the sps workload (the paper's most write-intense)
// runs under TC, and prints a compact text plot plus CSV-ready samples.
//
//   $ ./timeline [ntc_bytes]      (default 4096; try 512 to see stalls)
#include <cstdio>
#include <cstdlib>
#include <string>

#include "sim/timeline.hpp"
#include "workload/workloads.hpp"

int main(int argc, char** argv) {
  using namespace ntcsim;

  SystemConfig cfg = SystemConfig::experiment();
  cfg.cores = 1;
  cfg.mechanism = Mechanism::kTc;
  if (argc > 1) cfg.ntc.size_bytes = std::strtoull(argv[1], nullptr, 10);

  workload::WorkloadParams p = workload::default_params(WorkloadKind::kSps);
  p.setup_elems = 16 << 10;
  p.ops = 2000;

  workload::SimHeap heap(cfg.address_space, cfg.cores);
  workload::TraceBundle b = workload::generate_phased(p, 0, heap, nullptr);
  sim::System sys(cfg);
  sys.load_trace(0, std::move(b.setup));
  sys.run();
  sys.reset_stats();
  sys.load_trace(0, std::move(b.measured));

  const auto samples = sim::run_with_timeline(sys, 4000);

  std::printf("sps under TC, NTC = %llu B (%llu entries)\n\n",
              static_cast<unsigned long long>(cfg.ntc.size_bytes),
              static_cast<unsigned long long>(cfg.ntc.entries()));
  std::printf("%10s %8s %8s  NTC occupancy (each # = 2 entries)\n", "cycle",
              "tx/kcy", "nvm WQ");
  for (const auto& s : samples) {
    std::string bar(s.ntc_occupancy / 2, '#');
    std::printf("%10llu %8.2f %8zu  %s\n",
                static_cast<unsigned long long>(s.cycle),
                s.window_tx_per_kilocycle, s.nvm_write_queue, bar.c_str());
  }
  const auto m = sys.metrics();
  std::printf("\nfinal: %.2f tx/kcycle, NTC stall fraction %.5f\n",
              m.tx_per_kilocycle, m.ntc_stall_frac);
  std::printf("(write_timeline_csv() emits the same series as CSV)\n");
  return 0;
}
