#include "cache/array.hpp"

#include "common/assert.hpp"

namespace ntcsim::cache {

namespace {
bool is_pow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }
}  // namespace

CacheArray::CacheArray(const CacheConfig& cfg)
    : sets_(cfg.sets()), ways_(cfg.ways), policy_(cfg.replacement) {
  NTC_ASSERT(sets_ > 0 && is_pow2(sets_), "cache set count must be a power of two");
  lines_.resize(sets_ * ways_);
  tags_.assign(sets_ * ways_, kNoTag);
}

NTC_HOT Line* CacheArray::lookup(Addr line_addr, bool touch) {
  const std::size_t base = set_of(line_addr) * ways_;
  const Addr* tags = tags_.data() + base;
  for (unsigned w = 0; w < ways_; ++w) {
    if (tags[w] == line_addr) {
      Line& line = lines_[base + w];
      if (touch) {
        line.lru = ++lru_clock_;
        line.rrpv = 0;  // SRRIP: near-immediate re-reference on a hit
      }
      return &line;
    }
  }
  return nullptr;
}

const Line* CacheArray::peek(Addr line_addr) const {
  const std::size_t base = set_of(line_addr) * ways_;
  for (unsigned w = 0; w < ways_; ++w) {
    if (tags_[base + w] == line_addr) return &lines_[base + w];
  }
  return nullptr;
}

Line* CacheArray::pick_victim_(std::uint64_t s) {
  // Invalid ways win under every policy; pinned lines are never victims.
  Line* victim = nullptr;
  for (unsigned w = 0; w < ways_; ++w) {
    Line& line = lines_[s * ways_ + w];
    if (!line.valid) return &line;
  }
  switch (policy_) {
    case ReplacementPolicy::kLru:
      for (unsigned w = 0; w < ways_; ++w) {
        Line& line = lines_[s * ways_ + w];
        if (line.pinned) continue;
        if (victim == nullptr || line.lru < victim->lru) victim = &line;
      }
      return victim;
    case ReplacementPolicy::kRandom: {
      // xorshift over the unpinned ways.
      unsigned candidates[64];
      unsigned n = 0;
      for (unsigned w = 0; w < ways_; ++w) {
        if (!lines_[s * ways_ + w].pinned) candidates[n++] = w;
      }
      if (n == 0) return nullptr;
      rng_ ^= rng_ << 13;
      rng_ ^= rng_ >> 7;
      rng_ ^= rng_ << 17;
      return &lines_[s * ways_ + candidates[rng_ % n]];
    }
    case ReplacementPolicy::kSrrip:
      // Find a distant-re-reference (rrpv==3) line; otherwise age the set
      // and retry — bounded by the 2-bit counter range.
      for (int round = 0; round < 4; ++round) {
        for (unsigned w = 0; w < ways_; ++w) {
          Line& line = lines_[s * ways_ + w];
          if (!line.pinned && line.rrpv >= 3) return &line;
        }
        bool any = false;
        for (unsigned w = 0; w < ways_; ++w) {
          Line& line = lines_[s * ways_ + w];
          if (!line.pinned && line.rrpv < 3) {
            ++line.rrpv;
            any = true;
          }
        }
        if (!any) break;  // everything pinned
      }
      return nullptr;
  }
  return nullptr;
}

Line* CacheArray::allocate(Addr line_addr, std::optional<Eviction>& evicted) {
  NTC_ASSERT(lookup(line_addr, false) == nullptr, "allocating an already-present line");
  const std::uint64_t s = set_of(line_addr);
  Line* victim = pick_victim_(s);
  if (victim == nullptr) return nullptr;  // whole set pinned — caller bypasses.

  if (victim->valid) {
    evicted = Eviction{victim->tag, victim->dirty, victim->persistent,
                       victim->presence};
  }
  *victim = Line{};
  victim->tag = line_addr;
  victim->valid = true;
  victim->lru = ++lru_clock_;
  victim->rrpv = 2;  // SRRIP insertion: long (not distant) re-reference
  tags_[static_cast<std::size_t>(victim - lines_.data())] = line_addr;
  return victim;
}

std::optional<Eviction> CacheArray::invalidate(Addr line_addr) {
  Line* line = lookup(line_addr, false);
  if (line == nullptr) return std::nullopt;
  Eviction ev{line->tag, line->dirty, line->persistent, line->presence};
  if (line->pinned) note_pin(false);
  *line = Line{};
  tags_[static_cast<std::size_t>(line - lines_.data())] = kNoTag;
  return ev;
}

}  // namespace ntcsim::cache
