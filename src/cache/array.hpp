// Set-associative tag/state array with true-LRU replacement.
//
// ntcsim caches are timing + coherence state only: functional word values
// live in recovery::VolatileImage (latest architectural value) and
// recovery::DurableState (NVM array contents), so a line here carries tag,
// dirty/persistent flags, the P/V bit of §4.3, and the Kiln pinning state.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/config.hpp"
#include "common/hot.hpp"
#include "common/types.hpp"

namespace ntcsim::cache {

struct Line {
  Addr tag = 0;  ///< Line-aligned address.
  bool valid = false;
  bool dirty = false;
  bool persistent = false;  ///< The P/V flag added to every level (§4.3).
  bool pinned = false;      ///< Kiln: uncommitted block, not evictable.
  TxId tx = kNoTx;          ///< Kiln: owning transaction while pinned.
  std::uint32_t presence = 0;  ///< LLC only: upper-level presence bits per core.
  std::uint64_t lru = 0;
  std::uint8_t rrpv = 3;       ///< SRRIP re-reference prediction value.
};

/// Result of evicting a valid victim during allocation.
struct Eviction {
  Addr line_addr = 0;
  bool dirty = false;
  bool persistent = false;
  std::uint32_t presence = 0;
};

class CacheArray {
 public:
  explicit CacheArray(const CacheConfig& cfg);

  /// Hit lookup; `touch` updates LRU. Returns nullptr on miss.
  NTC_HOT Line* lookup(Addr line_addr, bool touch = true);
  const Line* peek(Addr line_addr) const;

  /// Allocate `line_addr`, evicting the LRU non-pinned way if needed.
  /// Returns the allocated line, or nullptr when every way in the set is
  /// pinned (Kiln bypass case). On eviction of a valid line, `evicted` is
  /// filled in.
  Line* allocate(Addr line_addr, std::optional<Eviction>& evicted);

  /// Invalidate if present; returns the line's pre-invalidation state.
  std::optional<Eviction> invalidate(Addr line_addr);

  std::uint64_t sets() const { return sets_; }
  unsigned ways() const { return ways_; }
  /// Number of pinned lines across the array (Kiln occupancy stat).
  std::uint64_t pinned_count() const { return pinned_count_; }
  void note_pin(bool pin) { pinned_count_ += pin ? 1 : -1; }
  /// Age a line to least-recently-used in its set (next eviction victim).
  void age_to_lru(Line& line) {
    line.lru = 0;
    line.rrpv = 3;
  }

  /// Iterate all valid lines (used by flush-everything paths and tests).
  /// Read-only with respect to tag/valid: invalidation must go through
  /// invalidate() so the packed tag probe array stays coherent.
  template <typename Fn>
  void for_each_valid(Fn&& fn) {
    for (auto& line : lines_) {
      if (line.valid) fn(line);
    }
  }

 private:
  /// tags_ sentinel for an invalid way. Line addresses are line-aligned,
  /// so an all-ones value can never match a real tag.
  static constexpr Addr kNoTag = ~Addr{0};

  std::uint64_t set_of(Addr line_addr) const {
    return (line_addr >> kLineShift) & (sets_ - 1);
  }

  Line* pick_victim_(std::uint64_t set);

  std::uint64_t sets_;
  unsigned ways_;
  ReplacementPolicy policy_;
  std::vector<Line> lines_;  ///< sets_ * ways_, set-major.
  /// Packed tag probe array, parallel to lines_. The hit probe — by far
  /// the hottest loop here — touches one dense cache line per set instead
  /// of striding through 40-byte Line records (open-addressed within the
  /// set: compare every way's tag word, no indirection).
  std::vector<Addr> tags_;
  std::uint64_t lru_clock_ = 0;
  std::uint64_t pinned_count_ = 0;
  std::uint64_t rng_ = 0x9e3779b97f4a7c15ULL;  ///< kRandom victim stream.
};

}  // namespace ntcsim::cache
