#include "cache/hierarchy.hpp"

#include <algorithm>
#include <utility>

#include "common/assert.hpp"
#include "mem/request.hpp"

namespace ntcsim::cache {

Hierarchy::Hierarchy(const NodeConfig& cfg, mem::MemorySystem& mem,
                     EventQueue& events, StatSet& stats,
                     recovery::VolatileImage* vimage)
    : cfg_(cfg),
      mem_(&mem),
      events_(&events),
      stats_(&stats),
      vimage_(vimage),
      llc_(cfg.llc) {
  for (unsigned c = 0; c < cfg_.cores; ++c) {
    l1_.push_back(std::make_unique<CacheArray>(cfg_.l1));
    l2_.push_back(std::make_unique<CacheArray>(cfg_.l2));
  }
  l1_miss_.resize(cfg_.cores);
  stat_l1_hits_ = CounterHandle(*stats_, "l1.hits");
  stat_l1_misses_ = CounterHandle(*stats_, "l1.misses");
  stat_l2_hits_ = CounterHandle(*stats_, "l2.hits");
  stat_l2_misses_ = CounterHandle(*stats_, "l2.misses");
  stat_llc_hits_ = CounterHandle(*stats_, "llc.hits");
  stat_llc_misses_ = CounterHandle(*stats_, "llc.misses");
  stat_llc_wb_ = CounterHandle(*stats_, "llc.writebacks");
  stat_llc_wb_dropped_ = CounterHandle(*stats_, "llc.wb_dropped");
  stat_ntc_probe_hits_ = CounterHandle(*stats_, "llc.ntc_probe_hits");
  stat_llc_bypass_ = CounterHandle(*stats_, "llc.bypass_fills");
  stat_clwb_ = CounterHandle(*stats_, "hier.clwb");
  stat_reject_ = CounterHandle(*stats_, "hier.rejects");
}

Cycle Hierarchy::llc_ready_delay(Cycle now) const {
  // Kiln commit flushes block the LLC for other traffic (§5.2): requests
  // arriving during the block window wait it out, then pay the LLC latency.
  const Cycle wait = llc_blocked_until_ > now ? llc_blocked_until_ - now : 0;
  return wait + cfg_.llc.latency_cycles;
}

bool Hierarchy::load(Cycle now, CoreId core, Addr addr, bool persistent,
                     DoneFn done) {
  return access(now, core, line_of(addr), /*is_write=*/false, persistent, kNoTx,
                std::move(done));
}

bool Hierarchy::store(Cycle now, CoreId core, Addr addr, Word value,
                      bool persistent, TxId tx) {
  if (persistent && vimage_ != nullptr) {
    vimage_->store(word_of(addr), value);
  }
  const bool ok = access(now, core, line_of(addr), /*is_write=*/true,
                         persistent, tx, DoneFn{});
  if (ok && persistent && sink_ != nullptr) {
    // Tap on acceptance only — a rejected store retries and would
    // double-count.
    check::CheckEvent ev;
    ev.kind = check::EventKind::kStoreDrained;
    ev.core = core;
    ev.tx = tx;
    ev.addr = word_of(addr);
    ev.value = value;
    ev.persistent = true;
    sink_->on_event(ev);
  }
  return ok;
}

bool Hierarchy::access(Cycle now, CoreId core, Addr line, bool is_write,
                       bool persistent, TxId tx, DoneFn done) {
  // L1.
  if (Line* l = l1_[core]->lookup(line)) {
    stat_l1_hits_->inc();
    if (is_write) {
      l->dirty = true;
      l->persistent |= persistent;
      l->tx = tx;
    }
    if (done) {
      events_->schedule_at(now + l1_latency_(), std::move(done));
    }
    return true;
  }
  stat_l1_misses_->inc();

  // Outstanding L1 miss on this line: merge.
  auto& misses = l1_miss_[core];
  if (auto it = misses.find(line); it != misses.end()) {
    if (is_write) {
      it->second.write_merge = true;
      it->second.persistent |= persistent;
      it->second.tx = tx;
    }
    if (done) it->second.waiters.push_back(std::move(done));
    return true;
  }

  // L2 (private): hit fills L1 and completes without an MSHR.
  if (Line* l2l = l2_[core]->lookup(line)) {
    stat_l2_hits_->inc();
    fill_private(now, core, line, l2l->persistent || persistent, is_write, tx);
    if (done) {
      events_->schedule_at(now + l1_latency_() + l2_latency_(), std::move(done));
    }
    return true;
  }
  stat_l2_misses_->inc();

  // Resource checks before committing to the miss path.
  if (misses.size() >= cfg_.l1.mshrs ||
      wb_retry_.size() >= cfg_.llc.writeback_buffer) {
    stat_reject_->inc();
    return false;
  }

  const Cycle llc_delay = llc_ready_delay(now);

  // Shared LLC.
  if (Line* ll = llc_.lookup(line)) {
    stat_llc_hits_->inc();
    if (is_write && ll->presence != 0) {
      // Coherence-lite: a write serviced at the LLC invalidates other
      // cores' private copies (see DESIGN.md §2, coherence substitution).
      for (CoreId c = 0; c < cfg_.cores; ++c) {
        if (c != core && (ll->presence & (1u << c))) {
          bool upper_dirty = false;
          invalidate_private(c, line, &upper_dirty);
          if (upper_dirty) ll->dirty = true;
        }
      }
      ll->presence = 0;
    }
    ll->presence |= 1u << core;
    fill_private(now, core, line, ll->persistent || persistent, is_write, tx);
    if (done) {
      events_->schedule_at(now + l1_latency_() + l2_latency_() + llc_delay,
                           std::move(done));
    }
    return true;
  }
  stat_llc_misses_->inc();

  // Outstanding LLC miss: attach this core.
  if (auto it = llc_miss_.find(line); it != llc_miss_.end()) {
    L1Miss m;
    m.line = line;
    m.persistent = persistent;
    m.write_merge = is_write;
    m.tx = tx;
    if (done) m.waiters.push_back(std::move(done));
    misses.emplace(line, std::move(m));
    it->second.persistent |= persistent;
    if (std::find_if(it->second.fills.begin(), it->second.fills.end(),
                     [core](const auto& p) { return p.first == core; }) ==
        it->second.fills.end()) {
      it->second.fills.emplace_back(core, DoneFn{});
    }
    return true;
  }

  if (llc_miss_.size() >= cfg_.llc.mshrs) {
    stat_reject_->inc();
    return false;
  }

  L1Miss m;
  m.line = line;
  m.persistent = persistent;
  m.write_merge = is_write;
  m.tx = tx;
  if (done) m.waiters.push_back(std::move(done));
  misses.emplace(line, std::move(m));

  LlcMiss lm;
  lm.line = line;
  lm.persistent = persistent;
  lm.fills.emplace_back(core, DoneFn{});
  auto [lit, _] = llc_miss_.emplace(line, std::move(lm));

  // TC side path: a persistent LLC miss probes the transaction cache in
  // parallel with the NVM read ("issue miss requests toward not only the
  // NVM but also the transaction cache", §3). An NTC entry holds only the
  // words its transaction wrote, so the fill still needs the NVM line and
  // merges the newer NTC words into it — the round trip is NVM-bound
  // either way; the probe guarantees the LLC never uses stale NVM data.
  if (persistent && hooks_.ntc_probe) {
    if (sink_ != nullptr) {
      check::CheckEvent pe;
      pe.kind = check::EventKind::kNtcProbe;
      pe.core = core;
      pe.addr = line;
      pe.persistent = true;
      sink_->on_event(pe);
    }
    if (hooks_.ntc_probe(core, line)) stat_ntc_probe_hits_->inc();
  }

  issue_llc_read(now, lit->second);
  return true;
}

void Hierarchy::issue_llc_read(Cycle now, LlcMiss& miss) {
  mem::MemRequest req;
  req.op = mem::MemOp::kRead;
  req.line_addr = miss.line;
  req.persistent = miss.persistent;
  req.source = mem::Source::kDemand;
  const Addr line = miss.line;
  req.on_complete = [this, line](const mem::MemRequest&) {
    complete_llc_miss(line);
  };
  const bool was_pending = miss.needs_issue;
  miss.needs_issue = !mem_->enqueue(std::move(req), now);
  if (miss.needs_issue && !was_pending) ++unissued_misses_;
  if (!miss.needs_issue && was_pending) --unissued_misses_;
}

void Hierarchy::complete_llc_miss(Addr line) {
  // A Kiln commit flush is occupying the LLC: the fill waits out the block
  // window, exactly like the requests the paper says get blocked (§5.2).
  if (now_ < llc_blocked_until_) {
    // +1: hier's clock is updated by tick() after the event drain, so a
    // re-fire at exactly llc_blocked_until_ would still observe now_ behind
    // the block end and loop.
    events_->schedule_at(llc_blocked_until_ + 1,
                         [this, line] { complete_llc_miss(line); });
    return;
  }
  auto it = llc_miss_.find(line);
  NTC_ASSERT(it != llc_miss_.end(), "completing an unknown LLC miss");
  LlcMiss miss = std::move(it->second);
  llc_miss_.erase(it);

  const bool allocated =
      fill_llc(miss.fills.front().first, line, miss.persistent);
  if (allocated) {
    if (Line* ll = llc_.lookup(line, /*touch=*/false)) {
      for (const auto& [core, _] : miss.fills) ll->presence |= 1u << core;
    }
  }

  for (const auto& [core, _] : miss.fills) {
    auto mit = l1_miss_[core].find(line);
    if (mit == l1_miss_[core].end()) continue;
    L1Miss m = std::move(mit->second);
    l1_miss_[core].erase(mit);
    fill_private(now_, core, line, m.persistent, m.write_merge, m.tx);
    for (DoneFn& w : m.waiters) w();
  }
}

bool Hierarchy::fill_llc(CoreId core, Addr line, bool persistent) {
  // The line can already be resident: a Kiln commit may have installed it
  // while this miss was in flight. Reuse it rather than double-allocating.
  Line* l = llc_.lookup(line, /*touch=*/false);
  if (l == nullptr) {
    std::optional<Eviction> ev;
    l = llc_.allocate(line, ev);
    if (l == nullptr) {
      // Kiln: every way in the set is pinned by uncommitted transactions;
      // serve the data without caching it in the LLC.
      stat_llc_bypass_->inc();
      return false;
    }
    if (ev) handle_llc_eviction(*ev);
  }
  l->persistent |= persistent;
  if (persistent && hooks_.llc_nonvolatile && hooks_.kiln_pin_query) {
    const TxId tx = hooks_.kiln_pin_query(core, line);
    if (tx != kNoTx) {
      l->pinned = true;
      l->tx = tx;
      llc_.note_pin(true);
    }
  }
  return true;
}

void Hierarchy::invalidate_private(CoreId core, Addr line, bool* upper_dirty) {
  if (auto ev = l1_[core]->invalidate(line); ev && ev->dirty) {
    *upper_dirty = true;
  }
  if (auto ev = l2_[core]->invalidate(line); ev && ev->dirty) {
    *upper_dirty = true;
  }
}

void Hierarchy::handle_llc_eviction(const Eviction& ev) {
  bool dirty = ev.dirty;
  // Inclusion: evicting an LLC line removes every upper-level copy; dirty
  // upper data merges into the outbound write-back.
  for (CoreId c = 0; c < cfg_.cores; ++c) {
    if (ev.presence & (1u << c)) {
      bool upper_dirty = false;
      invalidate_private(c, ev.line_addr, &upper_dirty);
      dirty |= upper_dirty;
    }
  }
  if (!dirty) return;

  if (ev.persistent && hooks_.drop_persistent_llc_writeback) {
    // TC (§3): evicted persistent blocks are *discarded*; the NVM only
    // ever receives the consistent data sent by the transaction cache.
    stat_llc_wb_dropped_->inc();
    if (sink_ != nullptr) {
      check::CheckEvent ce;
      ce.kind = check::EventKind::kLlcWritebackDropped;
      ce.addr = ev.line_addr;
      ce.persistent = true;
      sink_->on_event(ce);
    }
    return;
  }
  const mem::Source src = ev.persistent && hooks_.llc_nonvolatile
                              ? mem::Source::kFlush
                              : mem::Source::kDemand;
  writeback_to_memory(ev.line_addr, ev.persistent, src);
}

void Hierarchy::writeback_to_memory(Addr line, bool persistent,
                                    mem::Source source) {
  stat_llc_wb_->inc();
  mem::MemRequest req;
  req.op = mem::MemOp::kWrite;
  req.line_addr = line;
  req.persistent = persistent;
  req.source = source;
  // Functional payload: under Optimal/SP the NVM array receives whatever
  // the cache hierarchy writes back. Under Kiln the write-back is an
  // NV-LLC clean-back whose committed content is already durable (the
  // commit overlay owns durability) — and a bypass-filled line may hold
  // *uncommitted* data that must never reach the durable image.
  if (persistent && vimage_ != nullptr && !hooks_.llc_nonvolatile) {
    req.payload = vimage_->words_in_line(line);
  }
  if (!mem_->enqueue(req, now_)) {
    wb_retry_.push_back(std::move(req));
  }
}

void Hierarchy::fill_private(Cycle /*now*/, CoreId core, Addr line,
                             bool persistent, bool dirty, TxId tx) {
  // L2 first (inclusion: L1 content is always in L2).
  if (l2_[core]->lookup(line) == nullptr) {
    std::optional<Eviction> ev;
    Line* l2l = l2_[core]->allocate(line, ev);
    NTC_ASSERT(l2l != nullptr, "private caches never pin lines");
    if (ev) {
      // Inclusion within the core: drop the L1 copy of the L2 victim.
      bool upper_dirty = false;
      if (auto l1ev = l1_[core]->invalidate(ev->line_addr);
          l1ev && l1ev->dirty) {
        upper_dirty = true;
      }
      if (ev->dirty || upper_dirty) {
        // Victim write-back into the LLC.
        if (Line* ll = llc_.lookup(ev->line_addr, /*touch=*/false)) {
          ll->dirty = true;
          ll->persistent |= ev->persistent;
        } else {
          // The LLC lost the line (Kiln bypass fill): write back directly.
          writeback_to_memory(ev->line_addr, ev->persistent,
                              mem::Source::kDemand);
        }
      }
    }
    l2l->persistent = persistent;
  }

  if (l1_[core]->lookup(line) == nullptr) {
    std::optional<Eviction> ev;
    Line* l1l = l1_[core]->allocate(line, ev);
    NTC_ASSERT(l1l != nullptr, "private caches never pin lines");
    if (ev && ev->dirty) {
      Line* l2v = l2_[core]->lookup(ev->line_addr, /*touch=*/false);
      if (l2v != nullptr) {
        l2v->dirty = true;
        l2v->persistent |= ev->persistent;
      } else {
        if (Line* ll = llc_.lookup(ev->line_addr, /*touch=*/false)) {
          ll->dirty = true;
          ll->persistent |= ev->persistent;
        } else {
          writeback_to_memory(ev->line_addr, ev->persistent,
                              mem::Source::kDemand);
        }
      }
    }
    l1l->persistent = persistent;
    l1l->dirty = dirty;
    l1l->tx = tx;
  } else if (dirty) {
    Line* l1l = l1_[core]->lookup(line, /*touch=*/false);
    l1l->dirty = true;
    l1l->persistent |= persistent;
    l1l->tx = tx;
  }
}

bool Hierarchy::nt_write(Cycle now, const mem::MemRequest& req) {
  // The line may still be cached from an earlier round (log-area reuse):
  // keep coherence by dropping any stale copy.
  for (unsigned c = 0; c < cfg_.cores; ++c) {
    bool dirty = false;
    invalidate_private(c, req.line_addr, &dirty);
  }
  llc_.invalidate(req.line_addr);
  return mem_->enqueue(req, now);
}

bool Hierarchy::clwb(Cycle now, CoreId core, Addr addr, mem::Source source,
                     DoneFn on_persisted) {
  const Addr line = line_of(addr);
  if (l1_miss_[core].count(line) != 0) return false;  // store still in flight
  if (mem_->write_queue_full(line)) return false;

  bool was_dirty = false;
  if (Line* l = l1_[core]->lookup(line, false); l && l->dirty) {
    l->dirty = false;
    was_dirty = true;
  }
  if (Line* l = l2_[core]->lookup(line, false); l && l->dirty) {
    l->dirty = false;
    was_dirty = true;
  }
  if (Line* l = llc_.lookup(line, false); l && l->dirty) {
    l->dirty = false;
    was_dirty = true;
  }
  stat_clwb_->inc();

  if (!was_dirty) {
    // Clean or absent everywhere: the line is already durable.
    if (on_persisted) events_->schedule_at(now + 1, std::move(on_persisted));
    return true;
  }

  mem::MemRequest req;
  req.op = mem::MemOp::kWrite;
  req.line_addr = line;
  req.persistent = true;
  req.source = source;
  req.core = core;
  if (vimage_ != nullptr) req.payload = vimage_->words_in_line(line);
  if (on_persisted) {
    auto cb = std::move(on_persisted);
    req.on_complete = [cb](const mem::MemRequest&) { cb(); };
  }
  const bool ok = mem_->enqueue(std::move(req), now);
  NTC_ASSERT(ok, "write queue checked full before clwb issue");
  return true;
}

void Hierarchy::kiln_pin(CoreId core, Addr line_addr, TxId tx) {
  (void)core;
  if (Line* l = llc_.lookup(line_addr, /*touch=*/false)) {
    if (!l->pinned) {
      l->pinned = true;
      l->tx = tx;
      llc_.note_pin(true);
    }
  }
}

bool Hierarchy::kiln_commit_line(CoreId core, Addr line_addr) {
  // The flush moves the data down but the upper levels keep clean copies
  // (clwb semantics — the working set is not evicted by a commit).
  if (Line* l = l1_[core]->lookup(line_addr, false)) l->dirty = false;
  if (Line* l = l2_[core]->lookup(line_addr, false)) l->dirty = false;
  Line* l = llc_.lookup(line_addr, /*touch=*/false);
  if (l == nullptr) {
    // The LLC no longer holds the line (clean eviction while unpinned, or a
    // bypass fill): allocate it as committed-dirty.
    std::optional<Eviction> ev;
    l = llc_.allocate(line_addr, ev);
    if (l == nullptr) {
      // Whole set pinned: send straight to NVM.
      writeback_to_memory(line_addr, /*persistent=*/true, mem::Source::kFlush);
      return false;
    }
    if (ev) handle_llc_eviction(*ev);
  }
  l->dirty = true;
  l->persistent = true;
  l->presence = 0;
  // Committed data has been handed to the persistence domain: once the
  // clean-back completes it should be the first victim, not displace the
  // read working set (streaming-write insertion policy).
  llc_.age_to_lru(*l);
  if (!l->pinned) {
    l->pinned = true;
    llc_.note_pin(true);
  }
  return true;
}

void Hierarchy::kiln_clean_done(Addr line_addr) {
  Line* l = llc_.lookup(line_addr, /*touch=*/false);
  if (l == nullptr) return;  // bypassed or force-written earlier
  if (l->pinned) {
    l->pinned = false;
    llc_.note_pin(false);
  }
  l->dirty = false;
}

void Hierarchy::block_llc_until(Cycle until) {
  llc_blocked_until_ = std::max(llc_blocked_until_, until);
}

void Hierarchy::tick(Cycle now) {
  now_ = now;
  while (!wb_retry_.empty()) {
    if (!mem_->enqueue(wb_retry_.front(), now)) break;
    wb_retry_.pop_front();
  }
  if (unissued_misses_ == 0) return;
  for (auto& [line, miss] : llc_miss_) {
    if (miss.needs_issue) {
      issue_llc_read(now, miss);
      if (miss.needs_issue) break;  // controller still full
    }
  }
}

bool Hierarchy::quiesced() const {
  if (!wb_retry_.empty() || !llc_miss_.empty()) return false;
  for (const auto& m : l1_miss_) {
    if (!m.empty()) return false;
  }
  return true;
}

}  // namespace ntcsim::cache
