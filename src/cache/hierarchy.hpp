// Three-level inclusive cache hierarchy: private L1 + L2 per core, shared
// LLC, write-back/write-allocate, MSHRs at L1 and LLC, LRU everywhere.
//
// Per the paper (§3) the hierarchy operates unmodified under every
// mechanism; the persistence-specific behaviour is confined to small hooks:
//   * TC   — the LLC *drops* persistent write-backs and *probes* the
//            transaction cache on persistent misses (newest value wins).
//   * Kiln — the LLC is nonvolatile: uncommitted persistent blocks are
//            pinned (not evictable) and commit flushes block the LLC.
//   * SP   — clwb() flushes a line to NVM and reports persistence.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cache/array.hpp"
#include "check/events.hpp"
#include "common/config.hpp"
#include "common/event_queue.hpp"
#include "common/hot.hpp"
#include "common/stat_handle.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "mem/memory_system.hpp"
#include "recovery/images.hpp"

namespace ntcsim::cache {

struct HierarchyHooks {
  /// TC: drop persistent lines evicted from the LLC instead of writing
  /// them back (the NTC path is the only writer of persistent data, §3).
  bool drop_persistent_llc_writeback = false;
  /// TC: CAM probe of the requester core's transaction cache on a
  /// persistent LLC miss; true = newest value found in the NTC.
  std::function<bool(CoreId, Addr)> ntc_probe;
  /// Kiln: the LLC is STT-RAM; evicted dirty persistent lines write back to
  /// NVM as NV-LLC clean-backs and uncommitted blocks are pinned.
  bool llc_nonvolatile = false;
  /// Kiln: asked on LLC fill of a persistent line — if the filling core has
  /// an open transaction that dirtied this line, returns its TxId (pin it).
  std::function<TxId(CoreId, Addr)> kiln_pin_query;
};

class Hierarchy {
 public:
  using DoneFn = std::function<void()>;

  Hierarchy(const NodeConfig& cfg, mem::MemorySystem& mem, EventQueue& events,
            StatSet& stats, recovery::VolatileImage* vimage);

  /// Demand load. `done` fires when data is back at the core. Returns false
  /// when MSHRs or write-back resources are exhausted (retry next cycle).
  bool load(Cycle now, CoreId core, Addr addr, bool persistent, DoneFn done);

  /// Demand store (write-allocate). Completion is acceptance: the store
  /// buffer entry can be freed once this returns true (hit, or merged into
  /// an outstanding miss).
  bool store(Cycle now, CoreId core, Addr addr, Word value, bool persistent,
             TxId tx);

  /// Non-temporal write: bypasses every cache level, straight to memory.
  /// Returns false when the controller queue is full (retry).
  bool nt_write(Cycle now, const mem::MemRequest& req);

  /// Flush `addr`'s line to NVM (clwb semantics: clean, keep a copy).
  /// `on_persisted` fires when the NVM array write completes. Returns false
  /// to request a retry (queue full or the line is still miss-pending).
  bool clwb(Cycle now, CoreId core, Addr addr, mem::Source source,
            DoneFn on_persisted);

  /// Kiln: pin an LLC-resident persistent line against eviction.
  void kiln_pin(CoreId core, Addr line_addr, TxId tx);
  /// Kiln commit step: move one transaction line from L1/L2 into the LLC,
  /// marked committed-dirty and still pinned: an NV-LLC block "cannot be
  /// written back to main memory before the cache flushes complete" (§5.2),
  /// so it occupies the LLC until its NVM clean-back finishes. Upper-level
  /// copies are invalidated — post-commit loads pay the LLC trip (Fig. 10).
  /// Returns false when the LLC could not hold the line (bypass).
  bool kiln_commit_line(CoreId core, Addr line_addr);
  /// Kiln: NVM clean-back of `line_addr` completed — unpin and clean.
  void kiln_clean_done(Addr line_addr);
  /// Kiln: commit flushes block the LLC for other requests (§5.2).
  void block_llc_until(Cycle until);
  Cycle llc_blocked_until() const { return llc_blocked_until_; }

  /// Retry queued write-backs and unissued misses. Call once per cycle.
  void tick(Cycle now);

  /// True when no miss or write-back is outstanding (used to drain runs).
  bool quiesced() const;

  /// Earliest cycle > now at which tick() could do work (quiescence
  /// contract): any outstanding miss or queued write-back pins now + 1
  /// (retry loops, and the completion callbacks read the tick-fresh
  /// clock); a quiesced hierarchy is purely event-driven — kNeverCycle.
  NTC_HOT Cycle next_event_cycle(Cycle now) const {
    return quiesced() ? kNeverCycle : now + 1;
  }

  HierarchyHooks& hooks() { return hooks_; }
  /// Persistence-order checker tap (null = off): accepted persistent
  /// stores, NTC probes and dropped persistent write-backs.
  void set_check_sink(check::CheckSink* sink) { sink_ = sink; }
  const CacheArray& llc() const { return llc_; }
  CacheArray& l1(CoreId core) { return *l1_[core]; }
  CacheArray& l2(CoreId core) { return *l2_[core]; }

 private:
  struct L1Miss {
    Addr line = 0;
    bool persistent = false;
    bool write_merge = false;
    TxId tx = kNoTx;
    std::vector<DoneFn> waiters;
  };
  struct LlcMiss {
    Addr line = 0;
    bool persistent = false;
    bool needs_issue = false;  ///< Read not yet accepted by the controller.
    /// (core, extra latency below LLC) pairs to fill on completion.
    std::vector<std::pair<CoreId, DoneFn>> fills;
  };

  /// Common load/store entry; returns false on resource exhaustion.
  bool access(Cycle now, CoreId core, Addr line, bool is_write, bool persistent,
              TxId tx, DoneFn done);

  /// Fill the private levels of `core` and fire `done` at `when`.
  void fill_private(Cycle when_charged, CoreId core, Addr line, bool persistent,
                    bool dirty, TxId tx);
  /// Fill the LLC (allocating, possibly evicting); returns false on a
  /// Kiln all-pinned bypass.
  bool fill_llc(CoreId core, Addr line, bool persistent);

  void handle_llc_eviction(const Eviction& ev);
  void writeback_to_memory(Addr line, bool persistent, mem::Source source);
  void invalidate_private(CoreId core, Addr line, bool* upper_dirty);
  void issue_llc_read(Cycle now, LlcMiss& miss);
  void complete_llc_miss(Addr line);

  unsigned l1_latency_() const { return cfg_.l1.latency_cycles; }
  unsigned l2_latency_() const { return cfg_.l2.latency_cycles; }
  /// LLC access latency including any Kiln commit-block delay from `now`.
  Cycle llc_ready_delay(Cycle now) const;

  NodeConfig cfg_;
  mem::MemorySystem* mem_;
  EventQueue* events_;
  StatSet* stats_;
  recovery::VolatileImage* vimage_;
  HierarchyHooks hooks_;
  check::CheckSink* sink_ = nullptr;

  std::vector<std::unique_ptr<CacheArray>> l1_;
  std::vector<std::unique_ptr<CacheArray>> l2_;
  CacheArray llc_;

  std::vector<std::unordered_map<Addr, L1Miss>> l1_miss_;  ///< per core
  std::unordered_map<Addr, LlcMiss> llc_miss_;
  std::deque<mem::MemRequest> wb_retry_;
  std::size_t unissued_misses_ = 0;  ///< LlcMiss entries with needs_issue.
  Cycle llc_blocked_until_ = 0;
  Cycle now_ = 0;  ///< Updated by tick(); used by memory callbacks.

  CounterHandle stat_l1_hits_;
  CounterHandle stat_l1_misses_;
  CounterHandle stat_l2_hits_;
  CounterHandle stat_l2_misses_;
  CounterHandle stat_llc_hits_;
  CounterHandle stat_llc_misses_;
  CounterHandle stat_llc_wb_;
  CounterHandle stat_llc_wb_dropped_;
  CounterHandle stat_ntc_probe_hits_;
  CounterHandle stat_llc_bypass_;
  CounterHandle stat_clwb_;
  CounterHandle stat_reject_;
};

}  // namespace ntcsim::cache
