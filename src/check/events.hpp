// Tap-point event stream for the online persistence-order checker.
//
// Components that touch persistent state (memory system, hierarchy, NTCs,
// Kiln commit engine, cores) hold a default-null CheckSink* and emit a
// CheckEvent at each interesting transition. With no sink installed the tap
// is one null-pointer test — no EventQueue pushes, no stat lookups — so the
// measured perf path pays nothing (test_regression_metrics.cpp pins this).
// The checker stamps the cycle itself from the System clock; emitters never
// pass time.
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "mem/request.hpp"

namespace ntcsim::check {

enum class EventKind : std::uint8_t {
  kNvmRead,             ///< NVM controller accepted a read (line addr).
  kNvmWrite,            ///< NVM controller accepted a write (line addr).
  kNvmDurable,          ///< One payload word became durable (word addr).
  kLlcWritebackDropped, ///< TC: LLC discarded a persistent write-back.
  kNtcInsert,           ///< New NTC ring entry (line, tx, seq).
  kNtcCommit,           ///< NTC commit request CAM-matched `tx`.
  kNtcDrainIssue,       ///< Committed entry/spill-home issued to NVM.
  kNtcRelease,          ///< Entry freed by the NVM ack (line no longer held).
  kNtcProbe,            ///< LLC persistent miss probed the NTCs for `line`.
  kStoreDrained,        ///< Persistent store reached the hierarchy (word).
  kTxBegin,             ///< TX_BEGIN retired on `core`.
  kTxCommitted,         ///< TX_END retired with the domain committed.
  kKilnCommitStart,     ///< Kiln begin_commit(core, tx).
  kKilnFlushLine,       ///< Kiln commit flushed `line` into the NV-LLC.
  kKilnCommitDone,      ///< Kiln commit window for (core, tx) completed.
};

constexpr const char* to_string(EventKind k) {
  switch (k) {
    case EventKind::kNvmRead: return "nvm-read";
    case EventKind::kNvmWrite: return "nvm-write";
    case EventKind::kNvmDurable: return "nvm-durable";
    case EventKind::kLlcWritebackDropped: return "llc-wb-dropped";
    case EventKind::kNtcInsert: return "ntc-insert";
    case EventKind::kNtcCommit: return "ntc-commit";
    case EventKind::kNtcDrainIssue: return "ntc-drain-issue";
    case EventKind::kNtcRelease: return "ntc-release";
    case EventKind::kNtcProbe: return "ntc-probe";
    case EventKind::kStoreDrained: return "store-drained";
    case EventKind::kTxBegin: return "tx-begin";
    case EventKind::kTxCommitted: return "tx-committed";
    case EventKind::kKilnCommitStart: return "kiln-commit-start";
    case EventKind::kKilnFlushLine: return "kiln-flush-line";
    case EventKind::kKilnCommitDone: return "kiln-commit-done";
  }
  return "?";
}

/// Bit for one EventKind in a crash-hazard mask (persist::CrashProfile,
/// src/faultsim/). The kinds fit comfortably in 32 bits.
constexpr std::uint32_t event_bit(EventKind k) {
  return 1u << static_cast<unsigned>(k);
}

struct CheckEvent {
  EventKind kind = EventKind::kNvmRead;
  CoreId core = 0;
  TxId tx = kNoTx;
  /// Line address for line-granular events; word address for kNvmDurable
  /// and kStoreDrained.
  Addr addr = 0;
  Word value = 0;
  std::uint64_t seq = 0;  ///< NTC program-order sequence (drain events).
  mem::Source source = mem::Source::kDemand;
  bool persistent = false;
};

/// Implemented by check::PersistOrderChecker; components talk to this
/// interface only, so no library below sim/ links against ntc_check.
class CheckSink {
 public:
  virtual ~CheckSink() = default;
  CheckSink() = default;
  CheckSink(const CheckSink&) = delete;
  CheckSink& operator=(const CheckSink&) = delete;
  virtual void on_event(const CheckEvent& ev) = 0;
};

}  // namespace ntcsim::check
