#include "check/persist_order_checker.hpp"

#include <algorithm>
#include <cinttypes>
#include <utility>

#include "common/assert.hpp"
#include "recovery/log_format.hpp"

namespace ntcsim::check {

namespace {

/// Newest-first per-word store history depth. Two is enough to match a
/// durable payload word against the store that produced it; a little slack
/// covers repeated same-word writes racing their write-backs.
constexpr std::size_t kStoreHistoryDepth = 4;

std::string format_event(Cycle cycle, const CheckEvent& ev) {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "cycle %" PRIu64 ": %s addr=0x%" PRIx64 " core=%u tx=%u"
                " seq=%" PRIu64 " source=%s",
                cycle, to_string(ev.kind), ev.addr, ev.core, ev.tx, ev.seq,
                mem::to_string(ev.source));
  return buf;
}

}  // namespace

PersistOrderChecker::PersistOrderChecker(CheckerRules rules,
                                         const AddressSpace& space,
                                         unsigned cores, bool fatal)
    : rules_(rules), space_(space), fatal_(fatal) {
  ring_.resize(kRingSize);
  last_drain_seq_.assign(cores, 0);
  if (rules_.kiln_flush_complete) {
    kiln_expected_.resize(cores);
    kiln_flushed_.resize(cores);
  }
}

PersistOrderChecker::Region PersistOrderChecker::classify_(Addr a) const {
  if (a < space_.nvm_base()) return Region::kDram;
  if (a >= space_.shadow_base(0)) return Region::kShadow;
  if (a >= space_.log_base(0)) return Region::kLog;
  return Region::kHeap;
}

void PersistOrderChecker::record_(const CheckEvent& ev) {
  RingEvent& slot = ring_[ring_next_];
  slot.cycle = now_cycle_();
  slot.ev = ev;
  ring_next_ = (ring_next_ + 1) % ring_.size();
  if (ring_filled_ < ring_.size()) ++ring_filled_;
}

std::vector<std::pair<Cycle, CheckEvent>> PersistOrderChecker::history_for_(
    Addr line) const {
  // Scan backwards (newest first), collect, then flip to oldest-first.
  std::vector<std::pair<Cycle, CheckEvent>> out;
  std::size_t i = ring_next_;
  for (std::size_t n = 0; n < ring_filled_; ++n) {
    i = (i + ring_.size() - 1) % ring_.size();
    const RingEvent& r = ring_[i];
    if (line_of(r.ev.addr) != line) continue;
    out.emplace_back(r.cycle, r.ev);
    if (out.size() >= kHistoryPerViolation) break;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

void PersistOrderChecker::violate_(Rule rule, const CheckEvent& ev,
                                   std::string message) {
  ++violation_count_;
  Violation v;
  v.rule = rule;
  v.cycle = now_cycle_();
  v.line = line_of(ev.addr);
  v.tx = ev.tx;
  v.core = ev.core;
  v.message = std::move(message);
  v.history = history_for_(v.line);
  if (fatal_) {
    std::fprintf(stderr,
                 "persistence-order violation [%s%s] cycle %" PRIu64
                 " line 0x%" PRIx64 " core %u tx %u\n  %s\n",
                 scope_.c_str(), rule_id(v.rule), v.cycle, v.line, v.core,
                 v.tx, v.message.c_str());
    for (const auto& [cycle, hev] : v.history) {
      std::fprintf(stderr, "    %s\n", format_event(cycle, hev).c_str());
    }
    NTC_CHECK_MSG(false, "persistence-order checker tripped rule %s%s",
                  scope_.c_str(), rule_id(v.rule));
  }
  if (violations_.size() < kMaxStoredViolations) {
    violations_.push_back(std::move(v));
  }
}

void PersistOrderChecker::on_nvm_write_(const CheckEvent& ev) {
  if (!rules_.single_writer && !rules_.no_uncommitted) return;
  if (classify_(ev.addr) != Region::kHeap || !ev.persistent) return;
  if (rules_.single_writer &&
      (rules_.allowed_heap_sources & source_bit(ev.source)) == 0) {
    char buf[128];
    std::snprintf(buf, sizeof buf,
                  "persistent heap line written to NVM by source \"%s\""
                  " outside the mechanism's sanctioned path",
                  mem::to_string(ev.source));
    violate_(Rule::kSingleWriter, ev, buf);
  }
  if (rules_.no_uncommitted && ev.source == mem::Source::kTxCache &&
      ev.tx != kNoTx && committed_tx_.count(ev.tx) == 0) {
    char buf[96];
    std::snprintf(buf, sizeof buf,
                  "NTC drained tx %u to NVM before the core committed it",
                  ev.tx);
    violate_(Rule::kUncommittedDrain, ev, buf);
  }
}

void PersistOrderChecker::on_nvm_read_(const CheckEvent& ev) {
  if (!rules_.no_stale_read) return;
  const auto held = held_.find(ev.addr);
  const bool is_held = held != held_.end() && held->second > 0;
  const auto credit = probe_credits_.find(ev.addr);
  const bool has_credit = credit != probe_credits_.end() && credit->second > 0;
  if (is_held && !has_credit) {
    char buf[96];
    std::snprintf(buf, sizeof buf,
                  "NVM read of a line the NTC holds newer data for,"
                  " without an NTC probe");
    violate_(Rule::kNoStaleRead, ev, buf);
  }
  if (has_credit) {
    if (--credit->second == 0) probe_credits_.erase(credit);
  }
}

void PersistOrderChecker::on_log_word_durable_(Addr word, Word value) {
  log_words_[word] = value;
  // A log record is two 8-byte words at a 16-aligned base: [target | value]
  // (recovery/log_format.hpp). Once both halves are durable the record is
  // complete; commit markers carry no target and are skipped.
  const Addr base = word & ~static_cast<Addr>(0xF);
  const auto lo = log_words_.find(base);
  const auto hi = log_words_.find(base + 8);
  if (lo == log_words_.end() || hi == log_words_.end()) return;
  const Word target = lo->second;
  if (recovery::is_commit_marker(target)) return;
  durable_records_[static_cast<Addr>(target)].insert(hi->second);
}

void PersistOrderChecker::on_nvm_durable_(const CheckEvent& ev) {
  if (!rules_.log_before_data) return;
  switch (classify_(ev.addr)) {
    case Region::kLog:
      on_log_word_durable_(ev.addr, ev.value);
      break;
    case Region::kHeap: {
      // Match the durable word against the store that produced it; only
      // transactional stores carry the WAL obligation.
      const auto hist = store_hist_.find(ev.addr);
      if (hist == store_hist_.end()) break;
      TxId tx = kNoTx;
      bool matched = false;
      for (const auto& [htx, hvalue] : hist->second) {
        if (hvalue == ev.value) {
          tx = htx;
          matched = true;
          break;
        }
      }
      if (!matched || tx == kNoTx) break;
      const auto rec = durable_records_.find(ev.addr);
      if (rec == durable_records_.end() || rec->second.count(ev.value) == 0) {
        char buf[128];
        std::snprintf(buf, sizeof buf,
                      "tx %u data word 0x%" PRIx64
                      " became durable before its log record",
                      tx, ev.addr);
        CheckEvent attributed = ev;
        attributed.tx = tx;
        violate_(Rule::kLogBeforeData, attributed, buf);
      }
      break;
    }
    case Region::kDram:
    case Region::kShadow:
      break;
  }
}

void PersistOrderChecker::on_store_drained_(const CheckEvent& ev) {
  if (rules_.log_before_data && ev.tx != kNoTx &&
      classify_(ev.addr) == Region::kHeap) {
    auto& hist = store_hist_[ev.addr];
    hist.insert(hist.begin(), {ev.tx, ev.value});
    if (hist.size() > kStoreHistoryDepth) hist.resize(kStoreHistoryDepth);
  }
  if (rules_.kiln_flush_complete && ev.tx != kNoTx &&
      ev.core < kiln_expected_.size()) {
    kiln_expected_[ev.core][ev.tx].insert(line_of(ev.addr));
  }
}

void PersistOrderChecker::on_drain_issue_(const CheckEvent& ev) {
  if (!rules_.fifo_drain || ev.core >= last_drain_seq_.size()) return;
  std::uint64_t& last = last_drain_seq_[ev.core];
  if (ev.seq <= last) {
    char buf[128];
    std::snprintf(buf, sizeof buf,
                  "NTC drain issued seq %" PRIu64 " after seq %" PRIu64
                  " — committed lines must leave in FIFO order",
                  ev.seq, last);
    violate_(Rule::kFifoDrain, ev, buf);
  }
  last = std::max(last, ev.seq);
}

void PersistOrderChecker::on_event(const CheckEvent& ev) {
  record_(ev);
  switch (ev.kind) {
    case EventKind::kNvmWrite:
      on_nvm_write_(ev);
      break;
    case EventKind::kNvmRead:
      on_nvm_read_(ev);
      break;
    case EventKind::kNvmDurable:
      on_nvm_durable_(ev);
      break;
    case EventKind::kStoreDrained:
      on_store_drained_(ev);
      break;
    case EventKind::kNtcInsert:
      if (rules_.no_stale_read) ++held_[ev.addr];
      break;
    case EventKind::kNtcRelease:
      if (rules_.no_stale_read) {
        const auto it = held_.find(ev.addr);
        if (it != held_.end() && --it->second == 0) held_.erase(it);
      }
      break;
    case EventKind::kNtcProbe:
      if (rules_.no_stale_read) ++probe_credits_[ev.addr];
      break;
    case EventKind::kNtcDrainIssue:
      on_drain_issue_(ev);
      break;
    case EventKind::kTxCommitted:
      if (rules_.no_uncommitted) committed_tx_.insert(ev.tx);
      break;
    case EventKind::kKilnCommitStart:
      if (rules_.kiln_flush_complete && ev.core < kiln_flushed_.size()) {
        kiln_flushed_[ev.core].clear();
      }
      break;
    case EventKind::kKilnFlushLine:
      if (rules_.kiln_flush_complete && ev.core < kiln_flushed_.size()) {
        kiln_flushed_[ev.core].insert(ev.addr);
      }
      break;
    case EventKind::kKilnCommitDone:
      if (rules_.kiln_flush_complete && ev.core < kiln_flushed_.size()) {
        auto& expected = kiln_expected_[ev.core];
        const auto it = expected.find(ev.tx);
        if (it != expected.end()) {
          for (Addr line : it->second) {
            if (kiln_flushed_[ev.core].count(line) == 0) {
              char buf[128];
              std::snprintf(buf, sizeof buf,
                            "tx %u committed without flushing line 0x%" PRIx64
                            " into the NV-LLC",
                            ev.tx, line);
              CheckEvent attributed = ev;
              attributed.addr = line;
              violate_(Rule::kKilnFlushComplete, attributed, buf);
            }
          }
          expected.erase(it);
        }
      }
      break;
    case EventKind::kLlcWritebackDropped:
    case EventKind::kNtcCommit:
    case EventKind::kTxBegin:
      break;  // context-only events (ring buffer)
  }
}

void PersistOrderChecker::report(std::FILE* out) const {
  if (violation_count_ == 0) {
    std::fprintf(out, "persist-order check: 0 violations\n");
    return;
  }
  std::fprintf(out,
               "persist-order check: %" PRIu64 " violation(s), showing %zu\n",
               violation_count_, violations_.size());
  for (const Violation& v : violations_) {
    std::fprintf(out,
                 "  [%s%s] cycle %" PRIu64 " line 0x%" PRIx64
                 " core %u tx %u\n    %s\n",
                 scope_.c_str(), rule_id(v.rule), v.cycle, v.line, v.core,
                 v.tx, v.message.c_str());
    for (const auto& [cycle, ev] : v.history) {
      std::fprintf(out, "      %s\n", format_event(cycle, ev).c_str());
    }
  }
}

}  // namespace ntcsim::check
