// Online crash-consistency checker: a persistence-ordering race detector
// over the simulated traffic streams.
//
// recovery::check_atomicity validates the final image post-hoc; a mid-run
// ordering bug that happens to land on a consistent final image (the
// classic persistency-model failure mode) slips through it while still
// skewing every timing number. This checker watches the streams as they
// happen: NVM reads/writes and per-word durability at the memory system,
// LLC write-back drops, NTC inserts/commits/drains/probes, Kiln commit
// windows, and core TX_BEGIN/TX_END retires. Which invariants apply is the
// mechanism's own declaration (PersistenceDomain::checker_rules()).
//
// Violations are collected (bounded) with a structured record — rule id,
// cycle, line address, TxID, and the last three events touching that line
// from a bounded ring buffer — or abort the run in fatal mode.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "check/events.hpp"
#include "check/rules.hpp"
#include "common/config.hpp"
#include "common/types.hpp"

namespace ntcsim::check {

struct Violation {
  Rule rule = Rule::kSingleWriter;
  Cycle cycle = 0;
  Addr line = 0;
  TxId tx = kNoTx;
  CoreId core = 0;
  std::string message;
  /// Last events touching `line` before the violation, oldest first
  /// (at most kHistoryPerViolation, from the bounded ring buffer).
  std::vector<std::pair<Cycle, CheckEvent>> history;
};

class PersistOrderChecker final : public CheckSink {
 public:
  static constexpr std::size_t kRingSize = 1024;
  static constexpr std::size_t kHistoryPerViolation = 3;
  static constexpr std::size_t kMaxStoredViolations = 64;

  PersistOrderChecker(CheckerRules rules, const AddressSpace& space,
                      unsigned cores, bool fatal);

  /// The checker stamps cycles itself; point it at the System clock.
  void set_clock(const Cycle* now) { now_ = now; }

  /// Qualify reported rule ids with a scope prefix (e.g. "node1/" in a
  /// multi-node cluster, giving "[node1/tc.single-writer]"). Empty (the
  /// default) keeps the single-node report format unchanged.
  void set_scope(std::string scope) { scope_ = std::move(scope); }

  void on_event(const CheckEvent& ev) override;

  std::uint64_t violation_count() const { return violation_count_; }
  /// Stored violations (capped at kMaxStoredViolations; the count above is
  /// exact regardless).
  const std::vector<Violation>& violations() const { return violations_; }
  const CheckerRules& rules() const { return rules_; }

  /// Human-readable report of every stored violation.
  void report(std::FILE* out) const;

 private:
  enum class Region : std::uint8_t { kDram, kHeap, kLog, kShadow };
  Region classify_(Addr a) const;
  Cycle now_cycle_() const { return now_ != nullptr ? *now_ : 0; }

  void record_(const CheckEvent& ev);
  void violate_(Rule rule, const CheckEvent& ev, std::string message);
  std::vector<std::pair<Cycle, CheckEvent>> history_for_(Addr line) const;

  void on_nvm_write_(const CheckEvent& ev);
  void on_nvm_read_(const CheckEvent& ev);
  void on_nvm_durable_(const CheckEvent& ev);
  void on_store_drained_(const CheckEvent& ev);
  void on_drain_issue_(const CheckEvent& ev);
  void on_log_word_durable_(Addr word, Word value);

  CheckerRules rules_;
  AddressSpace space_;
  bool fatal_ = false;
  const Cycle* now_ = nullptr;
  std::string scope_;  ///< Rule-id prefix in reports ("" single-node).

  // Bounded event ring (violation context only).
  struct RingEvent {
    Cycle cycle = 0;
    CheckEvent ev;
  };
  std::vector<RingEvent> ring_;
  std::size_t ring_next_ = 0;
  std::size_t ring_filled_ = 0;

  // fifo-drain: last drained sequence number per core.
  std::vector<std::uint64_t> last_drain_seq_;
  // no-stale-read: lines the NTCs hold (insert minus release counts) and
  // outstanding probe credits (one probe per LLC miss, consumed by the
  // miss's NVM read).
  std::unordered_map<Addr, unsigned> held_;
  std::unordered_map<Addr, unsigned> probe_credits_;
  // uncommitted-drain: transactions the cores have committed.
  std::unordered_set<TxId> committed_tx_;
  // log-before-data: newest-first history of transactional stores per word
  // (capped), durable log words, and completed (target, value) records.
  std::unordered_map<Addr, std::vector<std::pair<TxId, Word>>> store_hist_;
  std::unordered_map<Addr, Word> log_words_;
  std::unordered_map<Addr, std::unordered_set<Word>> durable_records_;
  // kiln-flush-complete: per-core expected line set per transaction and the
  // lines flushed inside the open commit window.
  std::vector<std::unordered_map<TxId, std::unordered_set<Addr>>>
      kiln_expected_;
  std::vector<std::unordered_set<Addr>> kiln_flushed_;

  std::uint64_t violation_count_ = 0;
  std::vector<Violation> violations_;
};

}  // namespace ntcsim::check
