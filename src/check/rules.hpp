// Per-mechanism invariant specification for the persistence-order checker.
//
// Each persist::PersistenceDomain declares which ordering invariants its
// mechanism promises (checker_rules()); the checker enforces exactly those.
// A mechanism that promises nothing (Optimal) runs with every rule off and
// the checker is a pure event recorder.
#pragma once

#include <cstdint>

#include "mem/request.hpp"

namespace ntcsim::check {

enum class Rule : std::uint8_t {
  kSingleWriter,      ///< Heap NVM writes only from the sanctioned source.
  kFifoDrain,         ///< NTC drains leave in per-core seq (program) order.
  kNoStaleRead,       ///< NVM read of an NTC-held line without a probe.
  kUncommittedDrain,  ///< NTC drained a line whose tx never committed.
  kLogBeforeData,     ///< SP: data durable before its log record.
  kKilnFlushComplete, ///< Kiln: commit finished with unflushed tx lines.
};

constexpr const char* rule_id(Rule r) {
  switch (r) {
    case Rule::kSingleWriter: return "tc.single-writer";
    case Rule::kFifoDrain: return "tc.fifo-drain";
    case Rule::kNoStaleRead: return "tc.no-stale-read";
    case Rule::kUncommittedDrain: return "tc.uncommitted-drain";
    case Rule::kLogBeforeData: return "sp.log-before-data";
    case Rule::kKilnFlushComplete: return "kiln.flush-incomplete";
  }
  return "?";
}

constexpr std::uint8_t source_bit(mem::Source s) {
  return static_cast<std::uint8_t>(1u << static_cast<unsigned>(s));
}

struct CheckerRules {
  /// Persistent-heap NVM writes must come from a source in
  /// `allowed_heap_sources` (TC: the NTC drain path only, §3).
  bool single_writer = false;
  std::uint8_t allowed_heap_sources = 0;  ///< source_bit() mask.
  /// Committed NTC entries reach the NVM in strictly increasing per-core
  /// sequence order (§4.1 FIFO write-order control).
  bool fifo_drain = false;
  /// An NVM read of a line the NTC still holds must have been preceded by
  /// an NTC probe for that miss (the LLC never uses stale NVM data, §3).
  bool no_stale_read = false;
  /// The NTC only drains lines of committed transactions.
  bool no_uncommitted = false;
  /// SP WAL ordering: a transactional heap word may become durable only
  /// after its (address, value) log record is durable.
  bool log_before_data = false;
  /// Kiln: every line the transaction dirtied is flushed into the NV-LLC
  /// by the time its commit window closes (§5.2 flush-set completeness).
  bool kiln_flush_complete = false;

  bool any() const {
    return single_writer || fifo_drain || no_stale_read || no_uncommitted ||
           log_before_data || kiln_flush_complete;
  }
};

}  // namespace ntcsim::check
