// Simulation invariant checking. NTC_ASSERT stays on in release builds:
// a timing simulator that silently corrupts its own state produces numbers
// that look plausible and are wrong, which is worse than aborting.
#pragma once

#include <cstdio>
#include <cstdlib>

#define NTC_ASSERT(cond, msg)                                               \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "ntcsim invariant failed: %s\n  at %s:%d: %s\n", \
                   msg, __FILE__, __LINE__, #cond);                         \
      std::abort();                                                         \
    }                                                                       \
  } while (false)
