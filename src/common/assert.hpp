// Simulation invariant checking. NTC_ASSERT stays on in release builds:
// a timing simulator that silently corrupts its own state produces numbers
// that look plausible and are wrong, which is worse than aborting.
#pragma once

#include <cstdio>
#include <cstdlib>

#define NTC_ASSERT(cond, msg)                                               \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "ntcsim invariant failed: %s\n  at %s:%d: %s\n", \
                   (msg), __FILE__, __LINE__, #cond);                       \
      std::abort();                                                         \
    }                                                                       \
  } while (false)

// NTC_ASSERT with printf-style context (cycle, address, TxID, ...), so an
// abort message is actionable instead of a bare condition string:
//   NTC_CHECK_MSG(in_flight_ > 0, "ack underflow on %s at cycle %llu",
//                 name_.c_str(), (unsigned long long)now);
// Like NTC_ASSERT, stays on in release builds.
#define NTC_CHECK_MSG(cond, ...)                                     \
  do {                                                               \
    if (!(cond)) {                                                   \
      std::fprintf(stderr, "ntcsim invariant failed: ");             \
      std::fprintf(stderr, __VA_ARGS__);                             \
      std::fprintf(stderr, "\n  at %s:%d: %s\n", __FILE__, __LINE__, \
                   #cond);                                           \
      std::abort();                                                  \
    }                                                                \
  } while (false)
