#include "common/config.hpp"

namespace ntcsim {

DeviceTiming DeviceTiming::ddr3() {
  // DDR3/DDR4-class timings at a 2 GHz CPU clock (0.5 ns/cycle):
  // tCAS ~= 14 ns => ~28 cycles row hit; PRE+ACT+CAS ~= 41 ns => ~82
  // cycles row miss; 64 B burst over a ~21 GB/s channel => ~3 ns => 6
  // cycles of data-bus occupancy.
  DeviceTiming t;
  t.row_hit = 28;
  t.row_miss = 82;
  t.write_extra = 0;
  t.burst = 6;
  return t;
}

DeviceTiming DeviceTiming::sttram() {
  // Table 2: 65 ns read, 76 ns write. We charge the full array access on a
  // row miss (130 cycles) and a CAS-like latency on a row-buffer hit; writes
  // take 11 ns (22 cycles) longer than reads.
  DeviceTiming t;
  t.row_hit = 30;
  t.row_miss = 130;
  t.write_extra = 22;
  t.burst = 6;
  return t;
}

SystemConfig SystemConfig::paper() {
  SystemConfig c;
  c.cores = 4;
  c.ghz = 2.0;

  c.core.issue_width = 4;
  c.core.rob_entries = 128;

  c.l1 = CacheConfig{32ULL << 10, 4, 1, 16, 8};     // 32 KB, 4-way, 0.5 ns
  c.l2 = CacheConfig{256ULL << 10, 8, 9, 16, 8};    // 256 KB, 8-way, 4.5 ns
  c.llc = CacheConfig{64ULL << 20, 16, 20, 32, 16}; // 64 MB, 16-way, 10 ns

  c.ntc = TxCacheConfig{};  // 4 KB, 0.5 ns, 90 % overflow threshold.

  c.dram.timing = DeviceTiming::ddr3();
  // DDR3 refresh at 2 GHz: tREFI = 7.8 us => 15600 cycles; tRFC(4 Gb)
  // ~= 260 ns => 520 cycles. The NVM channel never refreshes.
  c.dram.refresh_interval = 15600;
  c.dram.refresh_cycles = 520;
  c.nvm.timing = DeviceTiming::sttram();
  return c;
}

SystemConfig SystemConfig::experiment() {
  SystemConfig c = paper();
  // The paper simulates 1.7 G instructions per benchmark; our runs are
  // ~1000x shorter, so the LLC is scaled with the workload footprint to
  // preserve the capacity-pressure ratio that Fig. 8 depends on.
  c.llc = CacheConfig{2ULL << 20, 16, 20, 32, 16};  // 2 MB shared LLC.
  return c;
}

SystemConfig SystemConfig::tiny() {
  SystemConfig c = paper();
  c.cores = 1;
  c.l1 = CacheConfig{1ULL << 10, 2, 1, 4, 4};
  c.l2 = CacheConfig{2ULL << 10, 2, 3, 4, 4};
  c.llc = CacheConfig{4ULL << 10, 4, 6, 8, 4};
  c.ntc.size_bytes = 512;  // 8 entries.
  c.dram.read_queue = 4;
  c.dram.write_queue = 8;
  c.nvm.read_queue = 4;
  c.nvm.write_queue = 8;
  c.nvm.ranks = 1;
  c.nvm.banks_per_rank = 2;
  c.dram.ranks = 1;
  c.dram.banks_per_rank = 2;
  // Unit tests always run under the persistence-order checker: a perf PR
  // that silently reorders drains or leaks an uncommitted line fails fast
  // here rather than skewing figures. The checker only observes, so golden
  // numbers are unchanged; measured presets (paper/experiment) stay off.
  c.check = CheckMode::kFatal;
  // ... and under skip verification: every clock jump is cross-checked by
  // single-stepping the gap, even in Release unit-test runs. A component
  // returning a too-late next_event_cycle() fails here loudly instead of
  // silently corrupting measured figures.
  c.skip.verify = true;
  return c;
}

}  // namespace ntcsim
