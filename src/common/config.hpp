// Machine configuration (paper Table 2) and experiment presets.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/types.hpp"

namespace ntcsim {

/// Physical address-space layout of the hybrid DRAM+NVM system (Fig. 1).
/// DRAM occupies the low half, NVM the high half. Inside NVM we reserve
/// per-core regions for the SP log area and the NTC overflow (hardware
/// copy-on-write) shadow area.
struct AddressSpace {
  std::uint64_t dram_bytes = 8ULL << 30;  ///< 8 GB DRAM (Table 2).
  std::uint64_t nvm_bytes = 8ULL << 30;   ///< 8 GB STT-RAM NVM (Table 2).

  Addr nvm_base() const { return dram_bytes; }
  Addr nvm_end() const { return dram_bytes + nvm_bytes; }
  bool is_persistent(Addr a) const { return a >= nvm_base() && a < nvm_end(); }

  /// Per-core write-ahead-log region (used by the SP mechanism).
  Addr log_base(CoreId core) const {
    return nvm_base() + nvm_bytes - (2ULL << 30) + core * (64ULL << 20);
  }
  std::uint64_t log_bytes_per_core() const { return 64ULL << 20; }

  /// Per-core NTC overflow shadow region (hardware copy-on-write, §4.1).
  Addr shadow_base(CoreId core) const {
    return nvm_base() + nvm_bytes - (1ULL << 30) + core * (64ULL << 20);
  }

  /// Usable persistent heap: NVM minus the reserved log/shadow regions.
  Addr heap_base() const { return nvm_base(); }
  std::uint64_t heap_bytes() const { return nvm_bytes - (2ULL << 30); }
};

/// Victim-selection policy for a set-associative cache level.
enum class ReplacementPolicy : std::uint8_t {
  kLru,     ///< True LRU (the default; what the paper's simulators use).
  kRandom,  ///< Pseudo-random victim (cheap hardware).
  kSrrip,   ///< Static RRIP (2-bit re-reference interval prediction).
};

constexpr std::string_view to_string(ReplacementPolicy p) {
  switch (p) {
    case ReplacementPolicy::kLru: return "lru";
    case ReplacementPolicy::kRandom: return "random";
    case ReplacementPolicy::kSrrip: return "srrip";
  }
  return "?";
}

/// One cache level.
struct CacheConfig {
  std::uint64_t size_bytes = 32 << 10;
  unsigned ways = 4;
  unsigned latency_cycles = 1;  ///< Access (hit) latency in CPU cycles.
  unsigned mshrs = 16;          ///< Outstanding-miss registers.
  unsigned writeback_buffer = 16;
  ReplacementPolicy replacement = ReplacementPolicy::kLru;

  std::uint64_t lines() const { return size_bytes / kLineBytes; }
  std::uint64_t sets() const { return lines() / ways; }
};

/// Core model (PTLsim-substitute, DESIGN.md §2).
struct CoreConfig {
  unsigned issue_width = 4;
  unsigned rob_entries = 128;
  unsigned store_buffer_entries = 56;
  unsigned compute_latency = 1;
};

/// Transaction cache (the paper's contribution, §4.1 and Table 2).
struct TxCacheConfig {
  std::uint64_t size_bytes = 4 << 10;  ///< 4 KB per core.
  unsigned latency_cycles = 1;         ///< 0.5 ns at 2 GHz.
  double overflow_threshold = 0.9;     ///< Fall-back path trips at 90 % full.
  unsigned drain_per_cycle = 1;        ///< Committed lines issued to NVM per cycle.

  std::uint64_t entries() const { return size_bytes / kLineBytes; }
};

/// Device timing for one memory technology, in CPU cycles (2 GHz: 1 cy = 0.5 ns).
struct DeviceTiming {
  unsigned row_hit = 30;     ///< CAS-only access.
  unsigned row_miss = 56;    ///< PRE + ACT + CAS.
  unsigned write_extra = 0;  ///< Additional array-write time over a read.
  unsigned burst = 8;        ///< Data-bus occupancy per 64 B line.

  static DeviceTiming ddr3();
  /// STT-RAM: 65 ns read, 76 ns write (Table 2 / [Zhao+ MICRO'13]).
  static DeviceTiming sttram();
};

/// Memory controller (Table 2): 8-entry read queue, 64-entry write queue,
/// read-first scheduling with write drain when the write queue is 80 % full.
struct MemCtrlConfig {
  unsigned read_queue = 8;
  unsigned write_queue = 64;
  double drain_high_watermark = 0.8;
  double drain_low_watermark = 0.25;
  unsigned ranks = 4;
  unsigned banks_per_rank = 8;
  /// Line-interleaved channels, each with its own controller, queues and
  /// data bus (1 = the paper's configuration).
  unsigned channels = 1;
  unsigned bus_latency = 8;  ///< LLC<->controller and ack-message latency.
  /// Refresh: every `refresh_interval` cycles a rank spends
  /// `refresh_cycles` unavailable (tREFI/tRFC). 0 disables refresh —
  /// STT-RAM cells are nonvolatile and never refresh, one of NVM's
  /// latency advantages the model keeps visible.
  Cycle refresh_interval = 0;
  Cycle refresh_cycles = 0;
  /// tFAW: at most four row activations per rank within this window
  /// (0 disables — the default, matching the published results).
  Cycle tfaw = 0;
  /// Write-to-read turnaround per rank (0 disables).
  Cycle twtr = 0;
  DeviceTiming timing;
};

/// Activation mode of the online persistence-order checker (src/check/).
enum class CheckMode : std::uint8_t {
  kOff,      ///< No taps installed; zero per-access cost.
  kCollect,  ///< Record violations, report at the end of the run.
  kFatal,    ///< Abort at the first violation (NTC_ASSERT-style).
};

constexpr std::string_view to_string(CheckMode m) {
  switch (m) {
    case CheckMode::kOff: return "off";
    case CheckMode::kCollect: return "collect";
    case CheckMode::kFatal: return "fatal";
  }
  return "?";
}

/// Service-mode request frontend: instead of replaying the measured trace
/// back-to-back, transactions become *requests* that arrive at a
/// configured rate, and the per-request latency (retire − arrival,
/// queueing included) feeds the tail-latency histogram. Arrivals are
/// precomputed deterministically per (seed, core) from common/rng.hpp, so
/// service cells stay bit-identical under `--jobs=N`.
struct ServiceConfig {
  bool enabled = false;
  /// Offered load in requests per kilocycle per core (open loop).
  double rate = 1.0;
  /// Measured requests (transactions) per core; 0 keeps the workload's
  /// default operation count.
  std::uint64_t requests = 0;
  /// Open loop: arrival times are independent of completion, so queueing
  /// delay shows up in the latency tail. Closed loop: the next request is
  /// issued as soon as the previous one retires (back-to-back).
  bool open_loop = true;
  /// Poisson process (exponential interarrival) vs fixed spacing.
  bool poisson = true;
};

/// Crash-injection campaign (src/faultsim/, `ntcsim --crash-sweep`).
/// Deterministic by construction: nothing here involves wall-clock time,
/// and the planner subsamples hazard cycles reproducibly.
struct CrashCampaignConfig {
  /// Crash points kept per cell after hazard-guided subsampling (first and
  /// last hazards always survive). 0 = keep every enumerated point.
  std::uint64_t points = 64;
  /// Workload RNG seeds swept per (mechanism, workload): seeds 1..N.
  unsigned seeds = 3;
  /// Measured operations per core in each campaign cell.
  std::uint64_t ops = 150;
  /// Structure size built before the measured phase (the sps workload
  /// scales this up internally to pressure the tiny LLC).
  std::uint64_t setup = 300;
  /// Shrink unexpected failures to the shortest reproducing transaction
  /// prefix (costs extra replays per failure).
  bool minimize = false;
};

/// Interconnect topology of a multi-node cluster (sim::Cluster). One node
/// is the paper's whole machine; a cluster shards the service-mode request
/// stream across `nodes` of them and charges cross-shard requests a
/// forward and a response traversal of the node-to-node fabric.
struct TopoConfig {
  /// Nodes in the cluster. 1 (the default) is the single-socket paper
  /// machine, byte-identical to the pre-cluster simulator.
  unsigned nodes = 1;
  /// One-way node-to-node hop latency, nanoseconds (RDMA-class fabric).
  double hop_ns = 300.0;
  /// Per-directed-link bandwidth, Gbit/s. Messages serialize onto a link
  /// in ingress order, so an overloaded link adds queueing delay.
  double link_gbps = 25.0;
  /// Modeled wire size of one request or response message, bytes.
  unsigned msg_bytes = 256;

  /// Hop latency in CPU cycles at `ghz`.
  Cycle hop_cycles(double ghz) const {
    return static_cast<Cycle>(hop_ns * ghz);
  }
  /// Link-serialization time of one message in CPU cycles at `ghz`.
  Cycle serialize_cycles(double ghz) const {
    if (link_gbps <= 0.0) return 0;
    const double ns = static_cast<double>(msg_bytes) * 8.0 / link_gbps;
    return static_cast<Cycle>(ns * ghz);
  }
};

/// Everything one node (cores + caches + NTCs + hybrid memory + domain)
/// needs. The single-socket configuration of the paper's Table 2; a
/// sim::Cluster instantiates one sim::Node per topo.nodes from this.
struct NodeConfig {
  unsigned cores = 4;
  double ghz = 2.0;
  AddressSpace address_space;
  CoreConfig core;
  CacheConfig l1;   ///< Private, 32 KB, 4-way, 0.5 ns.
  CacheConfig l2;   ///< Private, 256 KB, 8-way, 4.5 ns.
  CacheConfig llc;  ///< Shared, 64 MB, 16-way, 10 ns.
  TxCacheConfig ntc;
  MemCtrlConfig dram;
  MemCtrlConfig nvm;
  ServiceConfig service;
  Mechanism mechanism = Mechanism::kOptimal;

  /// Record functional values and transaction journals so that crash
  /// recovery can be simulated and checked (costs some simulation speed).
  bool track_recovery_state = true;

  /// Online persistence-order checker. Debug builds check fatally by
  /// default; release builds (the measured perf path) keep it off — the
  /// tiny() test preset and `ntcsim --check` / NTCSIM_CHECK opt in
  /// explicitly.
#ifndef NDEBUG
  CheckMode check = CheckMode::kFatal;
#else
  CheckMode check = CheckMode::kOff;
#endif
};

/// Quiescence-aware clock advance (topo::Cluster). When every component
/// reports itself idle until some future cycle, the cluster jumps the
/// shared clock there instead of ticking through the gap. Skipped cycles
/// are provably no-ops, so all observable output is bit-identical with
/// skipping on or off (`--no-skip` is the escape hatch / A-B probe).
struct SkipConfig {
  bool enabled = true;
  /// Cross-check mode: compute each jump target, then single-step the gap
  /// anyway and fail loudly if any supposedly-idle cycle did work (a
  /// too-late next_event_cycle is a real bug). Debug builds verify by
  /// default; release builds (the measured perf path) trust the jump.
#ifndef NDEBUG
  bool verify = true;
#else
  bool verify = false;
#endif
};

/// Whole-experiment configuration: the per-node machine (inherited — every
/// `cfg.cores`-style access keeps working) plus cluster topology and the
/// crash-campaign knobs that never vary per node.
struct SystemConfig : public NodeConfig {
  CrashCampaignConfig crash;
  TopoConfig topo;
  SkipConfig skip;

  /// Table 2 configuration verbatim.
  static SystemConfig paper();
  /// Paper configuration with a pressure-scaled LLC and shorter runs, used
  /// by the experiment harness (EXPERIMENTS.md documents the scaling).
  static SystemConfig experiment();
  /// Tiny machine for unit tests: small caches/queues so that evictions,
  /// overflows and drains happen within a few thousand cycles.
  static SystemConfig tiny();
};

}  // namespace ntcsim
