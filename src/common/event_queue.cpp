#include "common/event_queue.hpp"

#include <utility>

namespace ntcsim {

void EventQueue::sift_up_(std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!before_(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

void EventQueue::sift_down_(std::size_t i) {
  const std::size_t n = heap_.size();
  for (;;) {
    std::size_t smallest = i;
    const std::size_t l = 2 * i + 1;
    const std::size_t r = 2 * i + 2;
    if (l < n && before_(heap_[l], heap_[smallest])) smallest = l;
    if (r < n && before_(heap_[r], heap_[smallest])) smallest = r;
    if (smallest == i) return;
    std::swap(heap_[i], heap_[smallest]);
    i = smallest;
  }
}

EventQueue::Callback EventQueue::pop_front_() {
  Callback cb = std::move(heap_.front().cb);
  heap_.front() = std::move(heap_.back());
  heap_.pop_back();
  if (!heap_.empty()) sift_down_(0);
  return cb;
}

void EventQueue::drain_until(Cycle now) {
  while (!heap_.empty() && heap_.front().when <= now) {
    // Move out before pop: the callback may push new events and relocate
    // the heap storage.
    Callback cb = pop_front_();
    cb();
  }
}

void EventQueue::clear() {
  heap_.clear();
  next_seq_ = 0;
}

}  // namespace ntcsim
