#include "common/event_queue.hpp"

#include <utility>

namespace ntcsim {

void EventQueue::schedule_at(Cycle when, Callback cb) {
  heap_.push(Event{when, next_seq_++, std::move(cb)});
}

void EventQueue::drain_until(Cycle now) {
  while (!heap_.empty() && heap_.top().when <= now) {
    // Copy out before pop: the callback may push new events and invalidate
    // the reference returned by top().
    Callback cb = heap_.top().cb;
    heap_.pop();
    cb();
  }
}

void EventQueue::clear() {
  heap_ = {};
  next_seq_ = 0;
}

}  // namespace ntcsim
