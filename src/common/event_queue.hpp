// Discrete-event scheduler used for latency callbacks (cache fills, bus
// transfers, acknowledgment messages). Cycle-ticked components (cores,
// memory controllers, transaction caches) run in the System main loop;
// one-shot delayed actions go through this queue.
//
// The heap is hand-rolled rather than std::priority_queue for one hot-path
// reason: popping must MOVE the callback out of the heap. priority_queue
// only exposes a const top(), forcing a std::function copy per fired event
// — and copying a std::function re-allocates any out-of-line capture.
// Ordering is identical: (cycle, insertion sequence) ascending.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.hpp"

namespace ntcsim {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedule `cb` to fire at absolute cycle `when` (>= current drain point).
  /// Events scheduled for the same cycle fire in scheduling order.
  void schedule_at(Cycle when, Callback cb) {
    heap_.push_back(Event{when, next_seq_++, std::move(cb)});
    sift_up_(heap_.size() - 1);
  }

  /// Fire every event with time <= now, in (time, insertion) order.
  /// Callbacks may schedule further events, including for `now` itself.
  void drain_until(Cycle now);

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }
  /// Cycle of the earliest pending event; only valid when !empty().
  Cycle next_cycle() const { return heap_.front().when; }
  void clear();

  /// Count of schedule_at() calls since construction (or clear()) — a
  /// hardware-independent cost metric: event churn per workload cell is
  /// deterministic, so the regression suite pins it without flaky
  /// wall-clock assertions.
  std::uint64_t total_pushes() const { return next_seq_; }

 private:
  struct Event {
    Cycle when;
    std::uint64_t seq;
    Callback cb;
  };

  bool before_(const Event& a, const Event& b) const {
    return a.when != b.when ? a.when < b.when : a.seq < b.seq;
  }
  void sift_up_(std::size_t i);
  void sift_down_(std::size_t i);
  /// Remove the front event, returning its callback by move.
  Callback pop_front_();

  std::vector<Event> heap_;  ///< Binary min-heap over (when, seq).
  std::uint64_t next_seq_ = 0;
};

}  // namespace ntcsim
