// Discrete-event scheduler used for latency callbacks (cache fills, bus
// transfers, acknowledgment messages). Cycle-ticked components (cores,
// memory controllers, transaction caches) run in the System main loop;
// one-shot delayed actions go through this queue.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.hpp"

namespace ntcsim {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedule `cb` to fire at absolute cycle `when` (>= current drain point).
  /// Events scheduled for the same cycle fire in scheduling order.
  void schedule_at(Cycle when, Callback cb);

  /// Fire every event with time <= now, in (time, insertion) order.
  /// Callbacks may schedule further events, including for `now` itself.
  void drain_until(Cycle now);

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }
  /// Cycle of the earliest pending event; only valid when !empty().
  Cycle next_cycle() const { return heap_.top().when; }
  void clear();

 private:
  struct Event {
    Cycle when;
    std::uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return a.when != b.when ? a.when > b.when : a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace ntcsim
