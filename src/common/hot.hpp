// NTC_HOT — marks a function as per-cycle hot path.
//
// Two consumers:
//  * tools/ntclint's hot-alloc rule extends its tick/step/advance name
//    heuristic to any function carrying NTC_HOT in its signature, so
//    helpers called every cycle (drain loops, probe paths) get the same
//    no-allocation discipline as the tick functions themselves.
//  * Under Clang the marker lowers to an `annotate` attribute, which the
//    ASTMatchers backend matches type-accurately; elsewhere it expands
//    to nothing and costs nothing.
//
// Usage (on the declaration):
//   NTC_HOT void drain_one(Cycle now);
#pragma once

#if defined(__clang__)
#define NTC_HOT __attribute__((annotate("ntc_hot")))
#else
#define NTC_HOT
#endif
