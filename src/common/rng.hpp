// Deterministic pseudo-random source for workload generation.
// SplitMix64: tiny state, excellent statistical quality for this purpose,
// and — unlike std::mt19937 + std::uniform_int_distribution — bit-exact
// across standard libraries, so experiments reproduce everywhere.
#pragma once

#include <cstdint>

#include "common/assert.hpp"

namespace ntcsim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed + 0x9e3779b97f4a7c15ULL) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound). Uses 128-bit multiply-shift; bias is < 2^-64.
  std::uint64_t below(std::uint64_t bound) {
    NTC_ASSERT(bound > 0, "Rng::below requires a positive bound");
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  /// Uniform in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) {
    NTC_ASSERT(lo <= hi, "Rng::range requires lo <= hi");
    return lo + below(hi - lo + 1);
  }

  /// Bernoulli with probability num/den.
  bool chance(std::uint64_t num, std::uint64_t den) { return below(den) < num; }

  double unit() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

 private:
  std::uint64_t state_;
};

}  // namespace ntcsim
