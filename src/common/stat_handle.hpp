// Pre-resolved statistics handles for hot paths.
//
// StatSet resolves dotted names through a std::map, which is fine at
// registration and report time but far too slow per simulated access.
// Components therefore resolve each stat ONCE in their constructor and
// bump a raw pointer on the hot path. A StatHandle packages that idiom:
// it is a typed non-owning pointer into the StatSet (whose stats are
// node-stable), default-constructed null so members can be declared
// before the constructor body runs.
//
//   CounterHandle hits_;                 // member
//   hits_ = CounterHandle(stats, "l1.hits");   // constructor, one lookup
//   hits_->inc();                        // hot path, no lookup
//
// StatSet::name_lookups() counts every by-name resolution, so the
// regression suite can assert that lookup counts stay O(components),
// not O(accesses).
#pragma once

#include <string>

#include "common/stats.hpp"

namespace ntcsim {

template <typename Stat>
class StatHandle {
 public:
  StatHandle() = default;
  explicit StatHandle(Stat& stat) : stat_(&stat) {}

  // Shallow const, like the raw pointer it replaces: a const component may
  // still bump its (mutable-by-design) statistics, e.g. probe counters in
  // const query methods.
  Stat* operator->() const { return stat_; }
  Stat& operator*() const { return *stat_; }
  explicit operator bool() const { return stat_ != nullptr; }

 private:
  Stat* stat_ = nullptr;
};

class CounterHandle : public StatHandle<Counter> {
 public:
  CounterHandle() = default;
  CounterHandle(StatSet& set, const std::string& name)
      : StatHandle(set.counter(name)) {}
};

class AccumulatorHandle : public StatHandle<Accumulator> {
 public:
  AccumulatorHandle() = default;
  AccumulatorHandle(StatSet& set, const std::string& name)
      : StatHandle(set.accumulator(name)) {}
};

class HistogramHandle : public StatHandle<Histogram> {
 public:
  HistogramHandle() = default;
  HistogramHandle(StatSet& set, const std::string& name)
      : StatHandle(set.histogram(name)) {}
};

}  // namespace ntcsim
