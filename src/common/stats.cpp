#include "common/stats.hpp"

#include <bit>

namespace ntcsim {

void Histogram::add(std::uint64_t v) {
  const int b = (v == 0) ? 0 : std::min(kBuckets - 1, 64 - std::countl_zero(v));
  ++buckets_[b];
  ++total_;
}

std::uint64_t Histogram::percentile_edge(double pct) const {
  if (total_ == 0) return 0;
  const double target = pct / 100.0 * static_cast<double>(total_);
  std::uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += buckets_[b];
    if (static_cast<double>(seen) >= target) {
      return b == 0 ? 0 : (1ULL << b) - 1;
    }
  }
  return ~0ULL;
}

void Histogram::merge(const Histogram& other) {
  for (int b = 0; b < kBuckets; ++b) buckets_[b] += other.buckets_[b];
  total_ += other.total_;
}

Histogram Histogram::diff_since(const Histogram& earlier) const {
  Histogram d;
  for (int b = 0; b < kBuckets; ++b) {
    d.buckets_[b] = buckets_[b] - earlier.buckets_[b];
  }
  d.total_ = total_ - earlier.total_;
  return d;
}

void Histogram::reset() { *this = Histogram{}; }

Counter& StatSet::counter(const std::string& name) {
  ++name_lookups_;
  return counters_[name];
}

Accumulator& StatSet::accumulator(const std::string& name) {
  ++name_lookups_;
  return accumulators_[name];
}

Histogram& StatSet::histogram(const std::string& name) {
  ++name_lookups_;
  return histograms_[name];
}

std::uint64_t StatSet::counter_value(const std::string& name) const {
  ++name_lookups_;
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second.value();
}

bool StatSet::has_counter(const std::string& name) const {
  ++name_lookups_;
  return counters_.count(name) != 0;
}

double StatSet::accumulator_mean(const std::string& name) const {
  ++name_lookups_;
  auto it = accumulators_.find(name);
  return it == accumulators_.end() ? 0.0 : it->second.mean();
}

double StatSet::accumulator_sum(const std::string& name) const {
  ++name_lookups_;
  auto it = accumulators_.find(name);
  return it == accumulators_.end() ? 0.0 : it->second.sum();
}

std::uint64_t StatSet::accumulator_count(const std::string& name) const {
  ++name_lookups_;
  auto it = accumulators_.find(name);
  return it == accumulators_.end() ? 0 : it->second.count();
}

std::uint64_t StatSet::counter_prefix_sum(const std::string& prefix) const {
  ++name_lookups_;
  std::uint64_t sum = 0;
  for (auto it = counters_.lower_bound(prefix);
       it != counters_.end() && it->first.compare(0, prefix.size(), prefix) == 0;
       ++it) {
    sum += it->second.value();
  }
  return sum;
}

void StatSet::reset() {
  for (auto& [_, c] : counters_) c.reset();
  for (auto& [_, a] : accumulators_) a.reset();
  for (auto& [_, h] : histograms_) h.reset();
}

void StatSet::dump(std::ostream& os) const {
  for (const auto& [name, c] : counters_) {
    os << name << " = " << c.value() << '\n';
  }
  for (const auto& [name, a] : accumulators_) {
    os << name << " = mean " << a.mean() << " (n=" << a.count() << ")\n";
  }
}

std::vector<std::string> StatSet::counter_names() const {
  std::vector<std::string> out;
  out.reserve(counters_.size());
  for (const auto& [name, _] : counters_) out.push_back(name);
  return out;
}

}  // namespace ntcsim
