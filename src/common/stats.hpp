// Named statistics registry. Every hardware model owns a StatSet and
// registers counters/accumulators in its constructor; the experiment
// harness reads them by name after a run.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace ntcsim {

/// Monotonic event counter.
class Counter {
 public:
  void inc(std::uint64_t by = 1) { value_ += by; }
  std::uint64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// Sum + count accumulator for latency-style measurements.
class Accumulator {
 public:
  void add(double v) {
    sum_ += v;
    ++count_;
    if (v > max_) max_ = v;
  }
  double sum() const { return sum_; }
  std::uint64_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }
  double max() const { return max_; }
  void reset() { *this = Accumulator{}; }

 private:
  double sum_ = 0.0;
  double max_ = 0.0;
  std::uint64_t count_ = 0;
};

/// Fixed-bucket histogram (power-of-two buckets) for distributions such as
/// queue occupancy or load latency.
class Histogram {
 public:
  static constexpr int kBuckets = 32;

  void add(std::uint64_t v);
  /// Accumulate another histogram's buckets into this one.
  void merge(const Histogram& other);
  /// Bucket-wise `this - earlier`, for windowed views over a cumulative
  /// histogram (`earlier` must be a previous snapshot of this one).
  Histogram diff_since(const Histogram& earlier) const;
  std::uint64_t bucket(int i) const { return buckets_[i]; }
  std::uint64_t total() const { return total_; }
  /// Smallest value v such that at least `pct` percent of samples are <= the
  /// upper edge of v's bucket. Returns the bucket upper edge.
  std::uint64_t percentile_edge(double pct) const;
  void reset();

 private:
  std::uint64_t buckets_[kBuckets] = {};
  std::uint64_t total_ = 0;
};

/// A flat, hierarchical-by-name statistics registry.
///
/// Components register stats under dotted names ("llc.miss", "ntc0.stall").
/// Registration returns a stable reference; lookup by name serves the
/// harness. Stats are owned by the registry (deque-backed, pointers stable).
class StatSet {
 public:
  Counter& counter(const std::string& name);
  Accumulator& accumulator(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Lookup; returns 0 / empty stats for unknown names rather than
  /// inventing entries, so read-only consumers cannot pollute the set.
  std::uint64_t counter_value(const std::string& name) const;
  double accumulator_mean(const std::string& name) const;
  double accumulator_sum(const std::string& name) const;
  std::uint64_t accumulator_count(const std::string& name) const;
  bool has_counter(const std::string& name) const;

  /// Sum of all counters whose name matches `prefix` + anything.
  std::uint64_t counter_prefix_sum(const std::string& prefix) const;

  void reset();
  void dump(std::ostream& os) const;
  std::vector<std::string> counter_names() const;

  /// Total by-name resolutions (registration + report reads) since
  /// construction. Hot paths resolve once via stat_handle.hpp, so this
  /// must stay O(components + report reads), never O(accesses) — the
  /// regression suite guards it.
  std::uint64_t name_lookups() const { return name_lookups_; }

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Accumulator> accumulators_;
  std::map<std::string, Histogram> histograms_;
  mutable std::uint64_t name_lookups_ = 0;
};

}  // namespace ntcsim
