#include "common/table.hpp"

#include <algorithm>
#include <cstdio>

#include "common/assert.hpp"

namespace ntcsim {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  NTC_ASSERT(cells.size() == header_.size(), "table row width mismatch");
  rows_.push_back(std::move(cells));
}

void Table::add_row(const std::string& label, const std::vector<double>& values,
                    int decimals) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) cells.push_back(fmt(v, decimals));
  add_row(std::move(cells));
}

std::string Table::fmt(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t i = 0; i < header_.size(); ++i) width[i] = header_[i].size();
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      width[i] = std::max(width[i], row[i].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << (i == 0 ? "" : "  ");
      os << row[i];
      for (std::size_t p = row[i].size(); p < width[i]; ++p) os << ' ';
    }
    os << '\n';
  };
  print_row(header_);
  std::size_t total = 0;
  for (std::size_t w : width) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

}  // namespace ntcsim
