// Plain-text table rendering for the benchmark harness: every bench binary
// prints the rows/series of its paper table or figure through this.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace ntcsim {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  /// Convenience: first cell is a label, the rest are numbers formatted
  /// with `decimals` digits.
  void add_row(const std::string& label, const std::vector<double>& values,
               int decimals = 3);

  void print(std::ostream& os) const;

  static std::string fmt(double v, int decimals = 3);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ntcsim
