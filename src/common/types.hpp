// Fundamental identifiers and enums shared by every ntcsim module.
// ntclint-suppress-file(mechanism-seam): enum home — to_string() over the
// built-in ids is naming, not mechanism dispatch; behaviour routes through
// persist::DomainRegistry.
#pragma once

#include <cstdint>
#include <string_view>

namespace ntcsim {

/// Simulated time, in CPU cycles. The whole machine runs in a single 2 GHz
/// clock domain (see DESIGN.md §2: clock-domain substitution).
using Cycle = std::uint64_t;

/// "No self-scheduled event": a component whose next_event_cycle() returns
/// this is idle until some external input (event-queue callback, another
/// component's tick) wakes it. See docs/ARCHITECTURE.md "Clock advance &
/// quiescence".
inline constexpr Cycle kNeverCycle = ~static_cast<Cycle>(0);

/// Simulated physical byte address.
using Addr = std::uint64_t;

/// 64-bit payload carried by persistent stores. Functional values are
/// tracked at word granularity so crash recovery can be checked exactly.
using Word = std::uint64_t;

using CoreId = std::uint32_t;

/// Index of one node (socket + memory + NTCs) within a sim::Cluster.
using NodeId = std::uint32_t;

/// Transaction identifier as held in the CPU TxID register and the
/// transaction-cache data array (16 bits in hardware, Table 1).
using TxId = std::uint32_t;

inline constexpr TxId kNoTx = 0;  ///< TxID 0 == normal (non-transactional) mode.

inline constexpr unsigned kLineBytes = 64;      ///< Cache-line size.
inline constexpr unsigned kLineShift = 6;
inline constexpr unsigned kWordBytes = 8;

/// Align an address down to its cache-line base.
constexpr Addr line_of(Addr a) { return a & ~static_cast<Addr>(kLineBytes - 1); }
/// Align an address down to its 8-byte word base.
constexpr Addr word_of(Addr a) { return a & ~static_cast<Addr>(kWordBytes - 1); }

/// Persistence mechanisms compared in the paper's evaluation (§5.1).
/// These enum constants are the *built-in* ids; mechanisms added through
/// persist::DomainRegistry receive ids from kNumBuiltinMechanisms upward,
/// so a Mechanism value is an open identifier, not a closed set. Behaviour
/// never switches on this type outside src/persist/ — it is only an id.
enum class Mechanism {
  kOptimal,  ///< Native execution, no persistence guarantee.
  kSp,       ///< Software persistence: WAL + clwb/sfence/pcommit.
  kTc,       ///< This paper: nonvolatile transaction cache.
  kKiln,     ///< Prior work [Zhao+ MICRO'13]: nonvolatile LLC, flush-on-commit.
  kSpAdr,    ///< Extension: SP on an ADR platform — the controller's write
             ///< queue is inside the persistence domain, so ordering needs
             ///< only sfence (pcommit-free, as on post-2016 Intel systems).
};

/// First id available to registry-defined mechanisms.
inline constexpr int kNumBuiltinMechanisms = 5;

/// Built-in names only; registry-defined mechanisms are named by their
/// DomainInfo (use persist::DomainRegistry::display_name for any id).
constexpr std::string_view to_string(Mechanism m) {
  switch (m) {
    case Mechanism::kOptimal: return "Optimal";
    case Mechanism::kSp: return "SP";
    case Mechanism::kTc: return "TC";
    case Mechanism::kKiln: return "Kiln";
    case Mechanism::kSpAdr: return "SP-ADR";
  }
  return "?";
}

/// The five NV-heaps-style workloads (Table 3), plus two extensions that
/// are not in the paper's suite: `queue` (persistent FIFO ring) and
/// `skiplist` (pointer-splicing ordered index).
enum class WorkloadKind {
  kGraph,
  kRbtree,
  kSps,
  kBtree,
  kHashtable,
  kQueue,
  kSkiplist,
};

constexpr std::string_view to_string(WorkloadKind w) {
  switch (w) {
    case WorkloadKind::kGraph: return "graph";
    case WorkloadKind::kRbtree: return "rbtree";
    case WorkloadKind::kSps: return "sps";
    case WorkloadKind::kBtree: return "btree";
    case WorkloadKind::kHashtable: return "hashtable";
    case WorkloadKind::kQueue: return "queue";
    case WorkloadKind::kSkiplist: return "skiplist";
  }
  return "?";
}

}  // namespace ntcsim
