// Interface between the core and a hardware commit engine that needs to
// observe stores and run work at TX_END (implemented by persist::KilnUnit).
// Keeping it abstract here avoids a core <-> persist dependency cycle.
#pragma once

#include "common/types.hpp"

namespace ntcsim::core {

class CommitEngine {
 public:
  virtual ~CommitEngine() = default;

  virtual void begin_tx(CoreId core, TxId tx) = 0;
  /// A persistent in-transaction store drained from the store buffer.
  virtual void on_store(Cycle now, CoreId core, Addr addr, Word value,
                        TxId tx) = 0;
  /// TX_END reached with all stores drained: start the commit.
  virtual void begin_commit(Cycle now, CoreId core, TxId tx) = 0;
  /// True once the in-flight commit of `core` has completed.
  virtual bool commit_done(CoreId core) const = 0;
};

}  // namespace ntcsim::core
