#include "core/core.hpp"

#include <memory>

#include "common/assert.hpp"

namespace ntcsim::core {

Core::Core(CoreId id, const CoreConfig& cfg, PersistHooks& domain,
           cache::Hierarchy& hier, StatSet& stats)
    : id_(id),
      cfg_(cfg),
      domain_(&domain),
      traits_(domain.core_traits()),
      hier_(&hier),
      stats_(&stats),
      prefix_("core" + std::to_string(id)) {
  stat_load_lat_ = AccumulatorHandle(*stats_, prefix_ + ".load_latency");
  stat_pload_lat_ = AccumulatorHandle(*stats_, prefix_ + ".pload_latency");
  stat_pload_hist_ = HistogramHandle(*stats_, prefix_ + ".pload_latency_hist");
  stat_req_lat_ = AccumulatorHandle(*stats_, prefix_ + ".req_latency");
  stat_req_hist_ = HistogramHandle(*stats_, prefix_ + ".req_latency_hist");
  stat_retired_ = CounterHandle(*stats_, prefix_ + ".retired");
  stat_txs_ = CounterHandle(*stats_, prefix_ + ".txs");
  stat_ntc_stall_ = CounterHandle(*stats_, prefix_ + ".ntc_stall_cycles");
  static constexpr const char* kStallNames[] = {
      "compute",     "load",       "sb_full", "txend_drain", "txend_flush",
      "clwb_drain",  "clwb_issue", "sfence",  "pcommit"};
  static_assert(std::size(kStallNames) ==
                static_cast<std::size_t>(Stall::kCount));
  for (std::size_t r = 0; r < static_cast<std::size_t>(Stall::kCount); ++r) {
    stat_stalls_[r] =
        CounterHandle(*stats_, prefix_ + ".stall." + kStallNames[r]);
  }
}

void Core::bind_trace(const Trace* trace) {
  trace_ = trace;
  cursor_ = 0;
  req_start_q_.clear();
  trace_base_valid_ = false;
}

bool Core::forwarded_by_store_(const RobEntry* until, Addr addr) const {
  const Addr word = word_of(addr);
  for (const SbEntry& e : sb_) {
    if (word_of(e.addr) == word) return true;
  }
  for (const RobEntry& e : rob_) {
    if (&e == until) break;
    if (e.op.kind == OpKind::kStore && word_of(e.op.addr) == word) return true;
  }
  return false;
}

bool Core::sb_holds_line_(Addr line) const {
  for (const SbEntry& e : sb_) {
    if (line_of(e.addr) == line) return true;
  }
  return false;
}

void Core::fetch_(Cycle now) {
  unsigned fetched = 0;
  while (trace_ != nullptr && cursor_ < trace_->size() &&
         rob_.size() < cfg_.rob_entries && fetched < cfg_.issue_width) {
    // Open-loop service mode: a kTxBegin stamped with a future arrival
    // cycle has not been issued by the load generator yet — the frontend
    // idles until it arrives. A congested core fetches it late, and that
    // queueing delay lands in the request latency (start = arrival). A
    // cross-shard request additionally cannot be fetched before the
    // interconnect delivered it (arrival + net_fwd).
    if ((*trace_)[cursor_].kind == OpKind::kTxBegin &&
        (*trace_)[cursor_].addr > 0 &&
        trace_base_ + (*trace_)[cursor_].addr + (*trace_)[cursor_].net_fwd >
            now) {
      break;
    }
    RobEntry e;
    e.op = (*trace_)[cursor_++];
    switch (e.op.kind) {
      case OpKind::kCompute:
        e.ready_at = now + cfg_.compute_latency;
        break;
      case OpKind::kLoad:
        e.issue_cycle = now;
        break;
      case OpKind::kTxBegin:
        e.ready = true;
        // Latency counts from the request's ingress arrival (before the
        // forward hop), so the full network round trip is visible.
        req_start_q_.push_back(
            {e.op.addr > 0 ? trace_base_ + static_cast<Cycle>(e.op.addr)
                           : now,
             e.op.net_rsp});
        break;
      default:
        e.ready = true;  // readiness checked at retire for the rest
        break;
    }
    rob_.push_back(std::move(e));
    if (rob_.back().op.kind == OpKind::kLoad) {
      unissued_q_.push_back(&rob_.back());
    }
    ++fetched;
  }
}

void Core::on_load_done_(RobEntry* e) {
  e->ready = true;
  const Cycle l = now_cache_ - e->issue_cycle;
  stat_load_lat_->add(static_cast<double>(l));
  if (e->op.persistent) {
    stat_pload_lat_->add(static_cast<double>(l));
    stat_pload_hist_->add(l);
  }
}

void Core::issue_loads_(Cycle now) {
  // E.g. Kiln: an in-flight commit flush occupies this core's cache ports
  // — no new loads issue until the domain releases them.
  if (traits_.may_block_loads && domain_->loads_blocked(id_)) return;
  unsigned issued = 0;
  while (!unissued_q_.empty() && issued < cfg_.issue_width) {
    RobEntry* e = unissued_q_.front();
    ++issued;
    if (forwarded_by_store_(e, e->op.addr)) {
      e->issued = true;
      e->ready = true;  // store-to-load forwarding: 1-cycle bypass
      stat_load_lat_->add(1.0);
      if (e->op.persistent) {
        stat_pload_lat_->add(1.0);
        stat_pload_hist_->add(1);
      }
      unissued_q_.pop_front();
      continue;
    }
    const bool ok = hier_->load(now, id_, e->op.addr, e->op.persistent,
                                [this, e] { on_load_done_(e); });
    if (!ok) break;  // resources exhausted; retry in order next cycle
    e->issued = true;
    unissued_q_.pop_front();
  }
}

void Core::flush_wc_buffer_(Cycle /*now*/) {
  if (wc_words_.empty()) return;
  mem::MemRequest req;
  req.op = mem::MemOp::kWrite;
  req.line_addr = wc_line_;
  req.persistent = true;
  req.core = id_;
  req.source = mem::Source::kLog;
  req.payload = std::move(wc_words_);
  wc_words_.clear();
  unsigned* counter = &outstanding_log_flushes_;
  ++*counter;
  req.on_complete = [counter](const mem::MemRequest&) { --*counter; };
  nt_pending_.push_back(std::move(req));
}

void Core::drain_nt_writes_(Cycle now) {
  while (!nt_pending_.empty()) {
    if (!hier_->nt_write(now, nt_pending_.front())) break;
    nt_pending_.pop_front();
  }
}

void Core::drain_store_buffer_(Cycle now) {
  unsigned drained = 0;
  while (!sb_.empty() && drained < 2) {
    SbEntry& e = sb_.front();
    const bool in_tx = e.persistent && e.tx != kNoTx;
    if (traits_.routes_tx_stores && in_tx && !e.routed) {
      switch (domain_->route_store(now, id_, e.addr, e.value, e.tx)) {
        case StoreRoute::kAccepted:
          e.routed = true;
          break;
        case StoreRoute::kRetryCapacity:
          stat_ntc_stall_->inc();
          return;
        case StoreRoute::kRetry:
          return;
      }
    }
    if (!e.hier_done) {
      if (!hier_->store(now, id_, e.addr, e.value, e.persistent, e.tx)) {
        return;  // cache resources exhausted; retry next cycle
      }
      e.hier_done = true;
      if (traits_.observes_tx_stores && in_tx) {
        domain_->on_store_drained(now, id_, e.addr, e.value, e.tx);
      }
    }
    sb_.pop_front();
    ++drained;
  }
}

bool Core::retire_one_(Cycle now) {
  RobEntry& e = rob_.front();
  switch (e.op.kind) {
    case OpKind::kCompute:
      if (now < e.ready_at) {
        note_stall_(Stall::kCompute);
        return false;
      }
      break;

    case OpKind::kLoad:
      if (!e.ready) {
        note_stall_(Stall::kLoad);
        return false;
      }
      break;

    case OpKind::kStore: {
      if (sb_.size() >= cfg_.store_buffer_entries) {
        note_stall_(Stall::kSbFull);
        return false;
      }
      SbEntry s;
      s.addr = e.op.addr;
      s.value = e.op.value;
      s.persistent = e.op.persistent;
      s.tx = e.op.persistent ? mode_reg_ : kNoTx;
      sb_.push_back(s);
      if (traits_.observes_tx_stores && s.persistent && s.tx != kNoTx) {
        domain_->on_store_retired(id_, s.tx);
      }
      break;
    }

    case OpKind::kNtStore: {
      // Coalesce into the open write-combining line; a new line flushes
      // the previous one toward the NVM controller.
      const Addr line = line_of(e.op.addr);
      if (!wc_words_.empty() && wc_line_ != line) flush_wc_buffer_(now);
      wc_line_ = line;
      bool merged = false;
      for (auto& [a, v] : wc_words_) {
        if (a == word_of(e.op.addr)) {
          v = e.op.value;
          merged = true;
        }
      }
      if (!merged) wc_words_.emplace_back(word_of(e.op.addr), e.op.value);
      break;
    }

    case OpKind::kTxBegin: {
      NTC_ASSERT(mode_reg_ == kNoTx, "TX_BEGIN inside a transaction");
      // §4.2: copy NextTxID into the mode register; NextTxID increments.
      // A replayed trace may start mid-stream (e.g. a measured phase run
      // standalone), so the register adopts the trace's id — but ids must
      // stay strictly increasing, which catches generator bugs.
      NTC_ASSERT(static_cast<TxId>(e.op.value) >= next_tx_reg_ ||
                     next_tx_reg_ == 1,
                 "trace TxIds must be strictly increasing");
      mode_reg_ = static_cast<TxId>(e.op.value);
      next_tx_reg_ = mode_reg_ + 1;
      domain_->on_tx_begin(id_, mode_reg_);
      if (sink_ != nullptr) {
        check::CheckEvent ce;
        ce.kind = check::EventKind::kTxBegin;
        ce.core = id_;
        ce.tx = mode_reg_;
        sink_->on_event(ce);
      }
      break;
    }

    case OpKind::kTxEnd: {
      NTC_ASSERT(mode_reg_ != kNoTx, "TX_END outside a transaction");
      switch (domain_->on_tx_end(now, id_, mode_reg_)) {
        case TxEndResult::kStallDrain:
          note_stall_(Stall::kTxendDrain);
          return false;
        case TxEndResult::kStallFlush:
          note_stall_(Stall::kTxendFlush);
          return false;
        case TxEndResult::kCommitted:
          break;
      }
      if (sink_ != nullptr) {
        check::CheckEvent ce;
        ce.kind = check::EventKind::kTxCommitted;
        ce.core = id_;
        ce.tx = mode_reg_;
        sink_->on_event(ce);
      }
      mode_reg_ = kNoTx;
      ++committed_txs_;
      stat_txs_->inc();
      NTC_ASSERT(!req_start_q_.empty(), "TX_END without a request start");
      const Cycle req_lat =
          now + req_start_q_.front().net_rsp - req_start_q_.front().start;
      req_start_q_.pop_front();
      stat_req_lat_->add(static_cast<double>(req_lat));
      stat_req_hist_->add(req_lat);
      break;
    }

    case OpKind::kClwb: {
      if (sb_holds_line_(line_of(e.op.addr))) {
        note_stall_(Stall::kClwbDrain);
        return false;  // the flushed store must reach the L1 first
      }
      const bool is_log = e.op.flush == FlushKind::kLog;
      const mem::Source src =
          is_log ? mem::Source::kLog : mem::Source::kFlush;
      unsigned* counter =
          is_log ? &outstanding_log_flushes_ : &outstanding_data_flushes_;
      const bool ok =
          hier_->clwb(now, id_, e.op.addr, src, [counter] { --*counter; });
      if (!ok) {
        note_stall_(Stall::kClwbIssue);
        return false;
      }
      ++*counter;
      break;
    }

    case OpKind::kSfence:
      // Orders prior stores: the store buffer must have drained and every
      // write-combining flush must be on its way to the controller.
      flush_wc_buffer_(now);
      if (!sb_.empty() || !nt_pending_.empty()) {
        note_stall_(Stall::kSfence);
        return false;
      }
      break;

    case OpKind::kPcommit:
      // Orders the log's durability. Lazy data clean-backs (issued after
      // commit for log truncation) drain in the background and do not gate
      // the next transaction.
      if (outstanding_log_flushes_ > 0) {
        note_stall_(Stall::kPcommit);
        return false;
      }
      break;
  }

  rob_.pop_front();
  ++retired_;
  stat_retired_->inc();
  return true;
}

void Core::tick(Cycle now) {
  now_cache_ = now;
  if (!trace_base_valid_) {
    trace_base_ = now;
    trace_base_valid_ = true;
  }
  // A write-combining buffer does not hold data forever: once the frontend
  // has nothing left the open line flushes on its own (WC timeout).
  if (trace_ != nullptr && cursor_ >= trace_->size() && rob_.empty() &&
      !wc_words_.empty()) {
    flush_wc_buffer_(now);
  }
  drain_nt_writes_(now);
  drain_store_buffer_(now);
  issue_loads_(now);
  for (unsigned r = 0; r < cfg_.issue_width; ++r) {
    if (rob_.empty()) break;
    if (!retire_one_(now)) break;
  }
  fetch_(now);
}

Cycle Core::next_event_cycle(Cycle now) const {
  // Not ticked yet: the first tick establishes trace_base_, which is a
  // state change in itself.
  if (!trace_base_valid_) return now + 1;
  // Any buffered work keeps the core on the per-cycle path: retire/drain
  // progress and the stall counters (coreN.stall.*, ntc_stall_cycles) are
  // observable every blocked cycle.
  if (!rob_.empty() || !sb_.empty() || !nt_pending_.empty()) return now + 1;
  if (trace_ == nullptr || cursor_ >= trace_->size()) {
    // Trace done, buffers empty. An open write-combining line flushes on
    // its own (WC timeout) at the next tick; after that only flush acks
    // remain, and those are event-queue driven.
    return wc_words_.empty() ? kNeverCycle : now + 1;
  }
  const MicroOp& op = (*trace_)[cursor_];
  if (op.kind == OpKind::kTxBegin && op.addr > 0) {
    // Arrival-gated service request: with every buffer empty the frontend
    // is provably idle until the request arrives (the WC-timeout flush
    // needs cursor_ >= size, so it cannot fire inside this window).
    const Cycle arrive = trace_base_ + op.addr + op.net_fwd;
    if (arrive > now) return arrive;
  }
  return now + 1;
}

bool Core::finished() const {
  return trace_ != nullptr && cursor_ >= trace_->size() && rob_.empty() &&
         sb_.empty() && nt_pending_.empty() && wc_words_.empty() &&
         outstanding_log_flushes_ == 0 && outstanding_data_flushes_ == 0;
}

}  // namespace ntcsim::core
