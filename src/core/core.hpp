// Out-of-order-window core timing model (the PTLsim substitute): 4-wide
// fetch/retire, ROB-limited instruction window, store buffer with
// forwarding, fence semantics, and the TxID/Mode + NextTxID registers of
// §4.2. The core is mechanism-agnostic: every persistence-specific
// decision at a store, TX_BEGIN or TX_END is delegated to the installed
// PersistHooks (see persist_hooks.hpp); the domain's static traits are
// cached at construction so unused hooks cost nothing per cycle.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>

#include "cache/hierarchy.hpp"
#include "check/events.hpp"
#include "mem/request.hpp"
#include "common/config.hpp"
#include "common/hot.hpp"
#include "common/stat_handle.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "core/persist_hooks.hpp"
#include "core/trace.hpp"

namespace ntcsim::core {

class Core {
 public:
  Core(CoreId id, const CoreConfig& cfg, PersistHooks& domain,
       cache::Hierarchy& hier, StatSet& stats);

  void bind_trace(const Trace* trace);
  void tick(Cycle now);

  /// Earliest cycle > now at which this core's tick could stop being a
  /// no-op, assuming no external input arrives first (quiescence contract,
  /// docs/ARCHITECTURE.md "Clock advance & quiescence"). Any buffered work
  /// — ROB, store buffer, pending WC flushes — pins the core to now + 1
  /// (per-cycle stall counters must keep ticking); an arrival-gated
  /// service request reports its arrival cycle; kNeverCycle means only
  /// event-driven acks remain.
  NTC_HOT Cycle next_event_cycle(Cycle now) const;

  /// Trace fully fetched and every buffered effect has left the core.
  bool finished() const;

  std::uint64_t retired() const { return retired_; }
  std::uint64_t committed_txs() const { return committed_txs_; }
  CoreId id() const { return id_; }
  TxId current_tx() const { return mode_reg_; }

  /// Persistence-order checker tap (null = off): TX_BEGIN / committed
  /// TX_END retires.
  void set_check_sink(check::CheckSink* sink) { sink_ = sink; }

 private:
  // Deques never relocate surviving elements, so the hierarchy's fill
  // callback can hold a RobEntry* directly: a load entry retires only
  // after it became ready, i.e. after the callback fired.
  struct RobEntry {
    MicroOp op;
    bool ready = false;
    bool issued = false;    ///< Loads: request sent to the hierarchy.
    Cycle ready_at = 0;     ///< Compute ops.
    Cycle issue_cycle = 0;  ///< Loads: latency measurement start.
  };
  struct SbEntry {
    Addr addr = 0;
    Word value = 0;
    bool persistent = false;
    TxId tx = kNoTx;
    bool hier_done = false;
    bool routed = false;  ///< Accepted by the domain's route_store().
  };

  /// Retire-blocking reasons, one pre-resolved counter each. Registered
  /// up front under "coreN.stall.<reason>" so a stall cycle bumps a raw
  /// pointer instead of building a dotted name per blocked retire.
  enum class Stall : std::uint8_t {
    kCompute,
    kLoad,
    kSbFull,
    kTxendDrain,
    kTxendFlush,
    kClwbDrain,
    kClwbIssue,
    kSfence,
    kPcommit,
    kCount,
  };

  void fetch_(Cycle now);
  void issue_loads_(Cycle now);
  void drain_store_buffer_(Cycle now);
  void flush_wc_buffer_(Cycle now);
  void drain_nt_writes_(Cycle now);
  bool retire_one_(Cycle now);
  void on_load_done_(RobEntry* e);
  bool forwarded_by_store_(const RobEntry* until, Addr addr) const;
  bool sb_holds_line_(Addr line) const;
  void note_stall_(Stall reason) {
    stat_stalls_[static_cast<std::size_t>(reason)]->inc();
  }

  CoreId id_;
  CoreConfig cfg_;
  PersistHooks* domain_;
  PersistCoreTraits traits_;  ///< domain_->core_traits(), cached once.
  cache::Hierarchy* hier_;
  StatSet* stats_;
  check::CheckSink* sink_ = nullptr;
  std::string prefix_;

  const Trace* trace_ = nullptr;
  std::size_t cursor_ = 0;
  /// Cycle of the first tick after bind_trace(): arrival stamps on kTxBegin
  /// ops are relative to the trace's start, so the gate and the latency
  /// math rebase them onto the absolute clock.
  Cycle trace_base_ = 0;
  bool trace_base_valid_ = false;
  std::deque<RobEntry> rob_;
  std::deque<RobEntry*> unissued_q_;  ///< Loads awaiting issue, in order.
  std::deque<SbEntry> sb_;

  // §4.2 registers: mode/TxID (0 = normal mode) and next-transaction-ID.
  TxId mode_reg_ = kNoTx;
  TxId next_tx_reg_ = 1;

  unsigned outstanding_log_flushes_ = 0;   ///< clwb(log)/ntstore awaiting ack.
  unsigned outstanding_data_flushes_ = 0;  ///< lazy data clean-backs.

  /// Write-combining buffer for non-temporal stores (one open line; log
  /// writes are sequential so this coalesces a full 64 B line per flush).
  Addr wc_line_ = 0;
  std::vector<std::pair<Addr, Word>> wc_words_;
  std::deque<mem::MemRequest> nt_pending_;  ///< WC flushes awaiting the MC.

  std::uint64_t retired_ = 0;
  std::uint64_t committed_txs_ = 0;
  Cycle now_cache_ = 0;  ///< Last ticked cycle; read by load callbacks.

  /// Request-latency accounting: one entry per in-flight transaction,
  /// pushed at kTxBegin fetch (the request's arrival cycle when service
  /// mode stamped one, else the fetch cycle) and popped at the committed
  /// kTxEnd retire. Transactions are serial per core, so FIFO order holds.
  /// Cross-shard cluster requests carry a response-path interconnect delay
  /// that is added to the recorded latency at retire.
  struct ReqStart {
    Cycle start = 0;
    std::uint32_t net_rsp = 0;
  };
  std::deque<ReqStart> req_start_q_;

  AccumulatorHandle stat_load_lat_;
  AccumulatorHandle stat_pload_lat_;
  HistogramHandle stat_pload_hist_;
  AccumulatorHandle stat_req_lat_;
  HistogramHandle stat_req_hist_;
  CounterHandle stat_retired_;
  CounterHandle stat_txs_;
  CounterHandle stat_ntc_stall_;
  CounterHandle stat_stalls_[static_cast<std::size_t>(Stall::kCount)];
};

}  // namespace ntcsim::core
