// Micro-operations consumed by the core timing model. Workload generators
// produce kCompute/kLoad/kStore/kTxBegin/kTxEnd; the SP trace transform
// additionally injects kClwb/kSfence/kPcommit and log stores (Fig. 3a).
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace ntcsim::core {

enum class OpKind : std::uint8_t {
  kCompute,  ///< ALU work; retires after the compute latency.
  kLoad,     ///< Memory read; retires when data returns.
  kStore,    ///< Memory write; retires into the store buffer.
  kTxBegin,  ///< TX_BEGIN primitive: enter transaction mode (§4.2).
  kTxEnd,    ///< TX_END primitive: commit; mechanism-dependent cost.
  kNtStore,  ///< Non-temporal store: bypasses the caches, write-combines.
  kClwb,     ///< Write line back to NVM, keep a clean copy.
  kSfence,   ///< Retires when the store buffer has drained.
  kPcommit,  ///< Retires when all outstanding NVM flushes are durable.
};

/// Traffic label for injected flushes (maps to mem::Source).
enum class FlushKind : std::uint8_t { kData, kLog };

struct MicroOp {
  OpKind kind = OpKind::kCompute;
  FlushKind flush = FlushKind::kData;
  bool persistent = false;
  /// kLoad / kStore / kClwb: the accessed address. kTxBegin: the request's
  /// arrival cycle (0 = back-to-back; service mode stamps open-loop
  /// arrivals here, see workload/service.hpp) — the field is otherwise
  /// unused there and the SP transform passes kTxBegin ops through
  /// verbatim, so the stamp survives software-logging mechanisms.
  Addr addr = 0;
  Word value = 0;  ///< kStore payload; kTxBegin carries the TxId.
  /// kTxBegin only, cluster service mode (topo.nodes > 1): interconnect
  /// delay a cross-shard request pays before the home node can fetch it
  /// (forward hop + link serialization + queueing), and the response-path
  /// delay added to its recorded latency. Both 0 for local requests and on
  /// single-node runs, so the non-cluster timing is bit-identical.
  std::uint32_t net_fwd = 0;
  std::uint32_t net_rsp = 0;

  static MicroOp compute() { return {}; }
  static MicroOp load(Addr a, bool persistent) {
    MicroOp op;
    op.kind = OpKind::kLoad;
    op.addr = a;
    op.persistent = persistent;
    return op;
  }
  static MicroOp store(Addr a, Word v, bool persistent) {
    MicroOp op;
    op.kind = OpKind::kStore;
    op.addr = a;
    op.value = v;
    op.persistent = persistent;
    return op;
  }
  static MicroOp tx_begin(TxId tx) {
    MicroOp op;
    op.kind = OpKind::kTxBegin;
    op.value = tx;
    return op;
  }
  static MicroOp tx_end() {
    MicroOp op;
    op.kind = OpKind::kTxEnd;
    return op;
  }
  static MicroOp ntstore(Addr a, Word v) {
    MicroOp op;
    op.kind = OpKind::kNtStore;
    op.addr = a;
    op.value = v;
    op.persistent = true;
    op.flush = FlushKind::kLog;
    return op;
  }
  static MicroOp clwb(Addr a, FlushKind f) {
    MicroOp op;
    op.kind = OpKind::kClwb;
    op.addr = a;
    op.flush = f;
    op.persistent = true;
    return op;
  }
  static MicroOp sfence() {
    MicroOp op;
    op.kind = OpKind::kSfence;
    return op;
  }
  static MicroOp pcommit() {
    MicroOp op;
    op.kind = OpKind::kPcommit;
    return op;
  }
};

}  // namespace ntcsim::core
