// Core-facing slice of a persistence domain (persist::PersistenceDomain).
// The core model knows nothing about which mechanism is installed: every
// mechanism-specific decision at a store, TX_BEGIN or TX_END is delegated
// through this interface. Keeping the abstract class here (like
// CommitEngine) avoids a core <-> persist dependency cycle: ntc_persist
// links ntc_core, so the core can only ever see persistence through an
// abstract hook.
#pragma once

#include "common/types.hpp"

namespace ntcsim::core {

/// What a mechanism does with a persistent in-transaction store before it
/// may enter the cache hierarchy (TC-family: insert into the NTC).
enum class StoreRoute : std::uint8_t {
  kAccepted,       ///< Routed (or nothing to do); proceed to the hierarchy.
  kRetry,          ///< Structural reject (port busy); retry next cycle.
  kRetryCapacity,  ///< Capacity reject (NTC full/overflowing); retry next
                   ///< cycle and count a mechanism stall (§5.2 metric).
};

/// TX_END disposition.
enum class TxEndResult : std::uint8_t {
  kCommitted,   ///< Transaction committed; retire the µop.
  kStallDrain,  ///< Tx stores still in the store buffer; retry next cycle.
  kStallFlush,  ///< Previous commit still flushing; retry next cycle.
};

/// Static per-domain wiring facts, resolved once at core construction so
/// the per-cycle loop skips virtual dispatch for hooks a mechanism does
/// not use (everything here is false for Optimal/SP).
struct PersistCoreTraits {
  /// route_store() must run for persistent in-tx stores (TC family).
  bool routes_tx_stores = false;
  /// on_store_retired()/on_store_drained() must run for persistent in-tx
  /// stores (any domain that tracks store-buffer drain or observes stores:
  /// TC family and Kiln).
  bool observes_tx_stores = false;
  /// loads_blocked() must be polled before issuing loads (Kiln: an
  /// in-flight commit flush occupies the cache ports).
  bool may_block_loads = false;
};

class PersistHooks {
 public:
  virtual ~PersistHooks() = default;

  virtual PersistCoreTraits core_traits() const { return {}; }

  /// May this core issue loads this cycle? Polled only when
  /// core_traits().may_block_loads.
  virtual bool loads_blocked(CoreId /*core*/) const { return false; }

  /// TX_BEGIN retired; `tx` is the new mode-register value.
  virtual void on_tx_begin(CoreId /*core*/, TxId /*tx*/) {}

  /// A persistent in-transaction store entered the store buffer.
  virtual void on_store_retired(CoreId /*core*/, TxId /*tx*/) {}

  /// Mechanism-side routing of a persistent in-transaction store draining
  /// from the store buffer, before it is sent to the cache hierarchy.
  virtual StoreRoute route_store(Cycle /*now*/, CoreId /*core*/,
                                 Addr /*addr*/, Word /*value*/,
                                 TxId /*tx*/) {
    return StoreRoute::kAccepted;
  }

  /// A persistent in-transaction store left the store buffer into the
  /// cache hierarchy this cycle.
  virtual void on_store_drained(Cycle /*now*/, CoreId /*core*/,
                                Addr /*addr*/, Word /*value*/,
                                TxId /*tx*/) {}

  /// TX_END reached retirement; decide whether the commit may complete
  /// this cycle. Called again every cycle while it stalls.
  virtual TxEndResult on_tx_end(Cycle /*now*/, CoreId /*core*/,
                                TxId /*tx*/) {
    return TxEndResult::kCommitted;
  }
};

}  // namespace ntcsim::core
