#include "core/trace.hpp"

#include <algorithm>

namespace ntcsim::core {

std::size_t Trace::count(OpKind kind) const {
  return static_cast<std::size_t>(
      std::count_if(ops_.begin(), ops_.end(),
                    [kind](const MicroOp& op) { return op.kind == kind; }));
}

}  // namespace ntcsim::core
