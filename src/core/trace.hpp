// A per-core micro-op program. Traces are generated once by a workload and
// can be replayed under every mechanism (the SP transform produces a
// rewritten copy), which keeps cross-mechanism comparisons access-identical.
#pragma once

#include <cstddef>
#include <vector>

#include "core/microop.hpp"

namespace ntcsim::core {

class Trace {
 public:
  Trace() = default;
  explicit Trace(std::vector<MicroOp> ops) : ops_(std::move(ops)) {}

  void push(MicroOp op) { ops_.push_back(op); }
  std::size_t size() const { return ops_.size(); }
  bool empty() const { return ops_.empty(); }
  const MicroOp& operator[](std::size_t i) const { return ops_[i]; }
  const std::vector<MicroOp>& ops() const { return ops_; }
  /// In-place rewrites (e.g. service-mode arrival stamping).
  std::vector<MicroOp>& mutable_ops() { return ops_; }

  /// Counts by kind — used for Table-1-style accounting and tests.
  std::size_t count(OpKind kind) const;
  /// Number of transactions (kTxBegin ops).
  std::size_t transactions() const { return count(OpKind::kTxBegin); }

 private:
  std::vector<MicroOp> ops_;
};

}  // namespace ntcsim::core
