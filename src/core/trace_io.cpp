#include "core/trace_io.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <vector>

namespace ntcsim::core {

namespace {

constexpr char kMagic[4] = {'N', 'T', 'C', 'T'};
constexpr std::uint32_t kVersion = 1;

struct Record {
  std::uint8_t kind;
  std::uint8_t flush;
  std::uint8_t persistent;
  std::uint8_t pad[5];
  std::uint64_t addr;
  std::uint64_t value;
};
static_assert(sizeof(Record) == 24, "trace record layout drifted");

constexpr std::uint8_t kMaxKind = static_cast<std::uint8_t>(OpKind::kPcommit);

}  // namespace

TraceIoResult write_trace(std::ostream& os, const Trace& trace) {
  os.write(kMagic, sizeof kMagic);
  const std::uint32_t version = kVersion;
  os.write(reinterpret_cast<const char*>(&version), sizeof version);
  const std::uint64_t count = trace.size();
  os.write(reinterpret_cast<const char*>(&count), sizeof count);
  for (const MicroOp& op : trace.ops()) {
    Record r{};
    r.kind = static_cast<std::uint8_t>(op.kind);
    r.flush = static_cast<std::uint8_t>(op.flush);
    r.persistent = op.persistent ? 1 : 0;
    r.addr = op.addr;
    r.value = op.value;
    os.write(reinterpret_cast<const char*>(&r), sizeof r);
  }
  if (!os) return {false, "write failed"};
  return {};
}

TraceIoResult read_trace(std::istream& is, Trace& trace) {
  char magic[4];
  is.read(magic, sizeof magic);
  if (!is || std::memcmp(magic, kMagic, sizeof kMagic) != 0) {
    return {false, "not an ntcsim trace (bad magic)"};
  }
  std::uint32_t version = 0;
  is.read(reinterpret_cast<char*>(&version), sizeof version);
  if (!is || version != kVersion) {
    return {false, "unsupported trace version " + std::to_string(version)};
  }
  std::uint64_t count = 0;
  is.read(reinterpret_cast<char*>(&count), sizeof count);
  if (!is) return {false, "truncated header"};

  std::vector<MicroOp> ops;
  ops.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    Record r{};
    is.read(reinterpret_cast<char*>(&r), sizeof r);
    if (!is) {
      return {false, "truncated at op " + std::to_string(i) + " of " +
                         std::to_string(count)};
    }
    if (r.kind > kMaxKind) {
      return {false, "corrupt op kind " + std::to_string(r.kind) + " at op " +
                         std::to_string(i)};
    }
    MicroOp op;
    op.kind = static_cast<OpKind>(r.kind);
    op.flush = static_cast<FlushKind>(r.flush);
    op.persistent = r.persistent != 0;
    op.addr = r.addr;
    op.value = r.value;
    ops.push_back(op);
  }
  trace = Trace(std::move(ops));
  return {};
}

TraceIoResult save_trace(const std::string& path, const Trace& trace) {
  std::ofstream f(path, std::ios::binary);
  if (!f) return {false, "cannot open " + path + " for writing"};
  return write_trace(f, trace);
}

TraceIoResult load_trace(const std::string& path, Trace& trace) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return {false, "cannot open " + path};
  return read_trace(f, trace);
}

}  // namespace ntcsim::core
