// Binary trace serialization: capture a generated workload once and replay
// it across machines, mechanisms, or simulator versions (the determinism
// anchor for regression comparisons).
//
// Format: 16-byte header (magic "NTCT", u32 version, u64 op count), then
// one 24-byte record per micro-op, little-endian host layout.
#pragma once

#include <iosfwd>
#include <string>

#include "core/trace.hpp"

namespace ntcsim::core {

struct TraceIoResult {
  bool ok = true;
  std::string error;
};

TraceIoResult write_trace(std::ostream& os, const Trace& trace);
TraceIoResult read_trace(std::istream& is, Trace& trace);

TraceIoResult save_trace(const std::string& path, const Trace& trace);
TraceIoResult load_trace(const std::string& path, Trace& trace);

}  // namespace ntcsim::core
