#include "faultsim/campaign.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "common/assert.hpp"
#include "faultsim/planner.hpp"
#include "persist/domain.hpp"
#include "recovery/recovery.hpp"
#include "sim/sweep.hpp"
#include "sim/system.hpp"
#include "workload/sim_heap.hpp"
#include "workload/workloads.hpp"

namespace ntcsim::faultsim {

namespace {

/// Raw per-(node, core) traces + oracle journal for one cell. Traces are
/// kept pre-SP-transform (load_trace applies it), so the same bundle
/// replays under any mechanism variant and any truncation. The journal
/// follows the crash node only — that is the shard the oracle judges.
struct CellInputs {
  recovery::Journal journal;
  std::vector<std::vector<core::Trace>> traces;  ///< [node][core]
  explicit CellInputs(unsigned cores) : journal(cores) {}
};

CellInputs make_inputs(const SystemConfig& cfg, const CellSpec& spec,
                       NodeId crash_node) {
  const unsigned nodes = std::max(1u, cfg.topo.nodes);
  CellInputs in(cfg.cores);
  in.traces.resize(nodes);
  workload::WorkloadParams base = workload::default_params(spec.wl);
  // Footprint must exceed the preset's LLC so dirty evictions — the crash
  // hazard software schemes must survive — actually happen; sps elements
  // are a single word, so that workload needs a larger index range.
  base.setup_elems = static_cast<std::size_t>(cfg.crash.setup) *
                     (spec.wl == WorkloadKind::kSps ? 7 : 1);
  base.ops =
      static_cast<std::size_t>(std::max<std::uint64_t>(1, cfg.crash.ops));
  for (NodeId n = 0; n < nodes; ++n) {
    workload::SimHeap heap(cfg.address_space, cfg.cores);
    workload::WorkloadParams p = base;
    // Same node-mixing as the experiment harness: node 0 keeps the raw
    // seed, so single-node campaigns reproduce pre-cluster cells exactly.
    p.seed = spec.seed + n * 0x9e3779b9ULL;
    for (CoreId c = 0; c < cfg.cores; ++c) {
      in.traces[n].push_back(workload::generate(
          p, c, heap, n == crash_node ? &in.journal : nullptr));
    }
  }
  return in;
}

SystemConfig cell_config(const SystemConfig& base, const CellSpec& spec) {
  SystemConfig cfg = base;
  cfg.mechanism = spec.mech;
  // Verdicts come from the atomicity oracle; the order checker would both
  // occupy the planner's taps and abort fatally on deliberately broken
  // variants (tiny() defaults to fatal).
  cfg.check = CheckMode::kOff;
  return cfg;
}

sim::SystemOptions cell_options(const CellSpec& spec) {
  sim::SystemOptions opts;
  opts.sp_ordered = spec.sp_ordered;
  opts.force_check_off = true;
  return opts;
}

struct SweepOutcome {
  std::size_t checks = 0;
  std::size_t violations = 0;
  Cycle first_cycle = 0;
  std::string first_msg;
};

/// Replay a cell, crashing nondestructively at each planned point and once
/// more after the run drains. Only `crash_node` crashes; in a multi-node
/// cluster the remaining nodes run through unperturbed (partial failure).
SweepOutcome replay_sweep(const SystemConfig& cfg,
                          const sim::SystemOptions& opts,
                          const std::vector<std::vector<core::Trace>>& traces,
                          const recovery::Journal& journal, NodeId crash_node,
                          const std::vector<Cycle>& points) {
  sim::System sys(cfg, opts);
  for (NodeId n = 0; n < traces.size() && n < sys.nodes(); ++n) {
    for (CoreId c = 0; c < cfg.cores; ++c) sys.load_trace(n, c, traces[n][c]);
  }
  SweepOutcome out;
  auto check_now = [&] {
    const recovery::AtomicityReport report =
        recovery::check_atomicity(sys.crash_and_recover(crash_node), journal);
    ++out.checks;
    if (!report.consistent) {
      if (out.violations == 0) {
        out.first_cycle = sys.now();
        out.first_msg = report.violation;
      }
      ++out.violations;
    }
  };
  for (const Cycle pt : points) {
    if (sys.finished()) break;
    if (pt <= sys.now()) continue;
    sys.run_for(pt - sys.now());
    check_now();
  }
  sys.run();  // drain; the final state must be consistent too
  check_now();
  return out;
}

/// First `n` transactions of a trace (cut after the n-th TX_END). The
/// journal stays full — the oracle accepts any program-order prefix, so a
/// truncated replay is still checkable against it.
core::Trace tx_prefix(const core::Trace& t, std::size_t n) {
  std::vector<core::MicroOp> ops;
  std::size_t ends = 0;
  for (const core::MicroOp& op : t.ops()) {
    ops.push_back(op);
    if (op.kind == core::OpKind::kTxEnd && ++ends == n) break;
  }
  return core::Trace(std::move(ops));
}

/// Shrink a failing single-core cell to the shortest transaction prefix
/// that still reproduces >= 1 violation. Violations need not be monotone
/// in the prefix length, so the binary search is a heuristic; the result
/// is re-validated and falls back to the full trace if the candidate
/// prefix turns out clean.
void minimize_cell(const SystemConfig& cfg, const sim::SystemOptions& opts,
                   const CellInputs& in, CellResult& result) {
  const core::Trace& full = in.traces[0][0];
  const std::size_t total = full.transactions();
  result.total_txs = total;
  if (total == 0) return;

  auto fails_at = [&](std::size_t n) {
    const std::vector<std::vector<core::Trace>> traces{{tx_prefix(full, n)}};
    const CrashPlan plan = plan_cell(cfg, opts, traces, 0, cfg.crash.points);
    return replay_sweep(cfg, opts, traces, in.journal, 0, plan.points)
               .violations > 0;
  };

  std::size_t lo = 1, hi = total;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (fails_at(mid)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  if (!fails_at(lo)) lo = total;
  result.minimized = true;
  result.min_txs = lo;
  result.min_uops = tx_prefix(full, lo).size();
}

std::string mechanism_name(Mechanism m) {
  return persist::DomainRegistry::instance().info(m).name;
}

}  // namespace

std::vector<VariantSpec> default_variants() {
  const persist::DomainRegistry& reg = persist::DomainRegistry::instance();
  std::vector<VariantSpec> variants;
  for (const Mechanism m : reg.matrix_mechanisms()) {
    variants.push_back({m, true,
                        reg.create(m)->crash_profile().expect_consistent,
                        reg.info(m).name});
  }
  // SP-ADR stays out of --matrix but its recovery path deserves the same
  // systematic sweep.
  if (const persist::DomainInfo* adr = reg.find("sp-adr")) {
    variants.push_back({adr->id, true,
                        reg.create(adr->id)->crash_profile().expect_consistent,
                        adr->name});
  }
  // The Fig. 2(c) control: SP with write ordering deliberately broken.
  if (const persist::DomainInfo* sp = reg.find("sp")) {
    variants.push_back({sp->id, false, false, sp->name + "!unordered"});
  }
  return variants;
}

std::vector<WorkloadKind> default_workloads() {
  return {WorkloadKind::kSps, WorkloadKind::kHashtable, WorkloadKind::kRbtree};
}

std::vector<CellSpec> make_cells(const std::vector<VariantSpec>& variants,
                                 const std::vector<WorkloadKind>& workloads,
                                 const std::vector<std::uint64_t>& seeds) {
  std::vector<CellSpec> cells;
  cells.reserve(variants.size() * workloads.size() * seeds.size());
  for (const VariantSpec& v : variants) {
    for (const WorkloadKind wl : workloads) {
      for (const std::uint64_t s : seeds) {
        CellSpec spec;
        spec.mech = v.mech;
        spec.wl = wl;
        spec.seed = s;
        spec.sp_ordered = v.sp_ordered;
        spec.expect_consistent = v.expect_consistent;
        spec.variant = v.label;
        cells.push_back(std::move(spec));
      }
    }
  }
  return cells;
}

std::vector<CellSpec> default_cells(const SystemConfig& cfg) {
  std::vector<std::uint64_t> seeds;
  for (unsigned s = 1; s <= std::max(1u, cfg.crash.seeds); ++s) {
    seeds.push_back(s);
  }
  return make_cells(default_variants(), default_workloads(), seeds);
}

CellResult run_cell(const SystemConfig& base, const CellSpec& spec,
                    const CampaignOptions& opts) {
  const SystemConfig cfg = cell_config(base, spec);
  const unsigned nodes = std::max(1u, cfg.topo.nodes);
  const NodeId crash_node = spec.node < nodes ? spec.node : 0;
  const sim::SystemOptions sopts = cell_options(spec);
  const CellInputs in = make_inputs(cfg, spec, crash_node);

  CellResult result;
  result.spec = spec;
  result.spec.node = crash_node;
  const CrashPlan plan =
      plan_cell(cfg, sopts, in.traces, crash_node, cfg.crash.points);
  result.hazard_events = plan.hazard_events;
  result.crash_points = plan.points.size();
  result.end_cycle = plan.end_cycle;

  const SweepOutcome out = replay_sweep(cfg, sopts, in.traces, in.journal,
                                        crash_node, plan.points);
  result.checks = out.checks;
  result.violations = out.violations;
  result.first_violation_cycle = out.first_cycle;
  result.first_violation = out.first_msg;

  if (spec.expect_consistent) {
    result.status =
        out.violations == 0 ? CellStatus::kPass : CellStatus::kFail;
  } else {
    result.status = out.violations == 0 ? CellStatus::kVacuous
                                        : CellStatus::kExpectedFail;
  }

  result.repro = opts.repro_prefix + " --crash-sweep --mechanism=" +
                 mechanism_name(spec.mech) +
                 " --workload=" + std::string(to_string(spec.wl)) +
                 " --seed=" + std::to_string(spec.seed);
  if (nodes > 1) result.repro += " --nodes=" + std::to_string(nodes);
  if (!spec.sp_ordered) result.repro += "   # with SystemOptions.sp_ordered=false";

  if (result.status == CellStatus::kFail && cfg.crash.minimize &&
      cfg.cores == 1 && nodes == 1) {
    minimize_cell(cfg, sopts, in, result);
  } else {
    result.total_txs = in.traces[crash_node].empty()
                           ? 0
                           : in.traces[crash_node][0].transactions();
  }
  return result;
}

CampaignReport run_campaign(const SystemConfig& cfg,
                            const std::vector<CellSpec>& cells,
                            const CampaignOptions& opts) {
  CampaignReport report;
  report.cells = sim::run_jobs(
      cells.size(), opts.jobs,
      [&](std::size_t i) { return run_cell(cfg, cells[i], opts); });

  std::map<std::string, std::pair<bool, std::size_t>> controls;  // label -> (seen, violations)
  for (const CellResult& r : report.cells) {
    switch (r.status) {
      case CellStatus::kPass: ++report.passed; break;
      case CellStatus::kFail: ++report.failed; break;
      case CellStatus::kExpectedFail: ++report.expected_failed; break;
      case CellStatus::kVacuous: ++report.vacuous; break;
    }
    if (!r.spec.expect_consistent) {
      auto& [seen, v] = controls[r.spec.variant];
      seen = true;
      v += r.violations;
    }
  }
  for (const auto& [label, sv] : controls) {
    if (sv.second == 0) report.toothless.push_back(label);
  }
  return report;
}

}  // namespace ntcsim::faultsim
