// Deterministic crash-injection campaign runner.
//
// A campaign replays every (mechanism-variant x workload x seed) cell:
// the CrashPlanner enumerates hazard-guided crash points from the cell's
// event stream, a replay run crashes at each point via the nondestructive
// System::crash_and_recover(), and the recovered image is judged by the
// atomicity oracle (recovery::check_atomicity). Cells fan out over the
// PR-1 sweep thread pool; each cell owns its config, heap, traces and
// Systems, so verdicts are bit-identical under any --jobs=N. Unexpected
// failures can be minimized to the shortest reproducing transaction
// prefix. Surfaced as `ntcsim --crash-sweep` and wrapped by the gtest
// crash suites.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/types.hpp"

namespace ntcsim::faultsim {

/// One campaign cell: a mechanism variant under one workload and seed.
struct CellSpec {
  Mechanism mech = Mechanism::kTc;
  WorkloadKind wl = WorkloadKind::kSps;
  std::uint64_t seed = 1;
  /// False selects the Fig. 2(c) unordered-SP negative control (only
  /// meaningful for software-logging mechanisms).
  bool sp_ordered = true;
  /// From the domain's CrashProfile (negative controls expect violations).
  bool expect_consistent = true;
  /// Mechanism-variant label for reports ("tc", "sp!unordered", ...).
  std::string variant;
  /// Which cluster node the crash is injected on (cfg.topo.nodes > 1:
  /// partial failure — the other nodes keep serving their shards). The
  /// atomicity oracle follows this node's journal.
  NodeId node = 0;
};

enum class CellStatus : std::uint8_t {
  kPass,          ///< Expected consistent, no violation at any crash point.
  kFail,          ///< Expected consistent, violated — the campaign fails.
  kExpectedFail,  ///< Negative control exposed inconsistency, as designed.
  kVacuous,       ///< Negative control saw no violation (no teeth here).
};

constexpr const char* to_string(CellStatus s) {
  switch (s) {
    case CellStatus::kPass: return "pass";
    case CellStatus::kFail: return "FAIL";
    case CellStatus::kExpectedFail: return "expected-fail";
    case CellStatus::kVacuous: return "vacuous";
  }
  return "?";
}

struct CellResult {
  CellSpec spec;
  CellStatus status = CellStatus::kPass;
  std::size_t hazard_events = 0;  ///< Hazards seen by the planning run.
  std::size_t crash_points = 0;   ///< Crash points actually replayed.
  std::size_t checks = 0;         ///< Oracle invocations (points + final).
  std::size_t violations = 0;
  Cycle end_cycle = 0;             ///< Drained cycle of the planning run.
  Cycle first_violation_cycle = 0;
  std::string first_violation;     ///< Oracle message for the first failure.
  std::string repro;               ///< CLI command reproducing this cell.
  /// Minimization (unexpected failures only, when enabled): the shortest
  /// transaction-prefix of the trace that still reproduces a violation.
  bool minimized = false;
  std::size_t total_txs = 0;
  std::size_t min_txs = 0;
  std::size_t min_uops = 0;
};

struct CampaignOptions {
  unsigned jobs = 1;  ///< 0 = auto (sim::default_jobs()).
  /// Base of the repro command emitted per cell, e.g. "ntcsim
  /// --preset=tiny"; the campaign appends the cell coordinates.
  std::string repro_prefix = "ntcsim";
};

struct CampaignReport {
  std::vector<CellResult> cells;  ///< In spec order, jobs-independent.
  std::size_t passed = 0;
  std::size_t failed = 0;
  std::size_t expected_failed = 0;
  std::size_t vacuous = 0;
  /// Negative-control variants whose cells were ALL vacuous: the control
  /// proves nothing at this scale. A warning, not a failure (doc smoke
  /// runs at --scale=0.01 legitimately hit this).
  std::vector<std::string> toothless;
  bool ok() const { return failed == 0; }
};

/// One mechanism variant swept by the campaign.
struct VariantSpec {
  Mechanism mech = Mechanism::kTc;
  bool sp_ordered = true;
  bool expect_consistent = true;
  std::string label;
};

/// Every registry matrix mechanism plus SP-ADR (if registered) and the
/// unordered-SP negative control. expect_consistent comes from each
/// domain's CrashProfile.
std::vector<VariantSpec> default_variants();

/// The crash-relevant default workload trio {sps, hashtable, rbtree}:
/// raw array writes, chained buckets and a rotating tree — the three
/// distinct persistent-update shapes.
std::vector<WorkloadKind> default_workloads();

/// Cross product variants x workloads x seeds, in that nesting order.
std::vector<CellSpec> make_cells(const std::vector<VariantSpec>& variants,
                                 const std::vector<WorkloadKind>& workloads,
                                 const std::vector<std::uint64_t>& seeds);

/// make_cells over the defaults, seeds 1..cfg.crash.seeds.
std::vector<CellSpec> default_cells(const SystemConfig& cfg);

/// Run one cell (plan + replay + optional minimize). Exposed for tests.
CellResult run_cell(const SystemConfig& cfg, const CellSpec& spec,
                    const CampaignOptions& opts);

/// Run the whole campaign. `cfg` carries the machine preset and the
/// crash.* knobs; cfg.mechanism is ignored (each cell sets its own).
CampaignReport run_campaign(const SystemConfig& cfg,
                            const std::vector<CellSpec>& cells,
                            const CampaignOptions& opts);

/// Structured JSON report (schema documented in docs/BENCHMARKING.md).
/// Deterministic: contains no timestamps or host state.
void write_report_json(std::ostream& os, const CampaignReport& report,
                       const SystemConfig& cfg);

/// One-line-per-cell human summary plus totals.
void write_report_text(std::ostream& os, const CampaignReport& report);

}  // namespace ntcsim::faultsim
