#include "faultsim/planner.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace ntcsim::faultsim {

std::vector<Cycle> select_crash_points(const std::vector<Cycle>& hazards,
                                       std::uint64_t max_points) {
  std::vector<Cycle> points;
  points.reserve(hazards.size());
  for (const Cycle h : hazards) {
    const Cycle p = h + 1;
    if (points.empty() || points.back() != p) points.push_back(p);
  }
  // Event cycles arrive monotonically (one clock, one thread), so the
  // adjacent dedup above is a full dedup; keep the invariant checked.
  NTC_ASSERT(std::is_sorted(points.begin(), points.end()),
             "hazard cycles not monotone");
  if (max_points == 0 || points.size() <= max_points) return points;
  if (max_points == 1) return {points.front()};
  // Evenly spread: index i of the kept sequence maps onto the full range
  // [0, n-1] with both endpoints pinned.
  std::vector<Cycle> kept;
  kept.reserve(max_points);
  const std::size_t n = points.size();
  for (std::uint64_t i = 0; i < max_points; ++i) {
    const std::size_t idx =
        static_cast<std::size_t>(i * (n - 1) / (max_points - 1));
    if (kept.empty() || points[idx] != kept.back()) kept.push_back(points[idx]);
  }
  return kept;
}

CrashPlan plan_cell(const SystemConfig& cfg, const sim::SystemOptions& opts,
                    const std::vector<std::vector<core::Trace>>& node_traces,
                    NodeId crash_node, std::uint64_t max_points) {
  sim::SystemOptions plan_opts = opts;
  plan_opts.force_check_off = true;
  sim::System sys(cfg, plan_opts);
  NTC_ASSERT(crash_node < sys.nodes(), "crash node outside the cluster");
  EventRecorder recorder(
      sys.node(crash_node).domain().crash_profile().hazard_mask,
      sys.cycle_counter());
  sys.tap_events(crash_node, &recorder);
  for (NodeId n = 0; n < node_traces.size() && n < sys.nodes(); ++n) {
    for (CoreId c = 0; c < cfg.cores; ++c) {
      sys.load_trace(n, c, node_traces[n][c]);
    }
  }
  sys.run();

  CrashPlan plan;
  plan.hazard_events = recorder.hazard_cycles().size();
  plan.end_cycle = sys.now();
  plan.points = select_crash_points(recorder.hazard_cycles(), max_points);
  return plan;
}

CrashPlan plan_cell(const SystemConfig& cfg, const sim::SystemOptions& opts,
                    const std::vector<core::Trace>& traces,
                    std::uint64_t max_points) {
  return plan_cell(cfg, opts,
                   std::vector<std::vector<core::Trace>>{traces},
                   /*crash_node=*/0, max_points);
}

}  // namespace ntcsim::faultsim
