// Crash-point planning for the fault-injection campaign.
//
// Blind cycle stepping (the old tests' `run_for(1500)` loop) samples the
// timeline uniformly and mostly lands in uninteresting gaps. The planner
// instead taps the CheckSink event streams during a *planning run* of the
// cell and records the cycle of every event the mechanism's CrashProfile
// declares hazardous (NTC drains, WAL durability, Kiln flushes, commit
// points). Crash points are placed one cycle after each hazard, so the
// replay run crashes exactly where a half-persisted state could exist.
// Everything is deterministic: same config + traces => same plan.
#pragma once

#include <cstdint>
#include <vector>

#include "check/events.hpp"
#include "common/types.hpp"
#include "core/trace.hpp"
#include "sim/system.hpp"

namespace ntcsim::faultsim {

/// CheckSink that records the cycle of every event matching a hazard mask.
/// Stamps cycles itself from the System clock, like the order checker.
class EventRecorder final : public check::CheckSink {
 public:
  EventRecorder(std::uint32_t hazard_mask, const Cycle* clock)
      : mask_(hazard_mask), clock_(clock) {}

  void on_event(const check::CheckEvent& ev) override {
    if ((check::event_bit(ev.kind) & mask_) != 0) cycles_.push_back(*clock_);
  }

  const std::vector<Cycle>& hazard_cycles() const { return cycles_; }

 private:
  std::uint32_t mask_;
  const Cycle* clock_;
  std::vector<Cycle> cycles_;
};

/// One cell's crash plan.
struct CrashPlan {
  /// Cycles at which the replay run will crash, ascending, deduplicated.
  std::vector<Cycle> points;
  std::size_t hazard_events = 0;  ///< Raw hazard count before subsampling.
  Cycle end_cycle = 0;            ///< When the planning run drained.
};

/// Subsample hazard cycles down to at most `max_points` crash points
/// (0 = keep all). Points are hazard + 1 (crash strictly after the
/// hazardous transition), adjacent duplicates merged; when subsampling,
/// the selection is evenly spread and always keeps the first and last
/// point, so both the earliest and the final vulnerability window stay
/// covered at any budget.
std::vector<Cycle> select_crash_points(const std::vector<Cycle>& hazards,
                                       std::uint64_t max_points);

/// Run the cell once with an EventRecorder tapped in and build the plan.
/// `cfg` must describe the cell's mechanism; the planning System is built
/// with the checker forced off (the taps are ours). `traces` are the raw
/// per-core workload traces (pre-SP-transform; load_trace applies it).
CrashPlan plan_cell(const SystemConfig& cfg, const sim::SystemOptions& opts,
                    const std::vector<core::Trace>& traces,
                    std::uint64_t max_points);

/// Cluster variant: `node_traces[node][core]` loads the whole cluster, but
/// only `crash_node`'s event stream is tapped — the plan places crash
/// points where *that* node is vulnerable while the other nodes keep
/// serving (partial-failure injection).
CrashPlan plan_cell(const SystemConfig& cfg, const sim::SystemOptions& opts,
                    const std::vector<std::vector<core::Trace>>& node_traces,
                    NodeId crash_node, std::uint64_t max_points);

}  // namespace ntcsim::faultsim
