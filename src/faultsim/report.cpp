// Campaign report writers. The JSON is deterministic by construction —
// no timestamps, host names or wall-clock figures — so reports from
// --jobs=1 and --jobs=N runs of the same campaign are byte-identical
// (tests/test_faultsim.cpp pins this).
#include <algorithm>
#include <ostream>
#include <string_view>

#include "faultsim/campaign.hpp"
#include "persist/domain.hpp"

namespace ntcsim::faultsim {

namespace {

void json_escaped(std::ostream& os, std::string_view s) {
  os << '"';
  for (char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

}  // namespace

void write_report_json(std::ostream& os, const CampaignReport& report,
                       const SystemConfig& cfg) {
  os << "{\n";
  os << "  \"kind\": \"crash-sweep\",\n";
  os << "  \"config\": {\"points\": " << cfg.crash.points
     << ", \"seeds\": " << cfg.crash.seeds << ", \"ops\": " << cfg.crash.ops
     << ", \"setup\": " << cfg.crash.setup
     << ", \"minimize\": " << (cfg.crash.minimize ? "true" : "false")
     << ", \"cores\": " << cfg.cores
     << ", \"nodes\": " << std::max(1u, cfg.topo.nodes) << "},\n";
  os << "  \"totals\": {\"cells\": " << report.cells.size()
     << ", \"passed\": " << report.passed << ", \"failed\": " << report.failed
     << ", \"expected_failed\": " << report.expected_failed
     << ", \"vacuous\": " << report.vacuous << "},\n";
  os << "  \"ok\": " << (report.ok() ? "true" : "false") << ",\n";
  os << "  \"toothless_controls\": [";
  for (std::size_t i = 0; i < report.toothless.size(); ++i) {
    if (i > 0) os << ", ";
    json_escaped(os, report.toothless[i]);
  }
  os << "],\n";
  os << "  \"cells\": [";
  for (std::size_t i = 0; i < report.cells.size(); ++i) {
    const CellResult& r = report.cells[i];
    os << (i == 0 ? "\n" : ",\n") << "    {\"variant\": ";
    json_escaped(os, r.spec.variant);
    os << ", \"mechanism\": ";
    json_escaped(os,
                 persist::DomainRegistry::instance().info(r.spec.mech).name);
    os << ", \"workload\": ";
    json_escaped(os, to_string(r.spec.wl));
    os << ", \"seed\": " << r.spec.seed << ", \"node\": " << r.spec.node
       << ", \"sp_ordered\": " << (r.spec.sp_ordered ? "true" : "false")
       << ", \"expect_consistent\": "
       << (r.spec.expect_consistent ? "true" : "false") << ",\n     \"status\": ";
    json_escaped(os, to_string(r.status));
    os << ", \"hazard_events\": " << r.hazard_events
       << ", \"crash_points\": " << r.crash_points
       << ", \"checks\": " << r.checks << ", \"violations\": " << r.violations
       << ", \"end_cycle\": " << r.end_cycle << ",\n     \"repro\": ";
    json_escaped(os, r.repro);
    if (r.violations > 0) {
      os << ",\n     \"first_violation_cycle\": " << r.first_violation_cycle
         << ", \"first_violation\": ";
      json_escaped(os, r.first_violation);
    }
    if (r.minimized) {
      os << ",\n     \"minimized\": {\"total_txs\": " << r.total_txs
         << ", \"min_txs\": " << r.min_txs << ", \"min_uops\": " << r.min_uops
         << "}";
    }
    os << "}";
  }
  os << (report.cells.empty() ? "" : "\n  ") << "]\n";
  os << "}\n";
}

void write_report_text(std::ostream& os, const CampaignReport& report) {
  for (const CellResult& r : report.cells) {
    os << "  " << to_string(r.status) << "  " << r.spec.variant << "/"
       << to_string(r.spec.wl) << " seed " << r.spec.seed;
    if (r.spec.node > 0) os << " node " << r.spec.node;
    os << ": "
       << r.violations << "/" << r.checks << " crash checks violated ("
       << r.hazard_events << " hazards, " << r.crash_points << " points)";
    if (r.minimized) {
      os << "  [minimized to " << r.min_txs << "/" << r.total_txs << " txs]";
    }
    os << "\n";
    if (r.status == CellStatus::kFail) {
      os << "         first: " << r.first_violation << " @ cycle "
         << r.first_violation_cycle << "\n         repro: " << r.repro << "\n";
    }
  }
  os << "crash-sweep: " << report.cells.size() << " cells, " << report.passed
     << " passed, " << report.failed << " failed, " << report.expected_failed
     << " expected-fail, " << report.vacuous << " vacuous\n";
  for (const std::string& label : report.toothless) {
    os << "crash-sweep: warning: negative control '" << label
       << "' saw no violation at this scale (toothless)\n";
  }
}

}  // namespace ntcsim::faultsim
