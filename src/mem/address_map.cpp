#include "mem/address_map.hpp"

#include <bit>

#include "common/assert.hpp"

namespace ntcsim::mem {

namespace {
bool is_pow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }
}  // namespace

AddressMap::AddressMap(unsigned ranks, unsigned banks_per_rank,
                       std::uint64_t row_bytes, unsigned channels)
    : ranks_(ranks), banks_(banks_per_rank), row_bytes_(row_bytes),
      channels_(channels) {
  NTC_ASSERT(ranks_ > 0 && banks_ > 0, "address map needs >= 1 bank");
  NTC_ASSERT(channels_ > 0, "address map needs >= 1 channel");
  NTC_ASSERT(is_pow2(row_bytes_) && row_bytes_ >= kLineBytes,
             "row size must be a power of two >= one line");
  NTC_ASSERT(is_pow2(ranks_) && is_pow2(banks_), "ranks/banks must be powers of two");
}

BankCoord AddressMap::decode(Addr line_addr) const {
  // Line-interleaved mapping | row | column | rank | bank | line offset |:
  // consecutive cache lines rotate across banks, so streaming writes (NTC
  // drains, SP log flushes) exploit full bank-level parallelism — the
  // layout DRAMSim2-class controllers default to for exactly this reason.
  std::uint64_t v = (line_addr >> kLineShift) / channels_;
  BankCoord c;
  c.bank = static_cast<unsigned>(v & (banks_ - 1));
  v /= banks_;
  c.rank = static_cast<unsigned>(v & (ranks_ - 1));
  v /= ranks_;
  // Within one bank, `row_lines` consecutive (bank-strided) lines share a
  // row buffer.
  const std::uint64_t row_lines = row_bytes_ / kLineBytes;
  c.row = v / row_lines;
  return c;
}

}  // namespace ntcsim::mem
