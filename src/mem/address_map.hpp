// Physical-address interleaving for one memory channel:
//   | row | rank | bank | column | line offset |
// Row-major (open-page friendly): consecutive lines fall in the same row.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace ntcsim::mem {

struct BankCoord {
  unsigned rank = 0;
  unsigned bank = 0;
  std::uint64_t row = 0;

  bool operator==(const BankCoord&) const = default;
};

class AddressMap {
 public:
  /// `row_bytes` is the row-buffer size (default 8 KB). `channels` is the
  /// number of line-interleaved channels the address space is striped
  /// over: the channel-selection bits are stripped before bank decoding so
  /// each channel still uses all of its banks.
  AddressMap(unsigned ranks, unsigned banks_per_rank,
             std::uint64_t row_bytes = 8 << 10, unsigned channels = 1);

  BankCoord decode(Addr line_addr) const;
  unsigned ranks() const { return ranks_; }
  unsigned banks_per_rank() const { return banks_; }
  unsigned total_banks() const { return ranks_ * banks_; }
  /// Flat bank index in [0, total_banks()).
  unsigned flat_bank(const BankCoord& c) const { return c.rank * banks_ + c.bank; }

 private:
  unsigned ranks_;
  unsigned banks_;
  std::uint64_t row_bytes_;
  unsigned channels_;
};

}  // namespace ntcsim::mem
