#include "mem/bank.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace ntcsim::mem {

NTC_HOT Cycle Bank::access(Cycle now, std::uint64_t row, bool is_write) {
  NTC_ASSERT(ready_at(now), "bank accessed while busy");
  const bool hit = row_hit(row);
  unsigned latency = hit ? timing_->row_hit : timing_->row_miss;
  if (is_write) latency += timing_->write_extra;
  open_row_ = row;
  busy_until_ = now + latency;
  return busy_until_;
}

void Bank::block_until(Cycle until) {
  busy_until_ = std::max(busy_until_, until);
  open_row_.reset();  // refresh closes the row buffer
}

}  // namespace ntcsim::mem
