// Row-buffer bank state machine. A bank services one access at a time;
// accessing a closed or different row costs the full PRE+ACT+CAS path.
#pragma once

#include <cstdint>
#include <optional>

#include "common/config.hpp"
#include "common/hot.hpp"
#include "common/types.hpp"

namespace ntcsim::mem {

class Bank {
 public:
  explicit Bank(const DeviceTiming& timing) : timing_(&timing) {}

  bool ready_at(Cycle now) const { return busy_until_ <= now; }
  bool row_hit(std::uint64_t row) const { return open_row_ && *open_row_ == row; }

  /// Begin an access at `now` (requires ready_at(now)); returns the cycle
  /// at which the array access completes (excluding data-bus transfer).
  NTC_HOT Cycle access(Cycle now, std::uint64_t row, bool is_write);

  /// Make the bank unavailable until `until` (refresh); closes the row.
  void block_until(Cycle until);

  std::optional<std::uint64_t> open_row() const { return open_row_; }
  Cycle busy_until() const { return busy_until_; }

 private:
  const DeviceTiming* timing_;
  std::optional<std::uint64_t> open_row_;
  Cycle busy_until_ = 0;
};

}  // namespace ntcsim::mem
