#include "mem/memory_controller.hpp"

#include <algorithm>
#include <cinttypes>
#include <memory>
#include <utility>

#include "common/assert.hpp"

namespace ntcsim::mem {

MemoryController::MemoryController(std::string name, const MemCtrlConfig& cfg,
                                   EventQueue& events, StatSet& stats)
    : name_(std::move(name)),
      cfg_(cfg),
      events_(&events),
      stats_(&stats),
      map_(cfg.ranks, cfg.banks_per_rank, 8 << 10, cfg.channels) {
  banks_.assign(map_.total_banks(), Bank{cfg_.timing});
  acts_.assign(cfg_.ranks, {});
  last_write_end_.assign(cfg_.ranks, 0);
  seen_lines_.reserve(std::max(cfg_.read_queue, cfg_.write_queue));
  // Every array write bumps a per-line wear count; pre-sizing the table
  // keeps the hot path off the rehash cliff for typical footprints.
  wear_.reserve(1u << 15);
  stat_reads_ = CounterHandle(*stats_, name_ + ".reads");
  stat_writes_ = CounterHandle(*stats_, name_ + ".writes");
  for (unsigned s = 0; s < kSourceCount; ++s) {
    stat_writes_by_source_[s] = CounterHandle(
        *stats_, name_ + ".writes." + to_string(static_cast<Source>(s)));
  }
  stat_row_hits_ = CounterHandle(*stats_, name_ + ".row_hits");
  stat_row_misses_ = CounterHandle(*stats_, name_ + ".row_misses");
  stat_drain_entries_ = CounterHandle(*stats_, name_ + ".drain_mode_entries");
  stat_refreshes_ = CounterHandle(*stats_, name_ + ".refreshes");
  if (cfg_.refresh_interval > 0) {
    // Stagger ranks across the interval, as real controllers do.
    for (unsigned r = 0; r < cfg_.ranks; ++r) {
      next_refresh_.push_back(cfg_.refresh_interval * (r + 1) / cfg_.ranks);
    }
  }
  stat_wq_forwards_ = CounterHandle(*stats_, name_ + ".wq_forwards");
  stat_read_latency_ = AccumulatorHandle(*stats_, name_ + ".read_latency");
}

bool MemoryController::enqueue(MemRequest req, Cycle now) {
  NTC_CHECK_MSG(line_of(req.line_addr) == req.line_addr,
                "%s: unaligned request address 0x%" PRIx64
                " (controllers operate on whole cache lines)",
                name_.c_str(), req.line_addr);
  if (req.op == MemOp::kRead) {
    if (read_queue_full()) return false;
    // Forward from the write queue: a read of a line with a pending write is
    // serviced from the queue entry without touching the array.
    for (const Pending& w : write_q_) {
      if (w.req.line_addr == req.line_addr) {
        stat_wq_forwards_->inc();
        stat_reads_->inc();
        if (req.on_complete) {
          auto cb = req.on_complete;
          auto done = std::make_shared<MemRequest>(std::move(req));
          events_->schedule_at(now + cfg_.bus_latency,
                               [cb, done] { cb(*done); });
        }
        return true;
      }
    }
    Pending p{std::move(req), now};
    p.coord = map_.decode(p.req.line_addr);
    p.flat_bank = map_.flat_bank(p.coord);
    read_q_.push_back(std::move(p));
    return true;
  }
  if (write_queue_full()) return false;
  Pending p{std::move(req), now};
  p.coord = map_.decode(p.req.line_addr);
  p.flat_bank = map_.flat_bank(p.coord);
  write_q_.push_back(std::move(p));
  return true;
}

bool MemoryController::rank_constrained_(unsigned rank, bool is_read,
                                         bool opens_row, Cycle now) const {
  // tFAW: a fifth activation within the window must wait.
  if (cfg_.tfaw > 0 && opens_row) {
    const Cycle oldest = acts_[rank][0];  // kept sorted ascending
    if (oldest + cfg_.tfaw > now) return true;
  }
  // tWTR: a read cannot follow a write on the same rank too closely.
  if (cfg_.twtr > 0 && is_read &&
      last_write_end_[rank] + cfg_.twtr > now) {
    return true;
  }
  return false;
}

int MemoryController::pick(const std::deque<Pending>& q, Cycle now) const {
  // §3: "different write requests of conflicted addresses are issued to the
  // NVM in program order" — an entry is not schedulable while an older
  // same-line entry is still queued. One forward sweep tracks the lines
  // already seen, keeping the scan linear.
  seen_lines_.clear();
  int oldest_ready = -1;
  for (std::size_t i = 0; i < q.size(); ++i) {
    const Addr line = q[i].req.line_addr;
    const bool conflicted =
        std::find(seen_lines_.begin(), seen_lines_.end(), line) !=
        seen_lines_.end();
    if (conflicted) continue;
    seen_lines_.push_back(line);
    const BankCoord& c = q[i].coord;
    const Bank& bank = banks_[q[i].flat_bank];
    if (!bank.ready_at(now)) continue;
    const bool hit = bank.row_hit(c.row);
    if (rank_constrained_(c.rank, q[i].req.op == MemOp::kRead, !hit, now)) {
      continue;
    }
    if (hit) return static_cast<int>(i);  // FR: row hit first.
    if (oldest_ready < 0) oldest_ready = static_cast<int>(i);
  }
  return oldest_ready;  // FCFS among bank-ready row misses.
}

Cycle MemoryController::queue_next_(const std::deque<Pending>& q,
                                    Cycle now) const {
  // Mirror of pick(): for each non-conflicted entry, the earliest cycle at
  // which its bank is ready and its rank constraints clear — valid while
  // nothing issues, which is exactly the window the cluster may skip.
  seen_lines_.clear();
  Cycle next = kNeverCycle;
  for (const Pending& p : q) {
    const Addr line = p.req.line_addr;
    const bool conflicted =
        std::find(seen_lines_.begin(), seen_lines_.end(), line) !=
        seen_lines_.end();
    if (conflicted) continue;
    // ntclint-suppress(hot-alloc): capacity reserved at construction
    seen_lines_.push_back(line);
    const Bank& bank = banks_[p.flat_bank];
    Cycle t = std::max(now + 1, bank.busy_until());
    const bool hit = bank.row_hit(p.coord.row);
    if (cfg_.tfaw > 0 && !hit) {
      t = std::max(t, acts_[p.coord.rank][0] + cfg_.tfaw);
    }
    if (cfg_.twtr > 0 && p.req.op == MemOp::kRead) {
      t = std::max(t, last_write_end_[p.coord.rank] + cfg_.twtr);
    }
    if (t <= now + 1) return now + 1;
    next = std::min(next, t);
  }
  return next;
}

Cycle MemoryController::next_event_cycle(Cycle now) const {
  Cycle next = kNeverCycle;
  // Refresh fires (blocking the rank, bumping its stat) as soon as its
  // deadline passes AND every bank of the rank is idle.
  for (unsigned r = 0; r < next_refresh_.size(); ++r) {
    Cycle t = std::max(next_refresh_[r], now + 1);
    for (unsigned b = 0; b < map_.banks_per_rank(); ++b) {
      t = std::max(t, banks_[r * map_.banks_per_rank() + b].busy_until());
    }
    next = std::min(next, t);
  }
  if (next <= now + 1) return now + 1;
  next = std::min(next, queue_next_(read_q_, now));
  if (next <= now + 1) return now + 1;
  next = std::min(next, queue_next_(write_q_, now));
  return next <= now + 1 ? now + 1 : next;
}

void MemoryController::maybe_refresh_(Cycle now) {
  for (unsigned r = 0; r < next_refresh_.size(); ++r) {
    if (now < next_refresh_[r]) continue;
    // All banks of the rank go unavailable for tRFC; rows close.
    bool all_idle = true;
    for (unsigned b = 0; b < map_.banks_per_rank(); ++b) {
      if (!banks_[r * map_.banks_per_rank() + b].ready_at(now)) {
        all_idle = false;
      }
    }
    if (!all_idle) continue;  // refresh waits for in-flight accesses
    for (unsigned b = 0; b < map_.banks_per_rank(); ++b) {
      banks_[r * map_.banks_per_rank() + b].block_until(now +
                                                        cfg_.refresh_cycles);
    }
    next_refresh_[r] = now + cfg_.refresh_interval;
    stat_refreshes_->inc();
  }
}

void MemoryController::tick(Cycle now) {
  maybe_refresh_(now);
  // Write-drain policy (Table 2): read-first normally; once the write queue
  // crosses the high watermark, service writes until the low watermark.
  const double occ = static_cast<double>(write_q_.size()) /
                     static_cast<double>(cfg_.write_queue);
  if (!draining_ && occ >= cfg_.drain_high_watermark) {
    draining_ = true;
    stat_drain_entries_->inc();
  } else if (draining_ && occ <= cfg_.drain_low_watermark) {
    draining_ = false;
  }

  auto try_issue_from = [&](std::deque<Pending>& q) {
    const int i = pick(q, now);
    if (i < 0) return false;
    Pending p = std::move(q[static_cast<std::size_t>(i)]);
    q.erase(q.begin() + i);
    issue(std::move(p), now);
    return true;
  };

  if (draining_) {
    if (try_issue_from(write_q_)) return;
    try_issue_from(read_q_);
  } else {
    if (try_issue_from(read_q_)) return;
    // Opportunistic writes: reads have priority, but an idle channel may
    // still retire writes (read-first, not read-only).
    if (read_q_.empty()) try_issue_from(write_q_);
  }
}

void MemoryController::issue(Pending p, Cycle now) {
  const BankCoord& c = p.coord;
  Bank& bank = banks_[p.flat_bank];
  const bool is_write = p.req.op == MemOp::kWrite;

  if (bank.row_hit(c.row)) {
    stat_row_hits_->inc();
  } else {
    stat_row_misses_->inc();
    // Record the activation for the tFAW window (sorted ascending).
    auto& a = acts_[c.rank];
    a[0] = now;
    std::sort(a.begin(), a.end());
  }
  Cycle done = bank.access(now, c.row, is_write);
  if (is_write) {
    last_write_end_[c.rank] = std::max(last_write_end_[c.rank], done);
  }

  // Serialize the shared data bus: each transfer occupies `burst` cycles.
  Cycle xfer_start = std::max(done, bus_busy_until_);
  Cycle completion = xfer_start + cfg_.timing.burst;
  bus_busy_until_ = completion;

  if (is_write) {
    stat_writes_->inc();
    stat_writes_by_source_[static_cast<unsigned>(p.req.source)]->inc();
    ++wear_[p.req.line_addr];
  } else {
    stat_reads_->inc();
    stat_read_latency_->add(static_cast<double>(completion + cfg_.bus_latency -
                                                p.arrival));
  }

  ++in_flight_;
  auto done_req = std::make_shared<MemRequest>(std::move(p.req));
  events_->schedule_at(completion + cfg_.bus_latency, [this, done_req] {
    NTC_CHECK_MSG(in_flight_ > 0,
                  "%s: completion for line 0x%" PRIx64
                  " with no request in flight",
                  name_.c_str(), done_req->line_addr);
    --in_flight_;
    if (done_req->on_complete) done_req->on_complete(*done_req);
  });
}

WearStats MemoryController::wear() const {
  WearStats w;
  w.lines_touched = wear_.size();
  for (const auto& [line, count] : wear_) {
    w.total_writes += count;
    if (count > w.max_writes) {
      w.max_writes = count;
      w.hottest_line = line;
    }
  }
  if (w.lines_touched > 0) {
    w.mean_writes = static_cast<double>(w.total_writes) /
                    static_cast<double>(w.lines_touched);
  }
  return w;
}

}  // namespace ntcsim::mem
