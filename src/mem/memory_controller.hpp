// One memory channel: read/write queues, bank-aware read-first scheduling
// with write-drain (Table 2: 8/64-entry queues, drain at 80 % full), and a
// completion path that delivers read fills and persistent-write
// acknowledgments after a bus delay.
//
// Per §3 of the paper the controller itself is UNMODIFIED by any
// persistence mechanism except for one addition: after completing a
// persistent write it sends an acknowledgment message (carrying the line
// address) back toward the transaction cache.
#pragma once

#include <array>
#include <deque>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/config.hpp"
#include "common/event_queue.hpp"
#include "common/hot.hpp"
#include "common/stat_handle.hpp"
#include "common/stats.hpp"
#include "mem/address_map.hpp"
#include "mem/bank.hpp"
#include "mem/request.hpp"

namespace ntcsim::mem {

/// Per-line write-count summary for endurance analysis (NVM cells wear
/// out; which mechanism concentrates writes where is a first-order
/// persistent-memory concern).
struct WearStats {
  std::uint64_t lines_touched = 0;
  std::uint64_t total_writes = 0;
  std::uint64_t max_writes = 0;     ///< Hottest line.
  double mean_writes = 0.0;         ///< Over touched lines.
  Addr hottest_line = 0;
};

class MemoryController {
 public:
  MemoryController(std::string name, const MemCtrlConfig& cfg, EventQueue& events,
                   StatSet& stats);

  /// Enqueue; returns false when the respective queue is full (the caller
  /// must retry — upstream components carry their own retry buffers).
  bool enqueue(MemRequest req, Cycle now);

  bool read_queue_full() const { return read_q_.size() >= cfg_.read_queue; }
  bool write_queue_full() const { return write_q_.size() >= cfg_.write_queue; }
  std::size_t pending_reads() const { return read_q_.size(); }
  std::size_t pending_writes() const { return write_q_.size(); }
  bool idle() const { return read_q_.empty() && write_q_.empty() && in_flight_ == 0; }

  /// Advance one memory-channel cycle: pick at most one request to issue.
  void tick(Cycle now);

  /// Earliest cycle > now at which tick() could do work (quiescence
  /// contract): the earliest schedulable queue entry under the frozen
  /// bank/rank timing state, or the earliest rank refresh with its banks
  /// idle. kNeverCycle when the queues are empty and refresh is disabled
  /// (in-flight completions are event-driven).
  NTC_HOT Cycle next_event_cycle(Cycle now) const;

  /// Per-rank refresh bookkeeping (no-op when refresh is disabled).
  void maybe_refresh_(Cycle now);

  const std::string& name() const { return name_; }

  /// Whole-run per-line wear summary (array writes, not queue traffic).
  WearStats wear() const;

 private:
  struct Pending {
    MemRequest req;
    Cycle arrival = 0;
    /// Decoded once at enqueue (line_addr is immutable afterwards); pick()
    /// re-examines every queued entry each channel cycle and must not pay
    /// the full address decode per scan element.
    BankCoord coord;
    unsigned flat_bank = 0;
  };

  /// Index into the given queue of the next schedulable request under
  /// FR-FCFS with same-address ordering, or -1 if none is issuable now.
  int pick(const std::deque<Pending>& q, Cycle now) const;
  /// Earliest cycle > now at which some entry of `q` becomes schedulable,
  /// assuming no state change before then (mirrors pick()'s constraints).
  NTC_HOT Cycle queue_next_(const std::deque<Pending>& q, Cycle now) const;
  bool rank_constrained_(unsigned rank, bool is_read, bool opens_row,
                         Cycle now) const;
  void issue(Pending p, Cycle now);

  std::string name_;
  MemCtrlConfig cfg_;
  EventQueue* events_;
  StatSet* stats_;
  AddressMap map_;
  std::vector<Bank> banks_;
  std::deque<Pending> read_q_;
  std::deque<Pending> write_q_;
  /// pick() scratch: the queues hold at most 64 entries, so a linear probe
  /// of a flat vector beats hashing every line address.
  mutable std::vector<Addr> seen_lines_;
  std::unordered_map<Addr, std::uint32_t> wear_;  ///< line -> array writes.
  Cycle bus_busy_until_ = 0;
  std::vector<Cycle> next_refresh_;  ///< Per rank; empty when disabled.
  /// tFAW sliding window: the last four activate times per rank.
  std::vector<std::array<Cycle, 4>> acts_;
  std::vector<Cycle> last_write_end_;  ///< Per rank, for tWTR.
  bool draining_ = false;
  unsigned in_flight_ = 0;

  CounterHandle stat_reads_;
  CounterHandle stat_writes_;
  CounterHandle stat_writes_by_source_[kSourceCount];
  CounterHandle stat_row_hits_;
  CounterHandle stat_row_misses_;
  CounterHandle stat_drain_entries_;
  CounterHandle stat_refreshes_;
  CounterHandle stat_wq_forwards_;
  AccumulatorHandle stat_read_latency_;
};

}  // namespace ntcsim::mem
