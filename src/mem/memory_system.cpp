#include "mem/memory_system.hpp"

#include <utility>

namespace ntcsim::mem {

MemorySystem::MemorySystem(const NodeConfig& cfg, EventQueue& events,
                           StatSet& stats)
    : space_(cfg.address_space), dram_("dram", cfg.dram, events, stats) {
  // Every NVM channel registers under the same stat name, so the counters
  // aggregate across channels automatically.
  for (unsigned c = 0; c < cfg.nvm.channels; ++c) {
    nvm_channels_.push_back(
        std::make_unique<MemoryController>("nvm", cfg.nvm, events, stats));
  }
}

namespace {

/// Checker tap: one durability event per payload word, fired at this
/// request's durability point (array completion, or queue acceptance on an
/// ADR platform).
void emit_durable_words(check::CheckSink* sink, const MemRequest& req) {
  if (sink == nullptr) return;
  check::CheckEvent ev;
  ev.kind = check::EventKind::kNvmDurable;
  ev.core = req.core;
  ev.tx = req.tx;
  ev.source = req.source;
  ev.persistent = req.persistent;
  for (const auto& [word, value] : req.payload) {
    ev.addr = word;
    ev.value = value;
    sink->on_event(ev);
  }
}

}  // namespace

bool MemorySystem::enqueue(MemRequest req, Cycle now) {
  if (!is_nvm(req.line_addr)) {
    return dram_.enqueue(std::move(req), now);
  }
  if (req.op == MemOp::kWrite &&
      (observer_ != nullptr || sink_ != nullptr)) {
    if (adr_domain_) {
      // ADR: acceptance into the (power-fail protected) write queue is the
      // durability point.
      const bool ok = route_nvm_(req.line_addr).enqueue(req, now);
      if (ok) {
        if (observer_ != nullptr) observer_->on_nvm_write(req);
        if (sink_ != nullptr) {
          check::CheckEvent ev;
          ev.kind = check::EventKind::kNvmWrite;
          ev.addr = req.line_addr;
          ev.core = req.core;
          ev.tx = req.tx;
          ev.source = req.source;
          ev.persistent = req.persistent;
          sink_->on_event(ev);
          emit_durable_words(sink_, req);
        }
      }
      return ok;
    }
    // The durable image changes at the instant the array write completes —
    // exactly the point after which a crash can no longer lose this write.
    auto upstream = std::move(req.on_complete);
    NvmWriteObserver* obs = observer_;
    check::CheckSink* sink = sink_;
    req.on_complete = [obs, sink, upstream](const MemRequest& done) {
      if (obs != nullptr) obs->on_nvm_write(done);
      if (sink != nullptr) emit_durable_words(sink, done);
      if (upstream) upstream(done);
    };
  }
  check::CheckEvent ev;
  if (sink_ != nullptr) {
    ev.kind = req.op == MemOp::kWrite ? check::EventKind::kNvmWrite
                                      : check::EventKind::kNvmRead;
    ev.addr = req.line_addr;
    ev.core = req.core;
    ev.tx = req.tx;
    ev.source = req.source;
    ev.persistent = req.persistent;
  }
  const Addr line = req.line_addr;
  const bool ok = route_nvm_(line).enqueue(std::move(req), now);
  if (ok && sink_ != nullptr) sink_->on_event(ev);
  return ok;
}

bool MemorySystem::write_queue_full(Addr line_addr) const {
  return is_nvm(line_addr) ? route_nvm_(line_addr).write_queue_full()
                           : dram_.write_queue_full();
}

bool MemorySystem::read_queue_full(Addr line_addr) const {
  return is_nvm(line_addr) ? route_nvm_(line_addr).read_queue_full()
                           : dram_.read_queue_full();
}

void MemorySystem::tick(Cycle now) {
  dram_.tick(now);
  for (auto& ch : nvm_channels_) ch->tick(now);
}

WearStats MemorySystem::nvm_wear() const {
  WearStats total;
  for (const auto& ch : nvm_channels_) {
    const WearStats w = ch->wear();
    total.lines_touched += w.lines_touched;
    total.total_writes += w.total_writes;
    if (w.max_writes > total.max_writes) {
      total.max_writes = w.max_writes;
      total.hottest_line = w.hottest_line;
    }
  }
  if (total.lines_touched > 0) {
    total.mean_writes = static_cast<double>(total.total_writes) /
                        static_cast<double>(total.lines_touched);
  }
  return total;
}

std::size_t MemorySystem::nvm_pending_writes() const {
  std::size_t n = 0;
  for (const auto& ch : nvm_channels_) n += ch->pending_writes();
  return n;
}

}  // namespace ntcsim::mem
