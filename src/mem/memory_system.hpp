// Hybrid main memory (Fig. 1): one DRAM channel + one NVM channel behind
// separate controllers; requests are routed by physical address. Completed
// persistent writes are mirrored into the durable NVM image (the functional
// state crash recovery is checked against) and acknowledged upstream.
#pragma once

#include <algorithm>
#include <functional>
#include <memory>
#include <vector>

#include "check/events.hpp"
#include "common/config.hpp"
#include "common/event_queue.hpp"
#include "common/hot.hpp"
#include "common/stats.hpp"
#include "mem/memory_controller.hpp"
#include "mem/request.hpp"

namespace ntcsim::mem {

/// Observer of durable (array-level) NVM writes; implemented by
/// recovery::DurableState.
class NvmWriteObserver {
 public:
  virtual ~NvmWriteObserver() = default;
  virtual void on_nvm_write(const MemRequest& req) = 0;
};

class MemorySystem {
 public:
  MemorySystem(const NodeConfig& cfg, EventQueue& events, StatSet& stats);

  /// Routes by address. Returns false when the target queue is full.
  /// Persistent writes get the durable-image mirror + upstream ack chained
  /// onto their completion.
  bool enqueue(MemRequest req, Cycle now);

  bool write_queue_full(Addr line_addr) const;
  bool read_queue_full(Addr line_addr) const;
  bool idle() const {
    if (!dram_.idle()) return false;
    for (const auto& ch : nvm_channels_) {
      if (!ch->idle()) return false;
    }
    return true;
  }

  void tick(Cycle now);

  /// Min over every channel's next_event_cycle (quiescence contract).
  NTC_HOT Cycle next_event_cycle(Cycle now) const {
    Cycle next = dram_.next_event_cycle(now);
    if (next <= now + 1) return next;
    for (const auto& ch : nvm_channels_) {
      next = std::min(next, ch->next_event_cycle(now));
      if (next <= now + 1) break;
    }
    return next;
  }

  void set_nvm_observer(NvmWriteObserver* obs) { observer_ = obs; }
  /// Persistence-order checker tap (null = off; see check/events.hpp).
  /// Emits accepted NVM reads/writes and per-word durability events.
  void set_check_sink(check::CheckSink* sink) { sink_ = sink; }
  /// ADR persistence domain: a persistent write becomes durable the moment
  /// the controller accepts it (the write queue is power-fail protected),
  /// not when the array write completes.
  void set_adr_domain(bool adr) { adr_domain_ = adr; }

  bool is_nvm(Addr a) const { return space_.is_persistent(a); }
  const MemoryController& dram() const { return dram_; }
  /// Channel 0 (or the aggregate view: all channels share stat counters).
  const MemoryController& nvm() const { return *nvm_channels_.front(); }
  unsigned nvm_channel_count() const {
    return static_cast<unsigned>(nvm_channels_.size());
  }
  /// Aggregate per-line wear across every NVM channel.
  WearStats nvm_wear() const;
  std::size_t nvm_pending_writes() const;

 private:
  MemoryController& route_nvm_(Addr line_addr) {
    return *nvm_channels_[(line_addr >> kLineShift) % nvm_channels_.size()];
  }
  const MemoryController& route_nvm_(Addr line_addr) const {
    return *nvm_channels_[(line_addr >> kLineShift) % nvm_channels_.size()];
  }

  AddressSpace space_;
  MemoryController dram_;
  std::vector<std::unique_ptr<MemoryController>> nvm_channels_;
  NvmWriteObserver* observer_ = nullptr;
  check::CheckSink* sink_ = nullptr;
  bool adr_domain_ = false;
};

}  // namespace ntcsim::mem
