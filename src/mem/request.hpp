// Memory request exchanged between the LLC / transaction cache / flush
// engines and the memory controllers.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace ntcsim::mem {

enum class MemOp { kRead, kWrite };

inline constexpr unsigned kSourceCount = 5;

/// Who put this request on the memory bus. Used to split write-traffic
/// statistics (Fig. 9) by path.
enum class Source {
  kDemand,    ///< LLC demand miss (read) or LLC write-back.
  kTxCache,   ///< Transaction-cache drain of a committed entry.
  kLog,       ///< SP write-ahead-log flush (clwb of a log line).
  kFlush,     ///< Explicit clwb of data, or Kiln NV-LLC write-back.
  kShadow,    ///< NTC overflow fall-back (hardware copy-on-write spill).
};

constexpr const char* to_string(Source s) {
  switch (s) {
    case Source::kDemand: return "demand";
    case Source::kTxCache: return "txcache";
    case Source::kLog: return "log";
    case Source::kFlush: return "flush";
    case Source::kShadow: return "shadow";
  }
  return "?";
}

struct MemRequest {
  MemOp op = MemOp::kRead;
  Addr line_addr = 0;  ///< 64 B-aligned.
  Source source = Source::kDemand;
  CoreId core = 0;
  bool persistent = false;  ///< Requires a completion acknowledgment (§3).
  TxId tx = kNoTx;

  /// Functional payload of a write: word address/value pairs inside the
  /// line. Applied to the durable NVM image when the array write completes.
  std::vector<std::pair<Addr, Word>> payload;

  /// Fired when the request completes: for reads, when data is back at the
  /// requester; for persistent writes, this is the acknowledgment message
  /// sent back to the transaction cache / pcommit tracker.
  std::function<void(const MemRequest&)> on_complete;
};

}  // namespace ntcsim::mem
