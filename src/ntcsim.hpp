// Umbrella header: the public surface of the ntcsim library.
#pragma once

#include "common/config.hpp"      // SystemConfig, presets
#include "common/stats.hpp"       // StatSet
#include "common/types.hpp"       // Mechanism, WorkloadKind, Addr, Cycle
#include "core/trace.hpp"         // micro-op traces
#include "core/trace_io.hpp"      // trace capture/replay
#include "recovery/journal.hpp"   // oracle journal
#include "recovery/recovery.hpp"  // recovery procedures + atomicity checker
#include "sim/config_io.hpp"      // config files
#include "sim/energy.hpp"         // energy estimation
#include "sim/experiment.hpp"     // mechanism x workload matrices
#include "sim/metrics.hpp"        // run metrics
#include "sim/report.hpp"         // CSV output
#include "sim/system.hpp"         // the simulator
#include "sim/timeline.hpp"       // time-series sampling
#include "workload/emitter.hpp"   // custom workloads
#include "workload/workloads.hpp" // the benchmark suite
