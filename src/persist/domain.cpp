#include "persist/domain.hpp"

#include <algorithm>
#include <cctype>
#include <utility>

#include "common/assert.hpp"
#include "recovery/recovery.hpp"
#include "txcache/tx_cache.hpp"

namespace ntcsim::persist {

namespace {

std::string lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

// ---------------------------------------------------------------------------
// Optimal — native execution. Every hook is the default no-op; recovery is
// whatever the NVM array happens to hold.
class OptimalDomain final : public PersistenceDomain {
 public:
  OptimalDomain() : PersistenceDomain(Policy{}) {}
  std::string_view name() const override { return "optimal"; }
  recovery::WordImage recover(
      const recovery::DurableState& durable) const override {
    return recovery::recover_none(durable);
  }
};

// ---------------------------------------------------------------------------
// SP — software persistence. The mechanism lives entirely in the trace
// (WAL + clwb/sfence/pcommit emitted by the SP transform, requested via
// policy().software_logging); the core needs no hooks. Recovery redo-replays
// the per-core logs.
class SpDomain : public PersistenceDomain {
 public:
  explicit SpDomain(Policy p) : PersistenceDomain(p) {}
  std::string_view name() const override { return "sp"; }

  check::CheckerRules checker_rules() const override {
    check::CheckerRules r;
    // Fig. 2b ordering: a transactional data word may become durable only
    // after its (address, value) log record is durable. The System masks
    // this when running the deliberate sp_ordered=false negative control.
    r.log_before_data = true;
    return r;
  }

  CrashProfile crash_profile() const override {
    CrashProfile p;
    // The WAL window: every word turning durable (log or data) and every
    // commit mark is a boundary where the redo-replay must still produce a
    // whole-transaction prefix.
    p.hazard_mask = check::event_bit(check::EventKind::kNvmDurable) |
                    check::event_bit(check::EventKind::kTxCommitted);
    p.expect_consistent = true;
    return p;
  }

  recovery::WordImage recover(
      const recovery::DurableState& durable) const override {
    return recovery::recover_sp(durable, wiring().cfg->address_space,
                                wiring().cfg->cores);
  }

  static Policy make_policy() {
    Policy p;
    p.software_logging = true;
    p.needs_recovery_images = true;
    return p;
  }
};

class SpAdrDomain final : public SpDomain {
 public:
  SpAdrDomain() : SpDomain(make_policy()) {}
  std::string_view name() const override { return "sp-adr"; }

  static Policy make_policy() {
    Policy p = SpDomain::make_policy();
    p.adr_domain = true;
    return p;
  }
};

// ---------------------------------------------------------------------------
// TC — the paper's nonvolatile transaction cache. Persistent in-tx stores
// are ALSO inserted into the per-core NTC as they drain; TX_END waits only
// for the store buffer to drain and then sends a non-blocking commit
// request. The only stall the mechanism adds is a full NTC (§5.2).
class TcDomain final : public PersistenceDomain {
 public:
  TcDomain() : PersistenceDomain(make_policy()) {}
  std::string_view name() const override { return "tc"; }

  check::CheckerRules checker_rules() const override { return tc_rules(); }

  /// Shared with tc-nodrain (identical data path): the NTC drain is the
  /// only writer of persistent heap data, drains leave in per-core FIFO
  /// order, only committed transactions drain, and a persistent NVM read
  /// of an NTC-held line must have probed the NTC.
  static check::CheckerRules tc_rules() {
    check::CheckerRules r;
    r.single_writer = true;
    r.allowed_heap_sources = check::source_bit(mem::Source::kTxCache);
    r.fifo_drain = true;
    r.no_stale_read = true;
    r.no_uncommitted = true;
    return r;
  }

  CrashProfile crash_profile() const override { return tc_crash_profile(); }

  /// Shared with tc-nodrain: the dangerous instants are the NTC state
  /// transitions (commit CAM match, drain issue, entry release), the LLC
  /// dropping a persistent write-back, and the commit point itself.
  static CrashProfile tc_crash_profile() {
    CrashProfile p;
    p.hazard_mask = check::event_bit(check::EventKind::kNtcCommit) |
                    check::event_bit(check::EventKind::kNtcDrainIssue) |
                    check::event_bit(check::EventKind::kNtcRelease) |
                    check::event_bit(check::EventKind::kLlcWritebackDropped) |
                    check::event_bit(check::EventKind::kTxCommitted);
    p.expect_consistent = true;
    return p;
  }

  void bind(const DomainWiring& wiring) override {
    NTC_ASSERT(!wiring.ntcs.empty(),
               "TC mechanism requires a transaction cache");
    PersistenceDomain::bind(wiring);
    state_.assign(wiring.cfg->cores, {});
  }

  core::PersistCoreTraits core_traits() const override {
    core::PersistCoreTraits t;
    t.routes_tx_stores = true;
    t.observes_tx_stores = true;
    return t;
  }

  void on_tx_begin(CoreId core, TxId tx) override {
    state_[core] = {tx, 0};
  }

  void on_store_retired(CoreId core, TxId /*tx*/) override {
    ++state_[core].pending;
  }

  core::StoreRoute route_store(Cycle now, CoreId core, Addr addr, Word value,
                               TxId tx) override {
    txcache::TxCache* ntc = wiring().ntcs[core];
    if (ntc->write(now, addr, value, tx)) return core::StoreRoute::kAccepted;
    // Capacity rejects are the paper's §5.2 stall metric; port-rate pacing
    // at slow CAM latencies is reported separately by the NTC.
    return (ntc->full() || ntc->overflow_imminent())
               ? core::StoreRoute::kRetryCapacity
               : core::StoreRoute::kRetry;
  }

  void on_store_drained(Cycle /*now*/, CoreId core, Addr /*addr*/,
                        Word /*value*/, TxId tx) override {
    PerCore& pc = state_[core];
    if (pc.pending > 0 && tx == pc.tx) --pc.pending;
  }

  core::TxEndResult on_tx_end(Cycle /*now*/, CoreId core, TxId tx) override {
    if (state_[core].pending > 0) {
      return core::TxEndResult::kStallDrain;  // all tx stores into the NTC first
    }
    wiring().ntcs[core]->commit(tx);
    return core::TxEndResult::kCommitted;
  }

  recovery::WordImage recover(
      const recovery::DurableState& durable) const override {
    std::vector<recovery::NtcSnapshot> snaps;
    snaps.reserve(wiring().ntcs.size());
    for (const txcache::TxCache* n : wiring().ntcs) {
      snaps.push_back(n->snapshot());
    }
    return recovery::recover_tc(durable, snaps);
  }

  static Policy make_policy() {
    Policy p;
    p.route_stores_to_ntc = true;
    p.drop_persistent_llc_writeback = true;
    p.probe_ntc_on_llc_miss = true;
    p.needs_recovery_images = true;
    return p;
  }

 private:
  struct PerCore {
    TxId tx = kNoTx;
    unsigned pending = 0;  ///< Current-tx stores not yet drained.
  };
  std::vector<PerCore> state_;
};

// ---------------------------------------------------------------------------
// Kiln — nonvolatile LLC, blocking flush-on-commit. The domain tracks the
// per-core count of in-tx stores still in the store buffer (TX_END may only
// fire the commit engine once they all reached the L1) and gates loads
// while the engine's flush occupies the cache ports.
class KilnDomain final : public PersistenceDomain {
 public:
  KilnDomain() : PersistenceDomain(make_policy()) {}
  std::string_view name() const override { return "kiln"; }

  check::CheckerRules checker_rules() const override {
    check::CheckerRules r;
    r.kiln_flush_complete = true;
    return r;
  }

  CrashProfile crash_profile() const override {
    CrashProfile p;
    // The commit window (start / per-line flush / done) plus payload
    // durability: a crash mid-flush must still recover to the pre-tx image.
    p.hazard_mask = check::event_bit(check::EventKind::kKilnCommitStart) |
                    check::event_bit(check::EventKind::kKilnFlushLine) |
                    check::event_bit(check::EventKind::kKilnCommitDone) |
                    check::event_bit(check::EventKind::kNvmDurable) |
                    check::event_bit(check::EventKind::kTxCommitted);
    p.expect_consistent = true;
    return p;
  }

  void bind(const DomainWiring& wiring) override {
    NTC_ASSERT(wiring.engine != nullptr,
               "Kiln mechanism requires a commit engine");
    PersistenceDomain::bind(wiring);
    pending_.assign(wiring.cfg->cores, 0);
  }

  core::PersistCoreTraits core_traits() const override {
    core::PersistCoreTraits t;
    t.observes_tx_stores = true;
    t.may_block_loads = true;
    return t;
  }

  // An in-flight commit flush occupies this core's cache ports ("blocks
  // subsequent cache and memory requests", §5.2) — no new loads issue
  // until the flush into the NV-LLC completes.
  bool loads_blocked(CoreId core) const override {
    return !wiring().engine->commit_done(core);
  }

  void on_tx_begin(CoreId core, TxId tx) override {
    pending_[core] = 0;
    wiring().engine->begin_tx(core, tx);
  }

  void on_store_retired(CoreId core, TxId /*tx*/) override {
    ++pending_[core];
  }

  void on_store_drained(Cycle now, CoreId core, Addr addr, Word value,
                        TxId tx) override {
    wiring().engine->on_store(now, core, addr, value, tx);
    if (pending_[core] > 0) --pending_[core];
  }

  core::TxEndResult on_tx_end(Cycle now, CoreId core, TxId tx) override {
    if (pending_[core] > 0) return core::TxEndResult::kStallDrain;
    // Commits are serialized per core: the flush of the previous
    // transaction must have completed before this one may start; the
    // flush itself runs in the background.
    if (!wiring().engine->commit_done(core)) {
      return core::TxEndResult::kStallFlush;
    }
    wiring().engine->begin_commit(now, core, tx);
    return core::TxEndResult::kCommitted;
  }

  recovery::WordImage recover(
      const recovery::DurableState& durable) const override {
    return recovery::recover_kiln(durable);
  }

  static Policy make_policy() {
    Policy p;
    p.llc_nonvolatile = true;
    p.flush_on_commit = true;
    p.needs_recovery_images = true;
    return p;
  }

 private:
  std::vector<unsigned> pending_;  ///< In-tx stores still in the SB, per core.
};

}  // namespace

// ---------------------------------------------------------------------------
// Registry.

const DomainRegistry& DomainRegistry::instance() {
  return instance_for_registration();
}

DomainRegistry& DomainRegistry::instance_for_registration() {
  static DomainRegistry registry = [] {
    DomainRegistry r;
    // Built-in ids are the enum constants; matrix_rank is the paper's
    // figure column order (SP, TC, Kiln, Optimal).
    r.add({Mechanism::kOptimal, "optimal", "Optimal",
           "native execution, no persistence guarantee", {"native"}, 3,
           Policy{}, [] { return std::make_unique<OptimalDomain>(); }});
    r.add({Mechanism::kSp, "sp", "SP",
           "software persistence: WAL + clwb/sfence/pcommit", {}, 0,
           SpDomain::make_policy(),
           [] { return std::make_unique<SpDomain>(SpDomain::make_policy()); }});
    r.add({Mechanism::kTc, "tc", "TC",
           "this paper: per-core nonvolatile transaction cache", {}, 1,
           TcDomain::make_policy(),
           [] { return std::make_unique<TcDomain>(); }});
    r.add({Mechanism::kKiln, "kiln", "Kiln",
           "nonvolatile LLC, blocking flush-on-commit [Zhao+ MICRO'13]", {},
           2, KilnDomain::make_policy(),
           [] { return std::make_unique<KilnDomain>(); }});
    r.add({Mechanism::kSpAdr, "sp-adr", "SP-ADR",
           "SP on an ADR platform (pcommit-free ordering)", {"spadr"}, -1,
           SpAdrDomain::make_policy(),
           [] { return std::make_unique<SpAdrDomain>(); }});
    register_tc_nodrain(r);
    return r;
  }();
  return registry;
}

DomainRegistry::DomainRegistry() = default;

Mechanism DomainRegistry::add(DomainInfo info) {
  NTC_ASSERT(static_cast<bool>(info.make),
             "domain registration needs a factory");
  NTC_ASSERT(!info.name.empty(), "domain registration needs a name");
  if (info.id == kAutoMechanismId) {
    info.id = static_cast<Mechanism>(next_dynamic_++);
  }
  const int id = static_cast<int>(info.id);
  NTC_ASSERT(by_id_.find(id) == by_id_.end(), "duplicate mechanism id");
  const Mechanism out = info.id;
  std::vector<std::string> keys{lower(info.name)};
  for (const std::string& a : info.aliases) keys.push_back(lower(a));
  for (std::string& k : keys) {
    NTC_ASSERT(by_name_.emplace(std::move(k), out).second,
               "duplicate mechanism name");
  }
  by_id_.emplace(id, std::move(info));
  return out;
}

const DomainInfo* DomainRegistry::find(std::string_view name) const {
  const auto it = by_name_.find(lower(name));
  if (it == by_name_.end()) return nullptr;
  return &by_id_.at(static_cast<int>(it->second));
}

bool DomainRegistry::parse(std::string_view name, Mechanism& out) const {
  const DomainInfo* info = find(name);
  if (info == nullptr) return false;
  out = info->id;
  return true;
}

const DomainInfo& DomainRegistry::info(Mechanism m) const {
  const auto it = by_id_.find(static_cast<int>(m));
  NTC_ASSERT(it != by_id_.end(), "unregistered mechanism id");
  return it->second;
}

std::string_view DomainRegistry::display_name(Mechanism m) const {
  return info(m).display;
}

std::unique_ptr<PersistenceDomain> DomainRegistry::create(Mechanism m) const {
  return info(m).make();
}

std::vector<Mechanism> DomainRegistry::all() const {
  std::vector<Mechanism> out;
  out.reserve(by_id_.size());
  for (const auto& [id, info] : by_id_) out.push_back(info.id);
  return out;
}

std::vector<Mechanism> DomainRegistry::matrix_mechanisms() const {
  std::vector<std::pair<int, Mechanism>> ranked;
  for (const auto& [id, info] : by_id_) {
    if (info.matrix_rank >= 0) ranked.emplace_back(info.matrix_rank, info.id);
  }
  std::sort(ranked.begin(), ranked.end());
  std::vector<Mechanism> out;
  out.reserve(ranked.size());
  for (const auto& [rank, m] : ranked) out.push_back(m);
  return out;
}

std::string DomainRegistry::known_names() const {
  std::string out;
  for (const auto& [id, info] : by_id_) {
    if (!out.empty()) out += ", ";
    out += info.name;
  }
  return out;
}

}  // namespace ntcsim::persist
