// Pluggable persistence-domain layer.
//
// The paper's thesis is that persistence mechanisms differ only in *where*
// the persistence responsibility lives — the cache hierarchy operation
// stays untouched. A PersistenceDomain is that responsibility as a
// strategy object: one class per mechanism bundles
//
//   * the Policy flags (what generic machinery the System must wire up:
//     NTCs, a Kiln commit engine, the SP trace transform, ADR, write-back
//     disposition at the LLC),
//   * the core-side hooks (store routing, commit-drain gating, TX_BEGIN /
//     TX_END behaviour — see core/persist_hooks.hpp),
//   * the recovery procedure (crash snapshot + recover), and
//   * any per-domain statistics.
//
// Domains are looked up through the name-keyed DomainRegistry; the config
// parser, the CLI (--mechanism / --list-mechanisms) and the experiment
// matrix all enumerate the registry instead of hard-coded mechanism lists,
// so a new mechanism is one file in src/persist/ plus one registration
// line — no edits to core/, cache/, sim/ or mem/ (tc_nodrain.cpp is the
// proof).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "check/events.hpp"
#include "check/rules.hpp"
#include "common/config.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "core/commit_engine.hpp"
#include "core/persist_hooks.hpp"
#include "persist/policy.hpp"
#include "recovery/images.hpp"

namespace ntcsim::txcache {
class TxCache;
}

namespace ntcsim::persist {

struct SpOptions;  // sp_transform.hpp

/// Everything a domain may bind to, handed over by the System after it has
/// built the generic machinery the domain's Policy asked for. Pointers are
/// non-owning and outlive the domain.
struct DomainWiring {
  const NodeConfig* cfg = nullptr;
  /// One per core when policy().route_stores_to_ntc, else empty.
  std::vector<txcache::TxCache*> ntcs;
  /// The commit engine when policy().flush_on_commit, else null.
  core::CommitEngine* engine = nullptr;
  /// Per-domain statistics registration.
  StatSet* stats = nullptr;
};

/// What the fault-injection campaign (src/faultsim/) needs to know about a
/// mechanism: which CheckSink event kinds are crash *hazards* — transitions
/// after which a power failure could plausibly expose a half-persisted
/// state — and whether recovery from an arbitrary crash point is expected
/// to satisfy the atomicity oracle at all.
struct CrashProfile {
  /// OR of check::event_bit(kind) for every hazardous EventKind. The
  /// CrashPlanner places one crash point just after each hazard event.
  std::uint32_t hazard_mask = 0;
  /// False for negative controls (Optimal): crashes are *expected* to
  /// leave inconsistent state, and the campaign accounts them as such.
  bool expect_consistent = false;
};

class PersistenceDomain : public core::PersistHooks {
 public:
  explicit PersistenceDomain(Policy policy) : policy_(policy) {}

  /// Canonical registry name (lower-case, e.g. "tc-nodrain").
  virtual std::string_view name() const = 0;

  /// What this mechanism changes, as data (see policy.hpp).
  const Policy& policy() const { return policy_; }

  /// The persistence-ordering invariants this mechanism promises, enforced
  /// online by check::PersistOrderChecker when --check is on. The default
  /// promises nothing (Optimal); each mechanism states its own rules —
  /// see check/rules.hpp for the catalogue.
  virtual check::CheckerRules checker_rules() const { return {}; }

  /// Which event kinds the fault-injection campaign should treat as crash
  /// hazards for this mechanism. The default (no hazards beyond payload
  /// durability, consistency not expected) fits Optimal; every real
  /// mechanism overrides this alongside checker_rules().
  virtual CrashProfile crash_profile() const {
    CrashProfile p;
    p.hazard_mask = check::event_bit(check::EventKind::kNvmDurable);
    p.expect_consistent = false;
    return p;
  }

  /// Called by the System before applying the SP trace transform (only for
  /// software_logging domains). Lets a domain variant tweak SpOptions —
  /// the checker's mutation tests use it to seed broken orderings.
  virtual void adjust_sp_options(SpOptions& opts) const { (void)opts; }

  /// Attach to the machinery the System built from the Policy flags.
  /// Called exactly once, before any core runs.
  virtual void bind(const DomainWiring& wiring) { wiring_ = wiring; }

  /// Power failure at the current cycle: run this mechanism's recovery
  /// procedure over what is durable and return the recovered image.
  virtual recovery::WordImage recover(
      const recovery::DurableState& durable) const = 0;

 protected:
  const DomainWiring& wiring() const { return wiring_; }

 private:
  Policy policy_;
  DomainWiring wiring_;
};

/// Leave DomainInfo::id at this sentinel to have the registry assign the
/// next free dynamic id (>= kNumBuiltinMechanisms).
inline constexpr Mechanism kAutoMechanismId = static_cast<Mechanism>(-1);

/// One registry row: identity, parse aliases, matrix membership and the
/// factory. `id` is a Mechanism value — the five paper mechanisms keep
/// their enum constants; further registrations receive ids past the enum
/// (see types.hpp, kNumBuiltinMechanisms).
struct DomainInfo {
  Mechanism id = kAutoMechanismId;
  std::string name;     ///< Canonical lower-case name ("sp-adr").
  std::string display;  ///< Figure/CSV label ("SP-ADR").
  std::string summary;  ///< One-liner for --list-mechanisms.
  std::vector<std::string> aliases;
  /// Column position in the default evaluation matrix, or -1 to keep the
  /// mechanism out of --matrix (SP-ADR stays an opt-in extension).
  int matrix_rank = -1;
  Policy policy;
  std::function<std::unique_ptr<PersistenceDomain>()> make;
};

/// Name-keyed persistence-mechanism registry. The process-wide instance()
/// registers the built-in domains (and tc-nodrain) at first use; it is
/// immutable afterwards, so concurrent sweeps may read it freely. Tests
/// that want to register toy domains construct their own registry.
class DomainRegistry {
 public:
  DomainRegistry();  ///< Starts empty (for tests).
  static const DomainRegistry& instance();
  /// Mutable view of the process-wide registry, for registering extra
  /// domains at startup (the checker's mutation tests seed deliberately
  /// broken variants with matrix_rank = -1 so --matrix never sees them).
  /// Must only be called before concurrent sweeps start reading.
  static DomainRegistry& instance_for_registration();

  /// Register a domain. Dynamic entries (info.id unset) are assigned the
  /// next free id. Returns the registered id. Names and aliases must be
  /// unique (case-insensitive).
  Mechanism add(DomainInfo info);

  /// Case-insensitive lookup by canonical name or alias.
  const DomainInfo* find(std::string_view name) const;
  bool parse(std::string_view name, Mechanism& out) const;

  const DomainInfo& info(Mechanism m) const;
  std::string_view display_name(Mechanism m) const;
  std::unique_ptr<PersistenceDomain> create(Mechanism m) const;

  /// Every registered mechanism, in id order.
  std::vector<Mechanism> all() const;
  /// The default evaluation matrix, in matrix_rank (column) order.
  std::vector<Mechanism> matrix_mechanisms() const;
  /// Canonical names in id order, comma-joined (parse-error messages,
  /// --list-mechanisms).
  std::string known_names() const;

 private:
  std::map<int, DomainInfo> by_id_;
  std::map<std::string, Mechanism> by_name_;  ///< Lower-cased name/alias.
  int next_dynamic_ = kNumBuiltinMechanisms;
};

/// Registration hook for the eADR-style battery-backed NTC variant
/// (tc_nodrain.cpp); called once from the registry bootstrap.
void register_tc_nodrain(DomainRegistry& registry);

}  // namespace ntcsim::persist
