#include "persist/kiln_unit.hpp"

#include "common/assert.hpp"

namespace ntcsim::persist {

KilnUnit::KilnUnit(unsigned cores, const KilnConfig& cfg,
                   cache::Hierarchy& hier, EventQueue& events,
                   recovery::DurableState* durable, StatSet& stats)
    : cfg_(cfg), hier_(&hier), events_(&events), durable_(durable) {
  state_.resize(cores);
  stat_commits_ = CounterHandle(stats, "kiln.commits");
  stat_flushed_lines_ = CounterHandle(stats, "kiln.flushed_lines");
  stat_cleans_ = CounterHandle(stats, "kiln.cleans");
  stat_commit_cycles_ = AccumulatorHandle(stats, "kiln.commit_cycles");
}

void KilnUnit::begin_tx(CoreId core, TxId tx) {
  PerCore& s = state_[core];
  NTC_ASSERT(s.open_tx == kNoTx, "Kiln: transaction begun while another is open");
  s.open_tx = tx;
  s.writes.clear();
  s.lines.clear();
}

void KilnUnit::on_store(Cycle /*now*/, CoreId core, Addr addr, Word value,
                        TxId tx) {
  PerCore& s = state_[core];
  NTC_ASSERT(s.open_tx == tx, "Kiln: store for a transaction that is not open");
  s.writes.emplace_back(word_of(addr), value);
  const Addr line = line_of(addr);
  if (s.lines.insert(line).second) {
    // First touch: pin the block in the NV-LLC if it is resident, so the
    // uncommitted version cannot escape to NVM.
    hier_->kiln_pin(core, line, tx);
  }
}

void KilnUnit::begin_commit(Cycle now, CoreId core, TxId tx) {
  PerCore& s = state_[core];
  NTC_ASSERT(s.open_tx == tx, "Kiln: committing a transaction that is not open");
  NTC_ASSERT(!s.committing, "Kiln: overlapping commits on one core");
  s.committing = true;
  s.committing_writes = std::move(s.writes);
  s.committing_lines = std::move(s.lines);
  s.open_tx = kNoTx;
  s.writes.clear();
  s.lines.clear();
  stat_commits_->inc();

  const std::size_t n = s.committing_lines.size();
  const Cycle duration =
      cfg_.commit_fixed_cycles + n * static_cast<Cycle>(cfg_.cycles_per_line);
  stat_commit_cycles_->add(static_cast<double>(duration));
  stat_flushed_lines_->inc(n);

  // The commit flush occupies the LLC: other requests wait it out (§5.2).
  hier_->block_llc_until(now + duration);

  if (sink_ != nullptr) {
    check::CheckEvent ce;
    ce.kind = check::EventKind::kKilnCommitStart;
    ce.core = core;
    ce.tx = tx;
    ce.persistent = true;
    sink_->on_event(ce);
  }

  // clean_q_ age stamps carry the cycle the flush lands, computed here so
  // the callback needs no live clock: the event drains before the tick of
  // its cycle, i.e. when the last ticked cycle was now + duration - 1 (or
  // `now` itself for a zero-length commit, which fires at the next drain).
  const Cycle stamp = now + (duration > 0 ? duration - 1 : 0);
  events_->schedule_at(now + duration, [this, core, tx, stamp] {
    PerCore& sc = state_[core];
    bool skip = false;
    for (Addr line : sc.committing_lines) {
      if (lossy_flush_mutant_ && (skip = !skip)) continue;
      if (sink_ != nullptr) {
        check::CheckEvent ce;
        ce.kind = check::EventKind::kKilnFlushLine;
        ce.core = core;
        ce.tx = tx;
        ce.addr = line;
        ce.persistent = true;
        sink_->on_event(ce);
      }
      if (hier_->kiln_commit_line(core, line)) {
        // Queue the NVM clean-back; until it completes the block stays
        // pinned. A clean already in flight for the line covers this
        // commit too (NV-LLC coalescing across transactions).
        if (clean_pending_.insert(line).second) {
          clean_q_.emplace_back(line, stamp);
        }
      }
    }
    if (durable_ != nullptr) {
      // Durability point: every line of the transaction is now in the
      // nonvolatile LLC with its committed flag set.
      durable_->apply_kiln_commit(sc.committing_writes);
    }
    if (sink_ != nullptr) {
      check::CheckEvent ce;
      ce.kind = check::EventKind::kKilnCommitDone;
      ce.core = core;
      ce.tx = tx;
      ce.persistent = true;
      sink_->on_event(ce);
    }
    sc.committing_writes.clear();
    sc.committing_lines.clear();
    sc.committing = false;
  });
}

bool KilnUnit::commit_done(CoreId core) const {
  return !state_[core].committing;
}

void KilnUnit::tick(Cycle now, mem::MemorySystem& mem) {
  if (clean_q_.empty()) return;
  // Lazy policy: hold clean-backs briefly so repeated commits of the same
  // line coalesce (clean_pending_ dedup), unless the backlog grows or the
  // oldest entry ages out.
  if (clean_q_.size() < cfg_.clean_batch &&
      now < clean_q_.front().second + cfg_.clean_max_age) {
    return;
  }
  const Addr line = clean_q_.front().first;
  if (mem.write_queue_full(line)) return;
  mem::MemRequest req;
  req.op = mem::MemOp::kWrite;
  req.line_addr = line;
  req.persistent = true;
  req.source = mem::Source::kFlush;
  req.on_complete = [this, line](const mem::MemRequest&) {
    clean_pending_.erase(line);
    hier_->kiln_clean_done(line);
  };
  const bool ok = mem.enqueue(std::move(req), now);
  NTC_ASSERT(ok, "NVM write queue checked before Kiln clean-back");
  stat_cleans_->inc();
  clean_q_.pop_front();
}

Cycle KilnUnit::next_event_cycle(Cycle now) const {
  if (clean_q_.empty()) return kNeverCycle;  // commit flushes are events
  // Clean-eligible (batch reached or the oldest entry aged out): tick()
  // issues — or retries a full NVM write queue, in which case the memory
  // controller is busy and pins the clock itself.
  if (clean_q_.size() >= cfg_.clean_batch ||
      now >= clean_q_.front().second + cfg_.clean_max_age) {
    return now + 1;
  }
  // Backlogged but young: nothing happens until the oldest entry ages out
  // (or a commit flush — an event — grows the backlog first).
  return clean_q_.front().second + cfg_.clean_max_age;
}

TxId KilnUnit::pin_query(CoreId core, Addr line_addr) const {
  const PerCore& s = state_[core];
  if (s.open_tx == kNoTx || s.committing) return kNoTx;
  return s.lines.count(line_addr) != 0 ? s.open_tx : kNoTx;
}

}  // namespace ntcsim::persist
