// Kiln-style commit engine [Zhao+ MICRO'13], the prior hardware scheme the
// paper compares against (§5.1): the LLC is nonvolatile; at TX_END the
// cache controllers flush the transaction's dirty lines from L1/L2 into the
// NV-LLC. The flush blocks the LLC for other traffic ("blocks subsequent
// cache and memory requests ... bursts of traffic", §5.2), and uncommitted
// blocks are pinned in the LLC, shrinking its usable capacity (Fig. 8).
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_set>
#include <vector>

#include "cache/hierarchy.hpp"
#include "check/events.hpp"
#include "common/event_queue.hpp"
#include "common/hot.hpp"
#include "mem/memory_system.hpp"
#include "common/stat_handle.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "core/commit_engine.hpp"
#include "recovery/images.hpp"

namespace ntcsim::persist {

struct KilnConfig {
  unsigned commit_fixed_cycles = 40;  ///< Per-commit controller handshake.
  unsigned cycles_per_line = 10;      ///< Pipelined L1/L2 -> LLC flush rate.
  /// Lazy clean-back policy: committed NV-LLC lines are written to NVM
  /// once the backlog reaches `clean_batch` lines or the oldest entry ages
  /// past `clean_max_age` cycles. The window lets same-line commits of
  /// successive transactions coalesce into one NVM write — the reason the
  /// paper's Kiln writes less to NVM than TC (Fig. 9).
  unsigned clean_batch = 16;
  Cycle clean_max_age = 2000;
};

class KilnUnit final : public core::CommitEngine {
 public:
  KilnUnit(unsigned cores, const KilnConfig& cfg, cache::Hierarchy& hier,
           EventQueue& events, recovery::DurableState* durable, StatSet& stats);

  void begin_tx(CoreId core, TxId tx) override;
  void on_store(Cycle now, CoreId core, Addr addr, Word value, TxId tx) override;
  void begin_commit(Cycle now, CoreId core, TxId tx) override;
  bool commit_done(CoreId core) const override;

  /// Issue NVM clean-backs of committed NV-LLC lines; a line stays pinned
  /// in the LLC until its clean-back completes, so under sustained commit
  /// traffic the usable LLC shrinks (the paper's Fig. 8 effect). One line
  /// per cycle; same-line commits racing an in-flight clean coalesce.
  void tick(Cycle now, mem::MemorySystem& mem);

  /// Earliest cycle > now at which tick() could do work (quiescence
  /// contract): now + 1 when a clean-back is eligible, the oldest queued
  /// entry's age-out cycle when the backlog is young, kNeverCycle when the
  /// queue is empty (commit flushes arrive through the event queue).
  NTC_HOT Cycle next_event_cycle(Cycle now) const;

  /// Hierarchy hook: should a freshly filled persistent LLC line be pinned?
  TxId pin_query(CoreId core, Addr line_addr) const;

  /// Persistence-order checker tap (null = off): commit window open/flush
  /// lines/close.
  void set_check_sink(check::CheckSink* sink) { sink_ = sink; }

  /// Test seam (mutation testing of the checker): drop every other line
  /// from the commit flush set, so commits complete with dirty transaction
  /// lines left un-flushed. Never set outside tests.
  void set_lossy_flush_mutant(bool on) { lossy_flush_mutant_ = on; }

 private:
  struct PerCore {
    TxId open_tx = kNoTx;
    std::vector<std::pair<Addr, Word>> writes;  ///< Program order.
    std::unordered_set<Addr> lines;
    // Commit runs in the background: the previous transaction may still be
    // flushing into the NV-LLC while the next one executes (a new commit
    // must wait for it — commits are serialized per core).
    bool committing = false;
    std::vector<std::pair<Addr, Word>> committing_writes;
    std::unordered_set<Addr> committing_lines;
  };

  KilnConfig cfg_;
  cache::Hierarchy* hier_;
  EventQueue* events_;
  recovery::DurableState* durable_;
  check::CheckSink* sink_ = nullptr;
  bool lossy_flush_mutant_ = false;
  std::vector<PerCore> state_;
  std::deque<std::pair<Addr, Cycle>> clean_q_;  ///< (line, enqueue cycle)
  std::unordered_set<Addr> clean_pending_;

  CounterHandle stat_commits_;
  CounterHandle stat_flushed_lines_;
  CounterHandle stat_cleans_;
  AccumulatorHandle stat_commit_cycles_;
};

}  // namespace ntcsim::persist
