#include "persist/policy.hpp"

namespace ntcsim::persist {

Policy policy_for(Mechanism m) {
  Policy p;
  switch (m) {
    case Mechanism::kOptimal:
      break;
    case Mechanism::kSp:
      p.software_logging = true;
      break;
    case Mechanism::kSpAdr:
      p.software_logging = true;
      p.adr_domain = true;
      break;
    case Mechanism::kTc:
      p.route_stores_to_ntc = true;
      p.drop_persistent_llc_writeback = true;
      p.probe_ntc_on_llc_miss = true;
      break;
    case Mechanism::kKiln:
      p.llc_nonvolatile = true;
      p.flush_on_commit = true;
      break;
  }
  return p;
}

}  // namespace ntcsim::persist
