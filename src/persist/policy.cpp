#include "persist/policy.hpp"

#include "persist/domain.hpp"

namespace ntcsim::persist {

Policy policy_for(Mechanism m) {
  return DomainRegistry::instance().info(m).policy;
}

}  // namespace ntcsim::persist
