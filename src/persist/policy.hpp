// What each persistence mechanism changes, expressed as data. The paper's
// point is that TC leaves the hierarchy and controller alone; the policy
// table makes the (small) per-mechanism deltas explicit and auditable.
#pragma once

#include "common/types.hpp"

namespace ntcsim::persist {

struct Policy {
  /// Core: persistent in-transaction stores are also sent to the NTC and
  /// TX_END issues a commit request to it (TC).
  bool route_stores_to_ntc = false;
  /// LLC: drop persistent write-backs; NVM is fed only by the NTC (TC).
  bool drop_persistent_llc_writeback = false;
  /// LLC: probe the NTC on persistent misses (TC).
  bool probe_ntc_on_llc_miss = false;
  /// LLC is nonvolatile STT-RAM; pin uncommitted blocks (Kiln).
  bool llc_nonvolatile = false;
  /// TX_END triggers a blocking flush of the transaction's lines into the
  /// LLC (Kiln).
  bool flush_on_commit = false;
  /// The trace must be rewritten with WAL + clwb/sfence/pcommit (SP).
  bool software_logging = false;
  /// The NVM controller's write queue is power-fail protected (ADR):
  /// acceptance == durability, and the SP transform omits pcommit.
  bool adr_domain = false;
  /// Crash experiments need durable-state tracking for this mechanism's
  /// recovery procedure (every mechanism except Optimal).
  bool needs_recovery_images = false;
};

/// The registered domain's Policy (see DomainRegistry in domain.hpp — the
/// registry is the single source of truth; this is a convenience wrapper).
Policy policy_for(Mechanism m);

}  // namespace ntcsim::persist
