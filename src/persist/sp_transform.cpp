#include "persist/sp_transform.hpp"

#include <vector>

#include "common/assert.hpp"
#include "recovery/log_format.hpp"

namespace ntcsim::persist {

using core::FlushKind;
using core::MicroOp;
using core::OpKind;

core::Trace transform_sp(const core::Trace& in, CoreId core,
                         const AddressSpace& space, SpOptions opts) {
  core::Trace out;
  recovery::LogCursor cursor(space.log_base(core), space.log_bytes_per_core());

  bool in_tx = false;
  TxId tx = kNoTx;
  std::vector<MicroOp> deferred_stores;
  std::vector<Addr> log_lines;  // unique, in append order

  auto note_log_line = [&log_lines](Addr line) {
    for (Addr l : log_lines) {
      if (l == line) return;
    }
    log_lines.push_back(line);
  };

  for (const MicroOp& op : in.ops()) {
    switch (op.kind) {
      case OpKind::kTxBegin:
        NTC_ASSERT(!in_tx, "SP transform: nested transaction");
        in_tx = true;
        tx = static_cast<TxId>(op.value);
        deferred_stores.clear();
        log_lines.clear();
        out.push(op);
        break;

      case OpKind::kStore:
        if (in_tx && op.persistent && opts.data_first) {
          // Broken-on-purpose mutant (checker validation): the data store
          // executes in place; its log record is emitted at TX_END, *after*
          // the data has been forced durable.
          out.push(op);
          deferred_stores.push_back(op);
        } else if (in_tx && op.persistent) {
          // Log records stream through non-temporal stores (movnt), the
          // idiom real WAL implementations use: no cache pollution, the
          // write-combining buffer coalesces a 64 B line per flush.
          const Addr rec = cursor.next_record();
          if (opts.ordered) {
            out.push(MicroOp::ntstore(rec, word_of(op.addr)));
            out.push(MicroOp::ntstore(rec + 8, op.value));
          } else {
            // Fig. 2c variant: ordinary cached stores, never flushed — the
            // log lingers in the cache hierarchy and is lost on a crash.
            out.push(MicroOp::store(rec, word_of(op.addr), true));
            out.push(MicroOp::store(rec + 8, op.value, true));
          }
          note_log_line(line_of(rec));
          deferred_stores.push_back(op);
        } else {
          out.push(op);
        }
        break;

      case OpKind::kTxEnd: {
        NTC_ASSERT(in_tx, "SP transform: TX_END without TX_BEGIN");
        in_tx = false;
        if (opts.data_first && !deferred_stores.empty()) {
          // Inverted WAL: force the data durable first (FlushKind::kLog
          // makes the pcommit wait on the data flushes), then write the
          // log. The persistence-order checker must flag every data word.
          std::vector<Addr> data_lines;
          for (const MicroOp& st : deferred_stores) {
            bool seen = false;
            for (Addr l : data_lines) seen = seen || l == line_of(st.addr);
            if (!seen) data_lines.push_back(line_of(st.addr));
          }
          for (Addr l : data_lines) out.push(MicroOp::clwb(l, FlushKind::kLog));
          out.push(MicroOp::sfence());
          if (!opts.adr) out.push(MicroOp::pcommit());
          for (const MicroOp& st : deferred_stores) {
            const Addr rec = cursor.next_record();
            out.push(MicroOp::ntstore(rec, word_of(st.addr)));
            out.push(MicroOp::ntstore(rec + 8, st.value));
          }
          const Addr marker = cursor.next_record();
          out.push(MicroOp::ntstore(marker, recovery::make_commit_marker(tx)));
          out.push(MicroOp::ntstore(marker + 8, deferred_stores.size()));
          out.push(MicroOp::sfence());
          if (!opts.adr) out.push(MicroOp::pcommit());
          out.push(MicroOp::sfence());
        } else if (!deferred_stores.empty()) {
          // Ordering (SpOptions): by default the textbook two rounds —
          // records durable, then the commit marker durable, then the data
          // stores. single_round collapses the two pcommits into one,
          // crash-safe because the marker carries the record count (a
          // durable marker whose records were lost fails validation at
          // recovery and the transaction reads as uncommitted).
          const Addr marker = cursor.next_record();
          if (opts.ordered) {
            if (!opts.single_round) {
              // Textbook WAL: the data records must be durable before the
              // commit marker may become durable. On an ADR platform the
              // sfence alone is the durability point (acceptance at the
              // controller); otherwise pcommit waits for the NVM array.
              out.push(MicroOp::sfence());   // flush the WC buffer
              if (!opts.adr) out.push(MicroOp::pcommit());
            }
            out.push(MicroOp::ntstore(marker, recovery::make_commit_marker(tx)));
            out.push(MicroOp::ntstore(marker + 8, deferred_stores.size()));
            out.push(MicroOp::sfence());   // flush the WC buffer, drain SB
            if (!opts.adr) out.push(MicroOp::pcommit());
            out.push(MicroOp::sfence());
          } else {
            out.push(MicroOp::store(marker, recovery::make_commit_marker(tx),
                                    true));
            out.push(MicroOp::store(marker + 8, deferred_stores.size(), true));
          }
          note_log_line(line_of(marker));
          for (const MicroOp& st : deferred_stores) out.push(st);
          if (opts.ordered) {
            // Write the data lines back as well (software must clean them
            // before the log can be truncated) — the "cache flushes" half
            // of the paper's 2x write traffic (Fig. 9). No pcommit: the
            // flushes drain in the background.
            std::vector<Addr> data_lines;
            for (const MicroOp& st : deferred_stores) {
              bool seen = false;
              for (Addr l : data_lines) seen = seen || l == line_of(st.addr);
              if (!seen) data_lines.push_back(line_of(st.addr));
            }
            for (Addr l : data_lines) {
              out.push(MicroOp::clwb(l, FlushKind::kData));
            }
          }
        }
        out.push(op);
        break;
      }

      default:
        out.push(op);
        break;
    }
  }
  NTC_ASSERT(!in_tx, "SP transform: trace ends inside a transaction");
  return out;
}

}  // namespace ntcsim::persist
