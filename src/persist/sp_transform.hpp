// SP (software persistence) trace transform, following Fig. 3(a):
//
//   Transaction {            Transaction {
//     write A                  LOG_A = log(&A, vA); clwb &LOG_A
//     write B        ==>       LOG_B = log(&B, vB); clwb &LOG_B
//   }                          sfence; pcommit            (entries durable)
//                              log commit marker; clwb; sfence; pcommit
//                              write A; write B            (data after logs)
//                            }
//
// Each log record is two 8-byte words (recovery/log_format.hpp). The
// `ordered` flag disables every clwb/sfence/pcommit — the broken variant of
// Fig. 2(c), used as the negative control in the crash-injection tests.
#pragma once

#include "common/config.hpp"
#include "core/trace.hpp"

namespace ntcsim::persist {

struct SpOptions {
  bool ordered = true;
  /// One ordering round per transaction instead of two. Crash-safe because
  /// the commit marker carries the record count (recovery::parse_log
  /// rejects a marker whose records were lost), but non-standard; default
  /// is the textbook WAL ordering: entries durable, then the marker.
  bool single_round = false;
  /// ADR platform: the controller write queue is in the persistence
  /// domain, so sfence alone orders durability — no pcommit is emitted.
  bool adr = false;
  /// Deliberately broken variant for the persistence-order checker's
  /// mutation tests: the transaction's data stores are made durable
  /// *before* their log records, inverting the WAL ordering. Never set on
  /// a real run; seeded via PersistenceDomain::adjust_sp_options().
  bool data_first = false;
};

core::Trace transform_sp(const core::Trace& in, CoreId core,
                         const AddressSpace& space, SpOptions opts = {});

}  // namespace ntcsim::persist
