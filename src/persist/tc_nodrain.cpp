// TC-NODRAIN: an eADR-style variant of the paper's transaction cache.
//
// Rationale: post-eADR platforms battery-back the whole on-chip persistence
// path, so a commit no longer needs to wait for anything to drain before it
// is acknowledged. Modelled here as TC with TX_END taken off the critical
// path: the µop retires immediately and the NTC commit request is issued
// lazily, when the transaction's last store drains out of the store buffer.
// Store routing, LLC write-back disposition, NTC probing and recovery are
// exactly TC's.
//
// This file is the registry-seam proof for the PersistenceDomain layer: a
// whole new mechanism in one file under src/persist/, registered from the
// registry bootstrap — no edits to core/, cache/, sim/ or mem/. It appears
// automatically in --list-mechanisms, --matrix and the sweep CSVs.
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/assert.hpp"
#include "common/stat_handle.hpp"
#include "persist/domain.hpp"
#include "recovery/recovery.hpp"
#include "txcache/tx_cache.hpp"

namespace ntcsim::persist {

namespace {

Policy tc_nodrain_policy() {
  Policy p;
  p.route_stores_to_ntc = true;
  p.drop_persistent_llc_writeback = true;
  p.probe_ntc_on_llc_miss = true;
  p.needs_recovery_images = true;
  return p;
}

class TcNodrainDomain final : public PersistenceDomain {
 public:
  TcNodrainDomain() : PersistenceDomain(tc_nodrain_policy()) {}
  std::string_view name() const override { return "tc-nodrain"; }

  check::CheckerRules checker_rules() const override {
    // TC's invariants verbatim: the data path is identical, only the
    // TX_END handshake is lazy — and the deferred commit request always
    // reaches the NTC at or before the last drain, so committed-only
    // draining still holds.
    check::CheckerRules r;
    r.single_writer = true;
    r.allowed_heap_sources = check::source_bit(mem::Source::kTxCache);
    r.fifo_drain = true;
    r.no_stale_read = true;
    r.no_uncommitted = true;
    return r;
  }

  CrashProfile crash_profile() const override {
    // TC's hazards verbatim: the same NTC transitions bound the same
    // crash-vulnerability windows, the lazy commit just moves kNtcCommit.
    CrashProfile p;
    p.hazard_mask = check::event_bit(check::EventKind::kNtcCommit) |
                    check::event_bit(check::EventKind::kNtcDrainIssue) |
                    check::event_bit(check::EventKind::kNtcRelease) |
                    check::event_bit(check::EventKind::kLlcWritebackDropped) |
                    check::event_bit(check::EventKind::kTxCommitted);
    p.expect_consistent = true;
    return p;
  }

  void bind(const DomainWiring& wiring) override {
    NTC_ASSERT(!wiring.ntcs.empty(),
               "TC-NODRAIN mechanism requires a transaction cache");
    PersistenceDomain::bind(wiring);
    state_.assign(wiring.cfg->cores, {});
    stat_lazy_commits_ =
        CounterHandle(*wiring.stats, "tc_nodrain.lazy_commits");
  }

  core::PersistCoreTraits core_traits() const override {
    core::PersistCoreTraits t;
    t.routes_tx_stores = true;
    t.observes_tx_stores = true;
    return t;
  }

  void on_store_retired(CoreId core, TxId tx) override {
    ++state_[core].pending[tx];
  }

  core::StoreRoute route_store(Cycle now, CoreId core, Addr addr, Word value,
                               TxId tx) override {
    txcache::TxCache* ntc = wiring().ntcs[core];
    if (ntc->write(now, addr, value, tx)) return core::StoreRoute::kAccepted;
    return (ntc->full() || ntc->overflow_imminent())
               ? core::StoreRoute::kRetryCapacity
               : core::StoreRoute::kRetry;
  }

  void on_store_drained(Cycle /*now*/, CoreId core, Addr /*addr*/,
                        Word /*value*/, TxId tx) override {
    PerCore& pc = state_[core];
    const auto it = pc.pending.find(tx);
    if (it == pc.pending.end()) return;
    if (--it->second > 0) return;
    pc.pending.erase(it);
    // Last store of `tx` is in the NTC; if the program already ended the
    // transaction, the deferred commit request fires now.
    if (pc.ended.erase(tx) > 0) {
      wiring().ntcs[core]->commit(tx);
      stat_lazy_commits_->inc();
    }
  }

  // Battery-backed commit: TX_END acknowledges immediately. Stores retire
  // in program order, so by the time TX_END retires the pending count for
  // `tx` is final — either everything already drained (commit now) or the
  // commit is deferred to the last drain.
  core::TxEndResult on_tx_end(Cycle /*now*/, CoreId core, TxId tx) override {
    PerCore& pc = state_[core];
    if (pc.pending.find(tx) == pc.pending.end()) {
      wiring().ntcs[core]->commit(tx);
    } else {
      pc.ended.insert(tx);
    }
    return core::TxEndResult::kCommitted;
  }

  recovery::WordImage recover(
      const recovery::DurableState& durable) const override {
    // TC recovery verbatim: replay committed NTC entries in FIFO order. A
    // transaction whose deferred commit had not reached the NTC at crash
    // time is discarded whole — still all-or-nothing, one prefix shorter.
    std::vector<recovery::NtcSnapshot> snaps;
    snaps.reserve(wiring().ntcs.size());
    for (const txcache::TxCache* n : wiring().ntcs) {
      snaps.push_back(n->snapshot());
    }
    return recovery::recover_tc(durable, snaps);
  }

 private:
  struct PerCore {
    /// Undrained store count per open transaction (several transactions
    /// may be in flight at once — TX_END does not wait).
    std::unordered_map<TxId, unsigned> pending;
    /// Transactions past TX_END whose commit request is still deferred.
    std::unordered_set<TxId> ended;
  };
  std::vector<PerCore> state_;
  CounterHandle stat_lazy_commits_;
};

}  // namespace

void register_tc_nodrain(DomainRegistry& registry) {
  registry.add({kAutoMechanismId, "tc-nodrain", "TC-NODRAIN",
                "eADR-style TC: battery-backed NTC, commit acks immediately",
                {"tcnodrain"}, 4, tc_nodrain_policy(),
                [] { return std::make_unique<TcNodrainDomain>(); }});
}

}  // namespace ntcsim::persist
