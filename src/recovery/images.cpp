#include "recovery/images.hpp"

#include "common/assert.hpp"

namespace ntcsim::recovery {

void WordImage::store(Addr word_addr, Word value) {
  NTC_ASSERT(word_addr == word_of(word_addr), "store address must be word-aligned");
  const Addr line = line_of(word_addr);
  if (line != cached_line_ || cached_ == nullptr) {
    cached_ = &lines_[line];
    cached_line_ = line;
  }
  LineWords& lw = *cached_;
  const unsigned i = static_cast<unsigned>((word_addr - line) / kWordBytes);
  lw.mask |= static_cast<std::uint8_t>(1u << i);
  lw.w[i] = value;
}

Word WordImage::load(Addr word_addr) const {
  auto it = lines_.find(line_of(word_addr));
  if (it == lines_.end()) return 0;
  const unsigned i = static_cast<unsigned>((word_addr - line_of(word_addr)) / kWordBytes);
  return (it->second.mask & (1u << i)) ? it->second.w[i] : 0;
}

bool WordImage::contains(Addr word_addr) const {
  auto it = lines_.find(line_of(word_addr));
  if (it == lines_.end()) return false;
  const unsigned i = static_cast<unsigned>((word_addr - line_of(word_addr)) / kWordBytes);
  return (it->second.mask & (1u << i)) != 0;
}

std::vector<std::pair<Addr, Word>> WordImage::words_in_line(Addr line_addr) const {
  std::vector<std::pair<Addr, Word>> out;
  auto it = lines_.find(line_addr);
  if (it == lines_.end()) return out;
  for (unsigned i = 0; i < 8; ++i) {
    if (it->second.mask & (1u << i)) {
      out.emplace_back(line_addr + i * kWordBytes, it->second.w[i]);
    }
  }
  return out;
}

DurableState::DurableState(StatSet& stats)
    : stat_words_(&stats.counter("durable.words_written")) {}

void DurableState::on_nvm_write(const mem::MemRequest& req) {
  for (const auto& [addr, value] : req.payload) {
    image_.store(addr, value);
    stat_words_->inc();
  }
}

void DurableState::apply_kiln_commit(
    const std::vector<std::pair<Addr, Word>>& writes) {
  for (const auto& [addr, value] : writes) {
    image_.store(addr, value);
    stat_words_->inc();
  }
}

}  // namespace ntcsim::recovery
