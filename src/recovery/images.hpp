// Functional memory state, kept separate from the timing models:
//
//  * VolatileImage — the latest architectural value of every persistent
//    word, updated when a store drains into the cache hierarchy. Cache
//    arrays carry no data; when a dirty persistent line is written to NVM
//    the payload is gathered from here (exact under inclusive caching with
//    back-invalidation — see DESIGN.md §6).
//  * DurableState — the NVM array contents: what survives a crash. Updated
//    only when the NVM controller completes an array write, plus the Kiln
//    path where durability is reached at the nonvolatile LLC.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "mem/memory_system.hpp"

namespace ntcsim::recovery {

/// Word values of one cache line (8 words of 8 bytes).
struct LineWords {
  std::uint8_t mask = 0;  ///< Bit i set => word i holds a value.
  Word w[8] = {};
};

class WordImage {
 public:
  WordImage() = default;
  // The MRU pointer below aims into this instance's own map; a copied or
  // moved-from image must not inherit (or keep) a pointer into the wrong
  // map, so copies/moves transfer only the contents and drop the cache.
  WordImage(const WordImage& other) : lines_(other.lines_) {}
  WordImage(WordImage&& other) noexcept : lines_(std::move(other.lines_)) {
    other.invalidate_cache_();
  }
  WordImage& operator=(const WordImage& other) {
    lines_ = other.lines_;
    invalidate_cache_();
    return *this;
  }
  WordImage& operator=(WordImage&& other) noexcept {
    lines_ = std::move(other.lines_);
    invalidate_cache_();
    other.invalidate_cache_();
    return *this;
  }

  void store(Addr word_addr, Word value);
  /// Value of the word, or 0 (NVM cells are modeled as zero-initialized).
  Word load(Addr word_addr) const;
  bool contains(Addr word_addr) const;

  /// All words this image holds within the given line, as (addr, value).
  std::vector<std::pair<Addr, Word>> words_in_line(Addr line_addr) const;

  std::size_t line_count() const { return lines_.size(); }
  void clear() {
    lines_.clear();
    invalidate_cache_();
  }

  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [line, lw] : lines_) {
      for (unsigned i = 0; i < 8; ++i) {
        if (lw.mask & (1u << i)) fn(line + i * kWordBytes, lw.w[i]);
      }
    }
  }

 private:
  void invalidate_cache_() {
    cached_ = nullptr;
    cached_line_ = ~Addr{0};
  }

  std::unordered_map<Addr, LineWords> lines_;
  /// One-line MRU store cache: drains hit the same 64 B line word after
  /// word, and unordered_map values are pointer-stable across inserts, so
  /// the repeat hash lookups collapse into a single pointer compare.
  Addr cached_line_ = ~Addr{0};
  LineWords* cached_ = nullptr;
};

using VolatileImage = WordImage;

/// NVM array contents + the Kiln NV-LLC overlay. Implements the memory
/// system's write observer so the image changes exactly when an NVM array
/// write completes.
class DurableState final : public mem::NvmWriteObserver {
 public:
  explicit DurableState(StatSet& stats);

  void on_nvm_write(const mem::MemRequest& req) override;

  /// Kiln: a transaction's writes become durable when its commit flush into
  /// the nonvolatile LLC finishes (§5.2 of the paper / DESIGN.md §5.6).
  void apply_kiln_commit(const std::vector<std::pair<Addr, Word>>& writes);

  const WordImage& image() const { return image_; }
  Word load(Addr word_addr) const { return image_.load(word_addr); }

 private:
  WordImage image_;
  Counter* stat_words_;
};

}  // namespace ntcsim::recovery
