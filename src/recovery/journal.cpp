#include "recovery/journal.hpp"

#include "common/assert.hpp"

namespace ntcsim::recovery {

Journal::Journal(unsigned cores) : per_core_(cores), open_(cores, false) {}

void Journal::begin_tx(CoreId core, TxId tx) {
  NTC_ASSERT(core < per_core_.size(), "journal core id out of range");
  NTC_ASSERT(!open_[core], "nested transactions are not supported");
  per_core_[core].push_back(TxRecord{tx, {}});
  open_[core] = true;
}

void Journal::write(CoreId core, Addr word_addr, Word value) {
  NTC_ASSERT(open_[core], "journal write outside a transaction");
  per_core_[core].back().writes.emplace_back(word_of(word_addr), value);
}

void Journal::end_tx(CoreId core) {
  NTC_ASSERT(open_[core], "journal end without begin");
  open_[core] = false;
}

std::size_t Journal::total_txs() const {
  std::size_t n = 0;
  for (const auto& v : per_core_) n += v.size();
  return n;
}

}  // namespace ntcsim::recovery
