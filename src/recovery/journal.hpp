// Oracle journal of transactional writes, recorded by the workload
// generators at trace-generation time (program order). The atomicity
// checker compares post-crash recovered state against this journal; the
// recovery procedures themselves never read it.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace ntcsim::recovery {

struct TxRecord {
  TxId tx = kNoTx;
  /// Persistent writes of this transaction, in program order.
  std::vector<std::pair<Addr, Word>> writes;
};

class Journal {
 public:
  explicit Journal(unsigned cores);

  void begin_tx(CoreId core, TxId tx);
  void write(CoreId core, Addr word_addr, Word value);
  void end_tx(CoreId core);

  const std::vector<TxRecord>& per_core(CoreId core) const {
    return per_core_[core];
  }
  unsigned cores() const { return static_cast<unsigned>(per_core_.size()); }
  std::size_t total_txs() const;

 private:
  std::vector<std::vector<TxRecord>> per_core_;
  std::vector<bool> open_;
};

}  // namespace ntcsim::recovery
