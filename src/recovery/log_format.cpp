#include "recovery/log_format.hpp"

#include "common/assert.hpp"
#include "recovery/images.hpp"

namespace ntcsim::recovery {

Addr LogCursor::next_record() {
  Addr rec = base_ + used_ * 16;
  NTC_ASSERT(rec + 16 <= end_, "SP log region overflow — enlarge the log area");
  ++used_;
  return rec;
}

std::vector<LoggedTx> parse_log(const WordImage& durable, Addr base,
                                std::uint64_t bytes) {
  std::vector<LoggedTx> committed;
  LoggedTx open;  // records accumulated since the last commit marker
  const std::uint64_t max_records = bytes / 16;

  for (std::uint64_t i = 0; i < max_records; ++i) {
    const Addr rec = base + i * 16;
    if (!durable.contains(rec)) break;  // never written durably: end of log
    const Word head = durable.load(rec);
    const Word tail = durable.load(rec + 8);
    if (is_commit_marker(head)) {
      // The commit record carries the transaction's data-record count; a
      // marker whose records are incomplete (lost) marks a broken log tail.
      if (open.writes.size() != tail) {
        break;
      }
      open.tx = commit_marker_tx(head);
      committed.push_back(std::move(open));
      open = LoggedTx{};
      continue;
    }
    if (!durable.contains(rec + 8)) break;  // torn record
    open.writes.emplace_back(head, tail);
  }
  return committed;
}

}  // namespace ntcsim::recovery
