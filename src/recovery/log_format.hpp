// On-NVM write-ahead-log record format used by the SP mechanism.
//
// The per-core log region (AddressSpace::log_base) is a sequence of
// 16-byte records, each two 8-byte words:
//   data record:   [ target word address            | new value ]
//   commit record: [ kCommitTag | txid (low 32 bit) | record count of tx ]
// A transaction is recoverable iff all of its data records AND its commit
// record are durable in NVM; SP's pcommit ordering (DESIGN.md §5.5)
// guarantees data records become durable before the commit record.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace ntcsim::recovery {

inline constexpr Word kCommitTag = 0xC0DEC0DE00000000ULL;

constexpr Word make_commit_marker(TxId tx) { return kCommitTag | tx; }
constexpr bool is_commit_marker(Word w) {
  return (w & 0xFFFFFFFF00000000ULL) == kCommitTag;
}
constexpr TxId commit_marker_tx(Word w) { return static_cast<TxId>(w); }

/// Allocates log-record slots for one core, in order.
class LogCursor {
 public:
  LogCursor(Addr base, std::uint64_t bytes) : base_(base), end_(base + bytes) {}

  /// Address of the next 16-byte record; advances the cursor.
  Addr next_record();
  Addr base() const { return base_; }
  std::uint64_t records_used() const { return used_; }

 private:
  Addr base_;
  Addr end_;
  std::uint64_t used_ = 0;
};

/// One parsed committed transaction from a log region.
struct LoggedTx {
  TxId tx = kNoTx;
  std::vector<std::pair<Addr, Word>> writes;
};

class WordImage;

/// Scan a core's log region in a durable image. Returns the committed
/// transactions in log order; parsing stops at the first record slot whose
/// target-address word never became durable.
std::vector<LoggedTx> parse_log(const WordImage& durable, Addr base,
                                std::uint64_t bytes);

}  // namespace ntcsim::recovery
