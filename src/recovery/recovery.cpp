#include "recovery/recovery.hpp"

#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "recovery/log_format.hpp"

namespace ntcsim::recovery {

WordImage recover_none(const DurableState& durable) { return durable.image(); }

WordImage recover_kiln(const DurableState& durable) { return durable.image(); }

WordImage recover_tc(const DurableState& durable,
                     const std::vector<NtcSnapshot>& ntcs) {
  WordImage img = durable.image();
  for (const NtcSnapshot& ntc : ntcs) {
    for (const NtcEntrySnapshot& e : ntc) {  // FIFO order: oldest first
      if (!e.committed) continue;
      for (const auto& [addr, value] : e.words) img.store(addr, value);
    }
  }
  return img;
}

WordImage recover_sp(const DurableState& durable, const AddressSpace& space,
                     unsigned cores) {
  WordImage img = durable.image();
  for (CoreId c = 0; c < cores; ++c) {
    const auto txs =
        parse_log(durable.image(), space.log_base(c), space.log_bytes_per_core());
    for (const LoggedTx& tx : txs) {
      for (const auto& [addr, value] : tx.writes) img.store(addr, value);
    }
  }
  return img;
}

RecoveryCost tc_recovery_cost(const std::vector<NtcSnapshot>& ntcs) {
  RecoveryCost c;
  for (const NtcSnapshot& ntc : ntcs) {
    for (const NtcEntrySnapshot& e : ntc) {
      ++c.records_scanned;
      if (e.committed) c.words_applied += e.words.size();
    }
  }
  return c;
}

RecoveryCost sp_recovery_cost(const DurableState& durable,
                              const AddressSpace& space, unsigned cores) {
  RecoveryCost c;
  for (CoreId core = 0; core < cores; ++core) {
    const auto txs = parse_log(durable.image(), space.log_base(core),
                               space.log_bytes_per_core());
    for (const LoggedTx& tx : txs) {
      c.records_scanned += tx.writes.size() + 1;  // + commit marker
      c.words_applied += tx.writes.size();
    }
  }
  return c;
}

AtomicityReport check_atomicity(const WordImage& recovered,
                                const Journal& journal) {
  AtomicityReport report;
  report.durable_tx_prefix.resize(journal.cores(), 0);

  for (CoreId core = 0; core < journal.cores(); ++core) {
    const auto& txs = journal.per_core(core);

    // Expected state E_k after replaying transactions [0, k). We advance k
    // and keep a running count of words where `recovered` differs from E_k;
    // consistency == some k with zero mismatches.
    std::unordered_map<Addr, Word> expected;  // words this core ever wrote
    std::unordered_set<Addr> core_words;
    for (const auto& tx : txs) {
      for (const auto& [addr, _] : tx.writes) core_words.insert(addr);
    }
    // E_0: untouched NVM reads as zero.
    std::size_t mismatches = 0;
    for (Addr w : core_words) {
      if (recovered.load(w) != 0) ++mismatches;
    }

    std::size_t best_k = txs.size() + 1;  // sentinel: none found yet
    std::size_t nearest_k = 0;
    std::size_t nearest_mismatches = mismatches;
    if (mismatches == 0) best_k = 0;

    for (std::size_t k = 0; k < txs.size(); ++k) {
      for (const auto& [addr, value] : txs[k].writes) {
        const Word got = recovered.load(addr);
        auto it = expected.find(addr);
        const Word before = it == expected.end() ? 0 : it->second;
        const bool was_match = got == before;
        const bool now_match = got == value;
        if (was_match && !now_match) ++mismatches;
        if (!was_match && now_match) --mismatches;
        expected[addr] = value;
      }
      // Keep scanning and report the LARGEST matching prefix: trailing
      // read-only or idempotent transactions also count as durable.
      if (mismatches == 0) best_k = k + 1;
      if (mismatches < nearest_mismatches) {
        nearest_mismatches = mismatches;
        nearest_k = k + 1;
      }
    }

    if (best_k > txs.size()) {
      report.consistent = false;
      // Rebuild the nearest prefix and list its diffs for diagnosis.
      std::unordered_map<Addr, Word> near;
      for (std::size_t k = 0; k < nearest_k; ++k) {
        for (const auto& [addr, value] : txs[k].writes) near[addr] = value;
      }
      std::ostringstream oss;
      oss << "core " << core << ": recovered state matches no prefix of "
          << txs.size() << " transactions; nearest prefix k=" << nearest_k
          << " differs in " << nearest_mismatches << " words:";
      int listed = 0;
      for (Addr w : core_words) {
        const Word got = recovered.load(w);
        const auto it = near.find(w);
        const Word want = it == near.end() ? 0 : it->second;
        if (got != want && listed < 4) {
          oss << " [0x" << std::hex << w << " got 0x" << got << " want 0x"
              << want << std::dec << "]";
          ++listed;
        }
      }
      report.violation = oss.str();
      report.durable_tx_prefix[core] = 0;
    } else {
      report.durable_tx_prefix[core] = best_k;
    }
  }
  return report;
}

}  // namespace ntcsim::recovery
