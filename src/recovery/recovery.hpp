// Post-crash recovery procedures (one per mechanism) and the atomicity
// checker used by the crash-injection property tests.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/types.hpp"
#include "recovery/images.hpp"
#include "recovery/journal.hpp"

namespace ntcsim::recovery {

/// Crash-time snapshot of one transaction-cache entry. The NTC is
/// nonvolatile, so its contents survive the crash and drive recovery.
/// Entries are listed in FIFO order, oldest (tail) first.
struct NtcEntrySnapshot {
  TxId tx = kNoTx;
  bool committed = false;
  std::vector<std::pair<Addr, Word>> words;
};

using NtcSnapshot = std::vector<NtcEntrySnapshot>;

/// TC recovery (§3, "Multiversioning"): start from the NVM array contents
/// and re-apply every *committed* entry still buffered in the transaction
/// cache, in FIFO order; active (uncommitted) entries are discarded.
WordImage recover_tc(const DurableState& durable,
                     const std::vector<NtcSnapshot>& ntcs);

/// SP recovery: redo-replay every fully-logged committed transaction from
/// each core's log region, in log order, over the NVM data area.
WordImage recover_sp(const DurableState& durable, const AddressSpace& space,
                     unsigned cores);

/// Kiln recovery: committed data is already durable at the nonvolatile LLC
/// or NVM; uncommitted LLC blocks are discarded (they were never applied to
/// the durable image). Recovery is the identity.
WordImage recover_kiln(const DurableState& durable);

/// No recovery: raw NVM contents (what Optimal leaves behind).
WordImage recover_none(const DurableState& durable);

/// Result of checking recovered state against the oracle journal.
struct AtomicityReport {
  bool consistent = true;
  /// Per core: number of whole transactions that survived the crash.
  std::vector<std::size_t> durable_tx_prefix;
  std::string violation;  ///< Human-readable description of the first failure.
};

/// How much work recovery had to do — the paper's recovery-time story:
/// TC replays at most the (kilobyte-sized) transaction cache; SP scans its
/// whole undrained log tail.
struct RecoveryCost {
  std::size_t records_scanned = 0;  ///< NTC entries / log records visited.
  std::size_t words_applied = 0;    ///< Words written into the image.
};

RecoveryCost tc_recovery_cost(const std::vector<NtcSnapshot>& ntcs);
RecoveryCost sp_recovery_cost(const DurableState& durable,
                              const AddressSpace& space, unsigned cores);

/// Verifies the persistence contract: for every core, the recovered state
/// restricted to that core's written words must equal the replay of some
/// program-order *prefix* of its transactions (all-or-nothing per
/// transaction + FIFO durability order).
AtomicityReport check_atomicity(const WordImage& recovered,
                                const Journal& journal);

}  // namespace ntcsim::recovery
