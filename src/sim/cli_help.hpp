// The `ntcsim --help` text, shared between the CLI driver and
// tests/test_cli_docs.cpp, which cross-checks every flag listed here
// against the CLI reference in EXPERIMENTS.md (both directions), so the
// binary and the documentation cannot drift apart silently.
#pragma once

namespace ntcsim::sim {

inline constexpr const char kCliHelp[] =
    "ntcsim — nonvolatile-transaction-cache persistent memory simulator\n"
    "\n"
    "  --workload=NAME      graph | rbtree | sps | btree | hashtable\n"
    "  --mechanism=NAME     a registered persistence mechanism (default\n"
    "                       tc; see --list-mechanisms)\n"
    "  --list-mechanisms    list every registered persistence mechanism\n"
    "                       and exit\n"
    "  --preset=NAME        paper | experiment | tiny     (default experiment)\n"
    "  --config=FILE        apply key=value overrides from FILE\n"
    "  --set KEY=VALUE      apply one override (repeatable)\n"
    "  --ops=N              measured operations per core\n"
    "  --setup=N            structure size built before measuring\n"
    "  --lookup=PCT         percentage of measured ops that are searches\n"
    "  --seed=N             workload RNG seed\n"
    "  --crash-at=CYCLE     crash in the measured phase, recover, check\n"
    "  --crash-sweep        run the fault-injection campaign: hazard-guided\n"
    "                       crash points per (mechanism x workload x seed)\n"
    "                       cell, each recovered and checked against the\n"
    "                       atomicity oracle; unexpected violations exit 2.\n"
    "                       --mechanism/--workload/--seed narrow the cell\n"
    "                       set; --jobs/--scale/--ops/--setup apply\n"
    "  --crash-points=N     crash points kept per cell (0 = every hazard;\n"
    "                       implies --crash-sweep)\n"
    "  --minimize           shrink failing cells to the shortest\n"
    "                       reproducing transaction prefix\n"
    "  --crash-report=FILE  campaign JSON report destination (default\n"
    "                       CRASH_sweep.json; - = stdout)\n"
    "  --check[=MODE]       online persistence-order checker: collect\n"
    "                       (default), fatal, or off; violations exit 3.\n"
    "                       NTCSIM_CHECK is the env equivalent\n"
    "  --serve              service mode: measured transactions become\n"
    "                       requests arriving at --rate, with per-request\n"
    "                       tail-latency (p50/p95/p99/p99.9) accounting\n"
    "  --rate=R             offered load, requests per kilocycle per core\n"
    "                       (implies --serve; default 1)\n"
    "  --requests=N         measured requests per core (implies --serve)\n"
    "  --closed-loop        issue each request as soon as the previous one\n"
    "                       retires instead of open-loop timed arrivals\n"
    "  --uniform            evenly spaced arrivals instead of the default\n"
    "                       Poisson process\n"
    "  --matrix             run the full workload x mechanism evaluation\n"
    "                       matrix instead of a single cell\n"
    "  --jobs=N             worker threads for --matrix (default: all\n"
    "                       cores; NTCSIM_JOBS is the env equivalent)\n"
    "  --scale=X            scale factor on measured ops for --matrix\n"
    "  --profile[=FILE]     time the simulator's own phases and write a\n"
    "                       self-perf report (default BENCH_selfperf.json);\n"
    "                       simulated metrics are unaffected\n"
    "  --csv                machine-readable one-row output\n"
    "  --stats              dump every raw statistic after the run\n"
    "  --dump-config        print the effective configuration and exit\n"
    "  --help\n";

}  // namespace ntcsim::sim
