#include "sim/config_io.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <functional>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>

#include "persist/domain.hpp"

namespace ntcsim::sim {

namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

struct Key {
  std::function<bool(SystemConfig&, const std::string&)> set;
  std::function<std::string(const SystemConfig&)> get;
  /// Optional: appended to the invalid-value error ("known mechanisms:
  /// ..."), for keys whose value space is not obvious from the name.
  std::function<std::string()> hint{};
};

template <typename T, typename Field>
Key numeric(Field field) {
  return Key{
      [field](SystemConfig& c, const std::string& v) {
        std::istringstream iss(v);
        T parsed{};
        iss >> parsed;
        if (iss.fail()) return false;
        c.*field = parsed;
        return true;
      },
      [field](const SystemConfig& c) {
        std::ostringstream oss;
        oss << c.*field;
        return oss.str();
      }};
}

/// Nested-member accessor: numeric field of a sub-struct.
template <typename T, typename Sub, typename SubField>
Key nested(Sub sub, SubField field, T scale = 1) {
  return Key{
      [sub, field, scale](SystemConfig& c, const std::string& v) {
        std::istringstream iss(v);
        double parsed{};
        iss >> parsed;
        if (iss.fail()) return false;
        (c.*sub).*field = static_cast<T>(parsed * static_cast<double>(scale));
        return true;
      },
      [sub, field, scale](const SystemConfig& c) {
        std::ostringstream oss;
        oss << static_cast<double>((c.*sub).*field) /
                   static_cast<double>(scale);
        return oss.str();
      }};
}

const std::map<std::string, Key>& registry() {
  static const std::map<std::string, Key> keys = [] {
    std::map<std::string, Key> k;
    k["cores"] = numeric<unsigned>(&SystemConfig::cores);
    k["ghz"] = numeric<double>(&SystemConfig::ghz);
    k["mechanism"] = Key{
        [](SystemConfig& c, const std::string& v) {
          return parse_mechanism(v, c.mechanism);
        },
        [](const SystemConfig& c) {
          // Canonical registry name (already lower-case), e.g. "sp-adr".
          return persist::DomainRegistry::instance().info(c.mechanism).name;
        },
        [] {
          return "known mechanisms: " +
                 persist::DomainRegistry::instance().known_names();
        }};
    k["track_recovery"] = Key{
        [](SystemConfig& c, const std::string& v) {
          if (v != "0" && v != "1") return false;
          c.track_recovery_state = v == "1";
          return true;
        },
        [](const SystemConfig& c) {
          return std::string(c.track_recovery_state ? "1" : "0");
        }};
    k["check"] = Key{
        [](SystemConfig& c, const std::string& v) {
          return parse_check_mode(v, c.check);
        },
        [](const SystemConfig& c) { return std::string(to_string(c.check)); },
        [] { return std::string("one of: off, collect, fatal"); }};

    k["topo.nodes"] = Key{
        [](SystemConfig& c, const std::string& v) {
          std::istringstream iss(v);
          unsigned parsed{};
          iss >> parsed;
          if (iss.fail() || parsed == 0) return false;
          c.topo.nodes = parsed;
          return true;
        },
        [](const SystemConfig& c) { return std::to_string(c.topo.nodes); },
        [] { return std::string("a positive node count"); }};
    k["topo.hop_ns"] = Key{
        [](SystemConfig& c, const std::string& v) {
          std::istringstream iss(v);
          double parsed{};
          iss >> parsed;
          if (iss.fail() || parsed < 0.0) return false;
          c.topo.hop_ns = parsed;
          return true;
        },
        [](const SystemConfig& c) {
          std::ostringstream oss;
          oss << c.topo.hop_ns;
          return oss.str();
        }};
    k["topo.link_gbps"] = Key{
        [](SystemConfig& c, const std::string& v) {
          std::istringstream iss(v);
          double parsed{};
          iss >> parsed;
          if (iss.fail() || parsed <= 0.0) return false;
          c.topo.link_gbps = parsed;
          return true;
        },
        [](const SystemConfig& c) {
          std::ostringstream oss;
          oss << c.topo.link_gbps;
          return oss.str();
        }};
    k["topo.msg_bytes"] = Key{
        [](SystemConfig& c, const std::string& v) {
          std::istringstream iss(v);
          unsigned parsed{};
          iss >> parsed;
          if (iss.fail() || parsed == 0) return false;
          c.topo.msg_bytes = parsed;
          return true;
        },
        [](const SystemConfig& c) { return std::to_string(c.topo.msg_bytes); }};

    auto skip_bool = [](bool SkipConfig::* field) {
      return Key{
          [field](SystemConfig& c, const std::string& v) {
            if (v != "0" && v != "1") return false;
            c.skip.*field = v == "1";
            return true;
          },
          [field](const SystemConfig& c) {
            return std::string(c.skip.*field ? "1" : "0");
          },
          [] { return std::string("0 or 1"); }};
    };
    k["skip.enabled"] = skip_bool(&SkipConfig::enabled);
    k["skip.verify"] = skip_bool(&SkipConfig::verify);

    auto cache_keys = [&k](const std::string& prefix,
                           CacheConfig SystemConfig::* level) {
      k[prefix + ".size_kb"] =
          nested<std::uint64_t>(level, &CacheConfig::size_bytes, 1024);
      k[prefix + ".ways"] = nested<unsigned>(level, &CacheConfig::ways);
      k[prefix + ".latency"] =
          nested<unsigned>(level, &CacheConfig::latency_cycles);
      k[prefix + ".mshrs"] = nested<unsigned>(level, &CacheConfig::mshrs);
      k[prefix + ".replacement"] = Key{
          [level](SystemConfig& c, const std::string& v) {
            if (v == "lru") {
              (c.*level).replacement = ReplacementPolicy::kLru;
            } else if (v == "random") {
              (c.*level).replacement = ReplacementPolicy::kRandom;
            } else if (v == "srrip") {
              (c.*level).replacement = ReplacementPolicy::kSrrip;
            } else {
              return false;
            }
            return true;
          },
          [level](const SystemConfig& c) {
            return std::string(to_string((c.*level).replacement));
          }};
    };
    cache_keys("l1", &SystemConfig::l1);
    cache_keys("l2", &SystemConfig::l2);
    cache_keys("llc", &SystemConfig::llc);

    k["core.issue_width"] =
        nested<unsigned>(&SystemConfig::core, &CoreConfig::issue_width);
    k["core.rob"] =
        nested<unsigned>(&SystemConfig::core, &CoreConfig::rob_entries);
    k["core.store_buffer"] = nested<unsigned>(
        &SystemConfig::core, &CoreConfig::store_buffer_entries);

    k["ntc.size_bytes"] =
        nested<std::uint64_t>(&SystemConfig::ntc, &TxCacheConfig::size_bytes);
    k["ntc.latency"] =
        nested<unsigned>(&SystemConfig::ntc, &TxCacheConfig::latency_cycles);
    k["ntc.threshold"] = nested<double>(&SystemConfig::ntc,
                                        &TxCacheConfig::overflow_threshold);
    k["ntc.drain_per_cycle"] =
        nested<unsigned>(&SystemConfig::ntc, &TxCacheConfig::drain_per_cycle);

    auto bool_key = [](bool ServiceConfig::* field) {
      return Key{
          [field](SystemConfig& c, const std::string& v) {
            if (v != "0" && v != "1") return false;
            c.service.*field = v == "1";
            return true;
          },
          [field](const SystemConfig& c) {
            return std::string(c.service.*field ? "1" : "0");
          },
          [] { return std::string("0 or 1"); }};
    };
    k["serve.enabled"] = bool_key(&ServiceConfig::enabled);
    k["serve.open_loop"] = bool_key(&ServiceConfig::open_loop);
    k["serve.poisson"] = bool_key(&ServiceConfig::poisson);
    k["serve.rate"] =
        nested<double>(&SystemConfig::service, &ServiceConfig::rate);
    k["serve.requests"] =
        nested<std::uint64_t>(&SystemConfig::service, &ServiceConfig::requests);

    k["crash.points"] =
        nested<std::uint64_t>(&SystemConfig::crash, &CrashCampaignConfig::points);
    k["crash.seeds"] =
        nested<unsigned>(&SystemConfig::crash, &CrashCampaignConfig::seeds);
    k["crash.ops"] =
        nested<std::uint64_t>(&SystemConfig::crash, &CrashCampaignConfig::ops);
    k["crash.setup"] =
        nested<std::uint64_t>(&SystemConfig::crash, &CrashCampaignConfig::setup);
    k["crash.minimize"] = Key{
        [](SystemConfig& c, const std::string& v) {
          if (v != "0" && v != "1") return false;
          c.crash.minimize = v == "1";
          return true;
        },
        [](const SystemConfig& c) {
          return std::string(c.crash.minimize ? "1" : "0");
        },
        [] { return std::string("0 or 1"); }};

    auto mc_keys = [&k](const std::string& prefix,
                        MemCtrlConfig SystemConfig::* mc) {
      k[prefix + ".read_queue"] =
          nested<unsigned>(mc, &MemCtrlConfig::read_queue);
      k[prefix + ".write_queue"] =
          nested<unsigned>(mc, &MemCtrlConfig::write_queue);
      k[prefix + ".drain_high"] =
          nested<double>(mc, &MemCtrlConfig::drain_high_watermark);
      k[prefix + ".drain_low"] =
          nested<double>(mc, &MemCtrlConfig::drain_low_watermark);
      k[prefix + ".ranks"] = nested<unsigned>(mc, &MemCtrlConfig::ranks);
      k[prefix + ".banks"] =
          nested<unsigned>(mc, &MemCtrlConfig::banks_per_rank);
      k[prefix + ".channels"] =
          nested<unsigned>(mc, &MemCtrlConfig::channels);
      k[prefix + ".bus_latency"] =
          nested<unsigned>(mc, &MemCtrlConfig::bus_latency);
      k[prefix + ".refresh_interval"] =
          nested<Cycle>(mc, &MemCtrlConfig::refresh_interval);
      k[prefix + ".refresh_cycles"] =
          nested<Cycle>(mc, &MemCtrlConfig::refresh_cycles);
      k[prefix + ".tfaw"] = nested<Cycle>(mc, &MemCtrlConfig::tfaw);
      k[prefix + ".twtr"] = nested<Cycle>(mc, &MemCtrlConfig::twtr);
    };
    mc_keys("nvm", &SystemConfig::nvm);
    mc_keys("dram", &SystemConfig::dram);
    return k;
  }();
  return keys;
}

}  // namespace

bool parse_mechanism(const std::string& name, Mechanism& out) {
  return persist::DomainRegistry::instance().parse(name, out);
}

bool parse_check_mode(const std::string& value, CheckMode& out) {
  if (value == "off" || value == "0") {
    out = CheckMode::kOff;
  } else if (value == "collect" || value == "1") {
    out = CheckMode::kCollect;
  } else if (value == "fatal") {
    out = CheckMode::kFatal;
  } else {
    return false;
  }
  return true;
}

CheckMode check_mode_from_env(CheckMode configured) {
  const char* env = std::getenv("NTCSIM_CHECK");
  if (env == nullptr) return configured;
  CheckMode mode = configured;
  parse_check_mode(env, mode);
  return mode;
}

bool parse_workload(const std::string& name, WorkloadKind& out) {
  for (WorkloadKind k :
       {WorkloadKind::kGraph, WorkloadKind::kRbtree, WorkloadKind::kSps,
        WorkloadKind::kBtree, WorkloadKind::kHashtable,
        WorkloadKind::kQueue, WorkloadKind::kSkiplist}) {
    if (name == to_string(k)) {
      out = k;
      return true;
    }
  }
  return false;
}

ConfigParseResult apply_config_line(const std::string& raw,
                                    SystemConfig& cfg) {
  const std::string no_comment = raw.substr(0, raw.find('#'));
  const std::string line = trim(no_comment);
  if (line.empty()) return {};
  const std::size_t eq = line.find('=');
  if (eq == std::string::npos) {
    return {false, "expected `key = value`: \"" + line + "\""};
  }
  const std::string key = trim(line.substr(0, eq));
  const std::string value = trim(line.substr(eq + 1));
  const auto& keys = registry();
  auto it = keys.find(key);
  if (it == keys.end()) {
    return {false, "unknown configuration key \"" + key + "\""};
  }
  if (!it->second.set(cfg, value)) {
    std::string error =
        "invalid value \"" + value + "\" for key \"" + key + "\"";
    if (it->second.hint) error += "; " + it->second.hint();
    return {false, std::move(error)};
  }
  return {};
}

ConfigParseResult apply_config(std::istream& is, SystemConfig& cfg) {
  std::string line;
  int lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    ConfigParseResult r = apply_config_line(line, cfg);
    if (!r.ok) {
      r.error = "line " + std::to_string(lineno) + ": " + r.error;
      return r;
    }
  }
  return {};
}

void write_config(std::ostream& os, const SystemConfig& cfg) {
  for (const auto& [key, accessors] : registry()) {
    os << key << " = " << accessors.get(cfg) << '\n';
  }
}

}  // namespace ntcsim::sim
