// Textual configuration for the simulator: a small INI-style `key = value`
// format covering the knobs an experimenter actually sweeps, so machines
// can be described in files instead of recompiled code. `#` starts a
// comment; unknown keys are hard errors (silent typos corrupt experiments).
//
//   mechanism      = tc            # any registered domain; see
//                                  # `ntcsim --list-mechanisms`
//   cores          = 4
//   ghz            = 2.0
//   l1.size_kb     = 32
//   l1.ways        = 4
//   l1.latency     = 1             # CPU cycles
//   l2.size_kb     = 256
//   llc.size_kb    = 2048
//   ntc.size_bytes = 4096
//   ntc.latency    = 1
//   ntc.threshold  = 0.9
//   nvm.read_queue = 8
//   nvm.write_queue= 64
//   nvm.drain_high = 0.8
//   dram.refresh_interval = 15600
//   ...
#pragma once

#include <iosfwd>
#include <string>

#include "common/config.hpp"

namespace ntcsim::sim {

struct ConfigParseResult {
  bool ok = true;
  std::string error;  ///< First problem, with line number.
};

/// Apply `key = value` lines from `is` on top of `cfg` (so files are
/// overlays over a preset). Returns the first error, if any.
ConfigParseResult apply_config(std::istream& is, SystemConfig& cfg);

/// Apply a single `key=value` assignment (the CLI's `--set key=value`).
ConfigParseResult apply_config_line(const std::string& line,
                                    SystemConfig& cfg);

/// Serialize every supported key with its current value — the output
/// round-trips through apply_config.
void write_config(std::ostream& os, const SystemConfig& cfg);

/// Parse a mechanism name or alias against the persist::DomainRegistry
/// (case-insensitive); false and an unmodified `out` on unknown names.
bool parse_mechanism(const std::string& name, Mechanism& out);
bool parse_workload(const std::string& name, WorkloadKind& out);

/// The one checker-mode parser shared by `--check=MODE`, the `check`
/// config key and the NTCSIM_CHECK environment override, so all three
/// agree on accepted spellings: "off"/"0", "collect"/"1", "fatal".
/// False and an unmodified `out` on anything else.
bool parse_check_mode(const std::string& value, CheckMode& out);

/// `configured` with the NTCSIM_CHECK environment override applied
/// (parse_check_mode spellings; unset or unparsable values leave the
/// configured mode in force).
CheckMode check_mode_from_env(CheckMode configured);

}  // namespace ntcsim::sim
