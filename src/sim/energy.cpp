#include "sim/energy.hpp"
// ntclint-suppress-file(hot-stats): post-run energy model — runs once per
// finished cell over the final StatSet, never inside the simulated loop, so
// by-name counter reads are the right interface here.

#include <string>

namespace ntcsim::sim {

EnergyBreakdown estimate_energy(const StatSet& stats, unsigned cores,
                                bool llc_nonvolatile,
                                std::uint64_t committed_txs,
                                const EnergyParams& p) {
  EnergyBreakdown e;

  const double l1_accesses = static_cast<double>(
      stats.counter_value("l1.hits") + stats.counter_value("l1.misses"));
  const double l2_accesses = static_cast<double>(
      stats.counter_value("l2.hits") + stats.counter_value("l2.misses"));
  const double llc_reads = static_cast<double>(
      stats.counter_value("llc.hits") + stats.counter_value("llc.misses"));
  const double llc_writes =
      static_cast<double>(stats.counter_value("llc.writebacks"));

  e.l1_nj = l1_accesses * p.l1_access;
  e.l2_nj = l2_accesses * p.l2_access;
  if (llc_nonvolatile) {
    e.llc_nj = llc_reads * p.llc_sttram_read + llc_writes * p.llc_sttram_write;
  } else {
    e.llc_nj = (llc_reads + llc_writes) * p.llc_sram_access;
  }

  double ntc_events = 0;
  for (unsigned c = 0; c < cores; ++c) {
    const std::string prefix = "ntc" + std::to_string(c);
    ntc_events += static_cast<double>(
        stats.counter_value(prefix + ".writes") +
        stats.counter_value(prefix + ".merges") +
        stats.counter_value(prefix + ".issued") +
        stats.counter_value(prefix + ".acks") +
        stats.counter_value(prefix + ".probe_hits") +
        stats.counter_value(prefix + ".probe_misses"));
  }
  e.ntc_nj = ntc_events * p.ntc_access;

  e.dram_nj = static_cast<double>(stats.counter_value("dram.reads") +
                                  stats.counter_value("dram.writes")) *
                  p.dram_line +
              static_cast<double>(stats.counter_value("dram.refreshes")) *
                  p.dram_refresh;
  e.nvm_nj =
      static_cast<double>(stats.counter_value("nvm.reads")) * p.nvm_line_read +
      static_cast<double>(stats.counter_value("nvm.writes")) *
          p.nvm_line_write;

  e.total_nj = e.l1_nj + e.l2_nj + e.llc_nj + e.ntc_nj + e.dram_nj + e.nvm_nj;
  if (committed_txs > 0) {
    e.per_tx_nj = e.total_nj / static_cast<double>(committed_txs);
  }
  return e;
}

}  // namespace ntcsim::sim
