// Post-run energy estimation (extension beyond the paper): event counts
// from the statistics registry weighted by per-access energies typical of
// the paper's technology points (32 nm SRAM caches, DDR3, STT-RAM with its
// expensive writes). Useful for the classic persistent-memory trade-off:
// SP's logging doubles NVM write energy, TC adds NTC accesses but keeps the
// hierarchy untouched, Kiln moves energy into its STT-RAM LLC.
#pragma once

#include <cstdint>

#include "common/config.hpp"
#include "common/stats.hpp"

namespace ntcsim::sim {

/// Energy per event in nanojoules. Defaults are literature-typical values
/// (CACTI-class estimates at the paper's technology points); swap in your
/// own numbers for real studies.
struct EnergyParams {
  double l1_access = 0.05;
  double l2_access = 0.35;
  double llc_sram_access = 1.6;
  double llc_sttram_read = 1.1;   ///< Kiln NV-LLC: cheaper reads...
  double llc_sttram_write = 3.2;  ///< ...but costly magnetic writes.
  double ntc_access = 0.12;       ///< 4 KB STT-RAM CAM-FIFO op.
  double dram_line = 12.0;        ///< Per 64 B line transferred.
  double dram_refresh = 40.0;     ///< Per rank refresh operation.
  double nvm_line_read = 8.0;
  double nvm_line_write = 38.0;   ///< STT-RAM write energy dominates.
};

struct EnergyBreakdown {
  double l1_nj = 0;
  double l2_nj = 0;
  double llc_nj = 0;
  double ntc_nj = 0;
  double dram_nj = 0;
  double nvm_nj = 0;
  double total_nj = 0;
  double per_tx_nj = 0;  ///< total / committed transactions.
};

/// Derive the memory-system energy of a finished run from its statistics.
/// `llc_nonvolatile` selects the Kiln STT-RAM LLC energies.
EnergyBreakdown estimate_energy(const StatSet& stats, unsigned cores,
                                bool llc_nonvolatile,
                                std::uint64_t committed_txs,
                                const EnergyParams& p = {});

}  // namespace ntcsim::sim
