#include "sim/experiment.hpp"

#include <cmath>
#include <cstdlib>
#include <stdexcept>

#include <chrono>

#include "common/assert.hpp"
#include "common/table.hpp"
#include "persist/domain.hpp"
#include "recovery/journal.hpp"
#include "sim/profiler.hpp"
#include "sim/sweep.hpp"
#include "workload/service.hpp"

namespace ntcsim::sim {

std::vector<Mechanism> matrix_mechanisms() {
  return persist::DomainRegistry::instance().matrix_mechanisms();
}

std::string_view mechanism_label(Mechanism mech) {
  return persist::DomainRegistry::instance().display_name(mech);
}

Metrics run_cell(Mechanism mech, WorkloadKind wl, const SystemConfig& base,
                 const ExperimentOptions& opts) {
  SystemConfig cfg = base;
  cfg.mechanism = mech;
  cfg.track_recovery_state =
      opts.track_recovery ||
      persist::policy_for(mech).needs_recovery_images;
  // Even when the caller skips recovery *checking*, most mechanisms need
  // the volatile/durable images to carry functional payloads (their
  // recovery paths read them); Optimal does not.

  workload::WorkloadParams params = workload::default_params(wl);
  params.seed = opts.seed;
  params.ops = static_cast<std::size_t>(
      static_cast<double>(params.ops) * opts.scale);
  if (params.ops == 0) params.ops = 1;
  params.setup_elems = static_cast<std::size_t>(
      static_cast<double>(params.setup_elems) * opts.setup_scale);
  if (params.setup_elems == 0) params.setup_elems = 1;
  if (cfg.service.enabled && cfg.service.requests > 0) {
    // Service cells pin the request count explicitly; --scale untouched.
    params.ops = cfg.service.requests;
  }

  // ntclint-suppress(determinism): self-profiling wall time, never simulated state
  const auto cell_start = std::chrono::steady_clock::now();
  const unsigned nodes = std::max(1u, cfg.topo.nodes);
  // Per-node generation: each node is its own shard with its own heap and
  // a node-mixed workload seed, so shards hold distinct data. Node 0 uses
  // params.seed untouched — single-node cells reproduce the pre-cluster
  // traces bit-for-bit.
  std::vector<std::vector<workload::TraceBundle>> bundles(nodes);
  {
    NTC_PROF_SCOPE("cell.generate");
    for (NodeId n = 0; n < nodes; ++n) {
      workload::SimHeap heap(cfg.address_space, cfg.cores);
      workload::WorkloadParams p = params;
      p.seed = params.seed + n * 0x9e3779b9ULL;
      for (CoreId c = 0; c < cfg.cores; ++c) {
        bundles[n].push_back(workload::generate_phased(p, c, heap, nullptr));
        // Open-loop service: stamp arrival cycles (relative to the
        // measured phase's start; the core rebases them at bind time).
        workload::stamp_service_arrivals(bundles[n].back().measured,
                                         cfg.service, c, params.seed, n);
      }
    }
  }
  // Shard the request stream: pick each request's entry node and charge
  // cross-shard traffic the interconnect round trip (stamp-time, so the
  // cell stays a pure function of its inputs).
  topo::RouteStats route;
  if (nodes > 1 && cfg.service.enabled && cfg.service.open_loop) {
    std::vector<std::vector<core::Trace*>> measured(nodes);
    for (NodeId n = 0; n < nodes; ++n) {
      for (CoreId c = 0; c < cfg.cores; ++c) {
        measured[n].push_back(&bundles[n][c].measured);
      }
    }
    route = topo::route_service_arrivals(measured, cfg.topo, cfg.ghz,
                                         params.seed);
  }
  System sys(cfg);
  auto require_finished = [&](const char* phase) {
    if (!sys.timed_out()) return;
    throw std::runtime_error(
        std::string("cell ") + std::string(mechanism_label(mech)) + "/" +
        std::string(to_string(wl)) + " hit the cycle cap in the " + phase +
        " phase (deadlock or under-budgeted run)");
  };
  {
    // Phase 1: build the structures (warm caches/NTC/NVM), unmeasured.
    NTC_PROF_SCOPE("cell.setup");
    for (NodeId n = 0; n < nodes; ++n) {
      for (CoreId c = 0; c < cfg.cores; ++c) {
        sys.load_trace(n, c, std::move(bundles[n][c].setup));
      }
    }
    sys.run();
    require_finished("setup");
  }
  sys.reset_stats();
  sys.note_route_stats(route);
  {
    // Phase 2: the steady state the paper's figures report.
    NTC_PROF_SCOPE("cell.measured");
    for (NodeId n = 0; n < nodes; ++n) {
      for (CoreId c = 0; c < cfg.cores; ++c) {
        sys.load_trace(n, c, std::move(bundles[n][c].measured));
      }
    }
    sys.run();
    require_finished("measured");
  }
  if (Profiler::enabled()) {
    // ntclint-suppress(determinism): self-profiling wall time, never simulated state
    const auto cell_end = std::chrono::steady_clock::now();
    Profiler::add_cell(
        std::string(mechanism_label(mech)) + "/" + std::string(to_string(wl)),
        std::chrono::duration<double>(cell_end - cell_start).count());
  }
  return sys.metrics();
}

Matrix run_matrix(const SystemConfig& base, const ExperimentOptions& opts) {
  const std::vector<Mechanism> mechs = matrix_mechanisms();
  std::vector<JobSpec> specs;
  for (WorkloadKind wl : kAllWorkloads) {
    for (Mechanism mech : mechs) {
      specs.push_back({mech, wl, base, opts});
    }
  }
  const std::vector<Metrics> cells = run_sweep(specs, opts.jobs);
  Matrix m;
  std::size_t i = 0;
  for (WorkloadKind wl : kAllWorkloads) {
    for (Mechanism mech : mechs) {
      m[wl][mech] = cells[i++];
    }
  }
  return m;
}

double geometric_mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double log_sum = 0.0;
  for (double x : v) {
    NTC_ASSERT(x > 0.0, "geometric mean requires positive values");
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(v.size()));
}

void print_figure(std::ostream& os, const std::string& title,
                  const Matrix& matrix, double (*metric)(const Metrics&),
                  const std::string& caption) {
  os << title << '\n' << caption << '\n';
  // Columns are the mechanisms actually present in this matrix (a caller
  // may build a custom one), ordered as the registry's matrix columns.
  std::vector<Mechanism> mechs;
  for (Mechanism mech : matrix_mechanisms()) {
    if (!matrix.empty() && matrix.begin()->second.count(mech) > 0) {
      mechs.push_back(mech);
    }
  }
  std::vector<std::string> header{"workload"};
  for (Mechanism mech : mechs) {
    header.emplace_back(mechanism_label(mech));
  }
  Table table(std::move(header));

  std::map<Mechanism, std::vector<double>> columns;
  for (const auto& [wl, row] : matrix) {
    const double base = metric(row.at(Mechanism::kOptimal));
    std::vector<double> cells;
    for (Mechanism mech : mechs) {
      const double v = metric(row.at(mech));
      const double norm = base == 0.0 ? 0.0 : v / base;
      cells.push_back(norm);
      if (norm > 0.0) columns[mech].push_back(norm);
    }
    table.add_row(std::string(to_string(wl)), cells);
  }
  std::vector<double> gmeans;
  for (Mechanism mech : mechs) {
    gmeans.push_back(columns[mech].empty() ? 0.0
                                           : geometric_mean(columns[mech]));
  }
  table.add_row("gmean", gmeans);
  table.print(os);
  os << '\n';
}

ExperimentOptions parse_bench_args(int argc, char** argv) {
  ExperimentOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    // Flags take `--flag=value` or `--flag value`.
    auto flag_value = [&](const char* flag) -> const char* {
      const std::string eq = std::string(flag) + "=";
      if (a.rfind(eq, 0) == 0) return argv[i] + eq.size();
      if (a == flag && i + 1 < argc) return argv[++i];
      return nullptr;
    };
    if (const char* v = flag_value("--jobs")) {
      const long n = std::atol(v);
      if (n > 0) opts.jobs = static_cast<unsigned>(n);
    } else if (const char* v = flag_value("--scale")) {
      const double s = std::atof(v);
      if (s > 0.0) opts.scale = s;
    } else if (a == "--profile") {
      opts.profile = true;
    } else if (a.rfind("--profile=", 0) == 0) {
      opts.profile = true;
      opts.profile_out = a.substr(10);
    } else if (a.rfind("--", 0) != 0) {
      const double s = std::atof(a.c_str());
      if (s > 0.0) opts.scale = s;
    }
  }
  if (const char* env = std::getenv("NTCSIM_SCALE")) {
    const double s = std::atof(env);
    if (s > 0.0) opts.scale = s;
  }
  // opts.jobs == 0 ("auto") defers to NTCSIM_JOBS / hardware_concurrency
  // inside default_jobs(), so the flag wins over the environment.
  return opts;
}

}  // namespace ntcsim::sim
