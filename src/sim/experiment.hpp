// Experiment runner used by the bench harness: builds the mechanism x
// workload matrix of the paper's §5 and provides the normalization and
// printing helpers the figures need.
#pragma once

#include <map>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/config.hpp"
#include "sim/metrics.hpp"
#include "sim/system.hpp"
#include "workload/workloads.hpp"

namespace ntcsim::sim {

/// The evaluation-matrix mechanism columns, in figure order (SP, TC, Kiln,
/// Optimal, then any registered extensions). Enumerated from the
/// persist::DomainRegistry, so mechanisms added there appear in --matrix
/// and the sweep CSVs with no changes here.
std::vector<Mechanism> matrix_mechanisms();

/// Figure/CSV label for any registered mechanism ("TC", "TC-NODRAIN", ...);
/// unlike to_string(Mechanism) this also covers registry-defined ids.
std::string_view mechanism_label(Mechanism mech);

inline constexpr WorkloadKind kAllWorkloads[] = {
    WorkloadKind::kGraph, WorkloadKind::kRbtree, WorkloadKind::kSps,
    WorkloadKind::kBtree, WorkloadKind::kHashtable};

struct ExperimentOptions {
  /// Scale factor on measured ops, letting bench binaries offer a quick
  /// mode (`<bench> 0.2` or `--scale=0.2`).
  double scale = 1.0;
  /// Scale factor on the setup-phase structure size. Defaults to full
  /// size (the figures' cache pressure depends on it); tests shrink it to
  /// keep whole-matrix runs cheap.
  double setup_scale = 1.0;
  std::uint64_t seed = 1;
  /// Skip functional recovery tracking for pure performance sweeps (~15 %
  /// faster); the figure benches leave it on.
  bool track_recovery = false;
  /// Worker threads for run_matrix / run_sweep. 0 = auto (NTCSIM_JOBS or
  /// hardware_concurrency, see sweep.hpp); 1 = the serial path.
  unsigned jobs = 0;
  /// Self-profiling (`--profile[=FILE]`): time the simulator's own phases
  /// and emit a machine-readable report when the sweep finishes. Purely
  /// observational — simulated metrics are unaffected.
  bool profile = false;
  std::string profile_out = "BENCH_selfperf.json";
};

/// One cell of the evaluation matrix.
Metrics run_cell(Mechanism mech, WorkloadKind wl, const SystemConfig& base,
                 const ExperimentOptions& opts = {});

/// Full matrix; cells[workload][mechanism]. Cells run on opts.jobs worker
/// threads (see sweep.hpp); results are bit-identical to the serial path
/// because every cell is an independent simulation.
using Matrix = std::map<WorkloadKind, std::map<Mechanism, Metrics>>;
Matrix run_matrix(const SystemConfig& base, const ExperimentOptions& opts = {});

/// Normalized-to-Optimal figure printer: one row per workload plus a
/// geometric-mean row, one column per mechanism. `metric` extracts the
/// plotted quantity; `higher_is_better` only affects the caption.
void print_figure(std::ostream& os, const std::string& title,
                  const Matrix& matrix, double (*metric)(const Metrics&),
                  const std::string& caption);

/// Parse bench argv: optional positional scale factor, `--scale=X` (or
/// `--scale X`), `--jobs=N`/`--jobs N` (worker threads; NTCSIM_JOBS is the
/// env equivalent, the flag wins), and `--profile[=FILE]` (self-perf
/// report, default BENCH_selfperf.json). NTCSIM_SCALE overrides any argv
/// scale.
ExperimentOptions parse_bench_args(int argc, char** argv);

double geometric_mean(const std::vector<double>& v);

}  // namespace ntcsim::sim
