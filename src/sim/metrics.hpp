// Metrics extracted from one run — the quantities the paper's figures plot.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace ntcsim::sim {

struct Metrics {
  Cycle cycles = 0;
  std::uint64_t retired_uops = 0;
  std::uint64_t committed_txs = 0;

  double ipc = 0.0;               ///< Fig. 6 numerator.
  double tx_per_kilocycle = 0.0;  ///< Fig. 7 (throughput).
  double llc_miss_rate = 0.0;     ///< Fig. 8.
  std::uint64_t nvm_writes = 0;   ///< Fig. 9 (write traffic to NVM).
  double pload_latency = 0.0;     ///< Fig. 10 (persistent load latency).
  /// Distribution edges of persistent-load latency (power-of-two bucket
  /// upper bounds): the tail behaviour behind Fig. 10's averages.
  std::uint64_t pload_latency_p50 = 0;
  std::uint64_t pload_latency_p99 = 0;

  /// Service-mode request accounting (one request == one transaction).
  /// Populated on every run; in open-loop service mode the latency counts
  /// from the stamped arrival (queueing included), otherwise from fetch.
  std::uint64_t requests = 0;
  double req_latency = 0.0;  ///< Mean request latency, cycles.
  /// Tail percentiles of request latency (power-of-two bucket upper
  /// edges from the merged per-core histograms).
  std::uint64_t req_latency_p50 = 0;
  std::uint64_t req_latency_p95 = 0;
  std::uint64_t req_latency_p99 = 0;
  std::uint64_t req_latency_p999 = 0;

  // Secondary diagnostics.
  std::uint64_t nvm_reads = 0;
  std::uint64_t dram_writes = 0;
  std::uint64_t llc_wb_dropped = 0;
  std::uint64_t ntc_spills = 0;
  double ntc_stall_frac = 0.0;  ///< Fraction of core-cycles stalled on a full NTC.
  /// Persistence-order checker violations (0 when the checker is off).
  /// Diagnostic only — deliberately kept out of the results CSV.
  std::uint64_t check_violations = 0;

  // Cluster topology (topo.nodes > 1; all empty/zero on single-node runs,
  // keeping the single-node CSV byte-identical to the pre-cluster
  // simulator). Diagnostic — not part of the aggregate CSV row.
  /// Per-node breakdown, indexed by NodeId. Empty on single-node runs.
  std::vector<Metrics> per_node;
  /// Service requests that entered the cluster at a different node than
  /// the shard holding their data and paid the interconnect round trip.
  std::uint64_t xshard_requests = 0;
  /// Mean one-way interconnect delay (forward path, queueing included)
  /// over cross-shard requests, cycles. 0 when xshard_requests == 0.
  double xshard_fwd_delay = 0.0;
};

}  // namespace ntcsim::sim
