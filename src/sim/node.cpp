#include "sim/node.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "common/assert.hpp"
#include "persist/sp_transform.hpp"
#include "sim/config_io.hpp"
#include "sim/profiler.hpp"

namespace ntcsim::sim {

Node::Node(const NodeConfig& cfg, NodeId id, unsigned total_nodes,
           EventQueue& events, const Cycle* clock, SystemOptions opts,
           persist::KilnConfig kiln_cfg)
    : cfg_(cfg),
      id_(id),
      opts_(opts),
      domain_(persist::DomainRegistry::instance().create(cfg.mechanism)),
      policy_(domain_->policy()) {
  mem_ = std::make_unique<mem::MemorySystem>(cfg_, events, stats_);
  mem_->set_adr_domain(policy_.adr_domain);
  if (cfg_.track_recovery_state) {
    durable_ = std::make_unique<recovery::DurableState>(stats_);
    mem_->set_nvm_observer(durable_.get());
    vimage_ = std::make_unique<recovery::VolatileImage>();
  }
  hier_ = std::make_unique<cache::Hierarchy>(cfg_, *mem_, events, stats_,
                                             vimage_.get());

  hier_->hooks().drop_persistent_llc_writeback =
      policy_.drop_persistent_llc_writeback;
  hier_->hooks().llc_nonvolatile = policy_.llc_nonvolatile;

  if (policy_.route_stores_to_ntc) {
    for (unsigned c = 0; c < cfg_.cores; ++c) {
      ntcs_.push_back(std::make_unique<txcache::TxCache>(
          "ntc" + std::to_string(c), c, cfg_.ntc, cfg_.address_space, *mem_,
          stats_));
    }
    if (policy_.probe_ntc_on_llc_miss) {
      hier_->hooks().ntc_probe = [this](CoreId core, Addr line) {
        // The requester's private NTC holds its own newest data; with
        // core-partitioned heaps other NTCs never match, but probe them
        // for completeness (shared-address programs).
        if (ntcs_[core]->probe(line)) return true;
        for (unsigned c = 0; c < ntcs_.size(); ++c) {
          if (c != core && ntcs_[c]->probe(line)) return true;
        }
        return false;
      };
    }
  }

  if (policy_.flush_on_commit) {
    kiln_ = std::make_unique<persist::KilnUnit>(
        cfg_.cores, kiln_cfg, *hier_, events, durable_.get(), stats_);
    hier_->hooks().kiln_pin_query = [this](CoreId core, Addr line) {
      return kiln_->pin_query(core, line);
    };
  }

  // The generic machinery the domain's Policy asked for exists; attach the
  // domain to it before any core can call a hook.
  {
    persist::DomainWiring wiring;
    wiring.cfg = &cfg_;
    for (auto& n : ntcs_) wiring.ntcs.push_back(n.get());
    wiring.engine = kiln_.get();
    wiring.stats = &stats_;
    domain_->bind(wiring);
  }

  for (unsigned c = 0; c < cfg_.cores; ++c) {
    cores_.push_back(std::make_unique<core::Core>(c, cfg_.core, *domain_,
                                                  *hier_, stats_));
  }
  traces_.resize(cfg_.cores);

  for (unsigned c = 0; c < cfg_.cores; ++c) {
    const std::string p = "core" + std::to_string(c);
    m_retired_.emplace_back(stats_, p + ".retired");
    m_txs_.emplace_back(stats_, p + ".txs");
    m_ntc_stalls_.emplace_back(stats_, p + ".ntc_stall_cycles");
    m_pload_lat_.emplace_back(stats_, p + ".pload_latency");
    m_pload_hist_.emplace_back(stats_, p + ".pload_latency_hist");
    m_req_lat_.emplace_back(stats_, p + ".req_latency");
    m_req_hist_.emplace_back(stats_, p + ".req_latency_hist");
  }
  for (unsigned c = 0; c < ntcs_.size(); ++c) {
    m_ntc_spills_.emplace_back(stats_, "ntc" + std::to_string(c) + ".spills");
  }
  m_llc_hits_ = CounterHandle(stats_, "llc.hits");
  m_llc_misses_ = CounterHandle(stats_, "llc.misses");
  m_llc_wb_dropped_ = CounterHandle(stats_, "llc.wb_dropped");
  m_nvm_writes_ = CounterHandle(stats_, "nvm.writes");
  m_nvm_reads_ = CounterHandle(stats_, "nvm.reads");
  m_dram_writes_ = CounterHandle(stats_, "dram.writes");

  const CheckMode mode = opts_.force_check_off
                             ? CheckMode::kOff
                             : check_mode_from_env(cfg_.check);
  if (mode != CheckMode::kOff) {
    check::CheckerRules rules = domain_->checker_rules();
    if (policy_.software_logging && !opts_.sp_ordered) {
      // The Fig. 2c negative control breaks WAL ordering on purpose; the
      // crash tests assert the *recovery* failure, not a checker abort.
      rules.log_before_data = false;
    }
    if (rules.any()) {
      checker_ = std::make_unique<check::PersistOrderChecker>(
          rules, cfg_.address_space, cfg_.cores, mode == CheckMode::kFatal);
      checker_->set_clock(clock);
      if (total_nodes > 1) {
        checker_->set_scope("node" + std::to_string(id_) + "/");
      }
      mem_->set_check_sink(checker_.get());
      hier_->set_check_sink(checker_.get());
      for (auto& n : ntcs_) n->set_check_sink(checker_.get());
      if (kiln_ != nullptr) kiln_->set_check_sink(checker_.get());
      for (auto& c : cores_) c->set_check_sink(checker_.get());
    }
  }
}

void Node::tap_events(check::CheckSink* sink) {
  NTC_ASSERT(checker_ == nullptr,
             "tap_events needs the check sinks free: run with check off");
  mem_->set_check_sink(sink);
  hier_->set_check_sink(sink);
  for (auto& n : ntcs_) n->set_check_sink(sink);
  if (kiln_ != nullptr) kiln_->set_check_sink(sink);
  for (auto& c : cores_) c->set_check_sink(sink);
}

void Node::load_trace(CoreId core, core::Trace trace) {
  NTC_ASSERT(core < cfg_.cores, "trace loaded on a nonexistent core");
  if (policy_.software_logging) {
    persist::SpOptions sp;
    sp.ordered = opts_.sp_ordered;
    sp.adr = policy_.adr_domain;
    domain_->adjust_sp_options(sp);
    traces_[core] =
        persist::transform_sp(trace, core, cfg_.address_space, sp);
  } else {
    traces_[core] = std::move(trace);
  }
  cores_[core]->bind_trace(&traces_[core]);
}

void Node::tick(Cycle now) {
  // The per-component ProfScopes cost one relaxed load each when profiling
  // is off; under --profile they produce the step.* phase breakdown.
  {
    // A finished core's tick is a no-op (nothing to fetch, every buffer
    // empty); skipping it keeps uneven multi-core runs from paying for
    // cores that retired early.
    NTC_PROF_SCOPE("step.cores");
    for (auto& c : cores_) {
      if (!c->finished()) c->tick(now);
    }
  }
  {
    NTC_PROF_SCOPE("step.ntc");
    for (auto& n : ntcs_) n->tick(now);
  }
  if (kiln_ != nullptr) {
    NTC_PROF_SCOPE("step.kiln");
    kiln_->tick(now, *mem_);
  }
  {
    NTC_PROF_SCOPE("step.hierarchy");
    hier_->tick(now);
  }
  {
    NTC_PROF_SCOPE("step.memory");
    mem_->tick(now);
  }
}

Cycle Node::next_event_cycle(Cycle now) const {
  // Same component set tick() visits; a finished core is a permanent no-op
  // (tick() skips it). Early-out: once any component pins now + 1 the node
  // cannot jump, so the remaining queries are skipped.
  Cycle next = kNeverCycle;
  for (const auto& c : cores_) {
    if (c->finished()) continue;
    next = std::min(next, c->next_event_cycle(now));
    if (next <= now + 1) return next;
  }
  for (const auto& n : ntcs_) {
    next = std::min(next, n->next_event_cycle(now));
    if (next <= now + 1) return next;
  }
  if (kiln_ != nullptr) {
    next = std::min(next, kiln_->next_event_cycle(now));
    if (next <= now + 1) return next;
  }
  next = std::min(next, hier_->next_event_cycle(now));
  if (next <= now + 1) return next;
  return std::min(next, mem_->next_event_cycle(now));
}

bool Node::drained() const {
  for (const auto& c : cores_) {
    if (!c->finished()) return false;
  }
  if (!hier_->quiesced() || !mem_->idle()) return false;
  for (const auto& n : ntcs_) {
    if (!n->drained()) return false;
  }
  return true;
}

recovery::WordImage Node::crash_and_recover() const {
  NTC_ASSERT(durable_ != nullptr,
             "crash_and_recover requires track_recovery_state");
  return domain_->recover(*durable_);
}

Metrics Node::metrics(Cycle cycles) const {
  Metrics m;
  m.cycles = cycles;
  for (unsigned c = 0; c < cfg_.cores; ++c) {
    m.retired_uops += m_retired_[c]->value();
    m.committed_txs += m_txs_[c]->value();
  }
  if (m.cycles > 0) {
    m.ipc = static_cast<double>(m.retired_uops) / static_cast<double>(m.cycles);
    m.tx_per_kilocycle = 1000.0 * static_cast<double>(m.committed_txs) /
                         static_cast<double>(m.cycles);
  }
  const std::uint64_t hits = m_llc_hits_->value();
  const std::uint64_t misses = m_llc_misses_->value();
  if (hits + misses > 0) {
    m.llc_miss_rate =
        static_cast<double>(misses) / static_cast<double>(hits + misses);
  }
  m.nvm_writes = m_nvm_writes_->value();
  m.nvm_reads = m_nvm_reads_->value();
  m.dram_writes = m_dram_writes_->value();
  m.llc_wb_dropped = m_llc_wb_dropped_->value();
  for (const CounterHandle& h : m_ntc_spills_) m.ntc_spills += h->value();

  double pload_sum = 0.0;
  std::uint64_t pload_n = 0;
  std::uint64_t ntc_stalls = 0;
  for (unsigned c = 0; c < cfg_.cores; ++c) {
    pload_sum += m_pload_lat_[c]->sum();
    pload_n += m_pload_lat_[c]->count();
    ntc_stalls += m_ntc_stalls_[c]->value();
  }
  if (pload_n > 0) m.pload_latency = pload_sum / static_cast<double>(pload_n);
  {
    // Percentiles from the merged per-core histograms (bucketed: edges are
    // power-of-two upper bounds).
    Histogram merged;
    for (unsigned c = 0; c < cfg_.cores; ++c) {
      merged.merge(*m_pload_hist_[c]);
    }
    if (merged.total() > 0) {
      m.pload_latency_p50 = merged.percentile_edge(50.0);
      m.pload_latency_p99 = merged.percentile_edge(99.0);
    }
  }
  if (m.cycles > 0) {
    m.ntc_stall_frac = static_cast<double>(ntc_stalls) /
                       static_cast<double>(m.cycles * cfg_.cores);
  }
  {
    double req_sum = 0.0;
    std::uint64_t req_n = 0;
    for (unsigned c = 0; c < cfg_.cores; ++c) {
      req_sum += m_req_lat_[c]->sum();
      req_n += m_req_lat_[c]->count();
    }
    m.requests = req_n;
    if (req_n > 0) m.req_latency = req_sum / static_cast<double>(req_n);
    const Histogram merged = request_latency_histogram();
    if (merged.total() > 0) {
      m.req_latency_p50 = merged.percentile_edge(50.0);
      m.req_latency_p95 = merged.percentile_edge(95.0);
      m.req_latency_p99 = merged.percentile_edge(99.0);
      m.req_latency_p999 = merged.percentile_edge(99.9);
    }
  }
  if (checker_ != nullptr) m.check_violations = checker_->violation_count();
  return m;
}

NodeRaw Node::raw() const {
  NodeRaw r;
  for (unsigned c = 0; c < cfg_.cores; ++c) {
    r.retired += m_retired_[c]->value();
    r.txs += m_txs_[c]->value();
    r.pload_sum += m_pload_lat_[c]->sum();
    r.pload_n += m_pload_lat_[c]->count();
    r.req_sum += m_req_lat_[c]->sum();
    r.req_n += m_req_lat_[c]->count();
    r.ntc_stalls += m_ntc_stalls_[c]->value();
    r.pload_hist.merge(*m_pload_hist_[c]);
    r.req_hist.merge(*m_req_hist_[c]);
  }
  r.llc_hits = m_llc_hits_->value();
  r.llc_misses = m_llc_misses_->value();
  r.nvm_writes = m_nvm_writes_->value();
  r.nvm_reads = m_nvm_reads_->value();
  r.dram_writes = m_dram_writes_->value();
  r.llc_wb_dropped = m_llc_wb_dropped_->value();
  for (const CounterHandle& h : m_ntc_spills_) r.ntc_spills += h->value();
  if (checker_ != nullptr) r.check_violations = checker_->violation_count();
  return r;
}

Histogram Node::request_latency_histogram() const {
  Histogram merged;
  for (unsigned c = 0; c < cfg_.cores; ++c) merged.merge(*m_req_hist_[c]);
  return merged;
}

}  // namespace ntcsim::sim
