// One node of a cluster: the paper's whole machine — cores + hierarchy +
// transaction caches + hybrid memory + the selected persistence domain —
// built from a NodeConfig and ticked by an owning sim::Cluster on a shared
// clock and event queue. The single-node cluster is the pre-cluster
// System, cycle-for-cycle.
#pragma once

#include <memory>
#include <vector>

#include "cache/hierarchy.hpp"
#include "check/persist_order_checker.hpp"
#include "common/config.hpp"
#include "common/event_queue.hpp"
#include "common/hot.hpp"
#include "common/stat_handle.hpp"
#include "common/stats.hpp"
#include "core/core.hpp"
#include "core/trace.hpp"
#include "mem/memory_system.hpp"
#include "persist/domain.hpp"
#include "persist/kiln_unit.hpp"
#include "persist/policy.hpp"
#include "recovery/images.hpp"
#include "recovery/recovery.hpp"
#include "sim/metrics.hpp"
#include "txcache/tx_cache.hpp"

namespace ntcsim::sim {

struct SystemOptions {
  /// SP only: emit the clwb/sfence/pcommit ordering (true, Fig. 2b) or the
  /// deliberately broken unordered variant (false, Fig. 2c) used as the
  /// negative control in crash tests.
  bool sp_ordered = true;
  /// Never install the persistence-order checker, ignoring both cfg.check
  /// and the NTCSIM_CHECK env override. The fault-injection campaign sets
  /// this: its verdicts come from the atomicity oracle, and it needs the
  /// CheckSink taps free for its own event recorder (tap_events()).
  bool force_check_off = false;
};

/// Raw statistic sums a Cluster needs to aggregate node metrics exactly
/// (same summation order and intermediate types as a single node uses).
struct NodeRaw {
  std::uint64_t retired = 0;
  std::uint64_t txs = 0;
  std::uint64_t llc_hits = 0;
  std::uint64_t llc_misses = 0;
  std::uint64_t nvm_writes = 0;
  std::uint64_t nvm_reads = 0;
  std::uint64_t dram_writes = 0;
  std::uint64_t llc_wb_dropped = 0;
  std::uint64_t ntc_spills = 0;
  std::uint64_t ntc_stalls = 0;
  double pload_sum = 0.0;
  std::uint64_t pload_n = 0;
  double req_sum = 0.0;
  std::uint64_t req_n = 0;
  Histogram pload_hist;  ///< Merged across this node's cores.
  Histogram req_hist;    ///< Merged across this node's cores.
  std::uint64_t check_violations = 0;
};

class Node {
 public:
  /// `events` and `clock` belong to the owning Cluster; `clock` must stay
  /// valid for the node's lifetime (the checker stamps cycles through it).
  Node(const NodeConfig& cfg, NodeId id, unsigned total_nodes,
       EventQueue& events, const Cycle* clock, SystemOptions opts,
       persist::KilnConfig kiln_cfg);

  /// Install a workload trace on one core. Applies the SP transform when
  /// the configured domain asks for software logging.
  void load_trace(CoreId core, core::Trace trace);

  /// One simulated cycle of every component, in the fixed order the
  /// pre-cluster System used (cores, NTCs, Kiln, hierarchy, memory). The
  /// Cluster drains the shared event queue and advances the clock.
  void tick(Cycle now);

  /// Every core retired its trace and all buffered effects (write-backs,
  /// NTC drains, flushes) reached memory. The shared event queue is the
  /// Cluster's to check.
  bool drained() const;

  /// Earliest cycle > now at which any component of this node could do
  /// work (min over the per-component quiescence contracts). The Cluster
  /// min-reduces this across nodes and the shared event queue to pick its
  /// jump target; see docs/ARCHITECTURE.md "Clock advance & quiescence".
  NTC_HOT Cycle next_event_cycle(Cycle now) const;

  /// Metrics over `cycles` elapsed since the last reset_stats() (the
  /// Cluster tracks the epoch; cycles are global).
  Metrics metrics(Cycle cycles) const;
  /// Raw sums for exact cross-node aggregation.
  NodeRaw raw() const;
  /// Merged per-core request-latency histogram since the last reset_stats().
  Histogram request_latency_histogram() const;
  void reset_stats() { stats_.reset(); }
  StatSet& stats() { return stats_; }
  const StatSet& stats() const { return stats_; }
  const NodeConfig& config() const { return cfg_; }
  NodeId id() const { return id_; }

  /// Simulate a power failure at the current cycle and run the configured
  /// domain's recovery procedure over what is durable on this node.
  recovery::WordImage crash_and_recover() const;

  core::Core& core(CoreId c) { return *cores_[c]; }
  txcache::TxCache* ntc(CoreId c) {
    return ntcs_.empty() ? nullptr : ntcs_[c].get();
  }
  cache::Hierarchy& hierarchy() { return *hier_; }
  mem::MemorySystem& memory() { return *mem_; }
  const persist::PersistenceDomain& domain() const { return *domain_; }
  const recovery::DurableState* durable() const { return durable_.get(); }
  /// The online persistence-order checker, or null when cfg.check (after
  /// the NTCSIM_CHECK env override) resolved to off or the domain declares
  /// no rules.
  const check::PersistOrderChecker* checker() const { return checker_.get(); }
  /// Route every component's check-event tap to an external sink (the
  /// fault-injection CrashPlanner records hazard cycles this way). Only
  /// legal when no checker was installed — components hold a single
  /// CheckSink*, so run such systems with check off.
  void tap_events(check::CheckSink* sink);

 private:
  NodeConfig cfg_;
  NodeId id_ = 0;
  SystemOptions opts_;
  std::unique_ptr<persist::PersistenceDomain> domain_;
  persist::Policy policy_;  ///< == domain_->policy(), cached.
  StatSet stats_;
  std::unique_ptr<mem::MemorySystem> mem_;
  std::unique_ptr<recovery::DurableState> durable_;
  std::unique_ptr<recovery::VolatileImage> vimage_;
  std::unique_ptr<cache::Hierarchy> hier_;
  std::vector<std::unique_ptr<txcache::TxCache>> ntcs_;
  std::unique_ptr<persist::KilnUnit> kiln_;
  std::vector<std::unique_ptr<core::Core>> cores_;
  std::unique_ptr<check::PersistOrderChecker> checker_;
  std::vector<core::Trace> traces_;

  // metrics() sources, resolved once at construction (the PR 2 stat-handle
  // pattern; components registered all of these in their constructors, so
  // resolving here creates nothing new). Per-core vectors are indexed by
  // CoreId.
  std::vector<CounterHandle> m_retired_, m_txs_, m_ntc_stalls_;
  std::vector<AccumulatorHandle> m_pload_lat_, m_req_lat_;
  std::vector<HistogramHandle> m_pload_hist_, m_req_hist_;
  std::vector<CounterHandle> m_ntc_spills_;  ///< One per NTC; empty otherwise.
  CounterHandle m_llc_hits_, m_llc_misses_, m_llc_wb_dropped_;
  CounterHandle m_nvm_writes_, m_nvm_reads_, m_dram_writes_;
};

}  // namespace ntcsim::sim
