#include "sim/profiler.hpp"
// ntclint-suppress-file(determinism): host wall-clock reads are this
// file's purpose (self-profiling); outputs never feed simulated state.

#include <cctype>
#include <fstream>
#include <mutex>
#include <ostream>

namespace ntcsim::sim {

namespace {

struct Registry {
  std::mutex mutex;
  std::vector<ProfSite*> sites;
  std::vector<Profiler::CellTime> cells;
};

Registry& registry() {
  static Registry r;  // function-local: safe across static-init order
  return r;
}

}  // namespace

std::atomic<bool> Profiler::enabled_{false};
std::atomic<bool> ProfileSession::active_{false};

ProfSite::ProfSite(const char* name) : name_(name) {
  Profiler::register_site(this);
}

void Profiler::register_site(ProfSite* site) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  r.sites.push_back(site);
}

std::vector<ProfSite*> Profiler::sites() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  return r.sites;
}

void Profiler::add_cell(const std::string& label, double seconds) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  r.cells.push_back({label, seconds});
}

std::vector<Profiler::CellTime> Profiler::cells() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  return r.cells;
}

namespace {
// Relaxed atomics, not registry-mutexed: clusters on sweep worker threads
// flush once at destruction, and the totals are only read at report time.
std::atomic<std::uint64_t> g_cycles_skipped{0};
std::atomic<std::uint64_t> g_ticks_executed{0};
}  // namespace

void Profiler::add_clock_totals(std::uint64_t cycles_skipped,
                                std::uint64_t ticks_executed) {
  g_cycles_skipped.fetch_add(cycles_skipped, std::memory_order_relaxed);
  g_ticks_executed.fetch_add(ticks_executed, std::memory_order_relaxed);
}

std::uint64_t Profiler::cycles_skipped() {
  return g_cycles_skipped.load(std::memory_order_relaxed);
}

std::uint64_t Profiler::ticks_executed() {
  return g_ticks_executed.load(std::memory_order_relaxed);
}

void Profiler::reset_all() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  for (ProfSite* s : r.sites) s->reset();
  r.cells.clear();
  g_cycles_skipped.store(0, std::memory_order_relaxed);
  g_ticks_executed.store(0, std::memory_order_relaxed);
}

ProfileSession::ProfileSession(std::string out_path)
    : path_(std::move(out_path)) {
  bool expected = false;
  owner_ = active_.compare_exchange_strong(expected, true);
  if (owner_) {
    Profiler::reset_all();
    Profiler::set_enabled(true);
    start_ = std::chrono::steady_clock::now();
  }
}

ProfileSession::~ProfileSession() {
  if (!owner_) return;
  const auto end = std::chrono::steady_clock::now();
  Profiler::set_enabled(false);
  const double wall =
      std::chrono::duration<double>(end - start_).count();
  std::ofstream f(path_);
  if (f) write_selfperf_json(f, wall);
  active_.store(false);
}

namespace {

void json_escaped(std::ostream& os, std::string_view s) {
  os << '"';
  for (char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

}  // namespace

void write_selfperf_json(std::ostream& os, double wall_seconds) {
  const std::vector<Profiler::CellTime> cells = Profiler::cells();
  double cell_sum = 0.0;
  for (const auto& c : cells) cell_sum += c.seconds;
  const double cells_per_sec =
      wall_seconds > 0.0 ? static_cast<double>(cells.size()) / wall_seconds
                         : 0.0;

  const std::uint64_t skipped = Profiler::cycles_skipped();
  const std::uint64_t ticked = Profiler::ticks_executed();
  const double skip_ratio =
      skipped + ticked > 0
          ? static_cast<double>(skipped) /
                static_cast<double>(skipped + ticked)
          : 0.0;

  os << "{\n";
  os << "  \"wall_seconds\": " << wall_seconds << ",\n";
  os << "  \"cells\": " << cells.size() << ",\n";
  os << "  \"cells_per_sec\": " << cells_per_sec << ",\n";
  os << "  \"cell_seconds_total\": " << cell_sum << ",\n";
  os << "  \"cycles_skipped\": " << skipped << ",\n";
  os << "  \"ticks_executed\": " << ticked << ",\n";
  os << "  \"skip_ratio\": " << skip_ratio << ",\n";
  os << "  \"cell_times\": [";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n") << "    {\"label\": ";
    json_escaped(os, cells[i].label);
    os << ", \"seconds\": " << cells[i].seconds << "}";
  }
  os << (cells.empty() ? "" : "\n  ") << "],\n";
  os << "  \"phases\": [";
  bool first = true;
  for (const ProfSite* s : Profiler::sites()) {
    if (s->calls() == 0) continue;  // untouched sites add only noise
    os << (first ? "\n" : ",\n") << "    {\"name\": ";
    json_escaped(os, s->name());
    os << ", \"seconds\": " << static_cast<double>(s->ns()) * 1e-9
       << ", \"calls\": " << s->calls() << "}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "]\n";
  os << "}\n";
}

namespace {

// Recursive-descent JSON value checker. Returns the index one past the
// value, or std::string_view::npos on a syntax error.
std::size_t skip_ws(std::string_view t, std::size_t i) {
  while (i < t.size() && std::isspace(static_cast<unsigned char>(t[i]))) ++i;
  return i;
}

std::size_t check_value(std::string_view t, std::size_t i, int depth);

std::size_t check_string(std::string_view t, std::size_t i) {
  if (i >= t.size() || t[i] != '"') return std::string_view::npos;
  for (++i; i < t.size(); ++i) {
    if (t[i] == '\\') {
      ++i;  // accept any escaped character
    } else if (t[i] == '"') {
      return i + 1;
    }
  }
  return std::string_view::npos;
}

std::size_t check_number(std::string_view t, std::size_t i) {
  const std::size_t start = i;
  if (i < t.size() && (t[i] == '-' || t[i] == '+')) ++i;
  bool digits = false;
  while (i < t.size() &&
         (std::isdigit(static_cast<unsigned char>(t[i])) || t[i] == '.' ||
          t[i] == 'e' || t[i] == 'E' || t[i] == '-' || t[i] == '+')) {
    if (std::isdigit(static_cast<unsigned char>(t[i]))) digits = true;
    ++i;
  }
  return digits && i > start ? i : std::string_view::npos;
}

std::size_t check_value(std::string_view t, std::size_t i, int depth) {
  if (depth > 64) return std::string_view::npos;
  i = skip_ws(t, i);
  if (i >= t.size()) return std::string_view::npos;
  const char c = t[i];
  if (c == '{' || c == '[') {
    const char close = c == '{' ? '}' : ']';
    ++i;
    i = skip_ws(t, i);
    if (i < t.size() && t[i] == close) return i + 1;
    for (;;) {
      if (c == '{') {
        i = check_string(t, skip_ws(t, i));
        if (i == std::string_view::npos) return i;
        i = skip_ws(t, i);
        if (i >= t.size() || t[i] != ':') return std::string_view::npos;
        ++i;
      }
      i = check_value(t, i, depth + 1);
      if (i == std::string_view::npos) return i;
      i = skip_ws(t, i);
      if (i >= t.size()) return std::string_view::npos;
      if (t[i] == close) return i + 1;
      if (t[i] != ',') return std::string_view::npos;
      i = skip_ws(t, i + 1);
    }
  }
  if (c == '"') return check_string(t, i);
  for (std::string_view lit : {"true", "false", "null"}) {
    if (t.substr(i, lit.size()) == lit) return i + lit.size();
  }
  return check_number(t, i);
}

}  // namespace

bool json_parse_check(std::string_view text) {
  const std::size_t end = check_value(text, 0, 0);
  if (end == std::string_view::npos) return false;
  return skip_ws(text, end) == text.size();
}

}  // namespace ntcsim::sim
