// Self-performance profiler for the simulator itself (not the simulated
// machine): scoped wall-clock timers per component/phase plus per-cell
// ntclint-suppress-file(determinism): the whole point of this file is
// reading the host wall clock; results feed BENCH_selfperf.json only and
// never touch simulated state.
// wall times, reported as a machine-readable BENCH_selfperf.json so CI can
// track the simulator's cells/sec trajectory across commits.
//
// Design constraints:
//  * Zero observable effect on simulated metrics — the profiler only reads
//    the host clock; it never touches simulation state.
//  * Near-zero cost when disabled — a ProfScope on a disabled profiler is
//    one relaxed atomic load and two untaken branches.
//  * Thread-safe — sweep cells run on worker threads (--jobs), and the
//    TSan CI job runs profiled sweeps, so sites accumulate with relaxed
//    atomics and the registry/cell lists take a mutex.
//
// Usage:
//   NTC_PROF_SCOPE("hier.tick");          // in a hot function body
//   { ProfileSession session("BENCH_selfperf.json");   // RAII: enables,
//     ... run ...                                       // disables and
//   }                                                   // writes on exit
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace ntcsim::sim {

/// One named timing accumulation point. Construct with static storage
/// duration (the NTC_PROF_SCOPE macro does this); registration is
/// permanent for the process lifetime.
class ProfSite {
 public:
  explicit ProfSite(const char* name);

  void add(std::uint64_t ns) {
    ns_.fetch_add(ns, std::memory_order_relaxed);
    calls_.fetch_add(1, std::memory_order_relaxed);
  }
  void reset() {
    ns_.store(0, std::memory_order_relaxed);
    calls_.store(0, std::memory_order_relaxed);
  }

  const char* name() const { return name_; }
  std::uint64_t ns() const { return ns_.load(std::memory_order_relaxed); }
  std::uint64_t calls() const {
    return calls_.load(std::memory_order_relaxed);
  }

 private:
  const char* name_;
  std::atomic<std::uint64_t> ns_{0};
  std::atomic<std::uint64_t> calls_{0};
};

/// Global on/off switch plus the site registry and per-cell wall times.
class Profiler {
 public:
  struct CellTime {
    std::string label;    ///< "mechanism/workload"
    double seconds = 0.0; ///< wall-clock for the whole cell
  };

  static bool enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }
  static void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  static void register_site(ProfSite* site);
  /// Stable snapshot of every registered site (pointers stay valid: sites
  /// have static storage duration).
  static std::vector<ProfSite*> sites();

  static void add_cell(const std::string& label, double seconds);
  static std::vector<CellTime> cells();

  /// Quiescence-skip accounting, flushed once per Cluster (destructor) so
  /// the JSON report can state the skip ratio: cycles the clock jumped
  /// over vs cycles actually ticked, process-wide.
  static void add_clock_totals(std::uint64_t cycles_skipped,
                               std::uint64_t ticks_executed);
  static std::uint64_t cycles_skipped();
  static std::uint64_t ticks_executed();

  /// Zero every site and drop recorded cell times (session start).
  static void reset_all();

 private:
  static std::atomic<bool> enabled_;
};

/// RAII timer: charges the elapsed wall time to `site` on destruction.
/// Checks the global switch once, at construction.
class ProfScope {
 public:
  explicit ProfScope(ProfSite& site) {
    if (Profiler::enabled()) {
      site_ = &site;
      start_ = std::chrono::steady_clock::now();
    }
  }
  ~ProfScope() {
    if (site_ != nullptr) {
      const auto end = std::chrono::steady_clock::now();
      site_->add(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(end - start_)
              .count()));
    }
  }
  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;

 private:
  ProfSite* site_ = nullptr;
  std::chrono::steady_clock::time_point start_;
};

// Function-static site + scope in one line. The indirection through
// NTC_PROF_CAT is required for __LINE__ to expand before pasting.
#define NTC_PROF_CAT2(a, b) a##b
#define NTC_PROF_CAT(a, b) NTC_PROF_CAT2(a, b)
#define NTC_PROF_SCOPE(name_literal)                                        \
  static ::ntcsim::sim::ProfSite NTC_PROF_CAT(ntc_prof_site_,               \
                                              __LINE__){name_literal};      \
  ::ntcsim::sim::ProfScope NTC_PROF_CAT(ntc_prof_scope_, __LINE__)(         \
      NTC_PROF_CAT(ntc_prof_site_, __LINE__))

/// RAII profiling session: the outermost instance resets + enables the
/// profiler, and on destruction disables it and writes the JSON report.
/// Nested sessions (e.g. run_matrix -> run_sweep both asked to profile)
/// are inert, so exactly one report is written per top-level run.
class ProfileSession {
 public:
  explicit ProfileSession(std::string out_path);
  ~ProfileSession();
  ProfileSession(const ProfileSession&) = delete;
  ProfileSession& operator=(const ProfileSession&) = delete;

  bool owner() const { return owner_; }

 private:
  std::string path_;
  std::chrono::steady_clock::time_point start_;
  bool owner_ = false;
  static std::atomic<bool> active_;
};

/// Serialize the current profiler state (phases + cell times + totals) as
/// JSON. `wall_seconds` is the whole-session wall clock.
void write_selfperf_json(std::ostream& os, double wall_seconds);

/// Minimal structural JSON validator (objects/arrays/strings/numbers/
/// literals) used to round-trip-check the report in tests and CI without
/// a JSON library dependency.
bool json_parse_check(std::string_view text);

}  // namespace ntcsim::sim
