#include "sim/report.hpp"

namespace ntcsim::sim {

namespace {
constexpr const char* kHeader =
    "label,cycles,retired_uops,committed_txs,ipc,tx_per_kilocycle,"
    "llc_miss_rate,nvm_writes,pload_latency,nvm_reads,dram_writes,"
    "llc_wb_dropped,ntc_spills,ntc_stall_frac,requests,req_latency,"
    "req_latency_p50,req_latency_p95,req_latency_p99,req_latency_p999";
}  // namespace

namespace {

// One physical CSV line. The schema (kHeader) is frozen; a multi-node
// breakdown adds *rows* labelled `<label>/nodeK`, never columns, so every
// existing CSV consumer keeps parsing and single-node output is untouched.
void write_one_row(std::ostream& os, const std::string& label,
                   const Metrics& m) {
  os << label << ',' << m.cycles << ',' << m.retired_uops << ','
     << m.committed_txs << ',' << m.ipc << ',' << m.tx_per_kilocycle << ','
     << m.llc_miss_rate << ',' << m.nvm_writes << ',' << m.pload_latency
     << ',' << m.nvm_reads << ',' << m.dram_writes << ',' << m.llc_wb_dropped
     << ',' << m.ntc_spills << ',' << m.ntc_stall_frac << ',' << m.requests
     << ',' << m.req_latency << ',' << m.req_latency_p50 << ','
     << m.req_latency_p95 << ',' << m.req_latency_p99 << ','
     << m.req_latency_p999 << '\n';
}

}  // namespace

void write_metrics_csv_row(std::ostream& os, const std::string& label,
                           const Metrics& m, bool header) {
  if (header) os << kHeader << '\n';
  write_one_row(os, label, m);
  for (std::size_t n = 0; n < m.per_node.size(); ++n) {
    write_one_row(os, label + "/node" + std::to_string(n), m.per_node[n]);
  }
}

void write_matrix_csv(std::ostream& os, const Matrix& matrix) {
  os << kHeader << '\n';
  for (const auto& [wl, row] : matrix) {
    for (const auto& [mech, metrics] : row) {
      write_metrics_csv_row(
          os,
          std::string(to_string(wl)) + "/" + std::string(mechanism_label(mech)),
          metrics);
    }
  }
}

}  // namespace ntcsim::sim
