// Machine-readable experiment output: CSV for the mechanism x workload
// matrix and per-run metric rows, so results can be plotted or diffed
// without scraping the human-readable tables.
#pragma once

#include <ostream>
#include <string>

#include "sim/experiment.hpp"
#include "sim/metrics.hpp"

namespace ntcsim::sim {

/// One CSV row per (workload, mechanism) cell with every Metrics field.
/// Includes a header row.
void write_matrix_csv(std::ostream& os, const Matrix& matrix);

/// One CSV row for a single run (no header unless `header` is true).
void write_metrics_csv_row(std::ostream& os, const std::string& label,
                           const Metrics& m, bool header = false);

}  // namespace ntcsim::sim
