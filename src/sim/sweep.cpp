#include "sim/sweep.hpp"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

#include "sim/profiler.hpp"

namespace ntcsim::sim {

unsigned default_jobs() {
  if (const char* env = std::getenv("NTCSIM_JOBS")) {
    const long n = std::atol(env);
    if (n > 0) return static_cast<unsigned>(n);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void parallel_for(std::size_t count, unsigned jobs,
                  const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  unsigned effective = jobs == 0 ? default_jobs() : jobs;
  if (effective > count) effective = static_cast<unsigned>(count);

  if (effective <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::mutex error_mutex;
  std::exception_ptr first_error;
  std::size_t first_error_index = count;

  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count || failed.load(std::memory_order_relaxed)) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (i < first_error_index) {
          first_error_index = i;
          first_error = std::current_exception();
        }
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(effective);
  for (unsigned t = 0; t < effective; ++t) threads.emplace_back(worker);
  for (std::thread& t : threads) t.join();

  if (first_error) std::rethrow_exception(first_error);
}

std::vector<Metrics> run_sweep(const std::vector<JobSpec>& specs,
                               unsigned jobs) {
  // Honor --profile from the specs (run_matrix copies one options struct
  // into every spec). A session already opened by an outer caller — e.g.
  // the ntcsim driver — wins; this inner one is then inert.
  std::unique_ptr<ProfileSession> session;
  for (const JobSpec& s : specs) {
    if (s.opts.profile) {
      session = std::make_unique<ProfileSession>(s.opts.profile_out);
      break;
    }
  }
  return run_jobs(specs.size(), jobs, [&](std::size_t i) {
    const JobSpec& s = specs[i];
    return run_cell(s.mech, s.wl, s.cfg, s.opts);
  });
}

}  // namespace ntcsim::sim
