// Parallel sweep runner for the evaluation harness.
//
// Every cell of the paper's mechanism x workload matrix — and every point
// of an ablation sweep — is an independent, deterministic simulation: it
// owns its SystemConfig, SimHeap, workload generator and System, and the
// only RNG involved is seeded per cell. That independence makes cell-level
// parallelism safe: running cells on worker threads produces bit-identical
// Metrics to the serial loop, in any interleaving (enforced by
// tests/test_sweep.cpp).
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "common/config.hpp"
#include "sim/experiment.hpp"
#include "sim/metrics.hpp"

namespace ntcsim::sim {

/// Worker-thread count used when the caller passes jobs == 0 ("auto"):
/// the NTCSIM_JOBS environment variable if set to a positive integer,
/// otherwise std::thread::hardware_concurrency(), never less than 1.
unsigned default_jobs();

/// Run fn(0) .. fn(count - 1) on up to `jobs` worker threads (0 = auto via
/// default_jobs()). Indices are handed out dynamically, so uneven cell
/// costs load-balance. With an effective job count of 1 everything runs
/// inline on the calling thread — no threads are created, exceptions
/// propagate directly, and the execution order is 0..count-1.
///
/// If any invocation throws, remaining *unstarted* indices are abandoned
/// and the exception from the lowest-numbered failed index is rethrown on
/// the calling thread after all workers have joined.
void parallel_for(std::size_t count, unsigned jobs,
                  const std::function<void(std::size_t)>& fn);

/// parallel_for collecting fn(i) into a vector in index order, so callers
/// keep the exact result layout of the serial loop they replaced.
/// The result type must be default-constructible (Metrics is).
template <typename Fn>
auto run_jobs(std::size_t count, unsigned jobs, Fn&& fn)
    -> std::vector<decltype(fn(std::size_t{0}))> {
  std::vector<decltype(fn(std::size_t{0}))> out(count);
  parallel_for(count, jobs, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

/// One run_cell invocation, self-contained by value so a worker thread
/// shares nothing with its siblings.
struct JobSpec {
  Mechanism mech = Mechanism::kTc;
  WorkloadKind wl = WorkloadKind::kSps;
  SystemConfig cfg;
  ExperimentOptions opts;
};

/// Run every spec (in spec order in the result) on up to `jobs` threads.
/// Seeds are taken from each spec's opts, so a sweep that wants distinct
/// random streams per point sets opts.seed per spec; the common case —
/// same seed, different configs — reproduces the serial harness exactly.
std::vector<Metrics> run_sweep(const std::vector<JobSpec>& specs,
                               unsigned jobs);

}  // namespace ntcsim::sim
