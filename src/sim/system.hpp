// Compatibility header: the monolithic System was decomposed into
// sim::Node (one socket: cores + hierarchy + NTCs + Kiln + memory, see
// sim/node.hpp) and sim::Cluster (N nodes on one shared clock/event queue
// with sharded service routing, see topo/cluster.hpp). `System` is a
// 1-node cluster — every pre-cluster call site keeps compiling and its
// output stays byte-identical.
#pragma once

#include "topo/cluster.hpp"

namespace ntcsim::sim {

using System = Cluster;

}  // namespace ntcsim::sim
