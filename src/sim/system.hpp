// Full-system assembly: cores + hierarchy + transaction caches + hybrid
// memory + the selected persistence domain, with a crash-and-recover
// entry point for the consistency experiments.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "cache/hierarchy.hpp"
#include "check/persist_order_checker.hpp"
#include "common/config.hpp"
#include "common/event_queue.hpp"
#include "common/stat_handle.hpp"
#include "common/stats.hpp"
#include "core/core.hpp"
#include "core/trace.hpp"
#include "mem/memory_system.hpp"
#include "persist/domain.hpp"
#include "persist/kiln_unit.hpp"
#include "persist/policy.hpp"
#include "recovery/images.hpp"
#include "recovery/recovery.hpp"
#include "sim/metrics.hpp"
#include "txcache/tx_cache.hpp"

namespace ntcsim::sim {

struct SystemOptions {
  /// SP only: emit the clwb/sfence/pcommit ordering (true, Fig. 2b) or the
  /// deliberately broken unordered variant (false, Fig. 2c) used as the
  /// negative control in crash tests.
  bool sp_ordered = true;
  /// Never install the persistence-order checker, ignoring both cfg.check
  /// and the NTCSIM_CHECK env override. The fault-injection campaign sets
  /// this: its verdicts come from the atomicity oracle, and it needs the
  /// CheckSink taps free for its own event recorder (tap_events()).
  bool force_check_off = false;
};

class System {
 public:
  explicit System(const SystemConfig& cfg, SystemOptions opts = {},
                  persist::KilnConfig kiln_cfg = {});

  /// Install a workload trace on one core. Applies the SP transform when
  /// the configured domain asks for software logging.
  void load_trace(CoreId core, core::Trace trace);

  /// Run until every core has retired its trace and all buffered effects
  /// (write-backs, NTC drains, flushes) have reached memory.
  void run(Cycle max_cycles = 2'000'000'000ULL);
  /// Advance exactly `cycles` (crash-injection runs). Returns finished().
  bool run_for(Cycle cycles);
  bool finished() const;
  Cycle now() const { return now_; }

  Metrics metrics() const;
  /// Merged per-core request-latency histogram since the last
  /// reset_stats() (timeline windows diff successive snapshots).
  Histogram request_latency_histogram() const;
  /// Zero every statistic and start a new measurement epoch (used between
  /// the setup and measured phases; caches and structures stay warm).
  void reset_stats();
  StatSet& stats() { return stats_; }
  const StatSet& stats() const { return stats_; }
  const SystemConfig& config() const { return cfg_; }

  /// Simulate a power failure at the current cycle and run the configured
  /// domain's recovery procedure over what is durable.
  recovery::WordImage crash_and_recover() const;

  core::Core& core(CoreId c) { return *cores_[c]; }
  txcache::TxCache* ntc(CoreId c) {
    return ntcs_.empty() ? nullptr : ntcs_[c].get();
  }
  cache::Hierarchy& hierarchy() { return *hier_; }
  mem::MemorySystem& memory() { return *mem_; }
  const persist::PersistenceDomain& domain() const { return *domain_; }
  const recovery::DurableState* durable() const { return durable_.get(); }
  /// The online persistence-order checker, or null when cfg.check (after
  /// the NTCSIM_CHECK env override) resolved to off or the domain declares
  /// no rules.
  const check::PersistOrderChecker* checker() const { return checker_.get(); }
  /// Route every component's check-event tap to an external sink (the
  /// fault-injection CrashPlanner records hazard cycles this way). Only
  /// legal when no checker was installed — components hold a single
  /// CheckSink*, so run such systems with check off.
  void tap_events(check::CheckSink* sink);
  /// The live cycle counter, for external sinks that stamp events
  /// themselves (mirrors checker_->set_clock wiring).
  const Cycle* cycle_counter() const { return &now_; }
  /// Event-queue introspection (cost-regression guards count pushes).
  const EventQueue& events() const { return events_; }

 private:
  void step_();

  SystemConfig cfg_;
  SystemOptions opts_;
  std::unique_ptr<persist::PersistenceDomain> domain_;
  persist::Policy policy_;  ///< == domain_->policy(), cached.
  StatSet stats_;
  EventQueue events_;
  std::unique_ptr<mem::MemorySystem> mem_;
  std::unique_ptr<recovery::DurableState> durable_;
  std::unique_ptr<recovery::VolatileImage> vimage_;
  std::unique_ptr<cache::Hierarchy> hier_;
  std::vector<std::unique_ptr<txcache::TxCache>> ntcs_;
  std::unique_ptr<persist::KilnUnit> kiln_;
  std::vector<std::unique_ptr<core::Core>> cores_;
  std::unique_ptr<check::PersistOrderChecker> checker_;
  std::vector<core::Trace> traces_;
  Cycle now_ = 0;
  Cycle stats_epoch_ = 0;  ///< Cycle at the last reset_stats().

  // metrics() sources, resolved once at construction (the PR 2 stat-handle
  // pattern; components registered all of these in their constructors, so
  // resolving here creates nothing new). Per-core vectors are indexed by
  // CoreId.
  std::vector<CounterHandle> m_retired_, m_txs_, m_ntc_stalls_;
  std::vector<AccumulatorHandle> m_pload_lat_, m_req_lat_;
  std::vector<HistogramHandle> m_pload_hist_, m_req_hist_;
  std::vector<CounterHandle> m_ntc_spills_;  ///< One per NTC; empty otherwise.
  CounterHandle m_llc_hits_, m_llc_misses_, m_llc_wb_dropped_;
  CounterHandle m_nvm_writes_, m_nvm_reads_, m_dram_writes_;
};

}  // namespace ntcsim::sim
