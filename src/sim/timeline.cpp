#include "sim/timeline.hpp"

#include <algorithm>

namespace ntcsim::sim {

std::vector<TimelineSample> run_with_timeline(System& sys, Cycle interval) {
  std::vector<TimelineSample> samples;
  std::uint64_t prev_txs = 0;
  std::uint64_t prev_skipped = sys.cycles_skipped();
  Cycle prev_cycle = sys.now();
  Histogram prev_hist;
  bool done = false;
  while (!done) {
    done = sys.run_for(interval);
    TimelineSample s;
    s.cycle = sys.now();
    // The final window can be shorter than `interval` (the run drained),
    // so the ratio uses the cycles actually elapsed in this window.
    const Cycle elapsed = s.cycle - prev_cycle;
    const std::uint64_t skipped = sys.cycles_skipped() - prev_skipped;
    if (elapsed > 0) {
      s.window_skip_ratio =
          static_cast<double>(skipped) / static_cast<double>(elapsed);
    }
    prev_cycle = s.cycle;
    prev_skipped = sys.cycles_skipped();
    const Metrics m = sys.metrics();
    s.committed_txs = m.committed_txs;
    s.nvm_writes = m.nvm_writes;
    s.nvm_reads = m.nvm_reads;
    s.window_tx_per_kilocycle =
        1000.0 * static_cast<double>(m.committed_txs - prev_txs) /
        static_cast<double>(interval);
    prev_txs = m.committed_txs;
    s.requests = m.requests;
    const Histogram cur = sys.request_latency_histogram();
    const Histogram window = cur.diff_since(prev_hist);
    if (window.total() > 0) s.window_req_p99 = window.percentile_edge(99.0);
    prev_hist = cur;
    for (NodeId n = 0; n < sys.nodes(); ++n) {
      for (CoreId c = 0; c < sys.config().cores; ++c) {
        if (sys.ntc(n, c) != nullptr) {
          s.ntc_occupancy =
              std::max(s.ntc_occupancy, sys.ntc(n, c)->occupancy());
        }
      }
      s.nvm_write_queue += sys.node(n).memory().nvm_pending_writes();
    }
    samples.push_back(s);
  }
  return samples;
}

void write_timeline_csv(std::ostream& os,
                        const std::vector<TimelineSample>& samples) {
  os << "cycle,committed_txs,nvm_writes,nvm_reads,window_tx_per_kilocycle,"
        "ntc_occupancy,nvm_write_queue,requests,window_req_p99,"
        "window_skip_ratio\n";
  for (const TimelineSample& s : samples) {
    os << s.cycle << ',' << s.committed_txs << ',' << s.nvm_writes << ','
       << s.nvm_reads << ',' << s.window_tx_per_kilocycle << ','
       << s.ntc_occupancy << ',' << s.nvm_write_queue << ',' << s.requests
       << ',' << s.window_req_p99 << ',' << s.window_skip_ratio << '\n';
  }
}

}  // namespace ntcsim::sim
