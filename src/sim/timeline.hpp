// Time-series sampling of a running system: cumulative and windowed
// metrics at a fixed cycle interval, for plotting warm-up behaviour, NTC
// occupancy waves, and write-drain bursts that end-of-run averages hide.
#pragma once

#include <cstdint>
#include <ostream>
#include <vector>

#include "common/types.hpp"
#include "sim/system.hpp"

namespace ntcsim::sim {

struct TimelineSample {
  Cycle cycle = 0;
  std::uint64_t committed_txs = 0;   ///< Cumulative.
  std::uint64_t nvm_writes = 0;      ///< Cumulative.
  std::uint64_t nvm_reads = 0;       ///< Cumulative.
  double window_tx_per_kilocycle = 0.0;  ///< Rate within this window.
  std::size_t ntc_occupancy = 0;     ///< Max across cores at sample time.
  std::size_t nvm_write_queue = 0;   ///< Controller occupancy at sample time.
  std::uint64_t requests = 0;        ///< Cumulative completed requests.
  /// p99 request latency of the requests retired within this window
  /// (power-of-two bucket edge; 0 when the window retired nothing) — the
  /// time-resolved view of a drain burst or commit stall that a whole-run
  /// percentile averages away.
  std::uint64_t window_req_p99 = 0;
  /// Fraction of this window's cycles the quiescence-aware clock advance
  /// jumped over (0 with `--no-skip` or skip.verify). Diagnostic only:
  /// high values mark genuinely idle stretches of the run.
  double window_skip_ratio = 0.0;
};

/// Run `sys` to completion, recording one sample every `interval` cycles.
/// The system must already have its traces loaded.
std::vector<TimelineSample> run_with_timeline(System& sys, Cycle interval);

/// CSV with a header row; one line per sample.
void write_timeline_csv(std::ostream& os,
                        const std::vector<TimelineSample>& samples);

}  // namespace ntcsim::sim
