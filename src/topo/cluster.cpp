#include "topo/cluster.hpp"

#include <algorithm>
#include <utility>

#include "common/assert.hpp"
#include "sim/profiler.hpp"

namespace ntcsim::sim {

Cluster::Cluster(const SystemConfig& cfg, SystemOptions opts,
                 persist::KilnConfig kiln_cfg)
    : cfg_(cfg) {
  const unsigned n = std::max(1u, cfg_.topo.nodes);
  nodes_.reserve(n);
  for (NodeId i = 0; i < n; ++i) {
    nodes_.push_back(std::make_unique<Node>(cfg_, i, n, events_, &now_, opts,
                                            kiln_cfg));
  }
  // Skip accounting lives on node 0's StatSet, like the cluster's other
  // shared state; resolved once here (the PR 2 handle pattern).
  stat_cycles_skipped_ = CounterHandle(stats(), "sim.cycles_skipped");
  stat_ticks_executed_ = CounterHandle(stats(), "sim.ticks_executed");
}

Cluster::~Cluster() {
  Profiler::add_clock_totals(cycles_skipped_, ticks_executed_);
}

void Cluster::load_trace(NodeId node, CoreId core, core::Trace trace) {
  NTC_ASSERT(node < nodes_.size(), "trace loaded on a nonexistent node");
  nodes_[node]->load_trace(core, std::move(trace));
}

void Cluster::load_trace(CoreId core, core::Trace trace) {
  load_trace(0, core, std::move(trace));
}

void Cluster::step_() {
  {
    NTC_PROF_SCOPE("step.events");
    events_.drain_until(now_);
  }
  for (auto& n : nodes_) n->tick(now_);
  ++now_;
  ++ticks_executed_;
  stat_ticks_executed_->inc();
}

void Cluster::advance_clock_(Cycle limit) {
  if (!cfg_.skip.enabled || now_ >= limit) return;
  // A drained cluster must not advance: the run ends at the first cycle
  // finished() holds, and a jump here (to the next periodic refresh, say)
  // would inflate now_ — and the cycles metric — past where the
  // cycle-stepped run stops. This is the price of skipping: one extra
  // finished() scan per executed cycle.
  if (finished()) return;
  // The last executed cycle is now_ - 1; every component's quiescence
  // contract is relative to it. The earliest event-queue delivery bounds
  // the jump first: an event callback is external input the components
  // cannot see coming, and the checker stamps event cycles off the live
  // clock, so the clock must be exactly right when one fires.
  Cycle target = events_.empty() ? kNeverCycle : events_.next_cycle();
  for (const auto& n : nodes_) {
    if (target <= now_) return;  // next cycle is live; nothing to skip
    target = std::min(target, n->next_event_cycle(now_ - 1));
  }
  if (target <= now_) return;
  if (target == kNeverCycle) {
    // No component will ever act again, the event queue is empty, and the
    // cluster is not finished (checked above): a deadlock. Jump straight
    // to the cap for a fast, bit-identical kCycleCap.
    target = limit;
  }
  target = std::min(target, limit);
  if (target <= now_) return;
  if (cfg_.skip.verify) {
    verify_idle_window_(target);
    return;
  }
  const Cycle skipped = target - now_;
  cycles_skipped_ += skipped;
  stat_cycles_skipped_->inc(skipped);
  now_ = target;
}

void Cluster::verify_idle_window_(Cycle target) {
  // Cross-check mode: execute the window the jump would have skipped and
  // fail loudly on any sign of work — an event due before the target, a
  // tick scheduling a new event, or a component moving its next-event
  // estimate earlier. Any of these means some next_event_cycle()
  // over-promised and a release-mode jump would have corrupted the run.
  while (now_ < target) {
    NTC_CHECK_MSG(events_.empty() || events_.next_cycle() >= target,
                  "skip.verify: event due at cycle %llu inside the idle "
                  "window claimed until %llu (now %llu)",
                  static_cast<unsigned long long>(events_.next_cycle()),
                  static_cast<unsigned long long>(target),
                  static_cast<unsigned long long>(now_));
    const std::uint64_t pushes_before = events_.total_pushes();
    step_();
    NTC_CHECK_MSG(events_.total_pushes() == pushes_before,
                  "skip.verify: a tick at cycle %llu scheduled an event "
                  "inside the idle window claimed until %llu",
                  static_cast<unsigned long long>(now_ - 1),
                  static_cast<unsigned long long>(target));
    Cycle recomputed = events_.empty() ? kNeverCycle : events_.next_cycle();
    for (const auto& n : nodes_) {
      recomputed = std::min(recomputed, n->next_event_cycle(now_ - 1));
    }
    NTC_CHECK_MSG(recomputed >= target,
                  "skip.verify: next-event estimate moved from %llu to %llu "
                  "after the supposedly idle cycle %llu — a "
                  "next_event_cycle() over-promised",
                  static_cast<unsigned long long>(target),
                  static_cast<unsigned long long>(recomputed),
                  static_cast<unsigned long long>(now_ - 1));
  }
}

bool Cluster::finished() const {
  for (const auto& n : nodes_) {
    if (!n->drained()) return false;
  }
  return events_.empty();
}

RunStatus Cluster::run(Cycle max_cycles) {
  const Cycle limit = now_ + max_cycles;
  while (!finished()) {
    if (now_ >= limit) {
      timed_out_ = true;
      return RunStatus::kCycleCap;
    }
    step_();
    advance_clock_(limit);
  }
  return RunStatus::kFinished;
}

bool Cluster::run_for(Cycle cycles) {
  const Cycle until = now_ + cycles;
  while (now_ < until && !finished()) {
    step_();
    advance_clock_(until);
  }
  return finished();
}

recovery::WordImage Cluster::crash_and_recover(NodeId node) const {
  NTC_ASSERT(node < nodes_.size(), "crash on a nonexistent node");
  return nodes_[node]->crash_and_recover();
}

void Cluster::reset_stats() {
  for (auto& n : nodes_) n->reset_stats();
  stats_epoch_ = now_;
}

Metrics Cluster::metrics() const {
  const Cycle cycles = now_ - stats_epoch_;
  if (nodes_.size() == 1) {
    // The pre-cluster path, bit-for-bit: no aggregation arithmetic runs.
    return nodes_[0]->metrics(cycles);
  }

  Metrics m;
  m.cycles = cycles;
  NodeRaw t;
  for (const auto& n : nodes_) {
    const NodeRaw r = n->raw();
    t.retired += r.retired;
    t.txs += r.txs;
    t.llc_hits += r.llc_hits;
    t.llc_misses += r.llc_misses;
    t.nvm_writes += r.nvm_writes;
    t.nvm_reads += r.nvm_reads;
    t.dram_writes += r.dram_writes;
    t.llc_wb_dropped += r.llc_wb_dropped;
    t.ntc_spills += r.ntc_spills;
    t.ntc_stalls += r.ntc_stalls;
    t.pload_sum += r.pload_sum;
    t.pload_n += r.pload_n;
    t.req_sum += r.req_sum;
    t.req_n += r.req_n;
    t.pload_hist.merge(r.pload_hist);
    t.req_hist.merge(r.req_hist);
    t.check_violations += r.check_violations;
  }

  m.retired_uops = t.retired;
  m.committed_txs = t.txs;
  if (m.cycles > 0) {
    m.ipc = static_cast<double>(m.retired_uops) / static_cast<double>(m.cycles);
    m.tx_per_kilocycle = 1000.0 * static_cast<double>(m.committed_txs) /
                         static_cast<double>(m.cycles);
  }
  if (t.llc_hits + t.llc_misses > 0) {
    m.llc_miss_rate = static_cast<double>(t.llc_misses) /
                      static_cast<double>(t.llc_hits + t.llc_misses);
  }
  m.nvm_writes = t.nvm_writes;
  m.nvm_reads = t.nvm_reads;
  m.dram_writes = t.dram_writes;
  m.llc_wb_dropped = t.llc_wb_dropped;
  m.ntc_spills = t.ntc_spills;
  if (t.pload_n > 0) {
    m.pload_latency = t.pload_sum / static_cast<double>(t.pload_n);
  }
  if (t.pload_hist.total() > 0) {
    m.pload_latency_p50 = t.pload_hist.percentile_edge(50.0);
    m.pload_latency_p99 = t.pload_hist.percentile_edge(99.0);
  }
  if (m.cycles > 0) {
    const std::uint64_t total_cores =
        static_cast<std::uint64_t>(cfg_.cores) * nodes_.size();
    m.ntc_stall_frac = static_cast<double>(t.ntc_stalls) /
                       static_cast<double>(m.cycles * total_cores);
  }
  m.requests = t.req_n;
  if (t.req_n > 0) m.req_latency = t.req_sum / static_cast<double>(t.req_n);
  if (t.req_hist.total() > 0) {
    m.req_latency_p50 = t.req_hist.percentile_edge(50.0);
    m.req_latency_p95 = t.req_hist.percentile_edge(95.0);
    m.req_latency_p99 = t.req_hist.percentile_edge(99.0);
    m.req_latency_p999 = t.req_hist.percentile_edge(99.9);
  }
  m.check_violations = t.check_violations;

  m.per_node.reserve(nodes_.size());
  for (const auto& n : nodes_) m.per_node.push_back(n->metrics(cycles));
  m.xshard_requests = route_.xshard;
  if (route_.xshard > 0) {
    m.xshard_fwd_delay = static_cast<double>(route_.fwd_cycles) /
                         static_cast<double>(route_.xshard);
  }
  return m;
}

Histogram Cluster::request_latency_histogram() const {
  Histogram merged;
  for (const auto& n : nodes_) merged.merge(n->request_latency_histogram());
  return merged;
}

}  // namespace ntcsim::sim
