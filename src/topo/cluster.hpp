// A cluster of sim::Nodes on one shared clock and event queue — the
// scale-out layer above the paper's single-socket machine. Node 0 of a
// 1-node cluster is the pre-cluster System, cycle-for-cycle; `sim::System`
// is now an alias for this class, and the single-node member functions
// below (core(), ntc(), checker(), ...) keep every existing call site
// compiling by delegating to node 0.
#pragma once

#include <memory>
#include <vector>

#include "common/config.hpp"
#include "common/event_queue.hpp"
#include "common/stat_handle.hpp"
#include "sim/metrics.hpp"
#include "sim/node.hpp"
#include "topo/interconnect.hpp"

namespace ntcsim::sim {

/// How a run() ended. kCycleCap means the simulation was cut off before
/// it drained — metrics describe a truncated run and callers must treat
/// the result as a failure, not a slow success.
enum class RunStatus : std::uint8_t {
  kFinished,  ///< Every node drained; metrics are complete.
  kCycleCap,  ///< Hit max_cycles with work outstanding (deadlock or
              ///< under-budgeted run).
};

constexpr const char* to_string(RunStatus s) {
  switch (s) {
    case RunStatus::kFinished: return "finished";
    case RunStatus::kCycleCap: return "cycle-cap";
  }
  return "?";
}

class Cluster {
 public:
  explicit Cluster(const SystemConfig& cfg, SystemOptions opts = {},
                   persist::KilnConfig kiln_cfg = {});
  /// Flushes the skip/tick totals into the self-profiler so `--profile`
  /// can report the whole-process skip ratio.
  ~Cluster();

  unsigned nodes() const { return static_cast<unsigned>(nodes_.size()); }
  Node& node(NodeId n) { return *nodes_[n]; }
  const Node& node(NodeId n) const { return *nodes_[n]; }

  /// Install a workload trace on one core of one node.
  void load_trace(NodeId node, CoreId core, core::Trace trace);
  /// Node-0 compatibility overload (the whole machine, pre-cluster).
  void load_trace(CoreId core, core::Trace trace);

  /// Run until every node drained, or until `max_cycles` more cycles have
  /// elapsed — whichever comes first. A kCycleCap return (also latched in
  /// timed_out()) means the run was truncated; drivers fail loudly on it.
  RunStatus run(Cycle max_cycles = 2'000'000'000ULL);
  /// Advance exactly `cycles` (crash-injection runs). Returns finished().
  bool run_for(Cycle cycles);
  bool finished() const;
  /// A previous run() hit its cycle cap before the cluster drained.
  bool timed_out() const { return timed_out_; }
  Cycle now() const { return now_; }

  /// Aggregate metrics across nodes. Single-node clusters return node 0's
  /// metrics verbatim (per_node stays empty); multi-node clusters compute
  /// cluster-wide sums/rates and attach a per-node breakdown plus the
  /// routing stats recorded via note_route_stats().
  Metrics metrics() const;
  /// Merged request-latency histogram across every node's cores since the
  /// last reset_stats() (timeline windows diff successive snapshots).
  Histogram request_latency_histogram() const;
  /// Zero every statistic on every node and start a new measurement epoch
  /// (used between the setup and measured phases; caches stay warm).
  void reset_stats();
  StatSet& stats() { return nodes_[0]->stats(); }
  const StatSet& stats() const { return nodes_[0]->stats(); }
  const SystemConfig& config() const { return cfg_; }

  /// Interconnect routing stats of the measured request stream (the
  /// harness records them after stamping arrivals); surfaced in metrics().
  void note_route_stats(const topo::RouteStats& rs) { route_ = rs; }

  /// Simulate a power failure at the current cycle on one node and run the
  /// configured domain's recovery procedure over what is durable there.
  /// The other nodes are unaffected (partial failure).
  recovery::WordImage crash_and_recover(NodeId node) const;
  recovery::WordImage crash_and_recover() const { return crash_and_recover(0); }

  // Node-0 compatibility surface (the pre-cluster System API).
  core::Core& core(CoreId c) { return nodes_[0]->core(c); }
  txcache::TxCache* ntc(CoreId c) { return nodes_[0]->ntc(c); }
  txcache::TxCache* ntc(NodeId n, CoreId c) { return nodes_[n]->ntc(c); }
  cache::Hierarchy& hierarchy() { return nodes_[0]->hierarchy(); }
  mem::MemorySystem& memory() { return nodes_[0]->memory(); }
  const persist::PersistenceDomain& domain() const {
    return nodes_[0]->domain();
  }
  const recovery::DurableState* durable() const {
    return nodes_[0]->durable();
  }
  const check::PersistOrderChecker* checker() const {
    return nodes_[0]->checker();
  }
  const check::PersistOrderChecker* checker(NodeId n) const {
    return nodes_[n]->checker();
  }
  /// Route one node's component check-event taps to an external sink (the
  /// fault-injection CrashPlanner). See Node::tap_events.
  void tap_events(NodeId node, check::CheckSink* sink) {
    nodes_[node]->tap_events(sink);
  }
  void tap_events(check::CheckSink* sink) { tap_events(0, sink); }
  /// The live cycle counter, for external sinks that stamp events
  /// themselves (mirrors the checker's set_clock wiring).
  const Cycle* cycle_counter() const { return &now_; }
  /// Event-queue introspection (cost-regression guards count pushes).
  const EventQueue& events() const { return events_; }

  /// Quiescence-skip accounting since construction (reset_stats() resets
  /// the `sim.cycles_skipped` / `sim.ticks_executed` StatSet counters, not
  /// these lifetime totals). Skipped + executed = elapsed cycles; verify
  /// mode executes every cycle, so it reports 0 skipped.
  std::uint64_t cycles_skipped() const { return cycles_skipped_; }
  std::uint64_t ticks_executed() const { return ticks_executed_; }

 private:
  void step_();
  /// Quiescence-aware clock advance: after an executed step, min-reduce
  /// every node's next_event_cycle() with the earliest event-queue
  /// delivery and jump now_ there (clamped to `limit`, exclusive of
  /// nothing — limit itself is a legal landing cycle for run()'s cap
  /// check). No-op when skipping is off or no cycle can be skipped.
  void advance_clock_(Cycle limit);
  /// skip.verify: single-step the claimed-idle window instead of jumping,
  /// aborting loudly if any supposedly skippable cycle did work.
  void verify_idle_window_(Cycle target);

  SystemConfig cfg_;
  EventQueue events_;
  Cycle now_ = 0;
  std::vector<std::unique_ptr<Node>> nodes_;
  Cycle stats_epoch_ = 0;  ///< Cycle at the last reset_stats().
  bool timed_out_ = false;
  topo::RouteStats route_;

  std::uint64_t cycles_skipped_ = 0;
  std::uint64_t ticks_executed_ = 0;
  CounterHandle stat_cycles_skipped_;  ///< sim.cycles_skipped (node 0).
  CounterHandle stat_ticks_executed_;  ///< sim.ticks_executed (node 0).
};

}  // namespace ntcsim::sim
