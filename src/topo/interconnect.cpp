#include "topo/interconnect.hpp"

#include <algorithm>
#include <limits>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace ntcsim::topo {

Interconnect::Interconnect(unsigned nodes, const TopoConfig& topo, double ghz)
    : nodes_(nodes),
      hop_(topo.hop_cycles(ghz)),
      ser_(topo.serialize_cycles(ghz)),
      link_free_(static_cast<std::size_t>(nodes) * nodes, 0) {
  NTC_ASSERT(nodes > 0, "interconnect needs at least one node");
}

Cycle Interconnect::deliver(NodeId src, NodeId dst, Cycle ready) {
  if (src == dst) return ready;
  Cycle& free = link_free_[static_cast<std::size_t>(src) * nodes_ + dst];
  const Cycle depart = std::max(ready, free);
  free = depart + ser_;
  return depart + ser_ + hop_;
}

namespace {

struct PendingRequest {
  Cycle arrival = 0;
  NodeId home = 0;
  CoreId core = 0;
  core::MicroOp* op = nullptr;
};

std::uint32_t clamp32(Cycle v) {
  return static_cast<std::uint32_t>(
      std::min<Cycle>(v, std::numeric_limits<std::uint32_t>::max()));
}

}  // namespace

RouteStats route_service_arrivals(
    const std::vector<std::vector<core::Trace*>>& node_core_traces,
    const TopoConfig& topo, double ghz, std::uint64_t seed) {
  RouteStats stats;
  const unsigned nodes = static_cast<unsigned>(node_core_traces.size());
  if (nodes <= 1) return stats;

  // Collect every stamped request in (node, core, trace) order, then
  // stable-sort by arrival: ties keep that order, so the ingress sequence
  // — and with it the entry-node stream and link queueing — is a pure
  // function of the inputs.
  std::vector<PendingRequest> reqs;
  for (NodeId n = 0; n < nodes; ++n) {
    for (CoreId c = 0; c < node_core_traces[n].size(); ++c) {
      core::Trace* trace = node_core_traces[n][c];
      if (trace == nullptr) continue;
      for (core::MicroOp& op : trace->mutable_ops()) {
        if (op.kind != core::OpKind::kTxBegin || op.addr == 0) continue;
        reqs.push_back({static_cast<Cycle>(op.addr), n, c, &op});
      }
    }
  }
  std::stable_sort(reqs.begin(), reqs.end(),
                   [](const PendingRequest& a, const PendingRequest& b) {
                     return a.arrival < b.arrival;
                   });

  Interconnect net(nodes, topo, ghz);
  // Entry-node stream: the front-end interleave that decides where each
  // request lands first (golden-ratio mixing, same idiom as the workload
  // generators).
  Rng entry_rng(seed * 0x9e3779b97f4a7c15ULL + 0x8bb84b93962eacc9ULL);
  for (PendingRequest& r : reqs) {
    ++stats.requests;
    const NodeId entry = static_cast<NodeId>(entry_rng.below(nodes));
    if (entry == r.home) continue;
    const Cycle delivered = net.deliver(entry, r.home, r.arrival);
    const Cycle fwd = delivered - r.arrival;
    const Cycle rsp = net.serialize_cycles() + net.hop_cycles();
    r.op->net_fwd = clamp32(fwd);
    r.op->net_rsp = clamp32(rsp);
    ++stats.xshard;
    stats.fwd_cycles += fwd;
    stats.rsp_cycles += rsp;
  }
  return stats;
}

}  // namespace ntcsim::topo
