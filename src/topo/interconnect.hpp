// Node-to-node fabric model for sim::Cluster, and the request router that
// shards the service-mode arrival stream across nodes.
//
// The model is *stamp-time*: cross-shard interconnect delays are computed
// deterministically while the arrival stream is being prepared (before the
// cycle loop starts) and written onto each request's kTxBegin op as
// net_fwd / net_rsp. The core's frontend then refuses to fetch a request
// before arrival + net_fwd, and adds net_rsp to its recorded latency — so
// the network round trip shows up in the tail percentiles without the
// cycle loop simulating packets. Every directed link serializes messages
// in ingress order, so a hot link builds real queueing delay.
//
// Determinism: the whole routing pass is a pure function of (traces, topo,
// ghz, seed) — cluster cells stay bit-identical under `--jobs=N`.
#pragma once

#include <cstdint>
#include <vector>

#include "common/config.hpp"
#include "common/types.hpp"
#include "core/trace.hpp"

namespace ntcsim::topo {

/// The fabric: `nodes`^2 directed links, each with a hop latency and a
/// per-message serialization time derived from TopoConfig at `ghz`.
class Interconnect {
 public:
  Interconnect(unsigned nodes, const TopoConfig& topo, double ghz);

  /// Send one message src -> dst, earliest at `ready`. The message queues
  /// behind earlier traffic on the same directed link, serializes, then
  /// flies one hop; returns its delivery cycle. src == dst is free.
  Cycle deliver(NodeId src, NodeId dst, Cycle ready);

  Cycle hop_cycles() const { return hop_; }
  Cycle serialize_cycles() const { return ser_; }

 private:
  unsigned nodes_;
  Cycle hop_ = 0;
  Cycle ser_ = 0;
  std::vector<Cycle> link_free_;  ///< Next-free cycle per directed link.
};

/// Routing outcome of one measured request stream.
struct RouteStats {
  std::uint64_t requests = 0;  ///< Stamped open-loop requests, all nodes.
  std::uint64_t xshard = 0;    ///< Requests that crossed a shard boundary.
  std::uint64_t fwd_cycles = 0;  ///< Sum of net_fwd over xshard requests.
  std::uint64_t rsp_cycles = 0;  ///< Sum of net_rsp over xshard requests.
};

/// Shard the stamped arrival streams of a cluster: every request enters
/// the cluster at a key-interleaved entry node (uniform over nodes, drawn
/// from a SplitMix64 stream seeded by `seed`) and is served by the node
/// whose trace carries it (its home shard). Cross-shard requests get the
/// forward delay (entry->home link queueing + serialization + hop) and
/// response delay (serialization + hop) written onto their kTxBegin op.
/// `node_core_traces[node][core]` may be null (core idle on that node).
/// Requests are processed in global ingress order (arrival cycle, ties by
/// node then core then trace order). No-op for a 1-node cluster.
RouteStats route_service_arrivals(
    const std::vector<std::vector<core::Trace*>>& node_core_traces,
    const TopoConfig& topo, double ghz, std::uint64_t seed);

}  // namespace ntcsim::topo
