#include "txcache/tx_cache.hpp"

#include <algorithm>
#include <cinttypes>
#include <utility>

#include "common/assert.hpp"
#include "mem/request.hpp"

namespace ntcsim::txcache {

TxCache::TxCache(std::string name, CoreId core, const TxCacheConfig& cfg,
                 const AddressSpace& space, mem::MemorySystem& mem,
                 StatSet& stats)
    : name_(std::move(name)), core_(core), cfg_(cfg), space_(space), mem_(&mem) {
  NTC_ASSERT(cfg_.entries() >= 2, "transaction cache needs >= 2 entries");
  entries_.resize(cfg_.entries());
  stat_writes_ = CounterHandle(stats, name_ + ".writes");
  stat_commits_ = CounterHandle(stats, name_ + ".commits");
  stat_issued_ = CounterHandle(stats, name_ + ".issued");
  stat_acks_ = CounterHandle(stats, name_ + ".acks");
  stat_probe_hits_ = CounterHandle(stats, name_ + ".probe_hits");
  stat_probe_misses_ = CounterHandle(stats, name_ + ".probe_misses");
  stat_spills_ = CounterHandle(stats, name_ + ".spills");
  stat_merges_ = CounterHandle(stats, name_ + ".merges");
  stat_full_rejects_ = CounterHandle(stats, name_ + ".full_rejects");
  stat_port_busy_ = CounterHandle(stats, name_ + ".port_busy");
}

bool TxCache::overflow_imminent() const {
  return static_cast<double>(count_) >=
         cfg_.overflow_threshold * static_cast<double>(entries_.size());
}

bool TxCache::write(Cycle now, Addr addr, Word value, TxId tx) {
  NTC_ASSERT(tx != kNoTx, "NTC write requires a transaction id");
  // The CAM port completes one operation per access latency. At the
  // paper's 0.5 ns (one CPU cycle) the port never blocks; a slower array
  // throttles insert rate.
  if (now < port_free_at_) {
    stat_port_busy_->inc();
    return false;
  }
  // CAM lookup: a same-line write of the SAME open transaction coalesces
  // into the existing entry (a cache-line entry holds the whole 64 B line).
  // Multi-versioning is per *transaction*: the open transaction's entry is
  // always the newest version of the line, so an older transaction's entry
  // is never disturbed. The line index mirrors the CAM's single-cycle match.
  if (auto it = active_lines_.find(line_of(addr)); it != active_lines_.end()) {
    Entry& e = entries_[it->second];
    if (e.state == State::kActive && e.tx == tx) {
      port_free_at_ = now + cfg_.latency_cycles - 1;
      for (auto& [a, v] : e.words) {
        if (a == word_of(addr)) {
          v = value;
          stat_merges_->inc();
          return true;
        }
      }
      e.words.emplace_back(word_of(addr), value);
      stat_merges_->inc();
      return true;
    }
  }
  // §4.1: "first we check if the cache line entry pointed by the head is in
  // the available state" — if not, the FIFO is full and the CPU must wait.
  if (entries_[head_].state != State::kAvailable) {
    stat_full_rejects_->inc();
    return false;
  }
  Entry& e = entries_[head_];
  e.state = State::kActive;
  e.tx = tx;
  e.line = line_of(addr);
  e.words.assign(1, {word_of(addr), value});
  e.issued = false;
  e.seq = next_seq_++;
  active_lines_[e.line] = head_;
  active_fifo_.push_back(head_);
  port_free_at_ = now + cfg_.latency_cycles - 1;
  head_ = next_(head_);
  ++count_;
  stat_writes_->inc();
  if (sink_ != nullptr) {
    check::CheckEvent ce;
    ce.kind = check::EventKind::kNtcInsert;
    ce.core = core_;
    ce.tx = tx;
    ce.addr = e.line;
    ce.seq = e.seq;
    ce.persistent = true;
    sink_->on_event(ce);
  }
  return true;
}

void TxCache::commit(TxId tx) {
  stat_commits_->inc();
  if (sink_ != nullptr) {
    check::CheckEvent ce;
    ce.kind = check::EventKind::kNtcCommit;
    ce.core = core_;
    ce.tx = tx;
    ce.persistent = true;
    sink_->on_event(ce);
  }
  active_lines_.clear();  // the open transaction's entries become immutable
  // CAM match on TxID across the data array (§4.1); only ACTIVE entries can
  // match, and active_fifo_ lists exactly those, oldest first. Matching
  // entries append to committed_fifo_ in that same seq order — and every
  // entry of an earlier transaction carries a lower seq than anything
  // written later, so committed_fifo_ stays seq-sorted across commits.
  std::deque<std::size_t> still_active;
  for (std::size_t idx : active_fifo_) {
    Entry& e = entries_[idx];
    if (e.tx == tx) {
      e.state = State::kCommitted;
      committed_fifo_.push_back(idx);
      ++committed_in_ring_;
    } else {
      still_active.push_back(idx);
    }
  }
  active_fifo_.swap(still_active);
  for (auto& s : spills_) {
    if (s->tx == tx && !s->committed) {
      s->committed = true;
      ++committed_spills_;
      ++committed_undone_spills_;
    }
  }
}

bool TxCache::probe(Addr line_addr) const {
  // Nearest-head match == newest version: scan backwards from head.
  if (count_ > 0) {
    std::size_t i = head_;
    for (std::size_t n = 0; n < entries_.size(); ++n) {
      i = (i + entries_.size() - 1) % entries_.size();
      const Entry& e = entries_[i];
      if (e.state != State::kAvailable && e.line == line_addr) {
        stat_probe_hits_->inc();
        return true;
      }
      if (i == tail_) break;
    }
  }
  // Spilled-but-unwritten-home data also holds the newest version.
  for (auto it = spills_.rbegin(); it != spills_.rend(); ++it) {
    if (line_of((*it)->words.front().first) == line_addr) {
      stat_probe_hits_->inc();
      return true;
    }
  }
  stat_probe_misses_->inc();
  return false;
}

void TxCache::on_ack(Addr line_addr) {
  stat_acks_->inc();
  // Nearest-tail match: the oldest issued entry for this line completed
  // first, because the controller keeps same-address writes in order (§4.1).
  if (count_ > 0) {
    std::size_t i = tail_;
    for (std::size_t n = 0; n < count_; ++n, i = next_(i)) {
      Entry& e = entries_[i];
      if (e.state == State::kCommitted && e.issued && e.line == line_addr) {
        e.state = State::kAvailable;
        e.tx = kNoTx;
        e.words.clear();
        NTC_ASSERT(committed_in_ring_ > 0, "ack frees a committed entry");
        --committed_in_ring_;
        advance_tail_();
        if (sink_ != nullptr) {
          check::CheckEvent ce;
          ce.kind = check::EventKind::kNtcRelease;
          ce.core = core_;
          ce.addr = line_addr;
          ce.persistent = true;
          sink_->on_event(ce);
        }
        return;
      }
    }
  }
  NTC_CHECK_MSG(false,
                "%s: NVM ack for line 0x%" PRIx64
                " does not match any issued NTC entry (occupancy %zu)",
                name_.c_str(), line_addr, count_);
}

void TxCache::advance_tail_() {
  while (count_ > 0 && entries_[tail_].state == State::kAvailable) {
    tail_ = next_(tail_);
    --count_;
  }
}

bool TxCache::issue_entry_(Cycle now, std::size_t idx) {
  Entry& e = entries_[idx];
  if (mem_->write_queue_full(e.line)) return false;
  mem::MemRequest req;
  req.op = mem::MemOp::kWrite;
  req.line_addr = e.line;
  req.persistent = true;
  req.core = core_;
  req.tx = e.tx;
  req.source = mem::Source::kTxCache;
  req.payload = e.words;
  const Addr line = e.line;
  req.on_complete = [this, line](const mem::MemRequest&) { on_ack(line); };
  const bool ok = mem_->enqueue(std::move(req), now);
  NTC_CHECK_MSG(ok,
                "%s: NVM write queue rejected NTC drain of line 0x%" PRIx64
                " (tx %" PRIu32 ") after the full check passed",
                name_.c_str(), line, e.tx);
  e.issued = true;
  stat_issued_->inc();
  if (sink_ != nullptr) {
    check::CheckEvent ce;
    ce.kind = check::EventKind::kNtcDrainIssue;
    ce.core = core_;
    ce.tx = e.tx;
    ce.addr = line;
    ce.seq = e.seq;
    ce.persistent = true;
    sink_->on_event(ce);
  }
  return true;
}

void TxCache::run_overflow_fallback_(Cycle now) {
  // §4.1: once almost full, spill the oldest ACTIVE entries to the NVM
  // shadow region with hardware copy-on-write; the home-address writes are
  // issued when the owning transaction commits. The oldest ACTIVE entry is
  // the front of active_fifo_ (ring order from the tail == seq order).
  if (active_fifo_.empty()) return;
  // Check the queue of the exact shadow line's channel: with a
  // multi-channel NVM, different lines can route to different queues.
  const Addr shadow_line = line_of(space_.shadow_base(core_) + shadow_cursor_);
  if (mem_->write_queue_full(shadow_line)) return;

  Entry& e = entries_[active_fifo_.front()];
  auto rec = std::make_shared<Spill>();
  rec->tx = e.tx;
  rec->words = e.words;
  rec->seq = e.seq;
  spills_.push_back(rec);
  stat_spills_->inc();

  mem::MemRequest req;
  req.op = mem::MemOp::kWrite;
  req.line_addr = shadow_line;
  shadow_cursor_ += kLineBytes;
  req.persistent = true;
  req.core = core_;
  req.tx = e.tx;
  req.source = mem::Source::kShadow;
  // Shadow payload lands at shadow addresses: it must not overwrite home
  // locations in the durable image (the transaction is uncommitted).
  req.payload.assign(1, {word_of(req.line_addr), e.words.front().second});
  req.on_complete = [rec](const mem::MemRequest&) { rec->shadow_done = true; };
  const bool ok = mem_->enqueue(std::move(req), now);
  NTC_ASSERT(ok, "NVM write queue checked before shadow spill");

  active_fifo_.pop_front();
  active_lines_.erase(e.line);
  e.state = State::kAvailable;
  e.tx = kNoTx;
  e.words.clear();
  advance_tail_();
  // one spill per cycle
}

bool TxCache::issue_spill_home_(Cycle now, const std::shared_ptr<Spill>& spill) {
  const Addr line = line_of(spill->words.front().first);
  if (mem_->write_queue_full(line)) return false;
  mem::MemRequest req;
  req.op = mem::MemOp::kWrite;
  req.line_addr = line;
  req.persistent = true;
  req.core = core_;
  req.tx = spill->tx;
  req.source = mem::Source::kTxCache;
  req.payload = spill->words;
  // Shared ownership keeps the record alive past reaping.
  req.on_complete = [this, spill, line](const mem::MemRequest&) {
    spill->home_done = true;
    NTC_ASSERT(committed_undone_spills_ > 0, "home ack matches a committed spill");
    --committed_undone_spills_;
    stat_acks_->inc();
    if (sink_ != nullptr) {
      check::CheckEvent ce;
      ce.kind = check::EventKind::kNtcRelease;
      ce.core = core_;
      ce.addr = line;
      ce.persistent = true;
      sink_->on_event(ce);
    }
  };
  const bool ok = mem_->enqueue(std::move(req), now);
  NTC_CHECK_MSG(ok,
                "%s: NVM write queue rejected spill home write of line 0x%" PRIx64
                " (tx %" PRIu32 ") after the full check passed",
                name_.c_str(), line, spill->tx);
  spill->home_issued = true;
  if (sink_ != nullptr) {
    check::CheckEvent ce;
    ce.kind = check::EventKind::kNtcDrainIssue;
    ce.core = core_;
    ce.tx = spill->tx;
    ce.addr = line;
    ce.seq = spill->seq;
    ce.persistent = true;
    sink_->on_event(ce);
  }
  return true;
}

void TxCache::tick(Cycle now) {
  // Issue committed writes toward the NVM strictly in program (sequence)
  // order, merging the ring with the overflow spill table. Committed items
  // always carry lower sequence numbers than ACTIVE ones (transactions are
  // sequential per core), so lowest-seq-first IS the paper's FIFO order.
  // Both candidate sets are seq-sorted deques, so each pick is O(1): the
  // oldest committed-unissued ring entry is committed_fifo_.front() and the
  // oldest unissued spill is spills_[spill_home_issued_live_] (home writes
  // issue in seq order, so the issued ones form a prefix of the deque).
  if (drain_order_mutant_ && committed_fifo_.size() > 1) {
    // Test seam: invert the drain order of the two oldest committed
    // entries so the checker's fifo-drain rule has something to catch.
    std::swap(committed_fifo_.front(), committed_fifo_.back());
  }
  unsigned issued = 0;
  while (issued < cfg_.drain_per_cycle &&
         (!committed_fifo_.empty() || committed_spills_ > 0)) {
    // FIFO boundary: nothing may be issued past the oldest ACTIVE entry
    // (§4.1 — committed lines are written back in FIFO = program order).
    const std::uint64_t min_active_seq =
        active_fifo_.empty() ? ~0ULL : entries_[active_fifo_.front()].seq;
    std::uint64_t best_seq = ~0ULL;
    bool best_is_entry = false;
    if (!committed_fifo_.empty()) {
      best_seq = entries_[committed_fifo_.front()].seq;
      best_is_entry = true;
    }
    std::shared_ptr<Spill> best_spill;
    if (spill_home_issued_live_ < spills_.size()) {
      const std::shared_ptr<Spill>& s = spills_[spill_home_issued_live_];
      if (s->committed && !s->home_issued && s->seq < best_seq) {
        best_seq = s->seq;
        best_is_entry = false;
        best_spill = s;
      }
    }
    if (best_seq == ~0ULL) break;          // nothing committed to drain
    if (best_seq > min_active_seq) break;  // would pass an active entry
    if (best_is_entry) {
      if (!issue_entry_(now, committed_fifo_.front())) break;
      committed_fifo_.pop_front();
    } else {
      // The copy-on-write shadow write must be durable before the home
      // write may pass it in the pipeline.
      if (!best_spill->shadow_done) break;
      if (!issue_spill_home_(now, best_spill)) break;
      --committed_spills_;
      ++spill_home_issued_live_;
    }
    ++issued;
  }

  if (overflow_imminent()) run_overflow_fallback_(now);

  // Reap completed spill records (shadow written, home durable, committed).
  while (!spills_.empty() && spills_.front()->committed &&
         spills_.front()->home_done && spills_.front()->shadow_done) {
    NTC_ASSERT(spill_home_issued_live_ > 0,
               "reaped spill issued its home write");
    --spill_home_issued_live_;
    spills_.pop_front();
  }
}

Cycle TxCache::next_event_cycle(Cycle now) const {
  // Committed work still to drain: the issue loop runs (or retries a full
  // write queue / a shadow write still in flight) every cycle.
  if (!committed_fifo_.empty() || committed_spills_ > 0) return now + 1;
  // Overflow fall-back with spillable victims: tick() spills one per cycle.
  if (overflow_imminent() && !active_fifo_.empty()) return now + 1;
  // Only acks (and the reaps they unlock) remain; those arrive through the
  // event queue, which the cluster never jumps past.
  return kNeverCycle;
}

bool TxCache::drained() const {
  // Counters track exactly what the old full scans looked for: any ring
  // entry still in COMMITTED state, or any committed spill whose home
  // write is not yet durable.
  return committed_in_ring_ == 0 && committed_undone_spills_ == 0;
}

recovery::NtcSnapshot TxCache::snapshot() const {
  // Merge ring entries and spill records in program (sequence) order —
  // recovery replays oldest-first.
  std::vector<std::pair<std::uint64_t, recovery::NtcEntrySnapshot>> items;
  for (const auto& s : spills_) {
    // A spill whose home write completed is already durable in NVM; newer
    // same-address writes may have landed after it, so replaying it would
    // roll the word back. It is logically freed (awaiting reap): skip it.
    if (s->home_done) continue;
    recovery::NtcEntrySnapshot e;
    e.tx = s->tx;
    // An uncommitted spill is discarded at recovery. A committed spill is
    // recoverable: its home words live in the shadow region plus the
    // nonvolatile spill table, both of which survive the crash.
    e.committed = s->committed;
    e.words = s->words;
    items.emplace_back(s->seq, std::move(e));
  }
  std::size_t i = tail_;
  for (std::size_t n = 0; n < count_; ++n, i = next_(i)) {
    const Entry& en = entries_[i];
    if (en.state == State::kAvailable) continue;
    recovery::NtcEntrySnapshot e;
    e.tx = en.tx;
    e.committed = en.state == State::kCommitted;
    e.words = en.words;
    items.emplace_back(en.seq, std::move(e));
  }
  std::sort(items.begin(), items.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  recovery::NtcSnapshot snap;
  snap.reserve(items.size());
  for (auto& [_, e] : items) snap.push_back(std::move(e));
  return snap;
}

}  // namespace ntcsim::txcache
