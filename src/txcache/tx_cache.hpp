// The paper's contribution (§3/§4.1): a per-core nonvolatile transaction
// cache (NTC) implemented as a content-addressable FIFO (CAM-FIFO).
//
//  * Write requests from the CPU (TxID, address, value) are inserted at the
//    head as ACTIVE entries. A cache-line entry holds the whole 64 B line,
//    so same-line writes of the same open transaction coalesce in place;
//    writes of *different* transactions to one line keep separate entries —
//    that is the multi-versioning the recovery path relies on.
//  * A commit request CAM-matches every entry with the TxID and moves it to
//    COMMITTED. Committed entries are issued toward the NVM in FIFO
//    (= program) order, which is the paper's write-order control.
//  * The NVM controller acknowledges each completed persistent write; the
//    ack CAM-matches the entry *nearest the tail* and frees it. The tail
//    then advances over AVAILABLE entries (acks may complete out of order).
//  * An LLC miss probe CAM-matches the entry *nearest the head* (newest
//    value), because the LLC drops persistent write-backs and must not read
//    stale NVM data.
//  * Overflow fall-back (§4.1): when occupancy reaches the threshold
//    (default 90 %), the oldest ACTIVE entries are spilled to a per-core
//    NVM shadow region with hardware-controlled copy-on-write; their home
//    writes are issued when the owning transaction commits.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "check/events.hpp"
#include "common/config.hpp"
#include "common/hot.hpp"
#include "common/stat_handle.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "mem/memory_system.hpp"
#include "recovery/recovery.hpp"

namespace ntcsim::txcache {

class TxCache {
 public:
  TxCache(std::string name, CoreId core, const TxCacheConfig& cfg,
          const AddressSpace& space, mem::MemorySystem& mem, StatSet& stats);

  /// CPU write request. Returns false when the FIFO is full or the CAM
  /// port is still busy with the previous operation (one op per
  /// latency_cycles) — the CPU retries; a full NTC is the only stall that
  /// shows up at paper scale (§5.2).
  bool write(Cycle now, Addr addr, Word value, TxId tx);

  /// CPU commit request: CAM-match `tx`, ACTIVE -> COMMITTED. Non-blocking.
  void commit(TxId tx);

  /// LLC miss request: nearest-head CAM match over valid entries.
  bool probe(Addr line_addr) const;

  /// Acknowledgment message from the NVM controller.
  void on_ack(Addr line_addr);

  /// Issue committed entries toward the NVM in FIFO order; run the
  /// overflow fall-back when nearly full. Call once per cycle.
  void tick(Cycle now);

  /// Earliest cycle > now at which tick() could do work, assuming no
  /// external input (quiescence contract). Committed-but-undrained work or
  /// an imminent overflow with ACTIVE victims pins now + 1; everything
  /// else (acks, reaps they trigger) is event-driven — kNeverCycle.
  NTC_HOT Cycle next_event_cycle(Cycle now) const;

  std::size_t occupancy() const { return count_; }
  std::size_t capacity() const { return entries_.size(); }
  bool full() const { return count_ == entries_.size(); }
  /// The fall-back trip point (§4.1, "e.g., 90 % full").
  bool overflow_imminent() const;

  /// True when nothing remains to drain (active entries may remain).
  bool drained() const;

  /// Nonvolatile contents at crash time, oldest first, for recovery.
  recovery::NtcSnapshot snapshot() const;

  const std::string& name() const { return name_; }

  /// Persistence-order checker tap (null = off): inserts, commits, drain
  /// issues and releases.
  void set_check_sink(check::CheckSink* sink) { sink_ = sink; }

  /// Test seam (mutation testing of the checker): drain the two oldest
  /// committed ring entries in swapped order, breaking the FIFO invariant
  /// the real hardware guarantees. Never set outside tests.
  void set_drain_order_mutant(bool on) { drain_order_mutant_ = on; }

 private:
  enum class State : std::uint8_t { kAvailable, kActive, kCommitted };

  struct Entry {
    State state = State::kAvailable;
    TxId tx = kNoTx;
    Addr line = 0;
    std::vector<std::pair<Addr, Word>> words;
    bool issued = false;       ///< Sent to the NVM, awaiting its ack.
    std::uint64_t seq = 0;     ///< Program-order sequence of the write.
  };

  /// Overflow fall-back record: lives in the NVM shadow region.
  struct Spill {
    TxId tx = kNoTx;
    std::vector<std::pair<Addr, Word>> words;  ///< Home addresses.
    bool committed = false;
    bool home_issued = false;  ///< Home write sent to the NVM controller.
    bool home_done = false;    ///< Home write acked (durable).
    bool shadow_done = false;  ///< Shadow copy-on-write write acked.
    std::uint64_t seq = 0;     ///< Inherited from the spilled entry.
  };

  std::size_t next_(std::size_t i) const { return (i + 1) % entries_.size(); }
  void advance_tail_();
  bool issue_entry_(Cycle now, std::size_t idx);
  bool issue_spill_home_(Cycle now, const std::shared_ptr<Spill>& spill);
  void run_overflow_fallback_(Cycle now);

  std::string name_;
  CoreId core_;
  TxCacheConfig cfg_;
  AddressSpace space_;
  mem::MemorySystem* mem_;
  check::CheckSink* sink_ = nullptr;
  bool drain_order_mutant_ = false;

  std::vector<Entry> entries_;
  std::size_t head_ = 0;  ///< Next insertion slot.
  std::size_t tail_ = 0;  ///< Oldest live entry.
  std::size_t count_ = 0;

  std::deque<std::shared_ptr<Spill>> spills_;
  std::uint64_t shadow_cursor_ = 0;
  std::uint64_t next_seq_ = 1;
  std::size_t committed_spills_ = 0;     ///< Spills awaiting home writes.
  Cycle port_free_at_ = 0;               ///< CPU-side CAM port occupancy.
  /// Open-transaction same-line coalescing index: line -> ring slot.
  std::unordered_map<Addr, std::size_t> active_lines_;

  // O(1) drain/spill bookkeeping. The ring region [tail, head) is in
  // ascending seq order (insertion at head), so these deques — fed in ring
  // order — stay seq-sorted without searching:
  //  * active_fifo_ holds the ring slots of ACTIVE entries, oldest first
  //    (front = the FIFO boundary seq and the next spill victim).
  //  * committed_fifo_ holds COMMITTED-but-unissued slots, oldest first
  //    (front = next drain candidate). Slots here are never recycled:
  //    only issued entries are freed by acks.
  //  * spill_home_issued_live_ counts the home_issued prefix of spills_
  //    (home writes issue strictly in seq order), so the next home-write
  //    candidate is spills_[spill_home_issued_live_].
  std::deque<std::size_t> active_fifo_;
  std::deque<std::size_t> committed_fifo_;
  std::size_t spill_home_issued_live_ = 0;
  std::size_t committed_in_ring_ = 0;       ///< Entries in COMMITTED state.
  std::size_t committed_undone_spills_ = 0; ///< Committed, home not durable.

  CounterHandle stat_writes_;
  CounterHandle stat_commits_;
  CounterHandle stat_issued_;
  CounterHandle stat_acks_;
  CounterHandle stat_probe_hits_;
  CounterHandle stat_probe_misses_;
  CounterHandle stat_spills_;
  CounterHandle stat_merges_;
  CounterHandle stat_full_rejects_;
  CounterHandle stat_port_busy_;
};

}  // namespace ntcsim::txcache
