// btree — search/insert 64-bit key-value pairs in a B+tree-style block
// index (Table 3). A CLRS B-tree of minimum degree t=4 (up to 7 keys and
// 8 children per 192-byte node) executes on the host; key scans, shifts
// and node splits emit their real load/store patterns.
#include <memory>
#include <vector>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "workload/emitter.hpp"
#include "workload/workloads.hpp"

namespace ntcsim::workload {

namespace {

constexpr int kT = 4;               // minimum degree
constexpr int kMaxKeys = 2 * kT - 1;  // 7
constexpr std::size_t kNodeBytes = 192;
constexpr unsigned kOffHeader = 0;

Addr key_off(int i) { return 8 + 8 * static_cast<Addr>(i); }
Addr val_off(int i) { return 64 + 8 * static_cast<Addr>(i); }
Addr child_off(int i) { return 120 + 8 * static_cast<Addr>(i); }

struct BNode {
  Addr a = 0;
  bool leaf = true;
  int n = 0;
  Word keys[kMaxKeys] = {};
  Word vals[kMaxKeys] = {};
  BNode* ch[2 * kT] = {};
};

class BTree {
 public:
  BTree(TraceEmitter& em, SimHeap& heap, CoreId core)
      : em_(&em), heap_(&heap), core_(core) {
    root_slot_ = heap_->alloc(core_, kWordBytes, kWordBytes);
    root_ = new_node(true);
    em_->store(root_slot_, root_->a);
  }

  void insert(Word key, Word val) {
    em_->load(root_slot_);
    if (root_->n == kMaxKeys) {
      BNode* s = new_node(false);
      s->ch[0] = root_;
      em_->store(s->a + child_off(0), root_->a);
      split_child(s, 0);
      em_->store(root_slot_, s->a);
      root_ = s;
    }
    insert_nonfull(root_, key, val);
    ++size_;
  }

  bool search(Word key) const {
    em_->load(root_slot_);
    const BNode* x = root_;
    while (true) {
      em_->load(x->a + kOffHeader);
      int i = 0;
      while (i < x->n) {
        em_->load(x->a + key_off(i));
        em_->compute(1);
        if (key <= x->keys[i]) break;
        ++i;
      }
      if (i < x->n && x->keys[i] == key) {
        em_->load(x->a + val_off(i));
        return true;
      }
      if (x->leaf) return false;
      em_->load(x->a + child_off(i));
      x = x->ch[i];
    }
  }

  std::size_t size() const { return size_; }

  void verify() const {
    Word prev = 0;
    bool first = true;
    int leaf_depth = -1;
    check(root_, 0, prev, first, leaf_depth, true);
  }

 private:
  BNode* new_node(bool leaf) {
    auto owned = std::make_unique<BNode>();
    BNode* n = owned.get();
    nodes_.push_back(std::move(owned));
    n->a = heap_->alloc(core_, kNodeBytes, kLineBytes);
    n->leaf = leaf;
    em_->store(n->a + kOffHeader, leaf ? 1 : 0);
    return n;
  }

  void store_header(BNode* x) {
    em_->store(x->a + kOffHeader,
               (static_cast<Word>(x->n) << 1) | (x->leaf ? 1 : 0));
  }

  /// Split the full child x->ch[i]; x is non-full.
  void split_child(BNode* x, int i) {
    BNode* y = x->ch[i];
    BNode* z = new_node(y->leaf);
    z->n = kT - 1;
    // Upper t-1 keys/values move to z.
    for (int j = 0; j < kT - 1; ++j) {
      z->keys[j] = y->keys[j + kT];
      z->vals[j] = y->vals[j + kT];
      em_->load(y->a + key_off(j + kT));
      em_->load(y->a + val_off(j + kT));
      em_->store(z->a + key_off(j), z->keys[j]);
      em_->store(z->a + val_off(j), z->vals[j]);
    }
    if (!y->leaf) {
      for (int j = 0; j < kT; ++j) {
        z->ch[j] = y->ch[j + kT];
        em_->load(y->a + child_off(j + kT));
        em_->store(z->a + child_off(j), z->ch[j]->a);
      }
    }
    y->n = kT - 1;
    store_header(y);
    store_header(z);
    // Shift x's children/keys right to make room.
    for (int j = x->n; j >= i + 1; --j) {
      x->ch[j + 1] = x->ch[j];
      em_->store(x->a + child_off(j + 1), x->ch[j]->a);
    }
    x->ch[i + 1] = z;
    em_->store(x->a + child_off(i + 1), z->a);
    for (int j = x->n - 1; j >= i; --j) {
      x->keys[j + 1] = x->keys[j];
      x->vals[j + 1] = x->vals[j];
      em_->store(x->a + key_off(j + 1), x->keys[j]);
      em_->store(x->a + val_off(j + 1), x->vals[j]);
    }
    x->keys[i] = y->keys[kT - 1];
    x->vals[i] = y->vals[kT - 1];
    em_->store(x->a + key_off(i), x->keys[i]);
    em_->store(x->a + val_off(i), x->vals[i]);
    ++x->n;
    store_header(x);
  }

  void insert_nonfull(BNode* x, Word key, Word val) {
    em_->load(x->a + kOffHeader);
    int i = x->n - 1;
    if (x->leaf) {
      while (i >= 0) {
        em_->load(x->a + key_off(i));
        em_->compute(1);
        if (x->keys[i] <= key) break;
        x->keys[i + 1] = x->keys[i];
        x->vals[i + 1] = x->vals[i];
        em_->store(x->a + key_off(i + 1), x->keys[i + 1]);
        em_->store(x->a + val_off(i + 1), x->vals[i + 1]);
        --i;
      }
      x->keys[i + 1] = key;
      x->vals[i + 1] = val;
      em_->store(x->a + key_off(i + 1), key);
      em_->store(x->a + val_off(i + 1), val);
      ++x->n;
      store_header(x);
      return;
    }
    while (i >= 0) {
      em_->load(x->a + key_off(i));
      em_->compute(1);
      if (x->keys[i] <= key) break;
      --i;
    }
    ++i;
    em_->load(x->a + child_off(i));
    if (x->ch[i]->n == kMaxKeys) {
      split_child(x, i);
      em_->load(x->a + key_off(i));
      em_->compute(1);
      if (key > x->keys[i]) ++i;
    }
    insert_nonfull(x->ch[i], key, val);
  }

  void check(const BNode* x, int depth, Word& prev, bool& first,
             int& leaf_depth, bool is_root) const {
    NTC_ASSERT(x->n <= kMaxKeys, "btree: node overfull");
    if (!is_root) {
      NTC_ASSERT(x->n >= kT - 1, "btree: node underfull");
    }
    if (x->leaf) {
      if (leaf_depth < 0) leaf_depth = depth;
      NTC_ASSERT(depth == leaf_depth, "btree: leaves at unequal depth");
      for (int i = 0; i < x->n; ++i) {
        NTC_ASSERT(first || prev <= x->keys[i], "btree: order violation");
        prev = x->keys[i];
        first = false;
      }
      return;
    }
    for (int i = 0; i < x->n; ++i) {
      check(x->ch[i], depth + 1, prev, first, leaf_depth, false);
      NTC_ASSERT(first || prev <= x->keys[i], "btree: order violation");
      prev = x->keys[i];
      first = false;
    }
    check(x->ch[x->n], depth + 1, prev, first, leaf_depth, false);
  }

  TraceEmitter* em_;
  SimHeap* heap_;
  CoreId core_;
  Addr root_slot_ = 0;
  BNode* root_ = nullptr;
  std::vector<std::unique_ptr<BNode>> nodes_;
  std::size_t size_ = 0;
};

}  // namespace

TraceBundle gen_btree(const WorkloadParams& p, CoreId core, SimHeap& heap,
                      recovery::Journal* journal) {
  TraceEmitter em(core, heap.space(), journal);
  Rng rng(p.seed * 0x165f + core);
  // The constructor initializes the persistent root slot, so it must run
  // inside a transaction.
  em.begin_tx();
  BTree tree(em, heap, core);
  em.end_tx();
  std::vector<Word> keys;

  for (std::size_t i = 0; i < p.setup_elems;) {
    em.begin_tx();
    for (unsigned b = 0; b < p.setup_batch && i < p.setup_elems; ++b, ++i) {
      const Word k = rng.next();
      em.compute(kSetupComputePadding);
      tree.insert(k, rng.next());
      keys.push_back(k);
    }
    em.end_tx();
  }

  em.mark_measured_phase();

  for (std::size_t op = 0; op < p.ops; ++op) {
    em.begin_tx();
    em.compute(p.compute_per_op);
    if (rng.below(100) < p.lookup_pct && !keys.empty()) {
      const Word k =
          rng.chance(1, 2) ? keys[rng.below(keys.size())] : rng.next();
      tree.search(k);
    } else {
      const Word k = rng.next();
      tree.insert(k, rng.next());
      keys.push_back(k);
    }
    em.end_tx();
  }

  tree.verify();
  return TraceBundle{em.take_setup(), em.take_measured()};
}

}  // namespace ntcsim::workload
