#include "workload/emitter.hpp"

#include <utility>

#include "common/assert.hpp"

namespace ntcsim::workload {

TraceEmitter::TraceEmitter(CoreId core, const AddressSpace& space,
                           recovery::Journal* journal)
    : core_(core), space_(space), journal_(journal) {}

void TraceEmitter::begin_tx() {
  NTC_ASSERT(tx_ == kNoTx, "nested transactions are not supported");
  tx_ = next_tx_++;
  current_().push(core::MicroOp::tx_begin(tx_));
  if (journal_ != nullptr) journal_->begin_tx(core_, tx_);
}

void TraceEmitter::end_tx() {
  NTC_ASSERT(tx_ != kNoTx, "end_tx outside a transaction");
  current_().push(core::MicroOp::tx_end());
  if (journal_ != nullptr) journal_->end_tx(core_);
  tx_ = kNoTx;
}

void TraceEmitter::load(Addr a) {
  current_().push(core::MicroOp::load(a, space_.is_persistent(a)));
}

void TraceEmitter::store(Addr a, Word v) {
  const bool persistent = space_.is_persistent(a);
  if (persistent) {
    NTC_ASSERT(in_tx(), "persistent store outside a transaction");
    if (journal_ != nullptr) journal_->write(core_, a, v);
  }
  current_().push(core::MicroOp::store(a, v, persistent));
}

void TraceEmitter::compute(unsigned n) {
  for (unsigned i = 0; i < n; ++i) current_().push(core::MicroOp::compute());
}

void TraceEmitter::mark_measured_phase() {
  NTC_ASSERT(!in_tx(), "phase switch inside a transaction");
  NTC_ASSERT(!in_measured_, "measured phase marked twice");
  in_measured_ = true;
}

core::Trace TraceEmitter::take_setup() { return std::move(setup_); }

core::Trace TraceEmitter::take_measured() { return std::move(measured_); }

core::Trace TraceEmitter::take_combined() {
  std::vector<core::MicroOp> ops = setup_.ops();
  ops.insert(ops.end(), measured_.ops().begin(), measured_.ops().end());
  setup_ = core::Trace{};
  measured_ = core::Trace{};
  return core::Trace(std::move(ops));
}

}  // namespace ntcsim::workload
