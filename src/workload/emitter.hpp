// Records a workload's memory behaviour as a micro-op trace while the
// host-side data structure executes, and journals transactional persistent
// writes for the crash-consistency oracle.
#pragma once

#include "common/config.hpp"
#include "common/types.hpp"
#include "core/trace.hpp"
#include "recovery/journal.hpp"

namespace ntcsim::workload {

class TraceEmitter {
 public:
  /// `journal` may be null (no recovery tracking).
  TraceEmitter(CoreId core, const AddressSpace& space,
               recovery::Journal* journal);

  /// Ops emitted before this call belong to the setup (structure-build)
  /// phase; ops after it to the measured phase. Call at most once, outside
  /// a transaction.
  void mark_measured_phase();

  void begin_tx();
  void end_tx();
  bool in_tx() const { return tx_ != kNoTx; }
  TxId current_tx() const { return tx_; }

  void load(Addr a);
  /// Persistent stores are only legal inside a transaction (the paper's
  /// programming model: persistence is per-transaction).
  void store(Addr a, Word v);
  void compute(unsigned n = 1);

  /// The phase traces. If mark_measured_phase was never called, everything
  /// is in setup and measured is empty.
  core::Trace take_setup();
  core::Trace take_measured();
  /// Both phases concatenated (for single-trace consumers).
  core::Trace take_combined();
  const core::Trace& trace() const { return current_(); }

 private:
  const core::Trace& current_() const {
    return in_measured_ ? measured_ : setup_;
  }
  core::Trace& current_() { return in_measured_ ? measured_ : setup_; }

  CoreId core_;
  AddressSpace space_;
  recovery::Journal* journal_;
  core::Trace setup_;
  core::Trace measured_;
  bool in_measured_ = false;
  TxId tx_ = kNoTx;
  TxId next_tx_ = 1;
};

}  // namespace ntcsim::workload
