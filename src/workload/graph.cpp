// graph — insert edges into an adjacency-list graph (Table 3). Each vertex
// owns a singly linked edge list headed in a persistent vertex table; an
// edge node is {to, weight, next} = 24 bytes. An insert transaction scans
// the first few edges (duplicate check) and links at the front.
#include <memory>
#include <vector>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "workload/emitter.hpp"
#include "workload/workloads.hpp"

namespace ntcsim::workload {

namespace {

struct Edge {
  Addr a = 0;
  std::uint64_t to = 0;
  Word weight = 0;
  Edge* next = nullptr;
};

constexpr unsigned kOffTo = 0;
constexpr unsigned kOffWeight = 8;
constexpr unsigned kOffNext = 16;

}  // namespace

TraceBundle gen_graph(const WorkloadParams& p, CoreId core, SimHeap& heap,
                      recovery::Journal* journal) {
  TraceEmitter em(core, heap.space(), journal);
  Rng rng(p.seed * 0xc2b2 + core);
  const std::size_t nv = p.setup_elems;
  NTC_ASSERT(nv >= 2, "graph needs at least two vertices");

  const Addr vtx = heap.alloc(core, nv * kWordBytes, kLineBytes);
  std::vector<Edge*> heads(nv, nullptr);
  std::vector<std::unique_ptr<Edge>> edges;
  std::size_t edge_count = 0;

  auto insert_edge = [&] {
    const std::size_t src = rng.below(nv);
    const std::size_t dst = rng.below(nv);
    em.load(vtx + src * kWordBytes);
    // Scan up to four existing edges (duplicate check pattern).
    unsigned scanned = 0;
    for (Edge* e = heads[src]; e != nullptr && scanned < 4; e = e->next) {
      em.load(e->a + kOffTo);
      em.compute(1);
      em.load(e->a + kOffNext);
      ++scanned;
    }
    auto edge = std::make_unique<Edge>();
    edge->a = heap.alloc(core, 24);
    edge->to = dst;
    edge->weight = rng.next();
    edge->next = heads[src];
    em.store(edge->a + kOffTo, dst);
    em.store(edge->a + kOffWeight, edge->weight);
    em.store(edge->a + kOffNext, edge->next ? edge->next->a : 0);
    em.store(vtx + src * kWordBytes, edge->a);
    heads[src] = edge.get();
    edges.push_back(std::move(edge));
    ++edge_count;
  };

  // Setup: initialize vertex heads to null, then seed with edges.
  for (std::size_t v = 0; v < nv;) {
    em.begin_tx();
    for (unsigned b = 0; b < p.setup_batch * 4 && v < nv; ++b, ++v) {
      em.store(vtx + v * kWordBytes, 0);
    }
    em.end_tx();
  }
  const std::size_t seed_edges = 2 * nv;  // average degree 2 to start
  for (std::size_t i = 0; i < seed_edges;) {
    em.begin_tx();
    for (unsigned b = 0; b < p.setup_batch && i < seed_edges; ++b, ++i) {
      em.compute(kSetupComputePadding);
      insert_edge();
    }
    em.end_tx();
  }

  em.mark_measured_phase();

  // Measured phase: one edge insert per transaction.
  for (std::size_t op = 0; op < p.ops; ++op) {
    em.begin_tx();
    em.compute(p.compute_per_op);
    insert_edge();
    em.end_tx();
  }

  NTC_ASSERT(edge_count == seed_edges + p.ops, "graph edge accounting broken");
  return TraceBundle{em.take_setup(), em.take_measured()};
}

}  // namespace ntcsim::workload
