// hashtable — search/insert 64-bit key-value pairs in a chained hash table
// (Table 3). Node: {key, value, next} = 24 bytes in the persistent heap.
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "workload/emitter.hpp"
#include "workload/workloads.hpp"

namespace ntcsim::workload {

namespace {

struct HNode {
  Addr a = 0;
  Word key = 0;
  Word val = 0;
  HNode* next = nullptr;
};

constexpr unsigned kOffKey = 0;
constexpr unsigned kOffVal = 8;
constexpr unsigned kOffNext = 16;

class HashTable {
 public:
  HashTable(TraceEmitter& em, SimHeap& heap, CoreId core, std::size_t buckets)
      : em_(&em), heap_(&heap), core_(core) {
    // Round up to a power of two for mask hashing.
    nbuckets_ = 1;
    while (nbuckets_ < buckets) nbuckets_ <<= 1;
    table_ = heap_->alloc(core_, nbuckets_ * kWordBytes, kLineBytes);
    heads_.assign(nbuckets_, nullptr);
  }

  std::size_t bucket_of(Word key) const {
    return (key * 0x9e3779b97f4a7c15ULL >> 32) & (nbuckets_ - 1);
  }
  Addr bucket_addr(std::size_t b) const { return table_ + b * kWordBytes; }

  /// One insert transaction: hash, read head, link a new node at the front.
  void insert(Word key, Word val) {
    const std::size_t b = bucket_of(key);
    em_->compute(1);  // hash
    em_->load(bucket_addr(b));
    auto node = std::make_unique<HNode>();
    node->a = heap_->alloc(core_, 24);
    node->key = key;
    node->val = val;
    node->next = heads_[b];
    em_->store(node->a + kOffKey, key);
    em_->store(node->a + kOffVal, val);
    em_->store(node->a + kOffNext, node->next ? node->next->a : 0);
    em_->store(bucket_addr(b), node->a);
    heads_[b] = node.get();
    nodes_.push_back(std::move(node));
    ++size_;
  }

  /// One search transaction: walk the chain, comparing keys.
  bool search(Word key) {
    const std::size_t b = bucket_of(key);
    em_->compute(1);
    em_->load(bucket_addr(b));
    for (HNode* n = heads_[b]; n != nullptr; n = n->next) {
      em_->load(n->a + kOffKey);
      em_->compute(1);
      if (n->key == key) {
        em_->load(n->a + kOffVal);
        return true;
      }
      em_->load(n->a + kOffNext);
    }
    return false;
  }

  std::size_t size() const { return size_; }

  /// Self-check: every inserted key is reachable in its chain.
  void verify(const std::unordered_map<Word, Word>& oracle) const {
    for (const auto& [key, val] : oracle) {
      const HNode* n = heads_[bucket_of(key)];
      while (n != nullptr && n->key != key) n = n->next;
      NTC_ASSERT(n != nullptr, "hashtable lost a key");
      NTC_ASSERT(n->val == val, "hashtable value mismatch");
    }
  }

 private:
  TraceEmitter* em_;
  SimHeap* heap_;
  CoreId core_;
  std::size_t nbuckets_ = 0;
  Addr table_ = 0;
  std::vector<HNode*> heads_;
  std::vector<std::unique_ptr<HNode>> nodes_;
  std::size_t size_ = 0;
};

}  // namespace

TraceBundle gen_hashtable(const WorkloadParams& p, CoreId core, SimHeap& heap,
                          recovery::Journal* journal) {
  TraceEmitter em(core, heap.space(), journal);
  Rng rng(p.seed * 0x85eb + core);
  HashTable ht(em, heap, core, p.setup_elems);
  std::unordered_map<Word, Word> oracle;
  std::vector<Word> keys;

  auto fresh_key = [&] {
    Word k;
    do {
      k = rng.next() | 1;  // nonzero
    } while (oracle.count(k) != 0);
    return k;
  };

  // Setup: batched inserts.
  for (std::size_t i = 0; i < p.setup_elems;) {
    em.begin_tx();
    for (unsigned b = 0; b < p.setup_batch && i < p.setup_elems; ++b, ++i) {
      const Word k = fresh_key();
      const Word v = rng.next();
      em.compute(kSetupComputePadding);
      ht.insert(k, v);
      oracle[k] = v;
      keys.push_back(k);
    }
    em.end_tx();
  }

  em.mark_measured_phase();

  // Measured phase: lookup_pct searches (hit half the time), rest inserts.
  for (std::size_t op = 0; op < p.ops; ++op) {
    em.begin_tx();
    em.compute(p.compute_per_op);
    if (rng.below(100) < p.lookup_pct && !keys.empty()) {
      const Word k = rng.chance(1, 2) ? keys[rng.below(keys.size())]
                                      : (rng.next() | 1);
      ht.search(k);
    } else {
      const Word k = fresh_key();
      const Word v = rng.next();
      ht.insert(k, v);
      oracle[k] = v;
      keys.push_back(k);
    }
    em.end_tx();
  }

  ht.verify(oracle);
  return TraceBundle{em.take_setup(), em.take_measured()};
}

}  // namespace ntcsim::workload
