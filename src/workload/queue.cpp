// queue — persistent MPSC-style FIFO ring (extension beyond the paper's
// Table 3): a producer/consumer log typical of storage-engine write paths.
// Each operation is one transaction: enqueue writes a record and bumps the
// head index; dequeue reads a record and bumps the tail index. The head
// and tail words are the hottest persistent words in the suite — every
// transaction rewrites one of them, which stresses same-line multi-
// versioning in the NTC and same-address ordering at the controller.
#include <array>
#include <vector>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "workload/emitter.hpp"
#include "workload/workloads.hpp"

namespace ntcsim::workload {

namespace {

constexpr std::size_t kRecordWords = 4;  // 32 B payload per queue record

}  // namespace

TraceBundle gen_queue(const WorkloadParams& p, CoreId core, SimHeap& heap,
                      recovery::Journal* journal) {
  TraceEmitter em(core, heap.space(), journal);
  Rng rng(p.seed * 0x51ed + core);
  const std::size_t slots = p.setup_elems;
  NTC_ASSERT(slots >= 4, "queue needs a few slots");

  // Control block: head (enqueue index) and tail (dequeue index) words,
  // deliberately on the same line (the classic layout mistake real
  // persistent queues make — and a stress test for line-level versioning).
  const Addr ctrl = heap.alloc(core, kLineBytes, kLineBytes);
  const Addr ring = heap.alloc(core, slots * kRecordWords * kWordBytes,
                               kLineBytes);
  std::vector<std::array<Word, kRecordWords>> host(slots);
  Word head = 0, tail = 0;

  auto slot_addr = [&](Word index, std::size_t w) {
    return ring + (index % slots) * kRecordWords * kWordBytes +
           w * kWordBytes;
  };

  auto enqueue = [&] {
    em.load(ctrl);      // head
    em.load(ctrl + 8);  // tail (full check)
    em.compute(2);
    if (head - tail >= slots) return;  // full: drop (counted as a no-op tx)
    for (std::size_t w = 0; w < kRecordWords; ++w) {
      const Word v = rng.next();
      host[head % slots][w] = v;
      em.store(slot_addr(head, w), v);
    }
    ++head;
    em.store(ctrl, head);
  };

  auto dequeue = [&] {
    em.load(ctrl + 8);  // tail
    em.load(ctrl);      // head (empty check)
    em.compute(2);
    if (tail == head) return;  // empty
    for (std::size_t w = 0; w < kRecordWords; ++w) {
      em.load(slot_addr(tail, w));
    }
    ++tail;
    em.store(ctrl + 8, tail);
  };

  // Setup: initialize control words and pre-fill half the ring.
  em.begin_tx();
  em.store(ctrl, 0);
  em.store(ctrl + 8, 0);
  em.end_tx();
  const std::size_t prefill = slots / 2;
  for (std::size_t i = 0; i < prefill;) {
    em.begin_tx();
    for (unsigned b = 0; b < p.setup_batch && i < prefill; ++b, ++i) {
      em.compute(kSetupComputePadding);
      enqueue();
    }
    em.end_tx();
  }

  em.mark_measured_phase();

  // Measured phase: mixed enqueue/dequeue, one per transaction. lookup_pct
  // selects dequeues (reads dominate at high values).
  for (std::size_t op = 0; op < p.ops; ++op) {
    em.begin_tx();
    em.compute(p.compute_per_op);
    if (rng.below(100) < p.lookup_pct) {
      dequeue();
    } else {
      enqueue();
    }
    em.end_tx();
  }

  NTC_ASSERT(head >= tail && head - tail <= slots,
             "queue indices out of sync");
  return TraceBundle{em.take_setup(), em.take_measured()};
}

}  // namespace ntcsim::workload
