// rbtree — search/insert in a red-black tree (Table 3). A full CLRS
// red-black tree executes on the host; every simulated field access
// (48-byte nodes: key, value, left, right, parent, color) is emitted into
// the trace, so rebalancing rotations produce their real store pattern.
#include <memory>
#include <vector>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "workload/emitter.hpp"
#include "workload/workloads.hpp"

namespace ntcsim::workload {

namespace {

constexpr unsigned kOffKey = 0;
constexpr unsigned kOffVal = 8;
constexpr unsigned kOffLeft = 16;
constexpr unsigned kOffRight = 24;
constexpr unsigned kOffParent = 32;
constexpr unsigned kOffColor = 40;
constexpr std::size_t kNodeBytes = 48;

struct RbNode {
  Addr a = 0;
  Word key = 0;
  Word val = 0;
  RbNode* left = nullptr;
  RbNode* right = nullptr;
  RbNode* parent = nullptr;
  bool red = true;
};

class RbTree {
 public:
  RbTree(TraceEmitter& em, SimHeap& heap, CoreId core)
      : em_(&em), heap_(&heap), core_(core) {
    root_slot_ = heap_->alloc(core_, kWordBytes, kWordBytes);
  }

  void insert(Word key, Word val) {
    auto owned = std::make_unique<RbNode>();
    RbNode* z = owned.get();
    nodes_.push_back(std::move(owned));
    z->a = heap_->alloc(core_, kNodeBytes);
    z->key = key;
    z->val = val;

    // BST descent.
    RbNode* y = nullptr;
    em_->load(root_slot_);
    RbNode* x = root_;
    while (x != nullptr) {
      y = x;
      em_->load(x->a + kOffKey);
      em_->compute(1);
      if (key < x->key) {
        em_->load(x->a + kOffLeft);
        x = x->left;
      } else {
        em_->load(x->a + kOffRight);
        x = x->right;
      }
    }
    z->parent = y;
    em_->store(z->a + kOffKey, key);
    em_->store(z->a + kOffVal, val);
    em_->store(z->a + kOffLeft, 0);
    em_->store(z->a + kOffRight, 0);
    em_->store(z->a + kOffParent, y ? y->a : 0);
    em_->store(z->a + kOffColor, 1);  // red
    if (y == nullptr) {
      set_root(z);
    } else if (key < y->key) {
      y->left = z;
      em_->store(y->a + kOffLeft, z->a);
    } else {
      y->right = z;
      em_->store(y->a + kOffRight, z->a);
    }
    fixup(z);
    ++size_;
  }

  bool search(Word key) {
    em_->load(root_slot_);
    RbNode* x = root_;
    while (x != nullptr) {
      em_->load(x->a + kOffKey);
      em_->compute(1);
      if (key == x->key) {
        em_->load(x->a + kOffVal);
        return true;
      }
      if (key < x->key) {
        em_->load(x->a + kOffLeft);
        x = x->left;
      } else {
        em_->load(x->a + kOffRight);
        x = x->right;
      }
    }
    return false;
  }

  std::size_t size() const { return size_; }

  /// Red-black invariants + ordering; aborts the generator on violation.
  void verify() const {
    NTC_ASSERT(root_ == nullptr || !root_->red, "rbtree: root must be black");
    Word prev = 0;
    bool first = true;
    check_inorder(root_, prev, first);
    int bh = -1;
    check_node(root_, 0, bh);
  }

 private:
  void set_root(RbNode* n) {
    root_ = n;
    em_->store(root_slot_, n ? n->a : 0);
  }

  void set_color(RbNode* n, bool red) {
    n->red = red;
    em_->store(n->a + kOffColor, red ? 1 : 0);
  }

  bool is_red(const RbNode* n) const {
    if (n == nullptr) return false;
    em_->load(n->a + kOffColor);
    return n->red;
  }

  void left_rotate(RbNode* x) {
    em_->load(x->a + kOffRight);
    RbNode* y = x->right;
    NTC_ASSERT(y != nullptr, "rbtree: left rotation without right child");
    em_->load(y->a + kOffLeft);
    x->right = y->left;
    em_->store(x->a + kOffRight, y->left ? y->left->a : 0);
    if (y->left != nullptr) {
      y->left->parent = x;
      em_->store(y->left->a + kOffParent, x->a);
    }
    y->parent = x->parent;
    em_->store(y->a + kOffParent, x->parent ? x->parent->a : 0);
    if (x->parent == nullptr) {
      set_root(y);
    } else if (x == x->parent->left) {
      x->parent->left = y;
      em_->store(x->parent->a + kOffLeft, y->a);
    } else {
      x->parent->right = y;
      em_->store(x->parent->a + kOffRight, y->a);
    }
    y->left = x;
    em_->store(y->a + kOffLeft, x->a);
    x->parent = y;
    em_->store(x->a + kOffParent, y->a);
  }

  void right_rotate(RbNode* x) {
    em_->load(x->a + kOffLeft);
    RbNode* y = x->left;
    NTC_ASSERT(y != nullptr, "rbtree: right rotation without left child");
    em_->load(y->a + kOffRight);
    x->left = y->right;
    em_->store(x->a + kOffLeft, y->right ? y->right->a : 0);
    if (y->right != nullptr) {
      y->right->parent = x;
      em_->store(y->right->a + kOffParent, x->a);
    }
    y->parent = x->parent;
    em_->store(y->a + kOffParent, x->parent ? x->parent->a : 0);
    if (x->parent == nullptr) {
      set_root(y);
    } else if (x == x->parent->right) {
      x->parent->right = y;
      em_->store(x->parent->a + kOffRight, y->a);
    } else {
      x->parent->left = y;
      em_->store(x->parent->a + kOffLeft, y->a);
    }
    y->right = x;
    em_->store(y->a + kOffRight, x->a);
    x->parent = y;
    em_->store(x->a + kOffParent, y->a);
  }

  void fixup(RbNode* z) {
    while (z->parent != nullptr && is_red(z->parent)) {
      RbNode* gp = z->parent->parent;
      NTC_ASSERT(gp != nullptr, "rbtree: red parent without grandparent");
      em_->load(z->parent->a + kOffParent);
      if (z->parent == gp->left) {
        em_->load(gp->a + kOffRight);
        RbNode* uncle = gp->right;
        if (is_red(uncle)) {
          set_color(z->parent, false);
          set_color(uncle, false);
          set_color(gp, true);
          z = gp;
        } else {
          if (z == z->parent->right) {
            z = z->parent;
            left_rotate(z);
          }
          set_color(z->parent, false);
          set_color(z->parent->parent, true);
          right_rotate(z->parent->parent);
        }
      } else {
        em_->load(gp->a + kOffLeft);
        RbNode* uncle = gp->left;
        if (is_red(uncle)) {
          set_color(z->parent, false);
          set_color(uncle, false);
          set_color(gp, true);
          z = gp;
        } else {
          if (z == z->parent->left) {
            z = z->parent;
            right_rotate(z);
          }
          set_color(z->parent, false);
          set_color(z->parent->parent, true);
          left_rotate(z->parent->parent);
        }
      }
    }
    if (root_ != nullptr && root_->red) set_color(root_, false);
  }

  void check_inorder(const RbNode* n, Word& prev, bool& first) const {
    if (n == nullptr) return;
    check_inorder(n->left, prev, first);
    NTC_ASSERT(first || prev <= n->key, "rbtree: inorder violation");
    prev = n->key;
    first = false;
    check_inorder(n->right, prev, first);
  }

  /// Returns nothing; asserts equal black height and no red-red edges.
  void check_node(const RbNode* n, int black_depth, int& black_height) const {
    if (n == nullptr) {
      if (black_height < 0) black_height = black_depth;
      NTC_ASSERT(black_depth == black_height, "rbtree: black-height violation");
      return;
    }
    if (n->red) {
      NTC_ASSERT(n->left == nullptr || !n->left->red, "rbtree: red-red edge");
      NTC_ASSERT(n->right == nullptr || !n->right->red, "rbtree: red-red edge");
    }
    const int d = black_depth + (n->red ? 0 : 1);
    check_node(n->left, d, black_height);
    check_node(n->right, d, black_height);
  }

  mutable TraceEmitter* em_;
  SimHeap* heap_;
  CoreId core_;
  Addr root_slot_ = 0;
  RbNode* root_ = nullptr;
  std::vector<std::unique_ptr<RbNode>> nodes_;
  std::size_t size_ = 0;
};

}  // namespace

TraceBundle gen_rbtree(const WorkloadParams& p, CoreId core, SimHeap& heap,
                       recovery::Journal* journal) {
  TraceEmitter em(core, heap.space(), journal);
  Rng rng(p.seed * 0x27d4 + core);
  RbTree tree(em, heap, core);
  std::vector<Word> keys;

  for (std::size_t i = 0; i < p.setup_elems;) {
    em.begin_tx();
    for (unsigned b = 0; b < p.setup_batch && i < p.setup_elems; ++b, ++i) {
      const Word k = rng.next();
      em.compute(kSetupComputePadding);
      tree.insert(k, rng.next());
      keys.push_back(k);
    }
    em.end_tx();
  }

  em.mark_measured_phase();

  for (std::size_t op = 0; op < p.ops; ++op) {
    em.begin_tx();
    em.compute(p.compute_per_op);
    if (rng.below(100) < p.lookup_pct && !keys.empty()) {
      const Word k =
          rng.chance(1, 2) ? keys[rng.below(keys.size())] : rng.next();
      tree.search(k);
    } else {
      const Word k = rng.next();
      tree.insert(k, rng.next());
      keys.push_back(k);
    }
    em.end_tx();
  }

  tree.verify();
  return TraceBundle{em.take_setup(), em.take_measured()};
}

}  // namespace ntcsim::workload
