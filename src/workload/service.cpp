#include "workload/service.hpp"

#include <cmath>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace ntcsim::workload {

std::size_t stamp_service_arrivals(core::Trace& trace,
                                   const ServiceConfig& service, CoreId core,
                                   std::uint64_t seed, NodeId node) {
  if (!service.enabled || !service.open_loop) return 0;
  NTC_ASSERT(service.rate > 0.0, "service mode requires a positive rate");
  // Distinct SplitMix64 stream per (seed, node, core); golden-ratio mixing
  // keeps adjacent seeds/nodes/cores uncorrelated (same idiom as the
  // generators). The node term vanishes at node 0, so single-node streams
  // are bit-identical to the pre-cluster simulator.
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + (core + 1) * 0xd1b54a32d192ed03ULL +
          node * 0x94d049bb133111ebULL);
  const double mean_gap = 1000.0 / service.rate;  // cycles per request
  double t = 0.0;
  std::size_t stamped = 0;
  for (core::MicroOp& op : trace.mutable_ops()) {
    if (op.kind != core::OpKind::kTxBegin) continue;
    // Exponential interarrival via inverse transform; 1 - unit() is in
    // (0, 1], so the log argument never hits zero.
    t += service.poisson ? -std::log(1.0 - rng.unit()) * mean_gap : mean_gap;
    op.addr = static_cast<Addr>(t);
    ++stamped;
  }
  return stamped;
}

}  // namespace ntcsim::workload
