// Service-mode load generation: turns a measured workload trace into a
// request stream. In open-loop mode each transaction (one request) gets an
// absolute arrival cycle stamped onto its kTxBegin op; the core's frontend
// refuses to fetch a request before it has arrived, so queueing delay under
// overload shows up in the per-request latency histogram instead of being
// hidden by back-to-back replay. Closed-loop mode leaves the trace
// untouched — the next request issues as soon as the previous one retires.
//
// Arrival streams are pure functions of (seed, core): bit-identical across
// worker threads, so service cells keep the sweep runner's `--jobs=N`
// determinism contract (tests/test_sweep.cpp, tests/test_service.cpp).
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/config.hpp"
#include "common/types.hpp"
#include "core/trace.hpp"

namespace ntcsim::workload {

/// Stamp open-loop arrival cycles onto `trace`'s kTxBegin ops, in trace
/// order, starting from cycle 0 of the measured phase. Interarrival gaps
/// are exponential with mean 1000/rate cycles when service.poisson is set
/// (a Poisson arrival process), else exactly 1000/rate. No-op (returns 0)
/// when service mode is off or closed-loop. Returns the number of requests
/// stamped. In a multi-node cluster each (node, core) pair gets its own
/// stream; node 0 reproduces the pre-cluster (seed, core) stream exactly.
std::size_t stamp_service_arrivals(core::Trace& trace,
                                   const ServiceConfig& service, CoreId core,
                                   std::uint64_t seed, NodeId node = 0);

}  // namespace ntcsim::workload
