#include "workload/sim_heap.hpp"

#include "common/assert.hpp"

namespace ntcsim::workload {

namespace {
Addr align_up(Addr a, std::size_t align) {
  return (a + align - 1) & ~static_cast<Addr>(align - 1);
}
}  // namespace

SimHeap::SimHeap(const AddressSpace& space, unsigned cores) : space_(space) {
  NTC_ASSERT(cores > 0, "heap needs at least one core arena");
  const std::uint64_t p_slice = space_.heap_bytes() / cores;
  const std::uint64_t v_slice = space_.dram_bytes / cores;
  for (unsigned c = 0; c < cores; ++c) {
    p_base_.push_back(space_.heap_base() + c * p_slice);
    p_cursor_.push_back(space_.heap_base() + c * p_slice);
    p_end_.push_back(space_.heap_base() + (c + 1) * p_slice);
    v_cursor_.push_back(c * v_slice);
    v_end_.push_back((c + 1) * v_slice);
  }
}

Addr SimHeap::alloc(CoreId core, std::size_t bytes, std::size_t align) {
  Addr a = align_up(p_cursor_[core], align);
  NTC_ASSERT(a + bytes <= p_end_[core], "persistent arena exhausted");
  p_cursor_[core] = a + bytes;
  return a;
}

Addr SimHeap::alloc_volatile(CoreId core, std::size_t bytes, std::size_t align) {
  Addr a = align_up(v_cursor_[core], align);
  NTC_ASSERT(a + bytes <= v_end_[core], "volatile arena exhausted");
  v_cursor_[core] = a + bytes;
  return a;
}

std::size_t SimHeap::persistent_used(CoreId core) const {
  return static_cast<std::size_t>(p_cursor_[core] - p_base_[core]);
}

}  // namespace ntcsim::workload
