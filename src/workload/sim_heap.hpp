// Bump allocators over the simulated address space: a persistent heap in
// the NVM region (p_malloc in Fig. 1) and a volatile heap in DRAM. Each
// core gets a private arena, mirroring the NV-heaps benchmarks where every
// core manipulates its own structure.
#pragma once

#include <cstddef>
#include <vector>

#include "common/config.hpp"
#include "common/types.hpp"

namespace ntcsim::workload {

class SimHeap {
 public:
  SimHeap(const AddressSpace& space, unsigned cores);

  /// Allocate persistent memory (NVM region).
  Addr alloc(CoreId core, std::size_t bytes, std::size_t align = 8);
  /// Allocate volatile memory (DRAM region).
  Addr alloc_volatile(CoreId core, std::size_t bytes, std::size_t align = 8);

  std::size_t persistent_used(CoreId core) const;
  const AddressSpace& space() const { return space_; }

 private:
  AddressSpace space_;
  std::vector<Addr> p_cursor_;
  std::vector<Addr> p_end_;
  std::vector<Addr> v_cursor_;
  std::vector<Addr> v_end_;
  std::vector<Addr> p_base_;
};

}  // namespace ntcsim::workload
