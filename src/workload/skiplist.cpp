// skiplist — search/insert in a persistent skip list (extension beyond the
// paper's Table 3; skip lists are a staple of PM index designs because
// inserts splice single pointers instead of rebalancing). Nodes are
// variable-sized: {key, value, level, next[level]}; an insert walks down
// the towers emitting a load per hop and splices with one store per level.
#include <memory>
#include <vector>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "workload/emitter.hpp"
#include "workload/workloads.hpp"

namespace ntcsim::workload {

namespace {

constexpr unsigned kMaxLevel = 12;
constexpr unsigned kOffKey = 0;
constexpr unsigned kOffVal = 8;
constexpr unsigned kOffLevel = 16;
Addr next_off(unsigned lvl) { return 24 + 8 * static_cast<Addr>(lvl); }

struct SkipNode {
  Addr a = 0;
  Word key = 0;
  Word val = 0;
  unsigned level = 1;
  SkipNode* next[kMaxLevel] = {};
};

class SkipList {
 public:
  SkipList(TraceEmitter& em, SimHeap& heap, CoreId core, Rng& rng)
      : em_(&em), heap_(&heap), core_(core), rng_(&rng) {
    head_ = new_node(0, 0, kMaxLevel);
  }

  void insert(Word key, Word val) {
    SkipNode* update[kMaxLevel];
    SkipNode* x = head_;
    em_->load(head_->a + kOffLevel);
    for (int lvl = kMaxLevel - 1; lvl >= 0; --lvl) {
      while (true) {
        em_->load(x->a + next_off(static_cast<unsigned>(lvl)));
        SkipNode* nx = x->next[lvl];
        if (nx == nullptr) break;
        em_->load(nx->a + kOffKey);
        em_->compute(1);
        if (nx->key >= key) break;
        x = nx;
      }
      update[lvl] = x;
    }

    const unsigned level = random_level();
    SkipNode* n = new_node(key, val, level);
    em_->store(n->a + kOffKey, key);
    em_->store(n->a + kOffVal, val);
    em_->store(n->a + kOffLevel, level);
    for (unsigned lvl = 0; lvl < level; ++lvl) {
      n->next[lvl] = update[lvl]->next[lvl];
      em_->store(n->a + next_off(lvl),
                 n->next[lvl] ? n->next[lvl]->a : 0);
      update[lvl]->next[lvl] = n;
      em_->store(update[lvl]->a + next_off(lvl), n->a);
    }
    ++size_;
  }

  bool search(Word key) const {
    const SkipNode* x = head_;
    for (int lvl = kMaxLevel - 1; lvl >= 0; --lvl) {
      while (true) {
        em_->load(x->a + next_off(static_cast<unsigned>(lvl)));
        const SkipNode* nx = x->next[lvl];
        if (nx == nullptr) break;
        em_->load(nx->a + kOffKey);
        em_->compute(1);
        if (nx->key == key) {
          em_->load(nx->a + kOffVal);
          return true;
        }
        if (nx->key > key) break;
        x = nx;
      }
    }
    return false;
  }

  std::size_t size() const { return size_; }

  void verify() const {
    // Level-0 order; each tower is a subsequence of level 0; sizes agree.
    std::size_t count = 0;
    Word prev = 0;
    bool first = true;
    for (const SkipNode* n = head_->next[0]; n != nullptr; n = n->next[0]) {
      NTC_ASSERT(first || prev <= n->key, "skiplist: level-0 order violated");
      prev = n->key;
      first = false;
      ++count;
    }
    NTC_ASSERT(count == size_, "skiplist: node count mismatch");
    for (unsigned lvl = 1; lvl < kMaxLevel; ++lvl) {
      Word p = 0;
      bool f = true;
      for (const SkipNode* n = head_->next[lvl]; n != nullptr;
           n = n->next[lvl]) {
        NTC_ASSERT(n->level > lvl, "skiplist: node linked above its level");
        NTC_ASSERT(f || p <= n->key, "skiplist: tower order violated");
        p = n->key;
        f = false;
      }
    }
  }

 private:
  SkipNode* new_node(Word key, Word val, unsigned level) {
    auto owned = std::make_unique<SkipNode>();
    SkipNode* n = owned.get();
    nodes_.push_back(std::move(owned));
    n->a = heap_->alloc(core_, 24 + 8 * level);
    n->key = key;
    n->val = val;
    n->level = level;
    return n;
  }

  unsigned random_level() {
    unsigned lvl = 1;
    while (lvl < kMaxLevel && rng_->chance(1, 4)) ++lvl;
    return lvl;
  }

  mutable TraceEmitter* em_;
  SimHeap* heap_;
  CoreId core_;
  Rng* rng_;
  SkipNode* head_ = nullptr;
  std::vector<std::unique_ptr<SkipNode>> nodes_;
  std::size_t size_ = 0;
};

}  // namespace

TraceBundle gen_skiplist(const WorkloadParams& p, CoreId core, SimHeap& heap,
                         recovery::Journal* journal) {
  TraceEmitter em(core, heap.space(), journal);
  Rng rng(p.seed * 0x7a1c + core);
  SkipList list(em, heap, core, rng);
  std::vector<Word> keys;

  for (std::size_t i = 0; i < p.setup_elems;) {
    em.begin_tx();
    for (unsigned b = 0; b < p.setup_batch && i < p.setup_elems; ++b, ++i) {
      const Word k = rng.next();
      em.compute(kSetupComputePadding);
      list.insert(k, rng.next());
      keys.push_back(k);
    }
    em.end_tx();
  }

  em.mark_measured_phase();

  for (std::size_t op = 0; op < p.ops; ++op) {
    em.begin_tx();
    em.compute(p.compute_per_op);
    if (rng.below(100) < p.lookup_pct && !keys.empty()) {
      const Word k =
          rng.chance(1, 2) ? keys[rng.below(keys.size())] : rng.next();
      list.search(k);
    } else {
      const Word k = rng.next();
      list.insert(k, rng.next());
      keys.push_back(k);
    }
    em.end_tx();
  }

  list.verify();
  return TraceBundle{em.take_setup(), em.take_measured()};
}

}  // namespace ntcsim::workload
