// sps — randomly swap elements in a persistent array (Table 3). Short
// four-access transactions at the highest write intensity of the suite.
#include <vector>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "workload/emitter.hpp"
#include "workload/workloads.hpp"

namespace ntcsim::workload {

TraceBundle gen_sps(const WorkloadParams& p, CoreId core, SimHeap& heap,
                    recovery::Journal* journal) {
  TraceEmitter em(core, heap.space(), journal);
  Rng rng(p.seed * 0x9e37 + core);
  const std::size_t n = p.setup_elems;
  NTC_ASSERT(n >= 2, "sps needs at least two elements");

  const Addr arr = heap.alloc(core, n * kWordBytes, kLineBytes);
  std::vector<Word> host(n);

  // Setup: initialize the array in batched transactions.
  for (std::size_t i = 0; i < n;) {
    em.begin_tx();
    for (unsigned b = 0; b < p.setup_batch * 4 && i < n; ++b, ++i) {
      host[i] = rng.next();
      em.compute(kSetupComputePadding);
      em.store(arr + i * kWordBytes, host[i]);
    }
    em.end_tx();
  }

  em.mark_measured_phase();

  // Measured phase: one swap per transaction.
  for (std::size_t op = 0; op < p.ops; ++op) {
    const std::size_t i = rng.below(n);
    std::size_t j = rng.below(n);
    if (j == i) j = (j + 1) % n;
    em.begin_tx();
    em.compute(p.compute_per_op);
    em.load(arr + i * kWordBytes);
    em.load(arr + j * kWordBytes);
    em.compute(2);
    em.store(arr + i * kWordBytes, host[j]);
    em.store(arr + j * kWordBytes, host[i]);
    em.end_tx();
    std::swap(host[i], host[j]);
  }
  return TraceBundle{em.take_setup(), em.take_measured()};
}

}  // namespace ntcsim::workload
