#include "workload/workloads.hpp"

#include "common/assert.hpp"

namespace ntcsim::workload {

WorkloadParams default_params(WorkloadKind kind) {
  WorkloadParams p;
  p.kind = kind;
  switch (kind) {
    case WorkloadKind::kSps:
      // Random swaps in a large array: short, write-heavy transactions —
      // the paper's highest-write-intensity benchmark.
      p.setup_elems = 80 << 10;  // 80 K words = 640 KB per core
      p.ops = 2500;
      p.lookup_pct = 0;
      p.compute_per_op = 640;  // short transactions: highest write intensity
      break;
    case WorkloadKind::kHashtable:
      p.setup_elems = 18000;
      p.ops = 1800;
      p.lookup_pct = 50;
      p.compute_per_op = 320;
      break;
    case WorkloadKind::kGraph:
      p.setup_elems = 16000;  // vertices; edges accumulate
      p.ops = 1800;
      p.lookup_pct = 0;
      p.compute_per_op = 512;
      break;
    case WorkloadKind::kRbtree:
      p.setup_elems = 12000;
      p.ops = 1800;
      p.lookup_pct = 50;
      p.compute_per_op = 320;
      break;
    case WorkloadKind::kBtree:
      p.setup_elems = 16000;
      p.ops = 1800;
      p.lookup_pct = 50;
      p.compute_per_op = 320;
      break;
    case WorkloadKind::kQueue:
      p.setup_elems = 16384;  // ring slots (32 B records): 512 KB per core
      p.ops = 2500;
      p.lookup_pct = 40;  // 40 % dequeues
      p.compute_per_op = 320;
      break;
    case WorkloadKind::kSkiplist:
      p.setup_elems = 10000;
      p.ops = 1800;
      p.lookup_pct = 50;
      p.compute_per_op = 320;
      break;
  }
  return p;
}

std::string_view description(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kGraph:
      return "Insert in an adjacency list graph.";
    case WorkloadKind::kRbtree:
      return "Search/Insert nodes in a red-black tree.";
    case WorkloadKind::kSps:
      return "Randomly swap elements in an array.";
    case WorkloadKind::kBtree:
      return "Search/Insert nodes in a B+tree.";
    case WorkloadKind::kHashtable:
      return "Search/Insert a key-value pair in a hashtable.";
    case WorkloadKind::kQueue:
      return "Enqueue/Dequeue records in a persistent FIFO ring (extension).";
    case WorkloadKind::kSkiplist:
      return "Search/Insert nodes in a persistent skip list (extension).";
  }
  return "?";
}

TraceBundle generate_phased(const WorkloadParams& params, CoreId core,
                            SimHeap& heap, recovery::Journal* journal) {
  switch (params.kind) {
    case WorkloadKind::kSps:
      return gen_sps(params, core, heap, journal);
    case WorkloadKind::kHashtable:
      return gen_hashtable(params, core, heap, journal);
    case WorkloadKind::kGraph:
      return gen_graph(params, core, heap, journal);
    case WorkloadKind::kRbtree:
      return gen_rbtree(params, core, heap, journal);
    case WorkloadKind::kBtree:
      return gen_btree(params, core, heap, journal);
    case WorkloadKind::kQueue:
      return gen_queue(params, core, heap, journal);
    case WorkloadKind::kSkiplist:
      return gen_skiplist(params, core, heap, journal);
  }
  NTC_ASSERT(false, "unknown workload kind");
  return TraceBundle{};
}

core::Trace generate(const WorkloadParams& params, CoreId core, SimHeap& heap,
                     recovery::Journal* journal) {
  TraceBundle b = generate_phased(params, core, heap, journal);
  std::vector<core::MicroOp> ops = b.setup.ops();
  ops.insert(ops.end(), b.measured.ops().begin(), b.measured.ops().end());
  return core::Trace(std::move(ops));
}

}  // namespace ntcsim::workload
