// The five NV-heaps-style benchmarks of Table 3. Each generator executes a
// real data structure on the host while emitting the corresponding
// simulated-address micro-op trace (one transaction per operation) and
// journaling transactional writes for the recovery oracle. Generators
// self-verify their structure invariants (red-black / B-tree properties,
// chain contents) before returning.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "core/trace.hpp"
#include "recovery/journal.hpp"
#include "workload/sim_heap.hpp"

namespace ntcsim::workload {

/// Light fixed padding for unmeasured setup operations.
inline constexpr unsigned kSetupComputePadding = 8;

struct WorkloadParams {
  WorkloadKind kind = WorkloadKind::kSps;
  /// Initial structure size (elements / keys / vertices), built first.
  std::size_t setup_elems = 10000;
  /// Measured operations; each is one transaction.
  std::size_t ops = 3000;
  /// Percentage of measured ops that are searches (where applicable).
  unsigned lookup_pct = 50;
  /// Setup operations batched per transaction (keeps setup cheap without
  /// overflowing a 64-entry transaction cache).
  unsigned setup_batch = 4;
  /// ALU micro-ops per measured operation, modeling the non-memory
  /// instructions of a real program (the paper runs full x86 binaries, so
  /// its transaction rate is far below raw memory-op density). Setup
  /// elements get kSetupComputePadding instead (setup is unmeasured).
  unsigned compute_per_op = 64;
  std::uint64_t seed = 1;
};

/// Paper-shaped defaults per workload (footprints sized for the
/// pressure-scaled experiment LLC; see EXPERIMENTS.md).
WorkloadParams default_params(WorkloadKind kind);

/// Table 3 description string.
std::string_view description(WorkloadKind kind);

/// A workload's trace split into its structure-build (setup) phase and the
/// measured steady-state phase. The paper's figures report steady state;
/// the experiment harness runs setup first (warming caches and structures),
/// resets statistics, then measures.
struct TraceBundle {
  core::Trace setup;
  core::Trace measured;
};

/// Dispatch on params.kind. `journal` may be null.
TraceBundle generate_phased(const WorkloadParams& params, CoreId core,
                            SimHeap& heap, recovery::Journal* journal);

/// Setup + measured concatenated into one trace (crash tests, examples).
core::Trace generate(const WorkloadParams& params, CoreId core, SimHeap& heap,
                     recovery::Journal* journal);

TraceBundle gen_sps(const WorkloadParams&, CoreId, SimHeap&,
                    recovery::Journal*);
TraceBundle gen_hashtable(const WorkloadParams&, CoreId, SimHeap&,
                          recovery::Journal*);
TraceBundle gen_graph(const WorkloadParams&, CoreId, SimHeap&,
                      recovery::Journal*);
TraceBundle gen_rbtree(const WorkloadParams&, CoreId, SimHeap&,
                       recovery::Journal*);
TraceBundle gen_btree(const WorkloadParams&, CoreId, SimHeap&,
                      recovery::Journal*);
/// Extension workload (not in Table 3): persistent FIFO ring.
TraceBundle gen_queue(const WorkloadParams&, CoreId, SimHeap&,
                      recovery::Journal*);
/// Extension workload (not in Table 3): persistent skip list.
TraceBundle gen_skiplist(const WorkloadParams&, CoreId, SimHeap&,
                         recovery::Journal*);

}  // namespace ntcsim::workload
