// Deliberately broken mechanism variants ("mutants"), shared between the
// checker mutation tests (test_persist_order_checker.cpp) and the
// fault-injection campaign tests (test_faultsim.cpp). Each forwards
// everything to a real registry domain and re-introduces exactly one
// ordering bug; mutants() registers them in the process-wide registry with
// matrix_rank = -1, so --matrix and the sweep CSVs never see them.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <utility>

#include "persist/domain.hpp"
#include "persist/kiln_unit.hpp"
#include "persist/sp_transform.hpp"
#include "txcache/tx_cache.hpp"

namespace ntcsim::muttest {

class ForwardingDomain : public persist::PersistenceDomain {
 public:
  ForwardingDomain(std::string name, persist::Policy policy,
                   std::unique_ptr<persist::PersistenceDomain> inner)
      : PersistenceDomain(policy),
        name_(std::move(name)),
        inner_(std::move(inner)) {}

  std::string_view name() const override { return name_; }
  check::CheckerRules checker_rules() const override {
    return inner_->checker_rules();
  }
  persist::CrashProfile crash_profile() const override {
    // The mutant claims its base mechanism's hazards AND its consistency
    // promise — which the seeded bug then breaks, giving the campaign's
    // failure path something real to detect and minimize.
    return inner_->crash_profile();
  }
  void adjust_sp_options(persist::SpOptions& opts) const override {
    inner_->adjust_sp_options(opts);
  }
  void bind(const persist::DomainWiring& wiring) override {
    PersistenceDomain::bind(wiring);
    inner_->bind(wiring);
  }
  recovery::WordImage recover(
      const recovery::DurableState& durable) const override {
    return inner_->recover(durable);
  }
  core::PersistCoreTraits core_traits() const override {
    return inner_->core_traits();
  }
  bool loads_blocked(CoreId core) const override {
    return inner_->loads_blocked(core);
  }
  void on_tx_begin(CoreId core, TxId tx) override {
    inner_->on_tx_begin(core, tx);
  }
  void on_store_retired(CoreId core, TxId tx) override {
    inner_->on_store_retired(core, tx);
  }
  core::StoreRoute route_store(Cycle now, CoreId core, Addr addr, Word value,
                               TxId tx) override {
    return inner_->route_store(now, core, addr, value, tx);
  }
  void on_store_drained(Cycle now, CoreId core, Addr addr, Word value,
                        TxId tx) override {
    inner_->on_store_drained(now, core, addr, value, tx);
  }
  core::TxEndResult on_tx_end(Cycle now, CoreId core, TxId tx) override {
    return inner_->on_tx_end(now, core, tx);
  }

 private:
  std::string name_;
  std::unique_ptr<persist::PersistenceDomain> inner_;
};

inline std::unique_ptr<persist::PersistenceDomain> real_domain(Mechanism m) {
  return persist::DomainRegistry::instance().create(m);
}

inline persist::Policy tc_policy() {
  return persist::DomainRegistry::instance().info(Mechanism::kTc).policy;
}

/// TC that forgets to drop persistent LLC write-backs: evicted uncommitted
/// data leaks to NVM through the demand path -> tc.single-writer.
inline std::unique_ptr<persist::PersistenceDomain> make_tc_leaky() {
  persist::Policy p = tc_policy();
  p.drop_persistent_llc_writeback = false;
  return std::make_unique<ForwardingDomain>("mut-tc-leaky", p,
                                            real_domain(Mechanism::kTc));
}

/// TC whose NTC drains committed entries newest-first -> tc.fifo-drain.
class TcLifoDomain final : public ForwardingDomain {
 public:
  TcLifoDomain()
      : ForwardingDomain("mut-tc-lifo", tc_policy(),
                         real_domain(Mechanism::kTc)) {}
  void bind(const persist::DomainWiring& wiring) override {
    ForwardingDomain::bind(wiring);
    for (txcache::TxCache* n : wiring.ntcs) n->set_drain_order_mutant(true);
  }
};

/// TC that never probes the NTC on persistent LLC misses -> the LLC reads
/// stale NVM data for lines the NTC still holds -> tc.no-stale-read.
inline std::unique_ptr<persist::PersistenceDomain> make_tc_noprobe() {
  persist::Policy p = tc_policy();
  p.probe_ntc_on_llc_miss = false;
  return std::make_unique<ForwardingDomain>("mut-tc-noprobe", p,
                                            real_domain(Mechanism::kTc));
}

/// TC that commits every store's transaction the moment the store enters
/// the NTC: entries drain to NVM before the core's TX_END retires ->
/// tc.uncommitted-drain (and, after a crash, half-applied transactions —
/// the campaign minimizer's reference bug).
class TcEagerDomain final : public ForwardingDomain {
 public:
  TcEagerDomain()
      : ForwardingDomain("mut-tc-eager", tc_policy(),
                         real_domain(Mechanism::kTc)) {}
  core::StoreRoute route_store(Cycle now, CoreId core, Addr addr, Word value,
                               TxId tx) override {
    const core::StoreRoute r =
        ForwardingDomain::route_store(now, core, addr, value, tx);
    if (r == core::StoreRoute::kAccepted) wiring().ntcs[core]->commit(tx);
    return r;
  }
};

/// SP with the WAL inverted: data forced durable before its log records
/// (SpOptions::data_first) -> sp.log-before-data.
class SpDataFirstDomain final : public ForwardingDomain {
 public:
  SpDataFirstDomain()
      : ForwardingDomain(
            "mut-sp-data-first",
            persist::DomainRegistry::instance().info(Mechanism::kSp).policy,
            real_domain(Mechanism::kSp)) {}
  void adjust_sp_options(persist::SpOptions& opts) const override {
    ForwardingDomain::adjust_sp_options(opts);
    opts.data_first = true;
  }
};

/// Kiln whose commit engine drops every other line from the commit flush
/// set -> kiln.flush-incomplete.
class KilnLossyDomain final : public ForwardingDomain {
 public:
  KilnLossyDomain()
      : ForwardingDomain(
            "mut-kiln-lossy",
            persist::DomainRegistry::instance().info(Mechanism::kKiln).policy,
            real_domain(Mechanism::kKiln)) {}
  void bind(const persist::DomainWiring& wiring) override {
    ForwardingDomain::bind(wiring);
    // The System built a KilnUnit for flush_on_commit policies.
    static_cast<persist::KilnUnit*>(wiring.engine)
        ->set_lossy_flush_mutant(true);
  }
};

struct MutantIds {
  Mechanism tc_leaky{};
  Mechanism tc_lifo{};
  Mechanism tc_noprobe{};
  Mechanism tc_eager{};
  Mechanism sp_data_first{};
  Mechanism kiln_lossy{};
};

/// Register every mutant once in this process; idempotent via the static.
inline const MutantIds& mutants() {
  static const MutantIds ids = [] {
    persist::DomainRegistry& r =
        persist::DomainRegistry::instance_for_registration();
    auto row = [](const char* name, persist::Policy policy,
                  std::function<std::unique_ptr<persist::PersistenceDomain>()>
                      make) {
      persist::DomainInfo info;
      info.name = name;
      info.display = name;
      info.summary = "checker mutation test domain";
      info.matrix_rank = -1;  // never in --matrix or the sweeps
      info.policy = policy;
      info.make = std::move(make);
      return info;
    };
    MutantIds m;
    persist::Policy leaky = tc_policy();
    leaky.drop_persistent_llc_writeback = false;
    m.tc_leaky = r.add(row("mut-tc-leaky", leaky, make_tc_leaky));
    m.tc_lifo = r.add(row("mut-tc-lifo", tc_policy(),
                          [] { return std::make_unique<TcLifoDomain>(); }));
    persist::Policy noprobe = tc_policy();
    noprobe.probe_ntc_on_llc_miss = false;
    m.tc_noprobe = r.add(row("mut-tc-noprobe", noprobe, make_tc_noprobe));
    m.tc_eager = r.add(row("mut-tc-eager", tc_policy(),
                           [] { return std::make_unique<TcEagerDomain>(); }));
    m.sp_data_first = r.add(row(
        "mut-sp-data-first",
        persist::DomainRegistry::instance().info(Mechanism::kSp).policy,
        [] { return std::make_unique<SpDataFirstDomain>(); }));
    m.kiln_lossy = r.add(row(
        "mut-kiln-lossy",
        persist::DomainRegistry::instance().info(Mechanism::kKiln).policy,
        [] { return std::make_unique<KilnLossyDomain>(); }));
    return m;
  }();
  return ids;
}

}  // namespace ntcsim::muttest
