// ntclint fixture: pure assert conditions (comparisons only) must not be
// flagged, including ==, <=, >= and != spellings.
#include <cassert>

int peek(const int* stack, int top, int limit) {
  assert(top >= 0);
  assert(top != limit);
  assert(stack != nullptr && top <= limit);
  assert(limit == 64 || limit == 128);
  return stack[top];
}
