// ntclint fixture: raw abort() and side-effectful assert conditions are
// flagged.
#include <cassert>
#include <cstdlib>

int pop_count = 0;

int pop(int* stack, int& top) {
  if (top == 0) abort();            // raw abort: no file/line/context
  assert(--top >= 0);               // vanishes under NDEBUG
  assert(pop_count = top);          // assignment, not comparison
  return stack[top];
}
