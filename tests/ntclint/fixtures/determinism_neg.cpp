// ntclint fixture: deterministic idioms that must NOT be flagged.
#include <cstdint>
#include <unordered_map>

struct Rng {
  std::uint64_t state;
  std::uint64_t next() { return state += 0x9e3779b97f4a7c15ull; }
};

// Value-keyed unordered containers are fine: iteration is still
// unordered, but the keys themselves are run-stable.
std::unordered_map<std::uint64_t, int> by_addr;

// Identifiers merely containing rule substrings must not trip tokens.
int timer_grand_total = 0;
void operand_time_keeper(int randomize_later) {
  timer_grand_total += randomize_later;
}

std::uint64_t draw(Rng& rng) { return rng.next(); }
