// ntclint fixture: every determinism pattern must be flagged.
// Scanned by tests/test_ntclint.cpp; never compiled into the build.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>
#include <unordered_map>
#include <unordered_set>

struct Line;

int entropy_soup() {
  int x = rand();                                   // libc PRNG
  srand(42);                                        // libc PRNG seeding
  std::random_device rd;                            // hardware entropy
  x += static_cast<int>(rd());
  auto t0 = std::chrono::steady_clock::now();       // host clock
  auto t1 = std::chrono::system_clock::now();       // host clock
  auto t2 = std::chrono::high_resolution_clock::now();  // host clock
  x += static_cast<int>(std::time(nullptr));        // wall clock
  (void)t0; (void)t1; (void)t2;
  return x;
}

// Pointer-keyed unordered containers: iteration order tracks the
// allocator, so loops over them diverge across runs.
std::unordered_map<Line*, int> residency;
std::unordered_set<const Line*> pinned;
