// ntclint fixture: allocation in cold paths (constructors, setup, plain
// helpers) is the sanctioned place to preallocate — must not be flagged.
#include <memory>
#include <vector>

struct Event {
  int cycle = 0;
};

struct Queue {
  std::vector<Event> pending;

  Queue() { pending.reserve(4096); }

  void configure(std::size_t depth) {
    pending.reserve(depth);
    scratch_ = std::make_unique<Event[]>(depth);
  }

  // Hot by name, but only reads/writes preallocated storage.
  void tick(int now) {
    if (!pending.empty()) pending.back().cycle = now;
  }

  // Hot by name too, but a pure scan over existing state is fine.
  int next_event_cycle(int now) const {
    int next = now + 1;
    for (const Event& e : pending) {
      if (e.cycle > next) next = e.cycle;
    }
    return next;
  }

  std::unique_ptr<Event[]> scratch_;
};
