// ntclint fixture: allocation inside a per-cycle function is flagged —
// by name (tick/step/advance/next_event_cycle, trailing underscores
// ignored) and by the NTC_HOT annotation on any other function.
#include <memory>
#include <vector>

#define NTC_HOT

struct Event {
  int cycle = 0;
};

struct Queue {
  std::vector<Event> pending;

  void tick(int now) {
    Event ev;
    ev.cycle = now;
    pending.push_back(ev);  // grows every cycle
  }

  void step_(int now) {
    auto* e = new Event{now};  // heap allocation per cycle
    delete e;
  }

  NTC_HOT void drain_one(int now) {
    auto e = std::make_unique<Event>();
    e->cycle = now;
    pending.emplace_back(*e);
  }

  // The quiescence query runs after every executed cycle — hot by name.
  int next_event_cycle(int now) const {
    std::vector<int> candidates;  // fresh vector per query
    candidates.push_back(now + 1);
    return candidates.front();
  }
};
