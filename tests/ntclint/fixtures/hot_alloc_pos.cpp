// ntclint fixture: allocation inside a per-cycle function is flagged —
// by name (tick/step/advance, trailing underscores ignored) and by the
// NTC_HOT annotation on any other function.
#include <memory>
#include <vector>

#define NTC_HOT

struct Event {
  int cycle = 0;
};

struct Queue {
  std::vector<Event> pending;

  void tick(int now) {
    Event ev;
    ev.cycle = now;
    pending.push_back(ev);  // grows every cycle
  }

  void step_(int now) {
    auto* e = new Event{now};  // heap allocation per cycle
    delete e;
  }

  NTC_HOT void drain_one(int now) {
    auto e = std::make_unique<Event>();
    e->cycle = now;
    pending.emplace_back(*e);
  }
};
