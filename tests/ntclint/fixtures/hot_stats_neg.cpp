// ntclint fixture: by-name resolution inside a constructor is the
// sanctioned pattern (resolve once, bump the handle afterwards).
#include <cstdint>
#include <string>

struct StatSet {
  std::uint64_t* counter(const std::string&);
};

class Cache {
 public:
  Cache(StatSet& stats)
      : hits_(stats.counter("l1.hits")),
        misses_(stats.counter("l1.misses")) {
    total_ = stats.counter("l1.total");
  }
  void on_hit() { ++*hits_; }

 private:
  std::uint64_t* hits_;
  std::uint64_t* misses_;
  std::uint64_t* total_;
};
