// ntclint fixture: by-name stat access outside a constructor is flagged.
#include <cstdint>
#include <string>

struct StatSet {
  std::uint64_t counter_value(const std::string&) const { return 0; }
  int& counter(const std::string&);
};

struct Cache {
  StatSet* stats;
  std::uint64_t sample() {
    // By-name lookup on every call: string hashing on the hot path.
    return stats->counter_value("l1.hits") +
           stats->counter_value("l1.misses");
  }
  void bump() { stats->counter("llc.writebacks") += 1; }
};
