// ntclint fixture: a single Mechanism comparison in a plain `if` is a
// negative control / config default, not a dispatch — must not be
// flagged outside src/persist/.
enum class Mechanism { kOptimal, kSp, kTc, kKiln };

struct Config {
  Mechanism mech = Mechanism::kOptimal;
};

bool is_baseline(const Config& cfg) {
  if (cfg.mech == Mechanism::kOptimal) return true;
  return false;
}

// Naming a mechanism without comparing is also fine.
Mechanism default_mechanism() { return Mechanism::kSp; }
