// ntclint fixture: mechanism dispatch outside src/persist/ is flagged.
enum class Mechanism { kOptimal, kSp, kTc, kKiln };

int drain_latency(Mechanism mech) {
  switch (mech) {
    case Mechanism::kSp: return 3;
    case Mechanism::kTc: return 7;
    default: return 0;
  }
}

bool needs_journal(Mechanism mech) {
  if (mech == Mechanism::kKiln) return false;
  else if (mech == Mechanism::kSp) return true;
  return false;
}
