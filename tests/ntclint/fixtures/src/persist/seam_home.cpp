// ntclint fixture: src/persist/ is the mechanism seam's home — the same
// dispatch that is flagged everywhere else is exempt here. The fixture
// tree nests a `src/persist/` segment so path normalization maps it to
// the exempt prefix.
enum class Mechanism { kOptimal, kSp, kTc, kKiln };

int domain_for(Mechanism mech) {
  switch (mech) {
    case Mechanism::kOptimal: return 0;
    case Mechanism::kSp: return 1;
    case Mechanism::kTc: return 2;
    case Mechanism::kKiln: return 3;
  }
  return -1;
}
