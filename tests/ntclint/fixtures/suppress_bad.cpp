// ntclint fixture: malformed suppressions are findings themselves
// (ntclint-bad-suppress) and do NOT silence anything.
#include <cstdlib>

int entropy() {
  // ntclint-suppress(no-such-rule): unknown rule name
  int x = rand();
  // ntclint-suppress(determinism):
  x += rand();
  return x;
}
