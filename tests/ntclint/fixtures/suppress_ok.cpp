// ntclint fixture: well-formed suppressions silence the named rule at
// the site (same line, line above) and file-wide.
#include <cstdlib>

// ntclint-suppress-file(assert-discipline): fixture exercises file-wide
// suppression; the abort() below is intentional.

int entropy() {
  // ntclint-suppress(determinism): fixture exercises line-above suppression
  int x = rand();
  x += rand();  // ntclint-suppress(determinism): same-line suppression
  return x;
}

void fail_fast() { abort(); }
