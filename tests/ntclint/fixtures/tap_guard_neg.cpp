// ntclint fixture: guarded CheckSink taps must not be flagged — both the
// same-line guard and a guard a few lines above the call.
struct CheckEvent {
  int kind = 0;
};

struct CheckSink {
  virtual void on_event(const CheckEvent&) = 0;
  virtual ~CheckSink() = default;
};

struct MemoryModel {
  CheckSink* sink = nullptr;

  void complete_write(int addr) {
    CheckEvent ev;
    ev.kind = addr;
    if (sink != nullptr) sink->on_event(ev);
  }

  void drain(int addr) {
    if (sink == nullptr) return;
    CheckEvent ev;
    ev.kind = addr;
    sink->on_event(ev);
  }
};
