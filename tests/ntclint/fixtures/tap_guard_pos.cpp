// ntclint fixture: an unguarded CheckSink tap is flagged — taps are
// default-null, so every callsite needs a visible null check.
struct CheckEvent {
  int kind = 0;
};

struct CheckSink {
  virtual void on_event(const CheckEvent&) = 0;
  virtual ~CheckSink() = default;
};

struct MemoryModel {
  CheckSink* sink = nullptr;

  void complete_write(int addr) {
    CheckEvent ev;
    ev.kind = addr;
    sink->on_event(ev);  // crashes whenever no checker is attached
  }
};
