#include "mem/address_map.hpp"

#include <gtest/gtest.h>

#include <set>

namespace ntcsim::mem {
namespace {

TEST(AddressMap, ConsecutiveLinesRotateAcrossBanks) {
  AddressMap m(4, 8, 8 << 10);
  const BankCoord a = m.decode(0);
  const BankCoord b = m.decode(64);
  EXPECT_NE(m.flat_bank(a), m.flat_bank(b));  // line interleaving
}

TEST(AddressMap, StreamTouchesEveryBank) {
  AddressMap m(4, 8, 8 << 10);
  std::set<unsigned> banks;
  for (Addr a = 0; a < 64ULL * 64; a += 64) {
    banks.insert(m.flat_bank(m.decode(a)));
  }
  EXPECT_EQ(banks.size(), 32u);
}

TEST(AddressMap, BankStridedLinesShareARow) {
  AddressMap m(4, 8, 8 << 10);
  // Same bank repeats every total_banks lines; those lines share a row
  // until row_lines of them accumulate.
  const Addr stride = 64ULL * 32;  // same bank, next line in that bank
  const BankCoord a = m.decode(0);
  const BankCoord b = m.decode(stride);
  EXPECT_EQ(m.flat_bank(a), m.flat_bank(b));
  EXPECT_EQ(a.row, b.row);
}

TEST(AddressMap, RowAdvancesAfterRowLines) {
  AddressMap m(1, 1, 8 << 10);  // single bank: rows are contiguous
  EXPECT_EQ(m.decode(0).row, 0u);
  EXPECT_EQ(m.decode((8ULL << 10) - 64).row, 0u);
  EXPECT_EQ(m.decode(8ULL << 10).row, 1u);
}

TEST(AddressMap, FlatBankInRange) {
  AddressMap m(4, 8, 8 << 10);
  for (Addr a = 0; a < (1ULL << 22); a += 4096 + 64) {
    EXPECT_LT(m.flat_bank(m.decode(a)), m.total_banks());
  }
}

TEST(AddressMap, SingleBankDegenerate) {
  AddressMap m(1, 1, 8 << 10);
  EXPECT_EQ(m.total_banks(), 1u);
  EXPECT_EQ(m.flat_bank(m.decode(123456)), 0u);
}

TEST(AddressMap, DistinctRowsDecodeDistinctly) {
  AddressMap m(2, 4, 8 << 10);
  const Addr big_stride = (8ULL << 10) * 8 * 4;  // beyond one row per bank
  EXPECT_NE(m.decode(0).row, m.decode(big_stride).row);
}

}  // namespace
}  // namespace ntcsim::mem
