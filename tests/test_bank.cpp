#include "mem/bank.hpp"

#include <gtest/gtest.h>

namespace ntcsim::mem {
namespace {

DeviceTiming timing() {
  DeviceTiming t;
  t.row_hit = 10;
  t.row_miss = 50;
  t.write_extra = 20;
  t.burst = 4;
  return t;
}

TEST(Bank, FirstAccessIsRowMiss) {
  const DeviceTiming t = timing();
  Bank b(t);
  EXPECT_TRUE(b.ready_at(0));
  EXPECT_FALSE(b.row_hit(5));
  EXPECT_EQ(b.access(0, 5, false), 50u);
  EXPECT_FALSE(b.ready_at(49));
  EXPECT_TRUE(b.ready_at(50));
}

TEST(Bank, SameRowHits) {
  const DeviceTiming t = timing();
  Bank b(t);
  b.access(0, 5, false);
  EXPECT_TRUE(b.row_hit(5));
  EXPECT_EQ(b.access(50, 5, false), 60u);
}

TEST(Bank, DifferentRowMissesAgain) {
  const DeviceTiming t = timing();
  Bank b(t);
  b.access(0, 5, false);
  EXPECT_FALSE(b.row_hit(6));
  EXPECT_EQ(b.access(50, 6, false), 100u);
  EXPECT_EQ(b.open_row().value(), 6u);
}

TEST(Bank, WritesCostExtra) {
  const DeviceTiming t = timing();
  Bank b(t);
  EXPECT_EQ(b.access(0, 1, true), 70u);   // miss + write_extra
  EXPECT_EQ(b.access(70, 1, true), 100u); // hit + write_extra
}

TEST(Bank, AccessWhileBusyAborts) {
  const DeviceTiming t = timing();
  Bank b(t);
  b.access(0, 1, false);
  EXPECT_DEATH(b.access(10, 1, false), "busy");
}

TEST(Bank, SttramTimingsMatchTable2) {
  const DeviceTiming t = DeviceTiming::sttram();
  Bank b(t);
  // 65 ns read at 2 GHz = 130 cycles array access on a row miss.
  EXPECT_EQ(b.access(0, 0, false), 130u);
  // Write adds 11 ns = 22 cycles.
  Bank b2(t);
  EXPECT_EQ(b2.access(0, 0, true), 152u);
}

}  // namespace
}  // namespace ntcsim::mem
