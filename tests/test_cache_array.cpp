#include "cache/array.hpp"

#include <gtest/gtest.h>

namespace ntcsim::cache {
namespace {

CacheConfig cfg_2way_4sets() {
  // 2 ways x 4 sets x 64 B = 512 B.
  return CacheConfig{512, 2, 1, 4, 4};
}

TEST(CacheArray, MissThenHit) {
  CacheArray c(cfg_2way_4sets());
  EXPECT_EQ(c.lookup(0), nullptr);
  std::optional<Eviction> ev;
  Line* l = c.allocate(0, ev);
  ASSERT_NE(l, nullptr);
  EXPECT_FALSE(ev.has_value());
  EXPECT_NE(c.lookup(0), nullptr);
}

TEST(CacheArray, LruEvictsOldest) {
  CacheArray c(cfg_2way_4sets());
  // Set stride: 4 sets -> lines 0, 256, 512 map to set 0.
  std::optional<Eviction> ev;
  c.allocate(0, ev);
  c.allocate(256, ev);
  c.lookup(0);  // touch 0 so 256 is LRU
  ev.reset();
  c.allocate(512, ev);
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->line_addr, 256u);
  EXPECT_NE(c.lookup(0, false), nullptr);
  EXPECT_EQ(c.lookup(256, false), nullptr);
}

TEST(CacheArray, EvictionCarriesState) {
  CacheArray c(cfg_2way_4sets());
  std::optional<Eviction> ev;
  Line* l = c.allocate(0, ev);
  l->dirty = true;
  l->persistent = true;
  l->presence = 0b101;
  c.allocate(256, ev);
  ev.reset();
  c.allocate(512, ev);  // evicts one of them; make 0 LRU
  // (0 was allocated first and never touched again, so it is the victim.)
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->line_addr, 0u);
  EXPECT_TRUE(ev->dirty);
  EXPECT_TRUE(ev->persistent);
  EXPECT_EQ(ev->presence, 0b101u);
}

TEST(CacheArray, PinnedLinesAreNotEvicted) {
  CacheArray c(cfg_2way_4sets());
  std::optional<Eviction> ev;
  Line* a = c.allocate(0, ev);
  a->pinned = true;
  c.note_pin(true);
  c.allocate(256, ev);
  ev.reset();
  c.allocate(512, ev);  // must evict 256, not pinned 0
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->line_addr, 256u);
  EXPECT_NE(c.lookup(0, false), nullptr);
}

TEST(CacheArray, AllPinnedReturnsNull) {
  CacheArray c(cfg_2way_4sets());
  std::optional<Eviction> ev;
  for (Addr a : {0u, 256u}) {
    Line* l = c.allocate(a, ev);
    l->pinned = true;
    c.note_pin(true);
  }
  EXPECT_EQ(c.pinned_count(), 2u);
  ev.reset();
  EXPECT_EQ(c.allocate(512, ev), nullptr);
  EXPECT_FALSE(ev.has_value());
}

TEST(CacheArray, InvalidateReturnsStateAndClearsPin) {
  CacheArray c(cfg_2way_4sets());
  std::optional<Eviction> ev;
  Line* l = c.allocate(64, ev);
  l->dirty = true;
  l->pinned = true;
  c.note_pin(true);
  auto inv = c.invalidate(64);
  ASSERT_TRUE(inv.has_value());
  EXPECT_TRUE(inv->dirty);
  EXPECT_EQ(c.pinned_count(), 0u);
  EXPECT_EQ(c.lookup(64, false), nullptr);
  EXPECT_FALSE(c.invalidate(64).has_value());
}

TEST(CacheArray, SetsAreIndependent) {
  CacheArray c(cfg_2way_4sets());
  std::optional<Eviction> ev;
  // Fill set 0 and set 1; allocations in set 1 must not evict set 0.
  c.allocate(0, ev);
  c.allocate(256, ev);
  c.allocate(64, ev);
  c.allocate(320, ev);
  ev.reset();
  c.allocate(576, ev);  // set 1
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->line_addr % 256, 64u);  // victim came from set 1
  EXPECT_NE(c.lookup(0, false), nullptr);
  EXPECT_NE(c.lookup(256, false), nullptr);
}

TEST(CacheArray, DoubleAllocateAborts) {
  CacheArray c(cfg_2way_4sets());
  std::optional<Eviction> ev;
  c.allocate(0, ev);
  EXPECT_DEATH(c.allocate(0, ev), "already-present");
}

TEST(CacheArray, ForEachValidVisitsAll) {
  CacheArray c(cfg_2way_4sets());
  std::optional<Eviction> ev;
  c.allocate(0, ev);
  c.allocate(64, ev);
  c.allocate(128, ev);
  int count = 0;
  c.for_each_valid([&](Line&) { ++count; });
  EXPECT_EQ(count, 3);
}

}  // namespace
}  // namespace ntcsim::cache
