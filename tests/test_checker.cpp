#include "recovery/recovery.hpp"

#include "recovery/log_format.hpp"

#include <gtest/gtest.h>

namespace ntcsim::recovery {
namespace {

Journal two_tx_journal() {
  Journal j(1);
  j.begin_tx(0, 1);
  j.write(0, 0, 10);
  j.write(0, 8, 11);
  j.end_tx(0);
  j.begin_tx(0, 2);
  j.write(0, 0, 20);  // overwrites tx 1's word
  j.write(0, 16, 21);
  j.end_tx(0);
  return j;
}

TEST(Checker, EmptyStateMatchesPrefixZero) {
  const Journal j = two_tx_journal();
  WordImage img;
  const auto r = check_atomicity(img, j);
  EXPECT_TRUE(r.consistent);
  EXPECT_EQ(r.durable_tx_prefix[0], 0u);
}

TEST(Checker, FullReplayMatchesPrefixTwo) {
  const Journal j = two_tx_journal();
  WordImage img;
  img.store(0, 20);
  img.store(8, 11);
  img.store(16, 21);
  const auto r = check_atomicity(img, j);
  EXPECT_TRUE(r.consistent);
  EXPECT_EQ(r.durable_tx_prefix[0], 2u);
}

TEST(Checker, PrefixOneMatches) {
  const Journal j = two_tx_journal();
  WordImage img;
  img.store(0, 10);
  img.store(8, 11);
  const auto r = check_atomicity(img, j);
  EXPECT_TRUE(r.consistent);
  EXPECT_EQ(r.durable_tx_prefix[0], 1u);
}

TEST(Checker, PartialTxIsViolation) {
  const Journal j = two_tx_journal();
  WordImage img;
  img.store(0, 10);  // tx 1 half applied
  const auto r = check_atomicity(img, j);
  EXPECT_FALSE(r.consistent);
  EXPECT_NE(r.violation.find("core 0"), std::string::npos);
}

TEST(Checker, SkippedTxIsViolation) {
  // Tx 2 applied without tx 1: not a prefix.
  const Journal j = two_tx_journal();
  WordImage img;
  img.store(0, 20);
  img.store(16, 21);
  const auto r = check_atomicity(img, j);
  EXPECT_FALSE(r.consistent);
}

TEST(Checker, ForeignValueIsViolation) {
  const Journal j = two_tx_journal();
  WordImage img;
  img.store(0, 999);  // value never written by any tx
  const auto r = check_atomicity(img, j);
  EXPECT_FALSE(r.consistent);
}

TEST(Checker, PerCoreIndependence) {
  Journal j(2);
  j.begin_tx(0, 1);
  j.write(0, 0, 1);
  j.end_tx(0);
  j.begin_tx(1, 1);
  j.write(1, 1024, 2);
  j.end_tx(1);
  WordImage img;
  img.store(0, 1);  // core 0 durable, core 1 not
  const auto r = check_atomicity(img, j);
  EXPECT_TRUE(r.consistent);
  EXPECT_EQ(r.durable_tx_prefix[0], 1u);
  EXPECT_EQ(r.durable_tx_prefix[1], 0u);
}

TEST(Checker, RepeatedWritesWithinTx) {
  Journal j(1);
  j.begin_tx(0, 1);
  j.write(0, 0, 1);
  j.write(0, 0, 2);  // last write wins
  j.end_tx(0);
  WordImage img;
  img.store(0, 2);
  EXPECT_TRUE(check_atomicity(img, j).consistent);
  WordImage img2;
  img2.store(0, 1);  // intermediate value visible: violation
  EXPECT_FALSE(check_atomicity(img2, j).consistent);
}

TEST(Checker, EmptyJournalIsConsistent) {
  Journal j(1);
  WordImage img;
  EXPECT_TRUE(check_atomicity(img, j).consistent);
}

TEST(RecoverTc, AppliesCommittedEntriesInFifoOrder) {
  StatSet stats;
  DurableState d(stats);
  NtcSnapshot snap;
  snap.push_back({1, true, {{0, 1}}});
  snap.push_back({1, true, {{0, 2}}});   // newer entry, same word
  snap.push_back({2, false, {{8, 9}}});  // active: discarded
  const WordImage img = recover_tc(d, {snap});
  EXPECT_EQ(img.load(0), 2u);
  EXPECT_EQ(img.load(8), 0u);
}

TEST(RecoverSp, ReplaysLoggedTxs) {
  StatSet stats;
  DurableState d(stats);
  const AddressSpace space;
  mem::MemRequest log_write;
  log_write.payload = {{space.log_base(0), 4096},
                       {space.log_base(0) + 8, 55},
                       {space.log_base(0) + 16, make_commit_marker(1)},
                       {space.log_base(0) + 24, 1}};
  d.on_nvm_write(log_write);
  const WordImage img = recover_sp(d, space, 1);
  EXPECT_EQ(img.load(4096), 55u);
}

TEST(RecoveryCost, TcCountsSnapshotEntries) {
  NtcSnapshot snap;
  snap.push_back({1, true, {{0, 1}, {8, 2}}});
  snap.push_back({2, false, {{16, 3}}});
  const RecoveryCost c = tc_recovery_cost({snap});
  EXPECT_EQ(c.records_scanned, 2u);
  EXPECT_EQ(c.words_applied, 2u);  // uncommitted entry not applied
}

TEST(RecoveryCost, SpCountsLogRecords) {
  StatSet stats;
  DurableState d(stats);
  const AddressSpace space;
  mem::MemRequest log_write;
  log_write.payload = {{space.log_base(0), 4096},
                       {space.log_base(0) + 8, 55},
                       {space.log_base(0) + 16, make_commit_marker(1)},
                       {space.log_base(0) + 24, 1}};
  d.on_nvm_write(log_write);
  const RecoveryCost c = sp_recovery_cost(d, space, 1);
  EXPECT_EQ(c.records_scanned, 2u);  // one data record + the marker
  EXPECT_EQ(c.words_applied, 1u);
}

}  // namespace
}  // namespace ntcsim::recovery
