// CLI/documentation drift guard: the flag set in `ntcsim --help` (shared
// via sim/cli_help.hpp) and the CLI reference in EXPERIMENTS.md (the
// region between the cli-flags-begin/end markers) must list exactly the
// same flags. Adding a flag to one without the other fails here.
#include "sim/cli_help.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

namespace ntcsim::sim {
namespace {

std::set<std::string> extract_flags(const std::string& text) {
  std::set<std::string> flags;
  for (std::size_t i = 0; i + 2 < text.size(); ++i) {
    if (text[i] != '-' || text[i + 1] != '-' ||
        !std::islower(static_cast<unsigned char>(text[i + 2]))) {
      continue;
    }
    if (i > 0 && text[i - 1] == '-') continue;  // inside a longer dash run
    std::size_t end = i + 2;
    while (end < text.size() &&
           (std::islower(static_cast<unsigned char>(text[end])) ||
            std::isdigit(static_cast<unsigned char>(text[end])) ||
            text[end] == '-')) {
      ++end;
    }
    flags.insert(text.substr(i, end - i));
    i = end;
  }
  return flags;
}

std::string read_file(const std::string& path) {
  std::ifstream f(path);
  EXPECT_TRUE(f.good()) << "cannot open " << path;
  std::ostringstream oss;
  oss << f.rdbuf();
  return oss.str();
}

std::string cli_reference_region() {
  const std::string doc = read_file(NTC_EXPERIMENTS_MD);
  const std::string begin_marker = "<!-- cli-flags-begin -->";
  const std::string end_marker = "<!-- cli-flags-end -->";
  const std::size_t b = doc.find(begin_marker);
  const std::size_t e = doc.find(end_marker);
  EXPECT_NE(b, std::string::npos) << "EXPERIMENTS.md lost its " << begin_marker;
  EXPECT_NE(e, std::string::npos) << "EXPERIMENTS.md lost its " << end_marker;
  if (b == std::string::npos || e == std::string::npos || e <= b) return "";
  return doc.substr(b, e - b);
}

TEST(CliDocs, EveryDocumentedFlagIsInHelp) {
  const std::set<std::string> help = extract_flags(kCliHelp);
  for (const std::string& flag : extract_flags(cli_reference_region())) {
    EXPECT_TRUE(help.count(flag) > 0)
        << flag << " is documented in EXPERIMENTS.md but missing from "
        << "`ntcsim --help` (src/sim/cli_help.hpp)";
  }
}

TEST(CliDocs, EveryHelpFlagIsDocumented) {
  const std::set<std::string> documented = extract_flags(cli_reference_region());
  for (const std::string& flag : extract_flags(kCliHelp)) {
    EXPECT_TRUE(documented.count(flag) > 0)
        << flag << " is in `ntcsim --help` but missing from the CLI "
        << "reference in EXPERIMENTS.md (between the cli-flags markers)";
  }
}

TEST(CliDocs, HelpMentionsTheEnvEquivalents) {
  const std::string help(kCliHelp);
  EXPECT_NE(help.find("NTCSIM_JOBS"), std::string::npos);
  EXPECT_NE(help.find("NTCSIM_CHECK"), std::string::npos);
}

}  // namespace
}  // namespace ntcsim::sim
