// Quiescence-aware clock advance (docs/ARCHITECTURE.md "Clock advance &
// quiescence"): every component answers next_event_cycle(now) — the
// earliest cycle at which its tick stops being a no-op absent external
// input — and the cluster jumps the shared clock to the min instead of
// executing provably idle cycles.
//
// Two layers of defense are exercised here:
//  1. Per-component contract checks: a claimed-idle window really is
//     frozen (no stat moves before the claimed cycle), with regressions
//     for the two subtlest gates — the controller's periodic refresh /
//     bank timing and the Kiln clean-backlog age threshold — plus the
//     core's arrival-gated fetch in service mode.
//  2. Bit-identity: skip-on, skip-off (--no-skip) and skip.verify runs of
//     the same cell must produce byte-identical CSV rows across
//     mechanisms, workloads, node counts and service mode. skip.verify
//     additionally single-steps every claimed window and aborts (via
//     NTC_CHECK) if any supposedly idle cycle did work, so merely running
//     the sweep under the tiny preset (verify on) is itself a proof.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "mem/memory_controller.hpp"
#include "persist/kiln_unit.hpp"
#include "recovery/images.hpp"
#include "sim/experiment.hpp"
#include "sim/report.hpp"
#include "sim/system.hpp"
#include "txcache/tx_cache.hpp"
#include "workload/service.hpp"
#include "workload/workloads.hpp"

namespace ntcsim::sim {
namespace {

// ------------------------------------------------------------ components

class McSkipTest : public ::testing::Test {
 protected:
  static MemCtrlConfig small_cfg() {
    MemCtrlConfig c;
    c.read_queue = 4;
    c.write_queue = 8;
    c.ranks = 1;
    c.banks_per_rank = 2;
    c.bus_latency = 2;
    c.timing.row_hit = 10;
    c.timing.row_miss = 30;
    c.timing.write_extra = 5;
    c.timing.burst = 4;
    // DRAM-style refresh so the idle controller still self-schedules;
    // with refresh off (the NVM default) an idle controller is kNever.
    c.refresh_interval = 500;
    c.refresh_cycles = 20;
    return c;
  }

  McSkipTest() : mc_("nvm", small_cfg(), events_, stats_) {}

  void run(Cycle cycles) {
    for (Cycle i = 0; i < cycles; ++i) {
      events_.drain_until(now_);
      mc_.tick(now_);
      ++now_;
    }
    events_.drain_until(now_);
  }

  std::string stat_dump() {
    std::ostringstream os;
    stats_.dump(os);
    return os.str();
  }

  EventQueue events_;
  StatSet stats_;
  mem::MemoryController mc_;
  Cycle now_ = 0;
};

TEST_F(McSkipTest, IdleControllerPromisesTheRefreshDeadline) {
  // Empty queues, idle banks: the only self-scheduled work is periodic
  // refresh, which must bound the claim — it bumps a stat when it fires.
  const Cycle claim = mc_.next_event_cycle(now_);
  ASSERT_NE(claim, kNeverCycle);
  EXPECT_GT(claim, now_ + 1);
  EXPECT_LE(claim, now_ + 500);  // never later than the refresh deadline

  // The claimed-idle window really is frozen: ticking up to (but not
  // including) the claimed cycle changes no statistic.
  const std::string before = stat_dump();
  run(claim - now_ - 1);
  EXPECT_EQ(stat_dump(), before)
      << "a tick inside the claimed-idle window did observable work";
}

TEST_F(McSkipTest, QueuedRequestForcesTheNextCycle) {
  mem::MemRequest r;
  r.op = mem::MemOp::kRead;
  r.line_addr = 0;
  ASSERT_TRUE(mc_.enqueue(r, now_));
  // A bank-ready request is serviceable on the very next tick.
  EXPECT_EQ(mc_.next_event_cycle(now_), now_ + 1);
}

TEST_F(McSkipTest, BusyBankDefersButNeverPastTheBankReadyCycle) {
  mem::MemRequest r;
  r.op = mem::MemOp::kRead;
  r.line_addr = 0;
  ASSERT_TRUE(mc_.enqueue(r, now_));
  run(1);  // issue: the bank is now busy for the row-miss latency
  mem::MemRequest r2;
  r2.op = mem::MemOp::kRead;
  r2.line_addr = 1024 * 1024;  // same bank count: eventually reusable
  ASSERT_TRUE(mc_.enqueue(r2, now_));
  const Cycle claim = mc_.next_event_cycle(now_);
  ASSERT_NE(claim, kNeverCycle);
  // Conservative (earlier) is legal; later than the in-flight request's
  // completion event would be a lost wakeup. The first read occupies its
  // bank for row_miss + burst cycles.
  EXPECT_LE(claim, now_ + 30 + 4 + 2);
}

TEST(TxCacheSkip, EmptyIsNeverAndCommittedBacklogIsNow) {
  SystemConfig cfg = SystemConfig::tiny();
  cfg.ntc.size_bytes = 512;  // 8 entries
  EventQueue events;
  StatSet stats;
  mem::MemorySystem mem(cfg, events, stats);
  txcache::TxCache ntc("ntc0", 0, cfg.ntc, cfg.address_space, mem, stats);
  const Addr nvm = cfg.address_space.nvm_base();

  EXPECT_EQ(ntc.next_event_cycle(0), kNeverCycle);
  ASSERT_TRUE(ntc.write(0, nvm, 1, 1));
  // Active (uncommitted) entries are not self-scheduled work: nothing
  // happens until the core commits. But a committed entry drains on the
  // very next tick.
  EXPECT_EQ(ntc.next_event_cycle(0), kNeverCycle);
  ntc.commit(1);
  EXPECT_EQ(ntc.next_event_cycle(0), 0 + 1);
}

TEST(KilnSkip, CleanBacklogAgesTowardTheDeadlineRegression) {
  // The drain-threshold regression: a small clean backlog (below
  // clean_batch) is idle until the oldest entry crosses clean_max_age.
  // Claiming kNever here (the PR-draft bug) would strand the backlog
  // forever under skipping.
  SystemConfig cfg = SystemConfig::tiny();
  EventQueue events;
  StatSet stats;
  recovery::VolatileImage vimage;
  mem::MemorySystem mem(cfg, events, stats);
  recovery::DurableState durable(stats);
  mem.set_nvm_observer(&durable);
  cache::Hierarchy hier(cfg, mem, events, stats, &vimage);
  hier.hooks().llc_nonvolatile = true;
  persist::KilnConfig kc;
  persist::KilnUnit kiln(1, kc, hier, events, &durable, stats);
  const Addr nvm = cfg.address_space.heap_base();

  EXPECT_EQ(kiln.next_event_cycle(0), kNeverCycle);

  Cycle now = 0;
  kiln.begin_tx(0, 1);
  vimage.store(nvm, 5);
  kiln.on_store(now, 0, nvm, 5, 1);
  kiln.begin_commit(now, 0, 1);
  for (; now < 200; ++now) {
    events.drain_until(now);
    hier.tick(now);
    kiln.tick(now, mem);
    mem.tick(now);
  }
  ASSERT_TRUE(kiln.commit_done(0));

  const Cycle claim = kiln.next_event_cycle(now);
  ASSERT_NE(claim, kNeverCycle) << "clean backlog stranded as 'never'";
  EXPECT_GT(claim, now + 1);  // below clean_batch: waits for the age-out
  EXPECT_LE(claim, now + kc.clean_max_age);  // never later than the deadline
}

TEST(CoreSkip, ArrivalGatedFetchPromisesTheArrivalCycle) {
  // Service mode: a core whose next request has not arrived yet is idle
  // until the stamped arrival — the regression for the arrival-gating
  // candidate (returning now+1 forever would make service runs unskippable;
  // returning later than the arrival would delay requests).
  SystemConfig cfg = SystemConfig::tiny();
  cfg.mechanism = Mechanism::kTc;
  cfg.service.enabled = true;
  cfg.service.rate = 0.05;  // one request per 20k cycles: long idle gaps
  core::Trace t;
  for (int i = 0; i < 4; ++i) {
    t.push(core::MicroOp::tx_begin(static_cast<TxId>(i + 1)));
    t.push(core::MicroOp::compute());
    t.push(core::MicroOp::tx_end());
  }
  ASSERT_GT(workload::stamp_service_arrivals(t, cfg.service, 0, 7), 0u);

  System sys(cfg);
  sys.load_trace(0, std::move(t));
  sys.run_for(2);  // latch the trace base so arrivals are absolute
  const Cycle now = sys.now() - 1;
  const Cycle claim = sys.core(0).next_event_cycle(now);
  ASSERT_NE(claim, kNeverCycle);
  EXPECT_GT(claim, now + 1) << "arrival gap not surfaced as skippable";

  // Never later than the true next state change: nothing retires before
  // the claimed cycle...
  ASSERT_GT(claim, sys.now());
  sys.run_for(claim - sys.now());
  EXPECT_EQ(sys.metrics().retired_uops, 0u);
  // ...and the whole run still completes with every op retired.
  sys.run();
  EXPECT_EQ(sys.metrics().committed_txs, 4u);
}

TEST(HierarchySkip, QuiescedIsNeverAndInFlightIsNow) {
  SystemConfig cfg = SystemConfig::tiny();
  cfg.mechanism = Mechanism::kOptimal;
  System sys(cfg);
  core::Trace t;
  t.push(core::MicroOp::load(cfg.address_space.heap_base(), true));
  sys.load_trace(0, std::move(t));
  sys.run_for(2);  // the load's LLC miss is now in flight
  const Cycle mid = sys.now() - 1;
  EXPECT_EQ(sys.hierarchy().next_event_cycle(mid), mid + 1);
  sys.run();
  const Cycle end = sys.now() - 1;
  EXPECT_EQ(sys.hierarchy().next_event_cycle(end), kNeverCycle);
}

// ---------------------------------------------------------- bit-identity

std::string cell_row(Mechanism mech, WorkloadKind wl, SystemConfig base,
                     bool skip_on, bool verify = false) {
  base.skip.enabled = skip_on;
  base.skip.verify = verify;
  ExperimentOptions opts;
  opts.scale = 0.02;
  opts.setup_scale = 0.05;
  opts.seed = 1;
  const Metrics m = run_cell(mech, wl, base, opts);
  std::ostringstream os;
  write_metrics_csv_row(os,
                        std::string(to_string(wl)) + "/" +
                            std::string(to_string(mech)),
                        m, /*header=*/true);
  return os.str();
}

class SkipIdentity : public ::testing::TestWithParam<Mechanism> {};

TEST_P(SkipIdentity, TinyCellsAreByteIdenticalWithAndWithoutSkip) {
  const SystemConfig base = SystemConfig::tiny();
  for (WorkloadKind wl : {WorkloadKind::kSps, WorkloadKind::kRbtree}) {
    const std::string jump = cell_row(GetParam(), wl, base, true);
    const std::string stepped = cell_row(GetParam(), wl, base, false);
    EXPECT_EQ(jump, stepped)
        << to_string(wl) << "/" << to_string(GetParam())
        << ": clock jumping changed a simulated metric";
  }
}

INSTANTIATE_TEST_SUITE_P(Mechanisms, SkipIdentity,
                         ::testing::Values(Mechanism::kOptimal, Mechanism::kTc,
                                           Mechanism::kSp, Mechanism::kKiln,
                                           Mechanism::kSpAdr),
                         [](const auto& param_info) {
                           std::string n(to_string(param_info.param));
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

TEST(SkipIdentityModes, ServiceModeSingleAndFourNodeCells) {
  SystemConfig base = SystemConfig::tiny();
  base.service.enabled = true;
  base.service.rate = 0.2;  // well under the knee: long skippable gaps
  base.service.requests = 60;
  for (unsigned nodes : {1u, 4u}) {
    base.topo.nodes = nodes;
    const std::string jump =
        cell_row(Mechanism::kTc, WorkloadKind::kSps, base, true);
    const std::string stepped =
        cell_row(Mechanism::kTc, WorkloadKind::kSps, base, false);
    EXPECT_EQ(jump, stepped)
        << nodes << "-node service cell diverged under clock jumping "
        << "(tail-latency columns included)";
  }
}

TEST(SkipIdentityModes, VerifyModeMatchesBothAndExecutesEverything) {
  const SystemConfig base = SystemConfig::tiny();
  const std::string jump =
      cell_row(Mechanism::kKiln, WorkloadKind::kRbtree, base, true);
  const std::string verified =
      cell_row(Mechanism::kKiln, WorkloadKind::kRbtree, base, true, true);
  const std::string stepped =
      cell_row(Mechanism::kKiln, WorkloadKind::kRbtree, base, false);
  EXPECT_EQ(jump, verified);
  EXPECT_EQ(verified, stepped);
}

TEST(SkipIdentityModes, SkipActuallySkipsAndAccountsEveryCycle) {
  SystemConfig cfg = SystemConfig::tiny();
  cfg.mechanism = Mechanism::kTc;
  cfg.skip.verify = false;  // measure the real jump path
  cfg.service.enabled = true;
  cfg.service.rate = 0.05;
  workload::WorkloadParams p = workload::default_params(WorkloadKind::kSps);
  p.setup_elems = 200;
  p.ops = 30;
  workload::SimHeap heap(cfg.address_space, 1);
  core::Trace t = workload::generate(p, 0, heap, nullptr);
  workload::stamp_service_arrivals(t, cfg.service, 0, p.seed);

  System sys(cfg);
  sys.load_trace(0, std::move(t));
  sys.run();
  EXPECT_GT(sys.cycles_skipped(), 0u)
      << "a low-rate service run has long idle gaps; none were skipped";
  // Conservation: every elapsed cycle was either executed or skipped, and
  // the StatSet counters mirror the lifetime totals (no reset here).
  EXPECT_EQ(sys.cycles_skipped() + sys.ticks_executed(), sys.now());
  EXPECT_EQ(sys.stats().counter_value("sim.cycles_skipped"),
            sys.cycles_skipped());
  EXPECT_EQ(sys.stats().counter_value("sim.ticks_executed"),
            sys.ticks_executed());
}

TEST(SkipConfig, TinyPresetVerifiesJumpsEvenInRelease) {
  // The cross-check mode must guard every unit-test run, not only Debug
  // builds: the tiny preset pins it on.
  EXPECT_TRUE(SystemConfig::tiny().skip.verify);
  EXPECT_TRUE(SystemConfig::tiny().skip.enabled);
}

}  // namespace
}  // namespace ntcsim::sim
