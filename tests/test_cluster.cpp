// The Node/Cluster topology layer: interconnect hop/serialization math,
// deterministic sharded routing of the service request stream, cross-node
// metric aggregation, the run() cycle-cap status, partial-failure crash
// injection, and the shared --check spelling parser.
#include "topo/cluster.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "faultsim/campaign.hpp"
#include "sim/config_io.hpp"
#include "sim/experiment.hpp"
#include "topo/interconnect.hpp"
#include "workload/service.hpp"

namespace ntcsim {
namespace {

// -------------------------------------------------------- interconnect --

TopoConfig two_node_topo() {
  TopoConfig t;
  t.nodes = 2;
  t.hop_ns = 100.0;     // 100 cycles at 1 GHz
  t.link_gbps = 25.6;   // 256 B * 8 / 25.6 Gbps = 80 ns
  t.msg_bytes = 256;
  return t;
}

TEST(Interconnect, HopAndSerializationDelayAddUp) {
  topo::Interconnect net(2, two_node_topo(), /*ghz=*/1.0);
  EXPECT_EQ(net.hop_cycles(), 100u);
  EXPECT_EQ(net.serialize_cycles(), 80u);
  EXPECT_EQ(net.deliver(0, 1, 1000), 1000u + 80u + 100u);
}

TEST(Interconnect, SameNodeDeliveryIsFree) {
  topo::Interconnect net(2, two_node_topo(), 1.0);
  EXPECT_EQ(net.deliver(0, 0, 1234), 1234u);
}

TEST(Interconnect, LinkSerializationQueuesBackToBackMessages) {
  topo::Interconnect net(2, two_node_topo(), 1.0);
  EXPECT_EQ(net.deliver(0, 1, 1000), 1180u);
  // Second message on the same directed link can't start serializing
  // until the first clears the link at 1080.
  EXPECT_EQ(net.deliver(0, 1, 1000), 1080u + 80u + 100u);
  // The opposite direction is an independent link — no queueing.
  EXPECT_EQ(net.deliver(1, 0, 1000), 1180u);
}

// ------------------------------------------------------------- routing --

core::Trace stamped_trace(std::size_t txs, CoreId core, NodeId node) {
  core::Trace t;
  for (TxId tx = 1; tx <= txs; ++tx) {
    t.push(core::MicroOp::tx_begin(tx));
    t.push(core::MicroOp::compute());
    t.push(core::MicroOp::tx_end());
  }
  ServiceConfig s;
  s.enabled = true;
  s.rate = 2.0;
  workload::stamp_service_arrivals(t, s, core, /*seed=*/7, node);
  return t;
}

TEST(Routing, IsDeterministicAndProducesCrossShardTraffic) {
  auto build = [] {
    std::vector<core::Trace> traces;
    traces.push_back(stamped_trace(16, 0, 0));
    traces.push_back(stamped_trace(16, 0, 1));
    return traces;
  };
  std::vector<core::Trace> a = build();
  std::vector<core::Trace> b = build();
  const std::vector<std::vector<core::Trace*>> grid_a{{&a[0]}, {&a[1]}};
  const std::vector<std::vector<core::Trace*>> grid_b{{&b[0]}, {&b[1]}};
  const TopoConfig topo = two_node_topo();
  const topo::RouteStats ra =
      topo::route_service_arrivals(grid_a, topo, 1.0, 7);
  const topo::RouteStats rb =
      topo::route_service_arrivals(grid_b, topo, 1.0, 7);

  EXPECT_EQ(ra.requests, 32u);
  EXPECT_EQ(ra.requests, rb.requests);
  EXPECT_EQ(ra.xshard, rb.xshard);
  EXPECT_EQ(ra.fwd_cycles, rb.fwd_cycles);
  // With 32 requests split over 2 entry nodes, some must land off-home.
  EXPECT_GT(ra.xshard, 0u);
  EXPECT_LT(ra.xshard, ra.requests);
  // Every cross-shard request pays at least serialization + hop forward.
  EXPECT_GE(ra.fwd_cycles, ra.xshard * 180u);

  for (std::size_t n = 0; n < 2; ++n) {
    for (std::size_t i = 0; i < a[n].size(); ++i) {
      EXPECT_EQ(a[n][i].net_fwd, b[n][i].net_fwd) << "node " << n;
      EXPECT_EQ(a[n][i].net_rsp, b[n][i].net_rsp) << "node " << n;
    }
  }
}

TEST(Routing, SingleNodeIsANoOp) {
  std::vector<core::Trace> traces;
  traces.push_back(stamped_trace(8, 0, 0));
  const std::vector<std::vector<core::Trace*>> grid{{&traces[0]}};
  const topo::RouteStats rs =
      topo::route_service_arrivals(grid, two_node_topo(), 1.0, 7);
  EXPECT_EQ(rs.requests, 0u);
  EXPECT_EQ(rs.xshard, 0u);
  for (const core::MicroOp& op : traces[0].ops()) {
    EXPECT_EQ(op.net_fwd, 0u);
    EXPECT_EQ(op.net_rsp, 0u);
  }
}

// --------------------------------------------------------- aggregation --

TEST(Cluster, AggregatesMetricsAcrossNodesWithPerNodeBreakdown) {
  SystemConfig cfg = SystemConfig::tiny();
  cfg.topo.nodes = 2;
  cfg.check = CheckMode::kOff;
  sim::Cluster cluster(cfg);
  ASSERT_EQ(cluster.nodes(), 2u);
  for (NodeId n = 0; n < 2; ++n) {
    core::Trace t;
    // Give the nodes different work so the breakdown is distinguishable.
    for (TxId tx = 1; tx <= 3 + 3 * n; ++tx) {
      t.push(core::MicroOp::tx_begin(tx));
      t.push(core::MicroOp::store(0x1000 + 64 * tx, tx, /*persistent=*/true));
      t.push(core::MicroOp::tx_end());
    }
    cluster.load_trace(n, 0, std::move(t));
  }
  ASSERT_EQ(cluster.run(), sim::RunStatus::kFinished);

  const sim::Metrics m = cluster.metrics();
  ASSERT_EQ(m.per_node.size(), 2u);
  EXPECT_EQ(m.committed_txs, 3u + 6u);
  EXPECT_EQ(m.per_node[0].committed_txs, 3u);
  EXPECT_EQ(m.per_node[1].committed_txs, 6u);
  EXPECT_EQ(m.retired_uops,
            m.per_node[0].retired_uops + m.per_node[1].retired_uops);
  EXPECT_EQ(m.nvm_writes, m.per_node[0].nvm_writes + m.per_node[1].nvm_writes);
  // Both nodes share one clock, so every breakdown covers the same window.
  EXPECT_EQ(m.per_node[0].cycles, m.cycles);
  EXPECT_EQ(m.per_node[1].cycles, m.cycles);
}

TEST(Cluster, SingleNodeMetricsCarryNoBreakdown) {
  SystemConfig cfg = SystemConfig::tiny();
  cfg.check = CheckMode::kOff;
  sim::Cluster cluster(cfg);
  core::Trace t;
  t.push(core::MicroOp::tx_begin(1));
  t.push(core::MicroOp::store(0x1000, 1, true));
  t.push(core::MicroOp::tx_end());
  cluster.load_trace(0, std::move(t));
  ASSERT_EQ(cluster.run(), sim::RunStatus::kFinished);
  EXPECT_TRUE(cluster.metrics().per_node.empty());
}

// ------------------------------------------------------------- timeout --

TEST(Cluster, RunReportsCycleCapInsteadOfFinishing) {
  SystemConfig cfg = SystemConfig::tiny();
  cfg.check = CheckMode::kOff;
  sim::Cluster cluster(cfg);
  core::Trace t;
  t.push(core::MicroOp::tx_begin(1));
  t.push(core::MicroOp::store(0x1000, 1, true));
  t.push(core::MicroOp::tx_end());
  cluster.load_trace(0, std::move(t));

  EXPECT_EQ(cluster.run(/*max_cycles=*/1), sim::RunStatus::kCycleCap);
  EXPECT_TRUE(cluster.timed_out());
  EXPECT_FALSE(cluster.finished());
  // Given the budget it needs, the same cluster still drains.
  EXPECT_EQ(cluster.run(), sim::RunStatus::kFinished);
  EXPECT_TRUE(cluster.finished());
}

// ----------------------------------------------------- partial failure --

TEST(Cluster, CrashOnOneNodeLeavesTheOthersServing) {
  SystemConfig cfg = SystemConfig::tiny();
  cfg.topo.nodes = 2;
  cfg.crash.points = 4;
  cfg.crash.ops = 40;
  cfg.crash.setup = 120;

  faultsim::CellSpec spec;
  spec.mech = Mechanism::kTc;
  spec.wl = WorkloadKind::kSps;
  spec.seed = 1;
  spec.variant = "tc";
  spec.node = 1;  // crash the second shard; node 0 keeps serving

  const faultsim::CellResult r =
      faultsim::run_cell(cfg, spec, faultsim::CampaignOptions{});
  EXPECT_EQ(r.spec.node, 1u);
  EXPECT_EQ(r.status, faultsim::CellStatus::kPass);
  EXPECT_GT(r.checks, 0u);
  EXPECT_NE(r.repro.find("--nodes=2"), std::string::npos);
}

// ------------------------------------------------------- check parsing --

TEST(CheckModeParser, AcceptsEverySpelling) {
  CheckMode mode = CheckMode::kFatal;
  EXPECT_TRUE(sim::parse_check_mode("off", mode));
  EXPECT_EQ(mode, CheckMode::kOff);
  EXPECT_TRUE(sim::parse_check_mode("0", mode));
  EXPECT_EQ(mode, CheckMode::kOff);
  EXPECT_TRUE(sim::parse_check_mode("collect", mode));
  EXPECT_EQ(mode, CheckMode::kCollect);
  EXPECT_TRUE(sim::parse_check_mode("1", mode));
  EXPECT_EQ(mode, CheckMode::kCollect);
  EXPECT_TRUE(sim::parse_check_mode("fatal", mode));
  EXPECT_EQ(mode, CheckMode::kFatal);

  mode = CheckMode::kCollect;
  EXPECT_FALSE(sim::parse_check_mode("banana", mode));
  EXPECT_EQ(mode, CheckMode::kCollect);  // unparsable input leaves it alone
}

}  // namespace
}  // namespace ntcsim
