#include "common/config.hpp"

#include <gtest/gtest.h>

namespace ntcsim {
namespace {

TEST(Config, PaperMatchesTable2) {
  const SystemConfig c = SystemConfig::paper();
  EXPECT_EQ(c.cores, 4u);
  EXPECT_DOUBLE_EQ(c.ghz, 2.0);
  EXPECT_EQ(c.l1.size_bytes, 32ULL << 10);
  EXPECT_EQ(c.l1.ways, 4u);
  EXPECT_EQ(c.l1.latency_cycles, 1u);  // 0.5 ns at 2 GHz
  EXPECT_EQ(c.l2.size_bytes, 256ULL << 10);
  EXPECT_EQ(c.l2.ways, 8u);
  EXPECT_EQ(c.llc.size_bytes, 64ULL << 20);
  EXPECT_EQ(c.llc.ways, 16u);
  EXPECT_EQ(c.ntc.size_bytes, 4ULL << 10);
  EXPECT_EQ(c.ntc.entries(), 64u);
  EXPECT_EQ(c.nvm.read_queue, 8u);
  EXPECT_EQ(c.nvm.write_queue, 64u);
  EXPECT_DOUBLE_EQ(c.nvm.drain_high_watermark, 0.8);
  EXPECT_EQ(c.nvm.ranks, 4u);
  EXPECT_EQ(c.nvm.banks_per_rank, 8u);
  // STT-RAM: 65 ns read = 130 cycles; write 11 ns slower.
  EXPECT_EQ(c.nvm.timing.row_miss, 130u);
  EXPECT_EQ(c.nvm.timing.write_extra, 22u);
}

TEST(Config, AddressSpaceSplitsDramAndNvm) {
  const AddressSpace s;
  EXPECT_EQ(s.nvm_base(), 8ULL << 30);
  EXPECT_FALSE(s.is_persistent(0));
  EXPECT_FALSE(s.is_persistent(s.nvm_base() - 1));
  EXPECT_TRUE(s.is_persistent(s.nvm_base()));
  EXPECT_TRUE(s.is_persistent(s.nvm_end() - 1));
  EXPECT_FALSE(s.is_persistent(s.nvm_end()));
}

TEST(Config, ReservedRegionsDoNotOverlapHeap) {
  const AddressSpace s;
  EXPECT_GE(s.log_base(0), s.heap_base() + s.heap_bytes());
  EXPECT_GE(s.shadow_base(0), s.heap_base() + s.heap_bytes());
  // Per-core regions are disjoint.
  EXPECT_GE(s.log_base(1), s.log_base(0) + s.log_bytes_per_core());
  EXPECT_NE(s.shadow_base(0), s.log_base(0));
}

TEST(Config, CacheGeometry) {
  CacheConfig c{32ULL << 10, 4, 1, 16, 8};
  EXPECT_EQ(c.lines(), 512u);
  EXPECT_EQ(c.sets(), 128u);
}

TEST(Config, LineHelpers) {
  EXPECT_EQ(line_of(0x12345), 0x12340ULL & ~0x3FULL);
  EXPECT_EQ(line_of(64), 64u);
  EXPECT_EQ(line_of(63), 0u);
  EXPECT_EQ(word_of(15), 8u);
  EXPECT_EQ(word_of(16), 16u);
}

TEST(Config, TinyIsSmallButValid) {
  const SystemConfig c = SystemConfig::tiny();
  EXPECT_EQ(c.cores, 1u);
  EXPECT_GE(c.ntc.entries(), 2u);
  EXPECT_GT(c.l1.sets(), 0u);
  EXPECT_GT(c.llc.sets(), 0u);
}

TEST(Config, MechanismNames) {
  EXPECT_EQ(to_string(Mechanism::kOptimal), "Optimal");
  EXPECT_EQ(to_string(Mechanism::kSp), "SP");
  EXPECT_EQ(to_string(Mechanism::kTc), "TC");
  EXPECT_EQ(to_string(Mechanism::kKiln), "Kiln");
  EXPECT_EQ(to_string(WorkloadKind::kSps), "sps");
}

}  // namespace
}  // namespace ntcsim
