#include "sim/config_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace ntcsim::sim {
namespace {

TEST(ConfigIo, AppliesNumericKeys) {
  SystemConfig cfg = SystemConfig::paper();
  std::istringstream is(
      "cores = 2\n"
      "llc.size_kb = 1024\n"
      "ntc.size_bytes = 2048\n"
      "nvm.write_queue = 32\n");
  const auto r = apply_config(is, cfg);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(cfg.cores, 2u);
  EXPECT_EQ(cfg.llc.size_bytes, 1024ULL * 1024);
  EXPECT_EQ(cfg.ntc.size_bytes, 2048u);
  EXPECT_EQ(cfg.nvm.write_queue, 32u);
}

TEST(ConfigIo, CommentsAndBlanksIgnored) {
  SystemConfig cfg = SystemConfig::paper();
  std::istringstream is(
      "# a machine\n"
      "\n"
      "cores = 8   # eight of them\n");
  ASSERT_TRUE(apply_config(is, cfg).ok);
  EXPECT_EQ(cfg.cores, 8u);
}

TEST(ConfigIo, UnknownKeyIsAnError) {
  SystemConfig cfg = SystemConfig::paper();
  std::istringstream is("cores = 2\nllc.size_mb = 4\n");
  const auto r = apply_config(is, cfg);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("line 2"), std::string::npos);
  EXPECT_NE(r.error.find("llc.size_mb"), std::string::npos);
  EXPECT_EQ(cfg.cores, 2u);  // earlier lines applied
}

TEST(ConfigIo, BadValueIsAnError) {
  SystemConfig cfg = SystemConfig::paper();
  EXPECT_FALSE(apply_config_line("cores = many", cfg).ok);
  EXPECT_FALSE(apply_config_line("mechanism = maglev", cfg).ok);
  EXPECT_FALSE(apply_config_line("just-some-text", cfg).ok);
}

TEST(ConfigIo, UnknownMechanismErrorListsTheRegistry) {
  SystemConfig cfg = SystemConfig::paper();
  const auto r = apply_config_line("mechanism = maglev", cfg);
  ASSERT_FALSE(r.ok);
  // The error is self-serve: it enumerates every registered domain name.
  EXPECT_NE(r.error.find("known mechanisms"), std::string::npos) << r.error;
  for (const char* name : {"optimal", "sp", "sp-adr", "tc", "kiln",
                           "tc-nodrain"}) {
    EXPECT_NE(r.error.find(name), std::string::npos) << name;
  }
}

TEST(ConfigIo, MechanismNamesRoundTrip) {
  SystemConfig cfg = SystemConfig::paper();
  // Includes registry-only extensions: any registered domain must survive
  // a write_config/apply_config round trip under its canonical name.
  for (const char* name : {"tc", "sp", "kiln", "optimal", "sp-adr",
                           "tc-nodrain"}) {
    ASSERT_TRUE(apply_config_line(std::string("mechanism = ") + name, cfg).ok);
    std::ostringstream os;
    write_config(os, cfg);
    EXPECT_NE(os.str().find(std::string("mechanism = ") + name),
              std::string::npos);
  }
}

TEST(ConfigIo, WriteConfigRoundTrips) {
  SystemConfig a = SystemConfig::experiment();
  a.cores = 3;
  a.ntc.size_bytes = 8192;
  a.nvm.drain_high_watermark = 0.75;
  a.mechanism = Mechanism::kKiln;
  std::ostringstream os;
  write_config(os, a);

  SystemConfig b = SystemConfig::paper();  // different starting point
  std::istringstream is(os.str());
  ASSERT_TRUE(apply_config(is, b).ok);
  EXPECT_EQ(b.cores, a.cores);
  EXPECT_EQ(b.ntc.size_bytes, a.ntc.size_bytes);
  EXPECT_DOUBLE_EQ(b.nvm.drain_high_watermark, a.nvm.drain_high_watermark);
  EXPECT_EQ(b.mechanism, a.mechanism);
  EXPECT_EQ(b.llc.size_bytes, a.llc.size_bytes);
  EXPECT_EQ(b.dram.refresh_interval, a.dram.refresh_interval);
}

TEST(ConfigIo, ParseWorkload) {
  WorkloadKind wl = WorkloadKind::kSps;
  EXPECT_TRUE(parse_workload("rbtree", wl));
  EXPECT_EQ(wl, WorkloadKind::kRbtree);
  EXPECT_FALSE(parse_workload("redblack", wl));
  EXPECT_EQ(wl, WorkloadKind::kRbtree);  // unchanged on failure
}

TEST(ConfigIo, TrackRecoveryFlag) {
  SystemConfig cfg = SystemConfig::paper();
  ASSERT_TRUE(apply_config_line("track_recovery = 0", cfg).ok);
  EXPECT_FALSE(cfg.track_recovery_state);
  ASSERT_TRUE(apply_config_line("track_recovery = 1", cfg).ok);
  EXPECT_TRUE(cfg.track_recovery_state);
  EXPECT_FALSE(apply_config_line("track_recovery = yes", cfg).ok);
}

TEST(ConfigIo, RefreshKeys) {
  SystemConfig cfg = SystemConfig::paper();
  ASSERT_TRUE(apply_config_line("dram.refresh_interval = 7800", cfg).ok);
  ASSERT_TRUE(apply_config_line("dram.refresh_cycles = 260", cfg).ok);
  EXPECT_EQ(cfg.dram.refresh_interval, 7800u);
  EXPECT_EQ(cfg.dram.refresh_cycles, 260u);
}

}  // namespace
}  // namespace ntcsim::sim
