#include "core/core.hpp"

#include <gtest/gtest.h>

#include "sim/system.hpp"
#include "workload/workloads.hpp"

namespace ntcsim::core {
namespace {

using sim::System;

SystemConfig tiny(Mechanism mech) {
  SystemConfig c = SystemConfig::tiny();
  c.mechanism = mech;
  return c;
}

Trace computes(std::size_t n) {
  Trace t;
  for (std::size_t i = 0; i < n; ++i) t.push(MicroOp::compute());
  return t;
}

TEST(Core, ComputeIpcApproachesIssueWidth) {
  System sys(tiny(Mechanism::kOptimal));
  sys.load_trace(0, computes(4000));
  sys.run();
  const auto m = sys.metrics();
  EXPECT_EQ(m.retired_uops, 4000u);
  EXPECT_GT(m.ipc, 2.5);  // 4-wide minus pipeline-fill overhead
  EXPECT_LE(m.ipc, 4.0);
}

TEST(Core, LoadMissStallsThePipeline) {
  SystemConfig cfg = tiny(Mechanism::kOptimal);
  System sys(cfg);
  Trace t;
  const Addr nvm = cfg.address_space.heap_base();
  t.push(MicroOp::load(nvm, true));
  for (int i = 0; i < 100; ++i) t.push(MicroOp::compute());
  sys.load_trace(0, t);
  sys.run();
  // An STT-RAM row miss costs >130 cycles; 101 ops in far more cycles.
  EXPECT_GT(sys.now(), 130u);
  EXPECT_GT(sys.stats().counter_value("core0.stall.load"), 0u);
}

TEST(Core, StoreToLoadForwardingIsFast) {
  SystemConfig cfg = tiny(Mechanism::kOptimal);
  System sys(cfg);
  Trace t;
  const Addr a = cfg.address_space.heap_base();
  t.push(MicroOp::tx_begin(1));
  t.push(MicroOp::store(a, 7, true));
  t.push(MicroOp::load(a, true));  // forwarded from SB or ROB
  t.push(MicroOp::tx_end());
  sys.load_trace(0, t);
  sys.run();
  EXPECT_DOUBLE_EQ(sys.stats().accumulator_mean("core0.load_latency"), 1.0);
}

TEST(Core, TxRegistersAssignSequentialIds) {
  System sys(tiny(Mechanism::kOptimal));
  Trace t;
  for (TxId i = 1; i <= 3; ++i) {
    t.push(MicroOp::tx_begin(i));
    t.push(MicroOp::compute());
    t.push(MicroOp::tx_end());
  }
  sys.load_trace(0, t);
  sys.run();
  EXPECT_EQ(sys.core(0).committed_txs(), 3u);
  EXPECT_EQ(sys.metrics().committed_txs, 3u);
}

TEST(Core, NonMonotonicTraceTxIdAborts) {
  System sys(tiny(Mechanism::kOptimal));
  Trace t;
  t.push(MicroOp::tx_begin(5));  // offset start is fine (trace replay)
  t.push(MicroOp::tx_end());
  t.push(MicroOp::tx_begin(3));  // going backwards is a generator bug
  t.push(MicroOp::tx_end());
  sys.load_trace(0, t);
  EXPECT_DEATH(sys.run(), "increasing");
}

TEST(Core, SfenceWaitsForStoreBuffer) {
  SystemConfig cfg = tiny(Mechanism::kOptimal);
  System sys(cfg);
  Trace t;
  t.push(MicroOp::tx_begin(1));
  for (int i = 0; i < 8; ++i) {
    t.push(MicroOp::store(cfg.address_space.heap_base() + i * 2048, i, true));
  }
  t.push(MicroOp::tx_end());
  t.push(MicroOp::sfence());
  sys.load_trace(0, t);
  sys.run();
  EXPECT_GT(sys.stats().counter_value("core0.stall.sfence"), 0u);
}

TEST(Core, TcStoresLandInTheNtc) {
  SystemConfig cfg = tiny(Mechanism::kTc);
  System sys(cfg);
  Trace t;
  const Addr a = cfg.address_space.heap_base();
  t.push(MicroOp::tx_begin(1));
  t.push(MicroOp::store(a, 11, true));
  t.push(MicroOp::store(a + 64, 12, true));
  t.push(MicroOp::tx_end());
  sys.load_trace(0, t);
  sys.run();
  EXPECT_EQ(sys.stats().counter_value("ntc0.writes"), 2u);
  EXPECT_EQ(sys.stats().counter_value("ntc0.commits"), 1u);
  // Commit drained to NVM: values durable.
  EXPECT_EQ(sys.durable()->load(a), 11u);
  EXPECT_EQ(sys.durable()->load(a + 64), 12u);
}

TEST(Core, TcVolatileStoresBypassNtc) {
  SystemConfig cfg = tiny(Mechanism::kTc);
  System sys(cfg);
  Trace t;
  t.push(MicroOp::tx_begin(1));
  t.push(MicroOp::store(64, 1, false));  // DRAM store inside a tx
  t.push(MicroOp::tx_end());
  sys.load_trace(0, t);
  sys.run();
  EXPECT_EQ(sys.stats().counter_value("ntc0.writes"), 0u);
}

TEST(Core, KilnCommitRunsTheEngine) {
  SystemConfig cfg = tiny(Mechanism::kKiln);
  System sys(cfg);
  Trace t;
  const Addr a = cfg.address_space.heap_base();
  t.push(MicroOp::tx_begin(1));
  t.push(MicroOp::store(a, 42, true));
  t.push(MicroOp::tx_end());
  sys.load_trace(0, t);
  sys.run();
  EXPECT_EQ(sys.stats().counter_value("kiln.commits"), 1u);
  EXPECT_EQ(sys.durable()->load(a), 42u);  // durable at the NV-LLC
}

TEST(Core, KilnBackToBackCommitsSerialize) {
  SystemConfig cfg = tiny(Mechanism::kKiln);
  System sys(cfg);
  Trace t;
  const Addr a = cfg.address_space.heap_base();
  for (TxId i = 1; i <= 4; ++i) {
    t.push(MicroOp::tx_begin(i));
    t.push(MicroOp::store(a + i * 64, i, true));
    t.push(MicroOp::tx_end());
  }
  sys.load_trace(0, t);
  sys.run();
  // The second TX_END must wait for the first background flush: commits
  // are serialized per core.
  EXPECT_GT(sys.stats().counter_value("core0.stall.txend_flush"), 0u);
  EXPECT_EQ(sys.stats().counter_value("kiln.commits"), 4u);
}

TEST(Core, FinishedOnlyWhenEverythingDrains) {
  SystemConfig cfg = tiny(Mechanism::kTc);
  System sys(cfg);
  Trace t;
  t.push(MicroOp::tx_begin(1));
  t.push(MicroOp::store(cfg.address_space.heap_base(), 1, true));
  t.push(MicroOp::tx_end());
  sys.load_trace(0, t);
  sys.run_for(2);
  EXPECT_FALSE(sys.finished());
  sys.run();
  EXPECT_TRUE(sys.finished());
}

TEST(Core, ClwbPcommitSequenceCompletes) {
  SystemConfig cfg = tiny(Mechanism::kOptimal);
  System sys(cfg);
  Trace t;
  const Addr a = cfg.address_space.heap_base();
  t.push(MicroOp::tx_begin(1));
  t.push(MicroOp::store(a, 9, true));
  t.push(MicroOp::tx_end());
  // pcommit orders LOG flushes; data flushes drain lazily.
  t.push(MicroOp::clwb(a, FlushKind::kLog));
  t.push(MicroOp::sfence());
  t.push(MicroOp::pcommit());
  t.push(MicroOp::clwb(a, FlushKind::kData));  // lazy clean-back, no stall
  sys.load_trace(0, t);
  sys.run();
  EXPECT_EQ(sys.stats().counter_value("nvm.writes.log"), 1u);
  EXPECT_EQ(sys.durable()->load(a), 9u);
  EXPECT_GT(sys.stats().counter_value("core0.stall.pcommit"), 0u);
}

TEST(Core, NtStoresCoalesceIntoOneLineWrite) {
  SystemConfig cfg = tiny(Mechanism::kOptimal);
  System sys(cfg);
  Trace t;
  const Addr log = cfg.address_space.log_base(0);
  // Four words of one line, then one word of the next line: two flushes.
  for (int i = 0; i < 4; ++i) t.push(MicroOp::ntstore(log + i * 8, i));
  t.push(MicroOp::ntstore(log + 64, 99));
  t.push(MicroOp::sfence());
  sys.load_trace(0, t);
  sys.run();
  EXPECT_EQ(sys.stats().counter_value("nvm.writes.log"), 2u);
  // Payload carried all four words of the first line.
  EXPECT_EQ(sys.durable()->load(log), 0u);
  EXPECT_EQ(sys.durable()->load(log + 8), 1u);
  EXPECT_EQ(sys.durable()->load(log + 24), 3u);
  EXPECT_EQ(sys.durable()->load(log + 64), 99u);
}

TEST(Core, NtStoreBypassesCaches) {
  SystemConfig cfg = tiny(Mechanism::kOptimal);
  System sys(cfg);
  Trace t;
  const Addr log = cfg.address_space.log_base(0);
  t.push(MicroOp::ntstore(log, 1));
  t.push(MicroOp::sfence());
  sys.load_trace(0, t);
  sys.run();
  EXPECT_EQ(sys.stats().counter_value("l1.hits") +
                sys.stats().counter_value("l1.misses"),
            0u);
  EXPECT_EQ(sys.hierarchy().l1(0).peek(line_of(log)), nullptr);
}

TEST(Core, TrailingWcLineFlushesWithoutFence) {
  // No sfence after the last ntstore: the WC timeout flushes it so the run
  // still drains (regression test for a real deadlock).
  SystemConfig cfg = tiny(Mechanism::kOptimal);
  System sys(cfg);
  Trace t;
  t.push(MicroOp::ntstore(cfg.address_space.log_base(0), 42));
  sys.load_trace(0, t);
  sys.run(200000);
  EXPECT_TRUE(sys.finished());
  EXPECT_EQ(sys.durable()->load(cfg.address_space.log_base(0)), 42u);
}

TEST(Core, StoreBufferFullStallsRetirement) {
  SystemConfig cfg = tiny(Mechanism::kOptimal);
  cfg.core.store_buffer_entries = 2;
  System sys(cfg);
  Trace t;
  t.push(MicroOp::tx_begin(1));
  // Misses to distinct lines drain slowly; a 2-entry SB must stall.
  for (int i = 0; i < 12; ++i) {
    t.push(MicroOp::store(cfg.address_space.heap_base() + i * 4096, i, true));
  }
  t.push(MicroOp::tx_end());
  sys.load_trace(0, t);
  sys.run();
  EXPECT_GT(sys.stats().counter_value("core0.stall.sb_full"), 0u);
}

TEST(Core, RobFillsOnLongLatencyLoadButKeepsFetching) {
  SystemConfig cfg = tiny(Mechanism::kOptimal);
  cfg.core.rob_entries = 8;
  System sys(cfg);
  Trace t;
  t.push(MicroOp::load(cfg.address_space.heap_base(), true));
  for (int i = 0; i < 64; ++i) t.push(MicroOp::compute());
  sys.load_trace(0, t);
  sys.run();
  // All 65 ops retired despite the 8-entry window.
  EXPECT_EQ(sys.metrics().retired_uops, 65u);
}

TEST(Core, SpAdrSkipsPcommitStalls) {
  // The same workload under SP and SP-ADR: ADR must never stall on
  // pcommit (none are emitted) and must finish faster.
  auto run_mech = [](Mechanism mech) {
    SystemConfig cfg = tiny(mech);
    workload::WorkloadParams p =
        workload::default_params(WorkloadKind::kSps);
    p.setup_elems = 500;
    p.ops = 200;
    p.compute_per_op = 16;
    workload::SimHeap heap(cfg.address_space, 1);
    System sys(cfg);
    sys.load_trace(0, workload::generate(p, 0, heap, nullptr));
    sys.run();
    return std::pair<Cycle, std::uint64_t>(
        sys.now(), sys.stats().counter_value("core0.stall.pcommit"));
  };
  const auto [sp_cycles, sp_pcommit] = run_mech(Mechanism::kSp);
  const auto [adr_cycles, adr_pcommit] = run_mech(Mechanism::kSpAdr);
  EXPECT_GT(sp_pcommit, 0u);
  EXPECT_EQ(adr_pcommit, 0u);
  EXPECT_LT(adr_cycles, sp_cycles);
}

}  // namespace
}  // namespace ntcsim::core
