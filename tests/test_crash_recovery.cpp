// Crash-injection property tests: interrupt a run at many points, run the
// mechanism's recovery procedure over what is durable, and check the
// atomicity contract against the oracle journal. TC/SP/Kiln must be
// consistent at EVERY crash point; Optimal (no persistence support) and the
// unordered SP variant of Fig. 2(c) are the negative controls.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>

#include "recovery/recovery.hpp"
#include "sim/system.hpp"
#include "workload/workloads.hpp"

namespace ntcsim::sim {
namespace {

SystemConfig crash_cfg(Mechanism mech) {
  // Single core with very small caches so evictions (the crash hazard for
  // software schemes) happen constantly.
  SystemConfig c = SystemConfig::tiny();
  c.mechanism = mech;
  c.ntc.size_bytes = 1 << 10;  // 16 entries: overflow path gets exercised too
  return c;
}

struct CrashRun {
  recovery::Journal journal{1};
  std::unique_ptr<System> sys;
  std::size_t violations = 0;
  std::size_t checks = 0;
  bool expect_consistent = true;  ///< Report violations as test failures.
};

CrashRun make_run(Mechanism mech, WorkloadKind wl, std::uint64_t seed,
                  bool sp_ordered = true) {
  CrashRun run;
  SystemConfig cfg = crash_cfg(mech);
  workload::SimHeap heap(cfg.address_space, cfg.cores);
  workload::WorkloadParams p = workload::default_params(wl);
  // Footprint must exceed the tiny 4 KB LLC so dirty evictions — the crash
  // hazard software schemes must survive — actually happen.
  p.setup_elems = wl == WorkloadKind::kSps ? 2000 : 300;
  p.ops = 200;
  p.seed = seed;
  SystemOptions opts;
  opts.sp_ordered = sp_ordered;
  run.sys = std::make_unique<System>(cfg, opts);
  run.sys->load_trace(0, workload::generate(p, 0, heap, &run.journal));
  return run;
}

/// Crash every `interval` cycles and check atomicity; returns the run with
/// the violation count filled in.
void crash_sweep(CrashRun& run, Cycle interval) {
  while (!run.sys->run_for(interval)) {
    const recovery::WordImage img = run.sys->crash_and_recover();
    const auto report = recovery::check_atomicity(img, run.journal);
    ++run.checks;
    if (!report.consistent) {
      ++run.violations;
      if (run.expect_consistent) {
        ADD_FAILURE() << "crash at cycle " << run.sys->now() << ": "
                      << report.violation;
      }
    }
  }
  // Also check the final (fully drained) state.
  const auto report =
      recovery::check_atomicity(run.sys->crash_and_recover(), run.journal);
  ++run.checks;
  if (!report.consistent) ++run.violations;
}

using Case = std::tuple<Mechanism, WorkloadKind>;

class CrashConsistency : public ::testing::TestWithParam<Case> {};

TEST_P(CrashConsistency, AtomicAtEveryCrashPoint) {
  const auto [mech, wl] = GetParam();
  for (std::uint64_t seed : {1ULL, 2ULL}) {
    CrashRun run = make_run(mech, wl, seed);
    crash_sweep(run, 1500);
    EXPECT_GT(run.checks, 5u) << "sweep too short to be meaningful";
    EXPECT_EQ(run.violations, 0u)
        << to_string(mech) << "/" << to_string(wl) << " seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Mechanisms, CrashConsistency,
    ::testing::Combine(::testing::Values(Mechanism::kTc, Mechanism::kSp,
                                         Mechanism::kKiln, Mechanism::kSpAdr),
                       ::testing::Values(WorkloadKind::kSps,
                                         WorkloadKind::kHashtable,
                                         WorkloadKind::kRbtree,
                                         WorkloadKind::kBtree,
                                         WorkloadKind::kGraph,
                                         WorkloadKind::kQueue,
                                         WorkloadKind::kSkiplist)),
    [](const auto& info) {
      std::string name = std::string(to_string(std::get<0>(info.param))) +
                         "_" +
                         std::string(to_string(std::get<1>(info.param)));
      name.erase(std::remove(name.begin(), name.end(), '-'), name.end());
      return name;
    });

TEST(CrashNegativeControl, OptimalLosesAtomicity) {
  // Without persistence support, some crash point must expose a partially
  // durable transaction (Fig. 2a): that is the paper's motivation.
  std::size_t total_violations = 0;
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    CrashRun run = make_run(Mechanism::kOptimal, WorkloadKind::kSps, seed);
    run.expect_consistent = false;
    crash_sweep(run, 1500);
    total_violations += run.violations;
  }
  EXPECT_GT(total_violations, 0u)
      << "native execution accidentally looked crash-consistent; the "
         "negative control lost its teeth";
}

TEST(CrashNegativeControl, UnorderedSpLosesAtomicity) {
  // Fig. 2(c): logging without write-order control is unrecoverable.
  std::size_t total_violations = 0;
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    CrashRun run = make_run(Mechanism::kSp, WorkloadKind::kSps, seed,
                            /*sp_ordered=*/false);
    run.expect_consistent = false;
    crash_sweep(run, 1500);
    total_violations += run.violations;
  }
  EXPECT_GT(total_violations, 0u);
}

class TcCapacityCrash : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TcCapacityCrash, ConsistencyHoldsAtEveryCapacity) {
  // The overflow fall-back (hardware copy-on-write) must be as crash-safe
  // as the ring itself: sweep NTC sizes from pathological to paper-default.
  CrashRun run;
  SystemConfig cfg = crash_cfg(Mechanism::kTc);
  cfg.ntc.size_bytes = GetParam();
  workload::SimHeap heap(cfg.address_space, cfg.cores);
  workload::WorkloadParams p = workload::default_params(WorkloadKind::kSps);
  p.setup_elems = 2000;
  p.ops = 150;
  p.seed = 5;
  run.sys = std::make_unique<System>(cfg);
  run.sys->load_trace(0, workload::generate(p, 0, heap, &run.journal));
  crash_sweep(run, 2000);
  EXPECT_EQ(run.violations, 0u)
      << "NTC size " << GetParam() << " B broke crash atomicity";
}

INSTANTIATE_TEST_SUITE_P(NtcSizes, TcCapacityCrash,
                         ::testing::Values(256, 512, 1024, 4096),
                         [](const auto& info) {
                           return std::to_string(info.param) + "B";
                         });

TEST(CrashRecovery, TcFinalStateEqualsFullReplay) {
  CrashRun run = make_run(Mechanism::kTc, WorkloadKind::kSps, 9);
  run.sys->run();
  const recovery::WordImage img = run.sys->crash_and_recover();
  const auto report = recovery::check_atomicity(img, run.journal);
  ASSERT_TRUE(report.consistent) << report.violation;
  // After a drained run, EVERY transaction is durable.
  EXPECT_EQ(report.durable_tx_prefix[0], run.journal.per_core(0).size());
}

TEST(CrashRecovery, SpFinalStateEqualsFullReplay) {
  CrashRun run = make_run(Mechanism::kSp, WorkloadKind::kHashtable, 9);
  run.sys->run();
  const auto report =
      recovery::check_atomicity(run.sys->crash_and_recover(), run.journal);
  ASSERT_TRUE(report.consistent) << report.violation;
  EXPECT_EQ(report.durable_tx_prefix[0], run.journal.per_core(0).size());
}

TEST(CrashRecovery, KilnFinalStateEqualsFullReplay) {
  CrashRun run = make_run(Mechanism::kKiln, WorkloadKind::kRbtree, 9);
  run.sys->run();
  const auto report =
      recovery::check_atomicity(run.sys->crash_and_recover(), run.journal);
  ASSERT_TRUE(report.consistent) << report.violation;
  EXPECT_EQ(report.durable_tx_prefix[0], run.journal.per_core(0).size());
}

TEST(CrashRecovery, MultiCoreTcConsistency) {
  SystemConfig cfg = crash_cfg(Mechanism::kTc);
  cfg.cores = 2;
  recovery::Journal journal(2);
  workload::SimHeap heap(cfg.address_space, cfg.cores);
  workload::WorkloadParams p = workload::default_params(WorkloadKind::kSps);
  p.setup_elems = 120;
  p.ops = 150;
  System sys(cfg);
  for (CoreId c = 0; c < 2; ++c) {
    sys.load_trace(c, workload::generate(p, c, heap, &journal));
  }
  std::size_t violations = 0;
  while (!sys.run_for(2000)) {
    if (!recovery::check_atomicity(sys.crash_and_recover(), journal)
             .consistent) {
      ++violations;
    }
  }
  EXPECT_EQ(violations, 0u);
}

}  // namespace
}  // namespace ntcsim::sim
