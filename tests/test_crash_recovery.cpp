// Crash-injection property tests: TC/SP/Kiln must be atomically consistent
// at EVERY crash point; Optimal (no persistence support) and the unordered
// SP variant of Fig. 2(c) are the negative controls. These suites are thin
// wrappers over the fault-injection campaign engine (src/faultsim/), which
// plans hazard-guided crash points per cell instead of blind cycle
// stepping; the engine itself is unit-tested in test_faultsim.cpp.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>

#include "faultsim/campaign.hpp"
#include "recovery/recovery.hpp"
#include "sim/system.hpp"
#include "workload/workloads.hpp"

namespace ntcsim::sim {
namespace {

using faultsim::CellResult;
using faultsim::CellSpec;
using faultsim::CellStatus;

SystemConfig crash_cfg(Mechanism mech) {
  // Single core with very small caches so evictions (the crash hazard for
  // software schemes) happen constantly. The campaign multiplies
  // crash.setup by 7 for sps, so the structure footprint exceeds the tiny
  // 4 KB LLC and dirty evictions actually happen.
  SystemConfig c = SystemConfig::tiny();
  c.mechanism = mech;
  c.ntc.size_bytes = 1 << 10;  // 16 entries: overflow path gets exercised too
  c.crash.points = 16;
  c.crash.ops = 150;
  c.crash.setup = 300;
  return c;
}

CellResult run_one(const SystemConfig& cfg, Mechanism mech, WorkloadKind wl,
                   std::uint64_t seed, bool sp_ordered = true,
                   bool expect_consistent = true) {
  CellSpec spec;
  spec.mech = mech;
  spec.wl = wl;
  spec.seed = seed;
  spec.sp_ordered = sp_ordered;
  spec.expect_consistent = expect_consistent;
  spec.variant = std::string(to_string(mech));
  return faultsim::run_cell(cfg, spec, {});
}

using Case = std::tuple<Mechanism, WorkloadKind>;

class CrashConsistency : public ::testing::TestWithParam<Case> {};

TEST_P(CrashConsistency, AtomicAtEveryCrashPoint) {
  const auto [mech, wl] = GetParam();
  const SystemConfig cfg = crash_cfg(mech);
  for (std::uint64_t seed : {1ULL, 2ULL}) {
    const CellResult r = run_one(cfg, mech, wl, seed);
    EXPECT_GT(r.checks, 5u) << "sweep too short to be meaningful";
    EXPECT_EQ(r.status, CellStatus::kPass)
        << to_string(mech) << "/" << to_string(wl) << " seed " << seed
        << ": " << r.violations << " violations, first at cycle "
        << r.first_violation_cycle << ": " << r.first_violation;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Mechanisms, CrashConsistency,
    ::testing::Combine(::testing::Values(Mechanism::kTc, Mechanism::kSp,
                                         Mechanism::kKiln, Mechanism::kSpAdr),
                       ::testing::Values(WorkloadKind::kSps,
                                         WorkloadKind::kHashtable,
                                         WorkloadKind::kRbtree,
                                         WorkloadKind::kBtree,
                                         WorkloadKind::kGraph,
                                         WorkloadKind::kQueue,
                                         WorkloadKind::kSkiplist)),
    [](const auto& info) {
      std::string name = std::string(to_string(std::get<0>(info.param))) +
                         "_" +
                         std::string(to_string(std::get<1>(info.param)));
      name.erase(std::remove(name.begin(), name.end(), '-'), name.end());
      return name;
    });

TEST(CrashNegativeControl, OptimalLosesAtomicity) {
  // Without persistence support, some crash point must expose a partially
  // durable transaction (Fig. 2a): that is the paper's motivation.
  const SystemConfig cfg = crash_cfg(Mechanism::kOptimal);
  std::size_t total_violations = 0;
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    const CellResult r = run_one(cfg, Mechanism::kOptimal, WorkloadKind::kSps,
                                 seed, /*sp_ordered=*/true,
                                 /*expect_consistent=*/false);
    EXPECT_NE(r.status, CellStatus::kFail);
    total_violations += r.violations;
  }
  EXPECT_GT(total_violations, 0u)
      << "native execution accidentally looked crash-consistent; the "
         "negative control lost its teeth";
}

TEST(CrashNegativeControl, UnorderedSpLosesAtomicity) {
  // Fig. 2(c): logging without write-order control is unrecoverable.
  const SystemConfig cfg = crash_cfg(Mechanism::kSp);
  std::size_t total_violations = 0;
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    const CellResult r =
        run_one(cfg, Mechanism::kSp, WorkloadKind::kSps, seed,
                /*sp_ordered=*/false, /*expect_consistent=*/false);
    EXPECT_NE(r.status, CellStatus::kFail);
    total_violations += r.violations;
  }
  EXPECT_GT(total_violations, 0u);
}

class TcCapacityCrash : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TcCapacityCrash, ConsistencyHoldsAtEveryCapacity) {
  // The overflow fall-back (hardware copy-on-write) must be as crash-safe
  // as the ring itself: sweep NTC sizes from pathological to paper-default.
  SystemConfig cfg = crash_cfg(Mechanism::kTc);
  cfg.ntc.size_bytes = GetParam();
  const CellResult r = run_one(cfg, Mechanism::kTc, WorkloadKind::kSps, 5);
  EXPECT_EQ(r.status, CellStatus::kPass)
      << "NTC size " << GetParam() << " B broke crash atomicity: "
      << r.first_violation;
  EXPECT_GT(r.checks, 5u);
}

INSTANTIATE_TEST_SUITE_P(NtcSizes, TcCapacityCrash,
                         ::testing::Values(256, 512, 1024, 4096),
                         [](const auto& info) {
                           return std::to_string(info.param) + "B";
                         });

// The drained-final-state checks keep driving System directly: they assert
// the durable transaction *prefix* covers the whole journal, which is a
// stronger property than the campaign's consistency verdict.

struct CrashRun {
  recovery::Journal journal{1};
  std::unique_ptr<System> sys;
};

CrashRun make_run(Mechanism mech, WorkloadKind wl, std::uint64_t seed) {
  CrashRun run;
  SystemConfig cfg = crash_cfg(mech);
  workload::SimHeap heap(cfg.address_space, cfg.cores);
  workload::WorkloadParams p = workload::default_params(wl);
  p.setup_elems = wl == WorkloadKind::kSps ? 2000 : 300;
  p.ops = 200;
  p.seed = seed;
  run.sys = std::make_unique<System>(cfg);
  run.sys->load_trace(0, workload::generate(p, 0, heap, &run.journal));
  return run;
}

TEST(CrashRecovery, TcFinalStateEqualsFullReplay) {
  CrashRun run = make_run(Mechanism::kTc, WorkloadKind::kSps, 9);
  run.sys->run();
  const recovery::WordImage img = run.sys->crash_and_recover();
  const auto report = recovery::check_atomicity(img, run.journal);
  ASSERT_TRUE(report.consistent) << report.violation;
  // After a drained run, EVERY transaction is durable.
  EXPECT_EQ(report.durable_tx_prefix[0], run.journal.per_core(0).size());
}

TEST(CrashRecovery, SpFinalStateEqualsFullReplay) {
  CrashRun run = make_run(Mechanism::kSp, WorkloadKind::kHashtable, 9);
  run.sys->run();
  const auto report =
      recovery::check_atomicity(run.sys->crash_and_recover(), run.journal);
  ASSERT_TRUE(report.consistent) << report.violation;
  EXPECT_EQ(report.durable_tx_prefix[0], run.journal.per_core(0).size());
}

TEST(CrashRecovery, KilnFinalStateEqualsFullReplay) {
  CrashRun run = make_run(Mechanism::kKiln, WorkloadKind::kRbtree, 9);
  run.sys->run();
  const auto report =
      recovery::check_atomicity(run.sys->crash_and_recover(), run.journal);
  ASSERT_TRUE(report.consistent) << report.violation;
  EXPECT_EQ(report.durable_tx_prefix[0], run.journal.per_core(0).size());
}

TEST(CrashRecovery, MultiCoreTcConsistency) {
  // The campaign generates one trace per configured core, so a two-core
  // cell exercises cross-core NTC draining under hazard-guided crashes.
  SystemConfig cfg = crash_cfg(Mechanism::kTc);
  cfg.cores = 2;
  cfg.crash.setup = 18;  // ~120 sps elements, split across two cores
  const CellResult r = run_one(cfg, Mechanism::kTc, WorkloadKind::kSps, 1);
  EXPECT_EQ(r.status, CellStatus::kPass) << r.first_violation;
  EXPECT_GT(r.checks, 5u);
}

}  // namespace
}  // namespace ntcsim::sim
