// Bit-exact determinism: the same configuration and seed must produce the
// same cycle counts, traffic, and durable state on every run — the
// property every regression comparison and the trace-replay workflow rely
// on.
#include <gtest/gtest.h>

#include <sstream>

#include "core/trace_io.hpp"
#include "sim/system.hpp"
#include "workload/workloads.hpp"

namespace ntcsim::sim {
namespace {

Metrics run_once(Mechanism mech) {
  SystemConfig cfg = SystemConfig::tiny();
  cfg.mechanism = mech;
  workload::WorkloadParams p = workload::default_params(WorkloadKind::kBtree);
  p.setup_elems = 400;
  p.ops = 150;
  p.seed = 17;
  p.compute_per_op = 24;
  workload::SimHeap heap(cfg.address_space, 1);
  System sys(cfg);
  sys.load_trace(0, workload::generate(p, 0, heap, nullptr));
  sys.run();
  return sys.metrics();
}

class Determinism : public ::testing::TestWithParam<Mechanism> {};

TEST_P(Determinism, RepeatedRunsAreBitExact) {
  const Metrics a = run_once(GetParam());
  const Metrics b = run_once(GetParam());
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.retired_uops, b.retired_uops);
  EXPECT_EQ(a.committed_txs, b.committed_txs);
  EXPECT_EQ(a.nvm_writes, b.nvm_writes);
  EXPECT_EQ(a.nvm_reads, b.nvm_reads);
  EXPECT_DOUBLE_EQ(a.llc_miss_rate, b.llc_miss_rate);
  EXPECT_DOUBLE_EQ(a.pload_latency, b.pload_latency);
}

INSTANTIATE_TEST_SUITE_P(Mechanisms, Determinism,
                         ::testing::Values(Mechanism::kOptimal, Mechanism::kTc,
                                           Mechanism::kSp, Mechanism::kKiln,
                                           Mechanism::kSpAdr),
                         [](const auto& info) {
                           std::string n(to_string(info.param));
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

TEST(Determinism, ReplayedTraceMatchesLiveTrace) {
  SystemConfig cfg = SystemConfig::tiny();
  cfg.mechanism = Mechanism::kTc;
  workload::WorkloadParams p = workload::default_params(WorkloadKind::kSps);
  p.setup_elems = 500;
  p.ops = 120;
  p.compute_per_op = 16;

  workload::SimHeap heap(cfg.address_space, 1);
  core::Trace live = workload::generate(p, 0, heap, nullptr);

  // Serialize and reload through the binary format.
  std::stringstream ss;
  ASSERT_TRUE(core::write_trace(ss, live).ok);
  core::Trace replayed;
  ASSERT_TRUE(core::read_trace(ss, replayed).ok);

  System a(cfg);
  a.load_trace(0, std::move(live));
  a.run();
  System b(cfg);
  b.load_trace(0, std::move(replayed));
  b.run();

  EXPECT_EQ(a.metrics().cycles, b.metrics().cycles);
  EXPECT_EQ(a.metrics().nvm_writes, b.metrics().nvm_writes);
  EXPECT_EQ(a.stats().counter_value("llc.misses"),
            b.stats().counter_value("llc.misses"));
}

}  // namespace
}  // namespace ntcsim::sim
