#include "workload/emitter.hpp"

#include <gtest/gtest.h>

namespace ntcsim::workload {
namespace {

using core::OpKind;

class EmitterTest : public ::testing::Test {
 protected:
  AddressSpace space_;
  recovery::Journal journal_{1};
  TraceEmitter em_{0, space_, &journal_};
  Addr p_ = space_.heap_base();
};

TEST_F(EmitterTest, TxBracketsAndIds) {
  em_.begin_tx();
  EXPECT_EQ(em_.current_tx(), 1u);
  em_.store(p_, 5);
  em_.end_tx();
  em_.begin_tx();
  EXPECT_EQ(em_.current_tx(), 2u);
  em_.end_tx();

  const core::Trace t = em_.take_combined();
  ASSERT_EQ(t.size(), 5u);
  EXPECT_EQ(t[0].kind, OpKind::kTxBegin);
  EXPECT_EQ(t[0].value, 1u);
  EXPECT_EQ(t[1].kind, OpKind::kStore);
  EXPECT_TRUE(t[1].persistent);
  EXPECT_EQ(t[2].kind, OpKind::kTxEnd);
  EXPECT_EQ(t[3].value, 2u);
}

TEST_F(EmitterTest, JournalMirrorsPersistentStores) {
  em_.begin_tx();
  em_.store(p_ + 8, 42);
  em_.end_tx();
  ASSERT_EQ(journal_.per_core(0).size(), 1u);
  EXPECT_EQ(journal_.per_core(0)[0].writes[0],
            (std::pair<Addr, Word>{p_ + 8, 42}));
}

TEST_F(EmitterTest, VolatileStoresNotJournaled) {
  em_.begin_tx();
  em_.store(64, 1);  // DRAM address, legal outside/inside tx
  em_.end_tx();
  EXPECT_TRUE(journal_.per_core(0)[0].writes.empty());
  const core::Trace t = em_.take_combined();
  EXPECT_FALSE(t[1].persistent);
}

TEST_F(EmitterTest, PersistentStoreOutsideTxAborts) {
  EXPECT_DEATH(em_.store(p_, 1), "outside a transaction");
}

TEST_F(EmitterTest, LoadsCarryPersistenceFlag) {
  em_.load(p_);
  em_.load(128);
  const core::Trace t = em_.take_combined();
  EXPECT_TRUE(t[0].persistent);
  EXPECT_FALSE(t[1].persistent);
}

TEST_F(EmitterTest, ComputeEmitsN) {
  em_.compute(3);
  EXPECT_EQ(em_.trace().count(OpKind::kCompute), 3u);
}

}  // namespace
}  // namespace ntcsim::workload
