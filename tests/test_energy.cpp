#include "sim/energy.hpp"

#include <gtest/gtest.h>

namespace ntcsim::sim {
namespace {

StatSet sample_stats() {
  StatSet s;
  s.counter("l1.hits").inc(1000);
  s.counter("l1.misses").inc(100);
  s.counter("l2.hits").inc(60);
  s.counter("l2.misses").inc(40);
  s.counter("llc.hits").inc(30);
  s.counter("llc.misses").inc(10);
  s.counter("llc.writebacks").inc(5);
  s.counter("nvm.reads").inc(10);
  s.counter("nvm.writes").inc(20);
  s.counter("dram.reads").inc(4);
  s.counter("dram.writes").inc(2);
  s.counter("dram.refreshes").inc(3);
  s.counter("ntc0.writes").inc(50);
  s.counter("ntc0.issued").inc(50);
  s.counter("ntc0.acks").inc(50);
  return s;
}

TEST(Energy, BreakdownSumsToTotal) {
  const StatSet s = sample_stats();
  const EnergyBreakdown e = estimate_energy(s, 1, false, 10);
  EXPECT_GT(e.total_nj, 0.0);
  EXPECT_DOUBLE_EQ(e.total_nj, e.l1_nj + e.l2_nj + e.llc_nj + e.ntc_nj +
                                   e.dram_nj + e.nvm_nj);
  EXPECT_DOUBLE_EQ(e.per_tx_nj, e.total_nj / 10.0);
}

TEST(Energy, NvmWritesDominateWithDefaultParams) {
  StatSet s;
  s.counter("nvm.reads").inc(100);
  s.counter("nvm.writes").inc(100);
  const EnergyBreakdown e = estimate_energy(s, 1, false, 1);
  // STT-RAM write energy >> read energy.
  EXPECT_GT(e.nvm_nj, 100 * 30.0);
}

TEST(Energy, KilnLlcUsesSttramEnergies) {
  StatSet s;
  s.counter("llc.hits").inc(100);
  s.counter("llc.writebacks").inc(100);
  const EnergyBreakdown sram = estimate_energy(s, 1, false, 1);
  const EnergyBreakdown sttram = estimate_energy(s, 1, true, 1);
  EXPECT_NE(sram.llc_nj, sttram.llc_nj);
  // STT-RAM writes cost more than SRAM accesses with the defaults.
  EXPECT_GT(sttram.llc_nj, sram.llc_nj);
}

TEST(Energy, NtcEventsCountedAcrossCores) {
  StatSet s;
  s.counter("ntc0.writes").inc(10);
  s.counter("ntc1.writes").inc(10);
  const EnergyBreakdown one = estimate_energy(s, 1, false, 1);
  const EnergyBreakdown two = estimate_energy(s, 2, false, 1);
  EXPECT_DOUBLE_EQ(two.ntc_nj, 2 * one.ntc_nj);
}

TEST(Energy, ZeroTxsMeansZeroPerTx) {
  const EnergyBreakdown e = estimate_energy(sample_stats(), 1, false, 0);
  EXPECT_DOUBLE_EQ(e.per_tx_nj, 0.0);
}

TEST(Energy, CustomParamsRespected) {
  StatSet s;
  s.counter("nvm.writes").inc(1);
  EnergyParams p;
  p.nvm_line_write = 100.0;
  const EnergyBreakdown e = estimate_energy(s, 1, false, 1, p);
  EXPECT_DOUBLE_EQ(e.nvm_nj, 100.0);
}

}  // namespace
}  // namespace ntcsim::sim
