#include "common/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ntcsim {
namespace {

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(10, [&] { order.push_back(10); });
  q.schedule_at(5, [&] { order.push_back(5); });
  q.schedule_at(7, [&] { order.push_back(7); });
  q.drain_until(20);
  EXPECT_EQ(order, (std::vector<int>{5, 7, 10}));
}

TEST(EventQueue, SameCycleFiresInSchedulingOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    q.schedule_at(3, [&order, i] { order.push_back(i); });
  }
  q.drain_until(3);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, DrainStopsAtNow) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(5, [&] { ++fired; });
  q.schedule_at(6, [&] { ++fired; });
  q.drain_until(5);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.next_cycle(), 6u);
  q.drain_until(6);
  EXPECT_EQ(fired, 2);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CallbackMayScheduleForSameCycle) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(4, [&] {
    ++fired;
    q.schedule_at(4, [&] { ++fired; });
  });
  q.drain_until(4);
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, CallbackChainAcrossCycles) {
  EventQueue q;
  std::vector<Cycle> fire_times;
  std::function<void(Cycle)> chain = [&](Cycle at) {
    fire_times.push_back(at);
    if (at < 5) {
      q.schedule_at(at + 1, [&chain, at] { chain(at + 1); });
    }
  };
  q.schedule_at(1, [&] { chain(1); });
  for (Cycle c = 0; c <= 10; ++c) q.drain_until(c);
  EXPECT_EQ(fire_times, (std::vector<Cycle>{1, 2, 3, 4, 5}));
}

TEST(EventQueue, ClearEmptiesQueue) {
  EventQueue q;
  q.schedule_at(1, [] {});
  q.schedule_at(2, [] {});
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, ZeroCycleEvent) {
  EventQueue q;
  bool fired = false;
  q.schedule_at(0, [&] { fired = true; });
  q.drain_until(0);
  EXPECT_TRUE(fired);
}

}  // namespace
}  // namespace ntcsim
