#include "sim/experiment.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace ntcsim::sim {
namespace {

Metrics with(double ipc) {
  Metrics m;
  m.ipc = ipc;
  m.tx_per_kilocycle = ipc * 10;
  return m;
}

Matrix tiny_matrix() {
  Matrix m;
  for (WorkloadKind wl : {WorkloadKind::kSps, WorkloadKind::kRbtree}) {
    m[wl][Mechanism::kOptimal] = with(4.0);
    m[wl][Mechanism::kTc] = with(3.9);
    m[wl][Mechanism::kKiln] = with(3.5);
    m[wl][Mechanism::kSp] = with(1.2);
  }
  return m;
}

TEST(PrintFigure, NormalizesToOptimal) {
  std::ostringstream oss;
  print_figure(oss, "Figure X", tiny_matrix(),
               [](const Metrics& m) { return m.ipc; }, "caption");
  const std::string out = oss.str();
  EXPECT_NE(out.find("Figure X"), std::string::npos);
  EXPECT_NE(out.find("0.975"), std::string::npos);  // 3.9 / 4.0
  EXPECT_NE(out.find("0.300"), std::string::npos);  // 1.2 / 4.0
  EXPECT_NE(out.find("1.000"), std::string::npos);  // Optimal column
  EXPECT_NE(out.find("gmean"), std::string::npos);
}

TEST(PrintFigure, GmeanRowIsGeometric) {
  Matrix m = tiny_matrix();
  // Make the two workloads differ so gmean != arithmetic mean.
  m[WorkloadKind::kSps][Mechanism::kSp] = with(4.0);     // 1.0 normalized
  m[WorkloadKind::kRbtree][Mechanism::kSp] = with(1.0);  // 0.25 normalized
  std::ostringstream oss;
  print_figure(oss, "F", m, [](const Metrics& x) { return x.ipc; }, "c");
  // gmean(1.0, 0.25) = 0.5; arithmetic would be 0.625.
  EXPECT_NE(oss.str().find("0.500"), std::string::npos);
}

TEST(PrintFigure, ZeroBaselineDoesNotDivide) {
  Matrix m = tiny_matrix();
  m[WorkloadKind::kSps][Mechanism::kOptimal] = with(0.0);
  std::ostringstream oss;
  print_figure(oss, "F", m, [](const Metrics& x) { return x.ipc; }, "c");
  EXPECT_NE(oss.str().find("0.000"), std::string::npos);
}

TEST(ParseBenchArgs, ScaleFromArgvAndEnv) {
  char prog[] = "bench";
  char scale[] = "0.5";
  char* argv1[] = {prog, scale};
  EXPECT_DOUBLE_EQ(parse_bench_args(2, argv1).scale, 0.5);
  char* argv0[] = {prog};
  EXPECT_DOUBLE_EQ(parse_bench_args(1, argv0).scale, 1.0);
  char bad[] = "-3";
  char* argv2[] = {prog, bad};
  EXPECT_DOUBLE_EQ(parse_bench_args(2, argv2).scale, 1.0);  // ignored
}

TEST(GeometricMeanEdge, RejectsNonPositive) {
  EXPECT_DEATH(geometric_mean({1.0, 0.0}), "positive");
}

}  // namespace
}  // namespace ntcsim::sim
