// Fault-injection campaign engine (src/faultsim/): crash-point selection
// unit tests, plan + verdict determinism across --jobs, negative-control
// accounting, and minimizer convergence on a known-bad mutation domain.
#include "faultsim/campaign.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "faultsim/planner.hpp"
#include "mutation_domains.hpp"
#include "persist/domain.hpp"
#include "workload/sim_heap.hpp"
#include "workload/workloads.hpp"

namespace ntcsim::faultsim {
namespace {

SystemConfig campaign_cfg() {
  SystemConfig cfg = SystemConfig::tiny();
  // Keep campaign cells cheap; the CLI defaults are larger.
  cfg.crash.points = 8;
  cfg.crash.ops = 60;
  cfg.crash.setup = 150;
  cfg.crash.seeds = 2;
  return cfg;
}

// ---------------------------------------------------------------------------
// Crash-point selection.

TEST(SelectCrashPoints, DedupsAndOffsetsPastTheHazard) {
  const std::vector<Cycle> hazards{10, 10, 11, 40, 40, 40, 99};
  const std::vector<Cycle> pts = select_crash_points(hazards, 0);
  EXPECT_EQ(pts, (std::vector<Cycle>{11, 12, 41, 100}));
}

TEST(SelectCrashPoints, SubsamplingKeepsFirstAndLast) {
  std::vector<Cycle> hazards;
  for (Cycle c = 0; c < 1000; ++c) hazards.push_back(c * 7);
  const std::vector<Cycle> pts = select_crash_points(hazards, 16);
  ASSERT_EQ(pts.size(), 16u);
  EXPECT_EQ(pts.front(), 1u);           // first hazard + 1
  EXPECT_EQ(pts.back(), 999u * 7 + 1);  // last hazard + 1
  for (std::size_t i = 1; i < pts.size(); ++i) EXPECT_LT(pts[i - 1], pts[i]);
}

TEST(SelectCrashPoints, BudgetOfOneAndEmptyInput) {
  EXPECT_TRUE(select_crash_points({}, 8).empty());
  EXPECT_EQ(select_crash_points({5, 6, 7}, 1), (std::vector<Cycle>{6}));
}

// ---------------------------------------------------------------------------
// Plan determinism: same config + traces => identical plans.

TEST(CrashPlanner, PlansAreReproducible) {
  SystemConfig cfg = campaign_cfg();
  cfg.mechanism = Mechanism::kTc;
  recovery::Journal journal(1);
  workload::SimHeap heap(cfg.address_space, cfg.cores);
  workload::WorkloadParams p = workload::default_params(WorkloadKind::kSps);
  p.setup_elems = 800;
  p.ops = 60;
  const std::vector<core::Trace> traces{
      workload::generate(p, 0, heap, &journal)};

  const CrashPlan a = plan_cell(cfg, {}, traces, 0);
  const CrashPlan b = plan_cell(cfg, {}, traces, 0);
  EXPECT_GT(a.hazard_events, 0u);
  EXPECT_EQ(a.points, b.points);
  EXPECT_EQ(a.end_cycle, b.end_cycle);
  EXPECT_EQ(a.hazard_events, b.hazard_events);
}

TEST(CrashPlanner, HazardMasksFollowTheDomainProfiles) {
  const persist::DomainRegistry& reg = persist::DomainRegistry::instance();
  // Every expected-consistent mechanism declares hazards beyond the
  // Optimal default, and Optimal is the designated negative control.
  for (const Mechanism m : reg.matrix_mechanisms()) {
    const persist::CrashProfile prof = reg.create(m)->crash_profile();
    EXPECT_NE(prof.hazard_mask, 0u) << reg.info(m).name;
    if (reg.info(m).name == "optimal") {
      EXPECT_FALSE(prof.expect_consistent);
    } else {
      EXPECT_TRUE(prof.expect_consistent) << reg.info(m).name;
    }
  }
}

// ---------------------------------------------------------------------------
// Campaign determinism across worker counts, and the acceptance criterion:
// all real mechanisms pass, the negative controls fail as expected.

TEST(Campaign, VerdictsAreIdenticalAtJobs1AndJobs4) {
  const SystemConfig cfg = campaign_cfg();
  const std::vector<CellSpec> cells =
      make_cells(default_variants(), {WorkloadKind::kSps}, {1, 2});

  CampaignOptions o1;
  o1.jobs = 1;
  CampaignOptions o4;
  o4.jobs = 4;
  const CampaignReport r1 = run_campaign(cfg, cells, o1);
  const CampaignReport r4 = run_campaign(cfg, cells, o4);

  ASSERT_EQ(r1.cells.size(), cells.size());
  ASSERT_EQ(r4.cells.size(), cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(r1.cells[i].status, r4.cells[i].status) << i;
    EXPECT_EQ(r1.cells[i].violations, r4.cells[i].violations) << i;
    EXPECT_EQ(r1.cells[i].crash_points, r4.cells[i].crash_points) << i;
    EXPECT_EQ(r1.cells[i].hazard_events, r4.cells[i].hazard_events) << i;
    EXPECT_EQ(r1.cells[i].first_violation_cycle,
              r4.cells[i].first_violation_cycle)
        << i;
  }
  // Byte-identical structured reports (no timestamps by design).
  std::ostringstream j1, j4;
  write_report_json(j1, r1, cfg);
  write_report_json(j4, r4, cfg);
  EXPECT_EQ(j1.str(), j4.str());

  // The acceptance criterion: every real mechanism consistent at every
  // planned crash point.
  EXPECT_TRUE(r1.ok());
  EXPECT_EQ(r1.failed, 0u);
  EXPECT_GT(r1.passed, 0u);
}

TEST(Campaign, NegativeControlsAccountAsExpectedFailures) {
  SystemConfig cfg = campaign_cfg();
  cfg.crash.points = 32;  // more points => teeth even on unlucky seeds
  std::vector<VariantSpec> controls;
  for (VariantSpec& v : default_variants()) {
    if (!v.expect_consistent) controls.push_back(std::move(v));
  }
  ASSERT_GE(controls.size(), 2u);  // optimal + sp!unordered

  const CampaignReport report = run_campaign(
      cfg, make_cells(controls, {WorkloadKind::kSps}, {1, 2, 3}), {});
  EXPECT_TRUE(report.ok()) << "controls must never count as failures";
  EXPECT_EQ(report.passed, 0u);
  EXPECT_GT(report.expected_failed, 0u)
      << "no negative control exposed inconsistency; the campaign lost "
         "its teeth";
  // Every control variant must bite across the seed set.
  EXPECT_TRUE(report.toothless.empty())
      << "toothless: " << report.toothless.front();
  for (const CellResult& r : report.cells) {
    EXPECT_TRUE(r.status == CellStatus::kExpectedFail ||
                r.status == CellStatus::kVacuous);
    if (r.violations > 0) {
      EXPECT_FALSE(r.first_violation.empty());
      EXPECT_GT(r.first_violation_cycle, 0u);
    }
  }
}

// ---------------------------------------------------------------------------
// Minimizer: a known-bad mutation domain (eager commit => half-applied
// transactions after a crash) must shrink to a strictly smaller prefix.

TEST(Minimizer, ConvergesOnEagerCommitMutant) {
  SystemConfig cfg = campaign_cfg();
  cfg.crash.points = 0;  // every hazard: the failure must not be missed
  cfg.crash.minimize = true;

  CellSpec spec;
  spec.mech = muttest::mutants().tc_eager;
  spec.wl = WorkloadKind::kHashtable;  // multi-word transactions
  spec.seed = 1;
  spec.expect_consistent = true;  // the mutant claims TC's promise
  spec.variant = "mut-tc-eager";

  const CellResult r = run_cell(cfg, spec, {});
  ASSERT_EQ(r.status, CellStatus::kFail)
      << "eager-commit mutant survived the crash sweep";
  EXPECT_GT(r.violations, 0u);
  ASSERT_TRUE(r.minimized);
  EXPECT_GE(r.min_txs, 1u);
  EXPECT_GT(r.total_txs, 0u);
  EXPECT_LT(r.min_txs, r.total_txs)
      << "minimizer failed to shrink the reproducer";
  EXPECT_GT(r.min_uops, 0u);

  // The minimized prefix is a real reproducer: rerunning the same spec is
  // deterministic, so the report carries an actionable repro command.
  EXPECT_NE(r.repro.find("--crash-sweep"), std::string::npos);
}

// The healthy sibling of the mutant stays clean under the same knobs —
// the failure above is the seeded bug, not the harness.
TEST(Minimizer, HealthyTcPassesTheSameCell) {
  SystemConfig cfg = campaign_cfg();
  cfg.crash.points = 0;
  cfg.crash.minimize = true;

  CellSpec spec;
  spec.mech = Mechanism::kTc;
  spec.wl = WorkloadKind::kHashtable;
  spec.seed = 1;
  spec.expect_consistent = true;
  spec.variant = "tc";

  const CellResult r = run_cell(cfg, spec, {});
  EXPECT_EQ(r.status, CellStatus::kPass);
  EXPECT_EQ(r.violations, 0u);
  EXPECT_FALSE(r.minimized);
}

}  // namespace
}  // namespace ntcsim::faultsim
