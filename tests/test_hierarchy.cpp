#include "cache/hierarchy.hpp"

#include <gtest/gtest.h>

#include "recovery/images.hpp"

namespace ntcsim::cache {
namespace {

class HierTest : public ::testing::Test {
 protected:
  HierTest() : cfg_(SystemConfig::tiny()) {
    mem_ = std::make_unique<mem::MemorySystem>(cfg_, events_, stats_);
    durable_ = std::make_unique<recovery::DurableState>(stats_);
    mem_->set_nvm_observer(durable_.get());
    hier_ = std::make_unique<Hierarchy>(cfg_, *mem_, events_, stats_,
                                        &vimage_);
    nvm_ = cfg_.address_space.nvm_base();
  }

  void run(Cycle cycles) {
    for (Cycle i = 0; i < cycles; ++i) {
      events_.drain_until(now_);
      hier_->tick(now_);
      mem_->tick(now_);
      ++now_;
    }
    events_.drain_until(now_);
  }

  /// Blocking load helper: returns the completion cycle.
  Cycle load_and_wait(Addr a, bool persistent) {
    Cycle done_at = 0;
    bool done = false;
    EXPECT_TRUE(hier_->load(now_, 0, a, persistent, [&] {
      done = true;
      done_at = now_;
    }));
    const Cycle start = now_;
    run(3000);
    EXPECT_TRUE(done) << "load to " << a << " never completed";
    (void)start;
    return done_at;
  }

  void store_now(Addr a, Word v) {
    ASSERT_TRUE(hier_->store(now_, 0, a, v, cfg_.address_space.is_persistent(a),
                             kNoTx));
  }

  SystemConfig cfg_;
  EventQueue events_;
  StatSet stats_;
  recovery::VolatileImage vimage_;
  std::unique_ptr<mem::MemorySystem> mem_;
  std::unique_ptr<recovery::DurableState> durable_;
  std::unique_ptr<Hierarchy> hier_;
  Addr nvm_ = 0;
  Cycle now_ = 0;
};

TEST_F(HierTest, ColdMissThenL1Hit) {
  const Cycle first = load_and_wait(nvm_, true);
  EXPECT_GT(first, 100u);  // STT-RAM row miss dominates
  EXPECT_EQ(stats_.counter_value("llc.misses"), 1u);
  const Cycle start = now_;
  const Cycle second = load_and_wait(nvm_ + 8, true);  // same line
  EXPECT_EQ(second - start, cfg_.l1.latency_cycles);
  EXPECT_EQ(stats_.counter_value("l1.hits"), 1u);
}

TEST_F(HierTest, MshrMergesSameLineLoads) {
  int done = 0;
  ASSERT_TRUE(hier_->load(now_, 0, nvm_, true, [&] { ++done; }));
  ASSERT_TRUE(hier_->load(now_, 0, nvm_ + 16, true, [&] { ++done; }));
  run(3000);
  EXPECT_EQ(done, 2);
  EXPECT_EQ(stats_.counter_value("nvm.reads"), 1u);  // one memory read
}

TEST_F(HierTest, StoreMissAllocatesAndDirties) {
  store_now(nvm_, 0xBEEF);
  run(3000);
  // Line is now present and dirty in L1; a load hits.
  const Cycle start = now_;
  const Cycle done = load_and_wait(nvm_, true);
  EXPECT_EQ(done - start, cfg_.l1.latency_cycles);
  EXPECT_EQ(vimage_.load(nvm_), 0xBEEFu);
}

TEST_F(HierTest, DirtyPersistentEvictionWritesBackWithPayload) {
  // Fill one LLC set (4 ways in tiny) with dirty persistent lines plus one
  // more: LLC set stride = sets * 64 = 4 KB / 4 ways = 16 sets -> 1 KB.
  const Addr stride = hier_->llc().sets() * kLineBytes;
  for (unsigned i = 0; i < 6; ++i) {
    store_now(nvm_ + i * stride, 100 + i);
    run(2000);
  }
  run(4000);
  EXPECT_GT(stats_.counter_value("llc.writebacks"), 0u);
  EXPECT_GT(stats_.counter_value("nvm.writes"), 0u);
  // The evicted line's value became durable via the volatile-image payload.
  EXPECT_EQ(durable_->load(nvm_), 100u);
}

TEST_F(HierTest, TcModeDropsPersistentWritebacks) {
  hier_->hooks().drop_persistent_llc_writeback = true;
  const Addr stride = hier_->llc().sets() * kLineBytes;
  for (unsigned i = 0; i < 6; ++i) {
    store_now(nvm_ + i * stride, 100 + i);
    run(2000);
  }
  run(4000);
  EXPECT_GT(stats_.counter_value("llc.wb_dropped"), 0u);
  EXPECT_EQ(stats_.counter_value("nvm.writes"), 0u);
  EXPECT_EQ(durable_->load(nvm_), 0u);  // nothing leaked to NVM
}

TEST_F(HierTest, VolatileEvictionsStillWriteBackInTcMode) {
  hier_->hooks().drop_persistent_llc_writeback = true;
  const Addr stride = hier_->llc().sets() * kLineBytes;
  for (unsigned i = 0; i < 6; ++i) {
    store_now(i * stride, 100 + i);  // DRAM addresses
    run(2000);
  }
  run(4000);
  EXPECT_GT(stats_.counter_value("dram.writes"), 0u);
}

TEST_F(HierTest, NtcProbeRunsAlongsideNvmRead) {
  // §3: the LLC issues the miss toward BOTH the NVM and the NTC; an NTC
  // entry holds only its transaction's words, so the fill is NVM-bound
  // either way and the probe result only governs the merge.
  bool probed = false;
  hier_->hooks().ntc_probe = [&](CoreId, Addr) {
    probed = true;
    return true;
  };
  const Cycle start = now_;
  const Cycle done = load_and_wait(nvm_, true);
  EXPECT_TRUE(probed);
  EXPECT_EQ(stats_.counter_value("llc.ntc_probe_hits"), 1u);
  EXPECT_EQ(stats_.counter_value("nvm.reads"), 1u);
  EXPECT_GT(done - start, 100u);  // STT-RAM round trip dominates
}

TEST_F(HierTest, NtcProbeMissGoesToNvm) {
  hier_->hooks().ntc_probe = [&](CoreId, Addr) { return false; };
  load_and_wait(nvm_, true);
  EXPECT_EQ(stats_.counter_value("nvm.reads"), 1u);
}

TEST_F(HierTest, VolatileMissNeverProbes) {
  int probes = 0;
  hier_->hooks().ntc_probe = [&](CoreId, Addr) {
    ++probes;
    return true;
  };
  load_and_wait(64, false);  // DRAM address
  EXPECT_EQ(probes, 0);
}

TEST_F(HierTest, ClwbWritesDirtyLineToNvm) {
  store_now(nvm_, 0x77);
  run(3000);
  bool persisted = false;
  ASSERT_TRUE(hier_->clwb(now_, 0, nvm_, mem::Source::kLog,
                          [&] { persisted = true; }));
  run(3000);
  EXPECT_TRUE(persisted);
  EXPECT_EQ(stats_.counter_value("nvm.writes.log"), 1u);
  EXPECT_EQ(durable_->load(nvm_), 0x77u);
}

TEST_F(HierTest, ClwbOnCleanLineCompletesWithoutWrite) {
  store_now(nvm_, 0x77);
  run(3000);
  ASSERT_TRUE(hier_->clwb(now_, 0, nvm_, mem::Source::kLog, [] {}));
  run(3000);
  bool persisted = false;
  ASSERT_TRUE(hier_->clwb(now_, 0, nvm_, mem::Source::kLog,
                          [&] { persisted = true; }));
  run(100);
  EXPECT_TRUE(persisted);
  EXPECT_EQ(stats_.counter_value("nvm.writes"), 1u);  // only the first
}

TEST_F(HierTest, ClwbWhileMissPendingRetries) {
  store_now(nvm_, 1);  // miss in flight
  EXPECT_FALSE(hier_->clwb(now_, 0, nvm_, mem::Source::kLog, [] {}));
  run(3000);
  EXPECT_TRUE(hier_->clwb(now_, 0, nvm_, mem::Source::kLog, [] {}));
}

TEST_F(HierTest, LlcEvictionBackInvalidatesPrivateLevels) {
  load_and_wait(nvm_, true);
  EXPECT_NE(hier_->l1(0).peek(nvm_), nullptr);
  const Addr stride = hier_->llc().sets() * kLineBytes;
  // Evict nvm_'s set from the LLC with conflicting volatile lines.
  for (unsigned i = 1; i <= 4; ++i) {
    load_and_wait(i * stride, false);
  }
  EXPECT_EQ(hier_->llc().peek(nvm_), nullptr);
  EXPECT_EQ(hier_->l1(0).peek(nvm_), nullptr);  // inclusion enforced
  EXPECT_EQ(hier_->l2(0).peek(nvm_), nullptr);
}

TEST_F(HierTest, KilnPinnedLineSurvivesEvictionPressure) {
  hier_->hooks().llc_nonvolatile = true;
  load_and_wait(nvm_, true);
  hier_->kiln_pin(0, nvm_, 1);
  const Addr stride = hier_->llc().sets() * kLineBytes;
  for (unsigned i = 1; i <= 5; ++i) {
    load_and_wait(nvm_ + i * stride, true);
  }
  EXPECT_NE(hier_->llc().peek(nvm_), nullptr);
  EXPECT_TRUE(hier_->llc().peek(nvm_)->pinned);
}

TEST_F(HierTest, KilnCommitLineCleansUppersAndPinsUntilCleanBack) {
  hier_->hooks().llc_nonvolatile = true;
  store_now(nvm_, 5);
  run(3000);
  hier_->kiln_pin(0, nvm_, 1);
  EXPECT_TRUE(hier_->kiln_commit_line(0, nvm_));
  // Upper copies are retained but clean (clwb semantics).
  const Line* l1l = hier_->l1(0).peek(nvm_);
  ASSERT_NE(l1l, nullptr);
  EXPECT_FALSE(l1l->dirty);
  // The NV-LLC block stays pinned-dirty until its NVM clean-back completes.
  const Line* ll = hier_->llc().peek(nvm_);
  ASSERT_NE(ll, nullptr);
  EXPECT_TRUE(ll->pinned);
  EXPECT_TRUE(ll->dirty);
  hier_->kiln_clean_done(nvm_);
  EXPECT_FALSE(ll->pinned);
  EXPECT_FALSE(ll->dirty);
}

TEST_F(HierTest, BlockedLlcDelaysMisses) {
  const Cycle t0 = now_;
  const Cycle unblocked = load_and_wait(nvm_, true) - t0;

  hier_->block_llc_until(now_ + 2000);
  const Cycle t1 = now_;
  const Cycle blocked = load_and_wait(nvm_ + (1 << 20), true) - t1;
  EXPECT_GT(blocked, unblocked + 1000);
}

TEST_F(HierTest, NtWriteInvalidatesStaleCachedCopy) {
  // A cached line overwritten by a non-temporal write must not survive
  // with stale data.
  store_now(nvm_, 1);
  run(3000);
  ASSERT_NE(hier_->l1(0).peek(nvm_), nullptr);
  mem::MemRequest req;
  req.op = mem::MemOp::kWrite;
  req.line_addr = nvm_;
  req.persistent = true;
  req.source = mem::Source::kLog;
  req.payload = {{nvm_, 2}};
  ASSERT_TRUE(hier_->nt_write(now_, req));
  EXPECT_EQ(hier_->l1(0).peek(nvm_), nullptr);
  EXPECT_EQ(hier_->l2(0).peek(nvm_), nullptr);
  EXPECT_EQ(hier_->llc().peek(nvm_), nullptr);
  run(3000);
  EXPECT_EQ(durable_->load(nvm_), 2u);
}

TEST_F(HierTest, RejectsWhenMshrsExhausted) {
  // tiny config: 4 L1 MSHRs. Five distinct-line loads: the fifth bounces.
  for (unsigned i = 0; i < 4; ++i) {
    ASSERT_TRUE(hier_->load(now_, 0, nvm_ + i * 4096, true, [] {}));
  }
  EXPECT_FALSE(hier_->load(now_, 0, nvm_ + 5 * 4096, true, [] {}));
  EXPECT_GT(stats_.counter_value("hier.rejects"), 0u);
  run(3000);
  EXPECT_TRUE(hier_->load(now_, 0, nvm_ + 5 * 4096, true, [] {}));
  run(3000);
  EXPECT_TRUE(hier_->quiesced());
}

TEST_F(HierTest, CleanLlcEvictionWritesNothing) {
  // Read-only lines leave the LLC silently: no NVM write, no payload.
  const Addr stride = hier_->llc().sets() * kLineBytes;
  for (unsigned i = 0; i <= 5; ++i) {
    load_and_wait(nvm_ + i * stride, true);
  }
  EXPECT_EQ(stats_.counter_value("nvm.writes"), 0u);
  EXPECT_EQ(stats_.counter_value("llc.writebacks"), 0u);
}

TEST_F(HierTest, QuiescedReflectsOutstandingWork) {
  EXPECT_TRUE(hier_->quiesced());
  ASSERT_TRUE(hier_->load(now_, 0, nvm_, true, [] {}));
  EXPECT_FALSE(hier_->quiesced());
  run(3000);
  EXPECT_TRUE(hier_->quiesced());
}

}  // namespace
}  // namespace ntcsim::cache
