// Multi-core hierarchy behaviour: shared-LLC interactions, the
// coherence-lite invalidation path, cross-core back-invalidation, and the
// NTC probe hook with per-core transaction caches.
#include <gtest/gtest.h>

#include "cache/hierarchy.hpp"
#include "recovery/images.hpp"

namespace ntcsim::cache {
namespace {

class MultiCoreHierTest : public ::testing::Test {
 protected:
  MultiCoreHierTest() : cfg_(SystemConfig::tiny()) {
    cfg_.cores = 2;
    mem_ = std::make_unique<mem::MemorySystem>(cfg_, events_, stats_);
    hier_ = std::make_unique<Hierarchy>(cfg_, *mem_, events_, stats_,
                                        &vimage_);
    nvm_ = cfg_.address_space.heap_base();
  }

  void run(Cycle cycles) {
    for (Cycle i = 0; i < cycles; ++i) {
      events_.drain_until(now_);
      hier_->tick(now_);
      mem_->tick(now_);
      ++now_;
    }
    events_.drain_until(now_);
  }

  void load_wait(CoreId core, Addr a) {
    bool done = false;
    ASSERT_TRUE(hier_->load(now_, core, a, true, [&] { done = true; }));
    run(3000);
    ASSERT_TRUE(done);
  }

  SystemConfig cfg_;
  EventQueue events_;
  StatSet stats_;
  recovery::VolatileImage vimage_;
  std::unique_ptr<mem::MemorySystem> mem_;
  std::unique_ptr<Hierarchy> hier_;
  Addr nvm_ = 0;
  Cycle now_ = 0;
};

TEST_F(MultiCoreHierTest, SharedLineFillsBothPrivateHierarchies) {
  load_wait(0, nvm_);
  load_wait(1, nvm_);
  EXPECT_NE(hier_->l1(0).peek(nvm_), nullptr);
  EXPECT_NE(hier_->l1(1).peek(nvm_), nullptr);
  // One memory read: core 1 hit the shared LLC.
  EXPECT_EQ(stats_.counter_value("nvm.reads"), 1u);
}

TEST_F(MultiCoreHierTest, SameLineMissesFromBothCoresMergeAtLlc) {
  int done = 0;
  ASSERT_TRUE(hier_->load(now_, 0, nvm_, true, [&] { ++done; }));
  ASSERT_TRUE(hier_->load(now_, 1, nvm_, true, [&] { ++done; }));
  run(3000);
  EXPECT_EQ(done, 2);
  EXPECT_EQ(stats_.counter_value("nvm.reads"), 1u);
  EXPECT_NE(hier_->l1(0).peek(nvm_), nullptr);
  EXPECT_NE(hier_->l1(1).peek(nvm_), nullptr);
}

TEST_F(MultiCoreHierTest, WriteReachingLlcInvalidatesOtherCoreCopies) {
  load_wait(0, nvm_);
  load_wait(1, nvm_);
  // Force the line out of core 1's private levels? No — write from core 1
  // that *reaches the LLC*. Evict it from core 1's L1/L2 by filling their
  // sets, then store: the write misses privately, hits the LLC, and must
  // invalidate core 0's stale copies.
  const Addr l1_stride = hier_->l1(1).sets() * kLineBytes;
  const Addr l2_stride = hier_->l2(1).sets() * kLineBytes;
  for (unsigned i = 1; i <= 4; ++i) {
    load_wait(1, nvm_ + i * l1_stride * 4);
    load_wait(1, nvm_ + i * l2_stride * 4);
  }
  ASSERT_EQ(hier_->l1(1).peek(nvm_), nullptr) << "setup failed to evict";
  ASSERT_TRUE(hier_->store(now_, 1, nvm_, 7, true, kNoTx));
  run(3000);
  EXPECT_EQ(hier_->l1(0).peek(nvm_), nullptr);
  EXPECT_EQ(hier_->l2(0).peek(nvm_), nullptr);
}

TEST_F(MultiCoreHierTest, LlcEvictionBackInvalidatesEveryCore) {
  load_wait(0, nvm_);
  load_wait(1, nvm_);
  const Addr stride = hier_->llc().sets() * kLineBytes;
  for (unsigned i = 1; i <= 4; ++i) {
    load_wait(0, nvm_ + i * stride);
  }
  EXPECT_EQ(hier_->llc().peek(nvm_), nullptr);
  EXPECT_EQ(hier_->l1(0).peek(nvm_), nullptr);
  EXPECT_EQ(hier_->l1(1).peek(nvm_), nullptr);
}

TEST_F(MultiCoreHierTest, ProbeIdentifiesTheRequestingCore) {
  std::vector<CoreId> probed;
  hier_->hooks().ntc_probe = [&](CoreId core, Addr) {
    probed.push_back(core);
    return false;
  };
  load_wait(1, nvm_);
  ASSERT_EQ(probed.size(), 1u);
  EXPECT_EQ(probed[0], 1u);
}

TEST_F(MultiCoreHierTest, DirtySharedLineMergesOnEviction) {
  // Core 0 dirties a line; core 1 reads it; the LLC eviction write-back
  // must carry core 0's (architecturally latest) value.
  recovery::DurableState durable(stats_);
  mem_->set_nvm_observer(&durable);
  ASSERT_TRUE(hier_->store(now_, 0, nvm_, 0x42, true, kNoTx));
  run(3000);
  load_wait(1, nvm_);
  const Addr stride = hier_->llc().sets() * kLineBytes;
  for (unsigned i = 1; i <= 4; ++i) {
    load_wait(0, nvm_ + i * stride);
  }
  run(4000);
  EXPECT_EQ(durable.load(nvm_), 0x42u);
}

}  // namespace
}  // namespace ntcsim::cache
