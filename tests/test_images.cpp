#include "recovery/images.hpp"

#include <gtest/gtest.h>

namespace ntcsim::recovery {
namespace {

TEST(WordImage, StoreLoadRoundTrip) {
  WordImage img;
  img.store(64, 0xDEAD);
  EXPECT_EQ(img.load(64), 0xDEADu);
  EXPECT_EQ(img.load(72), 0u);
  EXPECT_TRUE(img.contains(64));
  EXPECT_FALSE(img.contains(72));
}

TEST(WordImage, UnalignedStoreAborts) {
  WordImage img;
  EXPECT_DEATH(img.store(65, 1), "word-aligned");
}

TEST(WordImage, WordsInLineReturnsOnlyThatLine) {
  WordImage img;
  img.store(64, 1);
  img.store(72, 2);
  img.store(128, 3);  // next line
  const auto words = img.words_in_line(64);
  ASSERT_EQ(words.size(), 2u);
  EXPECT_EQ(words[0].first, 64u);
  EXPECT_EQ(words[0].second, 1u);
  EXPECT_EQ(words[1].first, 72u);
  EXPECT_EQ(words[1].second, 2u);
  EXPECT_TRUE(img.words_in_line(256).empty());
}

TEST(WordImage, OverwriteKeepsLatest) {
  WordImage img;
  img.store(0, 1);
  img.store(0, 2);
  EXPECT_EQ(img.load(0), 2u);
  EXPECT_EQ(img.words_in_line(0).size(), 1u);
}

TEST(WordImage, ForEachVisitsAllWords) {
  WordImage img;
  img.store(0, 1);
  img.store(8, 2);
  img.store(1024, 3);
  int count = 0;
  Word sum = 0;
  img.for_each([&](Addr, Word w) {
    ++count;
    sum += w;
  });
  EXPECT_EQ(count, 3);
  EXPECT_EQ(sum, 6u);
}

TEST(DurableState, AppliesWritePayload) {
  StatSet stats;
  DurableState d(stats);
  mem::MemRequest req;
  req.payload = {{64, 5}, {72, 6}};
  d.on_nvm_write(req);
  EXPECT_EQ(d.load(64), 5u);
  EXPECT_EQ(d.load(72), 6u);
  EXPECT_EQ(stats.counter_value("durable.words_written"), 2u);
}

TEST(DurableState, KilnCommitApplies) {
  StatSet stats;
  DurableState d(stats);
  d.apply_kiln_commit({{128, 9}, {136, 10}});
  EXPECT_EQ(d.load(128), 9u);
  EXPECT_EQ(d.load(136), 10u);
}

}  // namespace
}  // namespace ntcsim::recovery
