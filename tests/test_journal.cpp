#include "recovery/journal.hpp"

#include <gtest/gtest.h>

namespace ntcsim::recovery {
namespace {

TEST(Journal, RecordsPerCoreInOrder) {
  Journal j(2);
  j.begin_tx(0, 1);
  j.write(0, 100, 1);
  j.write(0, 108, 2);
  j.end_tx(0);
  j.begin_tx(1, 1);
  j.write(1, 200, 3);
  j.end_tx(1);
  j.begin_tx(0, 2);
  j.end_tx(0);

  ASSERT_EQ(j.per_core(0).size(), 2u);
  ASSERT_EQ(j.per_core(1).size(), 1u);
  EXPECT_EQ(j.per_core(0)[0].tx, 1u);
  EXPECT_EQ(j.per_core(0)[0].writes.size(), 2u);
  EXPECT_EQ(j.per_core(0)[1].writes.size(), 0u);
  EXPECT_EQ(j.total_txs(), 3u);
}

TEST(Journal, WordAlignsAddresses) {
  Journal j(1);
  j.begin_tx(0, 1);
  j.write(0, 101, 7);  // unaligned address is aligned down
  j.end_tx(0);
  EXPECT_EQ(j.per_core(0)[0].writes[0].first, 96u);
}

TEST(Journal, NestedTxAborts) {
  Journal j(1);
  j.begin_tx(0, 1);
  EXPECT_DEATH(j.begin_tx(0, 2), "nested");
}

TEST(Journal, WriteOutsideTxAborts) {
  Journal j(1);
  EXPECT_DEATH(j.write(0, 8, 1), "outside");
}

TEST(Journal, EndWithoutBeginAborts) {
  Journal j(1);
  EXPECT_DEATH(j.end_tx(0), "without begin");
}

}  // namespace
}  // namespace ntcsim::recovery
