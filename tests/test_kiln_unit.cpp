#include "persist/kiln_unit.hpp"

#include <gtest/gtest.h>

#include "recovery/images.hpp"

namespace ntcsim::persist {
namespace {

class KilnTest : public ::testing::Test {
 protected:
  KilnTest() : cfg_(SystemConfig::tiny()) {
    mem_ = std::make_unique<mem::MemorySystem>(cfg_, events_, stats_);
    durable_ = std::make_unique<recovery::DurableState>(stats_);
    mem_->set_nvm_observer(durable_.get());
    hier_ = std::make_unique<cache::Hierarchy>(cfg_, *mem_, events_, stats_,
                                               &vimage_);
    hier_->hooks().llc_nonvolatile = true;
    kiln_ = std::make_unique<KilnUnit>(1, KilnConfig{}, *hier_, events_,
                                       durable_.get(), stats_);
    nvm_ = cfg_.address_space.heap_base();
  }

  void run(Cycle cycles) {
    for (Cycle i = 0; i < cycles; ++i) {
      events_.drain_until(now_);
      hier_->tick(now_);
      mem_->tick(now_);
      ++now_;
    }
    events_.drain_until(now_);
  }

  SystemConfig cfg_;
  EventQueue events_;
  StatSet stats_;
  recovery::VolatileImage vimage_;
  std::unique_ptr<mem::MemorySystem> mem_;
  std::unique_ptr<recovery::DurableState> durable_;
  std::unique_ptr<cache::Hierarchy> hier_;
  std::unique_ptr<KilnUnit> kiln_;
  Addr nvm_ = 0;
  Cycle now_ = 0;
};

TEST_F(KilnTest, CommitAppliesWritesToDurableState) {
  kiln_->begin_tx(0, 1);
  vimage_.store(nvm_, 5);
  kiln_->on_store(now_, 0, nvm_, 5, 1);
  kiln_->begin_commit(now_, 0, 1);
  EXPECT_FALSE(kiln_->commit_done(0));
  EXPECT_EQ(durable_->load(nvm_), 0u);  // not durable until flush completes
  run(200);
  EXPECT_TRUE(kiln_->commit_done(0));
  EXPECT_EQ(durable_->load(nvm_), 5u);
}

TEST_F(KilnTest, CommitDurationScalesWithLines) {
  kiln_->begin_tx(0, 1);
  for (int i = 0; i < 10; ++i) {
    kiln_->on_store(now_, 0, nvm_ + i * 64, i, 1);
  }
  kiln_->begin_commit(now_, 0, 1);
  const KilnConfig kc;
  // 10 lines: fixed + 10*per_line.
  EXPECT_DOUBLE_EQ(stats_.accumulator_mean("kiln.commit_cycles"),
                   kc.commit_fixed_cycles + 10.0 * kc.cycles_per_line);
  EXPECT_EQ(stats_.counter_value("kiln.flushed_lines"), 10u);
  run(200);
}

TEST_F(KilnTest, CommitBlocksTheLlc) {
  kiln_->begin_tx(0, 1);
  for (int i = 0; i < 20; ++i) {
    kiln_->on_store(now_, 0, nvm_ + i * 64, i, 1);
  }
  const Cycle before = hier_->llc_blocked_until();
  kiln_->begin_commit(now_, 0, 1);
  EXPECT_GT(hier_->llc_blocked_until(), before);
  run(400);
}

TEST_F(KilnTest, PinQueryMatchesOpenTxLines) {
  kiln_->begin_tx(0, 1);
  kiln_->on_store(now_, 0, nvm_ + 8, 1, 1);
  EXPECT_EQ(kiln_->pin_query(0, nvm_), 1u);        // same line
  EXPECT_EQ(kiln_->pin_query(0, nvm_ + 64), kNoTx);  // untouched line
  kiln_->begin_commit(now_, 0, 1);
  EXPECT_EQ(kiln_->pin_query(0, nvm_), kNoTx);  // committing: no new pins
  run(200);
}

TEST_F(KilnTest, MultiWordTxAtomicDurability) {
  kiln_->begin_tx(0, 1);
  for (int i = 0; i < 4; ++i) {
    vimage_.store(nvm_ + i * 8, 100 + i);
    kiln_->on_store(now_, 0, nvm_ + i * 8, 100 + i, 1);
  }
  kiln_->begin_commit(now_, 0, 1);
  run(200);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(durable_->load(nvm_ + i * 8), 100u + i);
  }
}

TEST_F(KilnTest, SecondTxAfterCommit) {
  kiln_->begin_tx(0, 1);
  kiln_->on_store(now_, 0, nvm_, 1, 1);
  kiln_->begin_commit(now_, 0, 1);
  run(200);
  kiln_->begin_tx(0, 2);
  kiln_->on_store(now_, 0, nvm_, 2, 2);
  kiln_->begin_commit(now_, 0, 2);
  run(200);
  EXPECT_EQ(durable_->load(nvm_), 2u);
  EXPECT_EQ(stats_.counter_value("kiln.commits"), 2u);
}

TEST_F(KilnTest, OverlappingCommitAborts) {
  kiln_->begin_tx(0, 1);
  kiln_->begin_commit(now_, 0, 1);
  // The first commit is still flushing; a second must not start (the core
  // enforces this by stalling TX_END on commit_done()).
  kiln_->begin_tx(0, 2);
  EXPECT_DEATH(kiln_->begin_commit(now_, 0, 2), "overlapping");
}

TEST_F(KilnTest, StoreForWrongTxAborts) {
  kiln_->begin_tx(0, 1);
  EXPECT_DEATH(kiln_->on_store(now_, 0, nvm_, 1, 2), "not open");
}

}  // namespace
}  // namespace ntcsim::persist
