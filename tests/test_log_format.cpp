#include "recovery/log_format.hpp"

#include <gtest/gtest.h>

#include "recovery/images.hpp"

namespace ntcsim::recovery {
namespace {

constexpr Addr kBase = 1 << 20;
constexpr std::uint64_t kBytes = 1 << 16;

TEST(LogCursor, AllocatesSequentialRecords) {
  LogCursor c(kBase, kBytes);
  EXPECT_EQ(c.next_record(), kBase);
  EXPECT_EQ(c.next_record(), kBase + 16);
  EXPECT_EQ(c.records_used(), 2u);
}

TEST(LogCursor, OverflowAborts) {
  LogCursor c(kBase, 32);  // two records
  c.next_record();
  c.next_record();
  EXPECT_DEATH(c.next_record(), "overflow");
}

TEST(LogFormat, CommitMarkerEncoding) {
  const Word m = make_commit_marker(42);
  EXPECT_TRUE(is_commit_marker(m));
  EXPECT_EQ(commit_marker_tx(m), 42u);
  EXPECT_FALSE(is_commit_marker(0x12345678));
  EXPECT_FALSE(is_commit_marker(8ULL << 30));  // an NVM data address
}

TEST(ParseLog, EmptyLog) {
  WordImage img;
  EXPECT_TRUE(parse_log(img, kBase, kBytes).empty());
}

TEST(ParseLog, SingleCommittedTx) {
  WordImage img;
  img.store(kBase, 4096);      // record 0: target addr
  img.store(kBase + 8, 77);    // record 0: value
  img.store(kBase + 16, make_commit_marker(1));
  img.store(kBase + 24, 1);    // record count
  const auto txs = parse_log(img, kBase, kBytes);
  ASSERT_EQ(txs.size(), 1u);
  EXPECT_EQ(txs[0].tx, 1u);
  ASSERT_EQ(txs[0].writes.size(), 1u);
  EXPECT_EQ(txs[0].writes[0], (std::pair<Addr, Word>{4096, 77}));
}

TEST(ParseLog, UncommittedTailIgnored) {
  WordImage img;
  img.store(kBase, 4096);
  img.store(kBase + 8, 77);
  img.store(kBase + 16, make_commit_marker(1));
  img.store(kBase + 24, 1);
  // Tx 2: data record durable, no marker (crash before commit).
  img.store(kBase + 32, 8192);
  img.store(kBase + 40, 99);
  const auto txs = parse_log(img, kBase, kBytes);
  ASSERT_EQ(txs.size(), 1u);
  EXPECT_EQ(txs[0].tx, 1u);
}

TEST(ParseLog, TornRecordStopsParsing) {
  WordImage img;
  img.store(kBase, 4096);  // address durable, value lost
  img.store(kBase + 16, make_commit_marker(1));
  img.store(kBase + 24, 1);
  const auto txs = parse_log(img, kBase, kBytes);
  EXPECT_TRUE(txs.empty());  // the torn record invalidates the tail
}

TEST(ParseLog, MarkerWithWrongCountRejected) {
  WordImage img;
  img.store(kBase, 4096);
  img.store(kBase + 8, 77);
  img.store(kBase + 16, make_commit_marker(1));
  img.store(kBase + 24, 2);  // claims two records, only one present
  EXPECT_TRUE(parse_log(img, kBase, kBytes).empty());
}

TEST(ParseLog, MultipleTxsInOrder) {
  WordImage img;
  Addr r = kBase;
  auto put = [&](Word a, Word b) {
    img.store(r, a);
    img.store(r + 8, b);
    r += 16;
  };
  put(4096, 1);
  put(make_commit_marker(1), 1);
  put(4096, 2);
  put(4104, 3);
  put(make_commit_marker(2), 2);
  const auto txs = parse_log(img, kBase, kBytes);
  ASSERT_EQ(txs.size(), 2u);
  EXPECT_EQ(txs[0].tx, 1u);
  EXPECT_EQ(txs[1].tx, 2u);
  EXPECT_EQ(txs[1].writes.size(), 2u);
}

TEST(ParseLog, HoleAfterCommittedPrefixStopsThere) {
  WordImage img;
  img.store(kBase, 4096);
  img.store(kBase + 8, 1);
  img.store(kBase + 16, make_commit_marker(1));
  img.store(kBase + 24, 1);
  // Record slot 2 never written; records at slot 3 durable but unreachable.
  img.store(kBase + 48, 8192);
  img.store(kBase + 56, 9);
  const auto txs = parse_log(img, kBase, kBytes);
  ASSERT_EQ(txs.size(), 1u);
}

}  // namespace
}  // namespace ntcsim::recovery
