// Property tests on the memory controller: under randomized request
// streams and arbitrary geometry, every request completes exactly once,
// same-line writes complete in order, and the durable image ends equal to
// program order.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/rng.hpp"
#include "mem/memory_controller.hpp"

namespace ntcsim::mem {
namespace {

struct Geometry {
  std::uint64_t seed;
  unsigned ranks;
  unsigned banks;
  unsigned read_q;
  unsigned write_q;
  unsigned requests;
  unsigned line_space;
};

class McPropertyTest : public ::testing::TestWithParam<Geometry> {};

TEST_P(McPropertyTest, EveryRequestCompletesExactlyOnce) {
  const Geometry g = GetParam();
  Rng rng(g.seed);

  MemCtrlConfig cfg;
  cfg.ranks = g.ranks;
  cfg.banks_per_rank = g.banks;
  cfg.read_queue = g.read_q;
  cfg.write_queue = g.write_q;
  cfg.timing = DeviceTiming::sttram();

  EventQueue events;
  StatSet stats;
  MemoryController mc("nvm", cfg, events, stats);

  Cycle now = 0;
  auto tick = [&](unsigned n) {
    for (unsigned i = 0; i < n; ++i) {
      events.drain_until(now);
      mc.tick(now);
      ++now;
    }
  };

  unsigned completions = 0;
  std::vector<unsigned> per_request_completions(g.requests, 0);
  // Track same-line write completion order: value written monotonic per line.
  std::map<Addr, Word> last_value_completed;
  std::map<Addr, Word> last_value_issued;
  bool order_ok = true;

  unsigned accepted = 0;
  for (unsigned r = 0; r < g.requests; ++r) {
    MemRequest req;
    const bool is_write = rng.chance(2, 3);
    req.op = is_write ? MemOp::kWrite : MemOp::kRead;
    req.line_addr = rng.below(g.line_space) * kLineBytes;
    const unsigned id = r;
    if (is_write) {
      const Word v = ++last_value_issued[req.line_addr];
      req.payload = {{req.line_addr, v}};
      req.on_complete = [&, id, v](const MemRequest& done) {
        ++completions;
        ++per_request_completions[id];
        Word& last = last_value_completed[done.line_addr];
        if (v <= last) order_ok = false;  // same-line order violated
        last = v;
      };
    } else {
      req.on_complete = [&, id](const MemRequest&) {
        ++completions;
        ++per_request_completions[id];
      };
    }
    // Retry until accepted (bounded).
    unsigned guard = 0;
    while (!mc.enqueue(req, now)) {
      tick(1);
      ASSERT_LT(++guard, 100000u);
    }
    ++accepted;
    if (rng.chance(1, 2)) tick(rng.below(40));
  }

  unsigned guard = 0;
  while (!mc.idle()) {
    tick(100);
    ASSERT_LT(++guard, 100000u) << "controller failed to drain";
  }
  events.drain_until(now);

  EXPECT_EQ(completions, accepted);
  for (unsigned r = 0; r < g.requests; ++r) {
    EXPECT_LE(per_request_completions[r], 1u) << "request " << r;
  }
  EXPECT_TRUE(order_ok) << "same-line writes completed out of order";
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, McPropertyTest,
    ::testing::Values(Geometry{1, 1, 1, 4, 8, 200, 4},
                      Geometry{2, 1, 2, 4, 8, 300, 16},
                      Geometry{3, 4, 8, 8, 64, 400, 64},
                      Geometry{4, 2, 4, 8, 16, 400, 2},
                      Geometry{5, 4, 8, 8, 64, 500, 512},
                      Geometry{6, 1, 8, 2, 4, 250, 8}),
    [](const auto& info) {
      return "seed" + std::to_string(info.param.seed) + "_r" +
             std::to_string(info.param.ranks) + "b" +
             std::to_string(info.param.banks);
    });

}  // namespace
}  // namespace ntcsim::mem
