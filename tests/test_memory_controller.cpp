#include "mem/memory_controller.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ntcsim::mem {
namespace {

MemCtrlConfig small_cfg() {
  MemCtrlConfig c;
  c.read_queue = 4;
  c.write_queue = 8;
  c.ranks = 1;
  c.banks_per_rank = 2;
  c.bus_latency = 2;
  c.timing.row_hit = 10;
  c.timing.row_miss = 30;
  c.timing.write_extra = 5;
  c.timing.burst = 4;
  return c;
}

class McTest : public ::testing::Test {
 protected:
  McTest() : mc_("nvm", small_cfg(), events_, stats_) {}

  void run(Cycle cycles) {
    for (Cycle i = 0; i < cycles; ++i) {
      events_.drain_until(now_);
      mc_.tick(now_);
      ++now_;
    }
    events_.drain_until(now_);
  }

  MemRequest read(Addr line, std::function<void(const MemRequest&)> cb = {}) {
    MemRequest r;
    r.op = MemOp::kRead;
    r.line_addr = line;
    r.on_complete = std::move(cb);
    return r;
  }
  MemRequest write(Addr line, std::function<void(const MemRequest&)> cb = {}) {
    MemRequest r;
    r.op = MemOp::kWrite;
    r.line_addr = line;
    r.persistent = true;
    r.on_complete = std::move(cb);
    return r;
  }

  EventQueue events_;
  StatSet stats_;
  MemoryController mc_;
  Cycle now_ = 0;
};

TEST_F(McTest, ReadCompletesWithCallback) {
  Cycle done_at = 0;
  bool done = false;
  ASSERT_TRUE(mc_.enqueue(read(0, [&](const MemRequest&) {
                            done = true;
                            done_at = now_;
                          }),
                          now_));
  run(100);
  EXPECT_TRUE(done);
  // Row miss 30 + burst 4 + bus 2 = 36 (plus the tick it was picked up).
  EXPECT_GE(done_at, 36u);
  EXPECT_LE(done_at, 40u);
  EXPECT_EQ(stats_.counter_value("nvm.reads"), 1u);
  EXPECT_EQ(stats_.counter_value("nvm.row_misses"), 1u);
}

TEST_F(McTest, RowHitIsFaster) {
  std::vector<Cycle> done;
  ASSERT_TRUE(mc_.enqueue(read(0, [&](const MemRequest&) { done.push_back(now_); }), now_));
  run(60);
  // 128 B away: the next line of the same bank (2 banks), same open row.
  ASSERT_TRUE(mc_.enqueue(read(128, [&](const MemRequest&) { done.push_back(now_); }), now_));
  run(60);
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(stats_.counter_value("nvm.row_hits"), 1u);
  EXPECT_LT(done[1] - 60, done[0]);  // the hit was served faster
}

TEST_F(McTest, ReadQueueFullRejects) {
  for (unsigned i = 0; i < 4; ++i) {
    ASSERT_TRUE(mc_.enqueue(read(i * (8 << 10) * 2), now_));
  }
  EXPECT_FALSE(mc_.enqueue(read(1 << 20), now_));
  run(200);
  EXPECT_TRUE(mc_.enqueue(read(1 << 20), now_));
}

TEST_F(McTest, ReadsHavePriorityOverWrites) {
  std::vector<char> order;
  ASSERT_TRUE(mc_.enqueue(write(0, [&](const MemRequest&) { order.push_back('W'); }), now_));
  ASSERT_TRUE(mc_.enqueue(read(64, [&](const MemRequest&) { order.push_back('R'); }), now_));
  run(200);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 'R');
}

TEST_F(McTest, WriteDrainTriggersAtHighWatermark) {
  // Fill the write queue to >= 80 % (7 of 8) with distinct lines.
  for (unsigned i = 0; i < 7; ++i) {
    ASSERT_TRUE(mc_.enqueue(write((8ULL << 10) * i), now_));
  }
  run(400);
  EXPECT_GE(stats_.counter_value("nvm.drain_mode_entries"), 1u);
  EXPECT_EQ(stats_.counter_value("nvm.writes"), 7u);
}

TEST_F(McTest, IdleChannelRetiresWritesWithoutDrainMode) {
  ASSERT_TRUE(mc_.enqueue(write(0), now_));
  run(100);
  EXPECT_EQ(stats_.counter_value("nvm.writes"), 1u);
  EXPECT_EQ(stats_.counter_value("nvm.drain_mode_entries"), 0u);
}

TEST_F(McTest, SameLineWritesCompleteInOrder) {
  std::vector<int> order;
  // Two writes to the same line plus one to another bank; same-line pair
  // must complete 1 before 2 even though FR-FCFS could reorder.
  ASSERT_TRUE(mc_.enqueue(write(0, [&](const MemRequest&) { order.push_back(1); }), now_));
  ASSERT_TRUE(mc_.enqueue(write(8 << 10, [&](const MemRequest&) { order.push_back(3); }), now_));
  ASSERT_TRUE(mc_.enqueue(write(0, [&](const MemRequest&) { order.push_back(2); }), now_));
  run(400);
  ASSERT_EQ(order.size(), 3u);
  auto pos = [&](int v) {
    return std::find(order.begin(), order.end(), v) - order.begin();
  };
  EXPECT_LT(pos(1), pos(2));
}

TEST_F(McTest, ReadForwardedFromWriteQueue) {
  bool read_done = false;
  ASSERT_TRUE(mc_.enqueue(write(128), now_));
  ASSERT_TRUE(mc_.enqueue(read(128, [&](const MemRequest&) { read_done = true; }), now_));
  // Forwarding completes after bus latency only, without an array read.
  run(5);
  EXPECT_TRUE(read_done);
  EXPECT_EQ(stats_.counter_value("nvm.wq_forwards"), 1u);
}

TEST_F(McTest, PersistentWriteReportsSource) {
  MemRequest w = write(0);
  w.source = Source::kTxCache;
  ASSERT_TRUE(mc_.enqueue(std::move(w), now_));
  run(100);
  EXPECT_EQ(stats_.counter_value("nvm.writes.txcache"), 1u);
  EXPECT_EQ(stats_.counter_value("nvm.writes.demand"), 0u);
}

TEST_F(McTest, IdleReportsCorrectly) {
  EXPECT_TRUE(mc_.idle());
  ASSERT_TRUE(mc_.enqueue(read(0), now_));
  EXPECT_FALSE(mc_.idle());
  run(100);
  EXPECT_TRUE(mc_.idle());
}

TEST_F(McTest, BanksOverlapAccesses) {
  // Two reads to different banks complete faster than two to one bank.
  Cycle done_two_banks = 0;
  int remaining = 2;
  auto cb = [&](const MemRequest&) {
    if (--remaining == 0) done_two_banks = now_;
  };
  ASSERT_TRUE(mc_.enqueue(read(0, cb), now_));
  ASSERT_TRUE(mc_.enqueue(read(64, cb), now_));  // adjacent line: other bank
  run(300);
  ASSERT_EQ(remaining, 0);

  // Same bank, different rows: serialized row misses.
  MemoryController mc2("nvm2", small_cfg(), events_, stats_);
  Cycle start = now_;
  Cycle done_one_bank = 0;
  int remaining2 = 2;
  auto cb2 = [&](const MemRequest&) {
    if (--remaining2 == 0) done_one_bank = now_;
  };
  ASSERT_TRUE(mc2.enqueue(read(0, cb2), now_));
  ASSERT_TRUE(mc2.enqueue(read(16384, cb2), now_));  // same bank, other row
  for (int i = 0; i < 300; ++i) {
    events_.drain_until(now_);
    mc2.tick(now_);
    ++now_;
  }
  events_.drain_until(now_);
  ASSERT_EQ(remaining2, 0);
  EXPECT_GT(done_one_bank - start, done_two_banks);
}

}  // namespace
}  // namespace ntcsim::mem
