#include "mem/memory_system.hpp"

#include <gtest/gtest.h>

#include "recovery/images.hpp"

namespace ntcsim::mem {
namespace {

class MemSysTest : public ::testing::Test {
 protected:
  MemSysTest()
      : cfg_(SystemConfig::tiny()), mem_(cfg_, events_, stats_),
        durable_(stats_) {
    mem_.set_nvm_observer(&durable_);
    nvm_base_ = cfg_.address_space.nvm_base();
  }

  void run(Cycle cycles) {
    for (Cycle i = 0; i < cycles; ++i) {
      events_.drain_until(now_);
      mem_.tick(now_);
      ++now_;
    }
    events_.drain_until(now_);
  }

  SystemConfig cfg_;
  EventQueue events_;
  StatSet stats_;
  mem::MemorySystem mem_;
  recovery::DurableState durable_;
  Addr nvm_base_ = 0;
  Cycle now_ = 0;
};

TEST_F(MemSysTest, RoutesByAddress) {
  MemRequest low;
  low.op = MemOp::kRead;
  low.line_addr = 0;
  MemRequest high;
  high.op = MemOp::kRead;
  high.line_addr = nvm_base_;
  ASSERT_TRUE(mem_.enqueue(low, now_));
  ASSERT_TRUE(mem_.enqueue(high, now_));
  run(300);
  EXPECT_EQ(stats_.counter_value("dram.reads"), 1u);
  EXPECT_EQ(stats_.counter_value("nvm.reads"), 1u);
}

TEST_F(MemSysTest, NvmWriteUpdatesDurableImageOnCompletion) {
  MemRequest w;
  w.op = MemOp::kWrite;
  w.line_addr = nvm_base_;
  w.persistent = true;
  w.payload = {{nvm_base_ + 8, 0xABCD}};
  ASSERT_TRUE(mem_.enqueue(w, now_));
  EXPECT_EQ(durable_.load(nvm_base_ + 8), 0u);  // not durable before the array write
  run(300);
  EXPECT_EQ(durable_.load(nvm_base_ + 8), 0xABCDu);
}

TEST_F(MemSysTest, DramWriteDoesNotTouchDurableImage) {
  MemRequest w;
  w.op = MemOp::kWrite;
  w.line_addr = 64;
  w.payload = {{72, 0x1234}};  // would be visible if misrouted
  ASSERT_TRUE(mem_.enqueue(w, now_));
  run(300);
  EXPECT_EQ(durable_.load(72), 0u);
  EXPECT_EQ(stats_.counter_value("durable.words_written"), 0u);
}

TEST_F(MemSysTest, AckChainedAfterObserver) {
  bool acked = false;
  MemRequest w;
  w.op = MemOp::kWrite;
  w.line_addr = nvm_base_ + 128;
  w.persistent = true;
  w.payload = {{nvm_base_ + 128, 7}};
  w.on_complete = [&](const MemRequest&) {
    // The durable image must already hold the value when the ack fires.
    EXPECT_EQ(durable_.load(nvm_base_ + 128), 7u);
    acked = true;
  };
  ASSERT_TRUE(mem_.enqueue(std::move(w), now_));
  run(300);
  EXPECT_TRUE(acked);
}

TEST_F(MemSysTest, QueueFullReportingPerChannel) {
  // Tiny config: nvm write queue = 8.
  for (unsigned i = 0; i < 8; ++i) {
    MemRequest w;
    w.op = MemOp::kWrite;
    w.line_addr = nvm_base_ + (8ULL << 10) * 4 * i;  // avoid same-line ordering
    ASSERT_TRUE(mem_.enqueue(w, now_));
  }
  EXPECT_TRUE(mem_.write_queue_full(nvm_base_));
  EXPECT_FALSE(mem_.write_queue_full(0));  // DRAM channel unaffected
  run(2000);
  EXPECT_FALSE(mem_.write_queue_full(nvm_base_));
  EXPECT_TRUE(mem_.idle());
}

TEST_F(MemSysTest, AdrDomainMakesAcceptanceDurable) {
  mem_.set_adr_domain(true);
  MemRequest w;
  w.op = MemOp::kWrite;
  w.line_addr = nvm_base_;
  w.persistent = true;
  w.payload = {{nvm_base_ + 8, 0x1234}};
  ASSERT_TRUE(mem_.enqueue(w, now_));
  // Durable the instant the controller accepted it — no ticking needed.
  EXPECT_EQ(durable_.load(nvm_base_ + 8), 0x1234u);
  run(300);
  EXPECT_EQ(durable_.load(nvm_base_ + 8), 0x1234u);
}

TEST_F(MemSysTest, AdrRejectedWriteIsNotDurable) {
  mem_.set_adr_domain(true);
  // Fill the tiny 8-entry write queue.
  for (unsigned i = 0; i < 8; ++i) {
    MemRequest w;
    w.op = MemOp::kWrite;
    w.line_addr = nvm_base_ + (8ULL << 10) * 4 * i;
    ASSERT_TRUE(mem_.enqueue(w, now_));
  }
  MemRequest w;
  w.op = MemOp::kWrite;
  w.line_addr = nvm_base_ + (1 << 20);
  w.persistent = true;
  w.payload = {{nvm_base_ + (1 << 20), 9}};
  EXPECT_FALSE(mem_.enqueue(w, now_));
  EXPECT_EQ(durable_.load(nvm_base_ + (1 << 20)), 0u);
  run(2000);
}

TEST_F(MemSysTest, IsNvmMatchesAddressSpace) {
  EXPECT_FALSE(mem_.is_nvm(0));
  EXPECT_TRUE(mem_.is_nvm(nvm_base_));
}

}  // namespace
}  // namespace ntcsim::mem
