// Multi-channel NVM: line-interleaved channels with private controllers.
#include <gtest/gtest.h>

#include "mem/memory_system.hpp"
#include "sim/system.hpp"
#include "workload/workloads.hpp"

namespace ntcsim::mem {
namespace {

TEST(MultiChannel, RequestsSpreadAcrossChannels) {
  SystemConfig cfg = SystemConfig::tiny();
  cfg.nvm.channels = 2;
  EventQueue events;
  StatSet stats;
  MemorySystem mem(cfg, events, stats);
  EXPECT_EQ(mem.nvm_channel_count(), 2u);

  const Addr base = cfg.address_space.nvm_base();
  Cycle now = 0;
  // 8 adjacent lines: 4 per channel; a single channel's 4-deep read queue
  // would reject the 5th before servicing.
  for (unsigned i = 0; i < 8; ++i) {
    MemRequest r;
    r.op = MemOp::kRead;
    r.line_addr = base + i * kLineBytes;
    ASSERT_TRUE(mem.enqueue(r, now)) << "line " << i;
  }
  for (; now < 2000; ++now) {
    events.drain_until(now);
    mem.tick(now);
  }
  events.drain_until(now);
  EXPECT_TRUE(mem.idle());
  EXPECT_EQ(stats.counter_value("nvm.reads"), 8u);  // aggregated counters
}

TEST(MultiChannel, SameLineStaysOnOneChannel) {
  // Same-address write ordering relies on same-line requests sharing a
  // queue; interleaving must be line-granular.
  SystemConfig cfg = SystemConfig::tiny();
  cfg.nvm.channels = 4;
  EventQueue events;
  StatSet stats;
  MemorySystem mem(cfg, events, stats);
  recovery::DurableState durable(stats);
  mem.set_nvm_observer(&durable);
  const Addr line = cfg.address_space.nvm_base() + 3 * kLineBytes;
  Cycle now = 0;
  for (Word v = 1; v <= 5; ++v) {
    MemRequest w;
    w.op = MemOp::kWrite;
    w.line_addr = line;
    w.persistent = true;
    w.payload = {{line, v}};
    while (!mem.enqueue(w, now)) {
      events.drain_until(now);
      mem.tick(now);
      ++now;
    }
  }
  for (Cycle end = now + 3000; now < end; ++now) {
    events.drain_until(now);
    mem.tick(now);
  }
  events.drain_until(now);
  EXPECT_EQ(durable.load(line), 5u);  // program order preserved
}

TEST(MultiChannel, MoreChannelsHelpWriteHeavyTc) {
  auto run = [](unsigned channels) {
    SystemConfig cfg = SystemConfig::experiment();
    cfg.nvm.channels = channels;
    cfg.mechanism = Mechanism::kTc;
    // Small NTC so the drain bandwidth binds.
    cfg.ntc.size_bytes = 1 << 10;
    workload::WorkloadParams p = workload::default_params(WorkloadKind::kSps);
    p.setup_elems = 8000;
    p.ops = 600;
    p.compute_per_op = 16;  // write-rate-bound on purpose
    workload::SimHeap heap(cfg.address_space, cfg.cores);
    sim::System sys(cfg);
    std::vector<workload::TraceBundle> b;
    for (CoreId c = 0; c < cfg.cores; ++c) {
      b.push_back(workload::generate_phased(p, c, heap, nullptr));
    }
    for (CoreId c = 0; c < cfg.cores; ++c) {
      sys.load_trace(c, std::move(b[c].setup));
    }
    sys.run();
    sys.reset_stats();
    for (CoreId c = 0; c < cfg.cores; ++c) {
      sys.load_trace(c, std::move(b[c].measured));
    }
    sys.run();
    return sys.metrics().tx_per_kilocycle;
  };
  const double one = run(1);
  const double four = run(4);
  EXPECT_GT(four, one * 1.02) << "extra NVM bandwidth must help a "
                                 "drain-bound transaction cache";
}

TEST(MultiChannel, CrashConsistencyHoldsAcrossChannels) {
  SystemConfig cfg = SystemConfig::tiny();
  cfg.nvm.channels = 2;
  cfg.mechanism = Mechanism::kTc;
  recovery::Journal journal(1);
  workload::SimHeap heap(cfg.address_space, 1);
  workload::WorkloadParams p = workload::default_params(WorkloadKind::kSps);
  p.setup_elems = 1500;
  p.ops = 150;
  p.compute_per_op = 16;
  sim::System sys(cfg);
  sys.load_trace(0, workload::generate(p, 0, heap, &journal));
  std::size_t violations = 0;
  while (!sys.run_for(2000)) {
    if (!recovery::check_atomicity(sys.crash_and_recover(), journal)
             .consistent) {
      ++violations;
    }
  }
  EXPECT_EQ(violations, 0u);
}

}  // namespace
}  // namespace ntcsim::mem
