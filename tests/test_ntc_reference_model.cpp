// Golden-model equivalence: drive the transaction cache with randomized
// write/commit/tick sequences and compare the final durable NVM state
// against a trivially-correct reference (apply committed transactions'
// writes in program order). Catches ordering bugs in the ring/spill drain
// that unit tests with hand-picked sequences might miss.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/rng.hpp"
#include "recovery/images.hpp"
#include "txcache/tx_cache.hpp"

namespace ntcsim::txcache {
namespace {

struct Params {
  std::uint64_t seed;
  std::size_t ntc_entries;
  double threshold;
  unsigned txs;
  unsigned max_stores_per_tx;
  unsigned line_space;  ///< Distinct lines, small => many same-line conflicts.
};

class NtcGoldenTest : public ::testing::TestWithParam<Params> {};

TEST_P(NtcGoldenTest, FinalDurableStateMatchesReference) {
  const Params p = GetParam();
  Rng rng(p.seed);

  SystemConfig cfg = SystemConfig::tiny();
  cfg.ntc.size_bytes = p.ntc_entries * kLineBytes;
  cfg.ntc.overflow_threshold = p.threshold;

  EventQueue events;
  StatSet stats;
  mem::MemorySystem mem(cfg, events, stats);
  recovery::DurableState durable(stats);
  mem.set_nvm_observer(&durable);
  TxCache ntc("ntc0", 0, cfg.ntc, cfg.address_space, mem, stats);

  const Addr base = cfg.address_space.heap_base();
  auto tick_all = [&](Cycle& now, unsigned n) {
    for (unsigned i = 0; i < n; ++i) {
      events.drain_until(now);
      ntc.tick(now);
      mem.tick(now);
      ++now;
    }
  };

  // Reference: committed transactions' word writes in program order.
  std::map<Addr, Word> reference;
  Cycle now = 0;

  for (TxId tx = 1; tx <= p.txs; ++tx) {
    const unsigned stores = 1 + static_cast<unsigned>(
                                    rng.below(p.max_stores_per_tx));
    std::vector<std::pair<Addr, Word>> tx_writes;
    for (unsigned s = 0; s < stores; ++s) {
      const Addr addr =
          base + rng.below(p.line_space) * kLineBytes + rng.below(8) * 8;
      const Word value = rng.next();
      // The CPU stalls on a full NTC: keep ticking until accepted.
      unsigned guard = 0;
      while (!ntc.write(now, addr, value, tx)) {
        tick_all(now, 1);
        ASSERT_LT(++guard, 200000u) << "NTC wedged while full";
      }
      tx_writes.emplace_back(word_of(addr), value);
      if (rng.chance(1, 3)) tick_all(now, 1 + rng.below(30));
      ASSERT_LE(ntc.occupancy(), ntc.capacity());
    }
    ntc.commit(tx);
    for (const auto& [a, v] : tx_writes) reference[a] = v;
    if (rng.chance(1, 2)) tick_all(now, rng.below(100));
  }

  // Drain completely.
  unsigned guard = 0;
  while (!(ntc.drained() && ntc.occupancy() == 0 && mem.idle() &&
           events.empty())) {
    tick_all(now, 100);
    ASSERT_LT(++guard, 100000u) << "NTC failed to drain";
  }

  for (const auto& [addr, value] : reference) {
    EXPECT_EQ(durable.load(addr), value)
        << "word 0x" << std::hex << addr << " diverged from program order";
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomizedSweep, NtcGoldenTest,
    ::testing::Values(
        // Roomy ring, no overflow pressure.
        Params{1, 64, 0.9, 60, 6, 64},
        Params{2, 64, 0.9, 60, 6, 4},    // heavy same-line conflicts
        // Tiny ring: constant overflow fall-back (spill ordering).
        Params{3, 8, 0.9, 50, 10, 32},
        Params{4, 8, 0.5, 50, 10, 4},    // spills + same-line conflicts
        Params{5, 16, 0.7, 80, 12, 16},
        Params{6, 4, 0.5, 40, 6, 8},     // pathological: 4 entries
        Params{7, 64, 0.9, 120, 3, 128},
        Params{8, 32, 0.8, 100, 8, 2}),  // two lines, maximal versioning
    [](const auto& info) {
      return "seed" + std::to_string(info.param.seed) + "_e" +
             std::to_string(info.param.ntc_entries) + "_l" +
             std::to_string(info.param.line_space);
    });

}  // namespace
}  // namespace ntcsim::txcache
