// ntclint end-to-end guard, three duties in one suite:
//  1. Fixture matrix — one positive + one negative fixture per rule, run
//     through the real binary with `--rule=` isolation, so a broken
//     matcher (rule stops firing, or fires on clean code) fails tier-1.
//  2. Tree gate — src/ and tools/ must scan clean against the checked-in
//     baseline. This supersedes the old grep-shaped spot checks (e.g. the
//     by-name-stat-lookup scan that used to live in
//     test_regression_metrics.cpp): the lint rules are the one
//     implementation of these invariants now.
//  3. Doc drift — the rule list in `ntclint --list-rules`, the flag list
//     in `ntclint --help` (tools/ntclint/cli_help.hpp) and the
//     "Static invariants (ntclint)" section of docs/ARCHITECTURE.md
//     (marker regions) must agree in both directions, mirroring
//     test_cli_docs.cpp.
#include <gtest/gtest.h>
#include <sys/wait.h>

#include <array>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "cli_help.hpp"

namespace {

struct RunResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr
};

RunResult run_ntclint(const std::string& args) {
  const std::string cmd = std::string(NTC_NTCLINT_BIN) + " " + args + " 2>&1";
  RunResult r;
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << "cannot launch " << cmd;
  if (pipe == nullptr) return r;
  std::array<char, 4096> buf;
  std::size_t n = 0;
  while ((n = fread(buf.data(), 1, buf.size(), pipe)) > 0) {
    r.output.append(buf.data(), n);
  }
  const int status = pclose(pipe);
  r.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return r;
}

std::string fixture(const std::string& name) {
  return std::string(NTC_FIXTURE_DIR) + "/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream f(path);
  EXPECT_TRUE(f.good()) << "cannot open " << path;
  std::ostringstream oss;
  oss << f.rdbuf();
  return oss.str();
}

std::string doc_region(const std::string& doc, const std::string& tag) {
  const std::string begin_marker = "<!-- " + tag + "-begin -->";
  const std::string end_marker = "<!-- " + tag + "-end -->";
  const std::size_t b = doc.find(begin_marker);
  const std::size_t e = doc.find(end_marker);
  EXPECT_NE(b, std::string::npos)
      << "docs/ARCHITECTURE.md lost its " << begin_marker;
  EXPECT_NE(e, std::string::npos)
      << "docs/ARCHITECTURE.md lost its " << end_marker;
  if (b == std::string::npos || e == std::string::npos || e <= b) return "";
  return doc.substr(b, e - b);
}

/// `ntclint-<name>` tokens, minus the suppression-syntax markers (which
/// are mechanics, not rules).
std::set<std::string> extract_rule_tags(const std::string& text) {
  std::set<std::string> tags;
  const std::string prefix = "ntclint-";
  for (std::size_t i = text.find(prefix); i != std::string::npos;
       i = text.find(prefix, i + 1)) {
    std::size_t end = i + prefix.size();
    while (end < text.size() &&
           (std::islower(static_cast<unsigned char>(text[end])) != 0 ||
            text[end] == '-')) {
      ++end;
    }
    while (end > i && text[end - 1] == '-') --end;
    const std::string tag = text.substr(i, end - i);
    // Not rules: the bare prefix, the suppression-syntax markers, and
    // the doc-region markers themselves.
    if (tag == prefix || tag.rfind("ntclint-suppress", 0) == 0 ||
        tag.rfind("ntclint-rules", 0) == 0 ||
        tag.rfind("ntclint-flags", 0) == 0) {
      continue;
    }
    tags.insert(tag);
  }
  return tags;
}

std::set<std::string> extract_flags(const std::string& text) {
  std::set<std::string> flags;
  for (std::size_t i = 0; i + 2 < text.size(); ++i) {
    if (text[i] != '-' || text[i + 1] != '-' ||
        std::islower(static_cast<unsigned char>(text[i + 2])) == 0) {
      continue;
    }
    if (i > 0 && text[i - 1] == '-') continue;
    std::size_t end = i + 2;
    while (end < text.size() &&
           (std::islower(static_cast<unsigned char>(text[end])) != 0 ||
            std::isdigit(static_cast<unsigned char>(text[end])) != 0 ||
            text[end] == '-')) {
      ++end;
    }
    flags.insert(text.substr(i, end - i));
    i = end;
  }
  return flags;
}

// --------------------------------------------------------------- fixtures

struct RuleFixture {
  const char* rule;
  const char* positive;
  const char* negative;
};

constexpr RuleFixture kRuleFixtures[] = {
    {"determinism", "determinism_pos.cpp", "determinism_neg.cpp"},
    {"hot-stats", "hot_stats_pos.cpp", "hot_stats_neg.cpp"},
    {"mechanism-seam", "mechanism_seam_pos.cpp", "mechanism_seam_neg.cpp"},
    {"tap-guard", "tap_guard_pos.cpp", "tap_guard_neg.cpp"},
    {"hot-alloc", "hot_alloc_pos.cpp", "hot_alloc_neg.cpp"},
    {"assert-discipline", "assert_discipline_pos.cpp",
     "assert_discipline_neg.cpp"},
};

TEST(NtclintFixtures, PositiveFixturesFire) {
  for (const RuleFixture& rf : kRuleFixtures) {
    const RunResult r = run_ntclint("--rule=" + std::string(rf.rule) +
                                    " --quiet " + fixture(rf.positive));
    EXPECT_EQ(r.exit_code, 1)
        << rf.rule << " did not fire on " << rf.positive << "\n" << r.output;
    EXPECT_NE(r.output.find(std::string("[ntclint-") + rf.rule + "]"),
              std::string::npos)
        << rf.rule << " diagnostics missing for " << rf.positive << "\n"
        << r.output;
  }
}

TEST(NtclintFixtures, NegativeFixturesStayQuiet) {
  for (const RuleFixture& rf : kRuleFixtures) {
    const RunResult r = run_ntclint("--rule=" + std::string(rf.rule) +
                                    " --quiet " + fixture(rf.negative));
    EXPECT_EQ(r.exit_code, 0)
        << rf.rule << " false-positive on " << rf.negative << "\n"
        << r.output;
  }
}

TEST(NtclintFixtures, SeamHomeIsExempt) {
  // The fixture tree nests src/persist/ so path normalization maps it to
  // the rule's exempt prefix: the same switch flagged elsewhere is fine
  // in the seam's home.
  const RunResult r = run_ntclint("--rule=mechanism-seam --quiet " +
                                  fixture("src/persist/seam_home.cpp"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

// ----------------------------------------------------------- suppressions

TEST(NtclintSuppressions, WellFormedSuppressionsSilence) {
  for (const char* rule : {"determinism", "assert-discipline"}) {
    const RunResult r = run_ntclint("--rule=" + std::string(rule) +
                                    " --quiet " + fixture("suppress_ok.cpp"));
    EXPECT_EQ(r.exit_code, 0)
        << rule << " leaked through a suppression\n" << r.output;
  }
}

TEST(NtclintSuppressions, MalformedSuppressionsAreFindingsAndDoNotSilence) {
  const RunResult r =
      run_ntclint("--rule=determinism --quiet " + fixture("suppress_bad.cpp"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[ntclint-bad-suppress]"), std::string::npos)
      << r.output;
  // The rand() sites the malformed suppressions tried to cover stay
  // reported.
  EXPECT_NE(r.output.find("[ntclint-determinism]"), std::string::npos)
      << r.output;
}

// --------------------------------------------------------------- baseline

TEST(NtclintBaseline, BaselinedFindingsAreToleratedNotHidden) {
  const std::string tmp =
      testing::TempDir() + "ntclint_fixture_baseline.txt";
  const RunResult wr = run_ntclint("--rule=determinism --write-baseline=" +
                                   tmp + " " + fixture("determinism_pos.cpp"));
  ASSERT_EQ(wr.exit_code, 0) << wr.output;
  const RunResult r = run_ntclint("--rule=determinism --baseline=" + tmp +
                                  " --quiet " + fixture("determinism_pos.cpp"));
  EXPECT_EQ(r.exit_code, 0) << "baselined findings must not fail\n"
                            << r.output;
  EXPECT_NE(r.output.find("(baselined)"), std::string::npos)
      << "baselined findings must still be visible\n" << r.output;
  std::remove(tmp.c_str());
}

// --------------------------------------------------------------- tree gate

TEST(NtclintTree, SrcAndToolsScanCleanAgainstBaseline) {
  const RunResult r = run_ntclint(std::string("--baseline=") + NTC_BASELINE +
                                  " " + NTC_SRC_DIR + " " + NTC_TOOLS_DIR);
  EXPECT_EQ(r.exit_code, 0)
      << "new ntclint findings in the tree: fix them or add a justified "
      << "`// ntclint-suppress(<rule>): reason` at the site\n"
      << r.output;
}

// ---------------------------------------------------------------- doc drift

TEST(NtclintDocs, RuleListMatchesArchitectureDoc) {
  const RunResult r = run_ntclint("--list-rules");
  ASSERT_EQ(r.exit_code, 0) << r.output;
  const std::set<std::string> listed = extract_rule_tags(r.output);
  EXPECT_GE(listed.size(), 7u) << r.output;
  const std::set<std::string> documented = extract_rule_tags(
      doc_region(read_file(NTC_ARCHITECTURE_MD), "ntclint-rules"));
  for (const std::string& tag : listed) {
    EXPECT_TRUE(documented.count(tag) > 0)
        << tag << " is in `ntclint --list-rules` but missing from the "
        << "ntclint-rules region of docs/ARCHITECTURE.md";
  }
  for (const std::string& tag : documented) {
    EXPECT_TRUE(listed.count(tag) > 0)
        << tag << " is documented in docs/ARCHITECTURE.md but missing "
        << "from `ntclint --list-rules` (tools/ntclint/rules.cpp)";
  }
}

TEST(NtclintDocs, HelpFlagsMatchArchitectureDoc) {
  const std::set<std::string> help = extract_flags(ntclint::kNtclintHelp);
  const std::set<std::string> documented = extract_flags(
      doc_region(read_file(NTC_ARCHITECTURE_MD), "ntclint-flags"));
  for (const std::string& flag : help) {
    EXPECT_TRUE(documented.count(flag) > 0)
        << flag << " is in `ntclint --help` but missing from the "
        << "ntclint-flags region of docs/ARCHITECTURE.md";
  }
  for (const std::string& flag : documented) {
    EXPECT_TRUE(help.count(flag) > 0)
        << flag << " is documented in docs/ARCHITECTURE.md but missing "
        << "from `ntclint --help` (tools/ntclint/cli_help.hpp)";
  }
}

TEST(NtclintDocs, HelpDocumentsDiscoveryFlags) {
  const std::string help(ntclint::kNtclintHelp);
  EXPECT_NE(help.find("--list-rules"), std::string::npos);
  EXPECT_NE(help.find("--fix-suggestions"), std::string::npos);
  // And the binary's --help is the same text.
  const RunResult r = run_ntclint("--help");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_EQ(r.output, help);
}

}  // namespace
