// Online persistence-order checker (src/check/): rule unit tests over
// synthetic event streams, violation-record structure, and end-to-end
// mutation tests. The mutation domains are deliberately broken mechanism
// variants registered ONLY in this binary (matrix_rank = -1, so --matrix
// and the sweep CSVs never see them); each one must be silent with the
// checker off and detected — attributed to exactly its rule id — with the
// checker collecting.
#include "check/persist_order_checker.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "mutation_domains.hpp"
#include "persist/domain.hpp"
#include "sim/system.hpp"
#include "workload/workloads.hpp"

namespace ntcsim {
namespace {

using check::CheckerRules;
using check::CheckEvent;
using check::EventKind;
using check::PersistOrderChecker;
using check::Rule;

AddressSpace space() { return SystemConfig::tiny().address_space; }

// Heap lines striding one cache line apart: enough distinct lines thrash
// every set of the tiny 4 KB LLC.
Addr heap_line(unsigned i) {
  return space().heap_base() + static_cast<Addr>(i) * kLineBytes;
}

CheckEvent make_event(EventKind kind, Addr addr, TxId tx = kNoTx,
                      mem::Source source = mem::Source::kDemand,
                      Word value = 0, std::uint64_t seq = 0) {
  CheckEvent ev;
  ev.kind = kind;
  ev.addr = addr;
  ev.tx = tx;
  ev.source = source;
  ev.value = value;
  ev.seq = seq;
  ev.persistent = true;
  return ev;
}

// ---------------------------------------------------------------------------
// Rule unit tests on synthetic event streams (collect mode, no System).

TEST(CheckerRulesTable, RuleIdsAreStable) {
  EXPECT_STREQ(check::rule_id(Rule::kSingleWriter), "tc.single-writer");
  EXPECT_STREQ(check::rule_id(Rule::kFifoDrain), "tc.fifo-drain");
  EXPECT_STREQ(check::rule_id(Rule::kNoStaleRead), "tc.no-stale-read");
  EXPECT_STREQ(check::rule_id(Rule::kUncommittedDrain), "tc.uncommitted-drain");
  EXPECT_STREQ(check::rule_id(Rule::kLogBeforeData), "sp.log-before-data");
  EXPECT_STREQ(check::rule_id(Rule::kKilnFlushComplete),
               "kiln.flush-incomplete");
}

TEST(SingleWriter, FlagsHeapWritesFromOutsideTheSanctionedPath) {
  CheckerRules rules;
  rules.single_writer = true;
  rules.allowed_heap_sources = check::source_bit(mem::Source::kTxCache);
  PersistOrderChecker chk(rules, space(), 1, /*fatal=*/false);

  chk.on_event(make_event(EventKind::kNvmWrite, heap_line(0), 1,
                          mem::Source::kTxCache));
  EXPECT_EQ(chk.violation_count(), 0u);  // sanctioned source
  chk.on_event(make_event(EventKind::kNvmWrite, /*dram*/ 0x1000, 1,
                          mem::Source::kDemand));
  EXPECT_EQ(chk.violation_count(), 0u);  // DRAM is out of scope
  chk.on_event(make_event(EventKind::kNvmWrite, heap_line(0), 1,
                          mem::Source::kDemand));
  ASSERT_EQ(chk.violation_count(), 1u);
  EXPECT_EQ(chk.violations()[0].rule, Rule::kSingleWriter);
}

TEST(FifoDrain, FlagsSequenceInversionPerCore) {
  CheckerRules rules;
  rules.fifo_drain = true;
  PersistOrderChecker chk(rules, space(), 2, /*fatal=*/false);

  CheckEvent a = make_event(EventKind::kNtcDrainIssue, heap_line(0), 1,
                            mem::Source::kTxCache, 0, /*seq=*/1);
  chk.on_event(a);
  a.seq = 3;
  chk.on_event(a);
  EXPECT_EQ(chk.violation_count(), 0u);  // increasing is fine, gaps allowed
  a.seq = 2;  // goes backwards past 3
  chk.on_event(a);
  ASSERT_EQ(chk.violation_count(), 1u);
  EXPECT_EQ(chk.violations()[0].rule, Rule::kFifoDrain);
  // Cores are independent FIFOs: seq 2 on core 1 is fresh.
  a.core = 1;
  chk.on_event(a);
  EXPECT_EQ(chk.violation_count(), 1u);
}

TEST(NoStaleRead, RequiresAProbeWhileTheNtcHoldsTheLine) {
  CheckerRules rules;
  rules.no_stale_read = true;
  PersistOrderChecker chk(rules, space(), 1, /*fatal=*/false);
  const Addr line = heap_line(4);

  chk.on_event(make_event(EventKind::kNtcInsert, line, 1,
                          mem::Source::kTxCache, 0, 1));
  chk.on_event(make_event(EventKind::kNvmRead, line));
  ASSERT_EQ(chk.violation_count(), 1u);  // held, never probed
  EXPECT_EQ(chk.violations()[0].rule, Rule::kNoStaleRead);

  chk.on_event(make_event(EventKind::kNtcProbe, line));
  chk.on_event(make_event(EventKind::kNvmRead, line));
  EXPECT_EQ(chk.violation_count(), 1u);  // probe credit covers this read
  chk.on_event(make_event(EventKind::kNvmRead, line));
  EXPECT_EQ(chk.violation_count(), 2u);  // credit was consumed

  chk.on_event(make_event(EventKind::kNtcRelease, line));
  chk.on_event(make_event(EventKind::kNvmRead, line));
  EXPECT_EQ(chk.violation_count(), 2u);  // released lines read freely
}

TEST(UncommittedDrain, FlagsNtcDrainsOfUncommittedTransactions) {
  CheckerRules rules;
  rules.no_uncommitted = true;
  PersistOrderChecker chk(rules, space(), 1, /*fatal=*/false);

  chk.on_event(make_event(EventKind::kNvmWrite, heap_line(1), 7,
                          mem::Source::kTxCache));
  ASSERT_EQ(chk.violation_count(), 1u);
  EXPECT_EQ(chk.violations()[0].rule, Rule::kUncommittedDrain);
  EXPECT_EQ(chk.violations()[0].tx, 7u);

  chk.on_event(make_event(EventKind::kTxCommitted, 0, 7));
  chk.on_event(make_event(EventKind::kNvmWrite, heap_line(1), 7,
                          mem::Source::kTxCache));
  EXPECT_EQ(chk.violation_count(), 1u);  // committed now
}

TEST(LogBeforeData, DataWordMustHaveADurableLogRecordFirst) {
  CheckerRules rules;
  rules.log_before_data = true;
  const Addr word = heap_line(2) + 8;
  const Addr rec = space().log_base(0);

  {
    PersistOrderChecker chk(rules, space(), 1, /*fatal=*/false);
    chk.on_event(make_event(EventKind::kStoreDrained, word, 5,
                            mem::Source::kDemand, /*value=*/42));
    chk.on_event(make_event(EventKind::kNvmDurable, word, 5,
                            mem::Source::kDemand, 42));
    ASSERT_EQ(chk.violation_count(), 1u);  // durable data, no record
    EXPECT_EQ(chk.violations()[0].rule, Rule::kLogBeforeData);
    EXPECT_EQ(chk.violations()[0].tx, 5u);
  }
  {
    // WAL order respected: record [target | value] durable before the data.
    PersistOrderChecker chk(rules, space(), 1, /*fatal=*/false);
    chk.on_event(make_event(EventKind::kNvmDurable, rec, 5, mem::Source::kLog,
                            static_cast<Word>(word)));
    chk.on_event(make_event(EventKind::kNvmDurable, rec + 8, 5,
                            mem::Source::kLog, 42));
    chk.on_event(make_event(EventKind::kStoreDrained, word, 5,
                            mem::Source::kDemand, 42));
    chk.on_event(make_event(EventKind::kNvmDurable, word, 5,
                            mem::Source::kDemand, 42));
    EXPECT_EQ(chk.violation_count(), 0u);
  }
  {
    // Non-transactional stores carry no WAL obligation.
    PersistOrderChecker chk(rules, space(), 1, /*fatal=*/false);
    chk.on_event(make_event(EventKind::kStoreDrained, word, kNoTx,
                            mem::Source::kDemand, 42));
    chk.on_event(make_event(EventKind::kNvmDurable, word, kNoTx,
                            mem::Source::kDemand, 42));
    EXPECT_EQ(chk.violation_count(), 0u);
  }
}

TEST(KilnFlushComplete, CommitWindowMustFlushEveryDirtiedLine) {
  CheckerRules rules;
  rules.kiln_flush_complete = true;
  const Addr word = heap_line(3);

  {
    PersistOrderChecker chk(rules, space(), 1, /*fatal=*/false);
    chk.on_event(make_event(EventKind::kStoreDrained, word, 3));
    chk.on_event(make_event(EventKind::kKilnCommitStart, 0, 3));
    chk.on_event(make_event(EventKind::kKilnCommitDone, 0, 3));
    ASSERT_EQ(chk.violation_count(), 1u);  // line never flushed
    EXPECT_EQ(chk.violations()[0].rule, Rule::kKilnFlushComplete);
    EXPECT_EQ(chk.violations()[0].line, line_of(word));
  }
  {
    PersistOrderChecker chk(rules, space(), 1, /*fatal=*/false);
    chk.on_event(make_event(EventKind::kStoreDrained, word, 3));
    chk.on_event(make_event(EventKind::kKilnCommitStart, 0, 3));
    chk.on_event(make_event(EventKind::kKilnFlushLine, line_of(word), 3));
    chk.on_event(make_event(EventKind::kKilnCommitDone, 0, 3));
    EXPECT_EQ(chk.violation_count(), 0u);
  }
}

TEST(ViolationRecord, CarriesCycleLineHistoryAndExactCountPastTheCap) {
  CheckerRules rules;
  rules.single_writer = true;
  rules.allowed_heap_sources = check::source_bit(mem::Source::kTxCache);
  PersistOrderChecker chk(rules, space(), 1, /*fatal=*/false);
  Cycle now = 0;
  chk.set_clock(&now);

  now = 41;
  chk.on_event(make_event(EventKind::kLlcWritebackDropped, heap_line(9)));
  now = 42;
  chk.on_event(make_event(EventKind::kNvmWrite, heap_line(9), 2,
                          mem::Source::kDemand));
  ASSERT_EQ(chk.violation_count(), 1u);
  const check::Violation& v = chk.violations()[0];
  EXPECT_EQ(v.cycle, 42u);
  EXPECT_EQ(v.line, heap_line(9));
  EXPECT_FALSE(v.message.empty());
  // History holds the prior same-line events (the dropped write-back and
  // the violating write itself), oldest first.
  ASSERT_GE(v.history.size(), 2u);
  EXPECT_EQ(v.history.front().first, 41u);
  EXPECT_EQ(v.history.front().second.kind, EventKind::kLlcWritebackDropped);

  // The stored list caps; the count stays exact.
  for (unsigned i = 0; i < 100; ++i) {
    chk.on_event(make_event(EventKind::kNvmWrite, heap_line(9), 2,
                            mem::Source::kDemand));
  }
  EXPECT_EQ(chk.violation_count(), 101u);
  EXPECT_EQ(chk.violations().size(), PersistOrderChecker::kMaxStoredViolations);
}

// ---------------------------------------------------------------------------
// Mutation domains: deliberately broken mechanism variants, shared with the
// fault-injection campaign tests via tests/mutation_domains.hpp.

using muttest::mutants;

// ---------------------------------------------------------------------------
// End-to-end harness: run a hand-built trace under a mechanism and report
// what the checker saw.

struct CheckResult {
  bool checker_present = false;
  std::uint64_t violations = 0;
  std::set<std::string> rule_ids;
};

CheckResult run_trace(Mechanism mech, CheckMode mode,
                      const core::Trace& trace) {
  SystemConfig cfg = SystemConfig::tiny();
  cfg.mechanism = mech;
  cfg.check = mode;
  sim::System sys(cfg);
  sys.load_trace(0, trace);
  sys.run();
  EXPECT_TRUE(sys.finished());
  CheckResult r;
  if (sys.checker() != nullptr) {
    r.checker_present = true;
    r.violations = sys.checker()->violation_count();
    for (const check::Violation& v : sys.checker()->violations()) {
      r.rule_ids.insert(check::rule_id(v.rule));
    }
  }
  return r;
}

/// The mutation contract: invisible with the checker off; detected and
/// attributed to exactly `rule` with the checker collecting.
void expect_mutation_detected(Mechanism mutant, const core::Trace& trace,
                              const char* rule) {
  const CheckResult off = run_trace(mutant, CheckMode::kOff, trace);
  EXPECT_FALSE(off.checker_present) << "checker off must mean no checker";

  const CheckResult on = run_trace(mutant, CheckMode::kCollect, trace);
  ASSERT_TRUE(on.checker_present);
  EXPECT_GE(on.violations, 1u) << rule << " mutation was not detected";
  EXPECT_EQ(on.rule_ids, std::set<std::string>{rule})
      << "violations must attribute to exactly the seeded rule";
}

core::Trace two_store_tx() {
  core::Trace t;
  t.push(core::MicroOp::tx_begin(1));
  t.push(core::MicroOp::store(heap_line(0), 1, true));
  t.push(core::MicroOp::store(heap_line(1), 2, true));
  t.push(core::MicroOp::tx_end());
  return t;
}

/// One committed persistent store, then enough persistent loads to thrash
/// the line out of the tiny LLC (4 KB / 64 B = 64 lines).
core::Trace store_then_thrash() {
  core::Trace t;
  t.push(core::MicroOp::tx_begin(1));
  t.push(core::MicroOp::store(heap_line(0), 1, true));
  t.push(core::MicroOp::tx_end());
  for (unsigned i = 1; i <= 512; ++i) {
    t.push(core::MicroOp::load(heap_line(i), true));
  }
  return t;
}

TEST(Mutation, TcLeakyWritebackTripsSingleWriter) {
  expect_mutation_detected(mutants().tc_leaky, store_then_thrash(),
                           "tc.single-writer");
}

TEST(Mutation, TcLifoDrainTripsFifoDrain) {
  expect_mutation_detected(mutants().tc_lifo, two_store_tx(),
                           "tc.fifo-drain");
}

TEST(Mutation, TcNoProbeTripsNoStaleRead) {
  // The store's line stays in the NTC (ACTIVE) for the whole transaction;
  // thrash it out of the caches inside the transaction, then re-load it —
  // the LLC miss reads NVM while the NTC still holds newer data.
  core::Trace t;
  t.push(core::MicroOp::tx_begin(1));
  t.push(core::MicroOp::store(heap_line(0), 1, true));
  for (unsigned i = 1; i <= 512; ++i) {
    t.push(core::MicroOp::load(heap_line(i), true));
  }
  t.push(core::MicroOp::load(heap_line(0), true));
  t.push(core::MicroOp::tx_end());
  expect_mutation_detected(mutants().tc_noprobe, t, "tc.no-stale-read");
}

TEST(Mutation, TcEagerCommitTripsUncommittedDrain) {
  core::Trace t;
  t.push(core::MicroOp::tx_begin(1));
  for (unsigned i = 0; i < 6; ++i) {
    t.push(core::MicroOp::store(heap_line(i), i + 1, true));
  }
  t.push(core::MicroOp::tx_end());
  expect_mutation_detected(mutants().tc_eager, t, "tc.uncommitted-drain");
}

TEST(Mutation, SpDataFirstTripsLogBeforeData) {
  core::Trace t;
  t.push(core::MicroOp::tx_begin(1));
  t.push(core::MicroOp::store(heap_line(0), 42, true));
  t.push(core::MicroOp::tx_end());
  expect_mutation_detected(mutants().sp_data_first, t, "sp.log-before-data");
}

TEST(Mutation, KilnLossyFlushTripsFlushIncomplete) {
  expect_mutation_detected(mutants().kiln_lossy, two_store_tx(),
                           "kiln.flush-incomplete");
}

// ---------------------------------------------------------------------------
// Healthy mechanisms stay clean on the same traces and on a real workload.

TEST(HealthyDomains, SameTracesProduceZeroViolations) {
  for (const Mechanism m : {Mechanism::kTc, Mechanism::kSp, Mechanism::kKiln,
                            Mechanism::kSpAdr}) {
    for (const core::Trace& t : {two_store_tx(), store_then_thrash()}) {
      const CheckResult r = run_trace(m, CheckMode::kCollect, t);
      EXPECT_EQ(r.violations, 0u)
          << persist::DomainRegistry::instance().info(m).name;
    }
  }
}

TEST(HealthyDomains, SmallWorkloadRunsCleanUnderEveryMatrixMechanism) {
  for (const Mechanism mech :
       persist::DomainRegistry::instance().matrix_mechanisms()) {
    SystemConfig cfg = SystemConfig::tiny();
    cfg.mechanism = mech;
    cfg.check = CheckMode::kCollect;
    workload::WorkloadParams p =
        workload::default_params(WorkloadKind::kHashtable);
    p.setup_elems = 200;
    p.ops = 100;
    workload::SimHeap heap(cfg.address_space, cfg.cores);
    sim::System sys(cfg);
    sys.load_trace(0, workload::generate(p, 0, heap, nullptr));
    sys.run();
    EXPECT_EQ(sys.metrics().check_violations, 0u)
        << persist::DomainRegistry::instance().info(mech).name;
  }
}

}  // namespace
}  // namespace ntcsim
