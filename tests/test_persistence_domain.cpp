// The pluggable persistence-domain layer: registry identity round-trips,
// per-domain Policy tables, recovery dispatch equivalence against the
// mechanism-specific recovery procedures, dynamic (registry-only)
// registration, and the TC-NODRAIN extension's semantics.
#include "persist/domain.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "recovery/recovery.hpp"
#include "sim/system.hpp"
#include "workload/workloads.hpp"

namespace ntcsim::persist {
namespace {

void expect_policy_eq(const Policy& a, const Policy& b,
                      const std::string& what) {
  EXPECT_EQ(a.route_stores_to_ntc, b.route_stores_to_ntc) << what;
  EXPECT_EQ(a.drop_persistent_llc_writeback, b.drop_persistent_llc_writeback)
      << what;
  EXPECT_EQ(a.probe_ntc_on_llc_miss, b.probe_ntc_on_llc_miss) << what;
  EXPECT_EQ(a.llc_nonvolatile, b.llc_nonvolatile) << what;
  EXPECT_EQ(a.flush_on_commit, b.flush_on_commit) << what;
  EXPECT_EQ(a.software_logging, b.software_logging) << what;
  EXPECT_EQ(a.adr_domain, b.adr_domain) << what;
  EXPECT_EQ(a.needs_recovery_images, b.needs_recovery_images) << what;
}

TEST(DomainRegistry, BuiltinsKeepTheirEnumIds) {
  const DomainRegistry& r = DomainRegistry::instance();
  EXPECT_EQ(r.info(Mechanism::kOptimal).name, "optimal");
  EXPECT_EQ(r.info(Mechanism::kSp).name, "sp");
  EXPECT_EQ(r.info(Mechanism::kTc).name, "tc");
  EXPECT_EQ(r.info(Mechanism::kKiln).name, "kiln");
  EXPECT_EQ(r.info(Mechanism::kSpAdr).name, "sp-adr");
}

TEST(DomainRegistry, NameToDomainToNameRoundTrips) {
  const DomainRegistry& r = DomainRegistry::instance();
  for (Mechanism m : r.all()) {
    const DomainInfo& info = r.info(m);
    Mechanism parsed{};
    ASSERT_TRUE(r.parse(info.name, parsed)) << info.name;
    EXPECT_EQ(parsed, m) << info.name;
    const std::unique_ptr<PersistenceDomain> domain = r.create(m);
    ASSERT_NE(domain, nullptr) << info.name;
    EXPECT_EQ(domain->name(), info.name);
    expect_policy_eq(domain->policy(), info.policy, info.name);
    for (const std::string& alias : info.aliases) {
      ASSERT_TRUE(r.parse(alias, parsed)) << alias;
      EXPECT_EQ(parsed, m) << alias;
    }
  }
  // Lookup is case-insensitive; unknown names fail without touching `out`.
  Mechanism parsed = Mechanism::kKiln;
  ASSERT_TRUE(r.parse("TC", parsed));
  EXPECT_EQ(parsed, Mechanism::kTc);
  parsed = Mechanism::kKiln;
  EXPECT_FALSE(r.parse("maglev", parsed));
  EXPECT_EQ(parsed, Mechanism::kKiln);
}

TEST(DomainRegistry, PoliciesMatchTheLegacyTable) {
  // The pre-registry policy_for() switch, restated literally: these flags
  // are the audited per-mechanism deltas of the paper and must not drift
  // when a domain's constructor changes.
  Policy optimal;  // all false

  Policy sp;
  sp.software_logging = true;
  sp.needs_recovery_images = true;

  Policy sp_adr = sp;
  sp_adr.adr_domain = true;

  Policy tc;
  tc.route_stores_to_ntc = true;
  tc.drop_persistent_llc_writeback = true;
  tc.probe_ntc_on_llc_miss = true;
  tc.needs_recovery_images = true;

  Policy kiln;
  kiln.llc_nonvolatile = true;
  kiln.flush_on_commit = true;
  kiln.needs_recovery_images = true;

  expect_policy_eq(policy_for(Mechanism::kOptimal), optimal, "optimal");
  expect_policy_eq(policy_for(Mechanism::kSp), sp, "sp");
  expect_policy_eq(policy_for(Mechanism::kSpAdr), sp_adr, "sp-adr");
  expect_policy_eq(policy_for(Mechanism::kTc), tc, "tc");
  expect_policy_eq(policy_for(Mechanism::kKiln), kiln, "kiln");

  // TC-NODRAIN is TC's policy: same machinery, different commit timing.
  const DomainInfo* nodrain = DomainRegistry::instance().find("tc-nodrain");
  ASSERT_NE(nodrain, nullptr);
  expect_policy_eq(nodrain->policy, tc, "tc-nodrain");
}

TEST(DomainRegistry, MatrixColumnsAreTheFigureOrderPlusExtensions) {
  const DomainRegistry& r = DomainRegistry::instance();
  const std::vector<Mechanism> m = r.matrix_mechanisms();
  ASSERT_GE(m.size(), 5u);
  EXPECT_EQ(m[0], Mechanism::kSp);
  EXPECT_EQ(m[1], Mechanism::kTc);
  EXPECT_EQ(m[2], Mechanism::kKiln);
  EXPECT_EQ(m[3], Mechanism::kOptimal);
  EXPECT_EQ(r.info(m[4]).name, "tc-nodrain");
  // SP-ADR stays an opt-in extension, outside the default matrix.
  for (Mechanism mech : m) EXPECT_NE(mech, Mechanism::kSpAdr);
}

TEST(DomainRegistry, DynamicRegistrationAssignsIdsPastTheBuiltins) {
  class NullDomain final : public PersistenceDomain {
   public:
    NullDomain() : PersistenceDomain(Policy{}) {}
    std::string_view name() const override { return "null"; }
    recovery::WordImage recover(
        const recovery::DurableState& durable) const override {
      return recovery::recover_none(durable);
    }
  };
  DomainRegistry r;  // private registry; instance() stays untouched
  DomainInfo info;
  info.name = "null";
  info.display = "Null";
  info.aliases = {"nil"};
  info.make = [] { return std::make_unique<NullDomain>(); };
  const Mechanism id = r.add(std::move(info));
  EXPECT_GE(static_cast<int>(id), kNumBuiltinMechanisms);
  Mechanism parsed{};
  ASSERT_TRUE(r.parse("NIL", parsed));
  EXPECT_EQ(parsed, id);
  EXPECT_EQ(r.create(id)->name(), "null");
  EXPECT_TRUE(r.matrix_mechanisms().empty());  // default rank is -1
}

// ---------------------------------------------------------------------------
// Whole-system checks on a seeded workload.

/// Run `mech_name` on the seeded workload for `cycles` cycles of the
/// measured phase (0 = to completion) and return the system.
std::unique_ptr<sim::System> run_seeded(const std::string& mech_name,
                                        Cycle cycles = 0) {
  SystemConfig cfg = SystemConfig::tiny();
  Mechanism mech{};
  EXPECT_TRUE(DomainRegistry::instance().parse(mech_name, mech));
  cfg.mechanism = mech;
  cfg.track_recovery_state = true;
  workload::WorkloadParams p =
      workload::default_params(WorkloadKind::kHashtable);
  p.setup_elems = 300;
  p.ops = 200;
  p.seed = 7;
  workload::SimHeap heap(cfg.address_space, cfg.cores);
  workload::TraceBundle b = workload::generate_phased(p, 0, heap, nullptr);
  auto sys = std::make_unique<sim::System>(cfg);
  sys->load_trace(0, std::move(b.setup));
  sys->run();
  sys->reset_stats();
  sys->load_trace(0, std::move(b.measured));
  if (cycles == 0) {
    sys->run();
  } else {
    sys->run_for(cycles);
  }
  return sys;
}

std::vector<std::pair<Addr, Word>> flatten(const recovery::WordImage& img) {
  std::vector<std::pair<Addr, Word>> v;
  img.for_each([&v](Addr a, Word w) { v.emplace_back(a, w); });
  std::sort(v.begin(), v.end());
  return v;
}

/// The application's durable state: heap words only, without the reserved
/// log/shadow scratch regions (their raw bytes depend on spill timing,
/// which legitimately differs across mechanisms).
std::vector<std::pair<Addr, Word>> heap_words(const recovery::WordImage& img,
                                              const AddressSpace& space) {
  std::vector<std::pair<Addr, Word>> v = flatten(img);
  std::erase_if(v, [&space](const std::pair<Addr, Word>& w) {
    return w.first >= space.heap_base() + space.heap_bytes();
  });
  return v;
}

TEST(DomainRecovery, DispatchMatchesTheMechanismProcedures) {
  // Crash mid-measured-phase: the domain's recover() must be the exact
  // mechanism procedure, fed the exact crash-time state.
  {
    auto sys = run_seeded("optimal", 5000);
    EXPECT_EQ(flatten(sys->crash_and_recover()),
              flatten(recovery::recover_none(*sys->durable())));
  }
  for (const char* name : {"sp", "sp-adr"}) {
    auto sys = run_seeded(name, 5000);
    EXPECT_EQ(flatten(sys->crash_and_recover()),
              flatten(recovery::recover_sp(*sys->durable(),
                                           sys->config().address_space,
                                           sys->config().cores)))
        << name;
  }
  for (const char* name : {"tc", "tc-nodrain"}) {
    auto sys = run_seeded(name, 5000);
    std::vector<recovery::NtcSnapshot> snaps;
    for (CoreId c = 0; c < sys->config().cores; ++c) {
      snaps.push_back(sys->ntc(c)->snapshot());
    }
    EXPECT_EQ(flatten(sys->crash_and_recover()),
              flatten(recovery::recover_tc(*sys->durable(), snaps)))
        << name;
  }
  {
    auto sys = run_seeded("kiln", 5000);
    EXPECT_EQ(flatten(sys->crash_and_recover()),
              flatten(recovery::recover_kiln(*sys->durable())));
  }
}

TEST(TcNodrain, CommitLatencyNoWorseThanTc) {
  auto tc = run_seeded("tc");
  auto nodrain = run_seeded("tc-nodrain");
  const sim::Metrics mt = tc->metrics();
  const sim::Metrics mn = nodrain->metrics();
  // Same work commits under both...
  EXPECT_EQ(mn.committed_txs, mt.committed_txs);
  EXPECT_EQ(mn.retired_uops, mt.retired_uops);
  // ...but TX_END never stalls on store-buffer drain, so the measured
  // phase cannot be longer than TC's.
  EXPECT_LE(mn.cycles, mt.cycles);
  EXPECT_EQ(nodrain->stats().counter_value("core0.stall.txend_drain"), 0u);
}

TEST(TcNodrain, RecoversTheSameImageAsTcAfterACompleteRun) {
  // After full completion (every store drained, every commit issued) the
  // lazy commit path must leave exactly the application image TC leaves.
  // Compared over the persistent heap: the shadow scratch region's raw
  // bytes differ because the two mechanisms spill at different cycles.
  auto tc = run_seeded("tc");
  auto nodrain = run_seeded("tc-nodrain");
  ASSERT_TRUE(tc->finished());
  ASSERT_TRUE(nodrain->finished());
  const AddressSpace& space = tc->config().address_space;
  EXPECT_EQ(heap_words(nodrain->crash_and_recover(), space),
            heap_words(tc->crash_and_recover(), space));
}

}  // namespace
}  // namespace ntcsim::persist
