#include "persist/policy.hpp"

#include <gtest/gtest.h>

namespace ntcsim::persist {
namespace {

TEST(Policy, OptimalChangesNothing) {
  const Policy p = policy_for(Mechanism::kOptimal);
  EXPECT_FALSE(p.route_stores_to_ntc);
  EXPECT_FALSE(p.drop_persistent_llc_writeback);
  EXPECT_FALSE(p.probe_ntc_on_llc_miss);
  EXPECT_FALSE(p.llc_nonvolatile);
  EXPECT_FALSE(p.flush_on_commit);
  EXPECT_FALSE(p.software_logging);
}

TEST(Policy, TcIsTheSidePathOnly) {
  // The paper's point: TC touches nothing in the existing hierarchy or
  // controller except the drop/probe hooks and the NTC routing.
  const Policy p = policy_for(Mechanism::kTc);
  EXPECT_TRUE(p.route_stores_to_ntc);
  EXPECT_TRUE(p.drop_persistent_llc_writeback);
  EXPECT_TRUE(p.probe_ntc_on_llc_miss);
  EXPECT_FALSE(p.llc_nonvolatile);
  EXPECT_FALSE(p.flush_on_commit);
  EXPECT_FALSE(p.software_logging);
}

TEST(Policy, SpIsSoftwareOnly) {
  const Policy p = policy_for(Mechanism::kSp);
  EXPECT_TRUE(p.software_logging);
  EXPECT_FALSE(p.route_stores_to_ntc);
  EXPECT_FALSE(p.llc_nonvolatile);
}

TEST(Policy, KilnModifiesTheLlc) {
  const Policy p = policy_for(Mechanism::kKiln);
  EXPECT_TRUE(p.llc_nonvolatile);
  EXPECT_TRUE(p.flush_on_commit);
  EXPECT_FALSE(p.route_stores_to_ntc);
  EXPECT_FALSE(p.drop_persistent_llc_writeback);
  EXPECT_FALSE(p.software_logging);
}

}  // namespace
}  // namespace ntcsim::persist
