// Self-profiler unit tests: scope accumulation/nesting, the hard
// requirement that --profile has zero observable effect on simulated
// metrics, and the JSON report round-trip.
#include <gtest/gtest.h>

#include <chrono>
#include <fstream>
#include <sstream>
#include <thread>

#include "sim/experiment.hpp"
#include "sim/profiler.hpp"

namespace ntcsim::sim {
namespace {

std::string temp_report_path(const char* name) {
  return ::testing::TempDir() + name;
}

std::string slurp(const std::string& path) {
  std::ifstream f(path);
  std::stringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

TEST(Profiler, ScopesAccumulateAndNest) {
  static ProfSite outer("test.outer");
  static ProfSite inner("test.inner");
  const std::string path = temp_report_path("prof_nest.json");
  {
    ProfileSession session(path);
    ASSERT_TRUE(session.owner());
    ASSERT_TRUE(Profiler::enabled());
    for (int i = 0; i < 3; ++i) {
      ProfScope so(outer);
      {
        ProfScope si(inner);
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
  }
  EXPECT_FALSE(Profiler::enabled());
  EXPECT_EQ(outer.calls(), 3u);
  EXPECT_EQ(inner.calls(), 3u);
  EXPECT_GT(inner.ns(), 0u);
  // The outer scope contains the inner one, so it accumulates at least as
  // much wall time.
  EXPECT_GE(outer.ns(), inner.ns());
}

TEST(Profiler, DisabledScopesRecordNothing) {
  static ProfSite site("test.disabled");
  site.reset();
  ASSERT_FALSE(Profiler::enabled());
  {
    ProfScope s(site);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(site.calls(), 0u);
  EXPECT_EQ(site.ns(), 0u);
}

TEST(Profiler, NestedSessionsAreInert) {
  const std::string outer_path = temp_report_path("prof_outer.json");
  const std::string inner_path = temp_report_path("prof_inner.json");
  {
    ProfileSession outer(outer_path);
    ASSERT_TRUE(outer.owner());
    {
      ProfileSession inner(inner_path);
      EXPECT_FALSE(inner.owner());
      EXPECT_TRUE(Profiler::enabled());  // inner dtor must not disable
    }
    EXPECT_TRUE(Profiler::enabled());
  }
  EXPECT_FALSE(Profiler::enabled());
  std::ifstream inner_file(inner_path);
  EXPECT_FALSE(inner_file.good()) << "inert session must not write a report";
}

// The contract the perf harness depends on: profiling observes, never
// perturbs. Every simulated metric must be bit-identical with and without
// an active session.
TEST(Profiler, ProfilingHasZeroEffectOnSimulatedMetrics) {
  SystemConfig cfg = SystemConfig::tiny();
  cfg.cores = 1;
  ExperimentOptions opts;
  opts.scale = 0.05;
  opts.setup_scale = 0.05;

  const Metrics plain =
      run_cell(Mechanism::kTc, WorkloadKind::kHashtable, cfg, opts);
  Metrics profiled;
  {
    ProfileSession session(temp_report_path("prof_effect.json"));
    ASSERT_TRUE(session.owner());
    profiled = run_cell(Mechanism::kTc, WorkloadKind::kHashtable, cfg, opts);
  }

  EXPECT_EQ(plain.cycles, profiled.cycles);
  EXPECT_EQ(plain.retired_uops, profiled.retired_uops);
  EXPECT_EQ(plain.committed_txs, profiled.committed_txs);
  EXPECT_EQ(plain.nvm_writes, profiled.nvm_writes);
  EXPECT_EQ(plain.nvm_reads, profiled.nvm_reads);
  EXPECT_EQ(plain.dram_writes, profiled.dram_writes);
  EXPECT_EQ(plain.llc_miss_rate, profiled.llc_miss_rate);
  EXPECT_EQ(plain.ipc, profiled.ipc);
  EXPECT_EQ(plain.pload_latency, profiled.pload_latency);
}

TEST(Profiler, ReportRoundTripsThroughParseCheck) {
  SystemConfig cfg = SystemConfig::tiny();
  cfg.cores = 1;
  ExperimentOptions opts;
  opts.scale = 0.05;
  opts.setup_scale = 0.05;
  const std::string path = temp_report_path("prof_roundtrip.json");
  {
    ProfileSession session(path);
    ASSERT_TRUE(session.owner());
    run_cell(Mechanism::kOptimal, WorkloadKind::kSps, cfg, opts);
  }
  const std::string text = slurp(path);
  ASSERT_FALSE(text.empty());
  EXPECT_TRUE(json_parse_check(text)) << text;
  // The report carries the fields CI's perf smoke consumes.
  EXPECT_NE(text.find("\"wall_seconds\""), std::string::npos);
  EXPECT_NE(text.find("\"cells_per_sec\""), std::string::npos);
  EXPECT_NE(text.find("\"cell_times\""), std::string::npos);
  EXPECT_NE(text.find("\"phases\""), std::string::npos);
  EXPECT_NE(text.find("step.cores"), std::string::npos);
  EXPECT_NE(text.find("cell.measured"), std::string::npos);
}

TEST(Profiler, JsonParseCheckAcceptsValidRejectsMalformed) {
  EXPECT_TRUE(json_parse_check("{}"));
  EXPECT_TRUE(json_parse_check("[]"));
  EXPECT_TRUE(json_parse_check("{\"a\": [1, 2.5, -3e4], \"b\": \"x\\\"y\"}"));
  EXPECT_TRUE(json_parse_check("{\"t\": true, \"n\": null}"));
  EXPECT_FALSE(json_parse_check(""));
  EXPECT_FALSE(json_parse_check("{"));
  EXPECT_FALSE(json_parse_check("{\"a\": }"));
  EXPECT_FALSE(json_parse_check("{\"a\": 1,}"));
  EXPECT_FALSE(json_parse_check("{\"a\": 1} trailing"));
  EXPECT_FALSE(json_parse_check("{a: 1}"));
}

}  // namespace
}  // namespace ntcsim::sim
