// tFAW and write-to-read turnaround (config-gated; disabled in the
// published configuration so they are pure extensions).
#include <gtest/gtest.h>

#include "mem/memory_controller.hpp"

namespace ntcsim::mem {
namespace {

MemCtrlConfig base_cfg() {
  MemCtrlConfig c;
  c.ranks = 1;
  c.banks_per_rank = 8;
  c.read_queue = 8;
  c.write_queue = 8;
  c.bus_latency = 2;
  c.timing.row_hit = 10;
  c.timing.row_miss = 30;
  c.timing.burst = 2;
  return c;
}

struct Harness {
  EventQueue events;
  StatSet stats;
  MemoryController mc;
  Cycle now = 0;
  explicit Harness(const MemCtrlConfig& c) : mc("nvm", c, events, stats) {}
  void run(Cycle n) {
    for (Cycle i = 0; i < n; ++i) {
      events.drain_until(now);
      mc.tick(now);
      ++now;
    }
    events.drain_until(now);
  }
};

Cycle time_five_activations(Cycle tfaw) {
  MemCtrlConfig c = base_cfg();
  c.tfaw = tfaw;
  Harness h(c);
  Cycle last_done = 0;
  int remaining = 5;
  for (unsigned i = 0; i < 5; ++i) {
    MemRequest r;
    r.op = MemOp::kRead;
    r.line_addr = i * kLineBytes;  // five different banks: five activations
    r.on_complete = [&](const MemRequest&) {
      --remaining;
      last_done = h.now;
    };
    EXPECT_TRUE(h.mc.enqueue(std::move(r), h.now));
  }
  h.run(5000);
  EXPECT_EQ(remaining, 0);
  return last_done;
}

TEST(RankConstraints, TfawThrottlesActivationBursts) {
  const Cycle unconstrained = time_five_activations(0);
  const Cycle constrained = time_five_activations(400);
  // The 5th activation must wait out the window.
  EXPECT_GE(constrained, 400u);
  EXPECT_LT(unconstrained, 200u);
}

TEST(RankConstraints, TwtrDelaysReadAfterWrite) {
  auto read_after_write = [](Cycle twtr) {
    MemCtrlConfig c = base_cfg();
    c.twtr = twtr;
    Harness h(c);
    MemRequest w;
    w.op = MemOp::kWrite;
    w.line_addr = 0;
    EXPECT_TRUE(h.mc.enqueue(std::move(w), h.now));
    h.run(1);  // the write issues first (idle channel)
    Cycle done = 0;
    MemRequest r;
    r.op = MemOp::kRead;
    r.line_addr = kLineBytes;  // other bank, same rank
    r.on_complete = [&](const MemRequest&) { done = h.now; };
    EXPECT_TRUE(h.mc.enqueue(std::move(r), h.now));
    h.run(3000);
    return done;
  };
  const Cycle fast = read_after_write(0);
  const Cycle slow = read_after_write(500);
  EXPECT_GT(slow, fast + 300);
}

TEST(RankConstraints, DisabledByDefaultInPaperPreset) {
  const SystemConfig c = SystemConfig::paper();
  EXPECT_EQ(c.nvm.tfaw, 0u);
  EXPECT_EQ(c.nvm.twtr, 0u);
  EXPECT_EQ(c.dram.tfaw, 0u);
}

}  // namespace
}  // namespace ntcsim::mem
