// Fuzz the atomicity checker itself: build random journals, construct
// recovered states that ARE valid prefixes (must pass, with the right
// prefix length) and states with injected corruption (must fail). The
// checker is the oracle for every crash-injection test, so it gets its own
// adversarial coverage.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/rng.hpp"
#include "recovery/recovery.hpp"

namespace ntcsim::recovery {
namespace {

struct FuzzCase {
  std::uint64_t seed;
  unsigned cores;
  unsigned txs_per_core;
  unsigned max_writes;
  unsigned word_space;  ///< Small => frequent cross-tx overwrites.
};

class CheckerFuzz : public ::testing::TestWithParam<FuzzCase> {
 protected:
  void build(const FuzzCase& fc) {
    rng_ = std::make_unique<Rng>(fc.seed);
    journal_ = std::make_unique<Journal>(fc.cores);
    writes_.assign(fc.cores, {});
    for (CoreId c = 0; c < fc.cores; ++c) {
      for (unsigned t = 0; t < fc.txs_per_core; ++t) {
        journal_->begin_tx(c, t + 1);
        const unsigned n = 1 + static_cast<unsigned>(rng_->below(fc.max_writes));
        std::vector<std::pair<Addr, Word>> tx;
        for (unsigned w = 0; w < n; ++w) {
          // Per-core address spaces are disjoint, like the workloads.
          const Addr a = (c * 0x100000ULL) + rng_->below(fc.word_space) * 8;
          const Word v = rng_->next() | 1;  // nonzero: distinguishable from cold NVM
          journal_->write(c, a, v);
          tx.emplace_back(a, v);
        }
        journal_->end_tx(c);
        writes_[c].push_back(std::move(tx));
      }
    }
  }

  /// Recovered state = exact replay of prefix `k[c]` per core.
  WordImage replay_prefix(const std::vector<unsigned>& k) const {
    WordImage img;
    for (CoreId c = 0; c < writes_.size(); ++c) {
      for (unsigned t = 0; t < k[c]; ++t) {
        for (const auto& [a, v] : writes_[c][t]) img.store(a, v);
      }
    }
    return img;
  }

  std::unique_ptr<Rng> rng_;
  std::unique_ptr<Journal> journal_;
  std::vector<std::vector<std::vector<std::pair<Addr, Word>>>> writes_;
};

TEST_P(CheckerFuzz, ExactPrefixesAreConsistent) {
  const FuzzCase fc = GetParam();
  build(fc);
  for (int trial = 0; trial < 8; ++trial) {
    std::vector<unsigned> k(fc.cores);
    for (auto& v : k) v = static_cast<unsigned>(rng_->below(fc.txs_per_core + 1));
    const WordImage img = replay_prefix(k);
    const auto report = check_atomicity(img, *journal_);
    ASSERT_TRUE(report.consistent) << report.violation;
    for (CoreId c = 0; c < fc.cores; ++c) {
      // The reported prefix can exceed k[c] when later transactions are
      // idempotent on the recovered state, but never undershoot it.
      EXPECT_GE(report.durable_tx_prefix[c], k[c]) << "core " << c;
    }
  }
}

TEST_P(CheckerFuzz, ForeignWordIsFlagged) {
  const FuzzCase fc = GetParam();
  build(fc);
  std::vector<unsigned> k(fc.cores, fc.txs_per_core / 2);
  WordImage img = replay_prefix(k);
  // Corrupt one journaled word with a value no transaction ever wrote.
  const Addr victim = 0 * 0x100000ULL + (fc.word_space / 2) * 8;
  bool journaled = false;
  for (const auto& tx : writes_[0]) {
    for (const auto& [a, _] : tx) journaled |= a == victim;
  }
  if (!journaled) GTEST_SKIP() << "victim word untouched by this journal";
  img.store(victim, 0xDEADDEADDEADDEADULL);
  const auto report = check_atomicity(img, *journal_);
  EXPECT_FALSE(report.consistent);
}

TEST_P(CheckerFuzz, HalfAppliedTailIsFlagged) {
  const FuzzCase fc = GetParam();
  build(fc);
  std::vector<unsigned> k(fc.cores, fc.txs_per_core - 1);
  WordImage img = replay_prefix(k);
  // Apply only the first write of the last transaction of core 0.
  const auto& tail = writes_[0].back();
  if (tail.size() < 2) GTEST_SKIP() << "tail transaction too small to tear";
  img.store(tail.front().first, tail.front().second);
  // Tearing is only observable if the first write's value differs from the
  // prefix state at that address AND the rest of the tx changes something.
  const WordImage clean = replay_prefix(k);
  bool observable = clean.load(tail.front().first) != tail.front().second;
  for (std::size_t i = 1; i < tail.size() && observable; ++i) {
    // A later same-word write inside the tx would mask the tear.
    if (tail[i].first == tail.front().first) observable = false;
  }
  if (!observable) GTEST_SKIP() << "tear not observable for this journal";
  const auto report = check_atomicity(img, *journal_);
  EXPECT_FALSE(report.consistent);
}

INSTANTIATE_TEST_SUITE_P(
    Journals, CheckerFuzz,
    ::testing::Values(FuzzCase{11, 1, 20, 4, 16},
                      FuzzCase{12, 2, 15, 6, 8},
                      FuzzCase{13, 4, 10, 3, 64},
                      FuzzCase{14, 1, 40, 8, 4},
                      FuzzCase{15, 2, 25, 2, 256},
                      FuzzCase{16, 4, 12, 10, 12}),
    [](const auto& info) { return "seed" + std::to_string(info.param.seed); });

}  // namespace
}  // namespace ntcsim::recovery
