// DRAM refresh (tREFI/tRFC): periodic rank blackouts delay accesses on the
// DRAM channel; the NVM channel never refreshes.
#include <gtest/gtest.h>

#include "mem/memory_controller.hpp"

namespace ntcsim::mem {
namespace {

MemCtrlConfig cfg_with_refresh(Cycle interval, Cycle trfc) {
  MemCtrlConfig c;
  c.ranks = 1;
  c.banks_per_rank = 2;
  c.read_queue = 4;
  c.write_queue = 8;
  c.bus_latency = 2;
  c.timing.row_hit = 10;
  c.timing.row_miss = 30;
  c.timing.burst = 4;
  c.refresh_interval = interval;
  c.refresh_cycles = trfc;
  return c;
}

struct Harness {
  EventQueue events;
  StatSet stats;
  MemoryController mc;
  Cycle now = 0;

  explicit Harness(const MemCtrlConfig& cfg)
      : mc("dram", cfg, events, stats) {}

  void run(Cycle n) {
    for (Cycle i = 0; i < n; ++i) {
      events.drain_until(now);
      mc.tick(now);
      ++now;
    }
    events.drain_until(now);
  }
};

TEST(Refresh, FiresPeriodically) {
  Harness h(cfg_with_refresh(500, 50));
  h.run(5000);
  // Roughly one refresh per interval after the staggered start.
  const auto n = h.stats.counter_value("dram.refreshes");
  EXPECT_GE(n, 8u);
  EXPECT_LE(n, 11u);
}

TEST(Refresh, DisabledWhenIntervalZero) {
  Harness h(cfg_with_refresh(0, 50));
  h.run(5000);
  EXPECT_EQ(h.stats.counter_value("dram.refreshes"), 0u);
}

TEST(Refresh, DelaysCollidingAccess) {
  // Issue a read right as the refresh window opens: it must wait tRFC.
  Harness h(cfg_with_refresh(500, 200));
  h.run(501);  // first refresh at ~500 blocks the rank until ~700
  Cycle done_at = 0;
  MemRequest r;
  r.op = MemOp::kRead;
  r.line_addr = 0;
  r.on_complete = [&](const MemRequest&) { done_at = h.now; };
  ASSERT_TRUE(h.mc.enqueue(std::move(r), h.now));
  h.run(600);
  ASSERT_GT(done_at, 0u);
  // Without refresh: ~30+4+2 cycles. With the rank blocked to ~700: later.
  EXPECT_GT(done_at, 690u);
}

TEST(Refresh, ClosesRowBuffers) {
  Harness h(cfg_with_refresh(400, 40));
  // Open a row.
  MemRequest r;
  r.op = MemOp::kRead;
  r.line_addr = 0;
  ASSERT_TRUE(h.mc.enqueue(r, h.now));
  h.run(100);
  EXPECT_EQ(h.stats.counter_value("dram.row_misses"), 1u);
  // Cross a refresh boundary, then access the same row again: the refresh
  // closed it, so this is another row miss.
  h.run(500);
  ASSERT_GE(h.stats.counter_value("dram.refreshes"), 1u);
  ASSERT_TRUE(h.mc.enqueue(r, h.now));
  h.run(100);
  EXPECT_EQ(h.stats.counter_value("dram.row_misses"), 2u);
  EXPECT_EQ(h.stats.counter_value("dram.row_hits"), 0u);
}

TEST(Refresh, PaperPresetRefreshesDramOnly) {
  const SystemConfig cfg = SystemConfig::paper();
  EXPECT_GT(cfg.dram.refresh_interval, 0u);
  EXPECT_EQ(cfg.nvm.refresh_interval, 0u) << "STT-RAM must not refresh";
}

}  // namespace
}  // namespace ntcsim::mem
