// Golden-run regression guard: a fixed, deterministic tiny run per
// mechanism with recorded reference metrics. Timing-model changes that
// move these numbers by more than the tolerance are either intentional
// (update the goldens and say why in the commit) or a performance-model
// regression this test just caught. Functional counts (retired µops,
// transactions) are exact.
#include <gtest/gtest.h>

#include "sim/system.hpp"
#include "workload/workloads.hpp"

namespace ntcsim::sim {
namespace {

struct Golden {
  Mechanism mech;
  Cycle cycles;
  std::uint64_t retired;
  std::uint64_t txs;
  std::uint64_t nvm_writes;
  double llc_miss_rate;
};

// Reference: tiny 1-core machine, hashtable, setup 500 / ops 300 / seed 42,
// compute_per_op 64. Captured 2026-07-06.
constexpr Golden kGoldens[] = {
    {Mechanism::kOptimal, 25314, 21567, 300, 204, 0.8214},
    {Mechanism::kTc, 39975, 21567, 300, 440, 0.8277},
    {Mechanism::kSp, 91504, 24310, 300, 795, 0.8309},
    {Mechanism::kKiln, 30440, 21567, 300, 218, 0.8129},
};

class RegressionMetrics : public ::testing::TestWithParam<Golden> {};

TEST_P(RegressionMetrics, StaysWithinTolerance) {
  const Golden g = GetParam();
  SystemConfig cfg = SystemConfig::tiny();
  cfg.cores = 1;
  cfg.mechanism = g.mech;
  workload::WorkloadParams p =
      workload::default_params(WorkloadKind::kHashtable);
  p.setup_elems = 500;
  p.ops = 300;
  p.seed = 42;
  p.compute_per_op = 64;

  workload::SimHeap heap(cfg.address_space, 1);
  workload::TraceBundle b = workload::generate_phased(p, 0, heap, nullptr);
  System sys(cfg);
  sys.load_trace(0, std::move(b.setup));
  sys.run();
  sys.reset_stats();
  sys.load_trace(0, std::move(b.measured));
  sys.run();
  const Metrics m = sys.metrics();

  // Functional counts are deterministic and exact.
  EXPECT_EQ(m.retired_uops, g.retired);
  EXPECT_EQ(m.committed_txs, g.txs);

  // Timing and traffic may drift with intentional model changes: 25 %.
  EXPECT_NEAR(static_cast<double>(m.cycles), static_cast<double>(g.cycles),
              0.25 * static_cast<double>(g.cycles));
  EXPECT_NEAR(static_cast<double>(m.nvm_writes),
              static_cast<double>(g.nvm_writes),
              0.25 * static_cast<double>(g.nvm_writes));
  EXPECT_NEAR(m.llc_miss_rate, g.llc_miss_rate, 0.15);
}

INSTANTIATE_TEST_SUITE_P(Goldens, RegressionMetrics,
                         ::testing::ValuesIn(kGoldens),
                         [](const auto& info) {
                           std::string n(to_string(info.param.mech));
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

// Hardware-independent cost guards on the simulator's own hot path.
// These counts are deterministic (no wall clock involved), so they pin
// the algorithmic costs directly: a change that reintroduces per-access
// by-name stat lookups or floods the event queue fails here even if the
// machine running CI is fast enough to hide it.

// Runs the golden cell up to the end of setup, then the measured phase,
// reporting the two cost counters across the measured phase only.
struct HotPathCost {
  std::uint64_t event_pushes;
  std::uint64_t retired;
};

HotPathCost measure_hot_path(Mechanism mech) {
  SystemConfig cfg = SystemConfig::tiny();
  cfg.cores = 1;
  cfg.mechanism = mech;
  workload::WorkloadParams p =
      workload::default_params(WorkloadKind::kHashtable);
  p.setup_elems = 500;
  p.ops = 300;
  p.seed = 42;
  p.compute_per_op = 64;

  workload::SimHeap heap(cfg.address_space, 1);
  workload::TraceBundle b = workload::generate_phased(p, 0, heap, nullptr);
  System sys(cfg);
  sys.load_trace(0, std::move(b.setup));
  sys.run();
  sys.reset_stats();
  const std::uint64_t pushes_before = sys.events().total_pushes();
  sys.load_trace(0, std::move(b.measured));
  sys.run();
  HotPathCost cost;
  cost.event_pushes = sys.events().total_pushes() - pushes_before;
  cost.retired = sys.metrics().retired_uops;
  return cost;
}

// Components resolving stats once at construction (StatHandle) is now a
// static invariant: tests/test_ntclint.cpp runs the ntclint hot-stats
// rule over the whole of src/, which covers every component rather than
// the few this suite happened to execute.

// Events are scheduled per memory-system transaction, not per cycle or
// per µop, so pushes are a small fraction of retired work. Bound them
// at 2x the measured ceiling so intentional model changes have headroom
// while a per-cycle push (which would be >= cycles, ~100x this) fails.
TEST(RegressionMetrics, EventQueuePushesStayProportionalToWork) {
  for (const Golden& g : kGoldens) {
    const HotPathCost cost = measure_hot_path(g.mech);
    ASSERT_GT(cost.retired, 0u);
    const double per_uop = static_cast<double>(cost.event_pushes) /
                           static_cast<double>(cost.retired);
    EXPECT_LE(per_uop, 0.60) << to_string(g.mech) << ": " << cost.event_pushes
                             << " pushes / " << cost.retired << " uops";
  }
}

// The qualitative paper ordering, pinned as a regression property.
TEST(RegressionMetrics, MechanismOrderingIsStable) {
  std::map<Mechanism, Cycle> cycles;
  for (const Golden& g : kGoldens) cycles[g.mech] = g.cycles;
  EXPECT_LT(cycles[Mechanism::kOptimal], cycles[Mechanism::kKiln]);
  EXPECT_LT(cycles[Mechanism::kKiln], cycles[Mechanism::kSp]);
}

}  // namespace
}  // namespace ntcsim::sim
