// Golden-run regression guard: a fixed, deterministic tiny run per
// mechanism with recorded reference metrics. Timing-model changes that
// move these numbers by more than the tolerance are either intentional
// (update the goldens and say why in the commit) or a performance-model
// regression this test just caught. Functional counts (retired µops,
// transactions) are exact.
#include <gtest/gtest.h>

#include "sim/system.hpp"
#include "workload/workloads.hpp"

namespace ntcsim::sim {
namespace {

struct Golden {
  Mechanism mech;
  Cycle cycles;
  std::uint64_t retired;
  std::uint64_t txs;
  std::uint64_t nvm_writes;
  double llc_miss_rate;
};

// Reference: tiny 1-core machine, hashtable, setup 500 / ops 300 / seed 42,
// compute_per_op 64. Captured 2026-07-06.
constexpr Golden kGoldens[] = {
    {Mechanism::kOptimal, 25314, 21567, 300, 204, 0.8214},
    {Mechanism::kTc, 39975, 21567, 300, 440, 0.8277},
    {Mechanism::kSp, 91504, 24310, 300, 795, 0.8309},
    {Mechanism::kKiln, 30440, 21567, 300, 218, 0.8129},
};

class RegressionMetrics : public ::testing::TestWithParam<Golden> {};

TEST_P(RegressionMetrics, StaysWithinTolerance) {
  const Golden g = GetParam();
  SystemConfig cfg = SystemConfig::tiny();
  cfg.cores = 1;
  cfg.mechanism = g.mech;
  workload::WorkloadParams p =
      workload::default_params(WorkloadKind::kHashtable);
  p.setup_elems = 500;
  p.ops = 300;
  p.seed = 42;
  p.compute_per_op = 64;

  workload::SimHeap heap(cfg.address_space, 1);
  workload::TraceBundle b = workload::generate_phased(p, 0, heap, nullptr);
  System sys(cfg);
  sys.load_trace(0, std::move(b.setup));
  sys.run();
  sys.reset_stats();
  sys.load_trace(0, std::move(b.measured));
  sys.run();
  const Metrics m = sys.metrics();

  // Functional counts are deterministic and exact.
  EXPECT_EQ(m.retired_uops, g.retired);
  EXPECT_EQ(m.committed_txs, g.txs);

  // Timing and traffic may drift with intentional model changes: 25 %.
  EXPECT_NEAR(static_cast<double>(m.cycles), static_cast<double>(g.cycles),
              0.25 * static_cast<double>(g.cycles));
  EXPECT_NEAR(static_cast<double>(m.nvm_writes),
              static_cast<double>(g.nvm_writes),
              0.25 * static_cast<double>(g.nvm_writes));
  EXPECT_NEAR(m.llc_miss_rate, g.llc_miss_rate, 0.15);
}

INSTANTIATE_TEST_SUITE_P(Goldens, RegressionMetrics,
                         ::testing::ValuesIn(kGoldens),
                         [](const auto& info) {
                           std::string n(to_string(info.param.mech));
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

// The qualitative paper ordering, pinned as a regression property.
TEST(RegressionMetrics, MechanismOrderingIsStable) {
  std::map<Mechanism, Cycle> cycles;
  for (const Golden& g : kGoldens) cycles[g.mech] = g.cycles;
  EXPECT_LT(cycles[Mechanism::kOptimal], cycles[Mechanism::kKiln]);
  EXPECT_LT(cycles[Mechanism::kKiln], cycles[Mechanism::kSp]);
}

}  // namespace
}  // namespace ntcsim::sim
