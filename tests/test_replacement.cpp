#include <gtest/gtest.h>

#include <set>

#include "cache/array.hpp"

namespace ntcsim::cache {
namespace {

CacheConfig cfg(ReplacementPolicy p) {
  CacheConfig c{512, 2, 1, 4, 4};  // 2 ways x 4 sets
  c.replacement = p;
  return c;
}

TEST(Replacement, SrripEvictsNonReusedLineFirst) {
  CacheArray c(cfg(ReplacementPolicy::kSrrip));
  std::optional<Eviction> ev;
  c.allocate(0, ev);
  c.allocate(256, ev);
  // Re-reference 0 repeatedly: its RRPV pins to 0; 256 stays at 2.
  c.lookup(0);
  c.lookup(0);
  ev.reset();
  c.allocate(512, ev);
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->line_addr, 256u);
  EXPECT_NE(c.lookup(0, false), nullptr);
}

TEST(Replacement, SrripAgesWhenNoDistantLine) {
  CacheArray c(cfg(ReplacementPolicy::kSrrip));
  std::optional<Eviction> ev;
  c.allocate(0, ev);
  c.allocate(256, ev);
  c.lookup(0);
  c.lookup(256);  // both at rrpv 0: aging rounds must still find a victim
  ev.reset();
  Line* l = c.allocate(512, ev);
  EXPECT_NE(l, nullptr);
  EXPECT_TRUE(ev.has_value());
}

TEST(Replacement, RandomEventuallyEvictsBothWays) {
  CacheArray c(cfg(ReplacementPolicy::kRandom));
  std::optional<Eviction> ev;
  std::set<Addr> victims;
  for (int trial = 0; trial < 64; ++trial) {
    // Refill set 0 and evict once.
    if (c.lookup(0, false) == nullptr) c.allocate(0, ev);
    if (c.lookup(256, false) == nullptr) c.allocate(256, ev);
    ev.reset();
    c.allocate(512, ev);
    ASSERT_TRUE(ev.has_value());
    victims.insert(ev->line_addr);
    c.invalidate(512);
  }
  // A random policy must not always pick the same way.
  EXPECT_EQ(victims.size(), 2u);
}

TEST(Replacement, RandomRespectsPinning) {
  CacheArray c(cfg(ReplacementPolicy::kRandom));
  std::optional<Eviction> ev;
  Line* a = c.allocate(0, ev);
  a->pinned = true;
  c.note_pin(true);
  c.allocate(256, ev);
  // Every further allocation in set 0 must evict the unpinned way.
  for (int i = 2; i < 18; ++i) {
    ev.reset();
    c.allocate(static_cast<Addr>(i) * 256, ev);
    ASSERT_TRUE(ev.has_value());
    EXPECT_NE(ev->line_addr, 0u) << "pinned line evicted on trial " << i;
  }
  EXPECT_NE(c.lookup(0, false), nullptr);
}

TEST(Replacement, SrripPinnedSetBypasses) {
  CacheArray c(cfg(ReplacementPolicy::kSrrip));
  std::optional<Eviction> ev;
  for (Addr a : {0u, 256u}) {
    Line* l = c.allocate(a, ev);
    l->pinned = true;
    c.note_pin(true);
  }
  ev.reset();
  EXPECT_EQ(c.allocate(512, ev), nullptr);
}

TEST(Replacement, ConfigSelectsPolicy) {
  // Smoke: all three policies run the same fill pattern without issue.
  for (ReplacementPolicy p : {ReplacementPolicy::kLru,
                              ReplacementPolicy::kRandom,
                              ReplacementPolicy::kSrrip}) {
    CacheArray c(cfg(p));
    std::optional<Eviction> ev;
    for (Addr a = 0; a < 4096; a += 64) {
      if (c.lookup(a, false) == nullptr) {
        ev.reset();
        c.allocate(a, ev);
      }
    }
    int valid = 0;
    c.for_each_valid([&](Line&) { ++valid; });
    EXPECT_EQ(valid, 8) << to_string(p);
  }
}

}  // namespace
}  // namespace ntcsim::cache
