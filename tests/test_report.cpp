#include "sim/report.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

namespace ntcsim::sim {
namespace {

Metrics sample_metrics() {
  Metrics m;
  m.cycles = 1000;
  m.retired_uops = 4000;
  m.committed_txs = 40;
  m.ipc = 4.0;
  m.tx_per_kilocycle = 40.0;
  m.llc_miss_rate = 0.25;
  m.nvm_writes = 123;
  m.pload_latency = 12.5;
  return m;
}

TEST(Report, RowContainsLabelAndFields) {
  std::ostringstream oss;
  write_metrics_csv_row(oss, "sps/TC", sample_metrics(), /*header=*/true);
  const std::string out = oss.str();
  EXPECT_NE(out.find("label,cycles"), std::string::npos);
  EXPECT_NE(out.find("sps/TC,1000,4000,40,4,40,0.25,123,12.5"),
            std::string::npos);
}

TEST(Report, HeaderOnlyOnRequest) {
  std::ostringstream oss;
  write_metrics_csv_row(oss, "x", sample_metrics());
  EXPECT_EQ(oss.str().find("label"), std::string::npos);
}

TEST(Report, MatrixEmitsOneRowPerCell) {
  Matrix m;
  m[WorkloadKind::kSps][Mechanism::kTc] = sample_metrics();
  m[WorkloadKind::kSps][Mechanism::kOptimal] = sample_metrics();
  m[WorkloadKind::kBtree][Mechanism::kSp] = sample_metrics();
  std::ostringstream oss;
  write_matrix_csv(oss, m);
  std::istringstream iss(oss.str());
  std::string line;
  int rows = 0;
  while (std::getline(iss, line)) ++rows;
  EXPECT_EQ(rows, 1 + 3);  // header + cells
  EXPECT_NE(oss.str().find("sps/TC"), std::string::npos);
  EXPECT_NE(oss.str().find("btree/SP"), std::string::npos);
}

TEST(Report, FieldCountMatchesHeader) {
  std::ostringstream oss;
  write_metrics_csv_row(oss, "a", sample_metrics(), true);
  std::istringstream iss(oss.str());
  std::string header, row;
  std::getline(iss, header);
  std::getline(iss, row);
  const auto count = [](const std::string& s) {
    return std::count(s.begin(), s.end(), ',');
  };
  EXPECT_EQ(count(header), count(row));
}

}  // namespace
}  // namespace ntcsim::sim
