#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace ntcsim {
namespace {

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, BelowStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.below(17), 17u);
  }
}

TEST(Rng, BelowCoversRange) {
  Rng r(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, RangeInclusive) {
  Rng r(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.range(5, 7);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 3u);
}

TEST(Rng, ChanceIsRoughlyFair) {
  Rng r(11);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (r.chance(1, 4)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

TEST(Rng, UnitInHalfOpenInterval) {
  Rng r(13);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

}  // namespace
}  // namespace ntcsim
