// Service-mode request frontend: deterministic arrival stamping, the
// open-loop gate in the core, and end-to-end per-request tail-latency
// accounting through run_cell / Metrics.
#include "workload/service.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/experiment.hpp"
#include "sim/system.hpp"
#include "workload/workloads.hpp"

namespace ntcsim {
namespace {

core::Trace three_tx_trace() {
  core::Trace t;
  for (TxId tx = 1; tx <= 3; ++tx) {
    t.push(core::MicroOp::tx_begin(tx));
    t.push(core::MicroOp::compute());
    t.push(core::MicroOp::tx_end());
  }
  return t;
}

ServiceConfig open_loop(double rate) {
  ServiceConfig s;
  s.enabled = true;
  s.rate = rate;
  return s;
}

TEST(ServiceStamp, StampsEveryTransactionMonotonically) {
  core::Trace t = three_tx_trace();
  const std::size_t n = workload::stamp_service_arrivals(t, open_loop(2.0),
                                                         /*core=*/0,
                                                         /*seed=*/42);
  EXPECT_EQ(n, 3u);
  std::vector<Addr> arrivals;
  for (const core::MicroOp& op : t.ops()) {
    if (op.kind == core::OpKind::kTxBegin) arrivals.push_back(op.addr);
  }
  ASSERT_EQ(arrivals.size(), 3u);
  EXPECT_LE(arrivals[0], arrivals[1]);
  EXPECT_LE(arrivals[1], arrivals[2]);
}

TEST(ServiceStamp, UniformArrivalsAreEvenlySpaced) {
  core::Trace t = three_tx_trace();
  ServiceConfig s = open_loop(2.0);  // 1 request per 500 cycles
  s.poisson = false;
  workload::stamp_service_arrivals(t, s, 0, 1);
  std::vector<Addr> arrivals;
  for (const core::MicroOp& op : t.ops()) {
    if (op.kind == core::OpKind::kTxBegin) arrivals.push_back(op.addr);
  }
  EXPECT_EQ(arrivals[0], 500u);
  EXPECT_EQ(arrivals[1], 1000u);
  EXPECT_EQ(arrivals[2], 1500u);
}

TEST(ServiceStamp, SameSeedSameStream) {
  core::Trace a = three_tx_trace();
  core::Trace b = three_tx_trace();
  workload::stamp_service_arrivals(a, open_loop(1.0), 0, 7);
  workload::stamp_service_arrivals(b, open_loop(1.0), 0, 7);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].addr, b[i].addr) << "op " << i;
  }
}

TEST(ServiceStamp, DistinctCoresGetDistinctStreams) {
  core::Trace a = three_tx_trace();
  core::Trace b = three_tx_trace();
  workload::stamp_service_arrivals(a, open_loop(1.0), 0, 7);
  workload::stamp_service_arrivals(b, open_loop(1.0), 1, 7);
  bool any_difference = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    any_difference |= a[i].addr != b[i].addr;
  }
  EXPECT_TRUE(any_difference);
}

TEST(ServiceStamp, DisabledAndClosedLoopAreNoOps) {
  core::Trace t = three_tx_trace();
  ServiceConfig off;
  EXPECT_EQ(workload::stamp_service_arrivals(t, off, 0, 1), 0u);
  ServiceConfig closed = open_loop(1.0);
  closed.open_loop = false;
  EXPECT_EQ(workload::stamp_service_arrivals(t, closed, 0, 1), 0u);
  for (const core::MicroOp& op : t.ops()) {
    if (op.kind == core::OpKind::kTxBegin) EXPECT_EQ(op.addr, 0u);
  }
}

// ------------------------------------------------------ core gate -------

TEST(ServiceCore, OpenLoopArrivalGatesFetchAndSetsLatencyStart) {
  // One transaction arriving at cycle 1000 on an otherwise idle machine:
  // the core must not touch it earlier, and the measured request latency
  // counts from the arrival, not from cycle 0.
  SystemConfig cfg = SystemConfig::tiny();
  cfg.mechanism = Mechanism::kOptimal;
  sim::System sys(cfg);
  core::Trace t;
  core::MicroOp begin = core::MicroOp::tx_begin(1);
  begin.addr = 1000;  // arrival cycle, relative to trace start
  t.push(begin);
  t.push(core::MicroOp::compute());
  t.push(core::MicroOp::tx_end());
  sys.load_trace(0, std::move(t));
  sys.run();
  EXPECT_GE(sys.now(), 1000u);  // the run had to wait for the arrival
  const sim::Metrics m = sys.metrics();
  EXPECT_EQ(m.requests, 1u);
  EXPECT_EQ(m.committed_txs, 1u);
  // Latency is retire - arrival: a handful of cycles, not ~1000.
  EXPECT_GT(m.req_latency, 0.0);
  EXPECT_LT(m.req_latency, 100.0);
}

TEST(ServiceCore, BackToBackTracesStillCountRequests) {
  SystemConfig cfg = SystemConfig::tiny();
  cfg.mechanism = Mechanism::kTc;
  sim::System sys(cfg);
  sys.load_trace(0, three_tx_trace());
  sys.run();
  const sim::Metrics m = sys.metrics();
  EXPECT_EQ(m.requests, 3u);
  EXPECT_EQ(m.committed_txs, 3u);
  EXPECT_GT(m.req_latency, 0.0);
  EXPECT_GE(m.req_latency_p99, m.req_latency_p50);
}

// ------------------------------------------------------- end to end -----

sim::ExperimentOptions quick_opts() {
  sim::ExperimentOptions opts;
  opts.scale = 0.02;
  opts.setup_scale = 0.04;
  opts.seed = 5;
  return opts;
}

TEST(ServiceCell, ReportsTailPercentilesAndHonorsRequestCount) {
  SystemConfig cfg = SystemConfig::experiment();
  cfg.service.enabled = true;
  cfg.service.rate = 2.0;
  cfg.service.requests = 40;
  const sim::Metrics m = sim::run_cell(Mechanism::kTc,
                                       WorkloadKind::kHashtable, cfg,
                                       quick_opts());
  EXPECT_EQ(m.requests, 40u * cfg.cores);
  EXPECT_GT(m.req_latency, 0.0);
  EXPECT_LE(m.req_latency_p50, m.req_latency_p95);
  EXPECT_LE(m.req_latency_p95, m.req_latency_p99);
  EXPECT_LE(m.req_latency_p99, m.req_latency_p999);
  EXPECT_GT(m.req_latency_p999, 0u);
}

TEST(ServiceCell, LowRateOpenLoopStretchesTheRunNotTheLatency) {
  // At a rate far below capacity the run takes at least as long as the
  // arrival schedule, while each request itself stays fast; the same cell
  // back-to-back finishes sooner per request processed.
  SystemConfig slow = SystemConfig::experiment();
  slow.service.enabled = true;
  slow.service.rate = 0.25;  // one request per 4 kcycles per core
  slow.service.requests = 20;
  const sim::Metrics open = sim::run_cell(Mechanism::kTc, WorkloadKind::kSps,
                                          slow, quick_opts());

  SystemConfig closed = slow;
  closed.service.open_loop = false;
  const sim::Metrics btb = sim::run_cell(Mechanism::kTc, WorkloadKind::kSps,
                                         closed, quick_opts());
  ASSERT_EQ(open.requests, btb.requests);
  // ~20 requests spaced 4 kcycles apart cannot finish much before 60
  // kcycles; the closed-loop run is far shorter.
  EXPECT_GT(open.cycles, btb.cycles);
}

}  // namespace
}  // namespace ntcsim
