#include "workload/sim_heap.hpp"

#include <gtest/gtest.h>

namespace ntcsim::workload {
namespace {

TEST(SimHeap, PersistentAllocationsAreInNvm) {
  AddressSpace space;
  SimHeap h(space, 2);
  const Addr a = h.alloc(0, 64);
  EXPECT_TRUE(space.is_persistent(a));
  EXPECT_GE(a, space.heap_base());
  EXPECT_LT(a, space.heap_base() + space.heap_bytes());
}

TEST(SimHeap, VolatileAllocationsAreInDram) {
  AddressSpace space;
  SimHeap h(space, 2);
  const Addr a = h.alloc_volatile(0, 64);
  EXPECT_FALSE(space.is_persistent(a));
}

TEST(SimHeap, AllocationsDoNotOverlap) {
  AddressSpace space;
  SimHeap h(space, 1);
  const Addr a = h.alloc(0, 24);
  const Addr b = h.alloc(0, 24);
  EXPECT_GE(b, a + 24);
}

TEST(SimHeap, AlignmentRespected) {
  AddressSpace space;
  SimHeap h(space, 1);
  h.alloc(0, 8);
  const Addr a = h.alloc(0, 64, 64);
  EXPECT_EQ(a % 64, 0u);
}

TEST(SimHeap, CoreArenasAreDisjoint) {
  AddressSpace space;
  SimHeap h(space, 4);
  const Addr a0 = h.alloc(0, 1 << 20);
  const Addr a1 = h.alloc(1, 1 << 20);
  EXPECT_NE(a0, a1);
  // Core 1's whole arena sits above core 0's first MB.
  EXPECT_GE(a1, a0 + (1 << 20));
}

TEST(SimHeap, UsageTracking) {
  AddressSpace space;
  SimHeap h(space, 1);
  EXPECT_EQ(h.persistent_used(0), 0u);
  h.alloc(0, 100);
  EXPECT_GE(h.persistent_used(0), 100u);
}

}  // namespace
}  // namespace ntcsim::workload
