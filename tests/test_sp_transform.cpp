#include "persist/sp_transform.hpp"

#include <gtest/gtest.h>

#include "recovery/log_format.hpp"
#include "workload/emitter.hpp"

namespace ntcsim::persist {
namespace {

using core::MicroOp;
using core::OpKind;
using core::Trace;

AddressSpace space() { return AddressSpace{}; }

Trace simple_tx_trace(int stores) {
  workload::TraceEmitter em(0, space(), nullptr);
  em.begin_tx();
  for (int i = 0; i < stores; ++i) {
    em.load(space().heap_base() + 512 + i * 8);
    em.store(space().heap_base() + i * 8, 100 + i);
  }
  em.end_tx();
  return em.take_combined();
}

TEST(SpTransform, InjectsLogStoresPerDataStore) {
  const Trace in = simple_tx_trace(2);
  const Trace out = transform_sp(in, 0, space());
  // Each persistent store adds 2 non-temporal log-word stores; the data
  // stores are deferred but kept; plus 2 commit-marker words.
  EXPECT_EQ(out.count(OpKind::kStore), 2u /*data*/);
  EXPECT_EQ(out.count(OpKind::kNtStore), 4u /*log*/ + 2u /*marker*/);
  EXPECT_EQ(out.count(OpKind::kLoad), in.count(OpKind::kLoad));
  EXPECT_EQ(out.count(OpKind::kTxBegin), 1u);
  EXPECT_EQ(out.count(OpKind::kTxEnd), 1u);
}

TEST(SpTransform, OrderingPrimitivesPresent) {
  // Default: two ordering rounds — records durable, then the marker.
  const Trace out = transform_sp(simple_tx_trace(2), 0, space());
  EXPECT_EQ(out.count(OpKind::kSfence), 3u);
  EXPECT_EQ(out.count(OpKind::kPcommit), 2u);
  EXPECT_GE(out.count(OpKind::kClwb), 1u);  // lazy data clean-backs
}

TEST(SpTransform, SingleRoundVariantHasOnePcommit) {
  SpOptions opts;
  opts.single_round = true;
  const Trace out = transform_sp(simple_tx_trace(2), 0, space(), opts);
  EXPECT_EQ(out.count(OpKind::kPcommit), 1u);
  EXPECT_EQ(out.count(OpKind::kSfence), 2u);
}

TEST(SpTransform, DataStoresComeAfterSecondPcommit) {
  const AddressSpace s = space();
  const Trace out = transform_sp(simple_tx_trace(2), 0, s);
  std::size_t last_pcommit = 0, first_data_store = out.size();
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (out[i].kind == OpKind::kPcommit) last_pcommit = i;
    if (out[i].kind == OpKind::kStore && out[i].addr < s.log_base(0) &&
        first_data_store == out.size()) {
      first_data_store = i;
    }
  }
  EXPECT_LT(last_pcommit, first_data_store);
}

TEST(SpTransform, LogRecordsEncodeTargetAndValue) {
  const AddressSpace s = space();
  const Trace out = transform_sp(simple_tx_trace(1), 0, s);
  // First log record: two non-temporal stores at log_base and log_base+8.
  std::vector<MicroOp> log_stores;
  for (const MicroOp& op : out.ops()) {
    if (op.kind == OpKind::kNtStore && op.addr >= s.log_base(0)) {
      log_stores.push_back(op);
    }
  }
  ASSERT_GE(log_stores.size(), 4u);  // record + marker
  EXPECT_EQ(log_stores[0].addr, s.log_base(0));
  EXPECT_EQ(log_stores[0].value, s.heap_base());  // target address
  EXPECT_EQ(log_stores[1].value, 100u);           // stored value
  EXPECT_TRUE(recovery::is_commit_marker(log_stores[2].value));
  EXPECT_EQ(log_stores[3].value, 1u);  // record count (validated at parse)
}

TEST(SpTransform, UnorderedVariantHasNoFences) {
  // Fig. 2c: the log is written with ordinary cached stores and never
  // flushed or fenced — it can be lost while data stores leak to NVM.
  SpOptions opts;
  opts.ordered = false;
  const Trace out = transform_sp(simple_tx_trace(3), 0, space(), opts);
  EXPECT_EQ(out.count(OpKind::kSfence), 0u);
  EXPECT_EQ(out.count(OpKind::kPcommit), 0u);
  EXPECT_EQ(out.count(OpKind::kClwb), 0u);
  EXPECT_EQ(out.count(OpKind::kNtStore), 0u);
  EXPECT_EQ(out.count(OpKind::kStore), 3u + 6u + 2u);
}

TEST(SpTransform, ReadOnlyTxAddsNothing) {
  workload::TraceEmitter em(0, space(), nullptr);
  em.begin_tx();
  em.load(space().heap_base());
  em.end_tx();
  const Trace out = transform_sp(em.take_combined(), 0, space());
  EXPECT_EQ(out.count(OpKind::kStore), 0u);
  EXPECT_EQ(out.count(OpKind::kClwb), 0u);
  EXPECT_EQ(out.size(), 3u);
}

TEST(SpTransform, VolatileStoresPassThrough) {
  workload::TraceEmitter em(0, space(), nullptr);
  em.begin_tx();
  em.store(64, 1);  // DRAM
  em.end_tx();
  const Trace out = transform_sp(em.take_combined(), 0, space());
  EXPECT_EQ(out.count(OpKind::kStore), 1u);
  EXPECT_EQ(out.count(OpKind::kClwb), 0u);
}

TEST(SpTransform, SuccessiveTxsGetDistinctLogRecords) {
  workload::TraceEmitter em(0, space(), nullptr);
  for (int t = 0; t < 2; ++t) {
    em.begin_tx();
    em.store(space().heap_base() + t * 8, t);
    em.end_tx();
  }
  const AddressSpace s = space();
  const Trace out = transform_sp(em.take_combined(), 0, s);
  std::vector<Addr> log_addrs;
  for (const MicroOp& op : out.ops()) {
    if (op.kind == OpKind::kNtStore && op.addr >= s.log_base(0)) {
      log_addrs.push_back(op.addr);
    }
  }
  // 2 txs x (record + marker) x 2 words = 8 distinct, increasing addresses.
  ASSERT_EQ(log_addrs.size(), 8u);
  for (std::size_t i = 1; i < log_addrs.size(); ++i) {
    EXPECT_GT(log_addrs[i], log_addrs[i - 1]);
  }
}

}  // namespace
}  // namespace ntcsim::persist
