#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace ntcsim {
namespace {

TEST(Stats, CounterBasics) {
  StatSet s;
  Counter& c = s.counter("a.b");
  c.inc();
  c.inc(4);
  EXPECT_EQ(s.counter_value("a.b"), 5u);
  EXPECT_EQ(s.counter_value("missing"), 0u);
  EXPECT_TRUE(s.has_counter("a.b"));
  EXPECT_FALSE(s.has_counter("a.c"));
}

TEST(Stats, CounterReferenceIsStable) {
  StatSet s;
  Counter& a = s.counter("x");
  for (int i = 0; i < 100; ++i) s.counter("name" + std::to_string(i));
  a.inc(7);
  EXPECT_EQ(s.counter_value("x"), 7u);
}

TEST(Stats, AccumulatorMeanAndMax) {
  StatSet s;
  Accumulator& a = s.accumulator("lat");
  a.add(10.0);
  a.add(20.0);
  a.add(60.0);
  EXPECT_DOUBLE_EQ(s.accumulator_mean("lat"), 30.0);
  EXPECT_DOUBLE_EQ(s.accumulator_sum("lat"), 90.0);
  EXPECT_EQ(s.accumulator_count("lat"), 3u);
  EXPECT_DOUBLE_EQ(a.max(), 60.0);
  EXPECT_DOUBLE_EQ(s.accumulator_mean("missing"), 0.0);
}

TEST(Stats, PrefixSum) {
  StatSet s;
  s.counter("ntc0.writes").inc(3);
  s.counter("ntc1.writes").inc(4);
  s.counter("ntcX.other").inc(5);
  s.counter("other").inc(100);
  EXPECT_EQ(s.counter_prefix_sum("ntc"), 12u);
  EXPECT_EQ(s.counter_prefix_sum("ntc0"), 3u);
  EXPECT_EQ(s.counter_prefix_sum("zzz"), 0u);
}

TEST(Stats, ResetClearsEverything) {
  StatSet s;
  s.counter("c").inc(9);
  s.accumulator("a").add(1.0);
  s.reset();
  EXPECT_EQ(s.counter_value("c"), 0u);
  EXPECT_EQ(s.accumulator_count("a"), 0u);
}

TEST(Stats, DumpContainsNames) {
  StatSet s;
  s.counter("alpha").inc(1);
  s.accumulator("beta").add(2.0);
  std::ostringstream oss;
  s.dump(oss);
  EXPECT_NE(oss.str().find("alpha"), std::string::npos);
  EXPECT_NE(oss.str().find("beta"), std::string::npos);
}

TEST(Histogram, BucketsPowersOfTwo) {
  Histogram h;
  h.add(0);
  h.add(1);
  h.add(2);
  h.add(3);
  h.add(1024);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bucket(0), 1u);  // value 0
  EXPECT_EQ(h.bucket(1), 1u);  // value 1
  EXPECT_EQ(h.bucket(2), 2u);  // values 2..3
  EXPECT_EQ(h.bucket(11), 1u); // 1024
}

TEST(Histogram, PercentileEdge) {
  Histogram h;
  for (int i = 0; i < 99; ++i) h.add(1);
  h.add(1000000);
  EXPECT_LE(h.percentile_edge(50.0), 1u);
  EXPECT_GE(h.percentile_edge(100.0), 1000000u / 2);
}

TEST(Histogram, TailPercentilesSeparateTheOutliers) {
  // 998 fast samples and two slow ones: p99 still reports the fast bucket,
  // p99.9 must land in the outliers' bucket (the service-mode contract).
  Histogram h;
  for (int i = 0; i < 998; ++i) h.add(10);
  h.add(1 << 20);
  h.add(1 << 20);
  EXPECT_LE(h.percentile_edge(99.0), 15u);
  EXPECT_GE(h.percentile_edge(99.9), (1u << 20) - 1);
}

TEST(Histogram, MergeAddsBucketwise) {
  Histogram a, b;
  a.add(1);
  a.add(1024);
  b.add(1);
  b.add(3);
  a.merge(b);
  EXPECT_EQ(a.total(), 4u);
  EXPECT_EQ(a.bucket(1), 2u);   // two 1s
  EXPECT_EQ(a.bucket(2), 1u);   // the 3
  EXPECT_EQ(a.bucket(11), 1u);  // the 1024
}

TEST(Histogram, DiffSinceIsTheWindowView) {
  Histogram cumulative;
  cumulative.add(5);
  Histogram snapshot = cumulative;  // end of window 1
  cumulative.add(5);
  cumulative.add(100000);
  const Histogram window = cumulative.diff_since(snapshot);
  EXPECT_EQ(window.total(), 2u);
  EXPECT_EQ(window.bucket(3), 1u);  // the second 5; the first is diffed out
  EXPECT_GE(window.percentile_edge(99.0), 100000u - 1);
  // Diffing against an empty snapshot reproduces the cumulative view.
  const Histogram all = cumulative.diff_since(Histogram{});
  EXPECT_EQ(all.total(), cumulative.total());
}

}  // namespace
}  // namespace ntcsim
