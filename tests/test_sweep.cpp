// The parallel sweep runner's contract: worker-thread execution is
// invisible in the results — bit-identical Metrics to the serial path —
// and the thread pool itself orders results, propagates exceptions, and
// degrades to inline execution at jobs=1.
#include "sim/sweep.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <thread>

#include "sim/experiment.hpp"

namespace ntcsim::sim {
namespace {

// ---------------------------------------------------------------- pool --

TEST(ParallelFor, RunsEveryIndexExactlyOnce) {
  constexpr std::size_t kCount = 100;
  std::atomic<int> hits[kCount] = {};
  parallel_for(kCount, 4, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, ZeroCountIsANoOp) {
  parallel_for(0, 4, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ParallelFor, JobsOneRunsInlineAndInOrder) {
  const std::thread::id caller = std::this_thread::get_id();
  std::size_t expected = 0;
  parallel_for(5, 1, [&](std::size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    EXPECT_EQ(i, expected++);  // strict 0..n-1 order on the serial path
  });
  EXPECT_EQ(expected, 5u);
}

TEST(ParallelFor, MoreJobsThanWorkIsFine) {
  std::atomic<int> calls{0};
  parallel_for(2, 16, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 2);
}

TEST(ParallelFor, PropagatesExceptionsFromWorkers) {
  EXPECT_THROW(
      parallel_for(8, 4,
                   [](std::size_t i) {
                     if (i == 3) throw std::runtime_error("cell failed");
                   }),
      std::runtime_error);
}

TEST(ParallelFor, PropagatesExceptionsOnSerialPath) {
  EXPECT_THROW(
      parallel_for(8, 1,
                   [](std::size_t i) {
                     if (i == 3) throw std::runtime_error("cell failed");
                   }),
      std::runtime_error);
}

TEST(RunJobs, ResultsArriveInIndexOrder) {
  const auto out =
      run_jobs(64, 8, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 64u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], i * i);
  }
}

TEST(DefaultJobs, HonorsEnvironmentVariable) {
  ::setenv("NTCSIM_JOBS", "3", 1);
  EXPECT_EQ(default_jobs(), 3u);
  ::setenv("NTCSIM_JOBS", "garbage", 1);
  EXPECT_GE(default_jobs(), 1u);  // falls back to hardware_concurrency
  ::unsetenv("NTCSIM_JOBS");
  EXPECT_GE(default_jobs(), 1u);
}

// ------------------------------------------------------- determinism ----

// Bitwise equality: the parallel path must not perturb a single field.
void expect_identical(const Metrics& a, const Metrics& b,
                      const char* label) {
  EXPECT_EQ(a.cycles, b.cycles) << label;
  EXPECT_EQ(a.retired_uops, b.retired_uops) << label;
  EXPECT_EQ(a.committed_txs, b.committed_txs) << label;
  EXPECT_EQ(a.ipc, b.ipc) << label;
  EXPECT_EQ(a.tx_per_kilocycle, b.tx_per_kilocycle) << label;
  EXPECT_EQ(a.llc_miss_rate, b.llc_miss_rate) << label;
  EXPECT_EQ(a.nvm_writes, b.nvm_writes) << label;
  EXPECT_EQ(a.pload_latency, b.pload_latency) << label;
  EXPECT_EQ(a.pload_latency_p50, b.pload_latency_p50) << label;
  EXPECT_EQ(a.pload_latency_p99, b.pload_latency_p99) << label;
  EXPECT_EQ(a.requests, b.requests) << label;
  EXPECT_EQ(a.req_latency, b.req_latency) << label;
  EXPECT_EQ(a.req_latency_p50, b.req_latency_p50) << label;
  EXPECT_EQ(a.req_latency_p95, b.req_latency_p95) << label;
  EXPECT_EQ(a.req_latency_p99, b.req_latency_p99) << label;
  EXPECT_EQ(a.req_latency_p999, b.req_latency_p999) << label;
  EXPECT_EQ(a.nvm_reads, b.nvm_reads) << label;
  EXPECT_EQ(a.dram_writes, b.dram_writes) << label;
  EXPECT_EQ(a.llc_wb_dropped, b.llc_wb_dropped) << label;
  EXPECT_EQ(a.ntc_spills, b.ntc_spills) << label;
  EXPECT_EQ(a.ntc_stall_frac, b.ntc_stall_frac) << label;
}

ExperimentOptions quick_opts() {
  ExperimentOptions opts;
  // Small cells: the point is cross-thread identity, not cache pressure.
  opts.scale = 0.02;
  opts.setup_scale = 0.04;
  opts.seed = 7;
  return opts;
}

TEST(RunMatrix, ParallelIsBitIdenticalToSerial) {
  const SystemConfig base = SystemConfig::experiment();
  ExperimentOptions serial = quick_opts();
  serial.jobs = 1;
  ExperimentOptions parallel = quick_opts();
  parallel.jobs = 4;

  const Matrix a = run_matrix(base, serial);
  const Matrix b = run_matrix(base, parallel);
  ASSERT_EQ(a.size(), b.size());
  for (const auto& [wl, row] : a) {
    ASSERT_EQ(row.size(), b.at(wl).size());
    for (const auto& [mech, m] : row) {
      const std::string label = std::string(to_string(wl)) + "/" +
                                std::string(to_string(mech));
      expect_identical(m, b.at(wl).at(mech), label.c_str());
    }
  }
}

TEST(RunSweep, MatchesDirectRunCellAndKeepsSpecOrder) {
  const ExperimentOptions opts = quick_opts();
  std::vector<JobSpec> specs;
  SystemConfig cfg = SystemConfig::experiment();
  specs.push_back({Mechanism::kTc, WorkloadKind::kSps, cfg, opts});
  SystemConfig small = SystemConfig::experiment();
  small.ntc.size_bytes /= 4;  // distinct config: order mixups would show
  specs.push_back({Mechanism::kTc, WorkloadKind::kSps, small, opts});

  const std::vector<Metrics> swept = run_sweep(specs, 2);
  ASSERT_EQ(swept.size(), 2u);
  expect_identical(swept[0],
                   run_cell(Mechanism::kTc, WorkloadKind::kSps, cfg, opts),
                   "spec 0");
  expect_identical(swept[1],
                   run_cell(Mechanism::kTc, WorkloadKind::kSps, small, opts),
                   "spec 1");
}

// The acceptance contract of bench_tail_latency: a service-mode rate
// sweep (open-loop arrival stamping, tail-latency percentiles) must be
// bit-identical between --jobs=1 and --jobs=N, like every other sweep.
TEST(RunSweep, ServiceRateSweepIsBitIdenticalAcrossJobs) {
  const ExperimentOptions opts = quick_opts();
  std::vector<JobSpec> specs;
  for (double rate : {0.5, 2.0, 8.0}) {
    JobSpec spec;
    spec.mech = Mechanism::kTc;
    spec.wl = WorkloadKind::kHashtable;
    spec.cfg = SystemConfig::experiment();
    spec.cfg.service.enabled = true;
    spec.cfg.service.rate = rate;
    spec.cfg.service.requests = 25;
    spec.opts = opts;
    specs.push_back(spec);
  }
  const std::vector<Metrics> serial = run_sweep(specs, 1);
  const std::vector<Metrics> parallel = run_sweep(specs, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_GT(serial[i].requests, 0u) << "rate point " << i;
    expect_identical(serial[i], parallel[i],
                     ("service rate point " + std::to_string(i)).c_str());
  }
}

// Cluster cells are still independent pure functions of their spec:
// sharded multi-node simulations must be bit-identical across any
// --jobs value, exactly like single-node cells.
TEST(RunSweep, MultiNodeCellsAreBitIdenticalAcrossJobs) {
  const ExperimentOptions opts = quick_opts();
  std::vector<JobSpec> specs;
  for (unsigned nodes : {1u, 3u}) {
    JobSpec spec;
    spec.mech = Mechanism::kTc;
    spec.wl = WorkloadKind::kHashtable;
    spec.cfg = SystemConfig::experiment();
    spec.cfg.topo.nodes = nodes;
    spec.cfg.service.enabled = true;
    spec.cfg.service.rate = 2.0;
    spec.cfg.service.requests = 25;
    spec.opts = opts;
    specs.push_back(spec);
  }
  const std::vector<Metrics> serial = run_sweep(specs, 1);
  const std::vector<Metrics> parallel = run_sweep(specs, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    const std::string label = "nodes point " + std::to_string(i);
    expect_identical(serial[i], parallel[i], label.c_str());
    EXPECT_EQ(serial[i].xshard_requests, parallel[i].xshard_requests) << label;
    ASSERT_EQ(serial[i].per_node.size(), parallel[i].per_node.size()) << label;
    for (std::size_t n = 0; n < serial[i].per_node.size(); ++n) {
      expect_identical(serial[i].per_node[n], parallel[i].per_node[n],
                       (label + " node " + std::to_string(n)).c_str());
    }
  }
  // The 3-node cell really sharded: breakdown present, requests served.
  ASSERT_EQ(serial[1].per_node.size(), 3u);
  EXPECT_GT(serial[1].requests, 0u);
}

TEST(ParseBenchArgs, JobsFlag) {
  char prog[] = "bench";
  char jobs[] = "--jobs=6";
  char scale[] = "--scale=0.25";
  char* argv[] = {prog, jobs, scale};
  const ExperimentOptions opts = parse_bench_args(3, argv);
  EXPECT_EQ(opts.jobs, 6u);
  EXPECT_DOUBLE_EQ(opts.scale, 0.25);
}

}  // namespace
}  // namespace ntcsim::sim
