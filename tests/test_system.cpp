// End-to-end mechanism behaviour: the qualitative claims of §5 must hold on
// small runs — performance ordering, write-traffic ordering, the TC
// invariants (no demand writes to NVM, near-zero stalls).
#include "sim/system.hpp"

#include <gtest/gtest.h>

#include <map>

#include "sim/experiment.hpp"
#include "workload/workloads.hpp"

namespace ntcsim::sim {
namespace {

SystemConfig small_cfg(Mechanism mech) {
  SystemConfig c = SystemConfig::paper();
  c.cores = 1;
  c.llc = CacheConfig{256ULL << 10, 16, 20, 32, 16};
  c.mechanism = mech;
  return c;
}

workload::WorkloadParams small_wl(WorkloadKind kind) {
  workload::WorkloadParams p = workload::default_params(kind);
  p.setup_elems = 2000;
  p.ops = 400;
  p.seed = 3;
  return p;
}

Metrics run_small(Mechanism mech, WorkloadKind kind) {
  const SystemConfig cfg = small_cfg(mech);
  workload::SimHeap heap(cfg.address_space, cfg.cores);
  workload::TraceBundle b =
      workload::generate_phased(small_wl(kind), 0, heap, nullptr);
  System sys(cfg);
  sys.load_trace(0, std::move(b.setup));
  sys.run();
  sys.reset_stats();
  sys.load_trace(0, std::move(b.measured));
  sys.run();
  EXPECT_TRUE(sys.finished());
  return sys.metrics();
}

class MechTest : public ::testing::TestWithParam<WorkloadKind> {
 protected:
  std::map<Mechanism, Metrics> all() {
    std::map<Mechanism, Metrics> m;
    // Registry-driven: registered extensions (e.g. tc-nodrain) are
    // exercised here for free and must also commit every transaction.
    for (Mechanism mech : matrix_mechanisms()) {
      m[mech] = run_small(mech, GetParam());
    }
    return m;
  }
};

TEST_P(MechTest, AllMechanismsCommitTheSameTransactions) {
  const auto m = all();
  const auto txs = m.at(Mechanism::kOptimal).committed_txs;
  ASSERT_EQ(txs, small_wl(GetParam()).ops);  // measured phase only
  for (const auto& [mech, metrics] : m) {
    EXPECT_EQ(metrics.committed_txs, txs) << mechanism_label(mech);
  }
}

TEST_P(MechTest, PerformanceOrderingMatchesPaper) {
  const auto m = all();
  const double opt = m.at(Mechanism::kOptimal).tx_per_kilocycle;
  const double tc = m.at(Mechanism::kTc).tx_per_kilocycle;
  const double kiln = m.at(Mechanism::kKiln).tx_per_kilocycle;
  const double sp = m.at(Mechanism::kSp).tx_per_kilocycle;
  // Fig. 6/7 shape: Optimal >= TC > Kiln > SP.
  EXPECT_GT(tc, kiln) << "TC must beat Kiln";
  EXPECT_GT(kiln, sp) << "Kiln must beat SP";
  EXPECT_GE(opt * 1.001, tc) << "nothing beats native execution materially";
  EXPECT_GT(tc, 0.90 * opt) << "TC must be close to Optimal";
  EXPECT_LT(sp, 0.75 * opt) << "SP must pay a large penalty";
}

TEST_P(MechTest, WriteTrafficOrderingMatchesPaper) {
  const auto m = all();
  // Fig. 9 shape: SP writes the most (log + data), TC more than Kiln
  // (every commit goes to NVM vs. coalescing in the NV-LLC).
  EXPECT_GT(m.at(Mechanism::kSp).nvm_writes, m.at(Mechanism::kTc).nvm_writes);
  EXPECT_GE(m.at(Mechanism::kTc).nvm_writes, m.at(Mechanism::kKiln).nvm_writes);
  EXPECT_GE(m.at(Mechanism::kKiln).nvm_writes,
            m.at(Mechanism::kOptimal).nvm_writes);
}

TEST_P(MechTest, TcNvmWritesComeOnlyFromTheNtc) {
  const SystemConfig cfg = small_cfg(Mechanism::kTc);
  workload::SimHeap heap(cfg.address_space, cfg.cores);
  System sys(cfg);
  sys.load_trace(0, workload::generate(small_wl(GetParam()), 0, heap, nullptr));
  sys.run();
  EXPECT_EQ(sys.stats().counter_value("nvm.writes.demand"), 0u);
  EXPECT_EQ(sys.stats().counter_value("nvm.writes.log"), 0u);
  EXPECT_GT(sys.stats().counter_value("nvm.writes.txcache"), 0u);
}

TEST_P(MechTest, CheckerFindsNoViolationsInHealthyMechanisms) {
  // The --check path on the paper-shaped config: every matrix mechanism
  // must satisfy its own declared ordering invariants end to end.
  for (Mechanism mech : matrix_mechanisms()) {
    SystemConfig cfg = small_cfg(mech);
    cfg.check = CheckMode::kCollect;
    workload::SimHeap heap(cfg.address_space, cfg.cores);
    System sys(cfg);
    sys.load_trace(0,
                   workload::generate(small_wl(GetParam()), 0, heap, nullptr));
    sys.run();
    EXPECT_EQ(sys.metrics().check_violations, 0u) << mechanism_label(mech);
    if (sys.checker() != nullptr) {
      EXPECT_TRUE(sys.checker()->rules().any());
    }
  }
}

TEST_P(MechTest, KilnLoadLatencyIsWorst) {
  const auto m = all();
  const double opt = m.at(Mechanism::kOptimal).pload_latency;
  if (opt < 2.0) {
    // Degenerate single-core case: the working set fits the private caches
    // and every persistent load forwards or hits the L1 under every
    // mechanism — there is no latency to elevate.
    GTEST_SKIP() << "all-hit workload; Fig. 10 needs LLC/NVM traffic";
  }
  EXPECT_GE(m.at(Mechanism::kKiln).pload_latency,
            m.at(Mechanism::kTc).pload_latency);
  EXPECT_GT(m.at(Mechanism::kKiln).pload_latency, opt);
}

INSTANTIATE_TEST_SUITE_P(Workloads, MechTest,
                         ::testing::Values(WorkloadKind::kSps,
                                           WorkloadKind::kHashtable,
                                           WorkloadKind::kRbtree),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(SystemMultiCore, FourCoresRunIndependentWorkloads) {
  SystemConfig cfg = SystemConfig::paper();
  cfg.llc = CacheConfig{512ULL << 10, 16, 20, 32, 16};
  cfg.mechanism = Mechanism::kTc;
  workload::SimHeap heap(cfg.address_space, cfg.cores);
  System sys(cfg);
  workload::WorkloadParams p = small_wl(WorkloadKind::kHashtable);
  for (CoreId c = 0; c < cfg.cores; ++c) {
    sys.load_trace(c, workload::generate(p, c, heap, nullptr));
  }
  sys.run();
  EXPECT_TRUE(sys.finished());
  const auto m = sys.metrics();
  EXPECT_EQ(m.committed_txs, 4 * sys.core(0).committed_txs());
  for (CoreId c = 0; c < cfg.cores; ++c) {
    EXPECT_GT(sys.stats().counter_value("ntc" + std::to_string(c) + ".writes"),
              0u);
  }
}

TEST(SystemMultiCore, SharedLlcSeesAllCores) {
  SystemConfig cfg = SystemConfig::paper();
  cfg.mechanism = Mechanism::kOptimal;
  cfg.llc = CacheConfig{512ULL << 10, 16, 20, 32, 16};
  workload::SimHeap heap(cfg.address_space, cfg.cores);
  System sys(cfg);
  workload::WorkloadParams p = small_wl(WorkloadKind::kSps);
  for (CoreId c = 0; c < cfg.cores; ++c) {
    sys.load_trace(c, workload::generate(p, c, heap, nullptr));
  }
  sys.run();
  EXPECT_GT(sys.stats().counter_value("llc.misses"), 0u);
}

TEST(ExperimentHarness, RunCellProducesSaneMetrics) {
  SystemConfig cfg = SystemConfig::experiment();
  cfg.cores = 2;
  ExperimentOptions opts;
  opts.scale = 0.05;
  const Metrics m = run_cell(Mechanism::kTc, WorkloadKind::kSps, cfg, opts);
  EXPECT_GT(m.cycles, 0u);
  EXPECT_GT(m.ipc, 0.0);
  EXPECT_GT(m.committed_txs, 0u);
}

TEST(ExperimentHarness, GeometricMean) {
  EXPECT_DOUBLE_EQ(geometric_mean({4.0, 1.0}), 2.0);
  EXPECT_DOUBLE_EQ(geometric_mean({8.0}), 8.0);
  EXPECT_DOUBLE_EQ(geometric_mean({}), 0.0);
}

}  // namespace
}  // namespace ntcsim::sim
