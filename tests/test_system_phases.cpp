// The two-phase measurement protocol: statistics reset between setup and
// measured phases, warm state carried across, metrics scoped to the epoch.
#include <gtest/gtest.h>

#include "sim/system.hpp"
#include "workload/workloads.hpp"

namespace ntcsim::sim {
namespace {

TEST(SystemPhases, ResetScopesMetricsToTheMeasuredEpoch) {
  SystemConfig cfg = SystemConfig::tiny();
  cfg.mechanism = Mechanism::kOptimal;
  workload::WorkloadParams p = workload::default_params(WorkloadKind::kSps);
  p.setup_elems = 2000;
  p.ops = 100;
  p.compute_per_op = 16;
  workload::SimHeap heap(cfg.address_space, 1);
  workload::TraceBundle b = workload::generate_phased(p, 0, heap, nullptr);

  System sys(cfg);
  sys.load_trace(0, std::move(b.setup));
  sys.run();
  const Metrics setup_m = sys.metrics();
  EXPECT_GT(setup_m.committed_txs, 100u);  // setup batches

  sys.reset_stats();
  EXPECT_EQ(sys.metrics().committed_txs, 0u);
  EXPECT_EQ(sys.metrics().cycles, 0u);

  sys.load_trace(0, std::move(b.measured));
  sys.run();
  const Metrics m = sys.metrics();
  EXPECT_EQ(m.committed_txs, 100u);  // exactly the measured ops
  EXPECT_GT(m.cycles, 0u);
  EXPECT_LT(m.cycles, setup_m.cycles);  // measured phase is the short one
}

TEST(SystemPhases, WarmStateCarriesAcrossReset) {
  // The measured phase must run against warm caches: its LLC miss rate is
  // far below a cold run of the same ops.
  SystemConfig cfg = SystemConfig::paper();
  cfg.cores = 1;
  // Footprint must exceed the private L2 (so the LLC actually sees
  // traffic) and fit the LLC (so warmth matters): ~420 KB vs 1 MB.
  cfg.llc = CacheConfig{1ULL << 20, 16, 20, 32, 16};
  cfg.mechanism = Mechanism::kOptimal;
  workload::WorkloadParams p =
      workload::default_params(WorkloadKind::kHashtable);
  p.setup_elems = 12000;
  p.ops = 400;
  p.compute_per_op = 32;

  // Warm: setup then measured.
  workload::SimHeap heap(cfg.address_space, 1);
  workload::TraceBundle b = workload::generate_phased(p, 0, heap, nullptr);
  System warm(cfg);
  warm.load_trace(0, std::move(b.setup));
  warm.run();
  warm.reset_stats();
  warm.load_trace(0, std::move(b.measured));
  warm.run();

  // Cold: the measured trace alone on a fresh system. (Functionally this
  // reads unwritten NVM — fine for timing.)
  workload::SimHeap heap2(cfg.address_space, 1);
  workload::TraceBundle b2 = workload::generate_phased(p, 0, heap2, nullptr);
  System cold(cfg);
  cold.load_trace(0, std::move(b2.measured));
  cold.run();

  EXPECT_LT(warm.metrics().llc_miss_rate, cold.metrics().llc_miss_rate);
}

TEST(SystemPhases, PercentilesPopulated) {
  SystemConfig cfg = SystemConfig::tiny();
  cfg.mechanism = Mechanism::kOptimal;
  workload::WorkloadParams p = workload::default_params(WorkloadKind::kSps);
  p.setup_elems = 2000;
  p.ops = 200;
  p.compute_per_op = 16;
  workload::SimHeap heap(cfg.address_space, 1);
  System sys(cfg);
  sys.load_trace(0, workload::generate(p, 0, heap, nullptr));
  sys.run();
  const Metrics m = sys.metrics();
  EXPECT_GT(m.pload_latency_p99, 0u);
  EXPECT_GE(m.pload_latency_p99, m.pload_latency_p50);
}

}  // namespace
}  // namespace ntcsim::sim
