#include "common/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace ntcsim {
namespace {

TEST(Table, FormatsNumbers) {
  EXPECT_EQ(Table::fmt(1.23456, 3), "1.235");
  EXPECT_EQ(Table::fmt(2.0, 1), "2.0");
  EXPECT_EQ(Table::fmt(0.5, 0), "0");  // banker-free snprintf rounding: 0.5 -> 0
}

TEST(Table, PrintsHeaderAndRows) {
  Table t({"workload", "SP", "TC"});
  t.add_row("sps", {0.3, 0.98});
  std::ostringstream oss;
  t.print(oss);
  const std::string out = oss.str();
  EXPECT_NE(out.find("workload"), std::string::npos);
  EXPECT_NE(out.find("sps"), std::string::npos);
  EXPECT_NE(out.find("0.300"), std::string::npos);
  EXPECT_NE(out.find("0.980"), std::string::npos);
}

TEST(Table, ColumnsAligned) {
  Table t({"a", "long_header"});
  t.add_row({"xxxxxxxx", "1"});
  std::ostringstream oss;
  t.print(oss);
  std::istringstream iss(oss.str());
  std::string header, sep, row;
  std::getline(iss, header);
  std::getline(iss, sep);
  std::getline(iss, row);
  // Column 2 starts at the same offset in header and row.
  EXPECT_EQ(header.find("long_header"), row.find('1'));
}

TEST(Table, RowWidthMismatchAborts) {
  Table t({"a", "b"});
  EXPECT_DEATH(t.add_row({"only-one"}), "row width");
}

}  // namespace
}  // namespace ntcsim
