#include "sim/timeline.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "workload/workloads.hpp"

namespace ntcsim::sim {
namespace {

std::vector<TimelineSample> sample_run(Mechanism mech, Cycle interval) {
  SystemConfig cfg = SystemConfig::tiny();
  cfg.mechanism = mech;
  workload::WorkloadParams p = workload::default_params(WorkloadKind::kSps);
  p.setup_elems = 1000;
  p.ops = 300;
  p.compute_per_op = 32;
  workload::SimHeap heap(cfg.address_space, 1);
  System sys(cfg);
  sys.load_trace(0, workload::generate(p, 0, heap, nullptr));
  return run_with_timeline(sys, interval);
}

TEST(Timeline, SamplesAreMonotonic) {
  const auto samples = sample_run(Mechanism::kTc, 2000);
  ASSERT_GT(samples.size(), 2u);
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_GT(samples[i].cycle, samples[i - 1].cycle);
    EXPECT_GE(samples[i].committed_txs, samples[i - 1].committed_txs);
    EXPECT_GE(samples[i].nvm_writes, samples[i - 1].nvm_writes);
  }
}

TEST(Timeline, FinalSampleCoversWholeRun) {
  const auto samples = sample_run(Mechanism::kTc, 2000);
  // sps: setup batches + 300 measured swaps all commit by the end.
  EXPECT_GT(samples.back().committed_txs, 300u);
  EXPECT_GT(samples.back().nvm_writes, 0u);
}

TEST(Timeline, NtcOccupancyOnlyUnderTc) {
  const auto tc = sample_run(Mechanism::kTc, 2000);
  bool any_occupancy = false;
  for (const auto& s : tc) any_occupancy |= s.ntc_occupancy > 0;
  EXPECT_TRUE(any_occupancy);

  const auto opt = sample_run(Mechanism::kOptimal, 2000);
  for (const auto& s : opt) EXPECT_EQ(s.ntc_occupancy, 0u);
}

TEST(Timeline, CsvHasHeaderAndAllRows) {
  const auto samples = sample_run(Mechanism::kTc, 4000);
  std::ostringstream oss;
  write_timeline_csv(oss, samples);
  std::istringstream iss(oss.str());
  std::string line;
  std::size_t rows = 0;
  while (std::getline(iss, line)) ++rows;
  EXPECT_EQ(rows, samples.size() + 1);
  EXPECT_NE(oss.str().find("cycle,committed_txs"), std::string::npos);
}

TEST(Timeline, WindowRateReflectsActivity) {
  const auto samples = sample_run(Mechanism::kTc, 2000);
  double peak = 0;
  for (const auto& s : samples) peak = std::max(peak, s.window_tx_per_kilocycle);
  EXPECT_GT(peak, 0.5);  // some window committed transactions
}

}  // namespace
}  // namespace ntcsim::sim
