#include "core/trace_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "workload/workloads.hpp"

namespace ntcsim::core {
namespace {

Trace sample_trace() {
  Trace t;
  t.push(MicroOp::tx_begin(1));
  t.push(MicroOp::load(0x200000000ULL, true));
  t.push(MicroOp::store(0x200000040ULL, 0xABCD, true));
  t.push(MicroOp::ntstore(0x3C0000000ULL, 7));
  t.push(MicroOp::clwb(0x200000040ULL, FlushKind::kData));
  t.push(MicroOp::sfence());
  t.push(MicroOp::pcommit());
  t.push(MicroOp::tx_end());
  t.push(MicroOp::compute());
  return t;
}

TEST(TraceIo, RoundTripPreservesEveryField) {
  const Trace in = sample_trace();
  std::stringstream ss;
  ASSERT_TRUE(write_trace(ss, in).ok);
  Trace out;
  const auto r = read_trace(ss, out);
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_EQ(out.size(), in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(out[i].kind, in[i].kind) << "op " << i;
    EXPECT_EQ(out[i].flush, in[i].flush) << "op " << i;
    EXPECT_EQ(out[i].persistent, in[i].persistent) << "op " << i;
    EXPECT_EQ(out[i].addr, in[i].addr) << "op " << i;
    EXPECT_EQ(out[i].value, in[i].value) << "op " << i;
  }
}

TEST(TraceIo, EmptyTraceRoundTrips) {
  std::stringstream ss;
  ASSERT_TRUE(write_trace(ss, Trace{}).ok);
  Trace out;
  ASSERT_TRUE(read_trace(ss, out).ok);
  EXPECT_EQ(out.size(), 0u);
}

TEST(TraceIo, RejectsBadMagic) {
  std::stringstream ss("definitely not a trace file");
  Trace out;
  const auto r = read_trace(ss, out);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("magic"), std::string::npos);
}

TEST(TraceIo, RejectsTruncation) {
  const Trace in = sample_trace();
  std::stringstream ss;
  ASSERT_TRUE(write_trace(ss, in).ok);
  const std::string full = ss.str();
  std::stringstream cut(full.substr(0, full.size() - 10));
  Trace out;
  const auto r = read_trace(cut, out);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("truncated"), std::string::npos);
}

TEST(TraceIo, RejectsCorruptKind) {
  const Trace in = sample_trace();
  std::stringstream ss;
  ASSERT_TRUE(write_trace(ss, in).ok);
  std::string bytes = ss.str();
  bytes[16] = 0x7F;  // first record's kind
  std::stringstream bad(bytes);
  Trace out;
  const auto r = read_trace(bad, out);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("corrupt"), std::string::npos);
}

TEST(TraceIo, WorkloadTraceRoundTripsExactly) {
  AddressSpace space;
  workload::SimHeap heap(space, 1);
  workload::WorkloadParams p = workload::default_params(WorkloadKind::kBtree);
  p.setup_elems = 200;
  p.ops = 50;
  const Trace in = workload::generate(p, 0, heap, nullptr);
  std::stringstream ss;
  ASSERT_TRUE(write_trace(ss, in).ok);
  Trace out;
  ASSERT_TRUE(read_trace(ss, out).ok);
  ASSERT_EQ(out.size(), in.size());
  EXPECT_EQ(out.transactions(), in.transactions());
  for (std::size_t i = 0; i < in.size(); i += 97) {  // spot-check
    EXPECT_EQ(out[i].addr, in[i].addr);
    EXPECT_EQ(out[i].value, in[i].value);
  }
}

TEST(TraceIo, FileRoundTrip) {
  const Trace in = sample_trace();
  const std::string path = ::testing::TempDir() + "/ntcsim_trace_test.bin";
  ASSERT_TRUE(save_trace(path, in).ok);
  Trace out;
  const auto r = load_trace(path, out);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(out.size(), in.size());
  EXPECT_FALSE(load_trace(path + ".missing", out).ok);
}

}  // namespace
}  // namespace ntcsim::core
