#include "txcache/tx_cache.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "recovery/images.hpp"

namespace ntcsim::txcache {
namespace {

class TxCacheTest : public ::testing::Test {
 protected:
  TxCacheTest() : cfg_(SystemConfig::tiny()) {
    cfg_.ntc.size_bytes = 512;  // 8 entries
    mem_ = std::make_unique<mem::MemorySystem>(cfg_, events_, stats_);
    durable_ = std::make_unique<recovery::DurableState>(stats_);
    mem_->set_nvm_observer(durable_.get());
    ntc_ = std::make_unique<TxCache>("ntc0", 0, cfg_.ntc, cfg_.address_space,
                                     *mem_, stats_);
    nvm_ = cfg_.address_space.nvm_base();
  }

  void run(Cycle cycles) {
    for (Cycle i = 0; i < cycles; ++i) {
      events_.drain_until(now_);
      ntc_->tick(now_);
      mem_->tick(now_);
      ++now_;
    }
    events_.drain_until(now_);
  }

  SystemConfig cfg_;
  EventQueue events_;
  StatSet stats_;
  std::unique_ptr<mem::MemorySystem> mem_;
  std::unique_ptr<recovery::DurableState> durable_;
  std::unique_ptr<TxCache> ntc_;
  Addr nvm_ = 0;
  Cycle now_ = 0;
};

TEST_F(TxCacheTest, CapacityMatchesConfig) {
  EXPECT_EQ(ntc_->capacity(), 8u);
  EXPECT_EQ(ntc_->occupancy(), 0u);
  EXPECT_TRUE(ntc_->drained());
}

TEST_F(TxCacheTest, ActiveEntriesAreNotDrained) {
  ASSERT_TRUE(ntc_->write(now_, nvm_, 1, 1));
  ASSERT_TRUE(ntc_->write(now_, nvm_ + 64, 2, 1));
  run(2000);
  EXPECT_EQ(stats_.counter_value("nvm.writes"), 0u);  // uncommitted: buffered
  EXPECT_EQ(ntc_->occupancy(), 2u);
  EXPECT_EQ(durable_->load(nvm_), 0u);
}

TEST_F(TxCacheTest, CommitDrainsToNvmAndAcksFreeEntries) {
  ASSERT_TRUE(ntc_->write(now_, nvm_, 0xA, 1));
  ASSERT_TRUE(ntc_->write(now_, nvm_ + 64, 0xB, 1));
  ntc_->commit(1);
  run(3000);
  EXPECT_EQ(stats_.counter_value("nvm.writes.txcache"), 2u);
  EXPECT_EQ(stats_.counter_value("ntc0.acks"), 2u);
  EXPECT_EQ(ntc_->occupancy(), 0u);
  EXPECT_TRUE(ntc_->drained());
  EXPECT_EQ(durable_->load(nvm_), 0xAu);
  EXPECT_EQ(durable_->load(nvm_ + 64), 0xBu);
}

TEST_F(TxCacheTest, FifoOrderAcrossTransactions) {
  // Same line written in two consecutive transactions: the NVM must end
  // with the later value (program order preserved by FIFO + same-address
  // ordering at the controller).
  ASSERT_TRUE(ntc_->write(now_, nvm_, 1, 1));
  ntc_->commit(1);
  ASSERT_TRUE(ntc_->write(now_, nvm_, 2, 2));
  ntc_->commit(2);
  run(3000);
  EXPECT_EQ(durable_->load(nvm_), 2u);
  EXPECT_TRUE(ntc_->drained());
}

TEST_F(TxCacheTest, WriteRejectedWhenFull) {
  for (unsigned i = 0; i < 8; ++i) {
    ASSERT_TRUE(ntc_->write(now_, nvm_ + i * 64, i, 1));
  }
  EXPECT_FALSE(ntc_->write(now_, nvm_ + 8 * 64, 8, 1));
  EXPECT_EQ(stats_.counter_value("ntc0.full_rejects"), 1u);
  EXPECT_TRUE(ntc_->full());
}

TEST_F(TxCacheTest, CommitFreesSpaceForNewWrites) {
  for (unsigned i = 0; i < 8; ++i) {
    ASSERT_TRUE(ntc_->write(now_, nvm_ + i * 64, i, 1));
  }
  ntc_->commit(1);
  run(5000);
  EXPECT_EQ(ntc_->occupancy(), 0u);
  EXPECT_TRUE(ntc_->write(now_, nvm_, 99, 2));
}

TEST_F(TxCacheTest, ProbeMatchesBufferedLines) {
  ASSERT_TRUE(ntc_->write(now_, nvm_ + 8, 7, 1));
  EXPECT_TRUE(ntc_->probe(nvm_));       // same line (line-aligned match)
  EXPECT_FALSE(ntc_->probe(nvm_ + 64)); // different line
  EXPECT_EQ(stats_.counter_value("ntc0.probe_hits"), 1u);
  EXPECT_EQ(stats_.counter_value("ntc0.probe_misses"), 1u);
}

TEST_F(TxCacheTest, ProbeSeesCommittedUndrainedData) {
  ASSERT_TRUE(ntc_->write(now_, nvm_, 7, 1));
  ntc_->commit(1);
  // Do not run: entry committed but not yet drained/acked.
  EXPECT_TRUE(ntc_->probe(nvm_));
}

TEST_F(TxCacheTest, SnapshotSeparatesActiveAndCommitted) {
  ASSERT_TRUE(ntc_->write(now_, nvm_, 1, 1));
  ntc_->commit(1);
  ASSERT_TRUE(ntc_->write(now_, nvm_ + 64, 2, 2));  // still active
  const auto snap = ntc_->snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_TRUE(snap[0].committed);
  EXPECT_EQ(snap[0].words[0].second, 1u);
  EXPECT_FALSE(snap[1].committed);
}

TEST_F(TxCacheTest, SnapshotIsOldestFirst) {
  for (unsigned i = 0; i < 4; ++i) {
    ASSERT_TRUE(ntc_->write(now_, nvm_ + i * 64, i, 1));
  }
  const auto snap = ntc_->snapshot();
  ASSERT_EQ(snap.size(), 4u);
  for (unsigned i = 0; i < 4; ++i) {
    EXPECT_EQ(snap[i].words[0].second, i);
  }
}

TEST_F(TxCacheTest, OverflowFallbackSpillsActiveEntries) {
  // Threshold 0.9 * 8 = 7.2 -> trips at 8... use 0.5 to trip earlier.
  cfg_.ntc.overflow_threshold = 0.5;
  ntc_ = std::make_unique<TxCache>("ntcX", 0, cfg_.ntc, cfg_.address_space,
                                   *mem_, stats_);
  for (unsigned i = 0; i < 6; ++i) {
    ASSERT_TRUE(ntc_->write(now_, nvm_ + i * 64, i, 1));
  }
  run(3000);
  EXPECT_GT(stats_.counter_value("ntcX.spills"), 0u);
  EXPECT_GT(stats_.counter_value("nvm.writes.shadow"), 0u);
  // Spilled uncommitted data must NOT have reached its home address.
  for (unsigned i = 0; i < 6; ++i) {
    EXPECT_EQ(durable_->load(nvm_ + i * 64), 0u);
  }
}

TEST_F(TxCacheTest, SpilledEntriesReachHomeAfterCommit) {
  cfg_.ntc.overflow_threshold = 0.5;
  ntc_ = std::make_unique<TxCache>("ntcX", 0, cfg_.ntc, cfg_.address_space,
                                   *mem_, stats_);
  for (unsigned i = 0; i < 6; ++i) {
    ASSERT_TRUE(ntc_->write(now_, nvm_ + i * 64, 10 + i, 1));
  }
  run(2000);
  ntc_->commit(1);
  run(5000);
  for (unsigned i = 0; i < 6; ++i) {
    EXPECT_EQ(durable_->load(nvm_ + i * 64), 10u + i) << "entry " << i;
  }
  EXPECT_TRUE(ntc_->drained());
}

TEST_F(TxCacheTest, SpilledDataStillProbeable) {
  cfg_.ntc.overflow_threshold = 0.3;
  ntc_ = std::make_unique<TxCache>("ntcX", 0, cfg_.ntc, cfg_.address_space,
                                   *mem_, stats_);
  for (unsigned i = 0; i < 5; ++i) {
    ASSERT_TRUE(ntc_->write(now_, nvm_ + i * 64, i, 1));
  }
  run(3000);
  ASSERT_GT(stats_.counter_value("ntcX.spills"), 0u);
  // Every written line remains visible to LLC probes (ring or spill table).
  for (unsigned i = 0; i < 5; ++i) {
    EXPECT_TRUE(ntc_->probe(nvm_ + i * 64)) << "line " << i;
  }
}

TEST_F(TxCacheTest, SameTxSameLineWritesCoalesce) {
  // Within one open transaction, same-line writes merge into the existing
  // cache-line entry: one entry, one NVM write, newest value wins.
  ASSERT_TRUE(ntc_->write(now_, nvm_, 1, 1));
  ASSERT_TRUE(ntc_->write(now_, nvm_, 2, 1));
  ASSERT_TRUE(ntc_->write(now_, nvm_ + 8, 3, 1));  // same line, other word
  EXPECT_EQ(ntc_->occupancy(), 1u);
  EXPECT_EQ(stats_.counter_value("ntc0.merges"), 2u);
  ntc_->commit(1);
  run(3000);
  EXPECT_EQ(durable_->load(nvm_), 2u);
  EXPECT_EQ(durable_->load(nvm_ + 8), 3u);
  EXPECT_EQ(stats_.counter_value("nvm.writes.txcache"), 1u);
}

TEST_F(TxCacheTest, CrossTxSameLineKeepsBothVersions) {
  // Multi-versioning: the same line written by two transactions keeps two
  // entries; both drain, in order.
  ASSERT_TRUE(ntc_->write(now_, nvm_, 1, 1));
  ntc_->commit(1);
  ASSERT_TRUE(ntc_->write(now_, nvm_, 2, 2));
  EXPECT_EQ(ntc_->occupancy(), 2u);
  ntc_->commit(2);
  run(3000);
  EXPECT_EQ(durable_->load(nvm_), 2u);
  EXPECT_EQ(stats_.counter_value("nvm.writes.txcache"), 2u);
}

TEST_F(TxCacheTest, CommittedEntryIsNotMergedInto) {
  // Once a transaction committed, its entries are immutable versions: a new
  // transaction's write to the line allocates a fresh entry even before the
  // committed one drains.
  ASSERT_TRUE(ntc_->write(now_, nvm_, 1, 1));
  ntc_->commit(1);
  ASSERT_TRUE(ntc_->write(now_, nvm_, 2, 2));
  const auto snap = ntc_->snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_TRUE(snap[0].committed);
  EXPECT_EQ(snap[0].words[0].second, 1u);
  EXPECT_FALSE(snap[1].committed);
  EXPECT_EQ(snap[1].words[0].second, 2u);
}

TEST_F(TxCacheTest, MergeWorksEvenWhenRingIsFull) {
  for (unsigned i = 0; i < 8; ++i) {
    ASSERT_TRUE(ntc_->write(now_, nvm_ + i * 64, i, 1));
  }
  EXPECT_TRUE(ntc_->full());
  // New line: rejected. Same line of the open tx: coalesces.
  EXPECT_FALSE(ntc_->write(now_, nvm_ + 8 * 64, 9, 1));
  EXPECT_TRUE(ntc_->write(now_, nvm_ + 8, 9, 1));
}

TEST_F(TxCacheTest, InterleavedCommitOnlyDrainsCommittedTx) {
  ASSERT_TRUE(ntc_->write(now_, nvm_, 1, 1));
  ASSERT_TRUE(ntc_->write(now_, nvm_ + 64, 2, 2));  // (would be cross-core ids)
  ntc_->commit(2);
  run(3000);
  // FIFO drain stops at the first ACTIVE entry: tx 2's committed entry is
  // *behind* tx 1's active entry, so nothing drains yet (program order).
  EXPECT_EQ(stats_.counter_value("nvm.writes"), 0u);
  ntc_->commit(1);
  run(3000);
  EXPECT_EQ(stats_.counter_value("nvm.writes"), 2u);
}

TEST_F(TxCacheTest, DrainRespectsDrainPerCycleBudget) {
  cfg_.ntc.drain_per_cycle = 2;
  ntc_ = std::make_unique<TxCache>("ntcY", 0, cfg_.ntc, cfg_.address_space,
                                   *mem_, stats_);
  for (unsigned i = 0; i < 6; ++i) {
    ASSERT_TRUE(ntc_->write(now_, nvm_ + i * 64, i, 1));
  }
  ntc_->commit(1);
  // One tick may issue at most two entries.
  events_.drain_until(now_);
  ntc_->tick(now_);
  EXPECT_EQ(stats_.counter_value("ntcY.issued"), 2u);
  run(3000);
  EXPECT_EQ(stats_.counter_value("ntcY.issued"), 6u);
}

TEST_F(TxCacheTest, OccupancyNeverExceedsCapacity) {
  Rng rng(3);
  TxId tx = 1;
  for (int step = 0; step < 3000; ++step) {
    if (rng.chance(3, 4)) {
      ntc_->write(now_, nvm_ + rng.below(32) * 64, step, tx);
    } else {
      ntc_->commit(tx++);
    }
    ASSERT_LE(ntc_->occupancy(), ntc_->capacity());
    if (rng.chance(1, 2)) run(1 + rng.below(8));
  }
  ntc_->commit(tx);
  run(20000);
  EXPECT_TRUE(ntc_->drained());
}

TEST_F(TxCacheTest, SnapshotExcludesDrainedData) {
  ASSERT_TRUE(ntc_->write(now_, nvm_, 5, 1));
  ntc_->commit(1);
  run(3000);  // fully drained and acked
  EXPECT_TRUE(ntc_->snapshot().empty());
}

}  // namespace
}  // namespace ntcsim::txcache
