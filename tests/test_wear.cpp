#include <gtest/gtest.h>

#include "mem/memory_controller.hpp"
#include "sim/system.hpp"
#include "workload/workloads.hpp"

namespace ntcsim::mem {
namespace {

TEST(Wear, CountsArrayWritesPerLine) {
  MemCtrlConfig cfg;
  cfg.ranks = 1;
  cfg.banks_per_rank = 2;
  cfg.read_queue = 4;
  cfg.write_queue = 8;
  EventQueue events;
  StatSet stats;
  MemoryController mc("nvm", cfg, events, stats);

  Cycle now = 0;
  auto tick = [&](unsigned n) {
    for (unsigned i = 0; i < n; ++i) {
      events.drain_until(now);
      mc.tick(now);
      ++now;
    }
  };
  auto put = [&](Addr line) {
    MemRequest w;
    w.op = MemOp::kWrite;
    w.line_addr = line;
    while (!mc.enqueue(w, now)) tick(1);
  };

  put(0);
  put(64);
  tick(400);
  put(0);
  tick(400);

  const WearStats w = mc.wear();
  EXPECT_EQ(w.lines_touched, 2u);
  EXPECT_EQ(w.total_writes, 3u);
  EXPECT_EQ(w.max_writes, 2u);
  EXPECT_EQ(w.hottest_line, 0u);
  EXPECT_DOUBLE_EQ(w.mean_writes, 1.5);
}

TEST(Wear, ReadsDoNotWear) {
  MemCtrlConfig cfg;
  cfg.ranks = 1;
  cfg.banks_per_rank = 2;
  EventQueue events;
  StatSet stats;
  MemoryController mc("nvm", cfg, events, stats);
  MemRequest r;
  r.op = MemOp::kRead;
  r.line_addr = 0;
  ASSERT_TRUE(mc.enqueue(r, 0));
  for (Cycle now = 0; now < 400; ++now) {
    events.drain_until(now);
    mc.tick(now);
  }
  EXPECT_EQ(mc.wear().lines_touched, 0u);
}

TEST(Wear, QueueWorkloadConcentratesOnControlWords) {
  // The queue extension rewrites its head/tail line every transaction: the
  // hottest NVM line under TC must be far above the mean.
  SystemConfig cfg = SystemConfig::tiny();
  cfg.mechanism = Mechanism::kTc;
  workload::WorkloadParams p = workload::default_params(WorkloadKind::kQueue);
  p.setup_elems = 64;
  p.ops = 400;
  p.compute_per_op = 16;
  workload::SimHeap heap(cfg.address_space, 1);
  sim::System sys(cfg);
  sys.load_trace(0, workload::generate(p, 0, heap, nullptr));
  sys.run();
  const WearStats w = sys.memory().nvm_wear();
  ASSERT_GT(w.lines_touched, 0u);
  EXPECT_GT(w.max_writes, 50u);  // ~one control-line write per transaction
  EXPECT_GT(static_cast<double>(w.max_writes), 5.0 * w.mean_writes)
      << "control-word hotspot should dwarf the ring body";
}

}  // namespace
}  // namespace ntcsim::mem
