#include "workload/workloads.hpp"

#include <gtest/gtest.h>

#include "workload/emitter.hpp"

namespace ntcsim::workload {
namespace {

using core::OpKind;
using core::Trace;

WorkloadParams small(WorkloadKind kind) {
  WorkloadParams p = default_params(kind);
  p.setup_elems = 300;
  p.ops = 120;
  p.seed = 7;
  return p;
}

/// Structural well-formedness every workload trace must satisfy.
void check_trace(const Trace& t, const AddressSpace& space) {
  ASSERT_GT(t.size(), 0u);
  bool in_tx = false;
  TxId expect = 1;
  for (std::size_t i = 0; i < t.size(); ++i) {
    const auto& op = t[i];
    switch (op.kind) {
      case OpKind::kTxBegin:
        ASSERT_FALSE(in_tx) << "nested tx at op " << i;
        ASSERT_EQ(op.value, expect++);
        in_tx = true;
        break;
      case OpKind::kTxEnd:
        ASSERT_TRUE(in_tx);
        in_tx = false;
        break;
      case OpKind::kStore:
        if (op.persistent) {
          ASSERT_TRUE(in_tx) << "persistent store outside tx at op " << i;
          ASSERT_TRUE(space.is_persistent(op.addr));
          ASSERT_LT(op.addr, space.heap_base() + space.heap_bytes())
              << "store into reserved log/shadow region";
        }
        break;
      case OpKind::kLoad:
        ASSERT_EQ(op.persistent, space.is_persistent(op.addr));
        break;
      case OpKind::kCompute:
        break;
      default:
        FAIL() << "raw workload traces must not contain fences/flushes";
    }
  }
  ASSERT_FALSE(in_tx);
}

class WorkloadTest : public ::testing::TestWithParam<WorkloadKind> {};

TEST_P(WorkloadTest, TraceIsWellFormed) {
  const AddressSpace space;
  SimHeap heap(space, 1);
  const Trace t = generate(small(GetParam()), 0, heap, nullptr);
  check_trace(t, space);
}

TEST_P(WorkloadTest, DeterministicForSameSeed) {
  const AddressSpace space;
  SimHeap h1(space, 1), h2(space, 1);
  const Trace a = generate(small(GetParam()), 0, h1, nullptr);
  const Trace b = generate(small(GetParam()), 0, h2, nullptr);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].addr, b[i].addr) << "op " << i;
    EXPECT_EQ(a[i].value, b[i].value) << "op " << i;
  }
}

TEST_P(WorkloadTest, DifferentCoresUseDifferentAddresses) {
  const AddressSpace space;
  SimHeap heap(space, 2);
  const Trace a = generate(small(GetParam()), 0, heap, nullptr);
  const Trace b = generate(small(GetParam()), 1, heap, nullptr);
  Addr a_max = 0, b_min = ~0ULL;
  for (const auto& op : a.ops()) {
    if (op.kind == OpKind::kStore && op.persistent) {
      a_max = std::max(a_max, op.addr);
    }
  }
  for (const auto& op : b.ops()) {
    if (op.kind == OpKind::kStore && op.persistent) {
      b_min = std::min(b_min, op.addr);
    }
  }
  EXPECT_LT(a_max, b_min);
}

TEST_P(WorkloadTest, JournalMatchesTraceStores) {
  const AddressSpace space;
  SimHeap heap(space, 1);
  recovery::Journal journal(1);
  const Trace t = generate(small(GetParam()), 0, heap, &journal);
  std::size_t trace_pstores = 0;
  for (const auto& op : t.ops()) {
    if (op.kind == OpKind::kStore && op.persistent) ++trace_pstores;
  }
  std::size_t journal_writes = 0;
  for (const auto& tx : journal.per_core(0)) journal_writes += tx.writes.size();
  EXPECT_EQ(trace_pstores, journal_writes);
  EXPECT_EQ(journal.per_core(0).size(), t.transactions());
}

TEST_P(WorkloadTest, TransactionCountCoversOps) {
  const AddressSpace space;
  SimHeap heap(space, 1);
  const WorkloadParams p = small(GetParam());
  const Trace t = generate(p, 0, heap, nullptr);
  EXPECT_GE(t.transactions(), p.ops);  // measured ops + setup batches
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadTest,
                         ::testing::Values(WorkloadKind::kSps,
                                           WorkloadKind::kHashtable,
                                           WorkloadKind::kGraph,
                                           WorkloadKind::kRbtree,
                                           WorkloadKind::kBtree,
                                           WorkloadKind::kQueue,
                                           WorkloadKind::kSkiplist),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(WorkloadMix, LookupPctZeroMeansNoSearchTxs) {
  const AddressSpace space;
  SimHeap heap(space, 1);
  WorkloadParams p = small(WorkloadKind::kRbtree);
  p.lookup_pct = 0;
  recovery::Journal j(1);
  generate(p, 0, heap, &j);
  // Every measured tx is an insert: all txs have at least one write.
  for (const auto& tx : j.per_core(0)) {
    EXPECT_FALSE(tx.writes.empty());
  }
}

TEST(WorkloadMix, LookupHeavyHasReadOnlyTxs) {
  const AddressSpace space;
  SimHeap heap(space, 1);
  WorkloadParams p = small(WorkloadKind::kHashtable);
  p.lookup_pct = 100;
  recovery::Journal j(1);
  generate(p, 0, heap, &j);
  std::size_t read_only = 0;
  for (const auto& tx : j.per_core(0)) {
    if (tx.writes.empty()) ++read_only;
  }
  EXPECT_GE(read_only, p.ops / 2);
}

TEST(WorkloadMix, SpsTransactionsHaveExactlyTwoStores) {
  const AddressSpace space;
  SimHeap heap(space, 1);
  WorkloadParams p = small(WorkloadKind::kSps);
  recovery::Journal j(1);
  generate(p, 0, heap, &j);
  const auto& txs = j.per_core(0);
  // Skip setup transactions; the last p.ops txs are swaps.
  for (std::size_t i = txs.size() - p.ops; i < txs.size(); ++i) {
    EXPECT_EQ(txs[i].writes.size(), 2u);
  }
}

TEST(WorkloadMix, DescriptionsMatchTable3) {
  EXPECT_NE(description(WorkloadKind::kGraph).find("adjacency"),
            std::string_view::npos);
  EXPECT_NE(description(WorkloadKind::kRbtree).find("red-black"),
            std::string_view::npos);
  EXPECT_NE(description(WorkloadKind::kSps).find("swap"),
            std::string_view::npos);
  EXPECT_NE(description(WorkloadKind::kBtree).find("B+tree"),
            std::string_view::npos);
  EXPECT_NE(description(WorkloadKind::kHashtable).find("hashtable"),
            std::string_view::npos);
}

}  // namespace
}  // namespace ntcsim::workload
