#!/usr/bin/env python3
"""Documentation lint for ntcsim. Stdlib only.

Two checks, both aimed at doc drift:

1. Link check: every relative markdown link in every tracked *.md must
   point at a file (or directory) that exists. External links
   (http/https/mailto) and pure in-page anchors are skipped -- CI must
   not depend on the network.

2. Command smoke: fenced ```sh blocks in README.md and
   docs/BENCHMARKING.md are parsed for `ntcsim` invocations; each one is
   re-run against the `tiny` preset at small scale (pass --ntcsim=PATH
   to enable). A documented flag that no longer exists, or a documented
   command that crashes, fails the lint. Bench binaries and build
   commands are not smoke-run -- they are covered by ctest's smoke label.

3. ntclint smoke: fenced ```sh blocks in docs/ARCHITECTURE.md are parsed
   for `ntclint` invocations (pass --ntclint=PATH to enable); each runs
   from the repo root and must exit 0, so the documented lint workflow
   cannot drift from the binary's actual flags.

Usage:
  python3 tools/doclint.py [--root=DIR] [--ntcsim=PATH/TO/ntcsim]
                           [--ntclint=PATH/TO/ntclint]

Exit codes: 0 ok, 1 failures found, 2 usage error.
"""

import os
import re
import shlex
import subprocess
import sys
import tempfile

SKIP_DIRS = {".git", "build", ".claude", ".ccache", "third_party"}

# [text](target) -- excluding images' extra ! is unnecessary: image links
# must resolve too. Code spans are stripped first.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
CODE_SPAN_RE = re.compile(r"`[^`]*`")

# Blocks whose commands we smoke-run.
SMOKE_DOCS = ("README.md", os.path.join("docs", "BENCHMARKING.md"))


def find_markdown(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d not in SKIP_DIRS]
        for f in sorted(filenames):
            if f.endswith(".md"):
                yield os.path.join(dirpath, f)


def check_links(root):
    failures = []
    for path in find_markdown(root):
        with open(path, encoding="utf-8") as f:
            in_fence = False
            for lineno, line in enumerate(f, 1):
                if line.lstrip().startswith("```"):
                    in_fence = not in_fence
                    continue
                if in_fence:
                    continue
                for target in LINK_RE.findall(CODE_SPAN_RE.sub("", line)):
                    if target.startswith(("http://", "https://", "mailto:")):
                        continue
                    target = target.split("#", 1)[0]
                    if not target:  # pure in-page anchor
                        continue
                    resolved = os.path.normpath(
                        os.path.join(os.path.dirname(path), target))
                    if os.path.commonpath([resolved, root]) != root:
                        continue  # escapes the repo (GitHub-side URLs)
                    if not os.path.exists(resolved):
                        failures.append("%s:%d: broken link -> %s"
                                        % (os.path.relpath(path, root), lineno,
                                           target))
    return failures


def shell_blocks(path):
    """Yield logical command lines from ```sh fences, joining \\-continuations
    and dropping comment-only lines and inline comments."""
    lines = []
    with open(path, encoding="utf-8") as f:
        in_sh = False
        pending = ""
        for raw in f:
            stripped = raw.strip()
            if stripped.startswith("```"):
                in_sh = stripped == "```sh"
                pending = ""
                continue
            if not in_sh:
                continue
            if pending:
                stripped = pending + " " + stripped
                pending = ""
            if stripped.endswith("\\"):
                pending = stripped[:-1].strip()
                continue
            # Inline comments: shlex handles quoting, but these are simple
            # doc lines -- cut at an unquoted " #".
            cut = stripped.find(" #")
            if cut >= 0:
                stripped = stripped[:cut]
            if not stripped or stripped.startswith("#"):
                continue
            lines.append(stripped)
    return lines


def tiny_args(args):
    """Rewrite a documented argv (minus the binary) to run fast: tiny
    preset, small scale, capped request/op counts. Appended flags win
    because the CLI parses left to right (and --preset is order-free)."""
    out = []
    for a in args:
        if a.startswith("--requests="):
            a = "--requests=40"
        elif a.startswith("--ops="):
            a = "--ops=200"
        elif a.startswith("--setup="):
            a = "--setup=200"
        elif a.startswith("--config="):
            return None  # needs a user-supplied file; nothing to smoke
        out.append(a)
    out += ["--preset=tiny", "--scale=0.01", "--jobs=2", "--setup=200"]
    return out


def smoke_commands(root, ntcsim):
    failures = []
    ran = 0
    ran_nodes = 0  # documented --nodes (cluster) invocations exercised
    with tempfile.TemporaryDirectory() as tmp:
        for doc in SMOKE_DOCS:
            path = os.path.join(root, doc)
            if not os.path.exists(path):
                failures.append("%s: missing (SMOKE_DOCS drift)" % doc)
                continue
            for cmd in shell_blocks(path):
                # Strip output redirections; run everything in a tempdir
                # so --profile/--dump-config artifacts don't litter.
                cmd = re.split(r"\s+>{1,2}\s*\S+", cmd)[0]
                try:
                    tokens = shlex.split(cmd)
                except ValueError as e:
                    failures.append("%s: unparseable command %r (%s)"
                                    % (doc, cmd, e))
                    continue
                # Skip env-assignment prefixes (FOO=1 cmd ...).
                while tokens and "=" in tokens[0] and not tokens[0].startswith("-"):
                    tokens.pop(0)
                if not tokens or not tokens[0].endswith("/ntcsim"):
                    continue
                args = tiny_args(tokens[1:])
                if args is None:
                    continue
                ran += 1
                if any(a.startswith("--nodes") for a in args):
                    ran_nodes += 1
                proc = subprocess.run([ntcsim] + args, cwd=tmp,
                                      stdout=subprocess.PIPE,
                                      stderr=subprocess.STDOUT, timeout=600)
                # --crash-at demos report the recovered-state verdict in
                # the exit code (2 = atomicity violation); the README
                # deliberately shows one under Optimal, so both verdicts
                # count as "the documented command works".
                ok = (0, 2) if any(a.startswith("--crash-at=") for a in args) \
                    else (0,)
                if proc.returncode not in ok:
                    failures.append(
                        "%s: documented command failed (exit %d):\n  %s\n%s"
                        % (doc, proc.returncode, cmd,
                           proc.stdout.decode(errors="replace")[-2000:]))
    if ran == 0:
        failures.append("smoke: no ntcsim commands found in %s -- the "
                        "extractor or the docs broke" % (SMOKE_DOCS,))
    elif ran_nodes == 0:
        failures.append("smoke: no documented --nodes invocation was "
                        "smoke-run -- the cluster docs lost their example")
    return failures, ran


def smoke_ntclint(root, ntclint):
    """Run every documented `ntclint` command from docs/ARCHITECTURE.md
    against the real binary; relative paths resolve from the repo root."""
    failures = []
    ran = 0
    doc = os.path.join("docs", "ARCHITECTURE.md")
    path = os.path.join(root, doc)
    if not os.path.exists(path):
        return ["%s: missing (ntclint smoke drift)" % doc], 0
    for cmd in shell_blocks(path):
        try:
            tokens = shlex.split(cmd)
        except ValueError as e:
            failures.append("%s: unparseable command %r (%s)" % (doc, cmd, e))
            continue
        if not tokens or os.path.basename(tokens[0]) != "ntclint":
            continue
        ran += 1
        proc = subprocess.run([ntclint] + tokens[1:], cwd=root,
                              stdout=subprocess.PIPE,
                              stderr=subprocess.STDOUT, timeout=600)
        if proc.returncode != 0:
            failures.append(
                "%s: documented ntclint command failed (exit %d):\n  %s\n%s"
                % (doc, proc.returncode, cmd,
                   proc.stdout.decode(errors="replace")[-2000:]))
    if ran == 0:
        failures.append("smoke: no ntclint commands found in %s -- the "
                        "extractor or the docs broke" % doc)
    return failures, ran


def main(argv):
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    ntcsim = None
    ntclint = None
    for a in argv[1:]:
        if a.startswith("--root="):
            root = os.path.abspath(a.split("=", 1)[1])
        elif a.startswith("--ntcsim="):
            ntcsim = os.path.abspath(a.split("=", 1)[1])
        elif a.startswith("--ntclint="):
            ntclint = os.path.abspath(a.split("=", 1)[1])
        else:
            sys.stderr.write(__doc__)
            return 2

    failures = check_links(root)
    n_md = len(list(find_markdown(root)))
    print("doclint: checked links in %d markdown files" % n_md)

    if ntcsim:
        smoke_fail, ran = smoke_commands(root, ntcsim)
        failures += smoke_fail
        print("doclint: smoke-ran %d documented ntcsim commands" % ran)
    else:
        print("doclint: --ntcsim not given; skipping command smoke")

    if ntclint:
        lint_fail, ran = smoke_ntclint(root, ntclint)
        failures += lint_fail
        print("doclint: smoke-ran %d documented ntclint commands" % ran)
    else:
        print("doclint: --ntclint not given; skipping ntclint smoke")

    for f in failures:
        sys.stderr.write("doclint: FAIL: %s\n" % f)
    print("doclint: %s" % ("FAILED (%d)" % len(failures) if failures else "OK"))
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
