// Clang ASTMatchers backend — type-accurate versions of the rules the
// lexical backend approximates. Built only under -DNTC_LINT=ON against
// the pinned LLVM major (tools/ntclint/CMakeLists.txt); everywhere else
// ast_stub.cpp provides the no-op.
//
// Scope notes:
//  * Findings are attributed by *expansion* location and only reported
//    for files in the requested set, so `#include`d headers are covered
//    when they were part of the scan and skipped (no phantom paths)
//    when they were not. The driver dedupes (file, line, rule) against
//    the lexical backend.
//  * tap-guard stays lexical-only: deciding whether a `sink->on_event`
//    callsite is dominated by a null check is flow analysis, not a
//    matcher, and the 12-line lexical window has had no false negatives
//    in this tree.
//  * The side-effectful-assert half of assert-discipline also stays
//    lexical: `NTC_ASSERT(c, ...)` conditions vanish into macro
//    expansions (and into nothing under NDEBUG), so the spelled text is
//    the reliable artifact. The AST half covers raw abort() calls.
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "clang/AST/ASTContext.h"
#include "clang/AST/Attr.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "clang/ASTMatchers/ASTMatchers.h"
#include "clang/Basic/Diagnostic.h"
#include "clang/Basic/SourceManager.h"
#include "clang/Tooling/CompilationDatabase.h"
#include "clang/Tooling/Tooling.h"

#include "ntclint.hpp"

namespace ntclint {
namespace {

using clang::ast_matchers::MatchFinder;
namespace m = clang::ast_matchers;

/// Shared state for every callback: where to report and which files the
/// user actually asked about (keyed by normalized path, valued by the
/// spelling the driver used, so suppression lookup matches).
struct ScanState {
  std::map<std::string, std::string> requested;  // norm_rel -> driver path
  std::vector<Finding>* out = nullptr;
};

/// Resolve a location to (driver path, line); false if the expansion
/// lands outside the requested file set.
bool locate(ScanState& st, const MatchFinder::MatchResult& r,
            clang::SourceLocation loc, std::string& file, unsigned& line) {
  if (loc.isInvalid()) return false;
  const clang::SourceManager& sm = *r.SourceManager;
  const clang::SourceLocation ex = sm.getExpansionLoc(loc);
  const llvm::StringRef name = sm.getFilename(ex);
  if (name.empty()) return false;
  const auto it = st.requested.find(norm_rel(name.str()));
  if (it == st.requested.end()) return false;
  file = it->second;
  line = sm.getExpansionLineNumber(ex);
  return true;
}

void report(ScanState& st, const MatchFinder::MatchResult& r,
            clang::SourceLocation loc, RuleId id, const std::string& msg) {
  Finding f;
  if (!locate(st, r, loc, f.file, f.line)) return;
  f.id = id;
  f.message = msg;
  st.out->push_back(f);
}

/// Generic callback wrapper so each rule is a lambda, not a class.
class Cb : public MatchFinder::MatchCallback {
 public:
  using Fn = std::function<void(const MatchFinder::MatchResult&)>;
  explicit Cb(Fn fn) : fn_(std::move(fn)) {}
  void run(const MatchFinder::MatchResult& r) override { fn_(r); }

 private:
  Fn fn_;
};

/// Walk up the dynamic parent chain to the enclosing function definition.
const clang::FunctionDecl* enclosing_function(clang::ASTContext& ctx,
                                              const clang::Stmt& s) {
  auto parents = ctx.getParents(s);
  while (!parents.empty()) {
    const clang::DynTypedNode node = parents[0];
    if (const auto* fd = node.get<clang::FunctionDecl>()) return fd;
    parents = ctx.getParents(node);
  }
  return nullptr;
}

/// Hot = tick/step/advance/next_event_cycle (trailing underscores
/// ignored) or any decl in the chain carrying the NTC_HOT annotate
/// attribute.
bool is_hot_function(const clang::FunctionDecl* fd) {
  if (fd == nullptr) return false;
  std::string name = fd->getNameAsString();
  while (!name.empty() && name.back() == '_') name.pop_back();
  if (name == "tick" || name == "step" || name == "advance" ||
      name == "next_event_cycle") {
    return true;
  }
  for (const clang::FunctionDecl* d = fd; d != nullptr;
       d = d->getPreviousDecl()) {
    for (const auto* a : d->specific_attrs<clang::AnnotateAttr>()) {
      if (a->getAnnotation() == "ntc_hot") return true;
    }
  }
  return false;
}

bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

}  // namespace

bool ast_available() { return true; }

void ast_scan(const std::vector<std::string>& files,
              const std::string& build_dir,
              const std::vector<bool>& enabled, std::vector<Finding>& out) {
  ScanState st;
  st.out = &out;
  std::vector<std::string> tus;  // headers are reached via expansion locs
  for (const std::string& f : files) {
    st.requested[norm_rel(f)] = f;
    const std::size_t dot = f.find_last_of('.');
    const std::string ext = dot == std::string::npos ? "" : f.substr(dot);
    if (ext == ".cpp" || ext == ".cc" || ext == ".cxx") tus.push_back(f);
  }
  if (tus.empty()) return;

  std::string err;
  std::unique_ptr<clang::tooling::CompilationDatabase> db;
  if (!build_dir.empty()) {
    db = clang::tooling::CompilationDatabase::loadFromDirectory(build_dir,
                                                                err);
  }
  if (!db) {
    // Directory-mode fallback: a fixed command line good enough for this
    // tree's layout. -p <build> is the precise path.
    db = std::make_unique<clang::tooling::FixedCompilationDatabase>(
        ".", std::vector<std::string>{"-std=c++20", "-Isrc", "-Itools"});
  }

  auto on = [&enabled](RuleId id) {
    return enabled[static_cast<std::size_t>(id)];
  };

  MatchFinder finder;
  std::vector<std::unique_ptr<Cb>> cbs;
  auto add_cb = [&](Cb::Fn fn) -> Cb* {
    cbs.push_back(std::make_unique<Cb>(std::move(fn)));
    return cbs.back().get();
  };

  // ---------------------------------------------------------- determinism
  if (on(RuleId::kDeterminism)) {
    finder.addMatcher(
        m::callExpr(m::callee(m::functionDecl(m::hasAnyName(
                        "::rand", "::srand", "::time", "::clock",
                        "::gettimeofday", "::clock_gettime"))))
            .bind("libc-entropy"),
        add_cb([&st](const MatchFinder::MatchResult& r) {
          const auto* e = r.Nodes.getNodeAs<clang::CallExpr>("libc-entropy");
          report(st, r, e->getBeginLoc(), RuleId::kDeterminism,
                 "libc entropy/time call: simulation state must derive "
                 "from the seeded SplitMix64 Rng and the Cycle clock "
                 "(src/common/rng.hpp)");
        }));
    finder.addMatcher(
        m::cxxConstructExpr(
            m::hasDeclaration(m::cxxConstructorDecl(
                m::ofClass(m::hasName("::std::random_device")))))
            .bind("rd"),
        add_cb([&st](const MatchFinder::MatchResult& r) {
          const auto* e = r.Nodes.getNodeAs<clang::CXXConstructExpr>("rd");
          report(st, r, e->getBeginLoc(), RuleId::kDeterminism,
                 "std::random_device: non-deterministic seed source; use "
                 "the seeded SplitMix64 Rng (src/common/rng.hpp)");
        }));
    finder.addMatcher(
        m::callExpr(m::callee(m::cxxMethodDecl(
                        m::hasName("now"),
                        m::ofClass(m::hasAnyName(
                            "::std::chrono::steady_clock",
                            "::std::chrono::system_clock",
                            "::std::chrono::high_resolution_clock")))))
            .bind("clock-now"),
        add_cb([&st](const MatchFinder::MatchResult& r) {
          const auto* e = r.Nodes.getNodeAs<clang::CallExpr>("clock-now");
          report(st, r, e->getBeginLoc(), RuleId::kDeterminism,
                 "host clock read: host time must never feed simulated "
                 "state or Metrics/CSV; derive time from the Cycle clock");
        }));
    const auto ptr_keyed = m::classTemplateSpecializationDecl(
        m::hasAnyName("::std::unordered_map", "::std::unordered_set"),
        m::hasTemplateArgument(
            0, m::refersToType(m::qualType(m::isAnyPointer()))));
    const auto ptr_keyed_type = m::hasType(m::qualType(
        m::hasUnqualifiedDesugaredType(
            m::recordType(m::hasDeclaration(ptr_keyed)))));
    auto flag_container = [&st](const MatchFinder::MatchResult& r,
                                const clang::Decl* d) {
      report(st, r, d->getBeginLoc(), RuleId::kDeterminism,
             "unordered container keyed by pointer: iteration order "
             "follows the allocator, so any loop over it diverges across "
             "runs; key by Addr/TxId/a stable id");
    };
    finder.addMatcher(
        m::varDecl(ptr_keyed_type).bind("ptr-keyed-var"),
        add_cb([&st, flag_container](const MatchFinder::MatchResult& r) {
          flag_container(
              r, r.Nodes.getNodeAs<clang::VarDecl>("ptr-keyed-var"));
        }));
    finder.addMatcher(
        m::fieldDecl(ptr_keyed_type).bind("ptr-keyed-field"),
        add_cb([&st, flag_container](const MatchFinder::MatchResult& r) {
          flag_container(
              r, r.Nodes.getNodeAs<clang::FieldDecl>("ptr-keyed-field"));
        }));
  }

  // ------------------------------------------------------------ hot-stats
  if (on(RuleId::kHotStats)) {
    finder.addMatcher(
        m::cxxMemberCallExpr(
            m::callee(m::cxxMethodDecl(
                m::hasAnyName("counter", "counter_value",
                              "counter_prefix_sum", "has_counter",
                              "accumulator", "accumulator_mean",
                              "accumulator_sum", "accumulator_count",
                              "histogram"),
                m::ofClass(m::hasName("StatSet")))),
            m::unless(m::hasAncestor(m::cxxConstructorDecl())))
            .bind("by-name-stat"),
        add_cb([&st](const MatchFinder::MatchResult& r) {
          const auto* e =
              r.Nodes.getNodeAs<clang::CXXMemberCallExpr>("by-name-stat");
          std::string file;
          unsigned line = 0;
          if (!locate(st, r, e->getBeginLoc(), file, line)) return;
          const std::string rel = norm_rel(file);
          if (rel == "src/common/stats.hpp" ||
              rel == "src/common/stats.cpp" ||
              rel == "src/common/stat_handle.hpp") {
            return;
          }
          const auto* callee =
              llvm::dyn_cast_or_null<clang::CXXMethodDecl>(
                  e->getDirectCallee());
          const std::string name =
              callee != nullptr ? callee->getNameAsString() : "<method>";
          Finding f;
          f.file = file;
          f.line = line;
          f.id = RuleId::kHotStats;
          f.message = "by-name stat access `" + name +
                      "(...)` outside a constructor: resolve a StatHandle "
                      "at construction and bump it here "
                      "(src/common/stat_handle.hpp)";
          st.out->push_back(f);
        }));
  }

  // ------------------------------------------------------- mechanism-seam
  if (on(RuleId::kMechanismSeam)) {
    finder.addMatcher(
        m::switchStmt(m::hasCondition(m::ignoringImpCasts(
                          m::hasType(m::enumDecl(m::hasName("Mechanism"))))))
            .bind("mech-switch"),
        add_cb([&st](const MatchFinder::MatchResult& r) {
          const auto* s = r.Nodes.getNodeAs<clang::SwitchStmt>("mech-switch");
          std::string file;
          unsigned line = 0;
          if (!locate(st, r, s->getBeginLoc(), file, line)) return;
          if (starts_with(norm_rel(file), "src/persist/")) return;
          Finding f;
          f.file = file;
          f.line = line;
          f.id = RuleId::kMechanismSeam;
          f.message =
              "switch over Mechanism outside src/persist/: move this "
              "dispatch behind the PersistenceDomain seam "
              "(src/persist/domain.hpp)";
          st.out->push_back(f);
        }));
  }

  // ------------------------------------------------------------ hot-alloc
  if (on(RuleId::kHotAlloc)) {
    auto flag_alloc = [&st](const MatchFinder::MatchResult& r,
                            const clang::Stmt* s, const std::string& what) {
      const clang::FunctionDecl* fd = enclosing_function(*r.Context, *s);
      if (!is_hot_function(fd)) return;
      report(st, r, s->getBeginLoc(), RuleId::kHotAlloc,
             what + " in per-cycle function `" + fd->getNameAsString() +
                 "`: preallocate at construction or hoist off the hot "
                 "path");
    };
    finder.addMatcher(
        m::cxxNewExpr().bind("hot-new"),
        add_cb([&st, flag_alloc](const MatchFinder::MatchResult& r) {
          flag_alloc(r, r.Nodes.getNodeAs<clang::CXXNewExpr>("hot-new"),
                     "heap allocation `new`");
        }));
    finder.addMatcher(
        m::callExpr(m::callee(m::functionDecl(m::hasAnyName(
                        "::std::make_unique", "::std::make_shared"))))
            .bind("hot-make"),
        add_cb([&st, flag_alloc](const MatchFinder::MatchResult& r) {
          flag_alloc(r, r.Nodes.getNodeAs<clang::CallExpr>("hot-make"),
                     "heap allocation `make_unique/make_shared`");
        }));
    finder.addMatcher(
        m::cxxMemberCallExpr(
            m::callee(m::cxxMethodDecl(m::hasAnyName(
                "push_back", "emplace_back", "push_front", "emplace_front",
                "emplace", "insert", "resize", "reserve"))))
            .bind("hot-grow"),
        add_cb([&st, flag_alloc](const MatchFinder::MatchResult& r) {
          const auto* e =
              r.Nodes.getNodeAs<clang::CXXMemberCallExpr>("hot-grow");
          const auto* callee = e->getDirectCallee();
          const std::string name =
              callee != nullptr ? callee->getNameAsString() : "<grow>";
          flag_alloc(r, e, "container growth `" + name + "`");
        }));
  }

  // ---------------------------------------------------- assert-discipline
  if (on(RuleId::kAssertDiscipline)) {
    finder.addMatcher(
        m::callExpr(m::callee(m::functionDecl(m::hasName("::abort"))))
            .bind("raw-abort"),
        add_cb([&st](const MatchFinder::MatchResult& r) {
          const auto* e = r.Nodes.getNodeAs<clang::CallExpr>("raw-abort");
          std::string file;
          unsigned line = 0;
          if (!locate(st, r, e->getBeginLoc(), file, line)) return;
          if (norm_rel(file) == "src/common/assert.hpp") return;
          Finding f;
          f.file = file;
          f.line = line;
          f.id = RuleId::kAssertDiscipline;
          f.message =
              "raw abort(): use NTC_ASSERT/NTC_CHECK_MSG "
              "(src/common/assert.hpp) so the failure reports file, line "
              "and context";
          st.out->push_back(f);
        }));
  }

  clang::tooling::ClangTool tool(*db, tus);
  // Parse diagnostics go to the compiler's own CI lane; here they would
  // drown the findings (and directory-mode fallback flags are expected
  // to miss some includes).
  clang::IgnoringDiagConsumer quiet;
  tool.setDiagnosticConsumer(&quiet);
  tool.run(clang::tooling::newFrontendActionFactory(&finder).get());
}

}  // namespace ntclint
