// Stub AST backend, compiled when the tree is configured without
// -DNTC_LINT=ON (no Clang dev headers needed). The lexical backend
// still enforces every rule; the driver reports `[lex backend]` so a
// log always says which precision level produced it.
#include "ntclint.hpp"

namespace ntclint {

bool ast_available() { return false; }

bool ast_scan(const std::vector<std::string>&, const std::string&,
              const std::vector<bool>&, std::vector<Finding>&) {
  return false;
}

}  // namespace ntclint
