// The `ntclint --help` text, shared between the driver and
// tests/test_ntclint.cpp, which cross-checks the flags listed here and
// the rule list in docs/ARCHITECTURE.md ("Static invariants (ntclint)")
// in both directions — the same bidirectional drift guard
// tests/test_cli_docs.cpp applies to `ntcsim --help`.
#pragma once

namespace ntclint {

inline constexpr const char kNtclintHelp[] =
    "ntclint — domain static analysis for the ntcsim codebase\n"
    "\n"
    "usage: ntclint [options] [path...]\n"
    "\n"
    "  path                 .cpp/.hpp files, or directories scanned\n"
    "                       recursively (build/ and dot-dirs skipped)\n"
    "  -p DIR               read DIR/compile_commands.json for the file\n"
    "                       list (filtered to --scope) and, with the AST\n"
    "                       backend, for per-file compile flags\n"
    "  --scope=PREFIX       with -p, keep only files whose repo-relative\n"
    "                       path starts with PREFIX (repeatable; default\n"
    "                       src/ and tools/ — tests and benches compare\n"
    "                       mechanisms and read stats by name by design)\n"
    "  --rule=NAME          run only rule NAME (repeatable; default all)\n"
    "  --baseline=FILE      load the legacy-debt baseline: matching\n"
    "                       findings are reported as `(baselined)` and do\n"
    "                       not fail the run\n"
    "  --write-baseline=FILE  write every current finding as the new\n"
    "                       baseline and exit 0\n"
    "  --backend=MODE       lex | ast | both (default both: the lexical\n"
    "                       backend always runs; the Clang ASTMatchers\n"
    "                       backend joins in when compiled in via\n"
    "                       -DNTC_LINT=ON)\n"
    "  --list-rules         print every rule with its summary, rationale\n"
    "                       and canonical fix, then exit\n"
    "  --fix-suggestions    append a `suggestion:` line with the\n"
    "                       canonical fix to every finding\n"
    "  --quiet              findings only; no summary line\n"
    "  --help               this text\n"
    "\n"
    "Diagnostics are `file:line: [ntclint-<rule>] message`. Suppress a\n"
    "reviewed exemption with `// ntclint-suppress(<rule>): reason` on the\n"
    "offending line or the line above, or `// ntclint-suppress-file(...)`\n"
    "for a whole file. Exit codes: 0 clean (baselined findings allowed),\n"
    "1 new findings, 2 usage or I/O error.\n";

}  // namespace ntclint
