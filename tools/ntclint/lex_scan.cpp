// The dependency-free lexical backend.
//
// Not a parser: a comment/string-aware token scanner plus a brace-depth
// context tracker that knows which function a line is in, whether that
// function is a constructor, and whether it is hot-path (named
// tick/step/advance/next_event_cycle or carrying NTC_HOT in its
// signature). That is
// enough context to enforce every ntclint rule with good precision on
// this codebase's house style; the AST backend (ast_backend.cpp) adds
// type-accurate matching on top when built. Where the two disagree the
// lexical rules are written to over-report slightly and rely on
// reviewed `ntclint-suppress` comments rather than under-report and
// miss a contract violation.
#include <cctype>
#include <sstream>
#include <vector>

#include "ntclint.hpp"

namespace ntclint {
namespace {

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Find `tok` in `s` at word boundaries, starting at `from`.
std::size_t find_token(const std::string& s, const std::string& tok,
                       std::size_t from = 0) {
  while (true) {
    const std::size_t p = s.find(tok, from);
    if (p == std::string::npos) return std::string::npos;
    const bool left_ok = p == 0 || !ident_char(s[p - 1]);
    const std::size_t after = p + tok.size();
    const bool right_ok = after >= s.size() || !ident_char(s[after]);
    if (left_ok && right_ok) return p;
    from = p + 1;
  }
}

bool has_token(const std::string& s, const std::string& tok) {
  return find_token(s, tok) != std::string::npos;
}

/// True if `tok` occurs as a call: token followed (over whitespace) by '('.
std::size_t find_call(const std::string& s, const std::string& tok,
                      std::size_t from = 0) {
  std::size_t p = from;
  while ((p = find_token(s, tok, p)) != std::string::npos) {
    std::size_t q = p + tok.size();
    while (q < s.size() && (s[q] == ' ' || s[q] == '\t')) ++q;
    if (q < s.size() && s[q] == '(') return p;
    ++p;
  }
  return std::string::npos;
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : text) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else if (c != '\r') {
      cur.push_back(c);
    }
  }
  lines.push_back(cur);
  return lines;
}

/// Blank out preprocessor directives (including \-continuations) so
/// macro bodies neither unbalance the brace tracker nor trip token
/// rules; directives keep their line slots.
void blank_directives(std::vector<std::string>& lines) {
  bool cont = false;
  for (std::string& line : lines) {
    const std::size_t first = line.find_first_not_of(" \t");
    const bool directive = first != std::string::npos && line[first] == '#';
    if (cont || directive) {
      cont = !line.empty() && line.back() == '\\';
      line.assign(line.size(), ' ');
    } else {
      cont = false;
    }
  }
}

struct Scope {
  enum class Kind { kNamespace, kClass, kFunction, kOther };
  Kind kind = Kind::kOther;
  std::string name;
  LineContext ctx;  // valid for kFunction
};

std::string strip_trailing_underscores(std::string s) {
  while (!s.empty() && s.back() == '_') s.pop_back();
  return s;
}

bool hot_name(const std::string& name) {
  const std::string base = strip_trailing_underscores(name);
  return base == "tick" || base == "step" || base == "advance" ||
         base == "next_event_cycle";
}

/// Last identifier token ending at (exclusive) position `end`.
std::string ident_before(const std::string& s, std::size_t end) {
  std::size_t e = end;
  while (e > 0 &&
         (s[e - 1] == ' ' || s[e - 1] == '\t')) {
    --e;
  }
  std::size_t b = e;
  while (b > 0 && ident_char(s[b - 1])) --b;
  return s.substr(b, e - b);
}

/// Build a per-line context table from the sanitized, directive-blanked
/// lines: innermost enclosing function, constructor-ness (including the
/// signature and init list) and hotness.
std::vector<LineContext> build_contexts(const std::vector<std::string>& lines) {
  std::vector<LineContext> ctx(lines.size());
  std::vector<Scope> scopes;
  std::string pending;        // text since the last ; { or }
  std::size_t pending_start = 0;  // line of `pending`'s first non-space char
  bool pending_content = false;
  auto innermost_class = [&]() -> std::string {
    for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
      if (it->kind == Scope::Kind::kClass) return it->name;
      if (it->kind == Scope::Kind::kFunction) break;
    }
    return "";
  };
  auto current_fn = [&]() -> const Scope* {
    for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
      if (it->kind == Scope::Kind::kFunction) return &*it;
    }
    return nullptr;
  };

  for (std::size_t li = 0; li < lines.size(); ++li) {
    const std::string& line = lines[li];
    for (std::size_t i = 0; i < line.size(); ++i) {
      const char c = line[i];
      if (c == '{') {
        Scope s;
        const Scope* fn = current_fn();
        if (fn != nullptr) {
          s.kind = Scope::Kind::kOther;  // control flow / init braces
        } else if (pending.find('(') != std::string::npos &&
                   !has_token(pending, "enum")) {
          s.kind = Scope::Kind::kFunction;
          const std::size_t paren = pending.find('(');
          std::string name = ident_before(pending, paren);
          std::string qual;
          {
            // Foo::name( -> qualifier Foo.
            std::size_t b = paren;
            while (b > 0 && (pending[b - 1] == ' ' || pending[b - 1] == '\t')) {
              --b;
            }
            while (b > 0 && ident_char(pending[b - 1])) --b;  // skip `name`
            if (b >= 2 && pending.compare(b - 2, 2, "::") == 0) {
              qual = ident_before(pending, b - 2);
            }
          }
          s.name = name;
          s.ctx.func = name;
          const std::string cls = innermost_class();
          s.ctx.in_ctor =
              !name.empty() && (name == qual || (!cls.empty() && name == cls));
          s.ctx.hot = hot_name(name) || has_token(pending, "NTC_HOT");
          // Backfill the signature + init-list lines.
          for (std::size_t l = pending_start; l <= li; ++l) ctx[l] = s.ctx;
        } else if (has_token(pending, "namespace")) {
          s.kind = Scope::Kind::kNamespace;
        } else if (has_token(pending, "class") || has_token(pending, "struct") ||
                   has_token(pending, "union")) {
          s.kind = Scope::Kind::kClass;
          // Name: last identifier before `{`, `:` (bases) or `final`.
          std::string head = pending;
          const std::size_t colon = head.find(" : ");
          if (colon != std::string::npos) head = head.substr(0, colon);
          const std::size_t fin = find_token(head, "final");
          if (fin != std::string::npos) head = head.substr(0, fin);
          s.name = ident_before(head, head.size());
        } else {
          s.kind = Scope::Kind::kOther;  // enum, init list, try, extern "C"
        }
        scopes.push_back(s);
        pending.clear();
        pending_content = false;
      } else if (c == '}') {
        if (!scopes.empty()) scopes.pop_back();
        pending.clear();
        pending_content = false;
      } else if (c == ';') {
        pending.clear();
        pending_content = false;
      } else {
        if (!pending_content && c != ' ' && c != '\t') {
          pending_start = li;
          pending_content = true;
        }
        pending.push_back(c);
      }
    }
    pending.push_back(' ');
    const Scope* fn = current_fn();
    if (fn != nullptr && ctx[li].func.empty()) ctx[li] = fn->ctx;
  }
  return ctx;
}

bool starts_with(const std::string& s, const std::string& p) {
  return s.compare(0, p.size(), p) == 0;
}

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

void add(std::vector<Finding>& out, const std::string& path, unsigned line,
         RuleId id, const std::string& msg) {
  Finding f;
  f.file = path;
  f.line = line;
  f.id = id;
  f.message = msg;
  out.push_back(f);
}

/// First template argument of `unordered_map<...>`/`unordered_set<...>`
/// starting right after `<` at `pos`; empty if it spans lines.
std::string first_template_arg(const std::string& line, std::size_t pos) {
  int depth = 1;
  std::string arg;
  for (std::size_t i = pos; i < line.size(); ++i) {
    const char c = line[i];
    if (c == '<') ++depth;
    if (c == '>') --depth;
    if (depth == 0 || (depth == 1 && c == ',')) return arg;
    arg.push_back(c);
  }
  return "";  // unterminated on this line; give up (over-reporting risk)
}

void rule_determinism(const std::string& path,
                      const std::vector<std::string>& lines,
                      std::vector<Finding>& out) {
  for (std::size_t li = 0; li < lines.size(); ++li) {
    const std::string& s = lines[li];
    const unsigned ln = static_cast<unsigned>(li + 1);
    for (const char* fn : {"rand", "srand"}) {
      if (find_call(s, fn) != std::string::npos) {
        add(out, path, ln, RuleId::kDeterminism,
            std::string("call to ") + fn +
                "(): libc PRNG state is process-global and "
                "seed-order-dependent; use ntcsim::Rng");
      }
    }
    if (has_token(s, "random_device")) {
      add(out, path, ln, RuleId::kDeterminism,
          "std::random_device: hardware entropy can never reproduce; "
          "seed ntcsim::Rng from the experiment cell instead");
    }
    for (const char* clk :
         {"system_clock", "steady_clock", "high_resolution_clock"}) {
      if (has_token(s, clk)) {
        add(out, path, ln, RuleId::kDeterminism,
            std::string("host clock read (") + clk +
                "): host time must never feed simulated state or "
                "Metrics/CSV; derive time from the Cycle clock");
      }
    }
    {
      // std::time( / ::time( — bare time( matches too many identifiers.
      std::size_t p = 0;
      while ((p = find_call(s, "time", p)) != std::string::npos) {
        std::size_t b = p;
        while (b > 0 && (s[b - 1] == ' ' || s[b - 1] == '\t')) --b;
        if (b >= 2 && s.compare(b - 2, 2, "::") == 0) {
          add(out, path, ln, RuleId::kDeterminism,
              "wall-clock time(): host time must never feed simulated "
              "state or Metrics/CSV");
        }
        ++p;
      }
    }
    for (const char* cont : {"unordered_map", "unordered_set"}) {
      std::size_t p = 0;
      while ((p = find_token(s, cont, p)) != std::string::npos) {
        const std::size_t open = p + std::string(cont).size();
        if (open < s.size() && s[open] == '<') {
          std::string arg = first_template_arg(s, open + 1);
          while (!arg.empty() && arg.back() == ' ') arg.pop_back();
          if (!arg.empty() && arg.back() == '*') {
            add(out, path, ln, RuleId::kDeterminism,
                std::string(cont) + " keyed by a pointer: iteration order "
                "follows the allocator, so any loop over it diverges "
                "across runs; key by Addr/TxId/a stable id");
          }
        }
        ++p;
      }
    }
  }
}

void rule_hot_stats(const std::string& path,
                    const std::vector<std::string>& lines,
                    const std::vector<LineContext>& ctx,
                    std::vector<Finding>& out) {
  const std::string rel = norm_rel(path);
  // The registry and the handle wrapper are the two places by-name
  // resolution is the point.
  if (rel == "src/common/stats.hpp" || rel == "src/common/stats.cpp" ||
      rel == "src/common/stat_handle.hpp") {
    return;
  }
  static const char* kByName[] = {
      "counter",          "counter_value",     "counter_prefix_sum",
      "has_counter",      "accumulator",       "accumulator_mean",
      "accumulator_sum",  "accumulator_count", "histogram",
  };
  for (std::size_t li = 0; li < lines.size(); ++li) {
    if (ctx[li].in_ctor) continue;
    const std::string& s = lines[li];
    for (const char* m : kByName) {
      std::size_t p = 0;
      while ((p = find_call(s, m, p)) != std::string::npos) {
        const bool member =
            (p >= 1 && s[p - 1] == '.') ||
            (p >= 2 && s[p - 2] == '-' && s[p - 1] == '>');
        if (member) {
          add(out, path, static_cast<unsigned>(li + 1), RuleId::kHotStats,
              std::string("by-name stat access `") + m +
                  "(...)` outside a constructor: resolve a StatHandle at "
                  "construction and bump it here (src/common/stat_handle.hpp)");
        }
        ++p;
      }
    }
  }
}

void rule_mechanism_seam(const std::string& path,
                         const std::vector<std::string>& lines,
                         std::vector<Finding>& out) {
  const std::string rel = norm_rel(path);
  if (starts_with(rel, "src/persist/")) return;  // the seam's home
  for (std::size_t li = 0; li < lines.size(); ++li) {
    const std::string& s = lines[li];
    const unsigned ln = static_cast<unsigned>(li + 1);
    // case Mechanism::kX — a per-mechanism switch arm.
    const std::size_t cs = find_token(s, "case");
    if (cs != std::string::npos &&
        s.find("Mechanism::", cs) != std::string::npos) {
      add(out, path, ln, RuleId::kMechanismSeam,
          "per-mechanism switch arm outside src/persist/: move this "
          "behaviour into the PersistenceDomain and dispatch through "
          "the DomainRegistry");
      continue;
    }
    // switch (…mech…) — the dispatch head itself.
    const std::size_t sw = find_token(s, "switch");
    if (sw != std::string::npos) {
      const std::size_t open = s.find('(', sw);
      if (open != std::string::npos) {
        std::string cond = s.substr(open);
        for (char& c : cond) c = static_cast<char>(std::tolower(
                                 static_cast<unsigned char>(c)));
        if (cond.find("mech") != std::string::npos) {
          add(out, path, ln, RuleId::kMechanismSeam,
              "switch on Mechanism outside src/persist/: "
              "registry-registered mechanisms (tc-nodrain, future "
              "extensions) silently miss this dispatch");
          continue;
        }
      }
    }
    // if/else-if chains comparing Mechanism enumerators. A single
    // comparison in a plain `if` is allowed (negative controls, config
    // defaults); a chain is a dispatch in disguise.
    std::size_t cmp = 0;
    std::size_t p = 0;
    while ((p = s.find("Mechanism::", p)) != std::string::npos) {
      std::size_t b = p;
      while (b > 0 && (s[b - 1] == ' ' || s[b - 1] == '\t')) --b;
      if (b >= 2 && (s.compare(b - 2, 2, "==") == 0 ||
                     s.compare(b - 2, 2, "!=") == 0)) {
        ++cmp;
      }
      ++p;
    }
    if (cmp >= 2 || (cmp >= 1 && has_token(s, "else"))) {
      add(out, path, ln, RuleId::kMechanismSeam,
          "if-chain on Mechanism outside src/persist/: this is a "
          "mechanism dispatch; route it through the PersistenceDomain "
          "seam");
    }
  }
}

void rule_tap_guard(const std::string& path,
                    const std::vector<std::string>& lines,
                    std::vector<Finding>& out) {
  const std::string rel = norm_rel(path);
  // The checker itself consumes events; its internal forwarding is not
  // a tap callsite.
  if (starts_with(rel, "src/check/")) return;
  constexpr std::size_t kLookback = 12;
  for (std::size_t li = 0; li < lines.size(); ++li) {
    const std::string& s = lines[li];
    std::size_t p = 0;
    while ((p = s.find("->on_event", p)) != std::string::npos) {
      const std::size_t after = p + std::string("->on_event").size();
      if (after >= s.size() || s[after] != '(') {
        ++p;
        continue;
      }
      const std::string recv = ident_before(s, p);
      bool guarded = false;
      if (!recv.empty()) {
        const std::size_t start = li >= kLookback ? li - kLookback : 0;
        for (std::size_t l = start; l <= li && !guarded; ++l) {
          const std::string& g = lines[l];
          const std::size_t limit = l == li ? p : g.size();
          const std::string head = g.substr(0, limit);
          if (find_token(head, "if") != std::string::npos &&
              find_token(head, recv) != std::string::npos) {
            guarded = true;
          }
        }
      }
      if (!guarded) {
        add(out, path, static_cast<unsigned>(li + 1), RuleId::kTapGuard,
            "CheckSink tap `" + (recv.empty() ? std::string("<expr>") : recv) +
                "->on_event(...)` without a visible null guard: taps are "
                "default-null (src/check/events.hpp); guard with `if (" +
                (recv.empty() ? std::string("sink") : recv) +
                " != nullptr)` or route through a null-checking helper");
      }
      ++p;
    }
  }
}

void rule_hot_alloc(const std::string& path,
                    const std::vector<std::string>& lines,
                    const std::vector<LineContext>& ctx,
                    std::vector<Finding>& out) {
  static const char* kGrowth[] = {
      "push_back",    "emplace_back", "push_front", "emplace_front",
      "emplace",      "insert",       "resize",     "reserve",
  };
  for (std::size_t li = 0; li < lines.size(); ++li) {
    if (!ctx[li].hot) continue;
    const std::string& s = lines[li];
    const unsigned ln = static_cast<unsigned>(li + 1);
    const std::string where =
        "` in per-cycle function `" + ctx[li].func +
        "`: preallocate at construction or hoist off the hot path";
    {
      std::size_t p = 0;
      while ((p = find_token(s, "new", p)) != std::string::npos) {
        std::size_t q = p + 3;
        while (q < s.size() && s[q] == ' ') ++q;
        if (q < s.size() &&
            (ident_char(s[q]) || s[q] == '(' || s[q] == '[')) {
          add(out, path, ln, RuleId::kHotAlloc,
              "heap allocation `new" + where);
        }
        ++p;
      }
    }
    for (const char* fn : {"make_unique", "make_shared"}) {
      if (find_token(s, fn) != std::string::npos) {
        add(out, path, ln, RuleId::kHotAlloc,
            std::string("heap allocation `") + fn + where);
      }
    }
    for (const char* m : kGrowth) {
      std::size_t p = 0;
      while ((p = find_call(s, m, p)) != std::string::npos) {
        const bool member =
            (p >= 1 && s[p - 1] == '.') ||
            (p >= 2 && s[p - 2] == '-' && s[p - 1] == '>');
        if (member) {
          add(out, path, ln, RuleId::kHotAlloc,
              std::string("container growth `") + m + where);
        }
        ++p;
      }
    }
  }
}

void rule_assert_discipline(const std::string& path,
                            const std::vector<std::string>& lines,
                            std::vector<Finding>& out) {
  const std::string rel = norm_rel(path);
  if (rel == "src/common/assert.hpp") return;  // the macros' home
  auto side_effect = [](const std::string& arg) -> const char* {
    for (std::size_t i = 0; i + 1 < arg.size(); ++i) {
      if (arg[i] == '+' && arg[i + 1] == '+') return "increment";
      if (arg[i] == '-' && arg[i + 1] == '-') return "decrement";
    }
    for (std::size_t i = 0; i < arg.size(); ++i) {
      if (arg[i] != '=') continue;
      const char prev = i > 0 ? arg[i - 1] : ' ';
      const char next = i + 1 < arg.size() ? arg[i + 1] : ' ';
      if (next == '=' || prev == '=' || prev == '!' || prev == '<' ||
          prev == '>') {
        if (next == '=') ++i;  // skip the comparison's second '='
        continue;
      }
      return "assignment";
    }
    return nullptr;
  };
  for (std::size_t li = 0; li < lines.size(); ++li) {
    const std::string& s = lines[li];
    const unsigned ln = static_cast<unsigned>(li + 1);
    if (find_call(s, "abort") != std::string::npos) {
      add(out, path, ln, RuleId::kAssertDiscipline,
          "raw abort(): use NTC_ASSERT/NTC_CHECK_MSG "
          "(src/common/assert.hpp) so the failure reports file, line "
          "and context");
    }
    for (const char* a : {"assert", "NTC_ASSERT", "NTC_CHECK_MSG"}) {
      const std::size_t p = find_call(s, a);
      if (p == std::string::npos) continue;
      // First argument: balanced to the top-level ',' or ')', joining a
      // few continuation lines for multi-line conditions.
      std::string arg;
      int depth = 0;
      bool done = false;
      for (std::size_t l = li; l < lines.size() && l < li + 5 && !done; ++l) {
        const std::string& t = lines[l];
        for (std::size_t i = l == li ? t.find('(', p) : 0; i < t.size(); ++i) {
          const char c = t[i];
          if (c == '(') {
            if (++depth == 1) continue;
          }
          if (c == ')' && --depth == 0) {
            done = true;
            break;
          }
          if (c == ',' && depth == 1) {
            done = true;
            break;
          }
          arg.push_back(c);
        }
        arg.push_back(' ');
      }
      if (const char* kind = side_effect(arg)) {
        add(out, path, ln, RuleId::kAssertDiscipline,
            std::string(a) + " condition contains an " + kind +
                ": NTC_ASSERT stays on in release builds, so the "
                "condition must be pure — hoist the mutation out");
      }
    }
  }
}

}  // namespace

void lex_scan_file(const std::string& path, const std::string& text,
                   const std::vector<bool>& enabled,
                   std::vector<Finding>& out) {
  std::vector<std::string> lines = split_lines(sanitize(text));
  blank_directives(lines);
  const std::vector<LineContext> ctx = build_contexts(lines);
  auto on = [&](RuleId id) {
    return enabled[static_cast<std::size_t>(id)];
  };
  if (on(RuleId::kDeterminism)) rule_determinism(path, lines, out);
  if (on(RuleId::kHotStats)) rule_hot_stats(path, lines, ctx, out);
  if (on(RuleId::kMechanismSeam)) rule_mechanism_seam(path, lines, out);
  if (on(RuleId::kTapGuard)) rule_tap_guard(path, lines, out);
  if (on(RuleId::kHotAlloc)) rule_hot_alloc(path, lines, ctx, out);
  if (on(RuleId::kAssertDiscipline)) rule_assert_discipline(path, lines, out);
}

}  // namespace ntclint
