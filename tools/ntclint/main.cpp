// ntclint driver: file collection (explicit paths or the CMake compile
// database), backend dispatch, suppression + baseline filtering and the
// structured diagnostic output. See ntclint.hpp for the design and
// docs/ARCHITECTURE.md ("Static invariants (ntclint)") for the rules.
#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "cli_help.hpp"
#include "ntclint.hpp"

namespace ntclint {
namespace {

namespace fs = std::filesystem;

struct Options {
  std::vector<std::string> paths;
  std::string build_dir;
  std::vector<std::string> scopes;  // default src/, tools/
  std::vector<std::string> only_rules;
  std::string baseline;
  std::string write_baseline;
  std::string backend = "both";
  bool list_rules = false;
  bool fix_suggestions = false;
  bool quiet = false;
};

bool has_source_ext(const fs::path& p) {
  const std::string e = p.extension().string();
  return e == ".cpp" || e == ".cc" || e == ".cxx" || e == ".hpp" || e == ".h";
}

void collect_dir(const fs::path& dir, std::vector<std::string>& out) {
  for (fs::recursive_directory_iterator it(dir), end; it != end; ++it) {
    const std::string name = it->path().filename().string();
    if (it->is_directory() && (name == "build" || name.rfind('.', 0) == 0)) {
      it.disable_recursion_pending();
      continue;
    }
    if (it->is_regular_file() && has_source_ext(it->path())) {
      out.push_back(it->path().string());
    }
  }
}

/// Minimal compile_commands.json reader: extracts every "file" value.
/// The format is machine-written by CMake, so a targeted scan beats a
/// JSON dependency the toolchain image may not have.
bool compile_db_files(const std::string& build_dir,
                      std::vector<std::string>& out) {
  std::ifstream in(build_dir + "/compile_commands.json");
  if (!in.good()) return false;
  std::ostringstream oss;
  oss << in.rdbuf();
  const std::string text = oss.str();
  const std::string key = "\"file\"";
  std::size_t pos = 0;
  while ((pos = text.find(key, pos)) != std::string::npos) {
    pos += key.size();
    while (pos < text.size() && (text[pos] == ' ' || text[pos] == ':')) ++pos;
    if (pos >= text.size() || text[pos] != '"') continue;
    ++pos;
    std::string value;
    while (pos < text.size() && text[pos] != '"') {
      if (text[pos] == '\\' && pos + 1 < text.size()) ++pos;
      value.push_back(text[pos++]);
    }
    out.push_back(value);
  }
  return true;
}

bool in_scope(const std::string& path, const std::vector<std::string>& scopes) {
  const std::string rel = norm_rel(path);
  for (const std::string& s : scopes) {
    if (rel.compare(0, s.size(), s) == 0) return true;
  }
  return false;
}

int usage_error(const std::string& msg) {
  std::cerr << "ntclint: error: " << msg << "\n\n" << kNtclintHelp;
  return 2;
}

void print_rules() {
  for (std::size_t i = 0; i < num_rules(); ++i) {
    const RuleInfo& r = rules()[i];
    std::cout << "ntclint-" << r.name << "\n"
              << "  " << r.summary << "\n"
              << "  why: " << r.rationale << "\n"
              << "  fix: " << r.fix << "\n";
  }
}

}  // namespace

int run(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto value = [&a](const char* flag) -> std::string {
      return a.substr(std::strlen(flag));
    };
    if (a == "--help" || a == "-h") {
      std::cout << kNtclintHelp;
      return 0;
    } else if (a == "--list-rules") {
      opt.list_rules = true;
    } else if (a == "--fix-suggestions") {
      opt.fix_suggestions = true;
    } else if (a == "--quiet") {
      opt.quiet = true;
    } else if (a == "-p") {
      if (++i >= argc) return usage_error("-p needs a build directory");
      opt.build_dir = argv[i];
    } else if (a.rfind("--scope=", 0) == 0) {
      opt.scopes.push_back(value("--scope="));
    } else if (a.rfind("--rule=", 0) == 0) {
      opt.only_rules.push_back(value("--rule="));
    } else if (a.rfind("--baseline=", 0) == 0) {
      opt.baseline = value("--baseline=");
    } else if (a.rfind("--write-baseline=", 0) == 0) {
      opt.write_baseline = value("--write-baseline=");
    } else if (a.rfind("--backend=", 0) == 0) {
      opt.backend = value("--backend=");
      if (opt.backend != "lex" && opt.backend != "ast" &&
          opt.backend != "both") {
        return usage_error("--backend must be lex, ast or both");
      }
    } else if (!a.empty() && a[0] == '-') {
      return usage_error("unknown option " + a);
    } else {
      opt.paths.push_back(a);
    }
  }

  if (opt.list_rules) {
    print_rules();
    return 0;
  }

  std::vector<bool> enabled(num_rules(), opt.only_rules.empty());
  // bad-suppress is a meta rule: always on, it guards the suppression
  // mechanism every other rule depends on.
  enabled[static_cast<std::size_t>(RuleId::kBadSuppress)] = true;
  for (const std::string& name : opt.only_rules) {
    RuleId id{};
    if (!parse_rule(name, id)) return usage_error("unknown rule " + name);
    enabled[static_cast<std::size_t>(id)] = true;
  }

  // ------------------------------------------------------------------ files
  std::vector<std::string> files;
  for (const std::string& p : opt.paths) {
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      collect_dir(p, files);
    } else if (fs::is_regular_file(p, ec)) {
      files.push_back(p);
    } else {
      return usage_error("no such file or directory: " + p);
    }
  }
  if (files.empty() && !opt.build_dir.empty()) {
    if (!compile_db_files(opt.build_dir, files)) {
      return usage_error("cannot read " + opt.build_dir +
                         "/compile_commands.json (configure with "
                         "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON)");
    }
    if (opt.scopes.empty()) opt.scopes = {"src/", "tools/"};
    files.erase(std::remove_if(files.begin(), files.end(),
                               [&](const std::string& f) {
                                 return !in_scope(f, opt.scopes);
                               }),
                files.end());
  }
  if (files.empty()) {
    return usage_error("nothing to scan: pass files/directories or -p DIR");
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  // ------------------------------------------------------------------- scan
  const bool want_ast = opt.backend != "lex";
  const bool want_lex = opt.backend != "ast";
  if (opt.backend == "ast" && !ast_available()) {
    return usage_error(
        "--backend=ast requested but this binary was built without the "
        "Clang ASTMatchers backend (reconfigure with -DNTC_LINT=ON "
        "against the pinned LLVM; see tools/ntclint/CMakeLists.txt)");
  }

  std::map<std::string, std::vector<std::string>> raw_lines;
  std::map<std::string, std::vector<Suppression>> suppressions;
  std::vector<Finding> findings;
  for (const std::string& f : files) {
    std::ifstream in(f);
    if (!in.good()) {
      std::cerr << "ntclint: error: cannot read " << f << "\n";
      return 2;
    }
    std::ostringstream oss;
    oss << in.rdbuf();
    const std::string text = oss.str();
    {
      std::vector<std::string>& lines = raw_lines[f];
      std::istringstream ls(text);
      std::string line;
      while (std::getline(ls, line)) lines.push_back(line);
    }
    suppressions[f] = scan_suppressions(text);
    for (const Suppression& s : suppressions[f]) {
      if (s.malformed &&
          enabled[static_cast<std::size_t>(RuleId::kBadSuppress)]) {
        Finding bad;
        bad.file = f;
        bad.line = s.line;
        bad.id = RuleId::kBadSuppress;
        bad.message = "malformed suppression: " + s.detail;
        findings.push_back(bad);
      }
    }
    if (want_lex) lex_scan_file(f, text, enabled, findings);
  }
  if (want_ast && ast_available()) {
    ast_scan(files, opt.build_dir, enabled, findings);
  }

  // -------------------------------------------- dedupe, suppress, baseline
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.id, a.message) <
                     std::tie(b.file, b.line, b.id, b.message);
            });
  {
    // The two backends may report the same site; one diagnostic per
    // (file, line, rule) is enough.
    std::set<std::string> seen;
    findings.erase(
        std::remove_if(findings.begin(), findings.end(),
                       [&](const Finding& f) {
                         const std::string k = norm_rel(f.file) + ":" +
                                               std::to_string(f.line) + ":" +
                                               rule(f.id).name;
                         return !seen.insert(k).second;
                       }),
        findings.end());
  }
  findings.erase(std::remove_if(findings.begin(), findings.end(),
                                [&](const Finding& f) {
                                  return is_suppressed(f, suppressions[f.file]);
                                }),
                 findings.end());

  auto source_line = [&](const Finding& f) -> std::string {
    const std::vector<std::string>& lines = raw_lines[f.file];
    return f.line >= 1 && f.line <= lines.size() ? lines[f.line - 1] : "";
  };

  if (!opt.write_baseline.empty()) {
    std::ofstream out(opt.write_baseline);
    if (!out.good()) {
      return usage_error("cannot write " + opt.write_baseline);
    }
    out << "# ntclint baseline: legacy findings tolerated by CI.\n"
        << "# One per line: rule|file|normalized source line. Shrink it;\n"
        << "# never grow it — fix or `ntclint-suppress` new findings.\n";
    std::vector<std::string> keys;
    for (const Finding& f : findings) {
      keys.push_back(Baseline::key(f, source_line(f)));
    }
    std::sort(keys.begin(), keys.end());
    for (const std::string& k : keys) out << k << "\n";
    if (!opt.quiet) {
      std::cout << "ntclint: wrote " << keys.size() << " baseline entr"
                << (keys.size() == 1 ? "y" : "ies") << " to "
                << opt.write_baseline << "\n";
    }
    return 0;
  }

  Baseline baseline;
  if (!opt.baseline.empty() && !baseline.load(opt.baseline)) {
    std::cerr << "ntclint: warning: baseline " << opt.baseline
              << " not found; treating every finding as new\n";
  }
  std::size_t fresh = 0;
  for (Finding& f : findings) {
    f.baselined = baseline.match(f, source_line(f));
    if (!f.baselined) ++fresh;
  }

  for (const Finding& f : findings) {
    std::cout << f.file << ":" << f.line << ": [ntclint-" << rule(f.id).name
              << "] " << f.message << (f.baselined ? " (baselined)" : "")
              << "\n";
    if (opt.fix_suggestions) {
      std::cout << "    suggestion: " << rule(f.id).fix << "\n";
    }
  }
  if (!opt.quiet) {
    std::cout << "ntclint: " << findings.size() << " finding"
              << (findings.size() == 1 ? "" : "s") << " ("
              << findings.size() - fresh << " baselined) across "
              << files.size() << " files ["
              << (want_ast && ast_available() ? (want_lex ? "lex+ast" : "ast")
                                              : "lex")
              << " backend]\n";
  }
  return fresh == 0 ? 0 : 1;
}

}  // namespace ntclint

int main(int argc, char** argv) { return ntclint::run(argc, argv); }
