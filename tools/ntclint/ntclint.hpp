// ntclint — domain-specific static analysis for the ntcsim codebase.
//
// Generic linters (clang-tidy, cppcheck) know C++; they do not know this
// repo's contracts: bit-identical --jobs=N determinism, stat handles
// resolved once at construction, the DomainRegistry mechanism seam, the
// default-null CheckSink tap discipline. ntclint makes those contracts
// machine-checked on every compile unit instead of spot-checked by
// individual regression tests.
//
// Two backends share one rule set, one diagnostic format, one
// suppression syntax and one baseline format:
//
//  * lex  — a dependency-free lexical analyzer (comment/string-aware
//           scanner with a function/class context tracker). Always
//           built, so the rules run in tier-1 ctest on any toolchain.
//  * ast  — Clang LibTooling + ASTMatchers (type-accurate receivers,
//           enum types, ancestor guards). Built when the tree is
//           configured with -DNTC_LINT=ON against the pinned LLVM
//           major (tools/ntclint/CMakeLists.txt); CI installs the apt
//           Clang dev packages and runs this backend over the full
//           compile database.
//
// Diagnostics: `file:line: [ntclint-<rule>] message`.
// Suppressions: `// ntclint-suppress(<rule>[,<rule>...]): reason` on the
// offending line or the line directly above it; `ntclint-suppress-file`
// anywhere in the file suppresses the rule for the whole file. A
// suppression without a reason is itself a finding (ntclint-bad-suppress).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace ntclint {

// Rule identifiers. Keep in sync with kRules in rules.cpp; RuleId
// indexes that table directly.
enum class RuleId {
  kDeterminism = 0,     ///< nondeterminism feeding Metrics/CSV output
  kHotStats,            ///< by-name stat access outside constructors
  kMechanismSeam,       ///< Mechanism dispatch outside src/persist/
  kTapGuard,            ///< unguarded CheckSink tap callsite
  kHotAlloc,            ///< allocation/container growth on the hot path
  kAssertDiscipline,    ///< side-effectful asserts / raw abort()
  kBadSuppress,         ///< malformed ntclint suppression comment
  kNumRules,
};

struct RuleInfo {
  RuleId id;
  const char* name;       ///< diagnostic tag: [ntclint-<name>]
  const char* summary;    ///< one line, shown by --list-rules
  const char* rationale;  ///< which repo contract this defends
  const char* fix;        ///< shown by --fix-suggestions
};

/// The rule table, indexed by RuleId.
const RuleInfo* rules();
std::size_t num_rules();
const RuleInfo& rule(RuleId id);
/// Name -> rule lookup ("determinism", not "ntclint-determinism").
/// Returns false and leaves `out` untouched for unknown names.
bool parse_rule(const std::string& name, RuleId& out);

struct Finding {
  std::string file;   ///< path as given on the command line
  unsigned line = 0;  ///< 1-based
  RuleId id = RuleId::kDeterminism;
  std::string message;
  bool baselined = false;  ///< matched the loaded baseline (legacy debt)
};

/// One parsed `ntclint-suppress` comment.
struct Suppression {
  unsigned line = 0;      ///< 1-based line of the comment
  RuleId id = RuleId::kDeterminism;
  bool whole_file = false;
  bool malformed = false;  ///< missing/empty reason, unknown rule name
  std::string detail;      ///< for malformed: what is wrong
};

/// Scan raw (un-sanitized) file text for suppression comments.
std::vector<Suppression> scan_suppressions(const std::string& text);

/// True if `f` is covered by a suppression (same line, line above, or
/// whole-file). kBadSuppress findings are never suppressible.
bool is_suppressed(const Finding& f, const std::vector<Suppression>& sup);

/// Path normalization for baseline keys and the seam/path exemptions:
/// the path suffix from the last `src/`, `tools/`, `tests/` or `bench/`
/// component, else the basename. Keeps the baseline stable across build
/// trees and absolute/relative invocation.
std::string norm_rel(const std::string& path);

/// Baseline file: one finding per line, `rule|norm_rel|normalized text`
/// where the text is the offending source line with whitespace runs
/// collapsed (so line-number drift does not invalidate an entry).
class Baseline {
 public:
  /// Load from `path`. Missing file -> empty baseline, returns false.
  bool load(const std::string& path);
  /// Consume a matching entry if present (multiset semantics).
  bool match(const Finding& f, const std::string& source_line);
  static std::string key(const Finding& f, const std::string& source_line);
  std::size_t size() const { return entries_.size(); }

 private:
  std::vector<std::string> entries_;  // unmatched keys
};

/// Replace comments, string and character literals with spaces,
/// preserving line structure, so token scans cannot fire inside text.
std::string sanitize(const std::string& text);

/// Per-line analysis context produced by the lexical scanner's
/// function/class tracker.
struct LineContext {
  std::string func;     ///< innermost enclosing function name ("" at file scope)
  bool in_ctor = false; ///< inside a constructor (incl. its init list)
  bool hot = false;     ///< function named tick/step/advance or NTC_HOT
};

/// Run every (selected) rule over one file's text. `path` decides the
/// path-scoped exemptions (src/persist/ for mechanism-seam,
/// src/common/assert.hpp for abort). `enabled` has kNumRules entries.
/// Appends findings (not yet suppression/baseline-filtered).
void lex_scan_file(const std::string& path, const std::string& text,
                   const std::vector<bool>& enabled,
                   std::vector<Finding>& out);

/// AST backend entry point; defined in ast_backend.cpp when the tree is
/// configured with NTC_LINT=ON, stubbed (returns false) otherwise.
/// `build_dir` empty -> fixed -std=c++20 flags (standalone fixtures).
/// Returns true if the backend ran; diagnostics from unparseable TUs go
/// to stderr but do not abort the scan.
bool ast_scan(const std::vector<std::string>& files,
              const std::string& build_dir, const std::vector<bool>& enabled,
              std::vector<Finding>& out);
bool ast_available();

}  // namespace ntclint
