// The rule registry: names, one-line summaries, the repo contract each
// rule defends, and the canonical fix. docs/ARCHITECTURE.md ("Static
// invariants (ntclint)") lists the same rules; tests/test_ntclint.cpp
// cross-checks the two in both directions, so the table and the
// documentation cannot drift apart silently.
#include "ntclint.hpp"

namespace ntclint {
namespace {

const RuleInfo kRules[] = {
    {RuleId::kDeterminism, "determinism",
     "nondeterministic sources (rand/random_device/wall clocks, "
     "pointer-keyed unordered containers) in simulator code",
     "every metric must be bit-identical at any --jobs=N and across "
     "machines (tests/test_sweep.cpp, tests/test_determinism.cpp); a "
     "single wall-clock read or pointer-order iteration that feeds "
     "Metrics/CSV breaks the contract on rarely-taken paths no test "
     "exercises",
     "use ntcsim::Rng (src/common/rng.hpp) seeded from the cell, key "
     "containers by Addr/TxId/stable ids, and derive time from the "
     "simulated Cycle clock; self-profiling code may suppress with a "
     "reason"},
    {RuleId::kHotStats, "hot-stats",
     "by-name StatSet access (counter/counter_value/histogram/...) "
     "outside a constructor",
     "components resolve stats once at construction and bump raw "
     "pointers afterwards (src/common/stat_handle.hpp); a by-name "
     "lookup on a per-access path is an O(log n) map walk the PR-2 "
     "hot-path rework removed",
     "resolve a StatHandle in the constructor and bump it at the use "
     "site; post-run report/energy code may suppress with a reason"},
    {RuleId::kMechanismSeam, "mechanism-seam",
     "switch/if-chain dispatch on Mechanism outside src/persist/",
     "mechanism behaviour lives behind persist::PersistenceDomain and "
     "the DomainRegistry (PR 3); a switch elsewhere silently misses "
     "registry-registered mechanisms such as tc-nodrain and every "
     "future extension",
     "move the behaviour into the domain class (or a new virtual on "
     "PersistenceDomain) and dispatch through the registry"},
    {RuleId::kTapGuard, "tap-guard",
     "CheckSink tap callsite (->on_event) without a null guard",
     "taps are default-null so the measured path pays one pointer test "
     "(src/check/events.hpp); an unguarded call crashes every run "
     "configured with the checker off — exactly the measured configs",
     "guard with `if (sink_ != nullptr)` (or route through a helper "
     "that does) before calling on_event"},
    {RuleId::kHotAlloc, "hot-alloc",
     "allocation or container growth inside tick/step/advance/"
     "next_event_cycle or an NTC_HOT-annotated function",
     "per-cycle allocation dominated the pre-PR-2 profile; the "
     "tick/step/advance family runs every simulated cycle and "
     "next_event_cycle (the quiescence query) after every one, so a "
     "new/make_unique/push_back there is a per-cycle malloc the perf "
     "ratchet will eventually catch — much later and more expensively",
     "preallocate in the constructor (reserve/resize at setup), reuse "
     "pooled entries, or hoist the growth off the per-cycle path; "
     "amortized growth may suppress with a reason"},
    {RuleId::kAssertDiscipline, "assert-discipline",
     "assert/NTC_ASSERT/NTC_CHECK_MSG conditions with side effects, or "
     "raw abort() outside src/common/assert.hpp",
     "NTC_ASSERT stays on in release builds (src/common/assert.hpp), "
     "so a side-effectful condition changes simulation state; a raw "
     "abort() skips the file:line context that makes invariant "
     "failures actionable",
     "hoist the mutation out of the condition; replace abort() with "
     "NTC_ASSERT/NTC_CHECK_MSG so the failure says where and why"},
    {RuleId::kBadSuppress, "bad-suppress",
     "malformed ntclint-suppress comment (unknown rule or missing "
     "reason)",
     "a suppression is a reviewed exemption; one without a reason (or "
     "naming a rule that does not exist) is indistinguishable from a "
     "stale copy-paste and silently widens the exemption",
     "write `// ntclint-suppress(<rule>): <why this site is exempt>`"},
};

static_assert(sizeof(kRules) / sizeof(kRules[0]) ==
                  static_cast<std::size_t>(RuleId::kNumRules),
              "rule table out of sync with RuleId");

}  // namespace

const RuleInfo* rules() { return kRules; }

std::size_t num_rules() {
  return static_cast<std::size_t>(RuleId::kNumRules);
}

const RuleInfo& rule(RuleId id) {
  return kRules[static_cast<std::size_t>(id)];
}

bool parse_rule(const std::string& name, RuleId& out) {
  for (const RuleInfo& r : kRules) {
    if (name == r.name) {
      out = r.id;
      return true;
    }
  }
  return false;
}

}  // namespace ntclint
