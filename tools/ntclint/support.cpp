// Backend-independent plumbing: comment/string sanitizer, suppression
// parsing, path normalization and the baseline file.
#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "ntclint.hpp"

namespace ntclint {

namespace {

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Collapse whitespace runs to single spaces and trim, so baseline
/// entries survive reformatting and line moves.
std::string normalize_ws(const std::string& s) {
  std::string out;
  bool in_ws = true;  // trims leading whitespace
  for (char c : s) {
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      if (!in_ws) out.push_back(' ');
      in_ws = true;
    } else {
      out.push_back(c);
      in_ws = false;
    }
  }
  while (!out.empty() && out.back() == ' ') out.pop_back();
  if (out.size() > 160) out.resize(160);
  return out;
}

}  // namespace

std::string sanitize(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  enum class St { kCode, kLineComment, kBlockComment, kString, kChar, kRaw };
  St st = St::kCode;
  std::string raw_delim;  // for R"delim( ... )delim"
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char n = i + 1 < text.size() ? text[i + 1] : '\0';
    switch (st) {
      case St::kCode:
        if (c == '/' && n == '/') {
          st = St::kLineComment;
          out += "  ";
          ++i;
        } else if (c == '/' && n == '*') {
          st = St::kBlockComment;
          out += "  ";
          ++i;
        } else if (c == 'R' && n == '"' &&
                   (i == 0 || !ident_char(text[i - 1]))) {
          // Raw string: R"delim( ... )delim"
          std::size_t p = i + 2;
          raw_delim.clear();
          while (p < text.size() && text[p] != '(') raw_delim += text[p++];
          out.append(p + 1 - i, ' ');
          i = p;  // at '(' (or end)
          st = St::kRaw;
        } else if (c == '"') {
          st = St::kString;
          out += ' ';
        } else if (c == '\'' && !(i > 0 && ident_char(text[i - 1]))) {
          // skip digit separators (1'000'000): a quote directly after an
          // identifier/number char is not a character literal
          st = St::kChar;
          out += ' ';
        } else {
          out += c;
        }
        break;
      case St::kLineComment:
        if (c == '\n') {
          st = St::kCode;
          out += '\n';
        } else {
          out += ' ';
        }
        break;
      case St::kBlockComment:
        if (c == '*' && n == '/') {
          st = St::kCode;
          out += "  ";
          ++i;
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      case St::kString:
        if (c == '\\' && n != '\0') {
          out += "  ";
          ++i;
        } else if (c == '"') {
          st = St::kCode;
          out += ' ';
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      case St::kChar:
        if (c == '\\' && n != '\0') {
          out += "  ";
          ++i;
        } else if (c == '\'') {
          st = St::kCode;
          out += ' ';
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      case St::kRaw: {
        const std::string close = ")" + raw_delim + "\"";
        if (text.compare(i, close.size(), close) == 0) {
          out.append(close.size(), ' ');
          i += close.size() - 1;
          st = St::kCode;
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      }
    }
  }
  return out;
}

std::vector<Suppression> scan_suppressions(const std::string& text) {
  std::vector<Suppression> out;
  // Suppressions live in comments only; blank string/char literals so
  // help text or test fixtures that *mention* the syntax cannot
  // register one. (sanitize() keeps literal spans' line structure, so
  // positions of the surviving comment text still line up.)
  std::string comments;
  {
    enum class St { kCode, kLine, kBlock, kStr, kChr };
    St st = St::kCode;
    for (std::size_t i = 0; i < text.size(); ++i) {
      const char c = text[i];
      const char n = i + 1 < text.size() ? text[i + 1] : '\0';
      char emit = c == '\n' ? '\n' : ' ';
      switch (st) {
        case St::kCode:
          if (c == '/' && n == '/') st = St::kLine;
          else if (c == '/' && n == '*') st = St::kBlock;
          else if (c == '"') st = St::kStr;
          else if (c == '\'' && !(i > 0 && ident_char(text[i - 1])))
            st = St::kChr;
          if (st == St::kLine || st == St::kBlock) emit = c;
          break;
        case St::kLine:
          if (c == '\n') st = St::kCode;
          emit = c;
          break;
        case St::kBlock:
          if (c == '*' && n == '/') {
            st = St::kCode;
            comments += "*/";
            ++i;
            continue;
          }
          emit = c;
          break;
        case St::kStr:
          if (c == '\\' && n != '\0') ++i;
          else if (c == '"') st = St::kCode;
          break;
        case St::kChr:
          if (c == '\\' && n != '\0') ++i;
          else if (c == '\'') st = St::kCode;
          break;
      }
      comments += emit;
    }
  }
  std::istringstream in(comments);
  std::string line;
  unsigned lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::size_t pos = line.find("ntclint-suppress");
    if (pos == std::string::npos) continue;
    pos += std::string("ntclint-suppress").size();
    bool whole_file = false;
    if (line.compare(pos, 5, "-file") == 0) {
      whole_file = true;
      pos += 5;
    }
    // A prose mention ("use ntclint-suppress here") is not a
    // suppression attempt; only the parenthesized form arms the parser.
    if (pos >= line.size() || line[pos] != '(') continue;
    // Documentation showing the syntax uses <rule>/[...] placeholders.
    const std::size_t probe_close = line.find(')', pos);
    if (probe_close != std::string::npos &&
        line.find_first_of("<>[]", pos) < probe_close) {
      continue;
    }
    Suppression bad;
    bad.line = lineno;
    bad.whole_file = whole_file;
    bad.malformed = true;
    const std::size_t close = line.find(')', pos);
    if (close == std::string::npos) {
      bad.detail = "unterminated rule list";
      out.push_back(bad);
      continue;
    }
    // Reason: everything after "): ", must be non-empty.
    std::string reason = line.substr(close + 1);
    if (!reason.empty() && reason[0] == ':') reason.erase(0, 1);
    const auto ws_end = reason.find_last_not_of(" \t\r");
    reason = ws_end == std::string::npos ? "" : reason.substr(0, ws_end + 1);
    const auto ws_begin = reason.find_first_not_of(" \t");
    reason = ws_begin == std::string::npos ? "" : reason.substr(ws_begin);
    if (reason.empty()) {
      bad.detail = "missing reason after `):`";
      out.push_back(bad);
      continue;
    }
    // Rule list.
    std::string list = line.substr(pos + 1, close - pos - 1);
    std::istringstream ls(list);
    std::string name;
    bool any = false;
    while (std::getline(ls, name, ',')) {
      const auto b = name.find_first_not_of(" \t");
      const auto e = name.find_last_not_of(" \t");
      name = b == std::string::npos ? "" : name.substr(b, e - b + 1);
      RuleId id{};
      if (!parse_rule(name, id) || id == RuleId::kBadSuppress) {
        bad.detail = "unknown rule `" + name + "`";
        out.push_back(bad);
        continue;
      }
      Suppression s;
      s.line = lineno;
      s.id = id;
      s.whole_file = whole_file;
      out.push_back(s);
      any = true;
    }
    if (!any && bad.detail.empty()) {
      bad.detail = "empty rule list";
      out.push_back(bad);
    }
  }
  return out;
}

bool is_suppressed(const Finding& f, const std::vector<Suppression>& sup) {
  if (f.id == RuleId::kBadSuppress) return false;
  for (const Suppression& s : sup) {
    if (s.malformed || s.id != f.id) continue;
    if (s.whole_file) return true;
    if (s.line == f.line || s.line + 1 == f.line) return true;
  }
  return false;
}

std::string norm_rel(const std::string& path) {
  std::string p = path;
  std::replace(p.begin(), p.end(), '\\', '/');
  static const char* kRoots[] = {"src/", "tools/", "tests/", "bench/"};
  std::size_t best = std::string::npos;
  for (const char* r : kRoots) {
    // Last occurrence that starts a path component.
    std::size_t pos = p.rfind(r);
    while (pos != std::string::npos && pos != 0 && p[pos - 1] != '/') {
      pos = pos == 0 ? std::string::npos : p.rfind(r, pos - 1);
    }
    if (pos != std::string::npos && (best == std::string::npos || pos > best)) {
      best = pos;
    }
  }
  if (best != std::string::npos) return p.substr(best);
  const std::size_t slash = p.find_last_of('/');
  return slash == std::string::npos ? p : p.substr(slash + 1);
}

std::string Baseline::key(const Finding& f, const std::string& source_line) {
  return std::string(rule(f.id).name) + "|" + norm_rel(f.file) + "|" +
         normalize_ws(source_line);
}

bool Baseline::load(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) return false;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    entries_.push_back(line);
  }
  return true;
}

bool Baseline::match(const Finding& f, const std::string& source_line) {
  const std::string k = key(f, source_line);
  auto it = std::find(entries_.begin(), entries_.end(), k);
  if (it == entries_.end()) return false;
  entries_.erase(it);
  return true;
}

}  // namespace ntclint
