// ntcsim — command-line driver for the persistent-memory-accelerator
// simulator. Runs one workload under one mechanism on a configurable
// machine and reports metrics (human-readable or CSV), optionally with
// crash injection + recovery checking.
//
//   ntcsim --workload=rbtree --mechanism=tc
//   ntcsim --workload=sps --mechanism=sp --ops=2000 --set cores=2 --csv
//   ntcsim --config=machine.cfg --set llc.size_kb=1024
//   ntcsim --workload=hashtable --mechanism=tc --crash-at=50000
//   ntcsim --serve --rate=4 --requests=2000 --workload=hashtable
//   ntcsim --matrix --jobs=8 --csv
//   ntcsim --dump-config
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "faultsim/campaign.hpp"
#include "persist/domain.hpp"
#include "recovery/recovery.hpp"
#include "sim/cli_help.hpp"
#include "sim/config_io.hpp"
#include "sim/experiment.hpp"
#include "sim/profiler.hpp"
#include "sim/report.hpp"
#include "sim/sweep.hpp"
#include "sim/system.hpp"
#include "workload/service.hpp"
#include "workload/workloads.hpp"

namespace {

using namespace ntcsim;

void usage() { std::fputs(sim::kCliHelp, stdout); }

struct Cli {
  WorkloadKind workload = WorkloadKind::kRbtree;
  Mechanism mechanism = Mechanism::kTc;
  std::string preset = "experiment";
  SystemConfig cfg = SystemConfig::experiment();
  workload::WorkloadParams params;
  bool have_params = false;
  Cycle crash_at = 0;
  bool crash_sweep = false;
  std::string crash_report = "CRASH_sweep.json";
  // Which cell coordinates were given explicitly (they narrow the
  // --crash-sweep cell set; defaults sweep everything).
  bool mech_explicit = false;
  bool wl_explicit = false;
  bool seed_explicit = false;
  bool ops_explicit = false;
  bool setup_explicit = false;
  bool matrix = false;
  unsigned jobs = 0;  // 0 = auto
  double scale = 1.0;
  bool profile = false;
  std::string profile_out = "BENCH_selfperf.json";
  bool csv = false;
  bool stats = false;
  bool dump_config = false;
};

bool parse_args(int argc, char** argv, Cli& cli) {
  // Two passes: preset first (later keys overlay it).
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--preset=", 0) == 0) {
      cli.preset = a.substr(9);
    }
  }
  if (cli.preset == "paper") {
    cli.cfg = SystemConfig::paper();
  } else if (cli.preset == "experiment") {
    cli.cfg = SystemConfig::experiment();
  } else if (cli.preset == "tiny") {
    cli.cfg = SystemConfig::tiny();
  } else {
    std::fprintf(stderr, "unknown preset \"%s\"\n", cli.preset.c_str());
    return false;
  }

  std::string ops, setup, lookup, seed;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto value = [&a]() { return a.substr(a.find('=') + 1); };
    if (a == "--help" || a == "-h") {
      usage();
      std::exit(0);
    } else if (a.rfind("--workload=", 0) == 0) {
      if (!sim::parse_workload(value(), cli.workload)) {
        std::fprintf(stderr, "unknown workload \"%s\"\n", value().c_str());
        return false;
      }
      cli.wl_explicit = true;
    } else if (a.rfind("--mechanism=", 0) == 0) {
      cli.mech_explicit = true;
      if (!sim::parse_mechanism(value(), cli.mechanism)) {
        std::fprintf(
            stderr, "unknown mechanism \"%s\" (known: %s)\n", value().c_str(),
            persist::DomainRegistry::instance().known_names().c_str());
        return false;
      }
    } else if (a == "--list-mechanisms") {
      for (Mechanism m : persist::DomainRegistry::instance().all()) {
        const persist::DomainInfo& info =
            persist::DomainRegistry::instance().info(m);
        std::string aliases;
        for (const std::string& alias : info.aliases) {
          aliases += aliases.empty() ? " (alias " : ", ";
          aliases += alias;
        }
        if (!aliases.empty()) aliases += ")";
        std::printf("%-12s %-10s %s%s\n", info.name.c_str(),
                    info.display.c_str(), info.summary.c_str(),
                    aliases.c_str());
      }
      std::exit(0);
    } else if (a.rfind("--preset=", 0) == 0) {
      // handled above
    } else if (a.rfind("--config=", 0) == 0) {
      std::ifstream f(value());
      if (!f) {
        std::fprintf(stderr, "cannot open config \"%s\"\n", value().c_str());
        return false;
      }
      const auto r = sim::apply_config(f, cli.cfg);
      if (!r.ok) {
        std::fprintf(stderr, "%s: %s\n", value().c_str(), r.error.c_str());
        return false;
      }
    } else if (a == "--set" && i + 1 < argc) {
      const auto r = sim::apply_config_line(argv[++i], cli.cfg);
      if (!r.ok) {
        std::fprintf(stderr, "--set: %s\n", r.error.c_str());
        return false;
      }
    } else if (a.rfind("--ops=", 0) == 0) {
      ops = value();
    } else if (a.rfind("--setup=", 0) == 0) {
      setup = value();
    } else if (a.rfind("--lookup=", 0) == 0) {
      lookup = value();
    } else if (a.rfind("--seed=", 0) == 0) {
      seed = value();
    } else if (a.rfind("--crash-at=", 0) == 0) {
      cli.crash_at = std::stoull(value());
    } else if (a == "--crash-sweep") {
      cli.crash_sweep = true;
    } else if (a.rfind("--crash-points=", 0) == 0) {
      cli.crash_sweep = true;
      cli.cfg.crash.points = std::stoull(value());
    } else if (a == "--minimize") {
      cli.cfg.crash.minimize = true;
    } else if (a.rfind("--crash-report=", 0) == 0) {
      cli.crash_report = value();
    } else if (a == "--check") {
      cli.cfg.check = CheckMode::kCollect;
    } else if (a.rfind("--check=", 0) == 0) {
      if (!sim::parse_check_mode(value(), cli.cfg.check)) {
        std::fprintf(stderr,
                     "unknown --check mode \"%s\" (off | collect | fatal)\n",
                     value().c_str());
        return false;
      }
    } else if (a.rfind("--nodes=", 0) == 0) {
      const unsigned long n = std::stoul(value());
      if (n == 0) {
        std::fprintf(stderr, "--nodes must be positive\n");
        return false;
      }
      cli.cfg.topo.nodes = static_cast<unsigned>(n);
    } else if (a == "--serve") {
      cli.cfg.service.enabled = true;
    } else if (a.rfind("--rate=", 0) == 0) {
      cli.cfg.service.enabled = true;
      cli.cfg.service.rate = std::stod(value());
      if (cli.cfg.service.rate <= 0.0) {
        std::fprintf(stderr, "--rate must be positive\n");
        return false;
      }
    } else if (a.rfind("--requests=", 0) == 0) {
      cli.cfg.service.enabled = true;
      cli.cfg.service.requests = std::stoull(value());
    } else if (a == "--closed-loop") {
      cli.cfg.service.open_loop = false;
    } else if (a == "--uniform") {
      cli.cfg.service.poisson = false;
    } else if (a == "--no-skip") {
      cli.cfg.skip.enabled = false;
    } else if (a == "--matrix") {
      cli.matrix = true;
    } else if (a.rfind("--jobs=", 0) == 0) {
      cli.jobs = static_cast<unsigned>(std::stoul(value()));
    } else if (a == "--jobs" && i + 1 < argc) {
      cli.jobs = static_cast<unsigned>(std::stoul(argv[++i]));
    } else if (a.rfind("--scale=", 0) == 0) {
      cli.scale = std::stod(value());
    } else if (a == "--scale" && i + 1 < argc) {
      cli.scale = std::stod(argv[++i]);
    } else if (a == "--profile") {
      cli.profile = true;
    } else if (a.rfind("--profile=", 0) == 0) {
      cli.profile = true;
      cli.profile_out = value();
    } else if (a == "--csv") {
      cli.csv = true;
    } else if (a == "--stats") {
      cli.stats = true;
    } else if (a == "--dump-config") {
      cli.dump_config = true;
    } else {
      std::fprintf(stderr, "unknown argument \"%s\" (try --help)\n",
                   a.c_str());
      return false;
    }
  }

  cli.cfg.mechanism = cli.mechanism;
  cli.params = workload::default_params(cli.workload);
  cli.ops_explicit = !ops.empty();
  cli.setup_explicit = !setup.empty();
  if (!ops.empty()) cli.params.ops = std::stoull(ops);
  if (cli.cfg.service.enabled && cli.cfg.service.requests > 0) {
    cli.params.ops = cli.cfg.service.requests;  // --requests wins over --ops
  }
  if (!setup.empty()) cli.params.setup_elems = std::stoull(setup);
  if (!lookup.empty()) {
    cli.params.lookup_pct = static_cast<unsigned>(std::stoul(lookup));
  }
  cli.seed_explicit = !seed.empty();
  if (!seed.empty()) cli.params.seed = std::stoull(seed);
  return true;
}

// --crash-sweep: the deterministic fault-injection campaign (src/faultsim/).
// By default every mechanism variant x {sps, hashtable, rbtree} x seeds
// 1..crash.seeds is swept; explicit --mechanism / --workload / --seed narrow
// the cell set (a mechanism filter keeps its negative-control sibling, e.g.
// sp!unordered rides with sp). Exit 2 when any expected-consistent cell
// violated atomicity.
int run_crash_sweep_mode(const Cli& cli) {
  SystemConfig cfg = cli.cfg;
  if (cli.ops_explicit) cfg.crash.ops = cli.params.ops;
  if (cli.setup_explicit) cfg.crash.setup = cli.params.setup_elems;
  cfg.crash.ops = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             static_cast<double>(cfg.crash.ops) * cli.scale));

  std::vector<faultsim::VariantSpec> variants = faultsim::default_variants();
  if (cli.mech_explicit) {
    std::vector<faultsim::VariantSpec> kept;
    for (faultsim::VariantSpec& v : variants) {
      if (v.mech == cli.mechanism) kept.push_back(std::move(v));
    }
    if (kept.empty()) {
      std::fprintf(stderr, "--crash-sweep: mechanism \"%s\" has no campaign "
                           "variant\n",
                   persist::DomainRegistry::instance()
                       .info(cli.mechanism).name.c_str());
      return 1;
    }
    variants = std::move(kept);
  }
  const std::vector<WorkloadKind> workloads =
      cli.wl_explicit ? std::vector<WorkloadKind>{cli.workload}
                      : faultsim::default_workloads();
  std::vector<std::uint64_t> seeds;
  if (cli.seed_explicit) {
    seeds.push_back(cli.params.seed);
  } else {
    for (unsigned s = 1; s <= std::max(1u, cfg.crash.seeds); ++s) {
      seeds.push_back(s);
    }
  }

  faultsim::CampaignOptions opts;
  opts.jobs = cli.jobs;
  opts.repro_prefix = "ntcsim";
  if (cli.preset != "experiment") opts.repro_prefix += " --preset=" + cli.preset;

  const std::vector<faultsim::CellSpec> cells =
      faultsim::make_cells(variants, workloads, seeds);
  const faultsim::CampaignReport report =
      faultsim::run_campaign(cfg, cells, opts);

  if (cli.crash_report == "-") {
    // Keep stdout pure JSON so `--crash-report=- | jq` works; the human
    // summary moves to stderr.
    faultsim::write_report_text(std::cerr, report);
    faultsim::write_report_json(std::cout, report, cfg);
  } else if (!cli.crash_report.empty()) {
    faultsim::write_report_text(std::cout, report);
    std::ofstream out(cli.crash_report);
    if (!out) {
      std::fprintf(stderr, "cannot write crash report \"%s\"\n",
                   cli.crash_report.c_str());
      return 1;
    }
    faultsim::write_report_json(out, report, cfg);
    std::printf("crash-sweep: report written to %s\n",
                cli.crash_report.c_str());
  } else {
    faultsim::write_report_text(std::cout, report);
  }
  return report.ok() ? 0 : 2;
}

// --matrix: the full mechanism x workload evaluation of the paper's §5 in
// one invocation, cells fanned out over worker threads. CSV mode emits one
// row per cell; otherwise the Fig. 6/7-style normalized tables print.
int run_matrix_mode(const Cli& cli) {
  sim::ExperimentOptions opts;
  opts.scale = cli.scale;
  opts.seed = cli.params.seed;
  opts.jobs = cli.jobs;
  sim::Matrix matrix;
  try {
    matrix = sim::run_matrix(cli.cfg, opts);
  } catch (const std::runtime_error& e) {
    std::fprintf(stderr, "ntcsim: matrix aborted: %s\n", e.what());
    return 4;
  }
  std::uint64_t check_violations = 0;
  for (const auto& [wl, row] : matrix) {
    for (const auto& [mech, m] : row) check_violations += m.check_violations;
  }
  if (cli.csv) {
    sim::write_matrix_csv(std::cout, matrix);
  } else {
    sim::print_figure(
        std::cout, "Matrix: IPC", matrix,
        [](const sim::Metrics& m) { return m.ipc; },
        "IPC normalized to Optimal; higher is better.");
    sim::print_figure(
        std::cout, "Matrix: throughput", matrix,
        [](const sim::Metrics& m) { return m.tx_per_kilocycle; },
        "Transactions/kcycle normalized to Optimal; higher is better.");
  }
  if (cli.cfg.check != CheckMode::kOff) {
    std::fprintf(stderr, "persistence-order checker: %llu violation(s)\n",
                 static_cast<unsigned long long>(check_violations));
    if (check_violations > 0) return 3;
  }
  return 0;
}

int run(const Cli& cli) {
  const unsigned nodes = std::max(1u, cli.cfg.topo.nodes);
  // The atomicity oracle (--crash-at) follows node 0, where the crash is
  // injected; other nodes' shards run without a journal.
  recovery::Journal journal(cli.cfg.cores);
  std::vector<std::vector<workload::TraceBundle>> bundles(nodes);
  for (NodeId n = 0; n < nodes; ++n) {
    workload::SimHeap heap(cli.cfg.address_space, cli.cfg.cores);
    workload::WorkloadParams p = cli.params;
    p.seed = cli.params.seed + n * 0x9e3779b9ULL;
    for (CoreId c = 0; c < cli.cfg.cores; ++c) {
      bundles[n].push_back(workload::generate_phased(
          p, c, heap, n == 0 ? &journal : nullptr));
      workload::stamp_service_arrivals(bundles[n][c].measured,
                                       cli.cfg.service, c, cli.params.seed, n);
    }
  }
  topo::RouteStats route;
  if (nodes > 1 && cli.cfg.service.enabled && cli.cfg.service.open_loop) {
    std::vector<std::vector<core::Trace*>> measured(nodes);
    for (NodeId n = 0; n < nodes; ++n) {
      for (CoreId c = 0; c < cli.cfg.cores; ++c) {
        measured[n].push_back(&bundles[n][c].measured);
      }
    }
    route = topo::route_service_arrivals(measured, cli.cfg.topo, cli.cfg.ghz,
                                         cli.params.seed);
  }

  sim::System sys(cli.cfg);
  for (NodeId n = 0; n < nodes; ++n) {
    for (CoreId c = 0; c < cli.cfg.cores; ++c) {
      sys.load_trace(n, c, std::move(bundles[n][c].setup));
    }
  }
  if (sys.run() != sim::RunStatus::kFinished) {
    std::fprintf(stderr,
                 "ntcsim: setup phase hit the cycle cap — truncated run, "
                 "results discarded\n");
    return 4;
  }
  sys.reset_stats();
  sys.note_route_stats(route);
  for (NodeId n = 0; n < nodes; ++n) {
    for (CoreId c = 0; c < cli.cfg.cores; ++c) {
      sys.load_trace(n, c, std::move(bundles[n][c].measured));
    }
  }

  if (cli.crash_at > 0) {
    const Cycle epoch = sys.now();
    while (sys.now() < epoch + cli.crash_at && !sys.run_for(1000)) {
    }
    const recovery::WordImage img = sys.crash_and_recover();
    const auto report = recovery::check_atomicity(img, journal);
    std::printf("crash at cycle %llu (measured-phase cycle %llu)\n",
                static_cast<unsigned long long>(sys.now()),
                static_cast<unsigned long long>(sys.now() - epoch));
    if (report.consistent) {
      std::printf("recovery: CONSISTENT\n");
      for (CoreId c = 0; c < cli.cfg.cores; ++c) {
        std::printf("  core %u: %zu/%zu transactions durable\n", c,
                    report.durable_tx_prefix[c],
                    journal.per_core(c).size());
      }
      return 0;
    }
    std::printf("recovery: ATOMICITY VIOLATION\n  %s\n",
                report.violation.c_str());
    return 2;
  }

  if (sys.run() != sim::RunStatus::kFinished) {
    std::fprintf(stderr,
                 "ntcsim: measured phase hit the cycle cap — truncated run, "
                 "results discarded\n");
    return 4;
  }
  const sim::Metrics m = sys.metrics();

  const std::string label = std::string(to_string(cli.workload)) + "/" +
                            std::string(sim::mechanism_label(cli.mechanism));
  if (cli.csv) {
    sim::write_metrics_csv_row(std::cout, label, m, /*header=*/true);
  } else {
    std::printf("%s on %s preset (%u cores)\n", label.c_str(),
                cli.preset.c_str(), cli.cfg.cores);
    std::printf("  cycles               %llu\n",
                static_cast<unsigned long long>(m.cycles));
    std::printf("  IPC (aggregate)      %.3f\n", m.ipc);
    std::printf("  transactions/kcycle  %.3f\n", m.tx_per_kilocycle);
    std::printf("  LLC miss rate        %.4f\n", m.llc_miss_rate);
    std::printf("  NVM writes / reads   %llu / %llu\n",
                static_cast<unsigned long long>(m.nvm_writes),
                static_cast<unsigned long long>(m.nvm_reads));
    std::printf("  pload latency        %.1f cy (p50<=%llu, p99<=%llu)\n",
                m.pload_latency,
                static_cast<unsigned long long>(m.pload_latency_p50),
                static_cast<unsigned long long>(m.pload_latency_p99));
    std::printf("  NTC stalls / spills  %.5f / %llu\n", m.ntc_stall_frac,
                static_cast<unsigned long long>(m.ntc_spills));
    if (cli.cfg.service.enabled) {
      const auto& sv = cli.cfg.service;
      std::printf("  service              %llu requests, %s, %s arrivals"
                  " (offered %.2f/kcycle/core)\n",
                  static_cast<unsigned long long>(m.requests),
                  sv.open_loop ? "open-loop" : "closed-loop",
                  sv.open_loop ? (sv.poisson ? "poisson" : "uniform")
                               : "back-to-back",
                  sv.open_loop ? sv.rate : 0.0);
      std::printf("  request latency      %.1f cy mean (p50<=%llu p95<=%llu"
                  " p99<=%llu p99.9<=%llu)\n",
                  m.req_latency,
                  static_cast<unsigned long long>(m.req_latency_p50),
                  static_cast<unsigned long long>(m.req_latency_p95),
                  static_cast<unsigned long long>(m.req_latency_p99),
                  static_cast<unsigned long long>(m.req_latency_p999));
    }
    if (!m.per_node.empty()) {
      std::printf("  cluster              %u nodes, %llu cross-shard"
                  " requests (avg fwd delay %.1f cy)\n",
                  sys.nodes(),
                  static_cast<unsigned long long>(m.xshard_requests),
                  m.xshard_fwd_delay);
      for (std::size_t n = 0; n < m.per_node.size(); ++n) {
        const sim::Metrics& pm = m.per_node[n];
        std::printf("    node %zu: %.3f tx/kcycle, %llu NVM writes, "
                    "%llu requests (p99<=%llu)\n",
                    n, pm.tx_per_kilocycle,
                    static_cast<unsigned long long>(pm.nvm_writes),
                    static_cast<unsigned long long>(pm.requests),
                    static_cast<unsigned long long>(pm.req_latency_p99));
      }
    }
  }
  if (cli.stats) {
    std::cout << "\n-- raw statistics --\n";
    sys.stats().dump(std::cout);
  }
  if (sys.checker() != nullptr) {
    std::uint64_t violations = 0;
    for (NodeId n = 0; n < sys.nodes(); ++n) {
      violations += sys.checker(n)->violation_count();
    }
    std::fprintf(stderr, "persistence-order checker: %llu violation(s)\n",
                 static_cast<unsigned long long>(violations));
    if (violations > 0) {
      for (NodeId n = 0; n < sys.nodes(); ++n) {
        if (sys.checker(n)->violation_count() > 0) sys.checker(n)->report(stderr);
      }
      return 3;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  if (!parse_args(argc, argv, cli)) return 1;
  if (cli.dump_config) {
    sim::write_config(std::cout, cli.cfg);
    return 0;
  }
  // Opened here (not in run_matrix_mode) so single-cell runs profile too;
  // the inner session run_sweep would open is inert while this one lives.
  std::unique_ptr<sim::ProfileSession> session;
  if (cli.profile) {
    session = std::make_unique<sim::ProfileSession>(cli.profile_out);
  }
  if (cli.crash_sweep) return run_crash_sweep_mode(cli);
  if (cli.matrix) return run_matrix_mode(cli);
  return run(cli);
}
