#!/usr/bin/env python3
"""Perf ratchet: compare self-perf reports against a committed baseline.

The simulator's ``--profile`` flag writes a machine-readable self-perf
report (``BENCH_selfperf.json``: total wall clock, cells/sec, per-cell
seconds). CI runs the profiled evaluation matrix and feeds the result(s)
here together with the committed ``bench/baseline_selfperf.json``; the job
fails when total wall clock regresses more than ``--max-regress`` (default
15%) against the baseline.

Several candidate reports may be given; the fastest one is compared
(best-of-N absorbs most scheduler noise on shared CI runners). Per-cell
deltas are printed for diagnosis but never gate — individual cells are far
noisier than the total.

When a commit makes the simulator legitimately faster or slower (new
subsystem, algorithmic change), refresh the baseline with the same command
CI uses and commit the new file:

    ./build/tools/ntcsim --matrix --scale=0.02 --profile=bench/baseline_selfperf.json --jobs=1

Exit codes: 0 ok, 1 regression beyond threshold, 2 bad input.
"""

import argparse
import json
import sys


def load_report(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            report = json.load(fh)
    except (OSError, ValueError) as err:
        sys.exit(f"perf-ratchet: cannot read {path}: {err}")
    for key in ("wall_seconds", "cells", "cell_times"):
        if key not in report:
            sys.exit(f"perf-ratchet: {path}: missing key '{key}'")
    if report["wall_seconds"] <= 0:
        sys.exit(f"perf-ratchet: {path}: non-positive wall_seconds")
    return report


def cell_map(report):
    return {c["label"]: c["seconds"] for c in report["cell_times"]}


def main(argv=None):
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("baseline", help="committed baseline self-perf JSON")
    parser.add_argument(
        "candidates", nargs="+", help="candidate self-perf JSON(s); fastest is compared"
    )
    parser.add_argument(
        "--max-regress",
        type=float,
        default=0.15,
        help="allowed fractional wall-clock regression (default 0.15)",
    )
    args = parser.parse_args(argv)

    base = load_report(args.baseline)
    runs = [(load_report(p), p) for p in args.candidates]
    cand, cand_path = min(runs, key=lambda r: r[0]["wall_seconds"])

    if cand["cells"] != base["cells"]:
        sys.exit(
            f"perf-ratchet: cell-count mismatch: baseline has {base['cells']}, "
            f"{cand_path} has {cand['cells']} — regenerate the baseline "
            "(see --help) after changing the evaluation matrix"
        )

    base_wall = base["wall_seconds"]
    cand_wall = cand["wall_seconds"]
    delta = (cand_wall - base_wall) / base_wall

    print(f"perf-ratchet: baseline {base_wall:.2f}s, best candidate "
          f"{cand_wall:.2f}s ({cand_path}), delta {delta:+.1%} "
          f"(threshold +{args.max_regress:.0%})")

    base_cells = cell_map(base)
    worst = []
    for label, secs in sorted(cell_map(cand).items()):
        if label in base_cells and base_cells[label] > 0:
            cell_delta = (secs - base_cells[label]) / base_cells[label]
            worst.append((cell_delta, label, base_cells[label], secs))
    worst.sort(reverse=True)
    if worst:
        print("perf-ratchet: slowest-moving cells (informational):")
        for cell_delta, label, b, c in worst[:5]:
            print(f"  {label:<28} {b:8.3f}s -> {c:8.3f}s  {cell_delta:+.1%}")

    if delta > args.max_regress:
        print(
            f"perf-ratchet: FAIL — wall clock regressed {delta:+.1%}, "
            f"over the +{args.max_regress:.0%} budget. If the slowdown is "
            "intentional, refresh bench/baseline_selfperf.json (see --help).",
            file=sys.stderr,
        )
        return 1
    if delta < -args.max_regress:
        print(
            "perf-ratchet: note — the candidate is substantially faster than "
            "the baseline; consider refreshing bench/baseline_selfperf.json "
            "so the ratchet locks in the win."
        )
    print("perf-ratchet: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
